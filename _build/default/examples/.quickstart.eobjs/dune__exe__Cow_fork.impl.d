examples/cow_fork.ml: Access Addr Checker Cpu Fork Frame_alloc Kernel Machine Mm_struct Opts Page_table Printf Pte Report Stats Syscall
