examples/cow_fork.mli:
