examples/memory_reclaim.ml: Access Addr Apic Checker Cpu Fault Kernel List Machine Opts Printf Report Rng Syscall Waitq
