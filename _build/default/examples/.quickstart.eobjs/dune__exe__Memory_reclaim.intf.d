examples/memory_reclaim.mli:
