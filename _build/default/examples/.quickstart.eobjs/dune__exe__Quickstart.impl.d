examples/quickstart.ml: Access Checker Cpu Format Kernel Machine Opts Printf Syscall Trace
