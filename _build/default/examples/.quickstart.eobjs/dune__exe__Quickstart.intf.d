examples/quickstart.mli:
