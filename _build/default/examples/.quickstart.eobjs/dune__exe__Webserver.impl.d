examples/webserver.ml: Access Apic Array Checker Cpu File Kernel Machine Opts Printf Report Rng Syscall Vma
