examples/webserver.mli:
