(* fork() + copy-on-write under sharing (paper §4.1): a parent address
   space is forked — every private page becomes write-protected and
   frame-shared — and both sides then write, breaking COW page by page.
   With [cow_avoid_flush] the local INVLPG on each break is replaced by an
   atomic dummy write; the speculative stale-PTE re-caching probability is
   forced to 1.0 and the coherence checker stays clean regardless.

     dune exec examples/cow_fork.exe
*)

let run ~label opts =
  opts.Opts.spec_pte_recache_p <- 1.0;
  let m = Machine.create ~opts ~seed:12L () in
  let parent = Machine.new_mm m in
  let pages = 48 in
  let write_cycles = Stats.create () in
  let shared_after_fork = ref 0 in

  Kernel.spawn_user m ~cpu:0 ~mm:parent ~name:"parent" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      (* fork: both sides now share every frame, write-protected. *)
      let child = Fork.fork m ~cpu:0 in
      let vpn0 = Addr.vpn_of_addr addr in
      (match Page_table.walk (Mm_struct.page_table parent) ~vpn:vpn0 with
      | Some w ->
          shared_after_fork := Frame_alloc.refcount m.Machine.frames w.Page_table.pte.Pte.pfn
      | None -> ());
      (* The child reads the shared pages from another core while the
         parent writes them all, COW-breaking one page per write. *)
      let stop = ref false in
      Kernel.spawn_user m ~cpu:14 ~mm:child ~name:"child" (fun () ->
          let cpu_t = Machine.cpu m 14 in
          while not !stop do
            Access.touch_range m ~cpu:14 ~addr ~pages ~write:false;
            Cpu.compute cpu_t 500
          done);
      Machine.delay m 3_000;
      for i = 0 to pages - 1 do
        let t0 = Machine.now m in
        Access.write m ~cpu:0 ~vaddr:(addr + (i * Addr.page_size));
        Stats.add write_cycles (float_of_int (Machine.now m - t0))
      done;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  let s = m.Machine.stats in
  Printf.printf
    "%-24s refs-after-fork=%d cow-breaks=%-3d flushes-avoided=%-3d mean-write=%-7s \
     violations=%d\n"
    label !shared_after_fork s.Machine.cow_breaks s.Machine.cow_flush_avoided
    (Report.cycles (Stats.mean write_cycles))
    (Checker.violation_count m.Machine.checker)

let () =
  print_endline
    "fork() then parent writes every page while the child reads (spec re-cache = 1.0).";
  print_endline "Each parent write breaks COW; the child keeps the original frames.\n";
  run ~label:"baseline safe" (Opts.baseline ~safe:true);
  run ~label:"+cow avoidance safe"
    (let o = Opts.baseline ~safe:true in
     o.Opts.cow_avoid_flush <- true;
     o);
  run ~label:"all six safe" (Opts.all ~safe:true);
  run ~label:"baseline unsafe" (Opts.baseline ~safe:false);
  run ~label:"all six unsafe" (Opts.all ~safe:false)
