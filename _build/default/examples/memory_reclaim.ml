(* Background memory reclaim: a kswapd-style kernel daemon unmaps cold
   pages of a running application, shooting down the TLBs of every CPU the
   application runs on — the "reclamation" flush source of paper §2.1.
   Demonstrates per-optimization effects on a workload that never asks for
   flushes itself, and that lazy-TLB CPUs are skipped.

     dune exec examples/memory_reclaim.exe
*)

let run ~label opts =
  let m = Machine.create ~opts ~seed:8L () in
  let mm = Machine.new_mm m in
  let app_cpus = [ 0; 1; 2; 3 ] in
  let working_pages = 64 in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  let app_ops = ref 0 in

  (* Application threads stream over the working set. *)
  List.iter
    (fun cpu ->
      let rng = Rng.split m.Machine.rng in
      Kernel.spawn_user m ~cpu ~mm ~name:(Printf.sprintf "app%d" cpu) (fun () ->
          Waitq.Completion.wait ready;
          let cpu_t = Machine.cpu m cpu in
          while not !stop do
            let page = Rng.int rng working_pages in
            (try Access.write m ~cpu ~vaddr:(!addr_box + (page * Addr.page_size))
             with Fault.Segfault _ -> ());
            incr app_ops;
            Cpu.compute cpu_t 400
          done))
    app_cpus;

  (* The reclaim daemon: periodically picks a cold run of pages and drops
     it, exactly like reclaim zapping PTEs of a victim mm. *)
  Kernel.spawn_user m ~cpu:13 ~mm ~name:"kswapd" (fun () ->
      let addr = Syscall.mmap m ~cpu:13 ~pages:working_pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:13 ~addr ~pages:working_pages ~write:true;
      Waitq.Completion.fire ready;
      let rng = Rng.split m.Machine.rng in
      for _round = 1 to 40 do
        let victim = Rng.int rng (working_pages - 8) in
        Syscall.madvise_dontneed m ~cpu:13
          ~addr:(addr + (victim * Addr.page_size))
          ~pages:8;
        Machine.delay m 20_000
      done;
      Machine.delay m 30_000;
      stop := true);
  Kernel.run m;
  let s = m.Machine.stats in
  Printf.printf
    "%-28s reclaim-done-in=%-9s app-rate=%5.2f ops/kcyc shootdowns=%-3d ipis=%-4d \
     refaults=%-5d violations=%d\n"
    label
    (Report.cycles (float_of_int (Machine.now m)))
    (float_of_int !app_ops *. 1000.0 /. float_of_int (Machine.now m))
    s.Machine.shootdowns (Apic.ipis_sent m.Machine.apic) s.Machine.faults
    (Checker.violation_count m.Machine.checker)

let () =
  print_endline
    "Background reclaim (kswapd) unmapping a 4-thread application's cold pages.";
  print_endline "Reclaim-triggered shootdowns hit every CPU the app runs on.\n";
  run ~label:"baseline safe" (Opts.baseline ~safe:true);
  run ~label:"all optimizations safe" (Opts.all ~safe:true);
  run ~label:"baseline unsafe" (Opts.baseline ~safe:false);
  run ~label:"all optimizations unsafe" (Opts.all ~safe:false);
  print_endline
    "\nNote: 'refaults' counts the demand-paging faults the app takes to pull\n\
     reclaimed pages back in; the checker confirms no stale translation was\n\
     ever used despite the continuous unmapping."
