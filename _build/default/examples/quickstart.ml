(* Quickstart: build a machine, run one TLB shootdown under the baseline
   protocol and under the paper's optimized protocol, and print the traced
   timelines side by side.

     dune exec examples/quickstart.exe
*)

let run_one ~label opts =
  Printf.printf "\n=== %s (%s) ===\n" label (Format.asprintf "%a" Opts.pp opts);
  let m = Machine.create ~opts ~seed:1L () in
  Trace.enable m.Machine.trace;
  let mm = Machine.new_mm m in
  let stop = ref false in

  (* A responder thread busy-waits on the other socket, sharing the
     address space — exactly the microbenchmark setup of paper §5.1. *)
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"responder" (fun () ->
      let cpu = Machine.cpu m 14 in
      while not !stop do
        Cpu.compute cpu ~quantum:100 100
      done);

  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 2_000;
      (* Map four pages, fault them in, then madvise(DONTNEED) them away:
         the PTE teardown triggers the shootdown we want to watch. *)
      let addr = Syscall.mmap m ~cpu:0 ~pages:4 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:true;
      Trace.clear m.Machine.trace;
      let t0 = Machine.now m in
      Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages:4;
      Printf.printf "madvise(DONTNEED, 4 pages) took %d cycles on the initiator\n"
        (Machine.now m - t0);
      Machine.delay m 10_000;
      stop := true);
  Kernel.run m;

  print_endline "timeline (cycles | cpu | event):";
  Format.printf "%a@?" Trace.pp m.Machine.trace;
  let responder = Machine.cpu m 14 in
  Printf.printf "responder was interrupted for %d cycles across %d IRQ(s)\n"
    (Cpu.interrupted_cycles responder)
    (Cpu.irqs_handled responder);
  Printf.printf "coherence checker: %d checks, %d benign races, %d violations\n"
    (Checker.checks m.Machine.checker)
    (Checker.benign_races m.Machine.checker)
    (Checker.violation_count m.Machine.checker)

let () =
  print_endline "Reproduction of \"Don't shoot down TLB shootdowns!\" (EuroSys'20).";
  print_endline "One madvise-triggered shootdown, baseline vs optimized protocol:";
  run_one ~label:"stock Linux 5.2.8 protocol" (Opts.baseline ~safe:true);
  run_one ~label:"all four general techniques (paper SS3)" (Opts.all_general ~safe:true)
