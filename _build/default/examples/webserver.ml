(* A multithreaded webserver in the style of Apache's mpm_event module
   (paper §5.3): worker threads of one process serve requests by mmap-ing
   the file, streaming it out, and munmap-ing — which shoots down every
   sibling worker. Compares the baseline protocol against the full
   optimization stack and prints the shootdown accounting.

     dune exec examples/webserver.exe
*)

let serve ~label opts =
  let cores = 8 in
  let requests = 400 in
  let m = Machine.create ~opts ~seed:4L () in
  let mm = Machine.new_mm m in
  let htdocs =
    Array.init 8 (fun i ->
        let f =
          File.create m.Machine.frames
            ~name:(Printf.sprintf "htdocs/index%d.html" i)
            ~size_pages:3
        in
        for index = 0 to 2 do
          ignore (File.frame_of_page f ~index)
        done;
        f)
  in
  let served = ref 0 in
  for w = 0 to cores - 1 do
    let rng = Rng.split m.Machine.rng in
    Kernel.spawn_user m ~cpu:w ~mm ~name:(Printf.sprintf "worker%d" w) (fun () ->
        let cpu = Machine.cpu m w in
        for _ = 1 to requests / cores do
          let file = Rng.choose rng htdocs in
          (* Accept + parse the request. *)
          Cpu.compute cpu 6_000;
          (* Map the file, read it onto the socket, tear the mapping down. *)
          let addr =
            Syscall.mmap m ~cpu:w ~pages:3 ~writable:false
              ~backing:(Vma.File_shared { file; offset = 0 })
              ()
          in
          Access.touch_range m ~cpu:w ~addr ~pages:3 ~write:false;
          Cpu.compute cpu 24_000;
          Syscall.munmap m ~cpu:w ~addr ~pages:3;
          incr served
        done)
  done;
  Kernel.run m;
  let cycles = Machine.now m in
  let interrupted =
    Array.fold_left (fun acc cpu -> acc + Cpu.interrupted_cycles cpu) 0 m.Machine.cpus
  in
  Printf.printf
    "%-28s %4d req in %8s cycles  (%5.1f req/Mcyc)  shootdowns=%-4d IPIs=%-4d \
     interruption=%s violations=%d\n"
    label !served
    (Report.cycles (float_of_int cycles))
    (float_of_int !served *. 1e6 /. float_of_int cycles)
    m.Machine.stats.Machine.shootdowns
    (Apic.ipis_sent m.Machine.apic)
    (Report.cycles (float_of_int interrupted))
    (Checker.violation_count m.Machine.checker)

let () =
  print_endline "mpm_event-style webserver: 8 workers, 400 requests, shared mm.";
  print_endline "Each munmap shoots down all sibling workers.\n";
  serve ~label:"baseline (Linux 5.2.8)" (Opts.baseline ~safe:true);
  serve ~label:"+ four general techniques" (Opts.all_general ~safe:true);
  serve ~label:"+ CoW & batching (all six)" (Opts.all ~safe:true);
  serve ~label:"unsafe mode, baseline" (Opts.baseline ~safe:false);
  serve ~label:"unsafe mode, all six" (Opts.all ~safe:false)
