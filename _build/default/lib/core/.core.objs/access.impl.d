lib/core/access.ml: Addr Checker Costs Cpu Fault Machine Mm_struct Opts Page_table Percpu Printf Pte Tlb
