lib/core/access.mli: Machine
