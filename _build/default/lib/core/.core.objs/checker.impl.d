lib/core/checker.ml: Flush_info Format Hashtbl List Page_table Pte Tlb
