lib/core/checker.mli: Flush_info Format Page_table Tlb
