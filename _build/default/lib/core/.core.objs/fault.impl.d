lib/core/fault.ml: Addr Checker Costs Cpu File Flush_info Frame_alloc Fun Machine Mm_struct Option Opts Page_table Percpu Pte Rng Rwsem Shootdown Tlb Vma
