lib/core/fault.mli: Machine Mm_struct
