lib/core/file.ml: Frame_alloc Hashtbl List Printf
