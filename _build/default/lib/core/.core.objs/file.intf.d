lib/core/file.mli: Frame_alloc
