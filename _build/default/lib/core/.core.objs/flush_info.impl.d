lib/core/flush_info.ml: Addr Format List Stdlib Tlb
