lib/core/flush_info.mli: Format Tlb
