lib/core/fork.mli: Machine Mm_struct
