lib/core/kernel.ml: Cpu Fun Machine Printf Process Sched Shootdown
