lib/core/kernel.mli: Machine Mm_struct
