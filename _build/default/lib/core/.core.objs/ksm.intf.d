lib/core/ksm.mli: Machine Mm_struct
