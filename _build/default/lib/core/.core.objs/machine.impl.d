lib/core/machine.ml: Apic Array Cache Checker Costs Cpu Engine Format Frame_alloc Hashtbl Mm_struct Opts Percpu Process Rng Rwsem Topology Trace
