lib/core/machine.mli: Apic Cache Checker Costs Cpu Engine Format Frame_alloc Hashtbl Mm_struct Opts Percpu Rng Rwsem Topology Trace
