lib/core/migrate.ml: Checker Costs Cpu Flush_info Frame_alloc Fun Machine Mm_struct Page_table Pte Rwsem Shootdown Tlb Vma
