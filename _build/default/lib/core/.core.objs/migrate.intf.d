lib/core/migrate.mli: Machine Mm_struct
