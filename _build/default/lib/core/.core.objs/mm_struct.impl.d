lib/core/mm_struct.ml: Array Cache Frame_alloc Page_table Printf Rwsem Stdlib Vma
