lib/core/mm_struct.mli: Cache Engine Frame_alloc Page_table Rwsem Vma
