lib/core/opts.ml: Format Fun List String
