lib/core/opts.mli: Format
