lib/core/percpu.ml: Array Cache Checker Cpu Flush_info Mm_struct Printf Queue
