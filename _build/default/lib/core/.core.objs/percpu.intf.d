lib/core/percpu.mli: Cache Checker Cpu Flush_info Mm_struct Queue
