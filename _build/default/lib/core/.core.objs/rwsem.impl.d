lib/core/rwsem.ml: Fun Waitq
