lib/core/rwsem.mli: Engine
