lib/core/sched.ml: Array Costs Cpu Machine Mm_struct Opts Percpu Shootdown Tlb
