lib/core/sched.mli: Machine Mm_struct
