lib/core/shootdown.ml: Array Checker Costs Cpu Flush_info List Machine Mm_struct Option Opts Percpu Printf Queue Rwsem Smp Stdlib Tlb Trace
