lib/core/shootdown.mli: Flush_info Machine Mm_struct Tlb
