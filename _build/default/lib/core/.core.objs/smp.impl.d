lib/core/smp.ml: Apic Array Costs Cpu List Machine Opts Percpu Queue
