lib/core/smp.mli: Cpu Flush_info Machine Percpu
