lib/core/syscall.ml: Addr Checker Costs Cpu File Flush_info Frame_alloc Fun List Machine Mm_struct Opts Page_table Percpu Pte Rwsem Shootdown Stdlib Tlb Vma
