lib/core/syscall.mli: File Machine Tlb Vma
