lib/core/vma.ml: Addr File Int List Map Option Stdlib Tlb
