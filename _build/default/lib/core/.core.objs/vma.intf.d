lib/core/vma.mli: File Tlb
