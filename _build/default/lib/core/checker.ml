type violation = {
  v_time : int;
  v_cpu : int;
  v_mm : int;
  v_vpn : int;
  v_detail : string;
}

type token = int

type t = {
  mutable on : bool;
  in_flight : (int, Flush_info.t) Hashtbl.t;
  mutable next_token : int;
  mutable viols : violation list;
  mutable n_viols : int;
  mutable benign : int;
  mutable n_checks : int;
}

let max_recorded_violations = 1000

let create ?(enabled = true) () =
  {
    on = enabled;
    in_flight = Hashtbl.create 16;
    next_token = 0;
    viols = [];
    n_viols = 0;
    benign = 0;
    n_checks = 0;
  }

let enabled t = t.on
let set_enabled t b = t.on <- b

let begin_invalidation t info =
  t.next_token <- t.next_token + 1;
  if t.on then Hashtbl.replace t.in_flight t.next_token info;
  t.next_token

let end_invalidation t token = Hashtbl.remove t.in_flight token

let covered t ~mm_id ~vpn =
  Hashtbl.fold
    (fun _ (info : Flush_info.t) acc ->
      acc || (info.mm_id = mm_id && Flush_info.covers info ~vpn))
    t.in_flight false

let record t v =
  t.n_viols <- t.n_viols + 1;
  if t.n_viols <= max_recorded_violations then t.viols <- v :: t.viols

let check_hit t ~now ~cpu ~mm_id ~vpn ~write ~entry ~walk =
  if t.on then begin
    t.n_checks <- t.n_checks + 1;
    let stale_reason =
      match walk with
      | None -> Some "translation removed from page table"
      | Some (w : Page_table.walk) ->
          let walk_base =
            match w.size with Tlb.Four_k -> vpn | Tlb.Two_m -> vpn land lnot 511
          in
          let walk_pfn = w.pte.Pte.pfn + (vpn - walk_base) in
          let entry_pfn = entry.Tlb.pfn + (vpn - entry.Tlb.vpn) in
          if entry_pfn <> walk_pfn then Some "page remapped to a different frame"
          else if write && entry.Tlb.writable && not w.pte.Pte.writable then
            Some "write through a since-write-protected mapping"
          else None
    in
    match stale_reason with
    | None -> ()
    | Some reason ->
        if covered t ~mm_id ~vpn then t.benign <- t.benign + 1
        else
          record t { v_time = now; v_cpu = cpu; v_mm = mm_id; v_vpn = vpn; v_detail = reason }
  end

let violations t = List.rev t.viols
let violation_count t = t.n_viols
let benign_races t = t.benign
let checks t = t.n_checks
let open_windows t = Hashtbl.length t.in_flight

let clear t =
  Hashtbl.reset t.in_flight;
  t.viols <- [];
  t.n_viols <- 0;
  t.benign <- 0;
  t.n_checks <- 0

let pp_violation fmt v =
  Format.fprintf fmt "t=%d cpu%d mm%d vpn=%d: %s" v.v_time v.v_cpu v.v_mm v.v_vpn v.v_detail
