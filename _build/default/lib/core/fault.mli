(** The page-fault handler: demand paging, shared-file write notification,
    and copy-on-write breaking — including the paper's §4.1 local-flush
    avoidance.

    On a CoW write fault the handler copies the page, updates the PTE and
    must invalidate the stale translation. Baseline Linux runs INVLPG
    (which also wipes the paging-structure cache); with [cow_avoid_flush]
    and a non-executable PTE, an atomic dummy write evicts the stale entry
    instead. The handler also models the speculative re-caching of the old
    PTE between fault and update ([Opts.spec_pte_recache_p]) that makes the
    explicit eviction necessary. *)

exception Segfault of { sf_cpu : int; sf_vaddr : int; sf_write : bool }

(** Resolve a fault at [vaddr] so that a retry of the access succeeds.
    Runs in kernel context (flips the CPU's privilege for the duration),
    takes mmap_sem for read, may allocate/copy pages and trigger a remote
    shootdown (CoW with the mm active on other CPUs).
    @raise Segfault when no VMA covers the address or permissions forbid
    the access. *)
val handle : Machine.t -> cpu:int -> mm:Mm_struct.t -> vaddr:int -> write:bool -> unit
