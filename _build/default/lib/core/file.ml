type t = {
  frames : Frame_alloc.t;
  file_name : string;
  size : int;
  pagecache : (int, int) Hashtbl.t;  (* page index -> pfn *)
  dirty : (int, unit) Hashtbl.t;
}

let create frames ~name ~size_pages =
  if size_pages <= 0 then invalid_arg "File.create: size must be positive";
  { frames; file_name = name; size = size_pages; pagecache = Hashtbl.create 64; dirty = Hashtbl.create 64 }

let name t = t.file_name
let size_pages t = t.size

let check t index =
  if index < 0 || index >= t.size then
    invalid_arg (Printf.sprintf "File %s: page %d out of range [0,%d)" t.file_name index t.size)

let frame_of_page t ~index =
  check t index;
  match Hashtbl.find_opt t.pagecache index with
  | Some pfn -> pfn
  | None ->
      let pfn = Frame_alloc.alloc t.frames in
      Hashtbl.replace t.pagecache index pfn;
      pfn

let cached t ~index =
  check t index;
  Hashtbl.mem t.pagecache index

let mark_dirty t ~index =
  check t index;
  Hashtbl.replace t.dirty index ()

let clear_dirty t ~index =
  check t index;
  Hashtbl.remove t.dirty index

let is_dirty t ~index =
  check t index;
  Hashtbl.mem t.dirty index

let dirty_in_range t ~index ~count =
  Hashtbl.fold
    (fun i () acc -> if i >= index && i < index + count then i :: acc else acc)
    t.dirty []
  |> List.sort compare

let dirty_count t = Hashtbl.length t.dirty

let drop_cache t =
  Hashtbl.iter (fun _ pfn -> Frame_alloc.free t.frames pfn) t.pagecache;
  Hashtbl.reset t.pagecache;
  Hashtbl.reset t.dirty
