(** A memory-mappable file with a page cache and dirty tracking.

    Backs the Sysbench (random writes + fdatasync) and Apache (per-request
    mmap of served files) workloads. Pages get physical frames on first
    touch; writeback enumerates dirty pages so msync/fdatasync can
    write-protect and clean them (the shootdown-heavy path of §4.2). *)

type t

val create : Frame_alloc.t -> name:string -> size_pages:int -> t

val name : t -> string
val size_pages : t -> int

(** Physical frame of file page [index], filling the page cache on demand.
    Raises [Invalid_argument] past EOF. *)
val frame_of_page : t -> index:int -> int

(** Is the page already in the page cache? *)
val cached : t -> index:int -> bool

val mark_dirty : t -> index:int -> unit
val clear_dirty : t -> index:int -> unit
val is_dirty : t -> index:int -> bool

(** Dirty page indices intersecting \[index, index+count), ascending. *)
val dirty_in_range : t -> index:int -> count:int -> int list

val dirty_count : t -> int

(** Drop the whole page cache, freeing frames (for teardown in tests). *)
val drop_cache : t -> unit
