type t = {
  mm_id : int;
  start_vpn : int;
  pages : int;
  full : bool;
  stride : Tlb.page_size;
  freed_tables : bool;
  new_tlb_gen : int;
}

let ranged ~mm_id ~start_vpn ~pages ?(stride = Tlb.Four_k) ?(freed_tables = false)
    ~new_tlb_gen () =
  if pages <= 0 then invalid_arg "Flush_info.ranged: pages must be positive";
  { mm_id; start_vpn; pages; full = false; stride; freed_tables; new_tlb_gen }

let full ~mm_id ?(freed_tables = false) ~new_tlb_gen () =
  { mm_id; start_vpn = 0; pages = 0; full = true; stride = Tlb.Four_k; freed_tables; new_tlb_gen }

let nr_entries t = if t.full then max_int else t.pages

let span_4k t = t.pages * Addr.pages_of_size t.stride

let vpns t =
  if t.full then invalid_arg "Flush_info.vpns: full flush"
  else begin
    let step = Addr.pages_of_size t.stride in
    List.init t.pages (fun i -> t.start_vpn + (i * step))
  end

let covers t ~vpn =
  t.full || (vpn >= t.start_vpn && vpn < t.start_vpn + span_4k t)

let merge a b =
  if a.mm_id <> b.mm_id then invalid_arg "Flush_info.merge: different address spaces";
  let freed_tables = a.freed_tables || b.freed_tables in
  let new_tlb_gen = Stdlib.max a.new_tlb_gen b.new_tlb_gen in
  if a.full || b.full || a.stride <> b.stride then
    { (full ~mm_id:a.mm_id ~freed_tables ~new_tlb_gen ()) with freed_tables }
  else begin
    let lo = Stdlib.min a.start_vpn b.start_vpn in
    let hi = Stdlib.max (a.start_vpn + span_4k a) (b.start_vpn + span_4k b) in
    let step = Addr.pages_of_size a.stride in
    {
      mm_id = a.mm_id;
      start_vpn = lo;
      pages = (hi - lo + step - 1) / step;
      full = false;
      stride = a.stride;
      freed_tables;
      new_tlb_gen;
    }
  end

let pp fmt t =
  if t.full then
    Format.fprintf fmt "mm%d full gen=%d%s" t.mm_id t.new_tlb_gen
      (if t.freed_tables then " freed-tables" else "")
  else
    Format.fprintf fmt "mm%d [%d..%d) x%s gen=%d%s" t.mm_id t.start_vpn
      (t.start_vpn + span_4k t)
      (match t.stride with Tlb.Four_k -> "4K" | Tlb.Two_m -> "2M")
      t.new_tlb_gen
      (if t.freed_tables then " freed-tables" else "")
