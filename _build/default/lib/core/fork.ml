(* Duplicate an address space with COW sharing (see fork.mli). *)

let copy_vmas parent child =
  let max_end = ref 0 in
  Vma.Set.iter (Mm_struct.vmas parent) ~f:(fun vma ->
      Mm_struct.add_vma child vma;
      max_end := Stdlib.max !max_end (Vma.end_vpn vma));
  Mm_struct.reserve_va child ~min_vpn:(!max_end + 1)

(* Share one parent 4 KiB leaf into the child, write-protecting private
   writable pages on both sides. Returns true when the parent PTE changed
   (and so needs flushing). *)
let share_leaf m ~parent ~child ~vpn (pte : Pte.t) =
  let frames = Mm_struct.frames parent in
  let backing =
    match Mm_struct.find_vma parent ~vpn with
    | Some vma -> Some vma.Vma.backing
    | None -> None
  in
  match backing with
  | None -> false
  | Some (Vma.File_shared _) ->
      (* Shared mappings stay shared and writable in both. *)
      Frame_alloc.ref_get frames pte.Pte.pfn;
      Page_table.map (Mm_struct.page_table child) ~vpn ~size:Tlb.Four_k pte;
      false
  | Some (Vma.Anonymous | Vma.File_private _) ->
      if pte.Pte.writable then begin
        (* Both sides must COW from now on. *)
        ignore
          (Page_table.update (Mm_struct.page_table parent) ~vpn ~f:Pte.make_cow);
        Frame_alloc.ref_get frames pte.Pte.pfn;
        Page_table.map (Mm_struct.page_table child) ~vpn ~size:Tlb.Four_k
          (Pte.make_cow pte);
        ignore m;
        true
      end
      else begin
        (* Already read-only (COW or protected): share as-is. *)
        Frame_alloc.ref_get frames pte.Pte.pfn;
        Page_table.map (Mm_struct.page_table child) ~vpn ~size:Tlb.Four_k pte;
        false
      end

let fork m ~cpu =
  let costs = m.Machine.costs and safe = m.Machine.opts.Opts.safe in
  let parent =
    match (Machine.percpu m cpu).Percpu.loaded_mm with
    | Some mm -> mm
    | None -> invalid_arg "Fork.fork: no address space loaded"
  in
  let cpu_t = Machine.cpu m cpu in
  Cpu.set_in_user cpu_t false;
  Machine.delay m (Costs.syscall_entry costs ~safe);
  Fun.protect
    ~finally:(fun () ->
      Machine.delay m (Costs.syscall_exit costs ~safe);
      Shootdown.return_to_user m ~cpu ~has_stack:true)
    (fun () ->
      let child = Machine.new_mm m in
      Rwsem.with_write (Mm_struct.mmap_sem parent) (fun () ->
          copy_vmas parent child;
          (* Write-protecting live PTEs: open a whole-mm checker window
             until the flush below completes. *)
          let window =
            Checker.begin_invalidation m.Machine.checker
              (Flush_info.full ~mm_id:(Mm_struct.id parent)
                 ~new_tlb_gen:(Mm_struct.tlb_gen parent) ())
          in
          Fun.protect
            ~finally:(fun () -> Checker.end_invalidation m.Machine.checker window)
            (fun () ->
              let leaves = ref [] in
              Page_table.iter (Mm_struct.page_table parent) ~f:(fun vpn pte size ->
                  if size = Tlb.Four_k then leaves := (vpn, pte) :: !leaves);
              let changed = ref 0 in
              List.iter
                (fun (vpn, pte) ->
                  Machine.delay m costs.Costs.zap_pte;
                  if share_leaf m ~parent ~child ~vpn pte then incr changed)
                !leaves;
              (* Like Linux's fork path: one full shootdown of the parent's
                 address space clears any stale writable translations. *)
              if !changed > 0 then Shootdown.flush_tlb_mm m ~from:cpu ~mm:parent));
      child)
