(** fork(): duplicate the calling address space with copy-on-write sharing —
    the workload that motivates §4.1's CoW flush avoidance.

    Every writable private page of the parent is write-protected and marked
    COW in {e both} address spaces; the child's PTEs reference the same
    frames (page reference counts track the sharing). Write-protecting live
    PTEs demands a TLB flush of the parent's address space before fork
    returns — a stale writable translation would let the parent scribble on
    what is now a shared frame — so fork performs a full shootdown of the
    parent's mm, inside a checker window.

    Simplifications: hugepage VMAs are not COW-shared (the child refaults
    fresh hugepages), and the child starts with no CPUs — run it with
    {!Kernel.spawn_user}. *)

(** [fork m ~cpu] duplicates the address space loaded on [cpu]; returns the
    child mm. Runs in syscall context (entry/exit costs, mmap_sem held for
    write during the copy). *)
val fork : Machine.t -> cpu:int -> Mm_struct.t
