let spawn_user m ~cpu ~mm ~name body =
  Process.spawn m.Machine.engine ~name (fun () ->
      let cpu_t = Machine.cpu m cpu in
      Cpu.occupy cpu_t;
      Fun.protect
        ~finally:(fun () ->
          Cpu.set_in_user cpu_t false;
          Sched.unload m ~cpu;
          Cpu.vacate cpu_t)
        (fun () ->
          Sched.switch_mm m ~cpu mm;
          Shootdown.return_to_user m ~cpu ~has_stack:true;
          body ()))

let spawn_kernel m ~cpu ~name body =
  Process.spawn m.Machine.engine ~name (fun () ->
      let cpu_t = Machine.cpu m cpu in
      Cpu.occupy cpu_t;
      Cpu.set_in_user cpu_t false;
      Fun.protect ~finally:(fun () -> Cpu.vacate cpu_t) body)

let spawn_idle m ~cpu ~until =
  spawn_kernel m ~cpu ~name:(Printf.sprintf "idle%d" cpu) (fun () ->
      let cpu_t = Machine.cpu m cpu in
      while not (until ()) do
        Cpu.idle_wait cpu_t
      done)

let run m = Machine.run m
