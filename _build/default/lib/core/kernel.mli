(** Thread and process plumbing: the top of the public API.

    A "user thread" is a simulated process pinned to one CPU with one
    address space loaded; its body calls {!Access} and {!Syscall}. At most
    one user thread may run per CPU at a time (the workloads in this
    reproduction pin 1:1, as the paper's benchmarks effectively do). *)

(** [spawn_user m ~cpu ~mm ~name body] starts a user thread: loads [mm] on
    [cpu] (paying the context switch), marks the CPU as running user code,
    runs [body], and unloads on exit. *)
val spawn_user :
  Machine.t -> cpu:int -> mm:Mm_struct.t -> name:string -> (unit -> unit) -> unit

(** A kernel-context process on [cpu] (e.g. a background responder or an
    idle loop); does not touch address-space state. *)
val spawn_kernel : Machine.t -> cpu:int -> name:string -> (unit -> unit) -> unit

(** An idle loop that services IPIs on [cpu] until [until ()] is true
    (checked after each wakeup). Spawn one per otherwise-unused CPU that
    can receive shootdowns. *)
val spawn_idle : Machine.t -> cpu:int -> until:(unit -> bool) -> unit

(** Run the machine to quiescence and re-raise any process failure. *)
val run : Machine.t -> unit
