(** KSM-style page deduplication (paper §2.1 lists memory deduplication as
    a TLB-flush source; the ESX work it cites built an industry on it).

    Content scanning is out of scope for the simulator — pages carry no
    data — so the API takes the scanner's verdict: [merge_pages] is handed
    two anonymous pages the caller asserts identical. The mechanics are the
    real ones: write-protect both PTEs and shoot them down (a write racing
    the merge must fault), point the duplicate's PTE at the survivor's
    frame (reference taken), release the duplicate frame. Later writes
    break COW per §4.1. *)

(** [merge_pages m ~cpu ~mm ~keep ~dup] merges page [dup] into [keep]'s
    frame. Returns [`Merged], or [`Skipped] when either page is unsuitable
    (unmapped, non-anonymous, hugepage, or already sharing a frame). *)
val merge_pages :
  Machine.t -> cpu:int -> mm:Mm_struct.t -> keep:int -> dup:int ->
  [ `Merged | `Skipped ]

(** Sweep \[vpn, vpn+pages) merging every page into the first suitable one
    (as if all contents were identical); returns merges performed. *)
val dedup_range : Machine.t -> cpu:int -> mm:Mm_struct.t -> vpn:int -> pages:int -> int
