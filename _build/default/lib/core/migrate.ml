(* Only anonymous memory migrates here: moving a page-cache frame would
   have to update the file's radix tree as well. *)
let migratable mm ~vpn =
  match Mm_struct.find_vma mm ~vpn with
  | Some { Vma.backing = Vma.Anonymous; _ } -> true
  | Some _ | None -> false

(* Bracket kernel-service entry/exit: migration may be invoked from a user
   thread (move_pages(2)-style); any user-PCID flush its shootdowns defer
   must run before user code resumes. *)
let in_kernel_service m ~cpu f =
  let cpu_t = Machine.cpu m cpu in
  let was_user = Cpu.in_user cpu_t in
  Cpu.set_in_user cpu_t false;
  Fun.protect
    ~finally:(fun () ->
      if was_user then Shootdown.return_to_user m ~cpu ~has_stack:true)
    f

let migrate_page m ~cpu ~mm ~vpn =
  let costs = m.Machine.costs in
  let pt = Mm_struct.page_table mm in
  in_kernel_service m ~cpu @@ fun () ->
  (* The write lock freezes the page: concurrent faulters block until the
     copy is installed (standing in for Linux's migration entries + PTL). *)
  Rwsem.with_write (Mm_struct.mmap_sem mm) (fun () ->
      match Page_table.walk pt ~vpn with
      | None -> `Skipped
      | Some w
        when w.Page_table.size <> Tlb.Four_k
             || (not (migratable mm ~vpn))
             || Frame_alloc.refcount (Mm_struct.frames mm) w.Page_table.pte.Pte.pfn <> 1
        ->
          (* Hugepages would need splitting first; file pages live in the
             page cache; COW-shared frames are mapped by other address
             spaces whose PTEs we cannot rewrite. *)
          `Skipped
      | Some w ->
          let old = w.Page_table.pte in
          let info () =
            Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:vpn ~pages:1
              ~new_tlb_gen:(Mm_struct.tlb_gen mm) ()
          in
          (* Phase 1: freeze the page. Write-protect so concurrent writers
             fault; the shootdown guarantees no TLB lets a write slip past
             the copy. *)
          let window1 = Checker.begin_invalidation m.Machine.checker (info ()) in
          let was_writable = old.Pte.writable in
          (match Page_table.update pt ~vpn ~f:Pte.write_protect with
          | Some _ -> Shootdown.flush_tlb_page m ~from:cpu ~mm ~vpn
          | None -> ());
          Checker.end_invalidation m.Machine.checker window1;
          (* Phase 2: copy to the new frame. *)
          let new_pfn = Frame_alloc.alloc (Mm_struct.frames mm) in
          Machine.delay m costs.Costs.page_copy;
          (* Phase 3: install the new frame and invalidate the old
             translation everywhere before the old frame is recycled. *)
          let window2 = Checker.begin_invalidation m.Machine.checker (info ()) in
          (match
             Page_table.update pt ~vpn ~f:(fun pte ->
                 { pte with Pte.pfn = new_pfn; writable = was_writable })
           with
          | Some _ -> Shootdown.flush_tlb_page m ~from:cpu ~mm ~vpn
          | None -> ());
          Checker.end_invalidation m.Machine.checker window2;
          Frame_alloc.free (Mm_struct.frames mm) old.Pte.pfn;
          `Migrated)

let migrate_range m ~cpu ~mm ~vpn ~pages =
  let migrated = ref 0 in
  for v = vpn to vpn + pages - 1 do
    match migrate_page m ~cpu ~mm ~vpn:v with
    | `Migrated -> incr migrated
    | `Skipped -> ()
  done;
  !migrated
