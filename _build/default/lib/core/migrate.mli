(** Page migration: move a live page to a new physical frame, the way NUMA
    balancing / memory compaction do (paper §2.1 lists both as TLB flush
    sources; §2.3.2's footnote shows LATR's migration path racing exactly
    here).

    The protocol per page: allocate the destination frame, write-protect
    the PTE and shoot it down (writers must fault and wait), copy, install
    the new frame writable, shoot down again, free the old frame. The
    checker's frame-remap detection makes any missing flush in this
    sequence fatal, which is what the tests exercise. *)

(** Migrate the page at [vpn] to a fresh frame. Returns [`Migrated] or
    [`Skipped] (no present mapping, or raced). Takes mmap_sem for read. *)
val migrate_page :
  Machine.t -> cpu:int -> mm:Mm_struct.t -> vpn:int -> [ `Migrated | `Skipped ]

(** Migrate every present page in \[vpn, vpn+pages); returns the number
    migrated. *)
val migrate_range : Machine.t -> cpu:int -> mm:Mm_struct.t -> vpn:int -> pages:int -> int
