type t = {
  mutable n_readers : int;
  mutable writer : bool;
  mutable writers_waiting : int;
  q : Waitq.t;
}

let create engine = { n_readers = 0; writer = false; writers_waiting = 0; q = Waitq.create engine }

let rec down_read t =
  if t.writer || t.writers_waiting > 0 then begin
    Waitq.wait t.q;
    down_read t
  end
  else t.n_readers <- t.n_readers + 1

let up_read t =
  if t.n_readers <= 0 then invalid_arg "Rwsem.up_read: not held";
  t.n_readers <- t.n_readers - 1;
  if t.n_readers = 0 then Waitq.signal_all t.q

let rec down_write t =
  if t.writer || t.n_readers > 0 then begin
    t.writers_waiting <- t.writers_waiting + 1;
    Waitq.wait t.q;
    t.writers_waiting <- t.writers_waiting - 1;
    down_write t
  end
  else t.writer <- true

let up_write t =
  if not t.writer then invalid_arg "Rwsem.up_write: not held";
  t.writer <- false;
  Waitq.signal_all t.q

let with_read t f =
  down_read t;
  Fun.protect ~finally:(fun () -> up_read t) f

let with_write t f =
  down_write t;
  Fun.protect ~finally:(fun () -> up_write t) f

let readers t = t.n_readers
let writer_held t = t.writer
let waiting t = Waitq.waiters t.q
