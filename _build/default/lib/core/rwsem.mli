(** Reader-writer semaphore (models mm->mmap_sem).

    Writers are exclusive; readers share. Waiters block as simulated
    processes. Fairness is writer-preferring like Linux's rwsem enough for
    the workloads: a queued writer blocks new readers. The userspace-safe
    batching optimization (§4.2) piggybacks its flush barrier on the release
    of this semaphore; the syscall layer performs the deferred shootdown
    just before calling {!up_write}. *)

type t

val create : Engine.t -> t

val down_read : t -> unit
val up_read : t -> unit
val down_write : t -> unit
val up_write : t -> unit

(** Run [f] under the lock, releasing on exception. *)
val with_read : t -> (unit -> 'a) -> 'a

val with_write : t -> (unit -> 'a) -> 'a

(** Current state, for tests. *)
val readers : t -> int

val writer_held : t -> bool
val waiting : t -> int
