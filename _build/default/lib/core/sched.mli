(** Address-space loading, PCID recycling and lazy-TLB mode.

    [switch_mm] mirrors Linux's switch_mm_irqs_off: pick one of the 6
    dynamic ASIDs, flush it if it is recycled from another address space,
    write CR3, and — if the address space changed PTEs while it was away —
    catch up via the generation check. Lazy mode models kernel threads that
    keep the previous mm loaded; shootdown initiators skip lazy CPUs, so a
    CPU leaving lazy mode must re-check generations before touching user
    mappings. *)

(** Load [mm] on [cpu]. Updates cpumasks, ASID bookkeeping and pays the CR3
    switch. *)
val switch_mm : Machine.t -> cpu:int -> Mm_struct.t -> unit

(** Unload the current mm (thread exit): clears the cpumask bit. *)
val unload : Machine.t -> cpu:int -> unit

(** Enter lazy-TLB mode (a kernel thread is now running on [cpu] with the
    user mm still loaded). *)
val enter_lazy : Machine.t -> cpu:int -> unit

(** Leave lazy mode and synchronize with any generations missed while
    shootdowns skipped this CPU. *)
val exit_lazy : Machine.t -> cpu:int -> unit
