(** The system calls the paper's workloads exercise, with mitigation-mode
    entry/exit costs, PTI's deferred user-PCID flush at kernel exit (§3.4),
    and userspace-safe batching (§4.2).

    Batching-eligible calls (msync, munmap, madvise(DONTNEED), fdatasync)
    mark the CPU as [batched_mode] for their duration: their own flushes
    defer to the mmap_sem-release barrier, and other initiators may skip
    IPI-ing this CPU, which then synchronizes via the generation check on
    the way out. All calls must run on a CPU with an address space loaded
    (see {!Kernel.spawn_user}). *)

(** Anonymous or file-backed mapping; returns the base virtual address.
    Lazy: no PTEs are created until pages are touched. [page_size = Two_m]
    creates an anonymous hugepage mapping ([pages] still in 4 KiB units,
    must be a multiple of 512); its flushes use the 2 MiB stride. *)
val mmap :
  Machine.t ->
  cpu:int ->
  pages:int ->
  ?writable:bool ->
  ?executable:bool ->
  ?backing:Vma.backing ->
  ?page_size:Tlb.page_size ->
  unit ->
  int

(** Unmap, releasing page tables (so early ack is disabled for its flush)
    and freeing privately owned frames after the shootdown completes. *)
val munmap : Machine.t -> cpu:int -> addr:int -> pages:int -> unit

(** madvise(MADV_DONTNEED): drop PTEs and reclaim anonymous frames; the
    paper's microbenchmark driver. *)
val madvise_dontneed : Machine.t -> cpu:int -> addr:int -> pages:int -> unit

(** Change protection of \[addr, addr+pages); updates VMAs and live PTEs,
    then flushes. *)
val mprotect : Machine.t -> cpu:int -> addr:int -> pages:int -> writable:bool -> unit

(** Move the mapping at \[addr, addr+pages) to a fresh address range
    (MREMAP_MAYMOVE): VMAs and live PTEs are rebased without copying
    frames, the old range is shot down (page tables freed), and the new
    base address returned. *)
val mremap : Machine.t -> cpu:int -> addr:int -> pages:int -> int

(** Write back dirty pages of the shared file mapping covering the range:
    write-protect + clean each dirty PTE (one flush each — the
    shootdown-storm path), then write the page out. *)
val msync : Machine.t -> cpu:int -> addr:int -> pages:int -> unit

(** Write back every dirty page of [file] through whatever mapping of it
    exists in the calling address space (sysbench's fdatasync). *)
val fdatasync : Machine.t -> cpu:int -> file:File.t -> unit

(** A null syscall: enter + exit only (used to measure mode overheads). *)
val null : Machine.t -> cpu:int -> unit
