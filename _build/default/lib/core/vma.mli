(** Virtual memory areas and the per-address-space VMA set.

    A simplified mmap layer: VMAs are non-overlapping page ranges with
    permissions and a backing (anonymous, or a file mapped shared or
    private). Removal splits partially covered VMAs, as munmap does. *)

type backing =
  | Anonymous
  | File_shared of { file : File.t; offset : int }  (** page offset in file *)
  | File_private of { file : File.t; offset : int }  (** copy-on-write *)

type t = {
  start_vpn : int;
  pages : int;  (** always in 4 KiB units, even for hugepage VMAs *)
  writable : bool;
  executable : bool;
  backing : backing;
  page_size : Tlb.page_size;  (** [Two_m]: faults install 2 MiB mappings *)
}

(** For [page_size = Two_m], [start_vpn] and [pages] must be 2 MiB-aligned
    (anonymous backing only). *)
val make :
  start_vpn:int -> pages:int -> ?writable:bool -> ?executable:bool ->
  ?backing:backing -> ?page_size:Tlb.page_size -> unit -> t

val end_vpn : t -> int
val contains : t -> vpn:int -> bool

(** Backing file page index for [vpn], if file-backed. *)
val file_page : t -> vpn:int -> (File.t * int) option

module Set : sig
  type set

  val empty : set
  val cardinal : set -> int

  (** Insert; raises [Invalid_argument] on overlap with an existing VMA. *)
  val add : set -> t -> set

  (** VMA covering [vpn]. *)
  val find : set -> vpn:int -> t option

  (** Remove \[vpn, vpn+pages), splitting boundary VMAs. Returns the new set
      and the removed pieces (clipped to the range). *)
  val remove_range : set -> vpn:int -> pages:int -> set * t list

  (** Does \[vpn, vpn+pages) overlap any VMA? *)
  val overlaps : set -> vpn:int -> pages:int -> bool

  val iter : set -> f:(t -> unit) -> unit
  val to_list : set -> t list
end
