lib/hw/apic.ml: Array Costs Cpu Engine List Topology
