lib/hw/apic.mli: Costs Cpu Engine Topology
