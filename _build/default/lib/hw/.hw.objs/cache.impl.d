lib/hw/cache.ml: Costs Format Int List Option Set Topology
