lib/hw/cache.mli: Costs Format Topology
