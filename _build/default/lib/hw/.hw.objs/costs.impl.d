lib/hw/costs.ml: Topology
