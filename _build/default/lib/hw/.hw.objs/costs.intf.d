lib/hw/costs.mli: Topology
