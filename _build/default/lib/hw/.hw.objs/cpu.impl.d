lib/hw/cpu.ml: Costs Engine Fun Printf Process Queue Stdlib Tlb Topology Waitq
