lib/hw/cpu.mli: Costs Engine Tlb Topology
