lib/hw/tlb.ml: Format Hashtbl List Option Queue
