lib/hw/tlb.mli: Format
