lib/hw/topology.ml: Format Hashtbl List Option Printf
