lib/hw/topology.mli: Format
