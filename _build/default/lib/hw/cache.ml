module Int_set = Set.Make (Int)

type totals = {
  reads : int;
  writes : int;
  local_hits : int;
  smt_transfers : int;
  same_socket_transfers : int;
  cross_socket_transfers : int;
  cycles : int;
}

type registry = {
  topo : Topology.t;
  costs : Costs.t;
  mutable t_reads : int;
  mutable t_writes : int;
  mutable t_local : int;
  mutable t_smt : int;
  mutable t_same : int;
  mutable t_cross : int;
  mutable t_cycles : int;
  mutable lines : line list;
}

and line = {
  reg : registry;
  line_name : string;
  mutable owner : Topology.cpu_id option;  (* last writer *)
  mutable sharers : Int_set.t;
  mutable n_accesses : int;
  mutable n_transfers : int;
}

let create_registry topo costs =
  {
    topo;
    costs;
    t_reads = 0;
    t_writes = 0;
    t_local = 0;
    t_smt = 0;
    t_same = 0;
    t_cross = 0;
    t_cycles = 0;
    lines = [];
  }

let create_line reg ~name =
  let l =
    { reg; line_name = name; owner = None; sharers = Int_set.empty; n_accesses = 0; n_transfers = 0 }
  in
  reg.lines <- l :: reg.lines;
  l

let name l = l.line_name

let record l (d : Topology.distance) cost =
  let reg = l.reg in
  l.n_accesses <- l.n_accesses + 1;
  reg.t_cycles <- reg.t_cycles + cost;
  match d with
  | Self -> reg.t_local <- reg.t_local + 1
  | Smt_sibling ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_smt <- reg.t_smt + 1
  | Same_socket ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_same <- reg.t_same + 1
  | Cross_socket ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_cross <- reg.t_cross + 1

let distance_rank = function
  | Topology.Self -> 0
  | Topology.Smt_sibling -> 1
  | Topology.Same_socket -> 2
  | Topology.Cross_socket -> 3

let holders l ~by =
  let hs =
    match l.owner with
    | Some o -> Int_set.add o l.sharers
    | None -> l.sharers
  in
  Int_set.remove by hs

let extreme_holder l ~by ~pick =
  Int_set.fold
    (fun cpu acc ->
      let d = Topology.distance l.reg.topo by cpu in
      match acc with None -> Some d | Some best -> Some (pick best d))
    (holders l ~by) None

(* A write must invalidate every sharer: priced by the farthest one. *)
let farthest_holder l ~by =
  extreme_holder l ~by ~pick:(fun a b -> if distance_rank a >= distance_rank b then a else b)

(* A read fetches from the closest copy. *)
let nearest_holder l ~by =
  extreme_holder l ~by ~pick:(fun a b -> if distance_rank a <= distance_rank b then a else b)

let read l ~by =
  let reg = l.reg in
  reg.t_reads <- reg.t_reads + 1;
  if Int_set.mem by l.sharers || l.owner = Some by then begin
    record l Self reg.costs.line_local;
    l.sharers <- Int_set.add by l.sharers;
    reg.costs.line_local
  end
  else begin
    let d = Option.value (nearest_holder l ~by) ~default:Topology.Self in
    let cost = Costs.line_transfer reg.costs d in
    record l d cost;
    l.sharers <- Int_set.add by l.sharers;
    cost
  end

(* Stores retire through the store buffer: the writer does not stall for
   the ownership transfer (the RFO completes asynchronously), so the
   writer's visible cost is local. The invalidation still moves ownership
   — the *next reader* pays the transfer — and is recorded as coherence
   traffic by distance. Atomics, by contrast, stall for the line. *)
let write l ~by =
  let reg = l.reg in
  reg.t_writes <- reg.t_writes + 1;
  let d =
    let exclusive =
      l.owner = Some by && Int_set.subset l.sharers (Int_set.singleton by)
    in
    if exclusive then Topology.Self
    else Option.value (farthest_holder l ~by) ~default:Topology.Self
  in
  record l d reg.costs.line_local;
  l.owner <- Some by;
  l.sharers <- Int_set.singleton by;
  reg.costs.line_local

let stalling_write l ~by =
  let reg = l.reg in
  reg.t_writes <- reg.t_writes + 1;
  let exclusive = l.owner = Some by && Int_set.subset l.sharers (Int_set.singleton by) in
  let cost, d =
    if exclusive then (reg.costs.line_local, Topology.Self)
    else begin
      match farthest_holder l ~by with
      | None -> (reg.costs.line_local, Topology.Self)
      | Some d -> (Costs.line_transfer reg.costs d, d)
    end
  in
  record l d cost;
  l.owner <- Some by;
  l.sharers <- Int_set.singleton by;
  cost

let atomic l ~by = stalling_write l ~by + l.reg.costs.atomic_op

let accesses l = l.n_accesses
let line_transfers l = l.n_transfers

let totals reg =
  {
    reads = reg.t_reads;
    writes = reg.t_writes;
    local_hits = reg.t_local;
    smt_transfers = reg.t_smt;
    same_socket_transfers = reg.t_same;
    cross_socket_transfers = reg.t_cross;
    cycles = reg.t_cycles;
  }

let reset_stats reg =
  reg.t_reads <- 0;
  reg.t_writes <- 0;
  reg.t_local <- 0;
  reg.t_smt <- 0;
  reg.t_same <- 0;
  reg.t_cross <- 0;
  reg.t_cycles <- 0;
  List.iter
    (fun l ->
      l.n_accesses <- 0;
      l.n_transfers <- 0)
    reg.lines

let pp_totals fmt t =
  Format.fprintf fmt
    "reads=%d writes=%d local=%d smt=%d same-socket=%d cross-socket=%d cycles=%d"
    t.reads t.writes t.local_hits t.smt_transfers t.same_socket_transfers
    t.cross_socket_transfers t.cycles
