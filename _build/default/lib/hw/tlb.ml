type page_size = Four_k | Two_m

let bytes_of_page_size = function Four_k -> 4096 | Two_m -> 2 * 1024 * 1024

type entry = {
  vpn : int;
  pfn : int;
  pcid : int;
  size : page_size;
  global : bool;
  writable : bool;
  fractured : bool;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invlpg_ops : int;
  invpcid_ops : int;
  full_flushes : int;
  fracture_full_flushes : int;
}

(* Keys: (pcid, tag, size); 2 MiB entries are tagged by vpn lsr 9 so a 4 KiB
   lookup can find its covering hugepage. Global entries live in a separate
   table because they match regardless of PCID. *)
type key = int * int * page_size

type t = {
  cap : int;
  table : (key, entry) Hashtbl.t;
  globals : ((int * page_size), entry) Hashtbl.t;
  order : key Queue.t;  (* FIFO eviction for the non-global table *)
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_insertions : int;
  mutable s_evictions : int;
  mutable s_invlpg : int;
  mutable s_invpcid : int;
  mutable s_full : int;
  mutable s_fracture_full : int;
  mutable pwc : bool;
  mutable fracture : bool;
}

let create ?(capacity = 1536) () =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  {
    cap = capacity;
    table = Hashtbl.create 1024;
    globals = Hashtbl.create 64;
    order = Queue.create ();
    s_hits = 0;
    s_misses = 0;
    s_insertions = 0;
    s_evictions = 0;
    s_invlpg = 0;
    s_invpcid = 0;
    s_full = 0;
    s_fracture_full = 0;
    pwc = false;
    fracture = false;
  }

let capacity t = t.cap
let occupancy t = Hashtbl.length t.table + Hashtbl.length t.globals

let tag_of vpn = function Four_k -> vpn | Two_m -> vpn lsr 9

let find t ~pcid ~vpn =
  let try_key size =
    match Hashtbl.find_opt t.table (pcid, tag_of vpn size, size) with
    | Some e -> Some e
    | None -> Hashtbl.find_opt t.globals (tag_of vpn size, size)
  in
  match try_key Four_k with Some e -> Some e | None -> try_key Two_m

let lookup t ~pcid ~vpn =
  match find t ~pcid ~vpn with
  | Some e ->
      t.s_hits <- t.s_hits + 1;
      Some e
  | None ->
      t.s_misses <- t.s_misses + 1;
      None

let mem t ~pcid ~vpn = Option.is_some (find t ~pcid ~vpn)

(* Evict FIFO until under capacity; queue entries may be stale (flushed
   already), in which case they are skipped for free. *)
let rec make_room t =
  if Hashtbl.length t.table >= t.cap then begin
    match Queue.take_opt t.order with
    | None -> ()
    | Some key ->
        if Hashtbl.mem t.table key then begin
          Hashtbl.remove t.table key;
          t.s_evictions <- t.s_evictions + 1
        end;
        make_room t
  end

let insert t e =
  t.s_insertions <- t.s_insertions + 1;
  if e.fractured then t.fracture <- true;
  if e.global then Hashtbl.replace t.globals (tag_of e.vpn e.size, e.size) e
  else begin
    make_room t;
    let key = (e.pcid, tag_of e.vpn e.size, e.size) in
    if not (Hashtbl.mem t.table key) then Queue.push key t.order;
    Hashtbl.replace t.table key e
  end

let full_flush_internal t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.globals;
  Queue.clear t.order;
  t.pwc <- false;
  t.fracture <- false

let flush_all t =
  t.s_full <- t.s_full + 1;
  full_flush_internal t

(* A selective flush on a fractured TLB is promoted to a full flush. *)
let fracture_promote t =
  t.s_fracture_full <- t.s_fracture_full + 1;
  full_flush_internal t

let drop_selective t ~pcid ~vpn ~drop_globals =
  List.iter
    (fun size ->
      Hashtbl.remove t.table (pcid, tag_of vpn size, size);
      if drop_globals then Hashtbl.remove t.globals (tag_of vpn size, size))
    [ Four_k; Two_m ]

let invlpg t ~current_pcid ~vpn =
  t.s_invlpg <- t.s_invlpg + 1;
  if t.fracture then fracture_promote t
  else begin
    drop_selective t ~pcid:current_pcid ~vpn ~drop_globals:true;
    t.pwc <- false
  end

let drop t ~pcid ~vpn = drop_selective t ~pcid ~vpn ~drop_globals:false

let invpcid_addr t ~pcid ~vpn =
  t.s_invpcid <- t.s_invpcid + 1;
  if t.fracture then fracture_promote t
  else drop_selective t ~pcid ~vpn ~drop_globals:false

let drop_pcid t ~pcid =
  let doomed =
    Hashtbl.fold
      (fun ((p, _, _) as key) _ acc -> if p = pcid then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed

let flush_pcid t ~pcid =
  t.s_invpcid <- t.s_invpcid + 1;
  drop_pcid t ~pcid

let cr3_flush t ~pcid = drop_pcid t ~pcid

let pwc_warm t = t.pwc
let warm_pwc t = t.pwc <- true
let fracture_flag t = t.fracture

let stats t =
  {
    hits = t.s_hits;
    misses = t.s_misses;
    insertions = t.s_insertions;
    evictions = t.s_evictions;
    invlpg_ops = t.s_invlpg;
    invpcid_ops = t.s_invpcid;
    full_flushes = t.s_full;
    fracture_full_flushes = t.s_fracture_full;
  }

let reset_stats t =
  t.s_hits <- 0;
  t.s_misses <- 0;
  t.s_insertions <- 0;
  t.s_evictions <- 0;
  t.s_invlpg <- 0;
  t.s_invpcid <- 0;
  t.s_full <- 0;
  t.s_fracture_full <- 0

let entries t =
  let non_global = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
  Hashtbl.fold (fun _ e acc -> e :: acc) t.globals non_global

let pp_stats fmt s =
  Format.fprintf fmt
    "hits=%d misses=%d ins=%d evict=%d invlpg=%d invpcid=%d full=%d fracture-full=%d"
    s.hits s.misses s.insertions s.evictions s.invlpg_ops s.invpcid_ops
    s.full_flushes s.fracture_full_flushes
