lib/mm/addr.ml: List Tlb
