lib/mm/addr.mli: Tlb
