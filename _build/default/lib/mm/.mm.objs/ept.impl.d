lib/mm/ept.ml: Addr Page_table Pte Tlb
