lib/mm/ept.mli: Page_table Pte Tlb
