lib/mm/frame_alloc.ml: Addr Array Bytes Printf Queue
