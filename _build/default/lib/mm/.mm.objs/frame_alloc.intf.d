lib/mm/frame_alloc.mli:
