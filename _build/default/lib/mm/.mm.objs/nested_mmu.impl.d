lib/mm/nested_mmu.ml: Ept List Page_table Pte Tlb
