lib/mm/nested_mmu.mli: Ept Page_table Tlb
