lib/mm/page_table.ml: Addr Hashtbl List Printf Pte Stdlib Tlb
