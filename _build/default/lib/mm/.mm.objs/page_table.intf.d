lib/mm/page_table.mli: Pte Tlb
