lib/mm/pte.ml: Format
