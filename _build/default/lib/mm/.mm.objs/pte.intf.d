lib/mm/pte.mli: Format
