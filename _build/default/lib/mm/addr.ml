let page_shift = 12
let page_size = 1 lsl page_shift
let pages_per_huge = 512
let huge_page_size = page_size * pages_per_huge

let vpn_of_addr addr = addr lsr page_shift
let addr_of_vpn vpn = vpn lsl page_shift
let page_align_down addr = addr land lnot (page_size - 1)
let page_align_up addr = page_align_down (addr + page_size - 1)
let huge_aligned vpn = vpn land (pages_per_huge - 1) = 0

let pages_spanning ~addr ~len =
  if len <= 0 then 0
  else begin
    let first = vpn_of_addr addr in
    let last = vpn_of_addr (addr + len - 1) in
    last - first + 1
  end

let vpns_of_range ~addr ~len =
  let n = pages_spanning ~addr ~len in
  List.init n (fun i -> vpn_of_addr addr + i)

let pages_of_size = function Tlb.Four_k -> 1 | Tlb.Two_m -> pages_per_huge

let stride_shift = function Tlb.Four_k -> 12 | Tlb.Two_m -> 21
