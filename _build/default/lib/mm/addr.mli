(** Virtual-address arithmetic helpers.

    Addresses are byte addresses held in OCaml ints; page numbers (VPN/PFN)
    are in 4 KiB units throughout the simulator, matching {!Tlb.entry}. *)

val page_shift : int
val page_size : int

(** 4 KiB pages per 2 MiB hugepage (512). *)
val pages_per_huge : int

val huge_page_size : int

(** Byte address -> 4 KiB virtual page number. *)
val vpn_of_addr : int -> int

(** 4 KiB virtual page number -> byte address of the page base. *)
val addr_of_vpn : int -> int

(** Round down/up to a 4 KiB boundary. *)
val page_align_down : int -> int

val page_align_up : int -> int

(** Is the VPN 2 MiB-aligned (could start a hugepage)? *)
val huge_aligned : int -> bool

(** Number of 4 KiB pages covering \[addr, addr+len). *)
val pages_spanning : addr:int -> len:int -> int

(** VPNs covering \[addr, addr+len), in order. *)
val vpns_of_range : addr:int -> len:int -> int list

(** Number of 4 KiB pages covered by one page of [size]. *)
val pages_of_size : Tlb.page_size -> int

(** log2(bytes) of a page of [size]: the "stride shift" of flush_tlb_info. *)
val stride_shift : Tlb.page_size -> int
