type t = { table : Page_table.t }

let create () = { table = Page_table.create () }

let map t ~gfn ~size ~hfn =
  (match size with
  | Tlb.Two_m when not (Addr.huge_aligned gfn && Addr.huge_aligned hfn) ->
      invalid_arg "Ept.map: 2MiB mapping must be aligned on both sides"
  | Tlb.Two_m | Tlb.Four_k -> ());
  Page_table.map t.table ~vpn:gfn ~size (Pte.user_data ~pfn:hfn)

let unmap t ~gfn = ignore (Page_table.unmap t.table ~vpn:gfn ())

let translate t ~gfn =
  match Page_table.walk t.table ~vpn:gfn with
  | None -> None
  | Some w ->
      let base = match w.size with Tlb.Four_k -> gfn | Tlb.Two_m -> gfn land lnot 511 in
      let offset = gfn - base in
      Some (w.pte.Pte.pfn + offset, w.size)

let mapped_count t = Page_table.mapped_count t.table

module Nested = struct
  type result = {
    hfn : int;
    guest_size : Tlb.page_size;
    host_size : Tlb.page_size;
    effective_size : Tlb.page_size;
    fractured : bool;
    levels : int;
    pte : Pte.t;
  }

  let translate ~guest ~ept ~vpn =
    match Page_table.walk guest ~vpn with
    | None -> None
    | Some gw ->
        let gbase = match gw.size with Tlb.Four_k -> vpn | Tlb.Two_m -> vpn land lnot 511 in
        let gfn = gw.pte.Pte.pfn + (vpn - gbase) in
        (match translate ept ~gfn with
        | None -> None
        | Some (hfn, host_size) ->
            let effective_size =
              match (gw.size, host_size) with
              | Tlb.Two_m, Tlb.Two_m -> Tlb.Two_m
              | _ -> Tlb.Four_k
            in
            let fractured = gw.size = Tlb.Two_m && host_size = Tlb.Four_k in
            (* Each guest level of the walk re-translates through the EPT;
               4 guest levels x ~4 host levels bounds the 2D walk depth. *)
            let host_levels = match host_size with Tlb.Four_k -> 4 | Tlb.Two_m -> 3 in
            Some
              {
                hfn;
                guest_size = gw.size;
                host_size;
                effective_size;
                fractured;
                levels = gw.levels * host_levels;
                pte = gw.pte;
              })
end
