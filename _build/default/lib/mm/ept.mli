(** Extended page tables (guest-physical to host-physical) and nested
    translation, for the page-fracturing experiment (paper §7, Table 4).

    A nested ("2D") walk combines the guest's GVA→GPA mapping with the
    host's GPA→HPA mapping; the TLB caches the combined GVA→HPA translation
    at the {e smaller} of the two page sizes. A guest 2 MiB page backed by
    host 4 KiB pages is thereby "fractured": the TLB holds up to 512
    independent 4 KiB entries for it, and Intel CPUs flag the TLB so that
    any later selective flush is promoted to a full flush. *)

type t

val create : unit -> t

(** Map guest frame number [gfn] to host frame number [hfn]. For [Two_m],
    both must be 2 MiB-aligned. *)
val map : t -> gfn:int -> size:Tlb.page_size -> hfn:int -> unit

val unmap : t -> gfn:int -> unit

(** GPA→HPA lookup: host frame backing [gfn] plus the host page size. *)
val translate : t -> gfn:int -> (int * Tlb.page_size) option

val mapped_count : t -> int

module Nested : sig
  type result = {
    hfn : int;  (** host frame backing the 4 KiB guest virtual page *)
    guest_size : Tlb.page_size;
    host_size : Tlb.page_size;
    effective_size : Tlb.page_size;  (** what the TLB can cache *)
    fractured : bool;  (** guest 2 MiB over host 4 KiB *)
    levels : int;  (** total page-table levels touched (guest + host walks) *)
    pte : Pte.t;  (** the guest PTE (permissions) *)
  }

  (** Full 2D walk of guest virtual page [vpn]. [None] if either level is
      unmapped or non-present. *)
  val translate : guest:Page_table.t -> ept:t -> vpn:int -> result option
end
