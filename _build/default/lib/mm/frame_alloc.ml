exception Out_of_memory

type t = {
  frames : int;
  used : Bytes.t;  (* 1 byte per frame: 0 free, 1 allocated *)
  refcounts : int array;
  generations : int array;
  free_list : int Queue.t;  (* singles *)
  mutable next_fresh : int;  (* frames never yet allocated, bump pointer *)
  mutable huge_floor : int;  (* hugepage runs grow down from the top *)
  mutable n_allocated : int;
}

let create ~frames =
  if frames <= 0 then invalid_arg "Frame_alloc.create: frames must be positive";
  {
    frames;
    used = Bytes.make frames '\000';
    refcounts = Array.make frames 0;
    generations = Array.make frames 0;
    free_list = Queue.create ();
    next_fresh = 0;
    huge_floor = frames;
    n_allocated = 0;
  }

let is_allocated t pfn =
  pfn >= 0 && pfn < t.frames && Bytes.get t.used pfn = '\001'

let mark t pfn v =
  Bytes.set t.used pfn (if v then '\001' else '\000')

let alloc t =
  let pfn =
    match Queue.take_opt t.free_list with
    | Some pfn -> pfn
    | None ->
        if t.next_fresh >= t.huge_floor then raise Out_of_memory
        else begin
          let pfn = t.next_fresh in
          t.next_fresh <- t.next_fresh + 1;
          pfn
        end
  in
  assert (not (is_allocated t pfn));
  mark t pfn true;
  t.refcounts.(pfn) <- 1;
  t.n_allocated <- t.n_allocated + 1;
  pfn

let ref_get t pfn =
  if not (is_allocated t pfn) then
    invalid_arg (Printf.sprintf "Frame_alloc.ref_get: frame %d not allocated" pfn);
  t.refcounts.(pfn) <- t.refcounts.(pfn) + 1

let refcount t pfn =
  if pfn < 0 || pfn >= t.frames then invalid_arg "Frame_alloc.refcount";
  t.refcounts.(pfn)

let alloc_huge t =
  (* The run must be 2 MiB-aligned: round the candidate base down. *)
  let base = (t.huge_floor - Addr.pages_per_huge) land lnot (Addr.pages_per_huge - 1) in
  if base < t.next_fresh then raise Out_of_memory;
  t.huge_floor <- base;
  for pfn = base to base + Addr.pages_per_huge - 1 do
    assert (not (is_allocated t pfn));
    mark t pfn true
  done;
  t.n_allocated <- t.n_allocated + Addr.pages_per_huge;
  base

let free t pfn =
  if not (is_allocated t pfn) then
    invalid_arg (Printf.sprintf "Frame_alloc.free: frame %d not allocated" pfn);
  t.refcounts.(pfn) <- t.refcounts.(pfn) - 1;
  if t.refcounts.(pfn) = 0 then begin
    mark t pfn false;
    t.generations.(pfn) <- t.generations.(pfn) + 1;
    t.n_allocated <- t.n_allocated - 1;
    Queue.push pfn t.free_list
  end

let free_huge t base =
  if base land (Addr.pages_per_huge - 1) <> 0 then
    invalid_arg "Frame_alloc.free_huge: base not hugepage-aligned";
  for pfn = base to base + Addr.pages_per_huge - 1 do
    if not (is_allocated t pfn) then
      invalid_arg (Printf.sprintf "Frame_alloc.free_huge: frame %d not allocated" pfn);
    mark t pfn false;
    t.generations.(pfn) <- t.generations.(pfn) + 1
  done;
  t.n_allocated <- t.n_allocated - Addr.pages_per_huge
(* Hugepage runs are not recycled into the single-frame free list; they are
   rare in the experiments and keeping them apart preserves alignment. *)

let total t = t.frames
let allocated t = t.n_allocated
let free_count t = t.frames - t.n_allocated

let generation t pfn =
  if pfn < 0 || pfn >= t.frames then invalid_arg "Frame_alloc.generation";
  t.generations.(pfn)
