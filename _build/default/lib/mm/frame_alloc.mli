(** Physical frame allocator with per-frame reference counts.

    Hands out 4 KiB frame numbers (and 512-frame-aligned hugepage runs) from
    a fixed pool, with a free list so teardown paths genuinely recycle
    memory — the recycling is what makes stale TLB entries dangerous, which
    the {!Checker} exploits to detect unsafe flush batching.

    Frames are reference-counted like struct page: {!alloc} returns a frame
    at count 1, every additional mapping takes {!ref_get}, and {!free}
    drops one reference, releasing the frame when the last goes — the
    machinery COW sharing (fork, private file mappings) sits on. *)

type t

(** [create ~frames] with [frames] 4 KiB frames of "RAM". *)
val create : frames:int -> t

exception Out_of_memory

(** Allocate one 4 KiB frame at reference count 1. *)
val alloc : t -> int

(** Allocate a 2 MiB-aligned run of 512 frames; returns the first PFN.
    Hugepage runs are not reference-counted (never shared here). *)
val alloc_huge : t -> int

(** Take an additional reference on an allocated frame. *)
val ref_get : t -> int -> unit

(** Current reference count (0 when free). *)
val refcount : t -> int -> int

(** Drop one reference; the frame is released and recyclable when the last
    reference goes. *)
val free : t -> int -> unit

val free_huge : t -> int -> unit

(** Is the frame currently allocated? *)
val is_allocated : t -> int -> bool

val total : t -> int
val allocated : t -> int
val free_count : t -> int

(** Generation counter for a frame: bumped on every free, so a stale
    reference can detect reuse. *)
val generation : t -> int -> int
