(** Memory accesses through a TLB backed by (optionally nested) page
    tables: the substrate for the page-fracturing experiment (Table 4).

    With an EPT present, translations are the result of a 2D walk and are
    cached at the smaller of the guest/host page sizes; a guest 2 MiB page
    over host 4 KiB pages inserts {e fractured} entries, arming the TLB's
    fracture flag so that any subsequent selective flush degenerates to a
    full flush — the behaviour Table 4 measures. Without an EPT this is a
    plain bare-metal MMU. *)

type t

exception Guest_fault of int  (** VPN with no valid translation *)

val create : ?tlb_capacity:int -> guest:Page_table.t -> ?ept:Ept.t -> pcid:int -> unit -> t

val tlb : t -> Tlb.t

(** Translate one guest-virtual 4 KiB page, filling the TLB on a miss.
    Returns whether it hit. @raise Guest_fault on unmapped addresses. *)
val access : t -> vpn:int -> [ `Hit | `Miss_filled ]

(** Touch [pages] consecutive VPNs from [start_vpn]; returns (hits, misses). *)
val touch_range : t -> start_vpn:int -> pages:int -> int * int

(** Guest-initiated INVLPG of one page (fracture promotion applies). *)
val invlpg : t -> vpn:int -> unit

(** Guest-initiated full TLB flush (CR3 write). *)
val full_flush : t -> unit

(** The paper's §7 intermediate mitigation: the host tells the guest,
    through a paravirtual channel, whether page fracturing may happen on
    this VM. A hinted guest stops issuing selective flushes — each would
    silently become a full flush anyway — and goes straight to one full
    flush. *)
val set_paravirt_fracture_hint : t -> bool -> unit

val paravirt_fracture_hint : t -> bool

(** Flush a list of pages the way a hinted guest would: per-page INVLPG
    normally, a single full flush when the hint is set. Returns the number
    of flush instructions issued (the guest-visible cost driver). *)
val flush_pages : t -> vpns:int list -> int
