(** Four-level x86-64-style page tables (radix tree), with 2 MiB hugepage
    leaves at level 2.

    Unmapping can release empty page-table pages; whether tables were freed
    is reported to callers because the early-acknowledgement optimization
    must be disabled in that case (paper §3.2: speculative page walks
    through freed tables can machine-check). *)

type t

(** Result of a software page walk. *)
type walk = {
  pte : Pte.t;
  size : Tlb.page_size;
  levels : int;  (** page-table levels touched (4 for 4 KiB, 3 for 2 MiB) *)
}

type range_unmap = {
  removed : (int * Pte.t * Tlb.page_size) list;  (** (vpn, old pte, size) *)
  freed_tables : bool;  (** page-table pages were released *)
}

val create : unit -> t

(** Map one page. For [Two_m] the VPN must be 2 MiB-aligned; raises
    [Invalid_argument] otherwise or if the slot is occupied by a conflicting
    mapping. The PTE must be present. *)
val map : t -> vpn:int -> size:Tlb.page_size -> Pte.t -> unit

(** Remove the mapping covering [vpn] (an unaligned VPN inside a hugepage
    removes the whole hugepage). *)
val unmap : t -> vpn:int -> ?free_tables:bool -> unit -> range_unmap

(** Remove all mappings whose pages intersect \[vpn, vpn+pages). *)
val unmap_range : t -> vpn:int -> pages:int -> ?free_tables:bool -> unit -> range_unmap

(** Apply [f] to the PTE covering [vpn]; returns (old, new) or [None] if
    unmapped. *)
val update : t -> vpn:int -> f:(Pte.t -> Pte.t) -> (Pte.t * Pte.t) option

(** Software page walk. Returns [None] for non-present. *)
val walk : t -> vpn:int -> walk option

(** Present leaf count (hugepages count once). *)
val mapped_count : t -> int

(** Total page-table pages currently allocated for the tree (excl. root). *)
val table_pages : t -> int

(** Table pages released so far by unmaps with [free_tables]. *)
val tables_freed : t -> int

(** Monotone version, bumped by every mutation; lets caches detect change. *)
val version : t -> int

(** Iterate over present leaves as (vpn, pte, size). *)
val iter : t -> f:(int -> Pte.t -> Tlb.page_size -> unit) -> unit
