(** Page-table entries.

    Modelled as a record rather than packed bits; the fields mirror the x86
    bits the paper's code paths read: P, W, U/S, G, D, A, NX, plus the
    software COW marker Linux keeps in the VMA/PTE. *)

type t = {
  pfn : int;  (** physical frame number (4 KiB units) *)
  present : bool;
  writable : bool;
  user : bool;  (** U/S: accessible from ring 3 *)
  global : bool;  (** G: survives CR3 writes *)
  accessed : bool;
  dirty : bool;
  executable : bool;  (** inverse of NX *)
  cow : bool;  (** write-protected copy-on-write page *)
}

(** Non-present entry (all other fields meaningless but fixed). *)
val none : t

(** A present, writable, non-executable user mapping of [pfn]. *)
val user_data : pfn:int -> t

(** A present kernel mapping with the G bit. *)
val kernel_data : pfn:int -> t

(** Write-protect and mark COW. *)
val make_cow : t -> t

(** Resolve COW: new frame, writable, not COW. *)
val break_cow : t -> new_pfn:int -> t

val mark_accessed : t -> t
val mark_dirty : t -> t
val write_protect : t -> t
val clean : t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
