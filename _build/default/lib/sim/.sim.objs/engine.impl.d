lib/sim/engine.ml: Heap Printf
