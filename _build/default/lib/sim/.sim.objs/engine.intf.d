lib/sim/engine.mli:
