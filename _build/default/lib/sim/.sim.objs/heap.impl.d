lib/sim/heap.ml: Array Stdlib
