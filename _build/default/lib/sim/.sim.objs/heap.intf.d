lib/sim/heap.mli:
