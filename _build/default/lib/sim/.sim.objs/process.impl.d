lib/sim/process.ml: Effect Engine Fun Printexc Printf
