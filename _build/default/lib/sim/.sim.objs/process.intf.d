lib/sim/process.mli: Engine
