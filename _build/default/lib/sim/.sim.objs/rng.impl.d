lib/sim/rng.ml: Array Float Int64
