lib/sim/rng.mli:
