lib/sim/trace.ml: Engine Format List Stdlib String
