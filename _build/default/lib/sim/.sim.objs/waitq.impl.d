lib/sim/waitq.ml: Engine Process Queue
