type event = { time : int; seq : int; run : unit -> unit }

type t = {
  mutable now : int;
  mutable seq : int;
  mutable events_run : int;
  queue : event Heap.t;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () = { now = 0; seq = 0; events_run = 0; queue = Heap.create ~compare:compare_events }

let now t = t.now
let events_run t = t.events_run
let pending t = Heap.length t.queue

let schedule_at t ~time run =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time t.now);
  t.seq <- t.seq + 1;
  Heap.push t.queue { time; seq = t.seq; run }

let schedule t ~delay run =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) run

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.now <- ev.time;
      t.events_run <- t.events_run + 1;
      ev.run ();
      true

let run t = while step t do () done

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev when ev.time > time -> continue := false
    | Some _ -> ignore (step t)
  done;
  if t.now < time && Heap.is_empty t.queue then t.now <- time
