type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let initial_capacity = 64

let create ~compare = { compare; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.compare t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.compare t.data.(left) t.data.(!smallest) < 0 then smallest := left;
  if right < t.size && t.compare t.data.(right) t.data.(!smallest) < 0 then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_capacity t =
  if t.size = Array.length t.data then begin
    let capacity = Stdlib.max initial_capacity (2 * Array.length t.data) in
    let data = Array.make capacity t.data.(0) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t x =
  if Array.length t.data = 0 then t.data <- Array.make initial_capacity x
  else ensure_capacity t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let clear t = t.size <- 0

let to_list t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (t.data.(i) :: acc) in
  collect (t.size - 1) []
