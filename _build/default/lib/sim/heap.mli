(** Polymorphic binary min-heap, ordered by a user-supplied comparison.

    Used by {!Engine} as the pending-event queue; tie-breaking is the
    caller's responsibility (the engine compares [(time, sequence)] pairs so
    simultaneous events pop in insertion order). *)

type 'a t

(** [create ~compare] makes an empty heap. [compare a b < 0] means [a] pops
    before [b]. *)
val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** Smallest element, or [None] when empty. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element, or [None] when empty. *)
val pop : 'a t -> 'a option

(** Remove every element. *)
val clear : 'a t -> unit

(** Elements in arbitrary order (for inspection/testing). *)
val to_list : 'a t -> 'a list
