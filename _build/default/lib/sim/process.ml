open Effect
open Effect.Deep

exception Process_failure of string * exn

let () =
  Printexc.register_printer (function
    | Process_failure (name, inner) ->
        Some (Printf.sprintf "Process %S failed: %s" name (Printexc.to_string inner))
    | _ -> None)

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let current_name = ref "main"

let self_name () = !current_name

let suspend register = perform (Suspend register)

let spawn engine ~name f =
  let body () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise (Process_failure (name, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let resumed = ref false in
                    let resume () =
                      if !resumed then
                        invalid_arg
                          (Printf.sprintf "Process %s resumed twice" name);
                      resumed := true;
                      let saved = !current_name in
                      current_name := name;
                      Fun.protect
                        ~finally:(fun () -> current_name := saved)
                        (fun () -> continue k ())
                    in
                    register resume)
            | _ -> None);
      }
  in
  Engine.schedule engine ~delay:0 (fun () ->
      let saved = !current_name in
      current_name := name;
      Fun.protect ~finally:(fun () -> current_name := saved) body)

let delay engine cycles =
  if cycles < 0 then invalid_arg "Process.delay: negative delay";
  if cycles = 0 then ()
  else suspend (fun resume -> Engine.schedule engine ~delay:cycles resume)

let yield engine = suspend (fun resume -> Engine.schedule engine ~delay:0 resume)
