type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

(* splitmix64 output function: state advances by the golden gamma and the
   result is scrambled through two xor-shift-multiply rounds. *)
let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t ~p = float t < p

let exponential t ~mean =
  let u = float t in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let gaussian t ~mean ~stddev =
  let u1 = float t and u2 = float t in
  let u1 = if u1 <= 0.0 then 1e-12 else u1 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
