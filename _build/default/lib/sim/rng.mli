(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic decision in the simulator draws from an explicit [Rng.t]
    so that experiments are reproducible bit-for-bit given a seed. *)

type t

val create : seed:int64 -> t

(** [split t] derives an independent generator; use one per simulated entity
    so that adding draws in one place does not perturb another. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** Uniform integer in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** Bernoulli draw with probability [p]. *)
val bool : t -> p:float -> bool

(** Exponentially distributed float with the given [mean]. *)
val exponential : t -> mean:float -> float

(** Normally distributed float (Box-Muller). *)
val gaussian : t -> mean:float -> stddev:float -> float

(** Fisher-Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit

(** Pick a uniformly random element. Raises [Invalid_argument] on empty. *)
val choose : t -> 'a array -> 'a
