type t = {
  mutable samples : float list;
  mutable n : int;
  mutable sum : float;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sorted_cache : float array option;
}

let create () =
  {
    samples = [];
    n = 0;
    sum = 0.0;
    mean_acc = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    sorted_cache = None;
  }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted_cache <- None;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  (* Welford's online variance update. *)
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.mean_acc
let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
let min t = if t.n = 0 then 0.0 else t.min_v
let max t = if t.n = 0 then 0.0 else t.max_v

let sorted t =
  match t.sorted_cache with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted_cache <- Some a;
      a

let percentile t p =
  let a = sorted t in
  let n = Array.length a in
  if n = 0 then 0.0
  else if n = 1 then a.(0)
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end
  end

let median t = percentile t 50.0

let merge_into t other = List.iter (add t) other.samples

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p99=%.1f max=%.1f"
    (count t) (mean t) (stddev t) (min t) (median t) (percentile t 99.0) (max t)

module Histogram = struct
  type h = { lo : float; hi : float; width : float; bins : int array }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; width = (hi -. lo) /. float_of_int buckets; bins = Array.make buckets 0 }

  let bucket_of h x =
    let b = int_of_float ((x -. h.lo) /. h.width) in
    Stdlib.max 0 (Stdlib.min (Array.length h.bins - 1) b)

  let add h x =
    let b = bucket_of h x in
    h.bins.(b) <- h.bins.(b) + 1

  let counts h = Array.copy h.bins

  let pp fmt h =
    Array.iteri
      (fun i c ->
        let left = h.lo +. (float_of_int i *. h.width) in
        Format.fprintf fmt "[%.0f,%.0f): %d@." left (left +. h.width) c)
      h.bins
end
