(** Streaming statistics and simple fixed-width histograms.

    Experiment drivers accumulate per-iteration cycle counts here and the
    reporting layer extracts mean / stddev / percentiles, mirroring the
    paper's "average and standard deviation of 5 executions" methodology. *)

type t

val create : unit -> t

(** Record one sample. *)
val add : t -> float -> unit

val count : t -> int
val total : t -> float
val mean : t -> float

(** Sample standard deviation (Welford); 0 for fewer than two samples. *)
val stddev : t -> float

val min : t -> float
val max : t -> float

(** [percentile t p] for [p] in [\[0,100\]]; interpolates between kept
    samples. All samples are retained, so this is exact. *)
val percentile : t -> float -> float

val median : t -> float

(** Merge the second accumulator's samples into the first. *)
val merge_into : t -> t -> unit

val pp : Format.formatter -> t -> unit

(** Fixed-width histogram over [\[lo, hi)] with [buckets] bins; values out of
    range clamp into the edge bins. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  val counts : h -> int array
  val bucket_of : h -> float -> int
  val pp : Format.formatter -> h -> unit
end
