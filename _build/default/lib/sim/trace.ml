type record = { time : int; actor : string; event : string }

type t = {
  engine : Engine.t;
  mutable is_enabled : bool;
  mutable recs : record list; (* newest first *)
}

let create ?(enabled = false) engine = { engine; is_enabled = enabled; recs = [] }

let enable t = t.is_enabled <- true
let disable t = t.is_enabled <- false
let enabled t = t.is_enabled

let emit t ~actor event =
  if t.is_enabled then
    t.recs <- { time = Engine.now t.engine; actor; event } :: t.recs

let emitf t ~actor fmt =
  Format.kasprintf (fun event -> emit t ~actor event) fmt

let records t = List.rev t.recs

let clear t = t.recs <- []

let pp fmt t =
  let recs = records t in
  let actor_width =
    List.fold_left (fun w r -> Stdlib.max w (String.length r.actor)) 5 recs
  in
  List.iter
    (fun r -> Format.fprintf fmt "%8d | %-*s | %s@." r.time actor_width r.actor r.event)
    recs
