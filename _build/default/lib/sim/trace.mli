(** Lightweight event tracing.

    When enabled, simulation components append timestamped records that the
    quickstart example renders as a shootdown timeline. Disabled tracing is a
    no-op so experiment runs pay nothing. *)

type t

type record = { time : int; actor : string; event : string }

val create : ?enabled:bool -> Engine.t -> t
val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

(** Append a record (no-op when disabled). [actor] is typically "cpu3" or a
    process name; [event] is free-form. *)
val emit : t -> actor:string -> string -> unit

(** Printf-style convenience wrapper over {!emit}. *)
val emitf : t -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Records in chronological order. *)
val records : t -> record list

val clear : t -> unit

(** Render as an aligned "time | actor | event" listing. *)
val pp : Format.formatter -> t -> unit
