type t = { engine : Engine.t; queue : (unit -> unit) Queue.t }

let create engine = { engine; queue = Queue.create () }

let wait t = Process.suspend (fun resume -> Queue.push resume t.queue)

let signal_one t =
  match Queue.take_opt t.queue with
  | None -> ()
  | Some resume -> Engine.schedule t.engine ~delay:0 resume

let signal_all t =
  while not (Queue.is_empty t.queue) do
    signal_one t
  done

let waiters t = Queue.length t.queue

module Completion = struct
  type c = { q : t; mutable fired : bool }

  let create engine = { q = create engine; fired = false }

  let fire c =
    if not c.fired then begin
      c.fired <- true;
      signal_all c.q
    end

  let is_fired c = c.fired
  let wait c = if not c.fired then wait c.q
end
