(** Condition variables and one-shot completions for simulated processes.

    These are the only blocking primitives the kernel model uses: cores
    spin-waiting on shootdown acknowledgements, idle loops waiting for
    interrupts, and threads waiting on the mmap semaphore all sleep here. *)

type t

val create : Engine.t -> t

(** Block the calling process until the next signal. *)
val wait : t -> unit

(** Wake every waiter (they resume at the current instant, in wait order). *)
val signal_all : t -> unit

(** Wake the earliest waiter, if any. *)
val signal_one : t -> unit

(** Number of processes currently blocked. *)
val waiters : t -> int

(** One-shot event: waiting after {!Completion.fire} returns immediately. *)
module Completion : sig
  type c

  val create : Engine.t -> c
  val fire : c -> unit
  val is_fired : c -> bool
  val wait : c -> unit
end
