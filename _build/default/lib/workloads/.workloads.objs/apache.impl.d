lib/workloads/apache.ml: Access Array Checker Cpu File Format Kernel List Machine Opts Printf Rng Syscall Vma
