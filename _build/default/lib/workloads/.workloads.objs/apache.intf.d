lib/workloads/apache.mli: Opts
