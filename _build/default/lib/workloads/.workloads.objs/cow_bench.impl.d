lib/workloads/cow_bench.ml: Access Addr Checker File Format Kernel Machine Opts Stats Syscall Vma
