lib/workloads/cow_bench.mli: Opts
