lib/workloads/fracture.ml: Addr Ept List Nested_mmu Page_table Pte Tlb
