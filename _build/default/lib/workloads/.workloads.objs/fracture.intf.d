lib/workloads/fracture.mli: Nested_mmu Tlb
