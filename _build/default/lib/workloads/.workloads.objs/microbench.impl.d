lib/workloads/microbench.ml: Access Checker Costs Cpu Format Kernel Machine Opts Stats Syscall Topology
