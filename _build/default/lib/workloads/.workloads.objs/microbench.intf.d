lib/workloads/microbench.mli: Costs Opts Topology
