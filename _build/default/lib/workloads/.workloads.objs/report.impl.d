lib/workloads/report.ml: Buffer Float List Option Printf Stdlib String
