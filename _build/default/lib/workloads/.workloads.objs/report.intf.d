lib/workloads/report.mli:
