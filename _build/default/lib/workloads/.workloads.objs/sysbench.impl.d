lib/workloads/sysbench.ml: Access Addr Checker Cpu File Format Kernel List Machine Mm_struct Opts Printf Rng Stdlib Syscall Topology Vma
