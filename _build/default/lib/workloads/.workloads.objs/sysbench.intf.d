lib/workloads/sysbench.mli: Opts Topology
