type vm_shape = {
  label : string;
  host : Tlb.page_size option;
  guest : Tlb.page_size;
}

let table4_rows =
  [
    { label = "VM   host=4K guest=4K"; host = Some Tlb.Four_k; guest = Tlb.Four_k };
    { label = "VM   host=4K guest=2M"; host = Some Tlb.Four_k; guest = Tlb.Two_m };
    { label = "VM   host=2M guest=4K"; host = Some Tlb.Two_m; guest = Tlb.Four_k };
    { label = "VM   host=2M guest=2M"; host = Some Tlb.Two_m; guest = Tlb.Two_m };
    { label = "Bare-metal    4K"; host = None; guest = Tlb.Four_k };
    { label = "Bare-metal    2M"; host = None; guest = Tlb.Two_m };
  ]

type config = { working_set_pages : int; rounds : int; tlb_capacity : int }

let default_config = { working_set_pages = 1024; rounds = 100; tlb_capacity = 1536 }

type result = {
  shape : vm_shape;
  full_misses : int;
  selective_misses : int;
  fracture_promotions : int;
}

(* Base of the working set; 2 MiB-aligned so hugepage mappings are legal. *)
let base_vpn = 1 lsl 21

(* An address far from the working set that is never mapped: the paper
   stresses the flushed page "was not mapped in the page-tables so it could
   not have been cached in the TLB". *)
let victim_vpn = 1 lsl 30

let hfn_base = 1 lsl 22

let build_mmu config shape =
  let pages = config.working_set_pages in
  let guest = Page_table.create () in
  (* Guest mapping: GVA -> GPA, identity over the working set. *)
  (match shape.guest with
  | Tlb.Four_k ->
      for i = 0 to pages - 1 do
        Page_table.map guest ~vpn:(base_vpn + i) ~size:Tlb.Four_k
          (Pte.user_data ~pfn:(base_vpn + i))
      done
  | Tlb.Two_m ->
      let hugepages = (pages + Addr.pages_per_huge - 1) / Addr.pages_per_huge in
      for h = 0 to hugepages - 1 do
        let vpn = base_vpn + (h * Addr.pages_per_huge) in
        Page_table.map guest ~vpn ~size:Tlb.Two_m (Pte.user_data ~pfn:vpn)
      done);
  let ept =
    match shape.host with
    | None -> None
    | Some host_size ->
        let ept = Ept.create () in
        (match host_size with
        | Tlb.Four_k ->
            for i = 0 to pages - 1 do
              Ept.map ept ~gfn:(base_vpn + i) ~size:Tlb.Four_k ~hfn:(hfn_base + i)
            done
        | Tlb.Two_m ->
            let hugepages = (pages + Addr.pages_per_huge - 1) / Addr.pages_per_huge in
            for h = 0 to hugepages - 1 do
              let gfn = base_vpn + (h * Addr.pages_per_huge) in
              Ept.map ept ~gfn ~size:Tlb.Two_m ~hfn:(hfn_base + (h * Addr.pages_per_huge))
            done);
        Some ept
  in
  match ept with
  | Some ept ->
      Nested_mmu.create ~tlb_capacity:config.tlb_capacity ~guest ~ept ~pcid:1 ()
  | None -> Nested_mmu.create ~tlb_capacity:config.tlb_capacity ~guest ~pcid:1 ()

let run_regime config shape ~selective =
  let mmu = build_mmu config shape in
  for _ = 1 to config.rounds do
    ignore (Nested_mmu.touch_range mmu ~start_vpn:base_vpn ~pages:config.working_set_pages);
    if selective then Nested_mmu.invlpg mmu ~vpn:victim_vpn
    else Nested_mmu.full_flush mmu
  done;
  let s = Tlb.stats (Nested_mmu.tlb mmu) in
  (s.Tlb.misses, s.Tlb.fracture_full_flushes)

let run_shape config shape =
  let full_misses, _ = run_regime config shape ~selective:false in
  let selective_misses, fracture_promotions = run_regime config shape ~selective:true in
  { shape; full_misses; selective_misses; fracture_promotions }

let run_all config = List.map (run_shape config) table4_rows

let build_mmu_for_tests = build_mmu
