(** The page-fracturing experiment (paper §7, Table 4).

    A working set is touched repeatedly; between rounds the "guest" issues
    either a full TLB flush or a selective flush of an {e unmapped} page.
    dTLB misses accumulate across rounds. On bare metal and in VMs without
    fracturing, the selective flush preserves the working set (misses stay
    near one compulsory fill); when guest 2 MiB pages sit on host 4 KiB
    pages, the TLB's fracture flag promotes every selective flush to a full
    flush and the selective column explodes to match the full one. *)

type vm_shape = {
  label : string;
  host : Tlb.page_size option;  (** [None] = bare metal (no EPT) *)
  guest : Tlb.page_size;
}

(** The six rows of Table 4, in the paper's order. *)
val table4_rows : vm_shape list

type config = {
  working_set_pages : int;  (** 4 KiB pages touched per round *)
  rounds : int;
  tlb_capacity : int;
}

val default_config : config

type result = {
  shape : vm_shape;
  full_misses : int;  (** dTLB misses with a full flush per round *)
  selective_misses : int;  (** dTLB misses with a selective flush per round *)
  fracture_promotions : int;  (** selective flushes promoted to full *)
}

(** Run one shape under both flush regimes. *)
val run_shape : config -> vm_shape -> result

val run_all : config -> result list

(** First VPN of the working set (2 MiB-aligned). *)
val base_vpn : int

(** Build the MMU for a shape without running the experiment — for the
    paravirtual-hint extension and for tests. *)
val build_mmu_for_tests : config -> vm_shape -> Nested_mmu.t
