test/test_core_structs.ml: Alcotest Cache Checker Costs Cpu Engine File Flush_info Frame_alloc List Mm_struct Opts Page_table Percpu Printf Process Pte Rwsem Stdlib Tlb Topology Vma
