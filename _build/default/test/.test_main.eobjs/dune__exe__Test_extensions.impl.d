test/test_extensions.ml: Access Addr Alcotest Apic Cpu Engine Ept Frame_alloc Kernel Machine Mm_struct Nested_mmu Opts Page_table Pte Shootdown Tlb Vma
