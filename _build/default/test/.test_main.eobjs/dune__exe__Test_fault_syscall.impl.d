test/test_fault_syscall.ml: Access Addr Alcotest Checker Cpu Fault File Frame_alloc Kernel List Machine Mm_struct Opts Page_table Percpu Pte Syscall Tlb Vma
