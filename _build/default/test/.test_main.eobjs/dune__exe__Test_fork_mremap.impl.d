test/test_fork_mremap.ml: Access Addr Alcotest Checker Cpu Fault File Fork Frame_alloc Kernel List Machine Mm_struct Option Opts Page_table Pte Syscall Vma Waitq
