test/test_huge_migrate.ml: Access Addr Alcotest Checker Cpu Engine Fault File Frame_alloc Kernel List Machine Migrate Mm_struct Opts Page_table Printf Pte Syscall Tlb Vma Waitq
