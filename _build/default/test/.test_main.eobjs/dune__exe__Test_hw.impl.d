test/test_hw.ml: Alcotest Apic Array Cache Costs Cpu Engine Fun List Process Tlb Topology
