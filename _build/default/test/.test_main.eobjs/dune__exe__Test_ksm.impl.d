test/test_ksm.ml: Access Addr Alcotest Checker Cpu File Frame_alloc Kernel Ksm Machine Mm_struct Option Opts Page_table Pte Rng Syscall Vma Waitq
