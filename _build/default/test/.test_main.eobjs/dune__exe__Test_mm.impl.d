test/test_mm.ml: Addr Alcotest Ept Format Frame_alloc Fun List Nested_mmu Page_table Printf Pte Tlb
