test/test_props.ml: Access Addr Checker Cpu Fault Float Flush_info Frame_alloc Gen Hashtbl Heap Kernel List Machine Opts Page_table Pte QCheck QCheck_alcotest Rng Stats Stdlib Syscall Tlb Vma Waitq
