test/test_safety.ml: Access Addr Alcotest Checker Cpu Fault File Kernel List Machine Opts Syscall Vma Waitq
