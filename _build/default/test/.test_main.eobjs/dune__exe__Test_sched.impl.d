test/test_sched.ml: Access Addr Alcotest Cpu Fault Frame_alloc Kernel List Machine Mm_struct Opts Page_table Percpu Process Pte Sched Shootdown Syscall Tlb Vma Waitq
