test/test_shootdown.ml: Access Addr Alcotest Apic Cache Cpu Flush_info Frame_alloc Kernel List Machine Mm_struct Opts Page_table Percpu Printf Pte Sched Shootdown Tlb Vma Waitq
