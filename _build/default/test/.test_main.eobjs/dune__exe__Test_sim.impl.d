test/test_sim.ml: Alcotest Array Engine Fun Heap List Printf Process Rng Stats Trace Waitq
