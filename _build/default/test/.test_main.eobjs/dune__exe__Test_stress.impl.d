test/test_stress.ml: Access Addr Alcotest Checker Cpu Fault Fork Frame_alloc Kernel Ksm List Machine Migrate Mm_struct Opts Page_table Printf Pte Shootdown Syscall Tlb Vma Waitq
