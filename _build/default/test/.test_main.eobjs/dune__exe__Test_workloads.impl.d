test/test_workloads.ml: Alcotest Apache Cow_bench Fracture List Microbench Opts Printf Report String Sysbench Tlb Topology
