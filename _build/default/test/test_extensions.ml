(* Tests for the paper's ancillary mechanisms: the nmi_uaccess_okay check
   extended for early acknowledgement (§3.2), the IRQ-quiescent
   return-to-user path, CPU occupancy/dispatch rules, and the §7
   paravirtual fracturing hint. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make ?(opts = Opts.all_general ~safe:true) () = Machine.create ~opts ~seed:77L ()

(* --- nmi_uaccess_okay --- *)

let test_nmi_okay_when_quiescent () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      check bool_t "quiescent CPU is okay" true (Shootdown.nmi_uaccess_okay m ~cpu:0));
  Kernel.run m

let test_nmi_not_okay_without_mm () =
  let m = make () in
  check bool_t "no loaded mm" false (Shootdown.nmi_uaccess_okay m ~cpu:3)

let test_nmi_not_okay_with_pending_user_flush () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let start_vpn = Mm_struct.alloc_va_range mm ~pages:2 () in
      Mm_struct.add_vma mm (Vma.make ~start_vpn ~pages:2 ());
      let pt = Mm_struct.page_table mm in
      for i = 0 to 1 do
        Page_table.map pt ~vpn:(start_vpn + i) ~size:Tlb.Four_k
          (Pte.user_data ~pfn:(Frame_alloc.alloc m.Machine.frames))
      done;
      Access.touch_range m ~cpu:0 ~addr:(Addr.addr_of_vpn start_vpn) ~pages:2
        ~write:false;
      (* In-context deferral leaves a pending user flush behind. *)
      Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn ~pages:2 ();
      check bool_t "pending deferral blocks NMI uaccess" false
        (Shootdown.nmi_uaccess_okay m ~cpu:0);
      Shootdown.flush_pending_user m ~cpu:0 ~has_stack:true;
      check bool_t "okay after the deferred flush ran" true
        (Shootdown.nmi_uaccess_okay m ~cpu:0));
  Kernel.run m

let test_nmi_during_early_ack_window () =
  (* An NMI lands on the responder inside the IPI handler, after the early
     ack but potentially before the flush: nmi_uaccess_okay must be false
     there, and true again once the responder returns to user work. *)
  let m = make () in
  let mm = Machine.new_mm m in
  let observed_in_handler = ref None in
  let stop = ref false in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"responder" (fun () ->
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 2_000;
      let start_vpn = Mm_struct.alloc_va_range mm ~pages:1 () in
      Mm_struct.add_vma mm (Vma.make ~start_vpn ~pages:1 ());
      Page_table.map (Mm_struct.page_table mm) ~vpn:start_vpn ~size:Tlb.Four_k
        (Pte.user_data ~pfn:(Frame_alloc.alloc m.Machine.frames));
      Access.touch_range m ~cpu:0 ~addr:(Addr.addr_of_vpn start_vpn) ~pages:1
        ~write:false;
      (* Fire an NMI timed to land mid-handler on the responder: post it
         just after the IPI goes out. *)
      Engine.schedule m.Machine.engine ~delay:900 (fun () ->
          Cpu.post_irq (Machine.cpu m 14)
            {
              Cpu.vector = 2;
              maskable = false;
              handler =
                (fun _ ->
                  observed_in_handler :=
                    Some (Shootdown.nmi_uaccess_okay m ~cpu:14));
            });
      Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn:start_vpn;
      Machine.delay m 20_000;
      check bool_t "okay once the responder is quiescent again" true
        (Shootdown.nmi_uaccess_okay m ~cpu:14);
      stop := true);
  Kernel.run m;
  match !observed_in_handler with
  | Some okay ->
      check bool_t "NMI during shootdown window saw not-okay" false okay
  | None -> Alcotest.fail "NMI never delivered during the window"

(* --- occupancy / detached dispatch rules --- *)

let test_detached_dispatch_on_empty_cpu () =
  (* No process occupies cpu 5: an IPI must still be handled. *)
  let m = make () in
  let handled = ref false in
  Kernel.spawn_kernel m ~cpu:0 ~name:"sender" (fun () ->
      ignore
        (Apic.send_ipi m.Machine.apic ~from:0 ~targets:[ 5 ] ~make_irq:(fun _ ->
             { Cpu.vector = 1; maskable = true; handler = (fun _ -> handled := true) })));
  Kernel.run m;
  check bool_t "handled with no occupant" true !handled

let test_no_dispatch_interleaves_user_mode () =
  (* While a user thread runs, handlers must execute at its service points,
     never concurrently with user execution: the handler sees in_user =
     false always. *)
  let m = make () in
  let mm = Machine.new_mm m in
  let saw_user_true = ref false in
  let stop = ref false in
  Kernel.spawn_user m ~cpu:2 ~mm ~name:"worker" (fun () ->
      let cpu_t = Machine.cpu m 2 in
      while not !stop do
        Cpu.compute cpu_t ~quantum:50 200
      done);
  Kernel.spawn_kernel m ~cpu:0 ~name:"sender" (fun () ->
      for _ = 1 to 10 do
        Machine.delay m 700;
        ignore
          (Apic.send_ipi m.Machine.apic ~from:0 ~targets:[ 2 ] ~make_irq:(fun _ ->
               {
                 Cpu.vector = 1;
                 maskable = true;
                 handler =
                   (fun cpu -> if Cpu.in_user cpu then saw_user_true := true);
               }))
      done;
      Machine.delay m 10_000;
      stop := true);
  Kernel.run m;
  check bool_t "handler never saw user mode active" false !saw_user_true

let test_quiesce_and_mask_waits_for_handler () =
  let m = make () in
  let handler_done = ref false in
  let checked_after = ref false in
  (* Detached handler starts on cpu 7 (no occupant), taking 2000 cycles. *)
  Kernel.spawn_kernel m ~cpu:0 ~name:"sender" (fun () ->
      ignore
        (Apic.send_ipi m.Machine.apic ~from:0 ~targets:[ 7 ] ~make_irq:(fun _ ->
             {
               Cpu.vector = 1;
               maskable = true;
               handler =
                 (fun _ ->
                   Machine.delay m 2_000;
                   handler_done := true);
             })));
  Kernel.spawn_kernel m ~cpu:7 ~name:"quiescer" (fun () ->
      Machine.delay m 1_200;
      (* The detached handler is mid-flight now. *)
      Cpu.quiesce_and_mask (Machine.cpu m 7);
      checked_after := !handler_done;
      Cpu.irq_enable (Machine.cpu m 7));
  Kernel.run m;
  check bool_t "quiesce returned only after the handler finished" true !checked_after

(* --- paravirtual fracturing hint (§7 extension) --- *)

let fractured_mmu () =
  let guest = Page_table.create () in
  Page_table.map guest ~vpn:1024 ~size:Tlb.Two_m (Pte.user_data ~pfn:2048);
  let ept = Ept.create () in
  for i = 0 to 511 do
    Ept.map ept ~gfn:(2048 + i) ~size:Tlb.Four_k ~hfn:(9000 + i)
  done;
  Nested_mmu.create ~guest ~ept ~pcid:1 ()

let test_paravirt_hint_off_by_default () =
  let mmu = fractured_mmu () in
  check bool_t "off" false (Nested_mmu.paravirt_fracture_hint mmu);
  ignore (Nested_mmu.touch_range mmu ~start_vpn:1024 ~pages:8);
  let n = Nested_mmu.flush_pages mmu ~vpns:[ 1024; 1025; 1026 ] in
  check int_t "three selective flushes issued" 3 n;
  (* Each was promoted to a full flush by the fracture flag... *)
  check bool_t "promotions recorded" true
    ((Tlb.stats (Nested_mmu.tlb mmu)).Tlb.fracture_full_flushes >= 1)

let test_paravirt_hint_collapses_to_one_flush () =
  let mmu = fractured_mmu () in
  Nested_mmu.set_paravirt_fracture_hint mmu true;
  ignore (Nested_mmu.touch_range mmu ~start_vpn:1024 ~pages:8);
  let n = Nested_mmu.flush_pages mmu ~vpns:[ 1024; 1025; 1026 ] in
  check int_t "single full flush" 1 n;
  check int_t "TLB empty either way" 0 (Tlb.occupancy (Nested_mmu.tlb mmu))

let test_paravirt_hint_same_final_state () =
  let final_state hint =
    let mmu = fractured_mmu () in
    Nested_mmu.set_paravirt_fracture_hint mmu hint;
    ignore (Nested_mmu.touch_range mmu ~start_vpn:1024 ~pages:64);
    ignore (Nested_mmu.flush_pages mmu ~vpns:[ 1030 ]);
    let _, misses = Nested_mmu.touch_range mmu ~start_vpn:1024 ~pages:64 in
    misses
  in
  check int_t "hint changes cost, not the resulting misses" (final_state false)
    (final_state true)

let suite =
  [
    Alcotest.test_case "nmi: okay when quiescent" `Quick test_nmi_okay_when_quiescent;
    Alcotest.test_case "nmi: not okay without mm" `Quick test_nmi_not_okay_without_mm;
    Alcotest.test_case "nmi: pending deferral blocks uaccess" `Quick
      test_nmi_not_okay_with_pending_user_flush;
    Alcotest.test_case "nmi: early-ack window detected" `Quick test_nmi_during_early_ack_window;
    Alcotest.test_case "cpu: detached dispatch on empty cpu" `Quick
      test_detached_dispatch_on_empty_cpu;
    Alcotest.test_case "cpu: handlers never interleave user mode" `Quick
      test_no_dispatch_interleaves_user_mode;
    Alcotest.test_case "cpu: quiesce waits for in-flight handler" `Quick
      test_quiesce_and_mask_waits_for_handler;
    Alcotest.test_case "paravirt: hint off by default" `Quick test_paravirt_hint_off_by_default;
    Alcotest.test_case "paravirt: hint collapses flushes" `Quick
      test_paravirt_hint_collapses_to_one_flush;
    Alcotest.test_case "paravirt: same final TLB state" `Quick test_paravirt_hint_same_final_state;
  ]
