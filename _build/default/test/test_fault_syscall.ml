(* End-to-end tests of the access/fault path and the syscall layer. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make ?(opts = Opts.baseline ~safe:true) () = Machine.create ~opts ~seed:17L ()

let run_user ?opts body =
  let m = make ?opts () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"main" (fun () -> body m mm);
  Kernel.run m;
  m

let user_pcid_of m cpu =
  let pcpu = Machine.percpu m cpu in
  if m.Machine.opts.Opts.safe then Percpu.user_pcid pcpu.Percpu.curr_asid
  else Percpu.kernel_pcid pcpu.Percpu.curr_asid

let test_anon_demand_paging () =
  let m =
    run_user (fun m mm ->
        let addr = Syscall.mmap m ~cpu:0 ~pages:4 () in
        check int_t "no PTEs yet" 0 (Page_table.mapped_count (Mm_struct.page_table mm));
        Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:true;
        check int_t "4 PTEs" 4 (Page_table.mapped_count (Mm_struct.page_table mm));
        (* Second touch is TLB-warm: no new faults. *)
        let faults = m.Machine.stats.Machine.faults in
        Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:true;
        check int_t "no new faults" faults m.Machine.stats.Machine.faults)
  in
  check int_t "4 faults" 4 m.Machine.stats.Machine.faults

let test_segfault_on_unmapped () =
  let got = ref false in
  let _m =
    run_user (fun m _mm ->
        try Access.read m ~cpu:0 ~vaddr:0xdead000 with
        | Fault.Segfault { sf_cpu; _ } ->
            got := true;
            check int_t "cpu" 0 sf_cpu)
  in
  check bool_t "segfaulted" true !got

let test_segfault_on_write_to_readonly_vma () =
  let got = ref false in
  let _m =
    run_user (fun m _mm ->
        let addr = Syscall.mmap m ~cpu:0 ~pages:1 ~writable:false () in
        Access.read m ~cpu:0 ~vaddr:addr;
        try Access.write m ~cpu:0 ~vaddr:addr with Fault.Segfault _ -> got := true)
  in
  check bool_t "write rejected" true !got

let test_madvise_frees_anon_frames () =
  let _m =
    run_user (fun m mm ->
        let before = Frame_alloc.allocated m.Machine.frames in
        let addr = Syscall.mmap m ~cpu:0 ~pages:8 () in
        Access.touch_range m ~cpu:0 ~addr ~pages:8 ~write:true;
        check int_t "8 frames used" (before + 8) (Frame_alloc.allocated m.Machine.frames);
        Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages:8;
        check int_t "frames reclaimed" before (Frame_alloc.allocated m.Machine.frames);
        check int_t "PTEs gone" 0 (Page_table.mapped_count (Mm_struct.page_table mm));
        (* The VMA survives DONTNEED: touching refaults fresh zero pages. *)
        Access.touch_range m ~cpu:0 ~addr ~pages:8 ~write:true;
        check int_t "refaulted" (before + 8) (Frame_alloc.allocated m.Machine.frames))
  in
  ()

let test_munmap_removes_vma_and_tables () =
  let _m =
    run_user (fun m mm ->
        let addr = Syscall.mmap m ~cpu:0 ~pages:4 () in
        Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:true;
        let tables = Page_table.table_pages (Mm_struct.page_table mm) in
        check bool_t "tables exist" true (tables > 0);
        Syscall.munmap m ~cpu:0 ~addr ~pages:4;
        check int_t "tables freed" 0 (Page_table.table_pages (Mm_struct.page_table mm));
        check bool_t "vma gone" true (Mm_struct.find_vma mm ~vpn:(Addr.vpn_of_addr addr) = None);
        (* Accessing now segfaults. *)
        match Access.read m ~cpu:0 ~vaddr:addr with
        | () -> Alcotest.fail "expected segfault"
        | exception Fault.Segfault _ -> ())
  in
  ()

let test_cow_fault_copies_and_preserves_original () =
  let _m =
    run_user (fun m mm ->
        ignore mm;
        let file = File.create m.Machine.frames ~name:"f" ~size_pages:2 in
        let original = File.frame_of_page file ~index:0 in
        let addr =
          Syscall.mmap m ~cpu:0 ~pages:2
            ~backing:(Vma.File_private { file; offset = 0 })
            ()
        in
        (* Read maps the page-cache frame, write-protected + COW. *)
        Access.read m ~cpu:0 ~vaddr:addr;
        let pt = Mm_struct.page_table mm in
        (match Page_table.walk pt ~vpn:(Addr.vpn_of_addr addr) with
        | Some w ->
            check int_t "maps pagecache frame" original w.Page_table.pte.Pte.pfn;
            check bool_t "cow" true w.Page_table.pte.Pte.cow
        | None -> Alcotest.fail "expected mapping");
        Access.write m ~cpu:0 ~vaddr:addr;
        (match Page_table.walk pt ~vpn:(Addr.vpn_of_addr addr) with
        | Some w ->
            check bool_t "private copy" true (w.Page_table.pte.Pte.pfn <> original);
            check bool_t "writable" true w.Page_table.pte.Pte.writable;
            check bool_t "no longer cow" false w.Page_table.pte.Pte.cow
        | None -> Alcotest.fail "expected mapping");
        check int_t "one cow break" 1 m.Machine.stats.Machine.cow_breaks)
  in
  ()

let test_cow_direct_write_needs_no_flush () =
  (* Writing an unmapped private page copies directly: no stale entry, no
     flush, no shootdown. *)
  let _m =
    run_user (fun m mm ->
        ignore mm;
        let file = File.create m.Machine.frames ~name:"f" ~size_pages:1 in
        ignore (File.frame_of_page file ~index:0);
        let addr =
          Syscall.mmap m ~cpu:0 ~pages:1
            ~backing:(Vma.File_private { file; offset = 0 })
            ()
        in
        Access.write m ~cpu:0 ~vaddr:addr;
        check int_t "no cow break" 0 m.Machine.stats.Machine.cow_breaks;
        check int_t "no flush avoided either" 0 m.Machine.stats.Machine.cow_flush_avoided)
  in
  ()

let test_cow_opt_counts_avoided_flush () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.cow_avoid_flush <- true;
  opts.Opts.spec_pte_recache_p <- 1.0;
  (* Always re-cache the stale PTE speculatively: the dummy write must
     still leave no stale entry behind (the checker is watching). *)
  let _m =
    run_user ~opts (fun m mm ->
        ignore mm;
        let file = File.create m.Machine.frames ~name:"f" ~size_pages:4 in
        for i = 0 to 3 do
          ignore (File.frame_of_page file ~index:i)
        done;
        let addr =
          Syscall.mmap m ~cpu:0 ~pages:4
            ~backing:(Vma.File_private { file; offset = 0 })
            ()
        in
        Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:false;
        Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:true;
        check int_t "four avoided flushes" 4 m.Machine.stats.Machine.cow_flush_avoided;
        (* Re-read through the new mapping; checker verifies freshness. *)
        Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:false;
        check int_t "no violations" 0 (Checker.violation_count m.Machine.checker))
  in
  ()

let test_cow_opt_skipped_for_executable () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.cow_avoid_flush <- true;
  let _m =
    run_user ~opts (fun m mm ->
        ignore mm;
        let file = File.create m.Machine.frames ~name:"code" ~size_pages:1 in
        ignore (File.frame_of_page file ~index:0);
        let addr =
          Syscall.mmap m ~cpu:0 ~pages:1 ~executable:true
            ~backing:(Vma.File_private { file; offset = 0 })
            ()
        in
        Access.read m ~cpu:0 ~vaddr:addr;
        Access.write m ~cpu:0 ~vaddr:addr;
        check int_t "one cow break" 1 m.Machine.stats.Machine.cow_breaks;
        (* The ITLB caveat: executable PTEs keep the INVLPG. *)
        check int_t "not avoided" 0 m.Machine.stats.Machine.cow_flush_avoided)
  in
  ()

let test_shared_file_dirty_writeback_cycle () =
  let _m =
    run_user (fun m mm ->
        ignore mm;
        let file = File.create m.Machine.frames ~name:"data" ~size_pages:8 in
        let addr =
          Syscall.mmap m ~cpu:0 ~pages:8
            ~backing:(Vma.File_shared { file; offset = 0 })
            ()
        in
        (* Write three pages: they become dirty. *)
        List.iter
          (fun i -> Access.write m ~cpu:0 ~vaddr:(addr + (i * Addr.page_size)))
          [ 0; 3; 5 ];
        check int_t "three dirty" 3 (File.dirty_count file);
        Syscall.msync m ~cpu:0 ~addr ~pages:8;
        check int_t "clean after msync" 0 (File.dirty_count file);
        (* PTEs write-protected: the next write takes a write-notify fault
           and re-dirties. *)
        let faults = m.Machine.stats.Machine.faults in
        Access.write m ~cpu:0 ~vaddr:(addr + (3 * Addr.page_size));
        check bool_t "write-notify fault" true (m.Machine.stats.Machine.faults > faults);
        check int_t "dirty again" 1 (File.dirty_count file))
  in
  ()

let test_fdatasync_equivalent () =
  let _m =
    run_user (fun m mm ->
        ignore mm;
        let file = File.create m.Machine.frames ~name:"db" ~size_pages:16 in
        let addr =
          Syscall.mmap m ~cpu:0 ~pages:16
            ~backing:(Vma.File_shared { file; offset = 0 })
            ()
        in
        for i = 0 to 15 do
          Access.write m ~cpu:0 ~vaddr:(addr + (i * Addr.page_size))
        done;
        check int_t "all dirty" 16 (File.dirty_count file);
        Syscall.fdatasync m ~cpu:0 ~file;
        check int_t "all clean" 0 (File.dirty_count file))
  in
  ()

let test_mprotect_write_protect_then_fault () =
  let _m =
    run_user (fun m mm ->
        ignore mm;
        let addr = Syscall.mmap m ~cpu:0 ~pages:2 () in
        Access.touch_range m ~cpu:0 ~addr ~pages:2 ~write:true;
        Syscall.mprotect m ~cpu:0 ~addr ~pages:2 ~writable:false;
        (* Read still fine, write segfaults (VMA now read-only). *)
        Access.read m ~cpu:0 ~vaddr:addr;
        (match Access.write m ~cpu:0 ~vaddr:addr with
        | () -> Alcotest.fail "expected segfault"
        | exception Fault.Segfault _ -> ());
        (* Grant back. *)
        Syscall.mprotect m ~cpu:0 ~addr ~pages:2 ~writable:true;
        Access.write m ~cpu:0 ~vaddr:addr)
  in
  ()

let test_syscalls_toggle_privilege () =
  let _m =
    run_user (fun m mm ->
        ignore mm;
        check bool_t "user before" true (Cpu.in_user (Machine.cpu m 0));
        Syscall.null m ~cpu:0;
        check bool_t "user after" true (Cpu.in_user (Machine.cpu m 0)))
  in
  ()

let test_safe_mode_syscalls_cost_more () =
  let elapsed safe =
    let m = make ~opts:(Opts.baseline ~safe) () in
    let mm = Machine.new_mm m in
    let dt = ref 0 in
    Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
        let t0 = Machine.now m in
        Syscall.null m ~cpu:0;
        dt := Machine.now m - t0);
    Kernel.run m;
    !dt
  in
  check bool_t "safe null syscall dearer" true (elapsed true > elapsed false)

let test_munmap_partial_range () =
  let _m =
    run_user (fun m mm ->
        let addr = Syscall.mmap m ~cpu:0 ~pages:10 () in
        Access.touch_range m ~cpu:0 ~addr ~pages:10 ~write:true;
        (* Unmap the middle four pages. *)
        Syscall.munmap m ~cpu:0 ~addr:(addr + (3 * Addr.page_size)) ~pages:4;
        Access.read m ~cpu:0 ~vaddr:addr;
        Access.read m ~cpu:0 ~vaddr:(addr + (9 * Addr.page_size));
        (match Access.read m ~cpu:0 ~vaddr:(addr + (4 * Addr.page_size)) with
        | () -> Alcotest.fail "hole should fault"
        | exception Fault.Segfault _ -> ());
        check int_t "two vma pieces" 2 (Vma.Set.cardinal (Mm_struct.vmas mm)))
  in
  ()

let test_access_inserts_under_user_pcid () =
  let _m =
    run_user (fun m mm ->
        ignore mm;
        let addr = Syscall.mmap m ~cpu:0 ~pages:1 () in
        Access.write m ~cpu:0 ~vaddr:addr;
        let vpn = Addr.vpn_of_addr addr in
        check bool_t "user pcid entry" true
          (Tlb.mem (Cpu.tlb (Machine.cpu m 0)) ~pcid:(user_pcid_of m 0) ~vpn))
  in
  ()

let suite =
  [
    Alcotest.test_case "anon demand paging" `Quick test_anon_demand_paging;
    Alcotest.test_case "segfault on unmapped" `Quick test_segfault_on_unmapped;
    Alcotest.test_case "segfault on read-only vma write" `Quick test_segfault_on_write_to_readonly_vma;
    Alcotest.test_case "madvise frees anon frames" `Quick test_madvise_frees_anon_frames;
    Alcotest.test_case "munmap removes vma + tables" `Quick test_munmap_removes_vma_and_tables;
    Alcotest.test_case "cow fault copies" `Quick test_cow_fault_copies_and_preserves_original;
    Alcotest.test_case "direct private write: no flush" `Quick test_cow_direct_write_needs_no_flush;
    Alcotest.test_case "cow opt avoids flush (checker on)" `Quick test_cow_opt_counts_avoided_flush;
    Alcotest.test_case "cow opt skipped for executables" `Quick test_cow_opt_skipped_for_executable;
    Alcotest.test_case "msync writeback cycle" `Quick test_shared_file_dirty_writeback_cycle;
    Alcotest.test_case "fdatasync cleans file" `Quick test_fdatasync_equivalent;
    Alcotest.test_case "mprotect cycle" `Quick test_mprotect_write_protect_then_fault;
    Alcotest.test_case "syscalls toggle privilege" `Quick test_syscalls_toggle_privilege;
    Alcotest.test_case "safe syscalls cost more" `Quick test_safe_mode_syscalls_cost_more;
    Alcotest.test_case "munmap partial range splits vma" `Quick test_munmap_partial_range;
    Alcotest.test_case "accesses fill the user pcid" `Quick test_access_inserts_under_user_pcid;
  ]
