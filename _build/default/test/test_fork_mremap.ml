(* fork() with COW sharing (frame refcounting) and mremap. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make ?(opts = Opts.all ~safe:true) () = Machine.create ~opts ~seed:61L ()

let pfn_of mm ~vpn =
  match Page_table.walk (Mm_struct.page_table mm) ~vpn with
  | Some w -> Some w.Page_table.pte.Pte.pfn
  | None -> None

let test_fork_shares_frames_cow () =
  let m = make () in
  let parent = Machine.new_mm m in
  let child_box = ref None in
  Kernel.spawn_user m ~cpu:0 ~mm:parent ~name:"parent" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:4 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:true;
      let vpn = Addr.vpn_of_addr addr in
      let pfn0 = Option.get (pfn_of parent ~vpn) in
      check int_t "exclusive before fork" 1 (Frame_alloc.refcount m.Machine.frames pfn0);
      let child = Fork.fork m ~cpu:0 in
      child_box := Some (child, addr);
      (* Shared, write-protected, COW on both sides. *)
      check int_t "two references" 2 (Frame_alloc.refcount m.Machine.frames pfn0);
      check bool_t "same frame in child" true (pfn_of child ~vpn = Some pfn0);
      (match Page_table.walk (Mm_struct.page_table parent) ~vpn with
      | Some w ->
          check bool_t "parent write-protected" false w.Page_table.pte.Pte.writable;
          check bool_t "parent cow" true w.Page_table.pte.Pte.cow
      | None -> Alcotest.fail "parent mapping lost");
      (* Parent write breaks COW: parent moves to a private copy, child
         keeps the original. *)
      Access.write m ~cpu:0 ~vaddr:addr;
      let pfn_parent = Option.get (pfn_of parent ~vpn) in
      check bool_t "parent got a copy" true (pfn_parent <> pfn0);
      check bool_t "child kept original" true (pfn_of child ~vpn = Some pfn0);
      check int_t "original now single-ref" 1 (Frame_alloc.refcount m.Machine.frames pfn0));
  Kernel.run m;
  check bool_t "cow breaks happened" true (m.Machine.stats.Machine.cow_breaks > 0);
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let test_fork_child_runs_and_cows () =
  let m = make () in
  let parent = Machine.new_mm m in
  let pages = 4 in
  Kernel.spawn_user m ~cpu:0 ~mm:parent ~name:"parent" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      let vpn = Addr.vpn_of_addr addr in
      let original = Option.get (pfn_of parent ~vpn) in
      let child = Fork.fork m ~cpu:0 in
      (* Run the child on another CPU; its writes COW privately. *)
      Kernel.spawn_user m ~cpu:14 ~mm:child ~name:"child" (fun () ->
          Access.touch_range m ~cpu:14 ~addr ~pages ~write:false;
          Access.write m ~cpu:14 ~vaddr:addr;
          check bool_t "child got its own copy" true
            (pfn_of child ~vpn <> Some original);
          check bool_t "parent unaffected" true (pfn_of parent ~vpn = Some original)));
  Kernel.run m;
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let test_fork_flushes_running_sibling () =
  (* A sibling thread of the parent keeps writing while fork write-protects:
     every write after the protect must fault (COW), never slip through a
     stale writable translation. *)
  let m = make () in
  let parent = Machine.new_mm m in
  let pages = 8 in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:14 ~mm:parent ~name:"sibling" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        Access.touch_range m ~cpu:14 ~addr:!addr_box ~pages ~write:true;
        Cpu.compute cpu_t ~quantum:100 200
      done);
  Kernel.spawn_user m ~cpu:0 ~mm:parent ~name:"parent" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      Machine.delay m 3_000;
      let child = Fork.fork m ~cpu:0 in
      ignore child;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  check int_t "sibling never wrote through stale translation" 0
    (Checker.violation_count m.Machine.checker)

let test_fork_unmap_both_releases_once () =
  let m = make () in
  let parent = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm:parent ~name:"parent" (fun () ->
      let before = Frame_alloc.allocated m.Machine.frames in
      let addr = Syscall.mmap m ~cpu:0 ~pages:4 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:true;
      let child = Fork.fork m ~cpu:0 in
      (* Unmap in the parent: frames survive on the child's references. *)
      Syscall.munmap m ~cpu:0 ~addr ~pages:4;
      check int_t "frames alive via child" (before + 4)
        (Frame_alloc.allocated m.Machine.frames);
      (* Tear down the child's mappings directly (it never ran). *)
      let r =
        Page_table.unmap_range (Mm_struct.page_table child)
          ~vpn:(Addr.vpn_of_addr addr) ~pages:4 ~free_tables:true ()
      in
      List.iter
        (fun (_, (pte : Pte.t), _) -> Frame_alloc.free m.Machine.frames pte.Pte.pfn)
        r.Page_table.removed;
      check int_t "all frames released exactly once" before
        (Frame_alloc.allocated m.Machine.frames));
  Kernel.run m

let test_fork_shared_file_stays_shared () =
  let m = make () in
  let parent = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm:parent ~name:"parent" (fun () ->
      let file = File.create m.Machine.frames ~name:"log" ~size_pages:2 in
      let addr =
        Syscall.mmap m ~cpu:0 ~pages:2 ~backing:(Vma.File_shared { file; offset = 0 }) ()
      in
      Access.write m ~cpu:0 ~vaddr:addr;
      let vpn = Addr.vpn_of_addr addr in
      let child = Fork.fork m ~cpu:0 in
      (* Shared file pages: same frame, still writable in both, no COW. *)
      (match Page_table.walk (Mm_struct.page_table child) ~vpn with
      | Some w ->
          check bool_t "child writable" true w.Page_table.pte.Pte.writable;
          check bool_t "no cow" false w.Page_table.pte.Pte.cow;
          check bool_t "same frame" true (pfn_of parent ~vpn = Some w.Page_table.pte.Pte.pfn)
      | None -> Alcotest.fail "child lost shared mapping");
      (* Parent still writable too (no protect for shared mappings). *)
      Access.write m ~cpu:0 ~vaddr:addr);
  Kernel.run m;
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

(* --- mremap --- *)

let test_mremap_moves_without_copy () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:4 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:4 ~write:true;
      let old_pfn = Option.get (pfn_of mm ~vpn:(Addr.vpn_of_addr addr)) in
      let allocated = Frame_alloc.allocated m.Machine.frames in
      let new_addr = Syscall.mremap m ~cpu:0 ~addr ~pages:4 in
      check bool_t "moved" true (new_addr <> addr);
      check int_t "no frames copied" allocated (Frame_alloc.allocated m.Machine.frames);
      check bool_t "same frame at new address" true
        (pfn_of mm ~vpn:(Addr.vpn_of_addr new_addr) = Some old_pfn);
      (* The old range is gone: access faults. *)
      (match Access.read m ~cpu:0 ~vaddr:addr with
      | () -> Alcotest.fail "old range should segfault"
      | exception Fault.Segfault _ -> ());
      (* The new range is live. *)
      Access.touch_range m ~cpu:0 ~addr:new_addr ~pages:4 ~write:true);
  Kernel.run m;
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let test_mremap_under_concurrent_reader () =
  let m = make () in
  let mm = Machine.new_mm m in
  let pages = 4 in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        (try Access.touch_range m ~cpu:14 ~addr:!addr_box ~pages ~write:false
         with Fault.Segfault _ -> ());
        Cpu.compute cpu_t ~quantum:100 200
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"remapper" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      Machine.delay m 3_000;
      let current = ref addr in
      for _ = 1 to 5 do
        current := Syscall.mremap m ~cpu:0 ~addr:!current ~pages;
        addr_box := !current
      done;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  check int_t "reader never used a moved translation" 0
    (Checker.violation_count m.Machine.checker)

let suite =
  [
    Alcotest.test_case "fork: COW sharing + break" `Quick test_fork_shares_frames_cow;
    Alcotest.test_case "fork: child runs and cows" `Quick test_fork_child_runs_and_cows;
    Alcotest.test_case "fork: flushes running sibling" `Quick test_fork_flushes_running_sibling;
    Alcotest.test_case "fork: release-once accounting" `Quick test_fork_unmap_both_releases_once;
    Alcotest.test_case "fork: shared file stays shared" `Quick test_fork_shared_file_stays_shared;
    Alcotest.test_case "mremap: moves without copy" `Quick test_mremap_moves_without_copy;
    Alcotest.test_case "mremap: safe under reader" `Quick test_mremap_under_concurrent_reader;
  ]
