(* Hugepage mappings (2 MiB stride flushes), page migration, and the
   FreeBSD serialized-shootdown comparator. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make ?(opts = Opts.baseline ~safe:true) () = Machine.create ~opts ~seed:53L ()

(* --- hugepages --- *)

let test_huge_mmap_fault_maps_2m () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:1024 ~page_size:Tlb.Two_m () in
      check bool_t "aligned base" true (Addr.huge_aligned (Addr.vpn_of_addr addr));
      Access.write m ~cpu:0 ~vaddr:addr;
      (* One fault maps a whole 2 MiB page. *)
      let pt = Mm_struct.page_table mm in
      (match Page_table.walk pt ~vpn:(Addr.vpn_of_addr addr + 37) with
      | Some w -> check bool_t "2M mapping" true (w.Page_table.size = Tlb.Two_m)
      | None -> Alcotest.fail "hugepage not mapped");
      check int_t "one fault" 1 m.Machine.stats.Machine.faults;
      (* Accesses within the hugepage hit without further faults. *)
      Access.touch_range m ~cpu:0 ~addr ~pages:512 ~write:false;
      check int_t "still one fault" 1 m.Machine.stats.Machine.faults;
      (* The second hugepage faults separately. *)
      Access.write m ~cpu:0 ~vaddr:(addr + Addr.huge_page_size);
      check int_t "two faults" 2 m.Machine.stats.Machine.faults);
  Kernel.run m

let test_huge_tlb_single_entry () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:512 ~page_size:Tlb.Two_m () in
      Access.touch_range m ~cpu:0 ~addr ~pages:512 ~write:true;
      let s = Tlb.stats (Cpu.tlb (Machine.cpu m 0)) in
      (* One insertion covers all 512 4K accesses. *)
      check int_t "one TLB insertion for the hugepage" 1 s.Tlb.insertions);
  Kernel.run m

let test_huge_madvise_uses_2m_stride () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:1024 ~page_size:Tlb.Two_m () in
      Access.write m ~cpu:0 ~vaddr:addr;
      Access.write m ~cpu:0 ~vaddr:(addr + Addr.huge_page_size);
      let frames_before = Frame_alloc.allocated m.Machine.frames in
      let invlpg_before = (Tlb.stats (Cpu.tlb (Machine.cpu m 0))).Tlb.invlpg_ops in
      Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages:1024;
      (* 1024 4K pages = 2 hugepages: the flush walks 2 entries with the
         2 MiB stride, not 1024 INVLPGs (and not a full flush: 2 <= 33). *)
      let invlpg_after = (Tlb.stats (Cpu.tlb (Machine.cpu m 0))).Tlb.invlpg_ops in
      check int_t "two stride-2M INVLPGs" 2 (invlpg_after - invlpg_before);
      check int_t "hugepage frames freed" (frames_before - 1024)
        (Frame_alloc.allocated m.Machine.frames);
      (* Refault works. *)
      Access.write m ~cpu:0 ~vaddr:addr);
  Kernel.run m;
  check int_t "no coherence violations" 0 (Checker.violation_count m.Machine.checker)

let test_huge_flush_covers_whole_page () =
  let m = make ~opts:(Opts.all_general ~safe:true) () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:512 ~page_size:Tlb.Two_m () in
      Access.write m ~cpu:0 ~vaddr:(addr + (100 * Addr.page_size));
      Syscall.munmap m ~cpu:0 ~addr ~pages:512;
      (* Any access inside the former hugepage must fault (VMA gone). *)
      match Access.read m ~cpu:0 ~vaddr:(addr + (511 * Addr.page_size)) with
      | () -> Alcotest.fail "expected segfault"
      | exception Fault.Segfault _ -> ());
  Kernel.run m;
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let test_huge_vma_split_rejected () =
  let m = make () in
  let mm = Machine.new_mm m in
  let got = ref false in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:1024 ~page_size:Tlb.Two_m () in
      (* Unmapping a sub-2M piece of a hugepage VMA is rejected. *)
      (try Syscall.munmap m ~cpu:0 ~addr:(addr + (4 * Addr.page_size)) ~pages:16
       with Invalid_argument _ -> got := true);
      (* Splitting at a 2 MiB boundary is fine. *)
      Syscall.munmap m ~cpu:0 ~addr ~pages:512);
  Kernel.run m;
  check bool_t "sub-2M split rejected" true !got

(* --- migration --- *)

let test_migration_moves_frame () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:1 () in
      Access.write m ~cpu:0 ~vaddr:addr;
      let vpn = Addr.vpn_of_addr addr in
      let pt = Mm_struct.page_table mm in
      let old_pfn =
        match Page_table.walk pt ~vpn with
        | Some w -> w.Page_table.pte.Pte.pfn
        | None -> Alcotest.fail "not mapped"
      in
      check bool_t "migrated" true (Migrate.migrate_page m ~cpu:0 ~mm ~vpn = `Migrated);
      (match Page_table.walk pt ~vpn with
      | Some w ->
          check bool_t "new frame" true (w.Page_table.pte.Pte.pfn <> old_pfn);
          check bool_t "still writable" true w.Page_table.pte.Pte.writable
      | None -> Alcotest.fail "mapping lost");
      check bool_t "old frame recycled" false (Frame_alloc.is_allocated m.Machine.frames old_pfn);
      (* Access after migration works and is checker-clean. *)
      Access.write m ~cpu:0 ~vaddr:addr);
  Kernel.run m;
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let test_migration_skips_file_and_absent () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let file = File.create m.Machine.frames ~name:"f" ~size_pages:1 in
      let faddr =
        Syscall.mmap m ~cpu:0 ~pages:1 ~backing:(Vma.File_shared { file; offset = 0 }) ()
      in
      Access.write m ~cpu:0 ~vaddr:faddr;
      check bool_t "file page skipped" true
        (Migrate.migrate_page m ~cpu:0 ~mm ~vpn:(Addr.vpn_of_addr faddr) = `Skipped);
      check bool_t "absent page skipped" true
        (Migrate.migrate_page m ~cpu:0 ~mm ~vpn:12345 = `Skipped));
  Kernel.run m

let test_migration_under_concurrent_readers_safe () =
  (* The checker's frame-remap detection is exactly what migration without
     a correct double-shootdown would trip. Run with all optimizations. *)
  let m = make ~opts:(Opts.all ~safe:true) () in
  let mm = Machine.new_mm m in
  let pages = 16 in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        Access.touch_range m ~cpu:14 ~addr:!addr_box ~pages ~write:false;
        Cpu.compute cpu_t ~quantum:100 200
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"migrator" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      Machine.delay m 3_000;
      for round = 1 to 6 do
        ignore round;
        let migrated =
          Migrate.migrate_range m ~cpu:0 ~mm ~vpn:(Addr.vpn_of_addr addr) ~pages
        in
        check int_t "all pages migrated" pages migrated
      done;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  check int_t "migration under readers is coherent" 0
    (Checker.violation_count m.Machine.checker);
  check bool_t "reader raced benignly" true (Checker.benign_races m.Machine.checker >= 0)

let test_migration_with_lazy_batching_violates () =
  (* Under the unsafe strawman, migration recycles frames while remote TLBs
     still map them: the canonical LATR-footnote bug (§2.3.2). *)
  let opts = Opts.baseline ~safe:true in
  opts.Opts.unsafe_lazy_batching <- true;
  let m = make ~opts () in
  let mm = Machine.new_mm m in
  let pages = 8 in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        Access.touch_range m ~cpu:14 ~addr:!addr_box ~pages ~write:false;
        Cpu.compute cpu_t ~quantum:100 200
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"migrator" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      Machine.delay m 3_000;
      for _ = 1 to 4 do
        ignore (Migrate.migrate_range m ~cpu:0 ~mm ~vpn:(Addr.vpn_of_addr addr) ~pages)
      done;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  check bool_t "stale frame reads detected" true
    (Checker.violation_count m.Machine.checker > 0)

(* --- FreeBSD comparator --- *)

let test_freebsd_preset () =
  let o = Opts.freebsd ~safe:true in
  check bool_t "protocol flag" true o.Opts.freebsd_protocol;
  check int_t "4096 ceiling" 4096 o.Opts.full_flush_threshold

let test_freebsd_serializes_but_stays_correct () =
  let m = make ~opts:(Opts.freebsd ~safe:true) () in
  let mm = Machine.new_mm m in
  let stop = ref false in
  (* Three mutators shooting each other down concurrently; the mutex
     serializes, the checker verifies. *)
  List.iter
    (fun cpu ->
      Kernel.spawn_user m ~cpu ~mm ~name:(Printf.sprintf "mut%d" cpu) (fun () ->
          let addr = Syscall.mmap m ~cpu ~pages:4 () in
          for _ = 1 to 10 do
            Access.touch_range m ~cpu ~addr ~pages:4 ~write:true;
            Syscall.madvise_dontneed m ~cpu ~addr ~pages:4
          done))
    [ 0; 1; 2 ];
  Kernel.spawn_user m ~cpu:3 ~mm ~name:"bystander" (fun () ->
      let cpu_t = Machine.cpu m 3 in
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Engine.schedule m.Machine.engine ~delay:5_000_000 (fun () -> stop := true);
  Kernel.run m;
  check int_t "correct under serialization" 0 (Checker.violation_count m.Machine.checker);
  check bool_t "shootdowns happened" true (m.Machine.stats.Machine.shootdowns > 0)

let test_freebsd_slower_under_contention () =
  let run opts =
    let m = make ~opts () in
    let mm = Machine.new_mm m in
    let finished = ref 0 in
    List.iter
      (fun cpu ->
        Kernel.spawn_user m ~cpu ~mm ~name:(Printf.sprintf "mut%d" cpu) (fun () ->
            let addr = Syscall.mmap m ~cpu ~pages:4 () in
            for _ = 1 to 12 do
              Access.touch_range m ~cpu ~addr ~pages:4 ~write:true;
              Syscall.madvise_dontneed m ~cpu ~addr ~pages:4
            done;
            incr finished))
      [ 0; 1; 2; 3 ];
    Kernel.run m;
    check int_t "all finished" 4 !finished;
    Machine.now m
  in
  let linux = run (Opts.baseline ~safe:true) in
  let freebsd = run (Opts.freebsd ~safe:true) in
  check bool_t
    (Printf.sprintf "serialized protocol slower (%d vs %d)" freebsd linux)
    true (freebsd > linux)

let suite =
  [
    Alcotest.test_case "huge: mmap+fault maps 2M" `Quick test_huge_mmap_fault_maps_2m;
    Alcotest.test_case "huge: one TLB entry" `Quick test_huge_tlb_single_entry;
    Alcotest.test_case "huge: madvise uses 2M stride" `Quick test_huge_madvise_uses_2m_stride;
    Alcotest.test_case "huge: munmap coherent" `Quick test_huge_flush_covers_whole_page;
    Alcotest.test_case "huge: sub-2M split rejected" `Quick test_huge_vma_split_rejected;
    Alcotest.test_case "migrate: moves frame" `Quick test_migration_moves_frame;
    Alcotest.test_case "migrate: skips file/absent" `Quick test_migration_skips_file_and_absent;
    Alcotest.test_case "migrate: safe under readers" `Quick test_migration_under_concurrent_readers_safe;
    Alcotest.test_case "migrate: lazy batching violates" `Quick test_migration_with_lazy_batching_violates;
    Alcotest.test_case "freebsd: preset" `Quick test_freebsd_preset;
    Alcotest.test_case "freebsd: correct under contention" `Quick test_freebsd_serializes_but_stays_correct;
    Alcotest.test_case "freebsd: slower under contention" `Quick test_freebsd_slower_under_contention;
  ]
