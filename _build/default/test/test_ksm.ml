(* KSM-style deduplication: merge mechanics, COW un-merging, and coherence
   under concurrent access. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make ?(opts = Opts.all ~safe:true) () = Machine.create ~opts ~seed:67L ()

let pfn_of mm ~vpn =
  match Page_table.walk (Mm_struct.page_table mm) ~vpn with
  | Some w -> Some w.Page_table.pte.Pte.pfn
  | None -> None

let test_merge_shares_frame () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:2 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:2 ~write:true;
      let keep = Addr.vpn_of_addr addr and dup = Addr.vpn_of_addr addr + 1 in
      let frames_before = Frame_alloc.allocated m.Machine.frames in
      check bool_t "merged" true (Ksm.merge_pages m ~cpu:0 ~mm ~keep ~dup = `Merged);
      check bool_t "same frame" true (pfn_of mm ~vpn:keep = pfn_of mm ~vpn:dup);
      check int_t "one frame released" (frames_before - 1)
        (Frame_alloc.allocated m.Machine.frames);
      check int_t "shared frame has two refs" 2
        (Frame_alloc.refcount m.Machine.frames (Option.get (pfn_of mm ~vpn:keep)));
      (* Both sides are COW write-protected. *)
      (match Page_table.walk (Mm_struct.page_table mm) ~vpn:keep with
      | Some w -> check bool_t "keep protected" false w.Page_table.pte.Pte.writable
      | None -> Alcotest.fail "keep unmapped"));
  Kernel.run m;
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let test_write_unmerges_via_cow () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:2 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:2 ~write:true;
      let keep = Addr.vpn_of_addr addr and dup = Addr.vpn_of_addr addr + 1 in
      ignore (Ksm.merge_pages m ~cpu:0 ~mm ~keep ~dup);
      let shared = Option.get (pfn_of mm ~vpn:keep) in
      (* Writing the duplicate un-merges it through the ordinary COW break
         (§4.1's path, local flush avoided). *)
      Access.write m ~cpu:0 ~vaddr:(addr + Addr.page_size);
      check bool_t "dup got private copy" true (pfn_of mm ~vpn:dup <> Some shared);
      check bool_t "keep still on shared frame" true (pfn_of mm ~vpn:keep = Some shared);
      check int_t "shared frame back to one ref" 1
        (Frame_alloc.refcount m.Machine.frames shared));
  Kernel.run m;
  check bool_t "cow flush avoidance kicked in" true
    (m.Machine.stats.Machine.cow_flush_avoided > 0);
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let test_dedup_range_counts () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:8 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:8 ~write:true;
      let before = Frame_alloc.allocated m.Machine.frames in
      let merged =
        Ksm.dedup_range m ~cpu:0 ~mm ~vpn:(Addr.vpn_of_addr addr) ~pages:8
      in
      check int_t "seven duplicates merged" 7 merged;
      check int_t "seven frames reclaimed" (before - 7)
        (Frame_alloc.allocated m.Machine.frames));
  Kernel.run m

let test_merge_skips_unsuitable () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let file = File.create m.Machine.frames ~name:"f" ~size_pages:1 in
      let anon = Syscall.mmap m ~cpu:0 ~pages:1 () in
      let filed =
        Syscall.mmap m ~cpu:0 ~pages:1 ~backing:(Vma.File_shared { file; offset = 0 }) ()
      in
      Access.write m ~cpu:0 ~vaddr:anon;
      Access.write m ~cpu:0 ~vaddr:filed;
      check bool_t "file page skipped" true
        (Ksm.merge_pages m ~cpu:0 ~mm ~keep:(Addr.vpn_of_addr anon)
           ~dup:(Addr.vpn_of_addr filed)
        = `Skipped);
      check bool_t "unmapped skipped" true
        (Ksm.merge_pages m ~cpu:0 ~mm ~keep:(Addr.vpn_of_addr anon) ~dup:99999
        = `Skipped))
  ;
  Kernel.run m

let test_dedup_under_concurrent_writer_safe () =
  (* A writer keeps dirtying pages while the dedup daemon merges them: the
     write-protect shootdowns must force the writer through COW faults,
     never letting a write land on a merged frame unnoticed. *)
  let m = make () in
  let mm = Machine.new_mm m in
  let pages = 8 in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"writer" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 14 in
      let rng = Rng.split m.Machine.rng in
      while not !stop do
        let p = Rng.int rng pages in
        Access.write m ~cpu:14 ~vaddr:(!addr_box + (p * Addr.page_size));
        Cpu.compute cpu_t ~quantum:100 300
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"ksmd" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      Machine.delay m 3_000;
      for _ = 1 to 5 do
        ignore (Ksm.dedup_range m ~cpu:0 ~mm ~vpn:(Addr.vpn_of_addr addr) ~pages);
        Machine.delay m 5_000
      done;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  check int_t "dedup under writes is coherent" 0
    (Checker.violation_count m.Machine.checker)

let suite =
  [
    Alcotest.test_case "merge shares frame" `Quick test_merge_shares_frame;
    Alcotest.test_case "write un-merges via cow" `Quick test_write_unmerges_via_cow;
    Alcotest.test_case "dedup_range counts" `Quick test_dedup_range_counts;
    Alcotest.test_case "merge skips unsuitable pages" `Quick test_merge_skips_unsuitable;
    Alcotest.test_case "dedup under writer safe" `Quick test_dedup_under_concurrent_writer_safe;
  ]
