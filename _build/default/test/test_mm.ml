(* Unit tests for the memory substrate: Addr, Pte, Frame_alloc, Page_table,
   Ept, Nested_mmu. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- Addr --- *)

let test_addr_conversions () =
  check int_t "vpn" 3 (Addr.vpn_of_addr (3 * 4096));
  check int_t "vpn rounds down" 3 (Addr.vpn_of_addr ((3 * 4096) + 4095));
  check int_t "addr" (5 * 4096) (Addr.addr_of_vpn 5);
  check int_t "align down" 8192 (Addr.page_align_down 8193);
  check int_t "align up" 12288 (Addr.page_align_up 8193);
  check int_t "align up exact" 8192 (Addr.page_align_up 8192)

let test_addr_ranges () =
  check int_t "pages spanning single" 1 (Addr.pages_spanning ~addr:100 ~len:1);
  check int_t "pages spanning boundary" 2 (Addr.pages_spanning ~addr:4000 ~len:200);
  check int_t "pages spanning zero" 0 (Addr.pages_spanning ~addr:0 ~len:0);
  check (Alcotest.list int_t) "vpns" [ 0; 1 ] (Addr.vpns_of_range ~addr:4000 ~len:200)

let test_addr_huge () =
  check bool_t "0 aligned" true (Addr.huge_aligned 0);
  check bool_t "512 aligned" true (Addr.huge_aligned 512);
  check bool_t "513 not" false (Addr.huge_aligned 513);
  check int_t "stride 4k" 12 (Addr.stride_shift Tlb.Four_k);
  check int_t "stride 2m" 21 (Addr.stride_shift Tlb.Two_m);
  check int_t "pages of 2m" 512 (Addr.pages_of_size Tlb.Two_m)

(* --- Pte --- *)

let test_pte_transitions () =
  let p = Pte.user_data ~pfn:42 in
  check bool_t "present" true p.Pte.present;
  check bool_t "writable" true p.Pte.writable;
  let cow = Pte.make_cow p in
  check bool_t "cow write-protected" false cow.Pte.writable;
  check bool_t "cow marked" true cow.Pte.cow;
  let broken = Pte.break_cow cow ~new_pfn:77 in
  check int_t "new frame" 77 broken.Pte.pfn;
  check bool_t "writable again" true broken.Pte.writable;
  check bool_t "not cow" false broken.Pte.cow;
  check bool_t "dirty" true broken.Pte.dirty

let test_pte_clean_protect () =
  let p = Pte.mark_dirty (Pte.user_data ~pfn:1) in
  let wb = Pte.clean (Pte.write_protect p) in
  check bool_t "clean" false wb.Pte.dirty;
  check bool_t "write-protected" false wb.Pte.writable

let test_pte_kernel_global () =
  let k = Pte.kernel_data ~pfn:3 in
  check bool_t "global" true k.Pte.global;
  check bool_t "not user" false k.Pte.user

(* --- Frame_alloc --- *)

let test_frames_alloc_free () =
  let f = Frame_alloc.create ~frames:4096 in
  let a = Frame_alloc.alloc f in
  let b = Frame_alloc.alloc f in
  check bool_t "distinct" true (a <> b);
  check int_t "allocated" 2 (Frame_alloc.allocated f);
  Frame_alloc.free f a;
  check int_t "after free" 1 (Frame_alloc.allocated f);
  check bool_t "a free" false (Frame_alloc.is_allocated f a);
  check bool_t "b allocated" true (Frame_alloc.is_allocated f b)

let test_frames_recycling_and_generation () =
  let f = Frame_alloc.create ~frames:4096 in
  let a = Frame_alloc.alloc f in
  let g0 = Frame_alloc.generation f a in
  Frame_alloc.free f a;
  let a' = Frame_alloc.alloc f in
  check int_t "recycled same frame" a a';
  check int_t "generation bumped" (g0 + 1) (Frame_alloc.generation f a)

let test_frames_double_free_rejected () =
  let f = Frame_alloc.create ~frames:64 in
  let a = Frame_alloc.alloc f in
  Frame_alloc.free f a;
  Alcotest.check_raises "double free"
    (Invalid_argument (Printf.sprintf "Frame_alloc.free: frame %d not allocated" a))
    (fun () -> Frame_alloc.free f a)

let test_frames_huge_alignment () =
  let f = Frame_alloc.create ~frames:4096 in
  let h = Frame_alloc.alloc_huge f in
  check int_t "aligned" 0 (h land 511);
  check int_t "512 frames taken" 512 (Frame_alloc.allocated f);
  Frame_alloc.free_huge f h;
  check int_t "released" 0 (Frame_alloc.allocated f)

let test_frames_exhaustion () =
  let f = Frame_alloc.create ~frames:8 in
  for _ = 1 to 8 do
    ignore (Frame_alloc.alloc f)
  done;
  Alcotest.check_raises "oom" Frame_alloc.Out_of_memory (fun () ->
      ignore (Frame_alloc.alloc f))

(* --- Page_table --- *)

let test_pt_map_walk () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:1000 ~size:Tlb.Four_k (Pte.user_data ~pfn:50);
  (match Page_table.walk pt ~vpn:1000 with
  | Some w ->
      check int_t "pfn" 50 w.Page_table.pte.Pte.pfn;
      check int_t "4 levels" 4 w.Page_table.levels
  | None -> Alcotest.fail "expected mapping");
  check bool_t "unmapped misses" true (Page_table.walk pt ~vpn:1001 = None);
  check int_t "mapped count" 1 (Page_table.mapped_count pt)

let test_pt_hugepage () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:1024 ~size:Tlb.Two_m (Pte.user_data ~pfn:8192);
  (match Page_table.walk pt ~vpn:(1024 + 100) with
  | Some w ->
      check int_t "3 levels" 3 w.Page_table.levels;
      check bool_t "2m size" true (w.Page_table.size = Tlb.Two_m)
  | None -> Alcotest.fail "hugepage covers inner vpn");
  Alcotest.check_raises "unaligned huge"
    (Invalid_argument "Page_table.map: hugepage VPN must be 2MiB-aligned") (fun () ->
      Page_table.map pt ~vpn:7 ~size:Tlb.Two_m (Pte.user_data ~pfn:0))

let test_pt_double_map_rejected () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:1);
  Alcotest.check_raises "double map"
    (Invalid_argument "Page_table.map: vpn 10 already mapped") (fun () ->
      Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:2))

let test_pt_unmap () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:1);
  let r = Page_table.unmap pt ~vpn:10 () in
  (match r.Page_table.removed with
  | [ (vpn, pte, size) ] ->
      check int_t "vpn" 10 vpn;
      check int_t "pfn" 1 pte.Pte.pfn;
      check bool_t "4k" true (size = Tlb.Four_k)
  | _ -> Alcotest.fail "expected one removal");
  check bool_t "no tables freed without flag" false r.Page_table.freed_tables;
  check int_t "empty" 0 (Page_table.mapped_count pt);
  let r2 = Page_table.unmap pt ~vpn:10 () in
  check bool_t "second unmap empty" true (r2.Page_table.removed = [])

let test_pt_unmap_frees_tables () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:1);
  let tables_before = Page_table.table_pages pt in
  check int_t "three intermediate tables" 3 tables_before;
  let r = Page_table.unmap pt ~vpn:10 ~free_tables:true () in
  check bool_t "tables freed" true r.Page_table.freed_tables;
  check int_t "no tables left" 0 (Page_table.table_pages pt);
  check int_t "freed counter" 3 (Page_table.tables_freed pt)

let test_pt_unmap_range_spans_hugepage () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:0 ~size:Tlb.Four_k (Pte.user_data ~pfn:1);
  Page_table.map pt ~vpn:512 ~size:Tlb.Two_m (Pte.user_data ~pfn:512);
  Page_table.map pt ~vpn:1024 ~size:Tlb.Four_k (Pte.user_data ~pfn:2);
  let r = Page_table.unmap_range pt ~vpn:0 ~pages:1025 () in
  check int_t "three removed" 3 (List.length r.Page_table.removed);
  check int_t "nothing left" 0 (Page_table.mapped_count pt)

let test_pt_update () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:1);
  (match Page_table.update pt ~vpn:10 ~f:Pte.write_protect with
  | Some (old_pte, new_pte) ->
      check bool_t "was writable" true old_pte.Pte.writable;
      check bool_t "now protected" false new_pte.Pte.writable
  | None -> Alcotest.fail "expected update");
  check bool_t "unmapped update" true (Page_table.update pt ~vpn:11 ~f:Fun.id = None)

let test_pt_version_bumps () =
  let pt = Page_table.create () in
  let v0 = Page_table.version pt in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:1);
  let v1 = Page_table.version pt in
  check bool_t "map bumps" true (v1 > v0);
  ignore (Page_table.update pt ~vpn:10 ~f:Pte.write_protect);
  check bool_t "update bumps" true (Page_table.version pt > v1)

let test_pt_iter () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:1);
  Page_table.map pt ~vpn:1024 ~size:Tlb.Two_m (Pte.user_data ~pfn:2048);
  Page_table.map pt ~vpn:((1 lsl 27) + 5) ~size:Tlb.Four_k (Pte.user_data ~pfn:3);
  let seen = ref [] in
  Page_table.iter pt ~f:(fun vpn _ _ -> seen := vpn :: !seen);
  check (Alcotest.list int_t) "all leaves with correct vpns"
    [ 10; 1024; (1 lsl 27) + 5 ]
    (List.sort compare !seen)

(* --- Ept / Nested --- *)

let test_ept_translate () =
  let ept = Ept.create () in
  Ept.map ept ~gfn:100 ~size:Tlb.Four_k ~hfn:900;
  check
    (Alcotest.option (Alcotest.pair int_t (Alcotest.testable (fun fmt s ->
         Format.pp_print_string fmt (match s with Tlb.Four_k -> "4k" | Tlb.Two_m -> "2m"))
         ( = ))))
    "mapped" (Some (900, Tlb.Four_k)) (Ept.translate ept ~gfn:100);
  check bool_t "unmapped" true (Ept.translate ept ~gfn:101 = None)

let test_ept_huge_offset () =
  let ept = Ept.create () in
  Ept.map ept ~gfn:1024 ~size:Tlb.Two_m ~hfn:4096;
  (match Ept.translate ept ~gfn:(1024 + 37) with
  | Some (hfn, size) ->
      check int_t "offset preserved" (4096 + 37) hfn;
      check bool_t "2m" true (size = Tlb.Two_m)
  | None -> Alcotest.fail "expected translation")

let test_nested_fracture_detection () =
  let guest = Page_table.create () in
  Page_table.map guest ~vpn:1024 ~size:Tlb.Two_m (Pte.user_data ~pfn:2048);
  let ept = Ept.create () in
  for i = 0 to 511 do
    Ept.map ept ~gfn:(2048 + i) ~size:Tlb.Four_k ~hfn:(9000 + i)
  done;
  match Ept.Nested.translate ~guest ~ept ~vpn:(1024 + 5) with
  | Some r ->
      check bool_t "fractured" true r.Ept.Nested.fractured;
      check bool_t "effective 4k" true (r.Ept.Nested.effective_size = Tlb.Four_k);
      check int_t "hfn" 9005 r.Ept.Nested.hfn
  | None -> Alcotest.fail "expected nested translation"

let test_nested_2m_on_2m_not_fractured () =
  let guest = Page_table.create () in
  Page_table.map guest ~vpn:1024 ~size:Tlb.Two_m (Pte.user_data ~pfn:2048);
  let ept = Ept.create () in
  Ept.map ept ~gfn:2048 ~size:Tlb.Two_m ~hfn:8192;
  match Ept.Nested.translate ~guest ~ept ~vpn:1024 with
  | Some r ->
      check bool_t "not fractured" false r.Ept.Nested.fractured;
      check bool_t "effective 2m" true (r.Ept.Nested.effective_size = Tlb.Two_m)
  | None -> Alcotest.fail "expected nested translation"

let test_nested_mmu_access_counts () =
  let guest = Page_table.create () in
  for i = 0 to 9 do
    Page_table.map guest ~vpn:(512 + i) ~size:Tlb.Four_k (Pte.user_data ~pfn:(100 + i))
  done;
  let mmu = Nested_mmu.create ~guest ~pcid:1 () in
  let hits, misses = Nested_mmu.touch_range mmu ~start_vpn:512 ~pages:10 in
  check int_t "cold misses" 10 misses;
  check int_t "no hits yet" 0 hits;
  let hits2, misses2 = Nested_mmu.touch_range mmu ~start_vpn:512 ~pages:10 in
  check int_t "warm hits" 10 hits2;
  check int_t "no new misses" 0 misses2

let test_nested_mmu_guest_fault () =
  let guest = Page_table.create () in
  let mmu = Nested_mmu.create ~guest ~pcid:1 () in
  Alcotest.check_raises "unmapped" (Nested_mmu.Guest_fault 7) (fun () ->
      ignore (Nested_mmu.access mmu ~vpn:7))

let test_nested_mmu_fracture_flag_set () =
  let guest = Page_table.create () in
  Page_table.map guest ~vpn:1024 ~size:Tlb.Two_m (Pte.user_data ~pfn:2048);
  let ept = Ept.create () in
  for i = 0 to 511 do
    Ept.map ept ~gfn:(2048 + i) ~size:Tlb.Four_k ~hfn:(9000 + i)
  done;
  let mmu = Nested_mmu.create ~guest ~ept ~pcid:1 () in
  ignore (Nested_mmu.access mmu ~vpn:1024);
  check bool_t "flag armed" true (Tlb.fracture_flag (Nested_mmu.tlb mmu));
  (* A selective flush of anything now wipes the TLB. *)
  ignore (Nested_mmu.access mmu ~vpn:1025);
  Nested_mmu.invlpg mmu ~vpn:999_999;
  check int_t "everything flushed" 0 (Tlb.occupancy (Nested_mmu.tlb mmu))

let suite =
  [
    Alcotest.test_case "addr: conversions" `Quick test_addr_conversions;
    Alcotest.test_case "addr: ranges" `Quick test_addr_ranges;
    Alcotest.test_case "addr: hugepages" `Quick test_addr_huge;
    Alcotest.test_case "pte: cow transitions" `Quick test_pte_transitions;
    Alcotest.test_case "pte: writeback transitions" `Quick test_pte_clean_protect;
    Alcotest.test_case "pte: kernel global" `Quick test_pte_kernel_global;
    Alcotest.test_case "frames: alloc/free" `Quick test_frames_alloc_free;
    Alcotest.test_case "frames: recycling bumps generation" `Quick test_frames_recycling_and_generation;
    Alcotest.test_case "frames: double free rejected" `Quick test_frames_double_free_rejected;
    Alcotest.test_case "frames: hugepage alignment" `Quick test_frames_huge_alignment;
    Alcotest.test_case "frames: exhaustion" `Quick test_frames_exhaustion;
    Alcotest.test_case "pt: map and walk" `Quick test_pt_map_walk;
    Alcotest.test_case "pt: hugepages" `Quick test_pt_hugepage;
    Alcotest.test_case "pt: double map rejected" `Quick test_pt_double_map_rejected;
    Alcotest.test_case "pt: unmap" `Quick test_pt_unmap;
    Alcotest.test_case "pt: unmap frees tables" `Quick test_pt_unmap_frees_tables;
    Alcotest.test_case "pt: range unmap spans hugepage" `Quick test_pt_unmap_range_spans_hugepage;
    Alcotest.test_case "pt: update" `Quick test_pt_update;
    Alcotest.test_case "pt: version bumps" `Quick test_pt_version_bumps;
    Alcotest.test_case "pt: iter reconstructs vpns" `Quick test_pt_iter;
    Alcotest.test_case "ept: translate" `Quick test_ept_translate;
    Alcotest.test_case "ept: hugepage offsets" `Quick test_ept_huge_offset;
    Alcotest.test_case "nested: fracture detection" `Quick test_nested_fracture_detection;
    Alcotest.test_case "nested: 2m-on-2m not fractured" `Quick test_nested_2m_on_2m_not_fractured;
    Alcotest.test_case "nested mmu: hit/miss counting" `Quick test_nested_mmu_access_counts;
    Alcotest.test_case "nested mmu: guest fault" `Quick test_nested_mmu_guest_fault;
    Alcotest.test_case "nested mmu: fracture flag" `Quick test_nested_mmu_fracture_flag_set;
  ]
