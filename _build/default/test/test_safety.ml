(* The paper's correctness argument, encoded as tests: every supported
   optimization stack keeps TLB coherence (checker-clean), while the
   LATR-style aggressive lazy batching strawman does not (§2.3.2). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* One writer madvises pages away while a reader on another socket keeps
   reading them; the reader's accesses are checked against the page table
   on every TLB hit. *)
let churn ~opts ~rounds =
  let m = Machine.create ~opts ~seed:5L () in
  let mm = Machine.new_mm m in
  let stop = ref false in
  let reader_cpu = 14 in
  let pages = 4 in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:reader_cpu ~mm ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m reader_cpu in
      while not !stop do
        (* Read whatever is there; pages may vanish under us, which must
           surface as page faults, never as stale reads. *)
        (try Access.touch_range m ~cpu:reader_cpu ~addr:!addr_box ~pages ~write:false
         with Fault.Segfault _ -> ());
        Cpu.compute cpu_t ~quantum:100 300
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"writer" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      for _ = 1 to rounds do
        Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages;
        Access.touch_range m ~cpu:0 ~addr ~pages ~write:true
      done;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  m

let test_baseline_protocol_is_safe () =
  let m = churn ~opts:(Opts.baseline ~safe:true) ~rounds:40 in
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker);
  check bool_t "races did happen (test is meaningful)" true
    (Checker.benign_races m.Machine.checker > 0
    || Checker.checks m.Machine.checker > 0)

let test_all_optimizations_safe_in_safe_mode () =
  let m = churn ~opts:(Opts.all ~safe:true) ~rounds:40 in
  check int_t "no violations with all 6 optimizations" 0
    (Checker.violation_count m.Machine.checker)

let test_all_optimizations_safe_in_unsafe_mode () =
  let m = churn ~opts:(Opts.all ~safe:false) ~rounds:40 in
  check int_t "no violations (unsafe mode = no PTI, still coherent)" 0
    (Checker.violation_count m.Machine.checker)

let test_each_single_optimization_safe () =
  List.iter
    (fun set ->
      let opts = Opts.baseline ~safe:true in
      set opts;
      let m = churn ~opts ~rounds:25 in
      check int_t "no violations" 0 (Checker.violation_count m.Machine.checker))
    [
      (fun o -> o.Opts.concurrent_flush <- true);
      (fun o -> o.Opts.early_ack <- true);
      (fun o -> o.Opts.cacheline_consolidation <- true);
      (fun o -> o.Opts.in_context_flush <- true);
      (fun o -> o.Opts.cow_avoid_flush <- true);
      (fun o -> o.Opts.userspace_batching <- true);
    ]

let test_lazy_batching_strawman_violates () =
  (* The point of §2.3.2: skipping the IPIs entirely and pretending the
     flush completed lets remote CPUs read through stale translations of
     recycled frames. The checker must catch it. *)
  let opts = Opts.baseline ~safe:true in
  opts.Opts.unsafe_lazy_batching <- true;
  let m = churn ~opts ~rounds:40 in
  check bool_t "violations detected" true (Checker.violation_count m.Machine.checker > 0);
  match Checker.violations m.Machine.checker with
  | v :: _ -> check int_t "on the remote cpu" 14 v.Checker.v_cpu
  | [] -> Alcotest.fail "expected recorded violations"

let test_no_open_windows_after_quiescence () =
  let m = churn ~opts:(Opts.all ~safe:true) ~rounds:10 in
  check int_t "all invalidation windows closed" 0
    (Checker.open_windows m.Machine.checker)

(* A CoW-specific safety scenario: two threads share a private mapping
   after a simulated fork; one writes (breaking CoW with a remote
   shootdown), the other keeps reading. *)
let test_cow_shootdown_remote_safety () =
  let opts = Opts.all ~safe:true in
  opts.Opts.spec_pte_recache_p <- 1.0;
  let m = Machine.create ~opts ~seed:7L () in
  let mm = Machine.new_mm m in
  let pages = 8 in
  let file = File.create m.Machine.frames ~name:"shared" ~size_pages:pages in
  for index = 0 to pages - 1 do
    ignore (File.frame_of_page file ~index)
  done;
  let stop = ref false in
  let ready = Waitq.Completion.create m.Machine.engine in
  let addr_box = ref 0 in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        Access.touch_range m ~cpu:14 ~addr:!addr_box ~pages ~write:false;
        Cpu.compute cpu_t ~quantum:100 200
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"writer" (fun () ->
      let addr =
        Syscall.mmap m ~cpu:0 ~pages ~backing:(Vma.File_private { file; offset = 0 }) ()
      in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:false;
      Waitq.Completion.fire ready;
      Machine.delay m 3_000;
      for i = 0 to pages - 1 do
        Access.write m ~cpu:0 ~vaddr:(addr + (i * Addr.page_size))
      done;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  check int_t "cow with remote reader is safe" 0
    (Checker.violation_count m.Machine.checker);
  check bool_t "cow flushes were avoided" true
    (m.Machine.stats.Machine.cow_flush_avoided > 0)

let suite =
  [
    Alcotest.test_case "baseline protocol safe" `Quick test_baseline_protocol_is_safe;
    Alcotest.test_case "all optimizations safe (safe mode)" `Quick test_all_optimizations_safe_in_safe_mode;
    Alcotest.test_case "all optimizations safe (unsafe mode)" `Quick test_all_optimizations_safe_in_unsafe_mode;
    Alcotest.test_case "each optimization individually safe" `Slow test_each_single_optimization_safe;
    Alcotest.test_case "lazy-batching strawman violates" `Quick test_lazy_batching_strawman_violates;
    Alcotest.test_case "no open windows at quiescence" `Quick test_no_open_windows_after_quiescence;
    Alcotest.test_case "cow + remote reader safe" `Quick test_cow_shootdown_remote_safety;
  ]
