(* Context switching, PCID (ASID) recycling and lazy-TLB mode: the §2.1
   machinery that makes PTI affordable and that shootdown targeting
   depends on. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make () = Machine.create ~opts:(Opts.baseline ~safe:true) ~seed:41L ()

(* Map and touch one page of [mm] on [cpu]; returns its vpn. *)
let plant m mm ~cpu =
  let vpn = Mm_struct.alloc_va_range mm ~pages:1 () in
  Mm_struct.add_vma mm (Vma.make ~start_vpn:vpn ~pages:1 ());
  Page_table.map (Mm_struct.page_table mm) ~vpn ~size:Tlb.Four_k
    (Pte.user_data ~pfn:(Frame_alloc.alloc m.Machine.frames));
  Access.touch_range m ~cpu ~addr:(Addr.addr_of_vpn vpn) ~pages:1 ~write:false;
  vpn

let user_pcid m cpu =
  Percpu.user_pcid (Machine.percpu m cpu).Percpu.curr_asid

let test_pcid_preserves_entries_across_switch () =
  let m = make () in
  let mm_a = Machine.new_mm m in
  let mm_b = Machine.new_mm m in
  Process.spawn m.Machine.engine ~name:"switcher" (fun () ->
      Sched.switch_mm m ~cpu:0 mm_a;
      let vpn_a = plant m mm_a ~cpu:0 in
      let pcid_a = user_pcid m 0 in
      (* Switch away and back: with PCIDs, A's translations survive. *)
      Sched.switch_mm m ~cpu:0 mm_b;
      check bool_t "different pcid for B" true (user_pcid m 0 <> pcid_a);
      Sched.switch_mm m ~cpu:0 mm_a;
      check int_t "same pcid again" pcid_a (user_pcid m 0);
      check bool_t "A's entry survived the context switches" true
        (Tlb.mem (Cpu.tlb (Machine.cpu m 0)) ~pcid:pcid_a ~vpn:vpn_a));
  Kernel.run m

let test_asid_recycling_flushes_old_pcid () =
  let m = make () in
  let mms = List.init (Percpu.n_asids + 1) (fun _ -> Machine.new_mm m) in
  Process.spawn m.Machine.engine ~name:"cycler" (fun () ->
      let first = List.hd mms in
      Sched.switch_mm m ~cpu:0 first;
      let vpn = plant m first ~cpu:0 in
      let pcid_first = user_pcid m 0 in
      (* Burn through all remaining ASIDs, plus one: first's slot is
         recycled and its stale entries must be flushed with it. *)
      List.iter (fun mm -> Sched.switch_mm m ~cpu:0 mm) (List.tl mms);
      check bool_t "entry gone once the slot was recycled" false
        (Tlb.mem (Cpu.tlb (Machine.cpu m 0)) ~pcid:pcid_first ~vpn));
  Kernel.run m

let test_switch_in_catches_up_generations () =
  let m = make () in
  let mm = Machine.new_mm m in
  let other = Machine.new_mm m in
  Process.spawn m.Machine.engine ~name:"victim" (fun () ->
      Sched.switch_mm m ~cpu:0 mm;
      let vpn = plant m mm ~cpu:0 in
      let pcid = user_pcid m 0 in
      Sched.switch_mm m ~cpu:0 other;
      (* While away, another CPU changes mm's PTEs. cpu0 is no longer in
         the cpumask, so no IPI goes there; the generation moved on. *)
      check bool_t "cpu0 left the cpumask" false (Mm_struct.cpu_isset mm ~cpu:0);
      ignore (Page_table.unmap (Mm_struct.page_table mm) ~vpn ());
      ignore (Mm_struct.bump_tlb_gen mm);
      (* Switching back must notice; the user-PCID half completes with the
         return-to-user CR3 load, before any user instruction runs. *)
      Sched.switch_mm m ~cpu:0 mm;
      check bool_t "full user flush pending after switch-in" true
        ((Machine.percpu m 0).Percpu.pending_user = Percpu.Full_flush);
      Shootdown.return_to_user m ~cpu:0 ~has_stack:true;
      check bool_t "stale entry flushed before user code" false
        (Tlb.mem (Cpu.tlb (Machine.cpu m 0)) ~pcid ~vpn));
  Kernel.run m

let test_switch_same_mm_is_cheap () =
  let m = make () in
  let mm = Machine.new_mm m in
  Process.spawn m.Machine.engine ~name:"t" (fun () ->
      Sched.switch_mm m ~cpu:0 mm;
      let t0 = Machine.now m in
      Sched.switch_mm m ~cpu:0 mm;
      (* Same mm: no CR3 write, no flush — only the lazy-flag clear. *)
      check bool_t "near-free" true (Machine.now m - t0 < 50));
  Kernel.run m

let test_cpumask_tracks_switches () =
  let m = make () in
  let mm_a = Machine.new_mm m in
  let mm_b = Machine.new_mm m in
  Process.spawn m.Machine.engine ~name:"t" (fun () ->
      Sched.switch_mm m ~cpu:3 mm_a;
      check (Alcotest.list int_t) "A on cpu3" [ 3 ] (Mm_struct.cpumask mm_a);
      Sched.switch_mm m ~cpu:3 mm_b;
      check (Alcotest.list int_t) "A vacated" [] (Mm_struct.cpumask mm_a);
      check (Alcotest.list int_t) "B on cpu3" [ 3 ] (Mm_struct.cpumask mm_b);
      Sched.unload m ~cpu:3;
      check (Alcotest.list int_t) "B vacated on unload" [] (Mm_struct.cpumask mm_b));
  Kernel.run m

let test_lazy_mode_round_trip () =
  let m = make () in
  let mm = Machine.new_mm m in
  Process.spawn m.Machine.engine ~name:"t" (fun () ->
      Sched.switch_mm m ~cpu:0 mm;
      Sched.enter_lazy m ~cpu:0;
      check bool_t "lazy" true (Machine.percpu m 0).Percpu.lazy_mode;
      (* The mm stays loaded and in the cpumask while lazy. *)
      check bool_t "still in mask" true (Mm_struct.cpu_isset mm ~cpu:0);
      Sched.exit_lazy m ~cpu:0;
      check bool_t "not lazy" false (Machine.percpu m 0).Percpu.lazy_mode);
  Kernel.run m

let test_two_threads_two_mms_isolated () =
  (* Two processes on two CPUs never see each other's translations even
     with identical virtual addresses. *)
  let m = make () in
  let mm_a = Machine.new_mm m in
  let mm_b = Machine.new_mm m in
  let crossed = ref false in
  let barrier = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:0 ~mm:mm_a ~name:"a" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:2 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:2 ~write:true;
      Waitq.Completion.fire barrier);
  Kernel.spawn_user m ~cpu:1 ~mm:mm_b ~name:"b" (fun () ->
      Waitq.Completion.wait barrier;
      (* mm_b has no mappings: the same address range must fault, not hit
         mm_a's translations. *)
      let addr = Addr.addr_of_vpn (1 lsl 20) in
      (try Access.read m ~cpu:1 ~vaddr:addr with Fault.Segfault _ -> crossed := false);
      let s = Tlb.stats (Cpu.tlb (Machine.cpu m 1)) in
      if s.Tlb.hits > 0 then crossed := true);
  Kernel.run m;
  check bool_t "no cross-address-space hits" false !crossed

let suite =
  [
    Alcotest.test_case "pcid preserves entries across switches" `Quick
      test_pcid_preserves_entries_across_switch;
    Alcotest.test_case "asid recycling flushes the old pcid" `Quick
      test_asid_recycling_flushes_old_pcid;
    Alcotest.test_case "switch-in catches up generations" `Quick
      test_switch_in_catches_up_generations;
    Alcotest.test_case "same-mm switch is cheap" `Quick test_switch_same_mm_is_cheap;
    Alcotest.test_case "cpumask tracks switches" `Quick test_cpumask_tracks_switches;
    Alcotest.test_case "lazy mode round trip" `Quick test_lazy_mode_round_trip;
    Alcotest.test_case "address spaces isolated" `Quick test_two_threads_two_mms_isolated;
  ]
