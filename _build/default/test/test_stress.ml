(* Failure injection and stress: IRQ-disabled responders (§2.2 notes
   device-driver code can keep interrupts masked, inflating shootdown
   latency), concurrent multi-initiator storms, and determinism. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make ?(opts = Opts.all_general ~safe:true) ?(seed = 71L) () =
  Machine.create ~opts ~seed ()

(* Shootdown latency with a responder that masks IRQs for [masked] cycles
   out of every [period]. *)
let latency_with_masking ~masked ~period =
  let m = make () in
  let mm = Machine.new_mm m in
  let stop = ref false in
  let measured = ref 0 in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"driver" (fun () ->
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        (* Critical section with interrupts off, as driver code would. *)
        if masked > 0 then begin
          Cpu.irq_disable cpu_t;
          Cpu.compute cpu_t ~quantum:100 masked;
          Cpu.irq_enable cpu_t
        end;
        Cpu.compute cpu_t ~quantum:100 (period - masked)
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 2_000;
      let start_vpn = Mm_struct.alloc_va_range mm ~pages:1 () in
      Mm_struct.add_vma mm (Vma.make ~start_vpn ~pages:1 ());
      Page_table.map (Mm_struct.page_table mm) ~vpn:start_vpn ~size:Tlb.Four_k
        (Pte.user_data ~pfn:(Frame_alloc.alloc m.Machine.frames));
      Access.touch_range m ~cpu:0 ~addr:(Addr.addr_of_vpn start_vpn) ~pages:1
        ~write:false;
      let t0 = Machine.now m in
      Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn:start_vpn;
      measured := Machine.now m - t0;
      Machine.delay m 10_000;
      stop := true);
  Kernel.run m;
  check int_t "coherent despite masking" 0 (Checker.violation_count m.Machine.checker);
  !measured

let test_masked_responder_delays_shootdown () =
  let unmasked = latency_with_masking ~masked:0 ~period:5_000 in
  let masked = latency_with_masking ~masked:4_500 ~period:5_000 in
  (* How much extra latency the mask adds depends on where in the masked
     window the IPI lands; any clear inflation suffices. *)
  check bool_t
    (Printf.sprintf "masking inflates latency (%d vs %d)" masked unmasked)
    true
    (masked > unmasked + 500)

let test_masked_responder_still_completes () =
  (* Even with 95% masked duty cycle the protocol terminates and stays
     correct — no lost IPIs, no stale reads. *)
  let l = latency_with_masking ~masked:9_500 ~period:10_000 in
  check bool_t "finite" true (l > 0)

let test_many_initiators_storm () =
  (* Eight mutators madvise their own ranges of one address space
     concurrently: shootdowns cross in flight, responders double as
     initiators. The checker and determinism must both hold. *)
  let run seed =
    let m = make ~opts:(Opts.all ~safe:true) ~seed () in
    let mm = Machine.new_mm m in
    List.iter
      (fun cpu ->
        Kernel.spawn_user m ~cpu ~mm ~name:(Printf.sprintf "mut%d" cpu) (fun () ->
            let addr = Syscall.mmap m ~cpu ~pages:4 () in
            for _ = 1 to 8 do
              Access.touch_range m ~cpu ~addr ~pages:4 ~write:true;
              Syscall.madvise_dontneed m ~cpu ~addr ~pages:4
            done))
      [ 0; 1; 2; 3; 14; 15; 16; 17 ];
    Kernel.run m;
    check int_t "storm is coherent" 0 (Checker.violation_count m.Machine.checker);
    Machine.now m
  in
  let a = run 5L and b = run 5L in
  check int_t "deterministic under storm" a b

let test_mixed_operations_stress () =
  (* Everything at once: fork + migration + dedup + madvise + msync with
     readers, under the full optimization stack. *)
  let m = make ~opts:(Opts.all ~safe:true) ~seed:83L () in
  let parent = Machine.new_mm m in
  let pages = 16 in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:14 ~mm:parent ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        (try Access.touch_range m ~cpu:14 ~addr:!addr_box ~pages ~write:false
         with Fault.Segfault _ -> ());
        Cpu.compute cpu_t ~quantum:100 300
      done);
  Kernel.spawn_user m ~cpu:0 ~mm:parent ~name:"main" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      Machine.delay m 2_000;
      let vpn = Addr.vpn_of_addr addr in
      (* fork, then shake the address space in every way we have. *)
      let child = Fork.fork m ~cpu:0 in
      Kernel.spawn_user m ~cpu:1 ~mm:child ~name:"child" (fun () ->
          for i = 0 to pages - 1 do
            Access.write m ~cpu:1 ~vaddr:(addr + (i * Addr.page_size))
          done);
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      ignore (Migrate.migrate_range m ~cpu:0 ~mm:parent ~vpn ~pages:(pages / 2));
      ignore (Ksm.dedup_range m ~cpu:0 ~mm:parent ~vpn:(vpn + (pages / 2)) ~pages:(pages / 2));
      Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages:(pages / 4);
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Machine.delay m 30_000;
      stop := true);
  Kernel.run m;
  check int_t "combined stress coherent" 0 (Checker.violation_count m.Machine.checker);
  check bool_t "work actually happened" true
    (m.Machine.stats.Machine.shootdowns > 0 && m.Machine.stats.Machine.cow_breaks > 0)

let test_no_frame_leaks_after_teardown () =
  let m = make ~opts:(Opts.all ~safe:true) () in
  let mm = Machine.new_mm m in
  let baseline_frames = ref 0 in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      baseline_frames := Frame_alloc.allocated m.Machine.frames;
      for _ = 1 to 10 do
        let addr = Syscall.mmap m ~cpu:0 ~pages:8 () in
        Access.touch_range m ~cpu:0 ~addr ~pages:8 ~write:true;
        ignore (Migrate.migrate_range m ~cpu:0 ~mm ~vpn:(Addr.vpn_of_addr addr) ~pages:8);
        ignore (Ksm.dedup_range m ~cpu:0 ~mm ~vpn:(Addr.vpn_of_addr addr) ~pages:8);
        Access.touch_range m ~cpu:0 ~addr ~pages:8 ~write:true;
        Syscall.munmap m ~cpu:0 ~addr ~pages:8
      done;
      check int_t "all frames returned" !baseline_frames
        (Frame_alloc.allocated m.Machine.frames));
  Kernel.run m

let suite =
  [
    Alcotest.test_case "masked responder delays shootdown" `Quick
      test_masked_responder_delays_shootdown;
    Alcotest.test_case "masked responder still completes" `Quick
      test_masked_responder_still_completes;
    Alcotest.test_case "multi-initiator storm" `Quick test_many_initiators_storm;
    Alcotest.test_case "mixed operations stress" `Quick test_mixed_operations_stress;
    Alcotest.test_case "no frame leaks after teardown" `Quick test_no_frame_leaks_after_teardown;
  ]
