(* Integration tests: every experiment driver runs, is deterministic, and
   shows the paper's qualitative behaviour in miniature. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Small iteration counts: these are correctness/shape tests, not the
   bench harness. *)

let micro ~opts ~placement ~pte_count =
  let cfg = Microbench.default_config ~opts ~placement ~pte_count in
  Microbench.run { cfg with Microbench.iterations = 60; warmup = 10 }

let test_microbench_runs_and_counts () =
  let r = micro ~opts:(Opts.baseline ~safe:true) ~placement:Microbench.Cross_socket ~pte_count:1 in
  check int_t "one shootdown per madvise" 60 r.Microbench.shootdowns;
  check bool_t "nonzero initiator latency" true (r.Microbench.initiator_mean > 0.0);
  check bool_t "nonzero responder interruption" true (r.Microbench.responder_mean > 0.0)

let test_microbench_deterministic () =
  let r1 = micro ~opts:(Opts.baseline ~safe:true) ~placement:Microbench.Same_socket ~pte_count:1 in
  let r2 = micro ~opts:(Opts.baseline ~safe:true) ~placement:Microbench.Same_socket ~pte_count:1 in
  check (Alcotest.float 0.0) "identical means" r1.Microbench.initiator_mean
    r2.Microbench.initiator_mean

let test_microbench_all4_beats_baseline_everywhere () =
  List.iter
    (fun placement ->
      List.iter
        (fun pte_count ->
          List.iter
            (fun safe ->
              let base = micro ~opts:(Opts.baseline ~safe) ~placement ~pte_count in
              let all = micro ~opts:(Opts.all_general ~safe) ~placement ~pte_count in
              check bool_t
                (Printf.sprintf "all4 < baseline (%s, %d pte, safe=%b)"
                   (Microbench.placement_label placement)
                   pte_count safe)
                true
                (all.Microbench.initiator_mean < base.Microbench.initiator_mean))
            [ true; false ])
        [ 1; 10 ])
    Microbench.all_placements

let test_microbench_crosssocket_slower_than_smt () =
  let smt = micro ~opts:(Opts.baseline ~safe:true) ~placement:Microbench.Same_core ~pte_count:1 in
  let far = micro ~opts:(Opts.baseline ~safe:true) ~placement:Microbench.Cross_socket ~pte_count:1 in
  check bool_t "distance costs" true
    (far.Microbench.initiator_mean > smt.Microbench.initiator_mean)

let test_microbench_safe_mode_slower () =
  let safe = micro ~opts:(Opts.baseline ~safe:true) ~placement:Microbench.Same_socket ~pte_count:10 in
  let unsafe = micro ~opts:(Opts.baseline ~safe:false) ~placement:Microbench.Same_socket ~pte_count:10 in
  check bool_t "PTI tax" true
    (safe.Microbench.initiator_mean > unsafe.Microbench.initiator_mean)

let test_cow_bench_runs () =
  let cfg = Cow_bench.default_config ~opts:(Opts.all_general ~safe:true) in
  let cfg = { cfg with Cow_bench.rounds = 3; pages_per_round = 32 } in
  let r = Cow_bench.run cfg in
  check int_t "every write breaks cow once" 96 r.Cow_bench.cow_breaks;
  check int_t "no flushes avoided without the opt" 0 r.Cow_bench.flushes_avoided;
  check bool_t "positive cost" true (r.Cow_bench.write_mean > 0.0)

let test_cow_bench_opt_faster () =
  let run opts =
    let cfg = Cow_bench.default_config ~opts in
    Cow_bench.run { cfg with Cow_bench.rounds = 3; pages_per_round = 32 }
  in
  let base = run (Opts.all_general ~safe:true) in
  let with_cow =
    let o = Opts.all_general ~safe:true in
    o.Opts.cow_avoid_flush <- true;
    run o
  in
  check bool_t "cow avoidance reduces write latency" true
    (with_cow.Cow_bench.write_mean < base.Cow_bench.write_mean);
  check int_t "all flushes avoided" 96 with_cow.Cow_bench.flushes_avoided

let sysbench ~opts ~threads =
  let cfg = Sysbench.default_config ~opts ~threads in
  Sysbench.run { cfg with Sysbench.ops_per_thread = 80; file_pages = 256; sync_every = 20 }

let test_sysbench_runs () =
  let r = sysbench ~opts:(Opts.baseline ~safe:true) ~threads:4 in
  check int_t "all ops done" 320 r.Sysbench.ops;
  check bool_t "shootdowns happened" true (r.Sysbench.shootdowns > 0);
  check bool_t "throughput positive" true (r.Sysbench.throughput > 0.0)

let test_sysbench_single_thread_no_shootdowns () =
  let r = sysbench ~opts:(Opts.baseline ~safe:true) ~threads:1 in
  check int_t "no remote CPUs, no shootdowns" 0 r.Sysbench.shootdowns

let test_sysbench_optimized_not_slower () =
  let base = sysbench ~opts:(Opts.baseline ~safe:true) ~threads:6 in
  let opt = sysbench ~opts:(Opts.all ~safe:true) ~threads:6 in
  check bool_t
    (Printf.sprintf "optimized (%.3f) >= baseline (%.3f) throughput"
       opt.Sysbench.throughput base.Sysbench.throughput)
    true
    (opt.Sysbench.throughput >= base.Sysbench.throughput)

let test_sysbench_batching_defers () =
  let opts = Opts.all ~safe:true in
  let r = sysbench ~opts ~threads:4 in
  check bool_t "batched deferrals happened" true (r.Sysbench.batched_deferrals > 0)

let test_sysbench_node_cpus () =
  let topo = Topology.paper_machine in
  check (Alcotest.list int_t) "first four on socket 0" [ 0; 1; 2; 3 ]
    (Sysbench.node_cpus topo 4);
  let sixteen = Sysbench.node_cpus topo 16 in
  check int_t "16 cpus" 16 (List.length sixteen);
  List.iter
    (fun cpu -> check int_t "all on socket 0" 0 (Topology.socket_of topo cpu))
    sixteen;
  Alcotest.check_raises "29 exceeds node"
    (Invalid_argument "Sysbench: 29 threads exceed the 28 CPUs of one node") (fun () ->
      ignore (Sysbench.node_cpus topo 29))

let apache ~opts ~cores =
  let cfg = Apache.default_config ~opts ~cores in
  Apache.run { cfg with Apache.requests = 120 }

let test_apache_runs () =
  let r = apache ~opts:(Opts.baseline ~safe:true) ~cores:4 in
  check int_t "requests served" 120 r.Apache.requests_done;
  check bool_t "munmaps shoot down" true (r.Apache.shootdowns > 0)

let test_apache_optimized_not_slower () =
  let base = apache ~opts:(Opts.baseline ~safe:true) ~cores:6 in
  let opt = apache ~opts:(Opts.all ~safe:true) ~cores:6 in
  check bool_t "optimized >= baseline" true
    (opt.Apache.throughput >= base.Apache.throughput)

let test_apache_single_core_no_shootdowns () =
  let r = apache ~opts:(Opts.baseline ~safe:true) ~cores:1 in
  check int_t "solo core" 0 r.Apache.shootdowns

let test_fracture_table_shape () =
  let cfg = { Fracture.working_set_pages = 256; rounds = 20; tlb_capacity = 1536 } in
  let results = Fracture.run_all cfg in
  check int_t "six rows" 6 (List.length results);
  List.iter
    (fun (r : Fracture.result) ->
      let fractured =
        r.Fracture.shape.Fracture.host = Some Tlb.Four_k
        && r.Fracture.shape.Fracture.guest = Tlb.Two_m
      in
      if fractured then begin
        (* The paper's anomaly: selective ~= full. *)
        check bool_t "selective as bad as full" true
          (float_of_int r.Fracture.selective_misses
          >= 0.9 *. float_of_int r.Fracture.full_misses);
        check bool_t "promotions happened" true (r.Fracture.fracture_promotions > 0)
      end
      else begin
        (* Selective flushes preserve the working set. *)
        check bool_t
          (Printf.sprintf "%s: selective << full" r.Fracture.shape.Fracture.label)
          true
          (float_of_int r.Fracture.selective_misses
          < 0.1 *. float_of_int r.Fracture.full_misses);
        check int_t "no promotions" 0 r.Fracture.fracture_promotions
      end)
    results

let test_fracture_2m_on_2m_fewer_misses () =
  let cfg = { Fracture.working_set_pages = 1024; rounds = 20; tlb_capacity = 1536 } in
  let find label = List.find (fun r -> r.Fracture.shape.Fracture.label = label) in
  let results = Fracture.run_all cfg in
  let small = find "VM   host=4K guest=4K" results in
  let big = find "VM   host=2M guest=2M" results in
  (* 2 MiB effective entries: ~512x fewer full-flush misses (Table 4's
     103M vs 4M contrast in our scale). *)
  check bool_t "hugepages cut full-flush misses" true
    (big.Fracture.full_misses * 20 < small.Fracture.full_misses)

let test_report_formatting () =
  check Alcotest.string "cycles small" "950" (Report.cycles 950.0);
  check Alcotest.string "cycles k" "15.2k" (Report.cycles 15_200.0);
  check Alcotest.string "cycles M" "2.50M" (Report.cycles 2_500_000.0);
  check Alcotest.string "speedup" "1.180x" (Report.speedup 1.18);
  check Alcotest.string "reduction" "58%" (Report.reduction ~baseline:100.0 42.0);
  check Alcotest.string "count" "102,400" (Report.count 102400);
  check Alcotest.string "count small" "37" (Report.count 37)

let test_report_bars () =
  (* Each block glyph is 3 bytes of UTF-8. *)
  let cells s = String.length s / 3 in
  check int_t "full bar" 40 (cells (Report.bar_of ~width:40 ~max:100.0 100.0));
  check int_t "half bar" 20 (cells (Report.bar_of ~width:40 ~max:100.0 50.0));
  check int_t "zero" 0 (cells (Report.bar_of ~width:40 ~max:100.0 0.0));
  check Alcotest.string "degenerate max" "" (Report.bar_of ~width:40 ~max:0.0 5.0);
  (* Rounds but never overflows the width. *)
  check int_t "clamped" 40 (cells (Report.bar_of ~width:40 ~max:100.0 120.0))

let suite =
  [
    Alcotest.test_case "microbench: runs and counts" `Quick test_microbench_runs_and_counts;
    Alcotest.test_case "microbench: deterministic" `Quick test_microbench_deterministic;
    Alcotest.test_case "microbench: all4 beats baseline everywhere" `Slow
      test_microbench_all4_beats_baseline_everywhere;
    Alcotest.test_case "microbench: distance hurts" `Quick test_microbench_crosssocket_slower_than_smt;
    Alcotest.test_case "microbench: PTI tax" `Quick test_microbench_safe_mode_slower;
    Alcotest.test_case "cow bench: runs" `Quick test_cow_bench_runs;
    Alcotest.test_case "cow bench: optimization wins" `Quick test_cow_bench_opt_faster;
    Alcotest.test_case "sysbench: runs" `Quick test_sysbench_runs;
    Alcotest.test_case "sysbench: 1 thread, no shootdowns" `Quick test_sysbench_single_thread_no_shootdowns;
    Alcotest.test_case "sysbench: optimized not slower" `Quick test_sysbench_optimized_not_slower;
    Alcotest.test_case "sysbench: batching defers" `Quick test_sysbench_batching_defers;
    Alcotest.test_case "sysbench: node pinning" `Quick test_sysbench_node_cpus;
    Alcotest.test_case "apache: runs" `Quick test_apache_runs;
    Alcotest.test_case "apache: optimized not slower" `Quick test_apache_optimized_not_slower;
    Alcotest.test_case "apache: solo core quiet" `Quick test_apache_single_core_no_shootdowns;
    Alcotest.test_case "fracture: table shape" `Quick test_fracture_table_shape;
    Alcotest.test_case "fracture: hugepages cut misses" `Quick test_fracture_2m_on_2m_fewer_misses;
    Alcotest.test_case "report: formatting" `Quick test_report_formatting;
    Alcotest.test_case "report: bars" `Quick test_report_bars;
  ]
