(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5, §7).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig5    -- one experiment
     dune exec bench/main.exe -- quick   -- everything, reduced iterations
     dune exec bench/main.exe -- all -j 4 -- experiments on 4 domains
     dune exec bench/main.exe -- perf    -- wall-clock harness (BENCH_PERF.json)
     dune exec bench/main.exe -- bechamel -- harness self-measurement

   Simulated cycle counts are printed; EXPERIMENTS.md compares them to the
   paper's numbers. Experiments are pure functions of their configuration
   (fresh machines, fixed seeds), so `-j N` runs them on N domains with
   output captured per experiment and printed in order: `-j 1` output is
   byte-identical to the sequential harness. Per-experiment elapsed-time
   lines go to stderr so stdout stays comparable across runs. *)

let quick = ref false

let micro_iters () = if !quick then 60 else 200

(* A compute-once cell shared between experiments. Under the parallel
   runner two domains can want the same matrix; the mutex makes the second
   one wait for (rather than duplicate) the computation. *)
module Memo = struct
  type 'a state = Thunk of (unit -> 'a) | Value of 'a
  type 'a t = { lock : Mutex.t; mutable state : 'a state }

  let create f = { lock = Mutex.create (); state = Thunk f }

  let force t =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        match t.state with
        | Value v -> v
        | Thunk f ->
            let v = f () in
            t.state <- Value v;
            v)
end

(* ----- Figures 5-8: the madvise microbenchmark ----- *)

let micro_cell ~opts ~placement ~pte_count =
  let cfg = Microbench.default_config ~opts ~placement ~pte_count in
  Microbench.run { cfg with Microbench.iterations = micro_iters (); warmup = 20 }

(* All stacks for all placements; returns (placement, (label, result) list). *)
let micro_matrix ~safe ~pte_count =
  let stacks = Opts.cumulative_general ~safe in
  List.map
    (fun placement ->
      let cells =
        List.map
          (fun (label, opts) ->
            (label, micro_cell ~opts:(Opts.copy opts) ~placement ~pte_count))
          stacks
      in
      (placement, cells))
    Microbench.all_placements

(* Figures 5-8 and Table 3 consume the same four matrices (safe x pte_count);
   in an `all` run Table 3 reuses the figures' results instead of
   recomputing ~half the microbenchmark cells. *)
let matrix_memo =
  List.map
    (fun ((safe, pte_count) as key) ->
      (key, Memo.create (fun () -> micro_matrix ~safe ~pte_count)))
    [ (true, 1); (true, 10); (false, 1); (false, 10) ]

let micro_matrix_cached ~safe ~pte_count =
  Memo.force (List.assoc (safe, pte_count) matrix_memo)

let print_micro_figure ~fig ~safe ~pte_count matrix =
  let stacks = List.map fst (List.assoc Microbench.Same_core matrix) in
  let header = "placement" :: stacks in
  let side name pick =
    let rows =
      List.map
        (fun (placement, cells) ->
          Microbench.placement_label placement
          :: List.map (fun (_, r) -> Report.cycles (pick r)) cells)
        matrix
    in
    Report.table
      ~title:
        (Printf.sprintf "Figure %d%s (%s mode, %d PTE%s) — %s cycles" fig
           (match name with "initiator" -> "a" | _ -> "b")
           (if safe then "safe" else "unsafe")
           pte_count
           (if pte_count = 1 then "" else "s")
           name)
      ~header rows
  in
  side "initiator" (fun r -> r.Microbench.initiator_mean);
  side "responder" (fun r -> r.Microbench.responder_mean);
  (* The paper's bar-figure rendition for the farthest placement. *)
  Report.bars
    ~title:
      (Printf.sprintf "Figure %da, cross-socket initiator cycles (bars)" fig)
    (List.map
       (fun (label, r) -> (label, r.Microbench.initiator_mean))
       (List.assoc Microbench.Cross_socket matrix))

let run_micro_figure ~fig ~safe ~pte_count =
  print_micro_figure ~fig ~safe ~pte_count (micro_matrix_cached ~safe ~pte_count)

(* ----- Table 3: latency reduction cross-socket, all four techniques ----- *)

let table3 () =
  let cell ~safe ~pte_count =
    let matrix = micro_matrix_cached ~safe ~pte_count in
    let cells = List.assoc Microbench.Cross_socket matrix in
    let first = snd (List.hd cells) in
    let last = snd (List.nth cells (List.length cells - 1)) in
    let pct baseline v =
      if baseline = 0.0 then 0.0 else (baseline -. v) /. baseline *. 100.0
    in
    ( pct first.Microbench.initiator_mean last.Microbench.initiator_mean,
      pct first.Microbench.responder_mean last.Microbench.responder_mean )
  in
  let s1 = cell ~safe:true ~pte_count:1 in
  let s10 = cell ~safe:true ~pte_count:10 in
  let u1 = cell ~safe:false ~pte_count:1 in
  let u10 = cell ~safe:false ~pte_count:10 in
  let fmt (i, r) = Printf.sprintf "%.0f%% / %.0f%%" i r in
  Report.table
    ~title:
      "Table 3 — [initiator / responder] latency reduction, cross-socket, all \
       techniques of §3 (paper: safe 39%/13% & 58%/22%; unsafe 39%/18% & 54%/14%)"
    ~header:[ ""; "Safe Mode"; "Unsafe Mode" ]
    [ [ "1 PTE"; fmt s1; fmt u1 ]; [ "10 PTEs"; fmt s10; fmt u10 ] ]

(* ----- Figure 9: CoW fault latency ----- *)

let fig9 () =
  let run ~safe ~label opts =
    let cfg = Cow_bench.default_config ~opts in
    let cfg =
      if !quick then { cfg with Cow_bench.rounds = 4; pages_per_round = 32 } else cfg
    in
    let r = Cow_bench.run cfg in
    ( (if safe then "safe" else "unsafe"),
      label,
      r.Cow_bench.write_mean,
      r.Cow_bench.write_sd )
  in
  let rows =
    List.concat_map
      (fun safe ->
        let baseline = run ~safe ~label:"baseline" (Opts.baseline ~safe) in
        let all = run ~safe ~label:"all (SS3)" (Opts.all_general ~safe) in
        let cow_opts = Opts.all_general ~safe in
        cow_opts.Opts.cow_avoid_flush <- true;
        let cow = run ~safe ~label:"all + CoW" cow_opts in
        [ baseline; all; cow ])
      [ true; false ]
  in
  Report.table
    ~title:
      "Figure 9 — CoW write latency, cycles (paper: CoW avoidance saves ~130 \
       cycles, 3-5%)"
    ~header:[ "mode"; "config"; "cycles"; "sd" ]
    (List.map
       (fun (mode, label, mean, sd) ->
         [ mode; label; Report.cycles mean; Printf.sprintf "%.0f" sd ])
       rows)

(* ----- Figure 10: Sysbench ----- *)

let fig10 () =
  let threads =
    if !quick then [ 1; 4; 10; 16 ] else [ 1; 2; 3; 4; 6; 8; 10; 12; 16; 20; 24; 28 ]
  in
  (* Average several seeds, as the paper averages 5 runs. *)
  let seeds = if !quick then [ 23L ] else [ 23L; 137L; 911L ] in
  let run ~opts ~n =
    let one seed =
      let cfg = Sysbench.default_config ~opts ~threads:n in
      let cfg =
        if !quick then { cfg with Sysbench.ops_per_thread = 120; file_pages = 1024; seed }
        else { cfg with Sysbench.ops_per_thread = 288; file_pages = 4096; seed }
      in
      (Sysbench.run cfg).Sysbench.throughput
    in
    List.fold_left (fun acc s -> acc +. one s) 0.0 seeds
    /. float_of_int (List.length seeds)
  in
  List.iter
    (fun safe ->
      let stacks = Opts.cumulative_workload ~safe in
      let header = "threads" :: "base ops/kcyc" :: List.map fst stacks in
      let rows =
        List.map
          (fun n ->
            let base = run ~opts:(Opts.baseline ~safe) ~n in
            string_of_int n
            :: Printf.sprintf "%.3f" base
            :: List.map
                 (fun (_, opts) -> Report.speedup (run ~opts:(Opts.copy opts) ~n /. base))
                 stacks)
          threads
      in
      Report.table
        ~title:
          (Printf.sprintf
             "Figure 10 — Sysbench rnd-write + fdatasync speedup over baseline (%s \
              mode; paper: up to 1.22x, batching up to 1.18x, gains fade at high \
              thread counts)"
             (if safe then "safe" else "unsafe"))
        ~header rows)
    [ true; false ]

(* ----- Figure 11: Apache ----- *)

let fig11 () =
  let cores =
    if !quick then [ 1; 4; 8; 11 ] else [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
  in
  let seeds = if !quick then [ 31L ] else [ 31L; 211L; 1013L ] in
  let run ~opts ~n =
    let one seed =
      let cfg = Apache.default_config ~opts ~cores:n in
      let cfg =
        if !quick then { cfg with Apache.requests = 220; seed }
        else { cfg with Apache.requests = 660; seed }
      in
      (Apache.run cfg).Apache.throughput
    in
    List.fold_left (fun acc s -> acc +. one s) 0.0 seeds
    /. float_of_int (List.length seeds)
  in
  List.iter
    (fun safe ->
      let stacks = Opts.cumulative_workload ~safe in
      let header = "cores" :: "base req/Mcyc" :: List.map fst stacks in
      let rows =
        List.map
          (fun n ->
            let base = run ~opts:(Opts.baseline ~safe) ~n in
            string_of_int n
            :: Printf.sprintf "%.2f" base
            :: List.map
                 (fun (_, opts) -> Report.speedup (run ~opts:(Opts.copy opts) ~n /. base))
                 stacks)
          cores
      in
      Report.table
        ~title:
          (Printf.sprintf
             "Figure 11 — Apache mpm_event speedup over baseline (%s mode; paper: \
              concurrent up to 1.10x, in-context up to 1.05x)"
             (if safe then "safe" else "unsafe"))
        ~header rows)
    [ true; false ]

(* ----- Table 2: lines of code ----- *)

let table2 () =
  (* Our implementation sizes, measured from the sources when run from the
     repository root; the paper's patch sizes alongside. *)
  let wc path =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      Some !n
    end
    else None
  in
  let ours paths =
    match List.filter_map wc paths with
    | [] -> "n/a (run from repo root)"
    | counts -> string_of_int (List.fold_left ( + ) 0 counts)
  in
  Report.table
    ~title:"Table 2 — lines of code per optimization (paper patch vs this repo)"
    ~header:[ "Optimization"; "paper LoC"; "this repo (module LoC)" ]
    [
      [ "Concurrent flushes"; "103"; ours [ "lib/core/shootdown.ml" ] ];
      [ "Early ack + cacheline consolidation"; "73"; ours [ "lib/core/smp.ml" ] ];
      [ "In-context page flushing"; "353"; ours [ "lib/core/percpu.ml" ] ];
      [ "CoW"; "35"; ours [ "lib/core/fault.ml" ] ];
      [ "Userspace-safe batching"; "221"; ours [ "lib/core/syscall.ml" ] ];
    ]

(* ----- Table 4: page fracturing ----- *)

let table4 () =
  let cfg =
    if !quick then { Fracture.working_set_pages = 512; rounds = 40; tlb_capacity = 1536 }
    else { Fracture.working_set_pages = 1024; rounds = 100; tlb_capacity = 1536 }
  in
  let results = Fracture.run_all cfg in
  Report.table
    ~title:
      "Table 4 — dTLB misses after full vs selective flush (paper's anomaly: \
       guest-2M-on-host-4K makes selective ~= full)"
    ~header:[ "configuration"; "full flush"; "selective flush"; "promoted-to-full" ]
    (List.map
       (fun (r : Fracture.result) ->
         [
           r.Fracture.shape.Fracture.label;
           Report.count r.Fracture.full_misses;
           Report.count r.Fracture.selective_misses;
           Report.count r.Fracture.fracture_promotions;
         ])
       results)

(* ----- Ablations: design choices DESIGN.md calls out ----- *)

let ablation_single_opt () =
  (* Each optimization alone (non-cumulative), cross-socket, safe, 10 PTEs:
     isolates each technique's contribution without stacking. *)
  let cell opts =
    micro_cell ~opts ~placement:Microbench.Cross_socket ~pte_count:10
  in
  let base = cell (Opts.baseline ~safe:true) in
  let rows =
    List.map
      (fun (label, set) ->
        let opts = Opts.baseline ~safe:true in
        set opts;
        let r = cell opts in
        [
          label;
          Report.cycles r.Microbench.initiator_mean;
          Report.reduction ~baseline:base.Microbench.initiator_mean
            r.Microbench.initiator_mean;
          Report.cycles r.Microbench.responder_mean;
          Report.reduction ~baseline:base.Microbench.responder_mean
            r.Microbench.responder_mean;
        ])
      [
        ("concurrent alone", fun o -> o.Opts.concurrent_flush <- true);
        ("early-ack alone", fun o -> o.Opts.early_ack <- true);
        ("cacheline alone", fun o -> o.Opts.cacheline_consolidation <- true);
        ("in-context alone", fun o -> o.Opts.in_context_flush <- true);
      ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Ablation A — each §3 technique alone (cross-socket, safe, 10 PTEs; \
          baseline init=%s resp=%s)"
         (Report.cycles base.Microbench.initiator_mean)
         (Report.cycles base.Microbench.responder_mean))
    ~header:[ "technique"; "initiator"; "init cut"; "responder"; "resp cut" ]
    rows

let ablation_ipi_latency () =
  (* §2.3.2: works evaluated without multicast IPIs saw ~500k-cycle
     shootdowns; scaling IPI latency shows how the case for *avoiding*
     shootdowns (rather than speeding them up) depends on slow IPIs. *)
  let scaled k =
    {
      Costs.default with
      Costs.ipi_fixed = Costs.default.Costs.ipi_fixed * k;
      ipi_smt = Costs.default.Costs.ipi_smt * k;
      ipi_same_socket = Costs.default.Costs.ipi_same_socket * k;
      ipi_cross_socket = Costs.default.Costs.ipi_cross_socket * k;
    }
  in
  let rows =
    List.map
      (fun k ->
        let run opts =
          let cfg =
            Microbench.default_config ~opts ~placement:Microbench.Cross_socket
              ~pte_count:10
          in
          (Microbench.run
             { cfg with Microbench.costs = scaled k; iterations = micro_iters () })
            .Microbench.initiator_mean
        in
        let base = run (Opts.baseline ~safe:true) in
        let all = run (Opts.all_general ~safe:true) in
        [
          Printf.sprintf "x%d" k;
          Report.cycles base;
          Report.cycles all;
          Report.reduction ~baseline:base all;
        ])
      [ 1; 4; 16; 64 ]
  in
  Report.table
    ~title:
      "Ablation B — IPI-latency sensitivity (initiator, cross-socket, safe, 10 \
       PTEs): with slow pre-x2APIC IPIs the protocol work the paper optimizes \
       is noise, which is §2.3.2's point about older evaluations"
    ~header:[ "IPI scale"; "baseline"; "all §3"; "reduction" ]
    rows

let ablation_batch_slots () =
  let rows =
    List.map
      (fun slots ->
        let opts = Opts.all ~safe:true in
        opts.Opts.batch_slots <- slots;
        let cfg = Sysbench.default_config ~opts ~threads:8 in
        let cfg =
          { cfg with Sysbench.ops_per_thread = (if !quick then 120 else 240) }
        in
        let r = Sysbench.run cfg in
        [
          string_of_int slots;
          Printf.sprintf "%.3f" r.Sysbench.throughput;
          string_of_int r.Sysbench.shootdowns;
          string_of_int r.Sysbench.batched_deferrals;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Report.table
    ~title:
      "Ablation C — §4.2 batch slots (sysbench, 8 threads, safe; the paper \
       allocates 4)"
    ~header:[ "slots"; "ops/kcyc"; "shootdowns"; "deferrals" ]
    rows

let ablation_full_flush_threshold () =
  (* madvise of 24 pages: below the threshold the kernel INVLPGs 24 entries
     per CPU; above it one cheap CR3 reload flushes everything — faster for
     the flusher, but every other cached translation is collateral (§2.1:
     Linux picks 33, FreeBSD 4096). *)
  let rows =
    List.map
      (fun threshold ->
        let run safe =
          let opts = Opts.all_general ~safe in
          opts.Opts.full_flush_threshold <- threshold;
          let cfg =
            Microbench.default_config ~opts ~placement:Microbench.Cross_socket
              ~pte_count:24
          in
          let r = Microbench.run { cfg with Microbench.iterations = micro_iters () } in
          (r.Microbench.initiator_mean, r.Microbench.responder_mean)
        in
        let si, sr = run true in
        let ui, ur = run false in
        [
          string_of_int threshold;
          (if threshold < 24 then "full" else "ranged");
          Report.cycles si;
          Report.cycles sr;
          Report.cycles ui;
          Report.cycles ur;
        ])
      [ 8; 16; 33; 64 ]
  in
  Report.table
    ~title:
      "Ablation D — full-flush threshold on a 24-page madvise (cross-socket): \
       a full flush is cheaper for the flusher but drops every cached \
       translation"
    ~header:
      [ "threshold"; "mode"; "safe init"; "safe resp"; "unsafe init"; "unsafe resp" ]
    rows

let ablation_paravirt_fracture () =
  (* §7's proposed mitigation: a host-provided fracturing hint makes the
     guest use one full flush instead of n selective flushes that would be
     promoted to full anyway. *)
  let cfg = { Fracture.working_set_pages = 512; rounds = 1; tlb_capacity = 1536 } in
  let shape = List.nth Fracture.table4_rows 1 (* host=4K guest=2M *) in
  let flush_count = 16 in
  let run ~hint =
    let mmu = Fracture.build_mmu_for_tests cfg shape in
    Nested_mmu.set_paravirt_fracture_hint mmu hint;
    ignore
      (Nested_mmu.touch_range mmu ~start_vpn:Fracture.base_vpn
         ~pages:cfg.Fracture.working_set_pages);
    let instructions =
      Nested_mmu.flush_pages mmu
        ~vpns:(List.init flush_count (fun i -> Fracture.base_vpn + (i * 3)))
    in
    let _, misses =
      Nested_mmu.touch_range mmu ~start_vpn:Fracture.base_vpn
        ~pages:cfg.Fracture.working_set_pages
    in
    (instructions, misses)
  in
  let i_no, m_no = run ~hint:false in
  let i_yes, m_yes = run ~hint:true in
  Report.table
    ~title:
      "Extension (§7) — paravirtual fracturing hint: flushing 16 pages of a \
       fractured guest working set"
    ~header:[ "guest behaviour"; "flush instructions"; "misses on re-touch" ]
    [
      [ "16 selective flushes (unhinted)"; string_of_int i_no; Report.count m_no ];
      [ "1 full flush (hinted)"; string_of_int i_yes; Report.count m_yes ];
    ]

let ablation_freebsd () =
  (* §3.3 dismisses FreeBSD's scheme because smp_ipi_mtx admits one
     shootdown machine-wide; under concurrent mutators the serialization
     shows up directly. *)
  let run ~label opts ~threads =
    let cfg = Sysbench.default_config ~opts ~threads in
    let cfg = { cfg with Sysbench.ops_per_thread = (if !quick then 100 else 200) } in
    let r = Sysbench.run cfg in
    [ label; string_of_int threads; Printf.sprintf "%.3f" r.Sysbench.throughput ]
  in
  let rows =
    List.concat_map
      (fun threads ->
        [
          run ~label:"Linux baseline" (Opts.baseline ~safe:true) ~threads;
          run ~label:"FreeBSD (smp_ipi_mtx)" (Opts.freebsd ~safe:true) ~threads;
          run ~label:"Linux + all six" (Opts.all ~safe:true) ~threads;
        ])
      [ 2; 8 ]
  in
  Report.table
    ~title:
      "Ablation E — protocol comparison on sysbench (safe mode): FreeBSD's \
       global shootdown mutex vs Linux's concurrent protocol vs the paper's \
       optimizations"
    ~header:[ "protocol"; "threads"; "ops/kcyc" ]
    rows

let ablation_tasks =
  [
    ("ablation-A", ablation_single_opt);
    ("ablation-B", ablation_ipi_latency);
    ("ablation-C", ablation_batch_slots);
    ("ablation-D", ablation_full_flush_threshold);
    ("ablation-E", ablation_freebsd);
    ("paravirt", ablation_paravirt_fracture);
  ]

(* ----- Bechamel: wall-clock self-measurement of the harness ----- *)

let bechamel () =
  let open Bechamel in
  let micro_test =
    Test.make ~name:"figs5-8:microbench-cell"
      (Staged.stage (fun () ->
           ignore
             (micro_cell
                ~opts:(Opts.all_general ~safe:true)
                ~placement:Microbench.Cross_socket ~pte_count:10)))
  in
  let cow_test =
    Test.make ~name:"fig9:cow-bench"
      (Staged.stage (fun () ->
           let cfg = Cow_bench.default_config ~opts:(Opts.all ~safe:true) in
           ignore (Cow_bench.run { cfg with Cow_bench.rounds = 2; pages_per_round = 16 })))
  in
  let sysbench_test =
    Test.make ~name:"fig10:sysbench-point"
      (Staged.stage (fun () ->
           let cfg = Sysbench.default_config ~opts:(Opts.all ~safe:true) ~threads:4 in
           ignore
             (Sysbench.run { cfg with Sysbench.ops_per_thread = 40; file_pages = 128 })))
  in
  let apache_test =
    Test.make ~name:"fig11:apache-point"
      (Staged.stage (fun () ->
           let cfg = Apache.default_config ~opts:(Opts.all ~safe:true) ~cores:4 in
           ignore (Apache.run { cfg with Apache.requests = 60 })))
  in
  let fracture_test =
    Test.make ~name:"table4:fracture-row"
      (Staged.stage (fun () ->
           ignore
             (Fracture.run_shape
                { Fracture.working_set_pages = 256; rounds = 10; tlb_capacity = 1536 }
                (List.hd Fracture.table4_rows))))
  in
  let test =
    Test.make_grouped ~name:"shootdown-repro"
      [ micro_test; cow_test; sysbench_test; apache_test; fracture_test ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "\n== Bechamel: harness wall-clock (ns per run) ==";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-32s %12.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
    results

(* ----- driver: named experiments over the domain pool ----- *)

(* Every experiment builds its own machines from fixed seeds, so tasks are
   independent and safe to run on separate domains. Output is captured per
   task and printed in task order; the only per-task side channel is the
   elapsed-time line on stderr. *)

let fig_tasks =
  [
    ("fig5", fun () -> run_micro_figure ~fig:5 ~safe:true ~pte_count:1);
    ("fig6", fun () -> run_micro_figure ~fig:6 ~safe:true ~pte_count:10);
    ("fig7", fun () -> run_micro_figure ~fig:7 ~safe:false ~pte_count:1);
    ("fig8", fun () -> run_micro_figure ~fig:8 ~safe:false ~pte_count:10);
  ]

let all_tasks =
  fig_tasks
  @ [
      ("table3", table3);
      ("fig9", fig9);
      ("fig10", fig10);
      ("fig11", fig11);
      ("table2", table2);
      ("table4", table4);
    ]
  @ ablation_tasks

type measure = {
  m_name : string;
  m_wall_s : float;
  m_engine_ops : int;
  m_minor_words : float;
  m_major_words : float;
  m_promoted_words : float;
}

(* Run one experiment with its output captured; returns (output, measure). *)
let measure_task (name, run) =
  let gc0 = Gc.quick_stat () in
  let ops0 = Engine.global_ops_total () in
  let t0 = Unix.gettimeofday () in
  let out = Report.capture run in
  let wall = Unix.gettimeofday () -. t0 in
  let gc1 = Gc.quick_stat () in
  ( out,
    {
      m_name = name;
      m_wall_s = wall;
      m_engine_ops = Engine.global_ops_total () - ops0;
      m_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
      m_major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
      m_promoted_words = gc1.Gc.promoted_words -. gc0.Gc.promoted_words;
    } )

let run_tasks ~jobs tasks =
  let results =
    Domain_pool.run ~jobs
      (Array.of_list
         (List.map
            (fun task ->
              fun () ->
               let out, m = measure_task task in
               Printf.eprintf "[bench] %-12s %6.2fs\n%!" m.m_name m.m_wall_s;
               out)
            tasks))
  in
  Array.iter print_string results

(* ----- perf: wall-clock harness, BENCH_PERF.json ----- *)

(* Engine ops are a process-wide counter, so perf runs sequentially: each
   delta then belongs to exactly one experiment. Tables are captured and
   discarded — the normal modes cover their content; this mode measures the
   harness itself. *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let perf () =
  let measures =
    List.map
      (fun task ->
        let _out, m = measure_task task in
        Printf.printf "  %-12s %7.2fs  %11s engine-ops  %8s ops/s\n%!" m.m_name m.m_wall_s
          (Report.count m.m_engine_ops)
          (Report.cycles (float_of_int m.m_engine_ops /. Float.max 1e-9 m.m_wall_s));
        m)
      all_tasks
  in
  let total_wall = List.fold_left (fun acc m -> acc +. m.m_wall_s) 0.0 measures in
  let total_ops = List.fold_left (fun acc m -> acc + m.m_engine_ops) 0 measures in
  let gc = Gc.quick_stat () in
  let oc = open_out "BENCH_PERF.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": 1,\n";
  out "  \"mode\": \"%s\",\n" (if !quick then "quick" else "full");
  out "  \"experiments\": [\n";
  List.iteri
    (fun i m ->
      out
        "    {\"name\": \"%s\", \"wall_s\": %.4f, \"engine_ops\": %d, \
         \"engine_ops_per_s\": %.0f, \"minor_words\": %.0f, \"major_words\": %.0f, \
         \"promoted_words\": %.0f}%s\n"
        (json_escape m.m_name) m.m_wall_s m.m_engine_ops
        (float_of_int m.m_engine_ops /. Float.max 1e-9 m.m_wall_s)
        m.m_minor_words m.m_major_words m.m_promoted_words
        (if i = List.length measures - 1 then "" else ","))
    measures;
  out "  ],\n";
  out "  \"total\": {\"wall_s\": %.4f, \"engine_ops\": %d, \"engine_ops_per_s\": %.0f},\n"
    total_wall total_ops
    (float_of_int total_ops /. Float.max 1e-9 total_wall);
  out
    "  \"gc\": {\"minor_collections\": %d, \"major_collections\": %d, \"heap_words\": \
     %d, \"minor_words\": %.0f, \"major_words\": %.0f}\n"
    gc.Gc.minor_collections gc.Gc.major_collections gc.Gc.heap_words gc.Gc.minor_words
    gc.Gc.major_words;
  out "}\n";
  close_out oc;
  Printf.printf "total %.2fs over %d experiments; wrote BENCH_PERF.json\n" total_wall
    (List.length measures)

let usage () =
  Printf.eprintf
    "usage: main.exe [quick] [-j N] [fig5..fig11 | figs5-8 | table2 | table3 | table4 \
     | ablation | all | perf | bechamel]\n";
  exit 2

let () =
  let jobs = ref 1 in
  let rec parse acc = function
    | [] -> List.rev acc
    | ("quick" | "--quick") :: rest ->
        quick := true;
        parse acc rest
    | ("-j" | "--jobs") :: n :: rest when int_of_string_opt n <> None ->
        jobs := int_of_string n;
        parse acc rest
    | [ ("-j" | "--jobs") ] ->
        Printf.eprintf "-j needs a worker count\n";
        exit 2
    | arg :: rest
      when String.length arg > 2
           && String.sub arg 0 2 = "-j"
           && int_of_string_opt (String.sub arg 2 (String.length arg - 2)) <> None ->
        jobs := int_of_string (String.sub arg 2 (String.length arg - 2));
        parse acc rest
    | arg :: rest -> parse (arg :: acc) rest
  in
  let cmds = parse [] (List.tl (Array.to_list Sys.argv)) in
  let jobs = if !jobs <= 0 then Domain_pool.default_jobs () else !jobs in
  let group = function
    | "figs5-8" -> Some fig_tasks
    | ("fig5" | "fig6" | "fig7" | "fig8" | "table3" | "fig9" | "fig10" | "fig11"
      | "table2" | "table4") as cmd ->
        Some (List.filter (fun (n, _) -> n = cmd) all_tasks)
    | "ablation" -> Some ablation_tasks
    | "all" -> Some all_tasks
    | _ -> None
  in
  match cmds with
  | [] -> run_tasks ~jobs all_tasks
  | cmds ->
      List.iter
        (fun cmd ->
          match group cmd with
          | Some tasks -> run_tasks ~jobs tasks
          | None -> (
              match cmd with
              | "bechamel" -> bechamel ()
              | "perf" -> perf ()
              | other ->
                  Printf.eprintf "unknown experiment %S\n" other;
                  usage ()))
        cmds
