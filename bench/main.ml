(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5, §7).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig5    -- one experiment
     dune exec bench/main.exe -- quick   -- everything, reduced iterations
     dune exec bench/main.exe -- all -j 4 -- sim runs on 4 domains
     dune exec bench/main.exe -- perf    -- wall-clock harness (BENCH_PERF.json)
     dune exec bench/main.exe -- bechamel -- harness self-measurement

   Simulated cycle counts are printed; EXPERIMENTS.md compares them to the
   paper's numbers.

   `-j N` semantics (sub-experiment sharding): every multi-run experiment
   is flattened at plan time into self-contained (config, seed) sim-run
   cells — fig10 alone is 2 modes x 12 thread counts x 6 configs x 3
   seeds = 432 cells in a full run — and ALL selected experiments' cells
   execute on one shared N-domain pool in longest-task-first order. Each
   cell's result lands in its own slot; tables are reduced from the slots
   in experiment order, so stdout is byte-identical for every `-j` by
   construction and the wall-clock bound is the slowest single cell, not
   the slowest experiment. `-j 1` spawns no domains. `-j 0` asks the
   runtime for a domain count. Expected scaling: the full bench is
   embarrassingly parallel past the plan phase, so wall-clock approaches
   (sum of cell costs) / N until the slowest fig10 cell dominates.
   Per-experiment elapsed-time lines go to stderr (per-cell lines with
   -v) so stdout stays comparable across runs and `-j` levels.

   `perf` respects `-j` too: engine ops are per-engine counters carried in
   each cell's result and summed at reduce time, so attribution is exact
   under any schedule; per-experiment wall_s sums the experiment's own
   cell walls (CPU-seconds when parallel). Experiments that drive no
   engine (table2, table4, paravirt) or own no cells in this invocation
   (table3 reusing the figures' matrices) report engine_ops null — an
   explicit n/a, never a misleading 0. *)

let quick = ref false
let verbose = ref false

let micro_iters () = if !quick then 60 else 200
let micro_warmup = 20

(* ----- Cross-experiment cell memoization -----

   One memo per workload type, keyed on the workload's [config_key]: any
   two cells with identical (config, seed) run once, owned by the FIRST
   requesting experiment in plan order. That subsumes the old ad-hoc
   matrix sharing (figures 5-8 and table 3 consume the same four micro
   matrices) and extends it to every coincidence: ablation A's baseline is
   fig6's cross-socket baseline cell, ablation B's x1 rows are matrix
   cells, and ablations C/E run sysbench at fig10's scale so their
   overlapping points are fig10 cells. Planning is sequential, so
   ownership is deterministic; reduced output is a pure function of cell
   slots either way. *)

let micro_memo : Microbench.result Shard.memo = Shard.create_memo ()
let sysbench_memo : Sysbench.result Shard.memo = Shard.create_memo ()
let apache_memo : Apache.result Shard.memo = Shard.create_memo ()
let cow_memo : Cow_bench.result Shard.memo = Shard.create_memo ()
let bigmachine_memo : Bigmachine.result Shard.memo = Shard.create_memo ()

let micro_matrix_shared ~safe ~pte_count =
  Figures.micro_matrix_cells ~memo:micro_memo ~iterations:(micro_iters ())
    ~warmup:micro_warmup ~safe ~pte_count

let print_micro_figure ~fig ~safe ~pte_count matrix =
  let stacks = List.map fst (List.assoc Microbench.Same_core matrix) in
  let header = "placement" :: stacks in
  let side name pick =
    let rows =
      List.map
        (fun (placement, cells) ->
          Microbench.placement_label placement
          :: List.map (fun (_, r) -> Report.cycles (pick r)) cells)
        matrix
    in
    Report.table
      ~title:
        (Printf.sprintf "Figure %d%s (%s mode, %d PTE%s) — %s cycles" fig
           (match name with "initiator" -> "a" | _ -> "b")
           (if safe then "safe" else "unsafe")
           pte_count
           (if pte_count = 1 then "" else "s")
           name)
      ~header rows
  in
  side "initiator" (fun r -> r.Microbench.initiator_mean);
  side "responder" (fun r -> r.Microbench.responder_mean);
  (* The paper's bar-figure rendition for the farthest placement. *)
  Report.bars
    ~title:
      (Printf.sprintf "Figure %da, cross-socket initiator cycles (bars)" fig)
    (List.map
       (fun (label, r) -> (label, r.Microbench.initiator_mean))
       (List.assoc Microbench.Cross_socket matrix))

let micro_figure_plan ~fig ~safe ~pte_count () =
  let jobs, get, reused = micro_matrix_shared ~safe ~pte_count in
  {
    Shard.name = Printf.sprintf "fig%d" fig;
    jobs;
    reused;
    reduce = (fun () -> print_micro_figure ~fig ~safe ~pte_count (get ()));
  }

(* ----- Table 3: latency reduction cross-socket, all four techniques ----- *)

let table3_plan () =
  let matrices =
    List.map
      (fun ((safe, pte_count) as key) -> (key, micro_matrix_shared ~safe ~pte_count))
      [ (true, 1); (true, 10); (false, 1); (false, 10) ]
  in
  let jobs = List.concat_map (fun (_, (jobs, _, _)) -> jobs) matrices in
  let reused = List.fold_left (fun acc (_, (_, _, r)) -> acc + r) 0 matrices in
  let reduce () =
    let cell ~safe ~pte_count =
      let _, get, _ = List.assoc (safe, pte_count) matrices in
      let cells = List.assoc Microbench.Cross_socket (get ()) in
      let first = snd (List.hd cells) in
      let last = snd (List.nth cells (List.length cells - 1)) in
      let pct baseline v =
        if Float.equal baseline 0.0 then 0.0 else (baseline -. v) /. baseline *. 100.0
      in
      ( pct first.Microbench.initiator_mean last.Microbench.initiator_mean,
        pct first.Microbench.responder_mean last.Microbench.responder_mean )
    in
    let s1 = cell ~safe:true ~pte_count:1 in
    let s10 = cell ~safe:true ~pte_count:10 in
    let u1 = cell ~safe:false ~pte_count:1 in
    let u10 = cell ~safe:false ~pte_count:10 in
    let fmt (i, r) = Printf.sprintf "%.0f%% / %.0f%%" i r in
    Report.table
      ~title:
        "Table 3 — [initiator / responder] latency reduction, cross-socket, all \
         techniques of §3 (paper: safe 39%/13% & 58%/22%; unsafe 39%/18% & 54%/14%)"
      ~header:[ ""; "Safe Mode"; "Unsafe Mode" ]
      [ [ "1 PTE"; fmt s1; fmt u1 ]; [ "10 PTEs"; fmt s10; fmt u10 ] ]
  in
  { Shard.name = "table3"; jobs; reused; reduce }

(* ----- Figure 9: CoW fault latency ----- *)

let fig9_plan () =
  let jobs = ref [] in
  let reused = ref 0 in
  let run_cell ~safe ~label opts =
    let cfg = Cow_bench.default_config ~opts in
    let cfg =
      if !quick then { cfg with Cow_bench.rounds = 4; pages_per_round = 32 } else cfg
    in
    let js, get, fresh =
      Shard.memo_cell cow_memo ~key:(Cow_bench.config_key cfg)
        ~label:(Printf.sprintf "fig9 %s %s" (if safe then "safe" else "unsafe") label)
        ~ops:(fun r -> r.Cow_bench.engine_ops)
        ~weight:(float_of_int (cfg.Cow_bench.rounds * cfg.Cow_bench.pages_per_round * 12))
        (fun () -> Cow_bench.run cfg)
    in
    jobs := List.rev_append js !jobs;
    if not fresh then incr reused;
    fun () ->
      let r = get () in
      ( (if safe then "safe" else "unsafe"),
        label,
        r.Cow_bench.write_mean,
        r.Cow_bench.write_sd )
  in
  let row_getters =
    List.concat_map
      (fun safe ->
        let baseline = run_cell ~safe ~label:"baseline" (Opts.baseline ~safe) in
        let all = run_cell ~safe ~label:"all (SS3)" (Opts.all_general ~safe) in
        let cow_opts = Opts.all_general ~safe in
        cow_opts.Opts.cow_avoid_flush <- true;
        let cow = run_cell ~safe ~label:"all + CoW" cow_opts in
        [ baseline; all; cow ])
      [ true; false ]
  in
  let reduce () =
    Report.table
      ~title:
        "Figure 9 — CoW write latency, cycles (paper: CoW avoidance saves ~130 \
         cycles, 3-5%)"
      ~header:[ "mode"; "config"; "cycles"; "sd" ]
      (List.map
         (fun g ->
           let mode, label, mean, sd = g () in
           [ mode; label; Report.cycles mean; Printf.sprintf "%.0f" sd ])
         row_getters)
  in
  { Shard.name = "fig9"; jobs = List.rev !jobs; reused = !reused; reduce }

(* ----- Figures 10 and 11 (lib/workloads/figures.ml builds the plans) ----- *)

let fig10_plan () =
  Figures.fig10_plan ~memo:sysbench_memo (Figures.fig10_scale ~quick:!quick)

let fig11_plan () = Figures.fig11_plan ~memo:apache_memo (Figures.fig11_scale ~quick:!quick)

(* ----- Table 2: lines of code ----- *)

let table2_plan () =
  (* Our implementation sizes, measured from the sources when run from the
     repository root; the paper's patch sizes alongside. No simulation, so
     the perf row carries engine_ops null. *)
  let wc path =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      Some !n
    end
    else None
  in
  let ours paths =
    match List.filter_map wc paths with
    | [] -> "n/a (run from repo root)"
    | counts -> string_of_int (List.fold_left ( + ) 0 counts)
  in
  let rows_spec =
    [
      ("Concurrent flushes", "103", [ "lib/core/shootdown.ml" ]);
      ("Early ack + cacheline consolidation", "73", [ "lib/core/smp.ml" ]);
      ("In-context page flushing", "353", [ "lib/core/percpu.ml" ]);
      ("CoW", "35", [ "lib/core/fault.ml" ]);
      ("Userspace-safe batching", "221", [ "lib/core/syscall.ml" ]);
    ]
  in
  let job, get =
    Shard.cell ~label:"table2 wc" ~weight:1000.0 (fun () ->
        List.map (fun (name, paper, paths) -> [ name; paper; ours paths ]) rows_spec)
  in
  let reduce () =
    Report.table
      ~title:"Table 2 — lines of code per optimization (paper patch vs this repo)"
      ~header:[ "Optimization"; "paper LoC"; "this repo (module LoC)" ]
      (get ())
  in
  { Shard.name = "table2"; jobs = [ job ]; reused = 0; reduce }

(* ----- Table 4: page fracturing ----- *)

let table4_plan () =
  let cfg =
    if !quick then { Fracture.working_set_pages = 512; rounds = 40; tlb_capacity = 1536 }
    else { Fracture.working_set_pages = 1024; rounds = 100; tlb_capacity = 1536 }
  in
  (* One cell per VM shape; no engine is driven (pure TLB modelling). *)
  let cells =
    List.map
      (fun shape ->
        Shard.cell
          ~label:(Printf.sprintf "table4 %s" shape.Fracture.label)
          ~weight:(float_of_int (cfg.Fracture.working_set_pages * cfg.Fracture.rounds / 2))
          (fun () -> Fracture.run_shape cfg shape))
      Fracture.table4_rows
  in
  let reduce () =
    Report.table
      ~title:
        "Table 4 — dTLB misses after full vs selective flush (paper's anomaly: \
         guest-2M-on-host-4K makes selective ~= full)"
      ~header:[ "configuration"; "full flush"; "selective flush"; "promoted-to-full" ]
      (List.map
         (fun (_, get) ->
           let r = get () in
           [
             r.Fracture.shape.Fracture.label;
             Report.count r.Fracture.full_misses;
             Report.count r.Fracture.selective_misses;
             Report.count r.Fracture.fracture_promotions;
           ])
         cells)
  in
  { Shard.name = "table4"; jobs = List.map fst cells; reused = 0; reduce }

(* ----- Ablations: design choices DESIGN.md calls out ----- *)

let micro_cell_job ~label ~opts ~placement ~pte_count =
  let cfg = Microbench.default_config ~opts ~placement ~pte_count in
  let cfg = { cfg with Microbench.iterations = micro_iters (); warmup = micro_warmup } in
  Shard.memo_cell micro_memo ~key:(Microbench.config_key cfg) ~label
    ~ops:(fun r -> r.Microbench.engine_ops)
    ~weight:(Figures.micro_weight ~iterations:cfg.Microbench.iterations ~pte_count)
    (fun () -> Microbench.run cfg)

let ablation_single_opt_plan () =
  (* Each optimization alone (non-cumulative), cross-socket, safe, 10 PTEs:
     isolates each technique's contribution without stacking. The baseline
     coincides with fig6's cross-socket baseline cell, so in an `all` run
     it is read from the memo rather than recomputed. *)
  let jobs = ref [] in
  let reused = ref 0 in
  let cell ~label opts =
    let js, get, fresh =
      micro_cell_job ~label:("ablation-A " ^ label) ~opts
        ~placement:Microbench.Cross_socket ~pte_count:10
    in
    jobs := List.rev_append js !jobs;
    if not fresh then incr reused;
    get
  in
  let base = cell ~label:"baseline" (Opts.baseline ~safe:true) in
  let techniques =
    List.map
      (fun (label, set) ->
        let opts = Opts.baseline ~safe:true in
        set opts;
        (label, cell ~label opts))
      [
        ("concurrent alone", fun o -> o.Opts.concurrent_flush <- true);
        ("early-ack alone", fun o -> o.Opts.early_ack <- true);
        ("cacheline alone", fun o -> o.Opts.cacheline_consolidation <- true);
        ("in-context alone", fun o -> o.Opts.in_context_flush <- true);
      ]
  in
  let reduce () =
    let base = base () in
    let rows =
      List.map
        (fun (label, get) ->
          let r = get () in
          [
            label;
            Report.cycles r.Microbench.initiator_mean;
            Report.reduction ~baseline:base.Microbench.initiator_mean
              r.Microbench.initiator_mean;
            Report.cycles r.Microbench.responder_mean;
            Report.reduction ~baseline:base.Microbench.responder_mean
              r.Microbench.responder_mean;
          ])
        techniques
    in
    Report.table
      ~title:
        (Printf.sprintf
           "Ablation A — each §3 technique alone (cross-socket, safe, 10 PTEs; \
            baseline init=%s resp=%s)"
           (Report.cycles base.Microbench.initiator_mean)
           (Report.cycles base.Microbench.responder_mean))
      ~header:[ "technique"; "initiator"; "init cut"; "responder"; "resp cut" ]
      rows
  in
  { Shard.name = "ablation-A"; jobs = List.rev !jobs; reused = !reused; reduce }

let ablation_ipi_latency_plan () =
  (* §2.3.2: works evaluated without multicast IPIs saw ~500k-cycle
     shootdowns; scaling IPI latency shows how the case for *avoiding*
     shootdowns (rather than speeding them up) depends on slow IPIs. *)
  let scaled k =
    {
      Costs.default with
      Costs.ipi_fixed = Costs.default.Costs.ipi_fixed * k;
      ipi_smt = Costs.default.Costs.ipi_smt * k;
      ipi_same_socket = Costs.default.Costs.ipi_same_socket * k;
      ipi_cross_socket = Costs.default.Costs.ipi_cross_socket * k;
    }
  in
  let jobs = ref [] in
  let reused = ref 0 in
  (* The x1 rows are value-identical to fig6's cross-socket baseline and
     +in-context matrix cells (scaling by 1 is the default cost model), so
     the memo reuses them in an `all` run. *)
  let cell ~k ~label opts =
    let cfg =
      Microbench.default_config ~opts ~placement:Microbench.Cross_socket ~pte_count:10
    in
    let cfg =
      { cfg with Microbench.costs = scaled k; iterations = micro_iters () }
    in
    let js, get, fresh =
      Shard.memo_cell micro_memo ~key:(Microbench.config_key cfg)
        ~label:(Printf.sprintf "ablation-B x%d %s" k label)
        ~ops:(fun r -> r.Microbench.engine_ops)
        ~weight:(Figures.micro_weight ~iterations:cfg.Microbench.iterations ~pte_count:10)
        (fun () -> Microbench.run cfg)
    in
    jobs := List.rev_append js !jobs;
    if not fresh then incr reused;
    fun () -> (get ()).Microbench.initiator_mean
  in
  let row_getters =
    List.map
      (fun k ->
        let base = cell ~k ~label:"baseline" (Opts.baseline ~safe:true) in
        let all = cell ~k ~label:"all" (Opts.all_general ~safe:true) in
        (k, base, all))
      [ 1; 4; 16; 64 ]
  in
  let reduce () =
    let rows =
      List.map
        (fun (k, base, all) ->
          let base = base () and all = all () in
          [
            Printf.sprintf "x%d" k;
            Report.cycles base;
            Report.cycles all;
            Report.reduction ~baseline:base all;
          ])
        row_getters
    in
    Report.table
      ~title:
        "Ablation B — IPI-latency sensitivity (initiator, cross-socket, safe, 10 \
         PTEs): with slow pre-x2APIC IPIs the protocol work the paper optimizes \
         is noise, which is §2.3.2's point about older evaluations"
      ~header:[ "IPI scale"; "baseline"; "all §3"; "reduction" ]
      rows
  in
  { Shard.name = "ablation-B"; jobs = List.rev !jobs; reused = !reused; reduce }

let ablation_batch_slots_plan () =
  (* Runs at fig10's scale (ops, file pages, first seed) so the slots=4
     row — the paper's allocation, fig10's +batching config — is the same
     cell as fig10's 8-thread point and comes from the memo in a full
     `all` run instead of being recomputed. *)
  let scale = Figures.fig10_scale ~quick:!quick in
  let jobs = ref [] in
  let reused = ref 0 in
  let cells =
    List.map
      (fun slots ->
        let opts = Opts.all ~safe:true in
        opts.Opts.batch_slots <- slots;
        let cfg = Sysbench.default_config ~opts ~threads:8 in
        let cfg =
          {
            cfg with
            Sysbench.ops_per_thread = scale.Figures.sys_ops_per_thread;
            file_pages = scale.Figures.sys_file_pages;
            seed = List.hd scale.Figures.sys_seeds;
          }
        in
        let js, get, fresh =
          Shard.memo_cell sysbench_memo ~key:(Sysbench.config_key cfg)
            ~label:(Printf.sprintf "ablation-C slots=%d" slots)
            ~ops:(fun r -> r.Sysbench.engine_ops)
            ~weight:
              (Figures.sysbench_weight ~threads:8
                 ~ops_per_thread:cfg.Sysbench.ops_per_thread)
            (fun () -> Sysbench.run cfg)
        in
        jobs := List.rev_append js !jobs;
        if not fresh then incr reused;
        (slots, get))
      [ 1; 2; 4; 8; 16 ]
  in
  let reduce () =
    let rows =
      List.map
        (fun (slots, get) ->
          let r = get () in
          [
            string_of_int slots;
            Printf.sprintf "%.3f" r.Sysbench.throughput;
            string_of_int r.Sysbench.shootdowns;
            string_of_int r.Sysbench.batched_deferrals;
          ])
        cells
    in
    Report.table
      ~title:
        "Ablation C — §4.2 batch slots (sysbench, 8 threads, safe, fig10 scale; \
         the paper allocates 4)"
      ~header:[ "slots"; "ops/kcyc"; "shootdowns"; "deferrals" ]
      rows
  in
  { Shard.name = "ablation-C"; jobs = List.rev !jobs; reused = !reused; reduce }

let ablation_full_flush_threshold_plan () =
  (* madvise of 24 pages: below the threshold the kernel INVLPGs 24 entries
     per CPU; above it one cheap CR3 reload flushes everything — faster for
     the flusher, but every other cached translation is collateral (§2.1:
     Linux picks 33, FreeBSD 4096). *)
  let jobs = ref [] in
  let reused = ref 0 in
  let cell ~threshold ~safe =
    let opts = Opts.all_general ~safe in
    opts.Opts.full_flush_threshold <- threshold;
    let js, get, fresh =
      micro_cell_job
        ~label:
          (Printf.sprintf "ablation-D t=%d %s" threshold
             (if safe then "safe" else "unsafe"))
        ~opts ~placement:Microbench.Cross_socket ~pte_count:24
    in
    jobs := List.rev_append js !jobs;
    if not fresh then incr reused;
    fun () ->
      let r = get () in
      (r.Microbench.initiator_mean, r.Microbench.responder_mean)
  in
  let row_getters =
    List.map
      (fun threshold ->
        let s = cell ~threshold ~safe:true in
        let u = cell ~threshold ~safe:false in
        (threshold, s, u))
      [ 8; 16; 33; 64 ]
  in
  let reduce () =
    let rows =
      List.map
        (fun (threshold, s, u) ->
          let si, sr = s () and ui, ur = u () in
          [
            string_of_int threshold;
            (if threshold < 24 then "full" else "ranged");
            Report.cycles si;
            Report.cycles sr;
            Report.cycles ui;
            Report.cycles ur;
          ])
        row_getters
    in
    Report.table
      ~title:
        "Ablation D — full-flush threshold on a 24-page madvise (cross-socket): \
         a full flush is cheaper for the flusher but drops every cached \
         translation"
      ~header:
        [ "threshold"; "mode"; "safe init"; "safe resp"; "unsafe init"; "unsafe resp" ]
      rows
  in
  { Shard.name = "ablation-D"; jobs = List.rev !jobs; reused = !reused; reduce }

let ablation_paravirt_fracture_plan () =
  (* §7's proposed mitigation: a host-provided fracturing hint makes the
     guest use one full flush instead of n selective flushes that would be
     promoted to full anyway. Pure TLB modelling: no engine ops. *)
  let cfg = { Fracture.working_set_pages = 512; rounds = 1; tlb_capacity = 1536 } in
  let shape = List.nth Fracture.table4_rows 1 (* host=4K guest=2M *) in
  let flush_count = 16 in
  let run ~hint () =
    let mmu = Fracture.build_mmu_for_tests cfg shape in
    Nested_mmu.set_paravirt_fracture_hint mmu hint;
    ignore
      (Nested_mmu.touch_range mmu ~start_vpn:Fracture.base_vpn
         ~pages:cfg.Fracture.working_set_pages);
    let instructions =
      Nested_mmu.flush_pages mmu
        ~vpns:(List.init flush_count (fun i -> Fracture.base_vpn + (i * 3)))
    in
    let _, misses =
      Nested_mmu.touch_range mmu ~start_vpn:Fracture.base_vpn
        ~pages:cfg.Fracture.working_set_pages
    in
    (instructions, misses)
  in
  let no_job, get_no =
    Shard.cell ~label:"paravirt unhinted" ~weight:1000.0 (run ~hint:false)
  in
  let yes_job, get_yes =
    Shard.cell ~label:"paravirt hinted" ~weight:1000.0 (run ~hint:true)
  in
  let reduce () =
    let i_no, m_no = get_no () in
    let i_yes, m_yes = get_yes () in
    Report.table
      ~title:
        "Extension (§7) — paravirtual fracturing hint: flushing 16 pages of a \
         fractured guest working set"
      ~header:[ "guest behaviour"; "flush instructions"; "misses on re-touch" ]
      [
        [ "16 selective flushes (unhinted)"; string_of_int i_no; Report.count m_no ];
        [ "1 full flush (hinted)"; string_of_int i_yes; Report.count m_yes ];
      ]
  in
  { Shard.name = "paravirt"; jobs = [ no_job; yes_job ]; reused = 0; reduce }

let ablation_freebsd_plan () =
  (* §3.3 dismisses FreeBSD's scheme because smp_ipi_mtx admits one
     shootdown machine-wide; under concurrent mutators the serialization
     shows up directly. Runs at fig10's scale so the Linux rows (baseline
     and all-six) coincide with fig10's 2- and 8-thread points and, in a
     full `all` run, come from the memo; only the FreeBSD rows are new
     simulation work. *)
  let scale = Figures.fig10_scale ~quick:!quick in
  let jobs = ref [] in
  let reused = ref 0 in
  let cells =
    List.concat_map
      (fun threads ->
        List.map
          (fun (label, opts) ->
            let cfg = Sysbench.default_config ~opts ~threads in
            let cfg =
              {
                cfg with
                Sysbench.ops_per_thread = scale.Figures.sys_ops_per_thread;
                file_pages = scale.Figures.sys_file_pages;
                seed = List.hd scale.Figures.sys_seeds;
              }
            in
            let js, get, fresh =
              Shard.memo_cell sysbench_memo ~key:(Sysbench.config_key cfg)
                ~label:(Printf.sprintf "ablation-E %s t=%d" label threads)
                ~ops:(fun r -> r.Sysbench.engine_ops)
                ~weight:
                  (Figures.sysbench_weight ~threads
                     ~ops_per_thread:cfg.Sysbench.ops_per_thread)
                (fun () -> Sysbench.run cfg)
            in
            jobs := List.rev_append js !jobs;
            if not fresh then incr reused;
            (label, threads, get))
          [
            ("Linux baseline", Opts.baseline ~safe:true);
            ("FreeBSD (smp_ipi_mtx)", Opts.freebsd ~safe:true);
            ("Linux + all six", Opts.all ~safe:true);
          ])
      [ 2; 8 ]
  in
  let reduce () =
    let rows =
      List.map
        (fun (label, threads, get) ->
          [ label; string_of_int threads; Printf.sprintf "%.3f" (get ()).Sysbench.throughput ])
        cells
    in
    Report.table
      ~title:
        "Ablation E — protocol comparison on sysbench (safe mode, fig10 scale): \
         FreeBSD's global shootdown mutex vs Linux's concurrent protocol vs the \
         paper's optimizations"
      ~header:[ "protocol"; "threads"; "ops/kcyc" ]
      rows
  in
  { Shard.name = "ablation-E"; jobs = List.rev !jobs; reused = !reused; reduce }

let ablation_tasks =
  [
    ("ablation-A", ablation_single_opt_plan);
    ("ablation-B", ablation_ipi_latency_plan);
    ("ablation-C", ablation_batch_slots_plan);
    ("ablation-D", ablation_full_flush_threshold_plan);
    ("ablation-E", ablation_freebsd_plan);
    ("paravirt", ablation_paravirt_fracture_plan);
  ]

(* ----- Big-machine scaling (DESIGN.md §12) ----- *)

(* The reduce phase stashes each size's result here so perf mode can emit
   the schema-5 "bigmachine" rows without re-running the cells; harmless
   in table-only modes. Keyed rows use ["scale":], never ["name":], so
   perf_gate's experiment-row scanner does not pick them up. *)
let bigmachine_results : (int * Bigmachine.result) list ref = ref []

let bigmachine_plan () =
  let cells =
    List.map
      (fun n_cpus ->
        let cfg = Bigmachine.default_config ~opts:(Opts.all ~safe:true) ~n_cpus in
        (* The canonical quick shaping, shared with shootout --workloads so
           the 56-CPU paper cell is one memo entry, not two near-twins. *)
        let cfg = if !quick then Bigmachine.quick_shape cfg else cfg in
        let js, get, fresh =
          Shard.memo_cell bigmachine_memo ~key:(Bigmachine.config_key cfg)
            ~label:(Printf.sprintf "bigmachine %d" n_cpus)
            ~ops:(fun r -> r.Bigmachine.engine_ops)
            (* Same work at every size; the bigger machines only pay more
               setup, so weight on the op count with a mild size bump. *)
            ~weight:
              (float_of_int
                 (cfg.Bigmachine.tenants * cfg.Bigmachine.threads_per_tenant
                 * cfg.Bigmachine.ops_per_thread
                 * 40
                 + n_cpus * 100))
            (fun () -> Bigmachine.run cfg)
        in
        (n_cpus, js, get, fresh))
      Bigmachine.sizes
  in
  let jobs = List.concat_map (fun (_, js, _, _) -> js) cells in
  let reused = List.length (List.filter (fun (_, _, _, fresh) -> not fresh) cells) in
  let reduce () =
    let results = List.map (fun (n, _, get, _) -> (n, get ())) cells in
    bigmachine_results := results;
    Report.table
      ~title:
        "Big-machine scaling — identical multi-tenant churn, growing machine \
         (flat cycles/shootdown = O(active CPUs) hot paths)"
      ~header:
        [ "cpus"; "threads"; "shootdowns"; "IPIs"; "ICR writes"; "cycles/shootdown" ]
      (List.map
         (fun (n, r) ->
           [
             string_of_int n;
             string_of_int r.Bigmachine.threads;
             string_of_int r.Bigmachine.shootdowns;
             string_of_int r.Bigmachine.ipis;
             string_of_int r.Bigmachine.icr_writes;
             Printf.sprintf "%.0f" r.Bigmachine.cycles_per_shootdown;
           ])
         results)
  in
  { Shard.name = "bigmachine"; jobs; reused; reduce }

(* ----- Shootout: protocol-backend comparison (DESIGN.md §13) ----- *)

(* Like [bigmachine_results]: the reduce phase stashes the rows so perf
   mode can emit the schema-6 "shootout" block without re-running the
   cells. Those rows are keyed ["protocol":], never ["name":] or
   ["scale":], so neither of perf_gate's other scanners picks them up and
   pre-schema-6 gates skip them entirely. *)
let shootout_results : Shootout.row list ref = ref []

let shootout_plan () =
  let jobs, get_rows = Shootout.plan_cells ~iterations:(micro_iters ()) () in
  let reduce () =
    let rows = get_rows () in
    shootout_results := rows;
    let cell = function None -> "-" | Some v -> Printf.sprintf "%.0f" v in
    Report.table
      ~title:
        "Shootout — protocol backends on the cross-socket madvise microbenchmark \
         (10 PTEs, safe mode; phase p50s in cycles)"
      ~header:
        [
          "backend"; "initiator"; "responder"; "prep"; "ipi"; "flush"; "ack";
          "line xfers";
        ]
      (List.map
         (fun r ->
           [
             r.Shootout.sh_label;
             Report.cycles r.Shootout.sh_initiator_mean;
             Report.cycles r.Shootout.sh_responder_mean;
             cell r.Shootout.sh_prep_p50;
             cell r.Shootout.sh_ipi_p50;
             cell r.Shootout.sh_flush_p50;
             cell r.Shootout.sh_ack_p50;
             string_of_int r.Shootout.sh_line_transfers;
           ])
         rows)
  in
  { Shard.name = "shootout"; jobs; reused = 0; reduce }

(* ----- Shootout workloads: fig10/fig11/bigmachine-56 per backend ----- *)

(* Stashed by the reduce for the schema-7 "workloads" JSON block, like
   [bigmachine_results]/[shootout_results]. Rows are keyed ["experiment":]
   with the backend under ["proto":] — none of the keys older gate
   scanners walk ("name"/"scale"/"phase"/"protocol"), so a pre-schema-7
   gate can neither misread nor silently half-parse them. *)
let workloads_results : Shootout.wl_report option ref = ref None

(* Planned LAST (see [all_tasks]): the paper backend's cells are
   value-identical to fig10/fig11's "+batching" stack and the bigmachine
   56-CPU config, so in an `all` run they are owned by those earlier plans
   and every paper row reads from the memo. *)
let shootout_workloads_plan () =
  let jobs, get, reused =
    Shootout.workload_cells ~sysbench_memo ~apache_memo ~bigmachine_memo
      ~fig10:(Figures.fig10_scale ~quick:!quick)
      ~fig11:(Figures.fig11_scale ~quick:!quick)
      ~quick:!quick ()
  in
  let reduce () =
    let report = get () in
    workloads_results := Some report;
    let backend_cols = List.map (fun (l, _) -> l) (Shootout.workload_backends ()) in
    let tput_table ~title ~axis ~fmt rows =
      match rows with
      | [] -> ()
      | (_, first) :: _ ->
          Report.table ~title ~header:(axis :: backend_cols)
            (List.mapi
               (fun i (n, _, _) ->
                 string_of_int n
                 :: List.map
                      (fun (_, cells) ->
                        let _, t, _ = List.nth cells i in
                        Printf.sprintf fmt t)
                      rows)
               first)
    in
    tput_table
      ~title:
        "Shootout workloads — fig10 sysbench ops/kcyc per protocol backend (safe \
         mode)"
      ~axis:"threads" ~fmt:"%.3f" report.Shootout.wl_fig10;
    tput_table
      ~title:
        "Shootout workloads — fig11 apache req/Mcyc per protocol backend (safe mode)"
      ~axis:"cores" ~fmt:"%.2f" report.Shootout.wl_fig11;
    Report.table
      ~title:
        "Shootout workloads — bigmachine-56 multi-tenant churn per protocol backend"
      ~header:[ "backend"; "cycles/shootdown"; "shootdowns"; "IPIs"; "ICR writes" ]
      (List.map
         (fun (p, r) ->
           [
             Opts.protocol_label p;
             Printf.sprintf "%.0f" r.Bigmachine.cycles_per_shootdown;
             string_of_int r.Bigmachine.shootdowns;
             string_of_int r.Bigmachine.ipis;
             string_of_int r.Bigmachine.icr_writes;
           ])
         report.Shootout.wl_big)
  in
  { Shard.name = "shootout-workloads"; jobs; reused; reduce }

(* ----- Bechamel: wall-clock self-measurement of the harness ----- *)

let bechamel () =
  let open Bechamel in
  let micro_test =
    Test.make ~name:"figs5-8:microbench-cell"
      (Staged.stage (fun () ->
           let cfg =
             Microbench.default_config
               ~opts:(Opts.all_general ~safe:true)
               ~placement:Microbench.Cross_socket ~pte_count:10
           in
           ignore (Microbench.run { cfg with Microbench.iterations = micro_iters (); warmup = 20 })))
  in
  let cow_test =
    Test.make ~name:"fig9:cow-bench"
      (Staged.stage (fun () ->
           let cfg = Cow_bench.default_config ~opts:(Opts.all ~safe:true) in
           ignore (Cow_bench.run { cfg with Cow_bench.rounds = 2; pages_per_round = 16 })))
  in
  let sysbench_test =
    Test.make ~name:"fig10:sysbench-point"
      (Staged.stage (fun () ->
           let cfg = Sysbench.default_config ~opts:(Opts.all ~safe:true) ~threads:4 in
           ignore
             (Sysbench.run { cfg with Sysbench.ops_per_thread = 40; file_pages = 128 })))
  in
  let apache_test =
    Test.make ~name:"fig11:apache-point"
      (Staged.stage (fun () ->
           let cfg = Apache.default_config ~opts:(Opts.all ~safe:true) ~cores:4 in
           ignore (Apache.run { cfg with Apache.requests = 60 })))
  in
  let fracture_test =
    Test.make ~name:"table4:fracture-row"
      (Staged.stage (fun () ->
           ignore
             (Fracture.run_shape
                { Fracture.working_set_pages = 256; rounds = 10; tlb_capacity = 1536 }
                (List.hd Fracture.table4_rows))))
  in
  let test =
    Test.make_grouped ~name:"shootdown-repro"
      [ micro_test; cow_test; sysbench_test; apache_test; fracture_test ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "\n== Bechamel: harness wall-clock (ns per run) ==";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "  %-32s %12.0f ns/run\n" name est
         | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)

(* ----- driver: named experiments, sharded over the domain pool ----- *)

let fig_tasks =
  [
    ("fig5", micro_figure_plan ~fig:5 ~safe:true ~pte_count:1);
    ("fig6", micro_figure_plan ~fig:6 ~safe:true ~pte_count:10);
    ("fig7", micro_figure_plan ~fig:7 ~safe:false ~pte_count:1);
    ("fig8", micro_figure_plan ~fig:8 ~safe:false ~pte_count:10);
  ]

let all_tasks =
  fig_tasks
  @ [
      ("table3", table3_plan);
      ("fig9", fig9_plan);
      ("fig10", fig10_plan);
      ("fig11", fig11_plan);
      ("table2", table2_plan);
      ("table4", table4_plan);
    ]
  @ ablation_tasks
  @ [
      ("bigmachine", bigmachine_plan);
      ("shootout", shootout_plan);
      (* Last on purpose: its paper-backend cells must find fig10/fig11/
         bigmachine already owning the shared memo entries. *)
      ("shootout-workloads", shootout_workloads_plan);
    ]

(* Plan every requested experiment (sequential: the cell memos assign
   shared cells to their first requester), execute all cells on one shared
   pool, reduce in order. *)
let execute ~jobs tasks =
  let plans = List.map (fun (_, build) -> build ()) tasks in
  Shard.execute ~progress:!verbose ~jobs plans

let run_tasks ~jobs tasks =
  let outcomes, _gc = execute ~jobs tasks in
  List.iter
    (fun o ->
      let m = o.Shard.out_measure in
      Printf.eprintf "[bench] %-12s %7.2fs cpu  %4d run(s)  slowest %5.2fs\n%!"
        o.Shard.out_name m.Shard.wall_s m.Shard.runs m.Shard.max_wall_s;
      print_string o.Shard.output)
    outcomes

(* ----- perf: wall-clock harness, BENCH_PERF.json ----- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Schema-3 phases block: per-phase shootdown latency percentiles from a
   small metered Observe sweep, run after the (unmetered) experiments so
   their timing rows are untouched and the committed baseline stays valid.
   Rows are keyed ["phase":] — never ["name":] — because perf_gate's row
   scanner treats every ["name":] occurrence as an experiment row. *)
let phases_rows ~jobs =
  let metrics = Observe.collect ~iterations:(if !quick then 50 else 200) ~jobs () in
  List.filter_map
    (fun s ->
      let st = Metrics.stats s in
      if Stats.count st = 0 then None
      else
        let labels =
          Metrics.series_labels s
          |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
          |> String.concat ","
        in
        let id =
          if String.equal labels "" then Metrics.series_name s
          else Printf.sprintf "%s{%s}" (Metrics.series_name s) labels
        in
        let pct p = Option.value (Stats.percentile_opt st p) ~default:0.0 in
        Some (id, Stats.count st, pct 50.0, pct 99.0))
    (Metrics.all metrics)

let perf ~jobs () =
  let t0 = Unix.gettimeofday () in
  let outcomes, pool_gc = execute ~jobs all_tasks in
  let elapsed = Unix.gettimeofday () -. t0 in
  let measures =
    List.map
      (fun o -> (o.Shard.out_name, o.Shard.out_measure, o.Shard.out_reused))
      outcomes
  in
  List.iter
    (fun (name, m, reused) ->
      let ops_s =
        match m.Shard.engine_ops with
        | None -> "n/a"
        | Some ops -> Report.count ops
      in
      let rate =
        match m.Shard.engine_ops with
        | None -> "n/a"
        | Some ops -> Report.cycles (float_of_int ops /. Float.max 1e-9 m.Shard.wall_s)
      in
      Printf.printf "  %-12s %7.2fs  %11s engine-ops  %8s ops/s  %4d run(s)%s\n%!" name
        m.Shard.wall_s ops_s rate m.Shard.runs
        (if reused > 0 then Printf.sprintf "  [%d memoized]" reused else ""))
    measures;
  let total_wall =
    List.fold_left (fun acc (_, m, _) -> acc +. m.Shard.wall_s) 0.0 measures
  in
  let total_ops =
    List.fold_left
      (fun acc (_, m, _) -> acc + Option.value m.Shard.engine_ops ~default:0)
      0 measures
  in
  (* Process-lifetime GC totals: after the pool's domains are joined their
     counters have folded into this domain's, so a plain quick_stat here
     sums every domain — the cross-domain aggregate perf mode reports. *)
  let gc = Gc.quick_stat () in
  let oc = open_out "BENCH_PERF.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": 7,\n";
  out "  \"mode\": \"%s\",\n" (if !quick then "quick" else "full");
  out "  \"jobs\": %d,\n" jobs;
  out "  \"experiments\": [\n";
  let n_rows = List.length measures in
  List.iteri
    (fun i (name, m, reused) ->
      let ops_json =
        match m.Shard.engine_ops with None -> "null" | Some ops -> string_of_int ops
      in
      let rate_json =
        match m.Shard.engine_ops with
        | None -> "null"
        | Some ops ->
            Printf.sprintf "%.0f" (float_of_int ops /. Float.max 1e-9 m.Shard.wall_s)
      in
      (* Allocation per engine op is deterministic (unlike wall-clock), so
         the gate can compare it across machines without normalization. *)
      let words_per_op_json =
        match m.Shard.engine_ops with
        | Some ops when ops > 0 ->
            Printf.sprintf "%.4f" (m.Shard.minor_words /. float_of_int ops)
        | Some _ | None -> "null"
      in
      out
        "    {\"name\": \"%s\", \"wall_s\": %.4f, \"max_run_wall_s\": %.4f, \"runs\": \
         %d, \"engine_ops\": %s, \"engine_ops_per_s\": %s, \"minor_words\": %.0f, \
         \"major_words\": %.0f, \"promoted_words\": %.0f, \
         \"minor_words_per_engine_op\": %s, \"memoized\": %b}%s\n"
        (json_escape name) m.Shard.wall_s m.Shard.max_wall_s m.Shard.runs ops_json
        rate_json m.Shard.minor_words m.Shard.major_words m.Shard.promoted_words
        words_per_op_json (reused > 0)
        (if i = n_rows - 1 then "" else ","))
    measures;
  out "  ],\n";
  let phases = phases_rows ~jobs in
  out "  \"phases\": [\n";
  let n_phases = List.length phases in
  List.iteri
    (fun i (id, count, p50, p99) ->
      out "    {\"phase\": \"%s\", \"count\": %d, \"p50\": %.1f, \"p99\": %.1f}%s\n"
        (json_escape id) count p50 p99
        (if i = n_phases - 1 then "" else ","))
    phases;
  out "  ],\n";
  (* Schema-5 scaling rows, filled by the bigmachine plan's reduce during
     [execute] above. Keyed ["scale":] — never ["name":] — because
     perf_gate's experiment scanner treats every ["name":] as an
     experiment row. cycles_per_shootdown is simulated time: identical
     across hosts and [-j], so the gate compares it raw. *)
  out "  \"bigmachine\": [\n";
  let n_bm = List.length !bigmachine_results in
  List.iteri
    (fun i (n_cpus, r) ->
      out
        "    {\"scale\": \"bigmachine-%d\", \"n_cpus\": %d, \"threads\": %d, \
         \"ops\": %d, \"shootdowns\": %d, \"ipis\": %d, \"icr_writes\": %d, \
         \"churns\": %d, \"cycles_per_shootdown\": %.2f, \"engine_ops\": %d}%s\n"
        n_cpus n_cpus r.Bigmachine.threads r.Bigmachine.ops r.Bigmachine.shootdowns
        r.Bigmachine.ipis r.Bigmachine.icr_writes r.Bigmachine.churns
        r.Bigmachine.cycles_per_shootdown r.Bigmachine.engine_ops
        (if i = n_bm - 1 then "" else ","))
    !bigmachine_results;
  out "  ],\n";
  (* Schema-6 protocol-backend rows, filled by the shootout plan's reduce
     during [execute] above. Keyed ["protocol":], so pre-schema-6 gates
     (which scan ["name":] and ["scale":]) walk past them. Simulated-time
     values: identical across hosts and [-j], compared raw by the gate. *)
  out "  \"shootout\": [\n";
  let n_sh = List.length !shootout_results in
  List.iteri
    (fun i r ->
      out "    %s%s\n" (Shootout.json_of_row r) (if i = n_sh - 1 then "" else ","))
    !shootout_results;
  out "  ],\n";
  (* Schema-7 cross-backend workload rows, filled by the shootout-workloads
     plan's reduce during [execute] above. Keyed ["experiment":] with the
     backend under ["proto":] — none of the keys the older scanners walk —
     and carrying ["memoized":] so tests can pin that paper rows reuse the
     figure cells. Simulated-time values, compared raw by the gate. *)
  let wl_rows =
    match !workloads_results with None -> [] | Some r -> r.Shootout.wl_rows
  in
  out "  \"workloads\": [\n";
  let n_wl = List.length wl_rows in
  List.iteri
    (fun i r ->
      out "    %s%s\n" (Shootout.json_of_wl_row r) (if i = n_wl - 1 then "" else ","))
    wl_rows;
  out "  ],\n";
  out
    "  \"total\": {\"wall_s\": %.4f, \"elapsed_s\": %.4f, \"engine_ops\": %d, \
     \"engine_ops_per_s\": %.0f},\n"
    total_wall elapsed total_ops
    (float_of_int total_ops /. Float.max 1e-9 total_wall);
  out
    "  \"pool_gc\": {\"minor_words\": %.0f, \"major_words\": %.0f, \"promoted_words\": \
     %.0f, \"minor_collections\": %d, \"major_collections\": %d},\n"
    pool_gc.Domain_pool.pool_minor_words pool_gc.Domain_pool.pool_major_words
    pool_gc.Domain_pool.pool_promoted_words pool_gc.Domain_pool.pool_minor_collections
    pool_gc.Domain_pool.pool_major_collections;
  out
    "  \"gc\": {\"minor_collections\": %d, \"major_collections\": %d, \"heap_words\": \
     %d, \"minor_words\": %.0f, \"major_words\": %.0f}\n"
    gc.Gc.minor_collections gc.Gc.major_collections gc.Gc.heap_words gc.Gc.minor_words
    gc.Gc.major_words;
  out "}\n";
  close_out oc;
  Printf.printf "total %.2fs cpu (%.2fs elapsed at -j %d) over %d experiments; wrote \
                 BENCH_PERF.json\n"
    total_wall elapsed jobs (List.length measures)

let usage () =
  Printf.eprintf
    "usage: main.exe [quick] [-v] [-j N] [fig5..fig11 | figs5-8 | table2 | table3 | \
     table4 | ablation | all | perf | bechamel]\n";
  exit 2

let () =
  let jobs = ref 1 in
  let rec parse acc = function
    | [] -> List.rev acc
    | ("quick" | "--quick") :: rest ->
        quick := true;
        parse acc rest
    | ("-v" | "--verbose") :: rest ->
        verbose := true;
        parse acc rest
    | ("-j" | "--jobs") :: n :: rest when Option.is_some (int_of_string_opt n) ->
        jobs := int_of_string n;
        parse acc rest
    | [ ("-j" | "--jobs") ] ->
        Printf.eprintf "-j needs a worker count\n";
        exit 2
    | arg :: rest
      when String.length arg > 2
           && String.equal (String.sub arg 0 2) "-j"
           && Option.is_some (int_of_string_opt (String.sub arg 2 (String.length arg - 2)))
      ->
        jobs := int_of_string (String.sub arg 2 (String.length arg - 2));
        parse acc rest
    | arg :: rest -> parse (arg :: acc) rest
  in
  let cmds = parse [] (List.tl (Array.to_list Sys.argv)) in
  let jobs = if !jobs <= 0 then Domain_pool.default_jobs () else !jobs in
  (* The main domain gets the same allocation-storm GC relief as the pool's
     workers; tuning affects wall-clock only, never simulated results. *)
  Domain_pool.tune_current_domain ();
  let group = function
    | "figs5-8" -> Some fig_tasks
    | ("fig5" | "fig6" | "fig7" | "fig8" | "table3" | "fig9" | "fig10" | "fig11"
      | "table2" | "table4" | "bigmachine" | "shootout" | "shootout-workloads") as cmd
      ->
        Some (List.filter (fun (n, _) -> String.equal n cmd) all_tasks)
    | "ablation" -> Some ablation_tasks
    | "all" -> Some all_tasks
    | _ -> None
  in
  match cmds with
  | [] -> run_tasks ~jobs all_tasks
  | cmds ->
      List.iter
        (fun cmd ->
          match group cmd with
          | Some tasks -> run_tasks ~jobs tasks
          | None -> (
              match cmd with
              | "bechamel" -> bechamel ()
              | "perf" -> perf ~jobs ()
              | other ->
                  Printf.eprintf "unknown experiment %S\n" other;
                  usage ()))
        cmds
