(* Perf regression gate over BENCH_PERF.json (schema 7).

     perf_gate.exe BASELINE.json CURRENT.json [--threshold 0.25]

   Two gates per experiment:

   - Throughput. Raw engine_ops_per_s is hardware-dependent — CI runners
     differ run to run — so the gate compares each experiment's NORMALIZED
     throughput: its ops/s divided by the whole run's ops/s. That ratio
     cancels machine speed; it only moves when one experiment slows down
     (or speeds up) relative to the rest of the bench, which is exactly
     the signature of a hot-path regression localized to one workload. An
     experiment fails when its normalized throughput falls more than the
     threshold below the committed baseline's.

   - Allocation. minor_words_per_engine_op is a deterministic function of
     the simulation (same cells → same allocations → same op count), so it
     needs no normalization at all: the gate fails an experiment whose
     words/op rises more than the threshold above the baseline's. This is
     the regression signature of un-pooling an event path or reintroducing
     per-iteration closures.

   Trivial experiments (engine_ops below [min_ops], or null — table2,
   table4, paravirt drive no engine) are reported but never gated: their
   wall times are noise-dominated. Rows marked "memoized": true executed
   none of their own cells (every cell was owned by an earlier experiment
   in the same run), so both their wall time and their allocation are
   bookkeeping noise — they are skipped too, on either side: a row that is
   memoized in one file but not the other is never compared.

   The parser is a minimal scanner for the schema this repo's own perf
   mode emits — not a general JSON reader, and deliberately so: it keeps
   the gate dependency-free. Each row family keys on a field no other
   family uses ("name" / "scale" / "protocol" / "experiment"), so every
   scanner walks the whole file and sees only its own rows. A file whose
   declared "schema" is newer than [supported_schema] still gates every
   family this gate knows, but says so on stderr: rows from the newer
   schema are invisible to these scanners, not validated. *)

let min_ops = 100_000
let supported_schema = 7

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Position of the first ["key":] at or after [from], [None] past [until]. *)
let find_key s ~from ?(until = max_int) key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let slen = String.length s in
  let until = min until slen in
  let rec find i =
    if i + plen > slen || i >= until then None
    else if String.equal (String.sub s i plen) pat then Some i
    else find (i + 1)
  in
  find from

(* Scan [s] for ["key": value] and return the raw value text (up to [,}]).
   Searches from [from]; a key starting at or past [until] does not count —
   that bound is what stops a field missing from one row from silently
   matching the next row's. Returns the value and the position after it. *)
let raw_field s ~from ?until key =
  let slen = String.length s in
  match find_key s ~from ?until key with
  | None -> None
  | Some k0 ->
      let v0 = k0 + String.length key + 3 in
      let v0 = ref v0 in
      while !v0 < slen && (s.[!v0] = ' ' || s.[!v0] = '\n') do
        incr v0
      done;
      let v1 = ref !v0 in
      (if !v1 < slen && s.[!v1] = '"' then begin
         incr v1;
         while !v1 < slen && s.[!v1] <> '"' do
           incr v1
         done;
         incr v1
       end
       else
         while
           !v1 < slen && (match s.[!v1] with ',' | '}' | ']' | '\n' -> false | _ -> true)
         do
           incr v1
         done);
      Some (String.trim (String.sub s !v0 (!v1 - !v0)), !v1)

let unquote v =
  if String.length v >= 2 && v.[0] = '"' then String.sub v 1 (String.length v - 2) else v

type row = {
  name : string;
  wall_s : float option;
  engine_ops : int option;
  words_per_op : float option;
  memoized : bool;
}

(* Experiment rows, in file order: each starts at a ["name":] key inside the
   "experiments" array (total/gc blocks carry no "name"). A row's fields
   are searched only up to the next ["name":] key, so a missing field reads
   as [None] instead of picking up the following row's value. Unparseable
   or null values also read as [None]: such rows are reported and skipped,
   never gated and never crash the gate. *)
let rows_of_file path =
  let s = read_file path in
  let rec collect from acc =
    match raw_field s ~from "name" with
    | None -> List.rev acc
    | Some (name, p1) ->
        let bound =
          match find_key s ~from:p1 "name" with
          | Some k -> k
          | None -> String.length s
        in
        let field key =
          match raw_field s ~from:p1 ~until:bound key with
          | Some (v, _) -> Some v
          | None -> None
        in
        let row =
          {
            name = unquote name;
            wall_s = Option.bind (field "wall_s") float_of_string_opt;
            engine_ops = Option.bind (field "engine_ops") int_of_string_opt;
            words_per_op =
              Option.bind (field "minor_words_per_engine_op") float_of_string_opt;
            (* Absent in pre-schema-4 baselines: reads as false, so old
               baselines gate every row exactly as they used to. *)
            memoized = field "memoized" = Some "true";
          }
        in
        if Option.is_none row.wall_s then
          Printf.eprintf "perf_gate: row %s in %s has no usable wall_s\n" row.name
            path;
        collect bound (row :: acc)
  in
  collect 0 []

type scale_row = {
  scale : string;
  s_cpus : int option;
  cycles_per_shootdown : float option;
  shootdowns : int option;
}

(* Schema-5 "bigmachine" scaling rows, keyed ["scale":] (experiment rows
   are keyed ["name":], so neither scanner sees the other's rows). A
   pre-schema-5 file simply yields the empty list and the scaling gates
   are skipped. *)
let scale_rows_of_file path =
  let s = read_file path in
  let rec collect from acc =
    match raw_field s ~from "scale" with
    | None -> List.rev acc
    | Some (scale, p1) ->
        let bound =
          match find_key s ~from:p1 "scale" with
          | Some k -> k
          | None -> String.length s
        in
        let field key =
          match raw_field s ~from:p1 ~until:bound key with
          | Some (v, _) -> Some v
          | None -> None
        in
        let row =
          {
            scale = unquote scale;
            s_cpus = Option.bind (field "n_cpus") int_of_string_opt;
            cycles_per_shootdown =
              Option.bind (field "cycles_per_shootdown") float_of_string_opt;
            shootdowns = Option.bind (field "shootdowns") int_of_string_opt;
          }
        in
        collect bound (row :: acc)
  in
  collect 0 []

type proto_row = {
  backend : string;
  p_initiator_mean : float option;
  p_shootdowns : int option;
}

(* Schema-6 "shootout" protocol-backend rows, keyed ["protocol":] (the
   other scanners key on ["name":] and ["scale":], so none sees another's
   rows). Row identity is the "backend" field — two rows share the
   "paper" protocol label. A pre-schema-6 file yields the empty list and
   the backend gates are skipped. *)
let proto_rows_of_file path =
  let s = read_file path in
  let rec collect from acc =
    match raw_field s ~from "protocol" with
    | None -> List.rev acc
    | Some (_, p1) ->
        let bound =
          match find_key s ~from:p1 "protocol" with
          | Some k -> k
          | None -> String.length s
        in
        let field key =
          match raw_field s ~from:p1 ~until:bound key with
          | Some (v, _) -> Some v
          | None -> None
        in
        let row =
          {
            backend = Option.value (Option.map unquote (field "backend")) ~default:"?";
            p_initiator_mean = Option.bind (field "initiator_mean") float_of_string_opt;
            p_shootdowns = Option.bind (field "shootdowns") int_of_string_opt;
          }
        in
        collect bound (row :: acc)
  in
  collect 0 []

type wl_row = {
  wl_experiment : string;
  wl_proto : string;
  wl_throughput : float option;
  wl_cycles : float option;
  wl_shootdowns : int option;
  wl_memoized : bool;
}

(* Schema-7 "workloads" rows, keyed ["experiment":] with the backend under
   ["proto":] — note "proto" is not a substring of "protocol" nor the
   reverse, so this scanner and the shootout one cannot see each other's
   rows. Row identity is the (experiment, proto) pair: the same
   wl-fig10 experiment appears once per backend. A pre-schema-7 file
   yields the empty list and the workload gates are skipped. *)
let wl_rows_of_file path =
  let s = read_file path in
  let rec collect from acc =
    match raw_field s ~from "experiment" with
    | None -> List.rev acc
    | Some (experiment, p1) ->
        let bound =
          match find_key s ~from:p1 "experiment" with
          | Some k -> k
          | None -> String.length s
        in
        let field key =
          match raw_field s ~from:p1 ~until:bound key with
          | Some (v, _) -> Some v
          | None -> None
        in
        let row =
          {
            wl_experiment = unquote experiment;
            wl_proto = Option.value (Option.map unquote (field "proto")) ~default:"?";
            wl_throughput = Option.bind (field "throughput") float_of_string_opt;
            wl_cycles =
              Option.bind (field "cycles_per_shootdown") float_of_string_opt;
            wl_shootdowns = Option.bind (field "shootdowns") int_of_string_opt;
            wl_memoized = field "memoized" = Some "true";
          }
        in
        collect bound (row :: acc)
  in
  collect 0 []

(* A workload row is gateable only when it performed shootdowns and
   executed its own cells: a memoized row's numbers were measured (and
   gated) under the experiment that owns the cells. Both metrics are
   simulated-deterministic, so like words/op they are compared raw. *)
let wl_gateable r =
  (not r.wl_memoized) && match r.wl_shootdowns with Some n -> n > 0 | None -> false

(* The declared "schema" of the file's first (top-level) schema key.
   Pre-schema files have none and read as 0. *)
let schema_of_file path =
  let s = read_file path in
  match raw_field s ~from:0 "schema" with
  | Some (v, _) -> Option.value (int_of_string_opt v) ~default:0
  | None -> 0

(* A backend row is gateable only when it performed shootdowns: a
   zero-shootdown cell's latency means the bench was misconfigured. *)
let proto_gateable r =
  match (r.p_initiator_mean, r.p_shootdowns) with
  | Some c, Some n -> c > 0.0 && n > 0
  | _ -> false

(* A scaling row is gateable only when it actually performed shootdowns:
   a zero-shootdown run's cycles_per_shootdown is a placeholder 0. *)
let scale_gateable r =
  match (r.cycles_per_shootdown, r.shootdowns) with
  | Some c, Some n -> c > 0.0 && n > 0
  | _ -> false

(* A row enters the aggregate (and is gateable) only with a positive wall
   time and a non-trivial op count: [engine_ops: null] rows, zero-wall
   runs and malformed rows all fall out here instead of poisoning the
   normalization with infinities. *)
let gateable r =
  (not r.memoized)
  &&
  match (r.engine_ops, r.wall_s) with
  | Some o, Some w -> o >= min_ops && w > 0.0
  | _ -> false

let total_rate rows =
  let ops, wall =
    List.fold_left
      (fun (ops, wall) r ->
        if gateable r then
          (ops + Option.get r.engine_ops, wall +. Option.get r.wall_s)
        else (ops, wall))
      (0, 0.0) rows
  in
  float_of_int ops /. Float.max 1e-9 wall

let () =
  let threshold = ref 0.25 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: t :: rest ->
        threshold := float_of_string t;
        parse rest
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ ->
        prerr_endline "usage: perf_gate.exe BASELINE.json CURRENT.json [--threshold 0.25]";
        exit 2
  in
  (* A newer file still passes through every known gate — its extra row
     families simply aren't scanned — but that blind spot must be visible
     in the CI log, not silent. *)
  List.iter
    (fun path ->
      let schema = schema_of_file path in
      if schema > supported_schema then
        Printf.eprintf
          "perf_gate: %s declares schema %d (gate supports %d): unknown newer \
           schema rows present and not gated\n"
          path schema supported_schema)
    [ baseline_path; current_path ];
  let baseline = rows_of_file baseline_path in
  let current = rows_of_file current_path in
  if List.is_empty baseline then begin
    Printf.eprintf "perf_gate: no experiment rows in %s\n" baseline_path;
    exit 2
  end;
  let base_total = total_rate baseline and cur_total = total_rate current in
  let failed = ref 0 in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> String.equal c.name b.name) current with
      | None ->
          Printf.printf "FAIL %-12s missing from current run\n" b.name;
          incr failed
      | Some c ->
          if gateable b && gateable c then begin
            let bo = Option.get b.engine_ops and co = Option.get c.engine_ops in
            let bw = Option.get b.wall_s and cw = Option.get c.wall_s in
            (* share of the run's aggregate throughput: machine-speed-free *)
            let b_norm = float_of_int bo /. bw /. Float.max 1e-9 base_total in
            let c_norm = float_of_int co /. cw /. Float.max 1e-9 cur_total in
            let rel = c_norm /. Float.max 1e-9 b_norm in
            if rel < 1.0 -. !threshold then begin
              Printf.printf "FAIL %-12s normalized ops/s %.2fx of baseline (limit %.2fx)\n"
                b.name rel (1.0 -. !threshold);
              incr failed
            end
            else Printf.printf "ok   %-12s normalized ops/s %.2fx of baseline\n" b.name rel;
            (* Allocation gate: deterministic, so compared raw. Only when
               both files carry the field — a schema-2 baseline has none. *)
            match (b.words_per_op, c.words_per_op) with
            | Some bwo, Some cwo when bwo > 0.0 ->
                let rel_w = cwo /. bwo in
                if rel_w > 1.0 +. !threshold then begin
                  Printf.printf
                    "FAIL %-12s minor words/op %.2fx of baseline (%.2f vs %.2f, limit %.2fx)\n"
                    b.name rel_w cwo bwo (1.0 +. !threshold);
                  incr failed
                end
                else
                  Printf.printf "ok   %-12s minor words/op %.2fx of baseline (%.2f)\n"
                    b.name rel_w cwo
            | _ -> ()
          end
          else if b.memoized || c.memoized then
            Printf.printf "skip %-12s memoized (cells owned by an earlier experiment)\n"
              b.name
          else
            Printf.printf "skip %-12s trivial, zero-wall or no engine ops (not gated)\n"
              b.name)
    baseline;
  (* --- schema-5 scaling gates --- *)
  let base_scales = scale_rows_of_file baseline_path in
  let cur_scales = scale_rows_of_file current_path in
  (* Regression gate: cycles_per_shootdown is simulated time, identical
     across hosts, so it is compared raw like words/op. Only rows present
     and gateable in both files are compared — an old baseline without
     bigmachine rows gates nothing. *)
  List.iter
    (fun b ->
      match List.find_opt (fun c -> String.equal c.scale b.scale) cur_scales with
      | None ->
          Printf.printf "FAIL %-16s missing from current run\n" b.scale;
          incr failed
      | Some c when scale_gateable b && scale_gateable c ->
          let bc = Option.get b.cycles_per_shootdown
          and cc = Option.get c.cycles_per_shootdown in
          let rel = cc /. bc in
          if rel > 1.0 +. !threshold then begin
            Printf.printf
              "FAIL %-16s cycles/shootdown %.2fx of baseline (%.0f vs %.0f, limit \
               %.2fx)\n"
              b.scale rel cc bc (1.0 +. !threshold);
            incr failed
          end
          else
            Printf.printf "ok   %-16s cycles/shootdown %.2fx of baseline (%.0f)\n"
              b.scale rel cc
      | Some _ -> Printf.printf "skip %-16s no shootdowns (not gated)\n" b.scale)
    base_scales;
  (* --- schema-6 protocol-backend gates --- *)
  let base_protos = proto_rows_of_file baseline_path in
  let cur_protos = proto_rows_of_file current_path in
  (* initiator_mean is simulated time, identical across hosts, so it is
     compared raw. Gated only when the baseline carries the row — a
     pre-schema-6 baseline gates no backends; a row the current run
     dropped is a failure (a backend silently fell out of the shootout). *)
  List.iter
    (fun b ->
      match List.find_opt (fun c -> String.equal c.backend b.backend) cur_protos with
      | None ->
          Printf.printf "FAIL %-16s missing from current run\n" b.backend;
          incr failed
      | Some c when proto_gateable b && proto_gateable c ->
          let bc = Option.get b.p_initiator_mean
          and cc = Option.get c.p_initiator_mean in
          let rel = cc /. bc in
          if rel > 1.0 +. !threshold then begin
            Printf.printf
              "FAIL %-16s initiator cycles %.2fx of baseline (%.0f vs %.0f, limit \
               %.2fx)\n"
              b.backend rel cc bc (1.0 +. !threshold);
            incr failed
          end
          else
            Printf.printf "ok   %-16s initiator cycles %.2fx of baseline (%.0f)\n"
              b.backend rel cc
      | Some _ -> Printf.printf "skip %-16s no shootdowns (not gated)\n" b.backend)
    base_protos;
  (* --- schema-7 cross-backend workload gates --- *)
  let base_wl = wl_rows_of_file baseline_path in
  let cur_wl = wl_rows_of_file current_path in
  (* Both metrics are simulated time, identical across hosts, so they are
     compared raw. Throughput must not drop, cycles/shootdown must not
     rise, each by more than the threshold. A row present in the baseline
     but missing from the current run is a failure (a backend silently
     fell out of the workload sweep); memoized rows are measured under the
     cell-owning experiment and skipped here, on either side. *)
  List.iter
    (fun b ->
      let id = Printf.sprintf "%s/%s" b.wl_experiment b.wl_proto in
      match
        List.find_opt
          (fun c ->
            String.equal c.wl_experiment b.wl_experiment
            && String.equal c.wl_proto b.wl_proto)
          cur_wl
      with
      | None ->
          Printf.printf "FAIL %-28s missing from current run\n" id;
          incr failed
      | Some c when wl_gateable b && wl_gateable c -> (
          (match (b.wl_throughput, c.wl_throughput) with
          | Some bt, Some ct when bt > 0.0 ->
              let rel = ct /. bt in
              if rel < 1.0 -. !threshold then begin
                Printf.printf
                  "FAIL %-28s throughput %.2fx of baseline (%.4f vs %.4f, limit \
                   %.2fx)\n"
                  id rel ct bt (1.0 -. !threshold);
                incr failed
              end
              else Printf.printf "ok   %-28s throughput %.2fx of baseline\n" id rel
          | _ -> ());
          match (b.wl_cycles, c.wl_cycles) with
          | Some bc, Some cc when bc > 0.0 ->
              let rel = cc /. bc in
              if rel > 1.0 +. !threshold then begin
                Printf.printf
                  "FAIL %-28s cycles/shootdown %.2fx of baseline (%.0f vs %.0f, \
                   limit %.2fx)\n"
                  id rel cc bc (1.0 +. !threshold);
                incr failed
              end
              else
                Printf.printf "ok   %-28s cycles/shootdown %.2fx of baseline\n" id rel
          | _ -> ())
      | Some c ->
          if b.wl_memoized || c.wl_memoized then
            Printf.printf "skip %-28s memoized (cells owned by an earlier experiment)\n"
              id
          else Printf.printf "skip %-28s no shootdowns (not gated)\n" id)
    base_wl;
  (* In-file scaling bound: the 1024-CPU machine's per-shootdown cost must
     stay within 2x of the 56-CPU paper machine's on the SAME run — the
     O(active CPUs) property the cpuset layer exists to provide. Checked
     whenever the current file carries both rows, whatever the baseline. *)
  (match
     ( List.find_opt (fun r -> r.s_cpus = Some 56) cur_scales,
       List.find_opt (fun r -> r.s_cpus = Some 1024) cur_scales )
   with
  | Some small, Some big when scale_gateable small && scale_gateable big ->
      let cs = Option.get small.cycles_per_shootdown
      and cb = Option.get big.cycles_per_shootdown in
      let rel = cb /. cs in
      if rel > 2.0 then begin
        Printf.printf
          "FAIL scaling          1024-CPU cycles/shootdown %.2fx of 56-CPU (%.0f vs \
           %.0f, limit 2.00x)\n"
          rel cb cs;
        incr failed
      end
      else
        Printf.printf "ok   scaling          1024-CPU cycles/shootdown %.2fx of 56-CPU\n"
          rel
  | _ -> ());
  if !failed > 0 then begin
    Printf.printf "%d experiment(s) regressed more than %.0f%%\n" !failed (!threshold *. 100.0);
    exit 1
  end;
  print_endline "perf gate passed"
