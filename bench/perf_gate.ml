(* Perf regression gate over BENCH_PERF.json (schema 2).

     perf_gate.exe BASELINE.json CURRENT.json [--threshold 0.25]

   Raw engine_ops_per_s is hardware-dependent — CI runners differ run to
   run — so the gate compares each experiment's NORMALIZED throughput: its
   ops/s divided by the whole run's ops/s. That ratio cancels machine
   speed; it only moves when one experiment slows down (or speeds up)
   relative to the rest of the bench, which is exactly the signature of a
   hot-path regression localized to one workload. An experiment fails the
   gate when its normalized throughput falls more than the threshold below
   the committed baseline's.

   Trivial experiments (engine_ops below [min_ops], or null — table2,
   table4, paravirt drive no engine) are reported but never gated: their
   wall times are noise-dominated.

   The parser is a minimal scanner for the schema this repo's own perf
   mode emits — not a general JSON reader, and deliberately so: it keeps
   the gate dependency-free. *)

let min_ops = 100_000

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Scan [s] for ["key": value] and return the raw value text (up to [,}]).
   Searches from [from]; returns the value and the position after it. *)
let raw_field s ~from key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let slen = String.length s in
  let rec find i =
    if i + plen > slen then None
    else if String.sub s i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find from with
  | None -> None
  | Some v0 ->
      let v0 = ref v0 in
      while !v0 < slen && (s.[!v0] = ' ' || s.[!v0] = '\n') do
        incr v0
      done;
      let v1 = ref !v0 in
      (if !v1 < slen && s.[!v1] = '"' then begin
         incr v1;
         while !v1 < slen && s.[!v1] <> '"' do
           incr v1
         done;
         incr v1
       end
       else
         while
           !v1 < slen && (match s.[!v1] with ',' | '}' | ']' | '\n' -> false | _ -> true)
         do
           incr v1
         done);
      Some (String.trim (String.sub s !v0 (!v1 - !v0)), !v1)

let unquote v =
  if String.length v >= 2 && v.[0] = '"' then String.sub v 1 (String.length v - 2) else v

type row = { name : string; wall_s : float; engine_ops : int option }

(* Experiment rows, in file order: each starts at a ["name":] key inside the
   "experiments" array (total/gc blocks carry no "name"). *)
let rows_of_file path =
  let s = read_file path in
  let rec collect from acc =
    match raw_field s ~from "name" with
    | None -> List.rev acc
    | Some (name, p1) -> (
        match (raw_field s ~from:p1 "wall_s", raw_field s ~from:p1 "engine_ops") with
        | Some (wall, _), Some (ops, p2) ->
            let row =
              {
                name = unquote name;
                wall_s = float_of_string wall;
                engine_ops = (if ops = "null" then None else Some (int_of_string ops));
              }
            in
            collect p2 (row :: acc)
        | _ ->
            Printf.eprintf "perf_gate: malformed row %s in %s\n" name path;
            exit 2)
  in
  collect 0 []

let total_rate rows =
  let ops, wall =
    List.fold_left
      (fun (ops, wall) r ->
        match r.engine_ops with
        | Some o when o >= min_ops -> (ops + o, wall +. r.wall_s)
        | _ -> (ops, wall))
      (0, 0.0) rows
  in
  float_of_int ops /. Float.max 1e-9 wall

let () =
  let threshold = ref 0.25 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: t :: rest ->
        threshold := float_of_string t;
        parse rest
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ ->
        prerr_endline "usage: perf_gate.exe BASELINE.json CURRENT.json [--threshold 0.25]";
        exit 2
  in
  let baseline = rows_of_file baseline_path in
  let current = rows_of_file current_path in
  let base_total = total_rate baseline and cur_total = total_rate current in
  let failed = ref 0 in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.name = b.name) current with
      | None ->
          Printf.printf "FAIL %-12s missing from current run\n" b.name;
          incr failed
      | Some c -> (
          match (b.engine_ops, c.engine_ops) with
          | Some bo, Some co when bo >= min_ops && co >= min_ops ->
              (* share of the run's aggregate throughput: machine-speed-free *)
              let b_norm = float_of_int bo /. Float.max 1e-9 b.wall_s /. base_total in
              let c_norm = float_of_int co /. Float.max 1e-9 c.wall_s /. cur_total in
              let rel = c_norm /. Float.max 1e-9 b_norm in
              if rel < 1.0 -. !threshold then begin
                Printf.printf "FAIL %-12s normalized ops/s %.2fx of baseline (limit %.2fx)\n"
                  b.name rel (1.0 -. !threshold);
                incr failed
              end
              else Printf.printf "ok   %-12s normalized ops/s %.2fx of baseline\n" b.name rel
          | _ -> Printf.printf "skip %-12s trivial or no engine ops (not gated)\n" b.name))
    baseline;
  if !failed > 0 then begin
    Printf.printf "%d experiment(s) regressed more than %.0f%%\n" !failed (!threshold *. 100.0);
    exit 1
  end;
  print_endline "perf gate passed"
