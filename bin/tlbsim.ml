(* tlbsim: command-line front end for the shootdown simulator.

     tlbsim micro --placement cross-socket --ptes 10 --safe ...
     tlbsim sysbench --threads 8 --opts all
     tlbsim apache --cores 6 --opts concurrent,early-ack
     tlbsim cow --opts all
     tlbsim fracture
     tlbsim trace --ptes 4          (print a protocol timeline)
     tlbsim analyze --inject-bug    (happens-before race analysis)
     tlbsim analyze --explore       (systematic interleaving exploration)
*)

open Cmdliner

(* --- shared options --- *)

let safe_t =
  let doc = "Mitigation mode: true = PTI + mitigations (Linux default)." in
  Arg.(value & opt bool true & info [ "safe" ] ~doc)

let opt_names =
  [
    ("concurrent", fun o -> o.Opts.concurrent_flush <- true);
    ("early-ack", fun o -> o.Opts.early_ack <- true);
    ("cacheline", fun o -> o.Opts.cacheline_consolidation <- true);
    ("in-context", fun o -> o.Opts.in_context_flush <- true);
    ("cow", fun o -> o.Opts.cow_avoid_flush <- true);
    ("batching", fun o -> o.Opts.userspace_batching <- true);
    ("unsafe-lazy", fun o -> o.Opts.unsafe_lazy_batching <- true);
    ( "freebsd",
      fun o ->
        o.Opts.freebsd_protocol <- true;
        o.Opts.full_flush_threshold <- 4096 );
  ]

let opts_t =
  let doc =
    "Optimizations to enable: comma-separated subset of concurrent, early-ack, \
     cacheline, in-context, cow, batching, unsafe-lazy, freebsd; or 'all', 'general', \
     'none'."
  in
  let parse s =
    if String.equal s "none" then Ok `None
    else if String.equal s "all" then Ok `All
    else if String.equal s "general" then Ok `General
    else begin
      let names = String.split_on_char ',' s in
      let unknown = List.filter (fun n -> not (List.mem_assoc n opt_names)) names in
      if List.is_empty unknown then Ok (`List names)
      else Error (`Msg (Printf.sprintf "unknown optimization(s): %s" (String.concat ", " unknown)))
    end
  in
  let print fmt v =
    Format.pp_print_string fmt
      (match v with
      | `None -> "none"
      | `All -> "all"
      | `General -> "general"
      | `List names -> String.concat "," names)
  in
  Arg.(
    value
    & opt (conv (parse, print)) `None
    & info [ "opts" ] ~doc)

let seed_t =
  let doc = "Deterministic RNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let make_opts ~safe spec =
  match spec with
  | `None -> Opts.baseline ~safe
  | `All -> Opts.all ~safe
  | `General -> Opts.all_general ~safe
  | `List names ->
      let o = Opts.baseline ~safe in
      List.iter (fun n -> (List.assoc n opt_names) o) names;
      o

(* --- micro --- *)

let placement_t =
  let doc = "Responder placement: same-core, same-socket or cross-socket." in
  let alist =
    [
      ("same-core", Microbench.Same_core);
      ("same-socket", Microbench.Same_socket);
      ("cross-socket", Microbench.Cross_socket);
    ]
  in
  Arg.(value & opt (enum alist) Microbench.Cross_socket & info [ "placement" ] ~doc)

let ptes_t =
  let doc = "PTEs flushed per madvise." in
  Arg.(value & opt int 10 & info [ "ptes" ] ~doc)

let iters_t =
  let doc = "Measured iterations." in
  Arg.(value & opt int 200 & info [ "iterations" ] ~doc)

let micro_cmd =
  let run safe spec placement ptes iterations seed =
    let opts = make_opts ~safe spec in
    let cfg = Microbench.default_config ~opts ~placement ~pte_count:ptes in
    let cfg = { cfg with Microbench.iterations; seed = Int64.of_int seed } in
    let r = Microbench.run cfg in
    Printf.printf "config: %s, %d PTE(s), %s\n"
      (Microbench.placement_label placement)
      ptes
      (Format.asprintf "%a" Opts.pp opts);
    Printf.printf "initiator: %.0f +- %.0f cycles per madvise\n" r.Microbench.initiator_mean
      r.Microbench.initiator_sd;
    Printf.printf "responder: %.0f cycles interruption per shootdown (%d shootdowns)\n"
      r.Microbench.responder_mean r.Microbench.shootdowns
  in
  Cmd.v
    (Cmd.info "micro" ~doc:"The paper's §5.1 madvise microbenchmark (Figures 5-8).")
    Term.(const run $ safe_t $ opts_t $ placement_t $ ptes_t $ iters_t $ seed_t)

(* --- sysbench --- *)

let sysbench_cmd =
  let threads_t =
    Arg.(value & opt int 8 & info [ "threads" ] ~doc:"Worker threads (1-28, one NUMA node).")
  in
  let ops_t = Arg.(value & opt int 240 & info [ "ops" ] ~doc:"Writes per thread.") in
  let run safe spec threads ops seed =
    let opts = make_opts ~safe spec in
    let cfg = Sysbench.default_config ~opts ~threads in
    let cfg = { cfg with Sysbench.ops_per_thread = ops; seed = Int64.of_int seed } in
    let r = Sysbench.run cfg in
    Printf.printf "%d threads, %s\n" threads (Format.asprintf "%a" Opts.pp opts);
    Printf.printf
      "ops=%d cycles=%d throughput=%.3f ops/kcyc shootdowns=%d full-fallbacks=%d \
       batched=%d\n"
      r.Sysbench.ops r.Sysbench.cycles r.Sysbench.throughput r.Sysbench.shootdowns
      r.Sysbench.full_flush_fallbacks r.Sysbench.batched_deferrals
  in
  Cmd.v
    (Cmd.info "sysbench" ~doc:"Random writes + fdatasync on a mapped file (Figure 10).")
    Term.(const run $ safe_t $ opts_t $ threads_t $ ops_t $ seed_t)

(* --- apache --- *)

let apache_cmd =
  let cores_t = Arg.(value & opt int 8 & info [ "cores" ] ~doc:"Worker cores (1-11).") in
  let requests_t = Arg.(value & opt int 660 & info [ "requests" ] ~doc:"Total requests.") in
  let run safe spec cores requests seed =
    let opts = make_opts ~safe spec in
    let cfg = Apache.default_config ~opts ~cores in
    let cfg = { cfg with Apache.requests; seed = Int64.of_int seed } in
    let r = Apache.run cfg in
    Printf.printf "%d cores, %s\n" cores (Format.asprintf "%a" Opts.pp opts);
    Printf.printf "requests=%d cycles=%d throughput=%.2f req/Mcyc shootdowns=%d\n"
      r.Apache.requests_done r.Apache.cycles r.Apache.throughput r.Apache.shootdowns
  in
  Cmd.v
    (Cmd.info "apache" ~doc:"mpm_event-style request serving (Figure 11).")
    Term.(const run $ safe_t $ opts_t $ cores_t $ requests_t $ seed_t)

(* --- cow --- *)

let cow_cmd =
  let run safe spec seed =
    let opts = make_opts ~safe spec in
    let cfg = Cow_bench.default_config ~opts in
    let cfg = { cfg with Cow_bench.seed = Int64.of_int seed } in
    let r = Cow_bench.run cfg in
    Printf.printf "%s\n" (Format.asprintf "%a" Opts.pp opts);
    Printf.printf "CoW write: %.0f +- %.0f cycles (%d breaks, %d flushes avoided)\n"
      r.Cow_bench.write_mean r.Cow_bench.write_sd r.Cow_bench.cow_breaks
      r.Cow_bench.flushes_avoided
  in
  Cmd.v
    (Cmd.info "cow" ~doc:"Copy-on-write fault latency (Figure 9).")
    Term.(const run $ safe_t $ opts_t $ seed_t)

(* --- fracture --- *)

let fracture_cmd =
  let ws_t =
    Arg.(value & opt int 1024 & info [ "working-set" ] ~doc:"Working set in 4KiB pages.")
  in
  let rounds_t = Arg.(value & opt int 100 & info [ "rounds" ] ~doc:"Touch+flush rounds.") in
  let run working_set_pages rounds =
    let cfg = { Fracture.working_set_pages; rounds; tlb_capacity = 1536 } in
    List.iter
      (fun (r : Fracture.result) ->
        Printf.printf "%-24s full=%-10s selective=%-10s promoted=%s\n"
          r.Fracture.shape.Fracture.label
          (Report.count r.Fracture.full_misses)
          (Report.count r.Fracture.selective_misses)
          (Report.count r.Fracture.fracture_promotions))
      (Fracture.run_all cfg)
  in
  Cmd.v
    (Cmd.info "fracture" ~doc:"Page-fracturing dTLB miss counts (Table 4).")
    Term.(const run $ ws_t $ rounds_t)

(* --- trace --- *)

let trace_cmd =
  let run safe spec ptes =
    let opts = make_opts ~safe spec in
    let m = Machine.create ~opts ~seed:1L () in
    Trace.enable m.Machine.trace;
    let mm = Machine.new_mm m in
    let stop = ref false in
    Kernel.spawn_user m ~cpu:14 ~mm ~name:"responder" (fun () ->
        let cpu = Machine.cpu m 14 in
        while not !stop do
          Cpu.compute cpu ~quantum:100 100
        done);
    Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
        Machine.delay m 2_000;
        let addr = Syscall.mmap m ~cpu:0 ~pages:ptes () in
        Access.touch_range m ~cpu:0 ~addr ~pages:ptes ~write:true;
        Trace.clear m.Machine.trace;
        let t0 = Machine.now m in
        Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages:ptes;
        Printf.printf "madvise took %d cycles\n" (Machine.now m - t0);
        Machine.delay m 10_000;
        stop := true);
    Kernel.run m;
    Format.printf "%a@?" Trace.pp m.Machine.trace
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the timeline of one shootdown.")
    Term.(const run $ safe_t $ opts_t $ ptes_t)

(* --- analyze --- *)

let analyze_cmd =
  let inject_bug_t =
    let doc =
      "Inject the protocol bug (drop deferred user-PCID flushes) and let the \
       happens-before analysis catch it."
    in
    Arg.(value & flag & info [ "inject-bug" ] ~doc)
  in
  let explore_t =
    let doc =
      "Instead of one run, systematically explore interleavings of a 2-CPU shootdown \
       under every combination of the paper's general optimizations."
    in
    Arg.(value & flag & info [ "explore" ] ~doc)
  in
  let rounds_t =
    Arg.(value & opt int 40 & info [ "rounds" ] ~doc:"madvise rounds in the traced scenario.")
  in
  let jobs_t =
    let doc =
      "Domains for the $(b,--explore) sweep (one scenario per task; 0 = ask the \
       runtime). Output is identical at every job count."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)
  in
  let general_flags =
    [
      ("concurrent", fun o v -> o.Opts.concurrent_flush <- v);
      ("early-ack", fun o v -> o.Opts.early_ack <- v);
      ("cacheline", fun o v -> o.Opts.cacheline_consolidation <- v);
      ("in-context", fun o v -> o.Opts.in_context_flush <- v);
    ]
  in
  let protocol_t =
    let doc =
      "Backend whose quiescence/invariants the $(b,--explore) sweep validates: \
       paper, oracle, sync-broadcast, queue-spin, or 'all' to sweep every backend."
    in
    let alist =
      [
        ("paper", `One Opts.Paper);
        ("oracle", `One Opts.Oracle);
        ("sync-broadcast", `One Opts.Sync_broadcast);
        ("sync", `One Opts.Sync_broadcast);
        ("queue-spin", `One Opts.Queue_spin);
        ("queue", `One Opts.Queue_spin);
        ("all", `All);
      ]
    in
    Arg.(value & opt (enum alist) (`One Opts.Paper) & info [ "protocol" ] ~doc)
  in
  let run safe spec inject_bug explore protocol_sel rounds seed jobs =
    let opts = make_opts ~safe spec in
    let opts =
      match spec with `None when not explore -> Opts.all_general ~safe | _ -> opts
    in
    if inject_bug then opts.Opts.bug_skip_deferred_flush <- true;
    if explore then begin
      (* Sweep every subset of the four general optimizations — per
         selected protocol backend — on the exhaustively-explorable 2-CPU
         scenario; each (backend, subset)'s exploration is one pool task,
         reported in (backend, mask) order whatever the schedule. *)
      let protocols =
        match protocol_sel with `One p -> [ p ] | `All -> Opts.all_protocols
      in
      let nflags = List.length general_flags in
      let combos =
        List.concat_map
          (fun p ->
            List.init (1 lsl nflags) (fun mask ->
                let o = Opts.copy opts in
                o.Opts.protocol <- p;
                List.iteri
                  (fun i (_, set) -> set o (mask land (1 lsl i) <> 0))
                  general_flags;
                let flags =
                  if mask = 0 then "baseline"
                  else
                    String.concat ","
                      (List.filteri
                         (fun i _ -> mask land (1 lsl i) <> 0)
                         (List.map fst general_flags))
                in
                let label =
                  match protocol_sel with
                  | `One Opts.Paper -> flags
                  | _ -> Printf.sprintf "%s %s" (Opts.protocol_label p) flags
                in
                (label, o)))
          protocols
      in
      let jobs = if jobs <= 0 then Domain_pool.default_jobs () else jobs in
      let results =
        Explorer.explore_set ~jobs
          (List.map
             (fun (_, o) () -> Scenarios.shootdown_2cpu ~opts:o ~seed:(Int64.of_int seed) ())
             combos)
      in
      let worst = ref 0 in
      List.iter2
        (fun (label, _) r ->
          Format.printf "[%-42s] %a" label Explorer.pp_result r;
          worst := Stdlib.max !worst (List.length r.Explorer.failures))
        combos results;
      if !worst > 0 then exit 1
    end
    else begin
      let m = Scenarios.early_ack_demo ~opts ~rounds ~seed:(Int64.of_int seed) () in
      Trace.enable m.Machine.trace;
      Kernel.run m;
      let report = Hb.analyze_trace m.Machine.trace in
      Format.printf "scenario: cross-socket reader vs %d madvise rounds, %a@."
        rounds Opts.pp opts;
      Hb.pp_report Format.std_formatter report;
      if report.Hb.genuine > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Happens-before race analysis of a shootdown trace; with $(b,--explore), \
          systematic interleaving exploration.")
    Term.(
      const run $ safe_t $ opts_t $ inject_bug_t $ explore_t $ protocol_t $ rounds_t
      $ seed_t $ jobs_t)

(* --- fuzz --- *)

let fuzz_cmd =
  let count_t =
    Arg.(value & opt int 500 & info [ "count" ] ~doc:"Seeded programs to run.")
  in
  let seed_base_t =
    Arg.(value & opt int 0 & info [ "seed-base" ] ~doc:"First seed of the range.")
  in
  let seed_one_t =
    let doc = "Run exactly this seed (use with $(b,--replay) to reproduce a failure)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc)
  in
  let replay_t =
    let doc = "Replay mode: print the seed's program and every per-op observation." in
    Arg.(value & flag & info [ "replay" ] ~doc)
  in
  let inject_bug_t =
    let doc =
      "Inject the drop-deferred-flush protocol bug into the optimized run; the fuzzer \
       must catch it and shrink to a minimal counterexample."
    in
    Arg.(value & flag & info [ "inject-bug" ] ~doc)
  in
  let max_ops_t =
    Arg.(value & opt int 32 & info [ "max-ops" ] ~doc:"Upper bound on random ops per program.")
  in
  let no_shrink_t =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report failures without ddmin shrinking.")
  in
  let jobs_t =
    let doc = "Domains to shard seeds over (0 = ask the runtime)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)
  in
  let run count seed_base seed_one replay inject_bug max_ops no_shrink jobs =
    let shrink = not no_shrink in
    match seed_one with
    | Some seed ->
        let program = Fuzz.gen_program ~max_ops ~inject_bug seed in
        Format.printf "%a@." Fuzz.pp_program program;
        if replay then begin
          List.iteri (fun i op -> Format.printf "  op %2d: %a@." i Fuzz.pp_op op) program.Fuzz.p_ops;
          let r = Fuzz.execute ~opts:(Fuzz.program_opts program) program in
          Array.iteri (fun i o -> Format.printf "  obs %2d: %s@." i o) r.Fuzz.xr_obs
        end;
        (match Fuzz.check_seed ~max_ops ~inject_bug ~shrink seed with
        | None ->
            print_endline "seed passed: optimized run matches the oracle";
            exit 0
        | Some f ->
            Format.printf "%a@." Fuzz.pp_failure f;
            exit 1)
    | None ->
        let jobs = if jobs <= 0 then Domain_pool.default_jobs () else jobs in
        let report =
          Fuzz.run_seeds ~seed_base ~count ~jobs ~max_ops ~inject_bug ~shrink ()
        in
        List.iter (fun f -> Format.printf "%a@." Fuzz.pp_failure f) report.Fuzz.failures;
        Printf.printf "fuzz: %d/%d seeds diverged (seeds %d..%d)\n"
          (List.length report.Fuzz.failures) report.Fuzz.tested seed_base
          (seed_base + count - 1);
        if not (List.is_empty report.Fuzz.failures) then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: run random kernel-op programs under the optimized \
          protocol and under a conservative synchronous-broadcast oracle, diff every \
          observable, and ddmin-shrink any divergence.")
    Term.(
      const run $ count_t $ seed_base_t $ seed_one_t $ replay_t $ inject_bug_t $ max_ops_t
      $ no_shrink_t $ jobs_t)

(* --- shootout --- *)

let shootout_cmd =
  let format_t =
    let doc = "Output format: table or json." in
    let alist = [ ("table", Shootout.Table); ("json", Shootout.Json) ] in
    Arg.(value & opt (enum alist) Shootout.Table & info [ "format" ] ~doc)
  in
  let jobs_t =
    let doc =
      "Domains to shard backend cells over (0 = ask the runtime); output is \
       byte-identical at any value."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)
  in
  let workloads_t =
    let doc =
      "Compare the backends on the paper's workload evaluation instead of the \
       microbenchmark: fig10 sysbench, fig11 apache and the bigmachine-56 \
       multi-tenant churn, at quick scale (DESIGN.md §13)."
    in
    Arg.(value & flag & info [ "workloads" ] ~doc)
  in
  let run format ptes iterations seed jobs workloads =
    let jobs = if jobs <= 0 then Domain_pool.default_jobs () else jobs in
    if workloads then print_string (Shootout.run_workloads ~jobs format)
    else
      print_string
        (Shootout.run ~pte_count:ptes ~iterations ~seed:(Int64.of_int seed) ~jobs format)
  in
  Cmd.v
    (Cmd.info "shootout"
       ~doc:
         "Protocol-backend comparison: run the metered madvise microbenchmark once \
          per backend (paper all/baseline, oracle, sync-broadcast, queue-spin) and \
          print one row each — initiator/responder latency, phase-latency p50s, and \
          cacheline traffic. With $(b,--workloads), race the backends on the \
          fig10/fig11/bigmachine workload family instead.")
    Term.(const run $ format_t $ ptes_t $ iters_t $ seed_t $ jobs_t $ workloads_t)

(* --- stats --- *)

let stats_cmd =
  let format_t =
    let doc = "Output format: table, json, or prom (Prometheus text exposition)." in
    let alist =
      [ ("table", Observe.Table); ("json", Observe.Json); ("prom", Observe.Prometheus) ]
    in
    Arg.(value & opt (enum alist) Observe.Table & info [ "format" ] ~doc)
  in
  let jobs_t =
    let doc = "Domains to shard the sweep over (0 = ask the runtime); output is \
               byte-identical at any value." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)
  in
  let run format iterations seed jobs =
    let jobs = if jobs <= 0 then Domain_pool.default_jobs () else jobs in
    print_string
      (Observe.run ~iterations ~seed:(Int64.of_int seed) ~jobs format)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Per-shootdown phase-latency breakdown (prep / IPI delivery / flush \
          execution / ack wait / cacheline transfers) by topology distance and \
          flush kind, from a metered microbenchmark sweep.")
    Term.(const run $ format_t $ iters_t $ seed_t $ jobs_t)

let () =
  let info =
    Cmd.info "tlbsim" ~version:"1.0.0"
      ~doc:
        "Simulator reproducing 'Don't shoot down TLB shootdowns!' (EuroSys 2020): \
         the Linux TLB shootdown protocol and the paper's six optimizations on a \
         simulated multicore x86 machine."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            micro_cmd;
            sysbench_cmd;
            apache_cmd;
            cow_cmd;
            fracture_cmd;
            trace_cmd;
            analyze_cmd;
            fuzz_cmd;
            shootout_cmd;
            stats_cmd;
          ]))
