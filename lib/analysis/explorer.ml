(* Systematic interleaving exploration.

   The engine's chooser hook turns every set of near-simultaneous pending
   events into a scheduling decision point. A run is identified by its
   decision prefix: entry [d] of the prefix is the candidate index taken at
   decision [d]; decisions past the end of the prefix take candidate 0 (the
   deterministic default order). The explorer runs the empty prefix, then
   depth-first re-runs with every untried alternative at every decision the
   run encountered (bounded by [max_choice_points], [max_branch] and
   [max_runs]) — stateless-model-checking style, with replay instead of
   checkpointing because runs are deterministic given the prefix.

   Each run checks the protocol's safety invariants at every decision point
   and at quiescence, and feeds the collected trace through the
   happens-before analyzer; any violation is reported with the prefix that
   reproduces it. *)

type config = {
  max_choice_points : int;
  max_branch : int;
  max_runs : int;
  horizon : int;
  trace_cap : int;
}

let default_config =
  { max_choice_points = 12; max_branch = 2; max_runs = 64; horizon = 30; trace_cap = 20_000 }

type failure = { fail_prefix : int list; fail_what : string }

type result = {
  runs : int;
  max_depth : int; (* deepest decision count any run reached *)
  failures : failure list; (* deduplicated by message *)
  stale_hits : int;
  proved_in_flight : int;
  unordered_latent : int;
  genuine : int;
}

(* Invariants probed mid-run, from inside the chooser (no process context:
   reads only). *)
let probe m add_failure =
  for cpu = 0 to Machine.n_cpus m - 1 do
    let pcpu = Machine.percpu m cpu in
    let cpu_t = Machine.cpu m cpu in
    (* §3.4: a CPU executing user code must have no deferred user flush
       outstanding — return_to_user is obliged to drain it. *)
    if Cpu.in_user cpu_t && not (Percpu.no_pending_user pcpu.Percpu.pending_user) then
      add_failure (Printf.sprintf "cpu%d runs user code with a deferred user flush pending" cpu);
    (* §3.2: whenever nmi_uaccess_okay claims an NMI may touch user memory,
       the translations that NMI would use must hold nothing stale that is
       not excused by an open invalidation window. An NMI runs in kernel
       context, so under PTI it sees the kernel-PCID view — which §3.4
       flushes eagerly in-context; the user PCID is unreachable from NMIs
       and its staleness is governed by the return-to-user contract probed
       above. *)
    if Shootdown.nmi_uaccess_okay m ~cpu then
      match pcpu.Percpu.loaded_mm with
      | None -> ()
      | Some mm ->
          let pcid = Percpu.current_kernel_pcid pcpu in
          let pt = Mm_struct.page_table mm in
          List.iter
            (fun (e : Tlb.entry) ->
              if e.Tlb.pcid = pcid then begin
                let stale =
                  match Page_table.walk pt ~vpn:e.Tlb.vpn with
                  | None -> true
                  | Some w -> w.Page_table.pte.Pte.pfn <> e.Tlb.pfn
                in
                if
                  stale
                  && not (Checker.covered m.Machine.checker ~mm_id:(Mm_struct.id mm) ~vpn:e.Tlb.vpn)
                then
                  add_failure
                    (Printf.sprintf
                       "cpu%d: nmi_uaccess_okay with a stale uncovered entry (vpn %d)" cpu
                       e.Tlb.vpn)
              end)
            (Tlb.entries (Cpu.tlb cpu_t))
  done

(* Invariants at quiescence. *)
let post_invariants m add_failure =
  let checker = m.Machine.checker in
  let v = Checker.violation_count checker in
  if v > 0 then add_failure (Printf.sprintf "checker recorded %d violation(s)" v);
  let w = Checker.open_windows checker in
  if w > 0 then add_failure (Printf.sprintf "%d invalidation window(s) open at quiescence" w);
  for cpu = 0 to Machine.n_cpus m - 1 do
    let pcpu = Machine.percpu m cpu in
    if not (Percpu.no_pending_user pcpu.Percpu.pending_user) then
      add_failure (Printf.sprintf "cpu%d: deferred user flush survives quiescence" cpu);
    if not (Queue.is_empty pcpu.Percpu.csq) then
      add_failure (Printf.sprintf "cpu%d: undrained call queue at quiescence" cpu);
    if pcpu.Percpu.inflight_flush then
      add_failure (Printf.sprintf "cpu%d: inflight-flush flag stuck at quiescence" cpu);
    if not (List.is_empty pcpu.Percpu.batch) then
      add_failure (Printf.sprintf "cpu%d: unflushed batched shootdowns at quiescence" cpu);
    (* Backend-specific residue: an undrained Queue_spin ring, a
       still-posted Sync_broadcast descriptor, ... *)
    Shootdown.protocol_quiescent m ~cpu add_failure
  done

let run_once ~config ~build ~prefix ~add_failure =
  let m = build () in
  Trace.set_max_records m.Machine.trace (Some config.trace_cap);
  Trace.enable m.Machine.trace;
  let depth = ref 0 in
  let decisions = ref [] in
  let prefix_arr = Array.of_list prefix in
  Engine.set_chooser m.Machine.engine ~horizon:config.horizon (fun ncand ->
      probe m add_failure;
      let d = !depth in
      incr depth;
      if d < Array.length prefix_arr then prefix_arr.(d)
      else begin
        if ncand > 1 && d < config.max_choice_points then decisions := (d, ncand) :: !decisions;
        0
      end);
  (try Kernel.run m
   with exn -> add_failure ("uncaught exception: " ^ Printexc.to_string exn));
  Engine.clear_chooser m.Machine.engine;
  post_invariants m add_failure;
  let report = Hb.analyze_trace m.Machine.trace in
  if report.Hb.genuine > 0 then
    add_failure
      (Printf.sprintf "happens-before analysis found %d genuine race(s)" report.Hb.genuine);
  (!depth, List.rev !decisions, report)

let explore ?(config = default_config) build =
  let runs = ref 0 and max_depth = ref 0 in
  let failures = ref [] in
  let seen_failures = Hashtbl.create 16 in
  let hits = ref 0 and proved = ref 0 and latent = ref 0 and genuine = ref 0 in
  let rec go prefix =
    if !runs < config.max_runs then begin
      incr runs;
      let add_failure what =
        if not (Hashtbl.mem seen_failures what) then begin
          Hashtbl.replace seen_failures what ();
          failures := { fail_prefix = prefix; fail_what = what } :: !failures
        end
      in
      let depth, decisions, report = run_once ~config ~build ~prefix ~add_failure in
      max_depth := Stdlib.max !max_depth depth;
      hits := !hits + report.Hb.stale_hits;
      proved := !proved + report.Hb.proved_in_flight;
      latent := !latent + report.Hb.unordered_latent;
      genuine := !genuine + report.Hb.genuine;
      List.iter
        (fun (d, ncand) ->
          for alt = 1 to Stdlib.min ncand config.max_branch - 1 do
            if !runs < config.max_runs then
              go (prefix @ List.init (d - List.length prefix) (fun _ -> 0) @ [ alt ])
          done)
        decisions
    end
  in
  go [];
  {
    runs = !runs;
    max_depth = !max_depth;
    failures = List.rev !failures;
    stale_hits = !hits;
    proved_in_flight = !proved;
    unordered_latent = !latent;
    genuine = !genuine;
  }

(* Each scenario's exploration is an independent pure function of its
   builder (fresh machine per run, replay instead of shared state), so a
   sweep over scenarios shards perfectly: one pool task per scenario,
   results slotted in input order. Explorations are similarly sized, so
   plain in-order claiming beats weighted LPT here. *)
let explore_set ?(config = default_config) ~jobs builds =
  Array.to_list
    (Domain_pool.run ~jobs
       (Array.of_list (List.map (fun build () -> explore ~config build) builds)))

let pp_result fmt r =
  Format.fprintf fmt
    "%d run(s), %d decision point(s) deep, %d stale hit(s) (%d proved in-flight, %d \
     unordered, %d genuine), %d failure(s)@."
    r.runs r.max_depth r.stale_hits r.proved_in_flight r.unordered_latent r.genuine
    (List.length r.failures);
  List.iter
    (fun f ->
      Format.fprintf fmt "  FAIL [prefix %s]: %s@."
        (String.concat "," (List.map string_of_int f.fail_prefix))
        f.fail_what)
    r.failures
