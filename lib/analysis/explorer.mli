(** Systematic interleaving exploration of shootdown scenarios.

    The simulation engine's chooser hook turns near-simultaneous pending
    events into scheduling decision points. A run is identified by its
    decision prefix (candidate index taken at each decision; past the
    prefix, the deterministic default order). {!explore} runs the empty
    prefix and then depth-first re-runs every untried alternative at every
    decision encountered — stateless-model-checking style, replaying
    instead of checkpointing because runs are deterministic given their
    prefix.

    Every run checks protocol invariants at each decision point (no
    deferred user flush while user code runs; [nmi_uaccess_okay] implies no
    stale uncovered translation in the kernel-PCID view an NMI would use)
    and at quiescence (checker clean, no
    open windows, queues drained, no surviving deferrals), and feeds the
    trace through {!Hb.analyze}; failures carry the prefix reproducing
    them. *)

type config = {
  max_choice_points : int;  (** decisions beyond this depth are not branched *)
  max_branch : int;  (** alternatives tried per decision (>= candidate count
                         for exhaustive exploration) *)
  max_runs : int;
  horizon : int;  (** engine concurrency horizon in cycles *)
  trace_cap : int;  (** per-run [Trace.set_max_records] cap *)
}

(** 12 choice points, 2-way branching, 64 runs, 30-cycle horizon. *)
val default_config : config

type failure = { fail_prefix : int list; fail_what : string }

type result = {
  runs : int;
  max_depth : int;
  failures : failure list;  (** deduplicated by message *)
  stale_hits : int;  (** summed over all runs *)
  proved_in_flight : int;
  unordered_latent : int;
  genuine : int;
}

(** Quiescence invariants shared with the differential fuzzer: checker
    clean, no open windows, deferred user flushes drained, call queues
    empty, no stuck inflight-flush flags, no unflushed batches. Calls
    [add_failure] once per violated invariant. *)
val post_invariants : Machine.t -> (string -> unit) -> unit

(** [explore ?config build] explores the scenario returned by [build]
    (fresh machine per run, processes spawned, engine not yet run). *)
val explore : ?config:config -> (unit -> Machine.t) -> result

(** [explore_set ?config ~jobs builds] explores each scenario in [builds]
    as an independent task on a [jobs]-domain pool ({!Sim.Domain_pool}).
    Results come back in the order of [builds] regardless of schedule, and
    each exploration is single-domain internally, so the output is
    identical to mapping {!explore} sequentially. Use for sweeps (e.g. the
    64-combo flag sweep of [tlbsim analyze --explore]). *)
val explore_set : ?config:config -> jobs:int -> (unit -> Machine.t) list -> result list

val pp_result : Format.formatter -> result -> unit
