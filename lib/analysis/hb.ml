(* Vector-clock happens-before analysis over a typed protocol trace.

   Events are ordered by per-CPU program order plus three cross-CPU edge
   kinds, each corresponding to a real synchronization mechanism:

   - Ipi_send -> Ipi_begin (IPI delivery),
   - Ipi_ack -> Acks_seen (the initiator's ack spin observing the CSD line),
   - Gen_bump -> Gen_read of a generation >= the bump (the mm's tlb_gen
     cacheline transferring from the bumper to the reader).

   A stale TLB hit is then judged against the invalidation windows the
   checker opened: the hit is a *proved* benign in-flight race only when the
   window's close does not happen-before it — and, for the hit CPU itself,
   only while that CPU has not yet completed a return-to-user after handling
   the window's IPI (the paper's §3.4 contract: deferred user-PCID flushes
   must not survive return_to_user). A hit ordered after the covering flush
   is a genuine protocol race; the chain of events proving the ordering is
   attached to the finding. *)

type verdict = Proved_in_flight | Unordered_latent | Genuine

type finding = {
  f_index : int;
  f_time : int;
  f_cpu : int;
  f_mm : int;
  f_vpn : int;
  f_verdict : verdict;
  f_detail : string;
  f_chain : (int * Trace.record) list;
}

type report = {
  events : int;
  stale_hits : int;
  proved_in_flight : int;
  unordered_latent : int;
  genuine : int;
  checker_disagreements : int;
  findings : finding list;
}

type window = {
  w_id : int;
  w_mm : int;
  w_start : int;
  w_span : int;
  w_full : bool;
  w_opener : int;
  w_open_idx : int;
  mutable w_close_idx : int option;
  mutable w_close_vc : int array option;
  mutable w_seqs : int list; (* IPIs sent inside this window, newest first *)
  w_handled : (int, int) Hashtbl.t; (* responder cpu -> Ipi_begin index *)
}

let covers w ~mm ~vpn = w.w_mm = mm && (w.w_full || (vpn >= w.w_start && vpn < w.w_start + w.w_span))

let vc_leq a b =
  let ok = ref true in
  Array.iteri (fun i v -> if v > b.(i) then ok := false) a;
  !ok

let max_findings = 32

let analyze_array records =
  let n = Array.length records in
  let n_cpus =
    Array.fold_left (fun acc (r : Trace.record) -> Stdlib.max acc (r.Trace.cpu + 1)) 1 records
  in
  let clocks = Array.init n_cpus (fun _ -> Array.make n_cpus 0) in
  let stamps = Array.make n [||] in
  let send_vc = Hashtbl.create 64 in
  let ack_vc = Hashtbl.create 64 in
  let send_idx = Hashtbl.create 64 in
  let begin_idx = Hashtbl.create 64 in
  let ack_idx = Hashtbl.create 64 in
  let bumps : (int, (int * int array) list ref) Hashtbl.t = Hashtbl.create 8 in
  let open_windows : (int, window) Hashtbl.t = Hashtbl.create 32 in
  let all_windows = ref [] in
  let resumes = Array.make n_cpus [] in (* User_resume indices per cpu, newest first *)
  let hits = ref [] in
  let join dst src = Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src in
  for i = 0 to n - 1 do
    let r = records.(i) in
    let c = r.Trace.cpu in
    if c >= 0 then begin
      let clk = clocks.(c) in
      (match r.Trace.event with
      | Trace.Ipi_begin { seq; _ } -> (
          match Hashtbl.find_opt send_vc seq with Some s -> join clk s | None -> ())
      | Trace.Acks_seen { seqs } ->
          List.iter
            (fun s ->
              match Hashtbl.find_opt ack_vc s with Some a -> join clk a | None -> ())
            seqs
      | Trace.Gen_read { mm_id; gen } -> (
          match Hashtbl.find_opt bumps mm_id with
          | Some l -> List.iter (fun (g, s) -> if g <= gen then join clk s) !l
          | None -> ())
      | _ -> ());
      clk.(c) <- clk.(c) + 1;
      let stamp = Array.copy clk in
      stamps.(i) <- stamp;
      match r.Trace.event with
      | Trace.Ipi_send { seq; _ } ->
          Hashtbl.replace send_vc seq stamp;
          Hashtbl.replace send_idx seq i;
          (* The send belongs to every window its initiator currently holds
             open (the syscall's outer window and the flush's own). *)
          (* tlblint R2 suppressed: each window is updated independently and
             at most once per event, so per-window [w_seqs] order is event
             order — hash order never reaches the analysis. *)
          (Hashtbl.iter
             (fun _ w -> if w.w_opener = c then w.w_seqs <- seq :: w.w_seqs)
             open_windows [@tlblint.allow "R2"])
      | Trace.Ipi_begin { seq; _ } ->
          Hashtbl.replace begin_idx seq i;
          (* tlblint R2 suppressed: keyed per-window/per-cpu first-write-wins
             update — independent across windows, so order cannot leak. *)
          (Hashtbl.iter
             (fun _ w ->
               if List.mem seq w.w_seqs && not (Hashtbl.mem w.w_handled c) then
                 Hashtbl.replace w.w_handled c i)
             open_windows [@tlblint.allow "R2"])
      | Trace.Ipi_ack { seq; _ } ->
          Hashtbl.replace ack_vc seq stamp;
          Hashtbl.replace ack_idx seq i
      | Trace.Gen_bump { mm_id; gen } ->
          let l =
            match Hashtbl.find_opt bumps mm_id with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace bumps mm_id l;
                l
          in
          l := (gen, stamp) :: !l
      | Trace.Flush_start { window; mm_id; start_vpn; span; full } ->
          let w =
            {
              w_id = window;
              w_mm = mm_id;
              w_start = start_vpn;
              w_span = span;
              w_full = full;
              w_opener = c;
              w_open_idx = i;
              w_close_idx = None;
              w_close_vc = None;
              w_seqs = [];
              w_handled = Hashtbl.create 4;
            }
          in
          Hashtbl.replace open_windows window w;
          all_windows := w :: !all_windows
      | Trace.Flush_done { window; _ } -> (
          match Hashtbl.find_opt open_windows window with
          | Some w ->
              w.w_close_idx <- Some i;
              w.w_close_vc <- Some stamp;
              Hashtbl.remove open_windows window
          | None -> ())
      | Trace.User_resume -> resumes.(c) <- i :: resumes.(c)
      | Trace.Stale_hit { mm_id; vpn; benign; detail } ->
          hits := (i, c, mm_id, vpn, benign, detail) :: !hits
      | _ -> ()
    end
  done;
  let windows = List.rev !all_windows in
  let resumed_between ~cpu ~lo ~hi =
    List.exists (fun idx -> idx > lo && idx < hi) resumes.(cpu)
  in
  (* Does window [w] prove hit [i] on [cpu] is still in flight? *)
  (* A window excuses a hit only when the hit provably lands inside it:
     the window opened first and the hit happens-before the window's close
     (through the hit CPU's later ack feeding the initiator's
     all-acks-seen). A close merely *concurrent* with the hit proves
     nothing — an initiator that never synchronizes with the hit CPU at
     all (the LATR strawman) must not excuse its stale hits forever. *)
  let excuses w ~i ~cpu ~stamp =
    w.w_open_idx < i
    && (match w.w_close_vc with None -> true | Some cvc -> vc_leq stamp cvc)
    &&
    match Hashtbl.find_opt w.w_handled cpu with
    | None -> true
    | Some h -> not (resumed_between ~cpu ~lo:h ~hi:i)
  in
  let chain_of w ~i =
    let idxs = ref [ w.w_open_idx; i ] in
    let add idx = if not (List.mem idx !idxs) then idxs := idx :: !idxs in
    (* Last PTE write to this range before the hit. *)
    (match records.(i).Trace.event with
    | Trace.Stale_hit { mm_id; vpn; _ } ->
        let best = ref None in
        for j = 0 to i - 1 do
          match records.(j).Trace.event with
          | Trace.Pte_write { mm_id = m'; vpn = v'; pages } ->
              if m' = mm_id && vpn >= v' && vpn < v' + pages then best := Some j
          | _ -> ()
        done;
        Option.iter add !best
    | _ -> ());
    List.iter
      (fun seq ->
        Option.iter add (Hashtbl.find_opt send_idx seq);
        Option.iter add (Hashtbl.find_opt begin_idx seq);
        Option.iter add (Hashtbl.find_opt ack_idx seq))
      w.w_seqs;
    (* The initiator's ack observation inside the window. *)
    let close_bound = match w.w_close_idx with Some d -> d | None -> i in
    for j = w.w_open_idx to Stdlib.min close_bound (n - 1) do
      match records.(j).Trace.event with
      | Trace.Acks_seen _ when records.(j).Trace.cpu = w.w_opener -> add j
      | _ -> ()
    done;
    Option.iter add w.w_close_idx;
    (* The return-to-user that expired the in-flight excuse, if any. *)
    let cpu = records.(i).Trace.cpu in
    (match Hashtbl.find_opt w.w_handled cpu with
    | Some h -> (
        add h;
        match List.rev (List.filter (fun idx -> idx > h && idx < i) resumes.(cpu)) with
        | idx :: _ -> add idx
        | [] -> ())
    | None -> ());
    List.map (fun idx -> (idx, records.(idx))) (List.sort_uniq Int.compare !idxs)
  in
  let proved = ref 0 and latent = ref 0 and genuine = ref 0 and disagree = ref 0 in
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (i, cpu, mm, vpn, benign, detail) ->
      let covering = List.filter (fun w -> covers w ~mm ~vpn && w.w_open_idx < i) windows in
      let excused = List.exists (fun w -> excuses w ~i ~cpu ~stamp:stamps.(i)) covering in
      let verdict =
        if excused then Proved_in_flight
        else if benign then Unordered_latent
        else Genuine
      in
      (match verdict with
      | Proved_in_flight -> incr proved
      | Unordered_latent -> incr latent
      | Genuine -> incr genuine);
      if excused <> benign then incr disagree;
      let key = (mm, vpn, cpu, verdict) in
      if (not (Hashtbl.mem seen key)) && Hashtbl.length seen < max_findings then begin
        Hashtbl.replace seen key ();
        (* For the chain prefer a closed covering window: it exhibits the
           completed flush the hit should have been ordered after. *)
        let w =
          let closed = List.filter (fun w -> Option.is_some w.w_close_idx) covering in
          match (List.rev closed, List.rev covering) with
          | w :: _, _ -> Some w
          | [], w :: _ -> Some w
          | [], [] -> None
        in
        let chain = match w with Some w -> chain_of w ~i | None -> [ (i, records.(i)) ] in
        findings :=
          {
            f_index = i;
            f_time = records.(i).Trace.time;
            f_cpu = cpu;
            f_mm = mm;
            f_vpn = vpn;
            f_verdict = verdict;
            f_detail = detail;
            f_chain = chain;
          }
          :: !findings
      end)
    (List.rev !hits);
  {
    events = n;
    stale_hits = List.length !hits;
    proved_in_flight = !proved;
    unordered_latent = !latent;
    genuine = !genuine;
    checker_disagreements = !disagree;
    findings = List.rev !findings;
  }

let analyze records = analyze_array (Array.of_list records)

(* Straight from the ring buffer, no intermediate list. *)
let analyze_trace trace =
  let n = Trace.length trace in
  let dummy = { Trace.time = 0; cpu = -1; actor = ""; event = Trace.Msg "" } in
  let records = Array.make n dummy in
  let i = ref 0 in
  Trace.iter trace (fun r ->
      records.(!i) <- r;
      incr i);
  analyze_array records

let verdict_name = function
  | Proved_in_flight -> "benign (proved in-flight)"
  | Unordered_latent -> "benign (in-flight window, unordered)"
  | Genuine -> "GENUINE RACE"

let pp_finding fmt f =
  Format.fprintf fmt "%s: cpu%d mm%d vpn %d at t=%d — %s@." (verdict_name f.f_verdict)
    f.f_cpu f.f_mm f.f_vpn f.f_time f.f_detail;
  Format.fprintf fmt "  happens-before chain:@.";
  List.iter
    (fun (idx, (r : Trace.record)) ->
      Format.fprintf fmt "    [%5d] t=%-8d %-6s %a@." idx r.Trace.time r.Trace.actor
        Trace.pp_event r.Trace.event)
    f.f_chain

let pp_report fmt r =
  Format.fprintf fmt
    "analyzed %d events: %d stale hit(s) — %d proved in-flight, %d unordered-latent, %d \
     genuine; %d checker disagreement(s)@."
    r.events r.stale_hits r.proved_in_flight r.unordered_latent r.genuine
    r.checker_disagreements;
  List.iter (fun f -> pp_finding fmt f) r.findings
