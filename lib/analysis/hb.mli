(** Vector-clock happens-before analysis of a protocol trace.

    Orders typed {!Sim.Trace} events by per-CPU program order plus the
    protocol's real synchronization edges — IPI delivery (send → handler
    begin), ack observation (ack → the initiator's all-acks-seen), and
    tlb_gen cacheline transfer (bump → any read of a generation at least as
    new) — then judges every stale TLB hit against the invalidation windows
    the checker opened:

    - {e proved in-flight}: the hit happens-before some covering window's
      close (it provably landed while the flush was still pending — the
      hit CPU's later ack feeds the initiator's all-acks-seen), or that
      window never closes; and the hit CPU has not completed a
      return-to-user since handling that window's IPI (the §3.4 contract);
    - {e unordered-latent}: the happens-before order cannot prove the hit
      in-flight, but the checker's wall-clock view called it benign — a
      latent window worth auditing, not a proven race;
    - {e genuine}: no covering window proves the hit in-flight and the
      wall-clock oracle confirms every covering flush had completed — a
      protocol race, reported with the event chain behind the verdict. *)

type verdict = Proved_in_flight | Unordered_latent | Genuine

type finding = {
  f_index : int;  (** record index in the trace *)
  f_time : int;
  f_cpu : int;
  f_mm : int;
  f_vpn : int;
  f_verdict : verdict;
  f_detail : string;  (** staleness reason from the checker *)
  f_chain : (int * Trace.record) list;
      (** the PTE write, window open/close, IPI send/begin/ack, ack
          observation, return-to-user and the hit itself, in trace order *)
}

type report = {
  events : int;
  stale_hits : int;
  proved_in_flight : int;
  unordered_latent : int;
  genuine : int;
  checker_disagreements : int;
      (** hits where the happens-before verdict and the checker's wall-clock
          benign flag differ *)
  findings : finding list;  (** deduplicated by (mm, vpn, cpu, verdict) *)
}

(** Analyze a chronological record list (as returned by
    {!Sim.Trace.records}). *)
val analyze : Trace.record list -> report

(** Analyze a trace buffer directly ({!Sim.Trace.iter} under the hood — no
    intermediate record list). *)
val analyze_trace : Trace.t -> report

val verdict_name : verdict -> string
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
