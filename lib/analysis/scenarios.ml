(* Canonical machines for the race detector: small, deterministic scenarios
   that exercise the shootdown protocol's concurrency. Each builder spawns
   its processes but does not run the engine — the caller (CLI or explorer)
   enables tracing, installs a chooser if it wants one, and runs. *)

let stop_after m ~delay stop =
  Machine.delay m delay;
  stop := true

(* Two CPUs, one page, one shootdown: a reader on cpu1 races a single
   madvise(DONTNEED) from cpu0. Small enough for exhaustive interleaving
   exploration. *)
let shootdown_2cpu ?(opts = Opts.all_general ~safe:true) ?(seed = 11L) () =
  let m = Machine.create ~topo:(Topology.flat 2) ~opts ~seed () in
  let mm = Machine.new_mm m in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:1 ~mm ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 1 in
      while not !stop do
        (try Access.touch_range m ~cpu:1 ~addr:!addr_box ~pages:1 ~write:false
         with Fault.Segfault _ -> ());
        Cpu.compute cpu_t ~quantum:50 100
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:1 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:1 ~write:true;
      addr_box := addr;
      Waitq.Completion.fire ready;
      Machine.delay m 500;
      Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages:1;
      stop_after m ~delay:3_000 stop);
  m

(* The paper machine with a cross-socket reader: the IPI latency between
   cpu0 (socket 0) and cpu14 (socket 1) guarantees a wide in-flight window,
   so the reader reliably hits stale entries while the shootdown is still
   pending — the benign race the analyzer should prove in-flight. *)
let early_ack_demo ?(opts = Opts.all_general ~safe:true) ?(rounds = 40) ?(seed = 5L) () =
  let m = Machine.create ~opts ~seed () in
  let mm = Machine.new_mm m in
  let stop = ref false in
  let reader_cpu = 14 in
  let pages = 4 in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:reader_cpu ~mm ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m reader_cpu in
      while not !stop do
        (try Access.touch_range m ~cpu:reader_cpu ~addr:!addr_box ~pages ~write:false
         with Fault.Segfault _ -> ());
        Cpu.compute cpu_t ~quantum:100 300
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      for _ = 1 to rounds do
        Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages;
        Access.touch_range m ~cpu:0 ~addr ~pages ~write:true
      done;
      stop_after m ~delay:20_000 stop);
  m
