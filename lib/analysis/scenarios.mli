(** Canonical scenarios for the race detector.

    Each builder returns a machine with its processes spawned but the
    engine not yet run: enable tracing and/or install a scheduling chooser,
    then [Kernel.run] it. *)

(** Two CPUs ({!Hw.Topology.flat} 2), one page, one
    [madvise(MADV_DONTNEED)] shootdown racing a reader — small enough for
    exhaustive interleaving exploration. Defaults: the four general paper
    optimizations in safe mode, seed 11. *)
val shootdown_2cpu : ?opts:Opts.t -> ?seed:int64 -> unit -> Machine.t

(** The paper's 2-socket machine with a cross-socket reader (cpu14) racing
    [rounds] madvise shootdowns from cpu0: the IPI latency guarantees stale
    hits inside the in-flight window, which the analyzer should prove
    benign. Defaults: all-general safe opts, 40 rounds, seed 5. *)
val early_ack_demo : ?opts:Opts.t -> ?rounds:int -> ?seed:int64 -> unit -> Machine.t
