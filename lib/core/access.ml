let max_fault_retries = 8

(* Translate and return the pfn backing [vaddr] — the value the fuzzer
   diffs between optimized and oracle runs. For a 2M entry the offset
   within the huge frame is added so the result names the exact 4k frame. *)
let rec access m ~cpu ~vaddr ~write ~attempt =
  if attempt > max_fault_retries then
    failwith
      (Printf.sprintf "Access: fault loop at vaddr %d on cpu %d (kernel bug)" vaddr cpu);
  let pcpu = Machine.percpu m cpu in
  let mm =
    match pcpu.Percpu.loaded_mm with
    | Some mm -> mm
    | None -> invalid_arg "Access: no address space loaded on this CPU"
  in
  let costs = m.Machine.costs in
  let vpn = Addr.vpn_of_addr vaddr in
  let tlb = Cpu.tlb (Machine.cpu m cpu) in
  let pcid =
    if m.Machine.opts.Opts.safe then Percpu.user_pcid pcpu.Percpu.curr_asid
    else Percpu.kernel_pcid pcpu.Percpu.curr_asid
  in
  (* Instruction boundary: pending interrupts preempt user execution here
     (user code is never interleaved with a handler, only preceded). *)
  Cpu.service_pending (Machine.cpu m cpu);
  Machine.delay m costs.Costs.mem_access;
  match Tlb.lookup tlb ~pcid ~vpn with
  | Some entry ->
      let pt = Mm_struct.page_table mm in
      (match
         Checker.check_hit m.Machine.checker ~now:(Machine.now m) ~cpu
           ~mm_id:(Mm_struct.id mm) ~vpn ~write ~entry ~pt
       with
      | `Clean -> ()
      | `Benign detail ->
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Stale_hit { mm_id = Mm_struct.id mm; vpn; benign = true; detail })
      | `Violation detail ->
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Stale_hit { mm_id = Mm_struct.id mm; vpn; benign = false; detail }));
      if write && not entry.Tlb.writable then begin
        (* Permission fault; the hardware invalidates the faulting entry. *)
        Tlb.drop tlb ~pcid ~vpn;
        Fault.handle m ~cpu ~mm ~vaddr ~write;
        access m ~cpu ~vaddr ~write ~attempt:(attempt + 1)
      end
      else entry.Tlb.pfn + (vpn - entry.Tlb.vpn)
  | None -> begin
      let pt = Mm_struct.page_table mm in
      match Page_table.walk pt ~vpn with
      | Some w
        when w.Page_table.pte.Pte.present
             && ((not write) || w.Page_table.pte.Pte.writable) ->
          let walk_cost =
            if Tlb.pwc_warm tlb then costs.Costs.page_walk else costs.Costs.page_walk_cold
          in
          Machine.delay m walk_cost;
          Tlb.warm_pwc tlb;
          let base =
            match w.Page_table.size with
            | Tlb.Four_k -> vpn
            | Tlb.Two_m -> vpn land lnot 511
          in
          Tlb.insert tlb
            {
              Tlb.vpn = base;
              pfn = w.Page_table.pte.Pte.pfn;
              pcid;
              size = w.Page_table.size;
              global = w.Page_table.pte.Pte.global;
              writable = w.Page_table.pte.Pte.writable;
              fractured = false;
              ck_ver = -1;
            };
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Tlb_fill { mm_id = Mm_struct.id mm; vpn; pcid });
          w.Page_table.pte.Pte.pfn + (vpn - base)
      | Some _ | None ->
          Fault.handle m ~cpu ~mm ~vaddr ~write;
          access m ~cpu ~vaddr ~write ~attempt:(attempt + 1)
    end

let translate m ~cpu ~vaddr ~write = access m ~cpu ~vaddr ~write ~attempt:0
let read m ~cpu ~vaddr = ignore (access m ~cpu ~vaddr ~write:false ~attempt:0)
let write m ~cpu ~vaddr = ignore (access m ~cpu ~vaddr ~write:true ~attempt:0)

let touch_range m ~cpu ~addr ~pages ~write =
  for i = 0 to pages - 1 do
    let vaddr = addr + (i * Addr.page_size) in
    ignore (access m ~cpu ~vaddr ~write ~attempt:0)
  done
