(** User-mode memory accesses through the TLB.

    The full translation path: TLB lookup under the current (user, when PTI
    is on) PCID; on a miss, a page walk priced by the paging-structure-cache
    temperature; on a permission or not-present condition, the page-fault
    handler and a retry. Every TLB {e hit} is verified against the page
    table by the {!Checker}, which is how unsafe flush protocols are caught.

    The calling process must be a user thread whose CPU has the target
    address space loaded (see {!Kernel.spawn_user}). *)

val read : Machine.t -> cpu:int -> vaddr:int -> unit
val write : Machine.t -> cpu:int -> vaddr:int -> unit

(** Like {!read}/{!write} but returns the pfn the access observed (through
    the TLB or the walk that refilled it) — the per-CPU observable the
    differential fuzzer diffs between optimized and oracle runs. *)
val translate : Machine.t -> cpu:int -> vaddr:int -> write:bool -> int

(** Touch [pages] consecutive pages starting at [addr] (one access each). *)
val touch_range : Machine.t -> cpu:int -> addr:int -> pages:int -> write:bool -> unit
