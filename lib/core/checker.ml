type violation = {
  v_time : int;
  v_cpu : int;
  v_mm : int;
  v_vpn : int;
  v_detail : string;
}

type token = int

type result = [ `Clean | `Benign of string | `Violation of string ]

type t = {
  mutable on : bool;
  windows : (int, Flush_info.t) Hashtbl.t; (* token -> info *)
  by_mm : (int, (int, Flush_info.t) Hashtbl.t) Hashtbl.t; (* mm_id -> token -> info *)
  mutable next_token : int;
  mutable viols : violation list;
  mutable n_viols : int;
  mutable benign : int;
  mutable n_checks : int;
  max_recorded : int;
}

let default_max_recorded_violations = 1000

let create ?(enabled = true) ?(max_recorded = default_max_recorded_violations) () =
  {
    on = enabled;
    windows = Hashtbl.create 16;
    by_mm = Hashtbl.create 16;
    next_token = 0;
    viols = [];
    n_viols = 0;
    benign = 0;
    n_checks = 0;
    max_recorded;
  }

let enabled t = t.on
let set_enabled t b = t.on <- b
let token_id token = token

let begin_invalidation t (info : Flush_info.t) =
  t.next_token <- t.next_token + 1;
  if t.on then begin
    Hashtbl.replace t.windows t.next_token info;
    let per_mm =
      match Hashtbl.find_opt t.by_mm info.Flush_info.mm_id with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 4 in
          Hashtbl.replace t.by_mm info.Flush_info.mm_id tbl;
          tbl
    in
    Hashtbl.replace per_mm t.next_token info
  end;
  t.next_token

let end_invalidation t token =
  match Hashtbl.find_opt t.windows token with
  | None -> ()
  | Some info ->
      Hashtbl.remove t.windows token;
      (match Hashtbl.find_opt t.by_mm info.Flush_info.mm_id with
      | None -> ()
      | Some per_mm ->
          Hashtbl.remove per_mm token;
          if Hashtbl.length per_mm = 0 then Hashtbl.remove t.by_mm info.Flush_info.mm_id)

exception Covering_window

(* The hot check_hit path calls this on every stale hit: O(1) out when no
   window is open anywhere, then look only at the mm's own windows and stop
   at the first match instead of folding over everything in flight. *)
(* tlblint R2 suppressed: pure existence check — the iteration raises on the
   first covering window and returns a bool, so hash order cannot leak. *)
let[@tlblint.allow "R2"] covered t ~mm_id ~vpn =
  Hashtbl.length t.by_mm > 0
  &&
  match Hashtbl.find_opt t.by_mm mm_id with
  | None -> false
  | Some per_mm -> (
      try
        Hashtbl.iter
          (fun _ info -> if Flush_info.covers info ~vpn then raise_notrace Covering_window)
          per_mm;
        false
      with Covering_window -> true)

let record t v =
  t.n_viols <- t.n_viols + 1;
  if t.n_viols <= t.max_recorded then t.viols <- v :: t.viols

(* Width of the mm-id field in an entry's validation stamp. *)
let mm_bits = 20
let mm_limit = 1 lsl mm_bits

let check_hit t ~now ~cpu ~mm_id ~vpn ~write ~entry ~pt =
  if not t.on then `Clean
  else begin
    t.n_checks <- t.n_checks + 1;
    (* Fast path: the entry was validated clean against this exact
       page-table version for this mm, and nothing changed since (every
       mutation bumps the version) — skip the software walk entirely. The
       stamp packs (version, mm_id) so an entry revalidated under a
       recycled ASID slot, or against a different mm's table at the same
       version, can never false-match. *)
    let stamp =
      if mm_id < mm_limit then (Page_table.version pt lsl mm_bits) lor mm_id else -1
    in
    if stamp >= 0 && entry.Tlb.ck_ver = stamp then `Clean
    else begin
      match Page_table.walk pt ~vpn with
      | None ->
          let reason = "translation removed from page table" in
          if covered t ~mm_id ~vpn then begin
            t.benign <- t.benign + 1;
            `Benign reason
          end
          else begin
            record t
              { v_time = now; v_cpu = cpu; v_mm = mm_id; v_vpn = vpn; v_detail = reason };
            `Violation reason
          end
      | Some (w : Page_table.walk) ->
          let walk_base =
            match w.size with Tlb.Four_k -> vpn | Tlb.Two_m -> vpn land lnot 511
          in
          let walk_pfn = w.pte.Pte.pfn + (vpn - walk_base) in
          let entry_pfn = entry.Tlb.pfn + (vpn - entry.Tlb.vpn) in
          let stale_reason =
            if entry_pfn <> walk_pfn then Some "page remapped to a different frame"
            else if write && entry.Tlb.writable && not w.pte.Pte.writable then
              Some "write through a since-write-protected mapping"
            else None
          in
          (match stale_reason with
          | None ->
              (* Stamp only when a future hit of either kind would also be
                 clean at this version: a writable entry over a
                 write-protected PTE is clean for reads but must keep
                 walking so a later write still gets flagged. *)
              if stamp >= 0 && ((not entry.Tlb.writable) || w.pte.Pte.writable) then
                entry.Tlb.ck_ver <- stamp;
              `Clean
          | Some reason ->
              if covered t ~mm_id ~vpn then begin
                t.benign <- t.benign + 1;
                `Benign reason
              end
              else begin
                record t
                  {
                    v_time = now;
                    v_cpu = cpu;
                    v_mm = mm_id;
                    v_vpn = vpn;
                    v_detail = reason;
                  };
                `Violation reason
              end)
    end
  end

let violations t = List.rev t.viols
let violation_count t = t.n_viols
let recorded_violation_count t = List.length t.viols
let benign_races t = t.benign
let checks t = t.n_checks
let open_windows t = Hashtbl.length t.windows

(* Window entries across the whole per-mm index; must equal [open_windows]
   at all times or the index leaks (regression: window-lifecycle tests). *)
(* tlblint R2 suppressed: commutative integer sum — order-independent. *)
let[@tlblint.allow "R2"] by_mm_entries t =
  Hashtbl.fold (fun _ per_mm acc -> acc + Hashtbl.length per_mm) t.by_mm 0

let max_recorded t = t.max_recorded

let clear t =
  Hashtbl.reset t.windows;
  Hashtbl.reset t.by_mm;
  t.viols <- [];
  t.n_viols <- 0;
  t.benign <- 0;
  t.n_checks <- 0

let pp_violation fmt v =
  Format.fprintf fmt "t=%d cpu%d mm%d vpn=%d: %s" v.v_time v.v_cpu v.v_mm v.v_vpn v.v_detail
