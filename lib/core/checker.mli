(** TLB-coherence safety oracle.

    The paper's central correctness argument (§2.3.2, §3.2, §4.2) is that a
    stale TLB entry is harmless {e while} its invalidation is still
    in-flight — the initiator has not yet returned to its caller — but
    becomes a correctness/safety violation the moment the kernel behaves as
    if the flush completed (frames may be recycled). This module encodes
    exactly that invariant:

    - when the kernel changes PTEs it opens an invalidation window
      ({!begin_invalidation});
    - when the flush operation returns to its caller the window closes
      ({!end_invalidation});
    - every user-mode TLB {e hit} is checked against the live page table:
      a stale hit inside an open window is a benign race (x86 permits it),
      a stale hit with no covering window is a violation.

    Stock protocols and all six paper optimizations run violation-free; the
    LATR-style [unsafe_lazy_batching] strawman does not — which is the
    paper's point. *)

type t

type violation = {
  v_time : int;
  v_cpu : int;
  v_mm : int;
  v_vpn : int;
  v_detail : string;
}

type token

type result = [ `Clean | `Benign of string | `Violation of string ]
(** Classification of one checked hit: [`Clean] means the entry matches the
    live page table; the payload of the other two is the staleness reason. *)

(** [max_recorded] bounds the list kept by {!violations}; the total count
    ({!violation_count}) keeps growing past it. *)
val create : ?enabled:bool -> ?max_recorded:int -> unit -> t

val default_max_recorded_violations : int

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Open an invalidation window for the PTE change described by [info]. *)
val begin_invalidation : t -> Flush_info.t -> token

(** Close the window: from now on a stale hit covered only by this window
    is a violation. Idempotent. *)
val end_invalidation : t -> token -> unit

(** Stable integer id of a window token — what {!Sim.Trace.Flush_start}
    records carry so the analysis layer can pair open/close events. *)
val token_id : token -> int

(** Is some open window covering [vpn] of [mm_id]? Short-circuits on the
    first covering window; windows are indexed per-mm. *)
val covered : t -> mm_id:int -> vpn:int -> bool

(** Verify a user-mode TLB hit on [cpu] against the live page table.
    Records a violation (or counts a benign race) if the entry is stale, and
    returns the classification so the caller can trace it.

    The software walk of [pt] is skipped when [entry] was already validated
    clean against [pt]'s current {!Mm.Page_table.version} (stamped into
    [entry.ck_ver]) — every page-table mutation bumps the version, so an
    unchanged stamp proves an unchanged verdict. *)
val check_hit :
  t ->
  now:int ->
  cpu:int ->
  mm_id:int ->
  vpn:int ->
  write:bool ->
  entry:Tlb.entry ->
  pt:Page_table.t ->
  result

val violations : t -> violation list
val violation_count : t -> int

(** Violations actually kept (capped at [max_recorded]); always
    [min (violation_count t) (max_recorded t)]. *)
val recorded_violation_count : t -> int

(** The [max_recorded] cap this checker was created with. *)
val max_recorded : t -> int

(** Stale hits excused by an open window. *)
val benign_races : t -> int

(** Total hits checked. *)
val checks : t -> int

(** Open windows right now (should be 0 at quiescence). *)
val open_windows : t -> int

(** Total entries in the per-mm window index; equals {!open_windows} unless
    the index has leaked (closed windows must leave both tables). *)
val by_mm_entries : t -> int

val clear : t -> unit
val pp_violation : Format.formatter -> violation -> unit
