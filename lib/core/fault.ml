exception Segfault of { sf_cpu : int; sf_vaddr : int; sf_write : bool }

let current_pcids m pcpu =
  let kernel = Percpu.kernel_pcid pcpu.Percpu.curr_asid in
  if m.Machine.opts.Opts.safe then (kernel, Percpu.user_pcid pcpu.Percpu.curr_asid)
  else (kernel, kernel)

(* Install a freshly built PTE unless another CPU faulted the page in
   while we were allocating/copying (the pte_none re-check Linux performs
   under the page-table lock). Returns the frame to release on a lost
   race, if the caller allocated one. *)
let map_unless_raced pt ~vpn ~size pte ~owned_frame ~frames =
  match Page_table.walk pt ~vpn with
  | Some _ -> Option.iter (Frame_alloc.free frames) owned_frame
  | None -> Page_table.map pt ~vpn ~size pte

let demand_map m ~mm ~vma ~vpn ~write =
  let costs = m.Machine.costs in
  let pt = Mm_struct.page_table mm in
  let frames = Mm_struct.frames mm in
  match vma.Vma.backing with
  | Vma.Anonymous when vma.Vma.page_size = Tlb.Two_m ->
      (* Hugepage fault: one 2 MiB mapping covers the whole aligned run. *)
      let base = vpn land lnot (Addr.pages_per_huge - 1) in
      (match Page_table.walk pt ~vpn:base with
      | Some _ -> ()
      | None ->
          let pfn = Frame_alloc.alloc_huge frames in
          Machine.delay m (costs.Costs.page_zero * Addr.pages_per_huge);
          (match Page_table.walk pt ~vpn:base with
          | Some _ -> Frame_alloc.free_huge frames pfn
          | None ->
              Page_table.map pt ~vpn:base ~size:Tlb.Two_m
                {
                  (Pte.user_data ~pfn) with
                  writable = vma.Vma.writable;
                  executable = vma.Vma.executable;
                }))
  | Vma.Anonymous ->
      let pfn = Frame_alloc.alloc frames in
      Machine.delay m costs.Costs.page_zero;
      map_unless_raced pt ~vpn ~size:Tlb.Four_k
        {
          (Pte.user_data ~pfn) with
          writable = vma.Vma.writable;
          executable = vma.Vma.executable;
        }
        ~owned_frame:(Some pfn) ~frames
  | Vma.File_shared _ ->
      let file, index = Option.get (Vma.file_page vma ~vpn) in
      let fresh = not (File.cached file ~index) in
      let pfn = File.frame_of_page file ~index in
      if fresh then Machine.delay m costs.Costs.io_page;
      (* The mapping takes its own reference on the page-cache frame. *)
      Frame_alloc.ref_get frames pfn;
      (* Map writable only on a write fault so writeback's write-protect /
         re-dirty cycle is observable (the msync/fdatasync path). *)
      let writable = vma.Vma.writable && write in
      map_unless_raced pt ~vpn ~size:Tlb.Four_k
        {
          (Pte.user_data ~pfn) with
          writable;
          dirty = write;
          executable = vma.Vma.executable;
        }
        ~owned_frame:(Some pfn) ~frames;
      if write then File.mark_dirty file ~index
  | Vma.File_private _ ->
      let file, index = Option.get (Vma.file_page vma ~vpn) in
      let fresh = not (File.cached file ~index) in
      let src_pfn = File.frame_of_page file ~index in
      if fresh then Machine.delay m costs.Costs.io_page;
      if write then begin
        (* do_cow_fault: no stale translation exists, so copying directly
           into a private page needs no TLB flush at all. *)
        let pfn = Frame_alloc.alloc frames in
        Machine.delay m costs.Costs.page_copy;
        map_unless_raced pt ~vpn ~size:Tlb.Four_k
          { (Pte.user_data ~pfn) with executable = vma.Vma.executable; dirty = true }
          ~owned_frame:(Some pfn) ~frames
      end
      else begin
        (* Map the page-cache frame read-only and COW-marked, with its own
           reference. *)
        Frame_alloc.ref_get frames src_pfn;
        map_unless_raced pt ~vpn ~size:Tlb.Four_k
          {
            (Pte.user_data ~pfn:src_pfn) with
            writable = false;
            cow = true;
            executable = vma.Vma.executable;
          }
          ~owned_frame:(Some src_pfn) ~frames
      end

let cow_break m ~cpu ~mm ~vma ~vpn (old : Pte.t) =
  let costs = m.Machine.costs and opts = m.Machine.opts and stats = m.Machine.stats in
  stats.Machine.cow_breaks <- stats.Machine.cow_breaks + 1;
  let pt = Mm_struct.page_table mm in
  (* The PTE changes before the flush API runs: keep the checker's
     invalidation window open across the whole break. *)
  let window =
    Machine.begin_window m ~cpu
      (Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:vpn ~pages:1
         ~new_tlb_gen:(Mm_struct.tlb_gen mm) ())
  in
  Fun.protect
    ~finally:(fun () -> Machine.end_window m ~cpu ~mm_id:(Mm_struct.id mm) window)
  @@ fun () ->
  let new_pfn = Frame_alloc.alloc (Mm_struct.frames mm) in
  Machine.delay m costs.Costs.page_copy;
  (* The CPU may speculatively re-walk and re-cache the stale PTE between
     the fault and the PTE update (§4.1) — the reason a flush (or the dummy
     write) is needed even though faults invalidate the faulting entry. *)
  if Rng.bool m.Machine.rng ~p:opts.Opts.spec_pte_recache_p then begin
    let pcpu = Machine.percpu m cpu in
    let _, pcid = current_pcids m pcpu in
    Tlb.insert
      (Cpu.tlb (Machine.cpu m cpu))
      {
        Tlb.vpn;
        pfn = old.Pte.pfn;
        pcid;
        size = Tlb.Four_k;
        global = false;
        writable = false;
        fractured = false;
              ck_ver = -1;
      }
  end;
  (* Re-check under the "page-table lock": another CPU may have broken the
     COW while we copied; if so, discard our copy and take no flush. *)
  let raced = ref false in
  (match
     Page_table.update pt ~vpn ~f:(fun pte ->
         if pte.Pte.cow then Pte.break_cow pte ~new_pfn
         else begin
           raced := true;
           pte
         end)
   with
  | Some _ -> ()
  | None -> raced := true);
  ignore vma;
  if !raced then Frame_alloc.free (Mm_struct.frames mm) new_pfn
  else begin
    (* This mapping's reference moves to the private copy. *)
    if Machine.tracing m then
      Machine.trace_event m ~cpu
        (Trace.Pte_write { mm_id = Mm_struct.id mm; vpn; pages = 1 });
    Frame_alloc.free (Mm_struct.frames mm) old.Pte.pfn;
    Shootdown.flush_tlb_page_cow m ~from:cpu ~mm ~vpn ~executable:old.Pte.executable
  end

let write_notify ~mm ~vma ~vpn =
  (* Shared-file write to a clean, write-protected page: upgrading
     permissions needs no shootdown — remote CPUs holding the read-only
     entry take their own spurious fault. The local stale entry was already
     dropped by the faulting hardware. *)
  let pt = Mm_struct.page_table mm in
  (match Page_table.update pt ~vpn ~f:(fun pte -> Pte.mark_dirty { pte with Pte.writable = true }) with
  | Some _ -> ()
  | None -> assert false);
  match Vma.file_page vma ~vpn with
  | Some (file, index) -> File.mark_dirty file ~index
  | None -> ()

let handle m ~cpu ~mm ~vaddr ~write =
  let costs = m.Machine.costs and opts = m.Machine.opts and stats = m.Machine.stats in
  stats.Machine.faults <- stats.Machine.faults + 1;
  let cpu_t = Machine.cpu m cpu in
  let was_user = Cpu.in_user cpu_t in
  Cpu.set_in_user cpu_t false;
  Fun.protect
    ~finally:(fun () ->
      (* Resume whichever mode faulted. Returning to user runs the full
         IRQ-disabled exit protocol so deferred user flushes (e.g. from the
         CoW shootdown) cannot be skipped by a racing IPI. *)
      if was_user then Shootdown.return_to_user m ~cpu ~has_stack:true)
    (fun () ->
      Machine.delay m
        (costs.Costs.fault_fixed
        + if opts.Opts.safe then costs.Costs.fault_fixed_safe_extra else 0);
      let vpn = Addr.vpn_of_addr vaddr in
      let sem = Mm_struct.mmap_sem mm in
      Rwsem.with_read sem (fun () ->
          match Mm_struct.find_vma mm ~vpn with
          | None -> raise (Segfault { sf_cpu = cpu; sf_vaddr = vaddr; sf_write = write })
          | Some vma ->
              if write && not vma.Vma.writable then
                raise (Segfault { sf_cpu = cpu; sf_vaddr = vaddr; sf_write = write });
              let pt = Mm_struct.page_table mm in
              (match Page_table.walk pt ~vpn with
              | None -> demand_map m ~mm ~vma ~vpn ~write
              | Some w when write && not w.Page_table.pte.Pte.writable ->
                  if w.Page_table.pte.Pte.cow then
                    cow_break m ~cpu ~mm ~vma ~vpn w.Page_table.pte
                  else write_notify ~mm ~vma ~vpn
              | Some _ ->
                  (* Spurious: another CPU already resolved it. *)
                  ())))
