(* tlblint: proven-bounds — every Array.unsafe_get/set on the pagecache and
   dirty tables is dominated by [check t index], which rejects indices
   outside [0, size); the tables are allocated with exactly [size] slots. *)
(* Page indices are dense (0 .. size_pages-1), so the pagecache and dirty
   set are flat per-page tables rather than hashtables: mmap-heavy
   workloads (Apache serves every request out of [frame_of_page]) hit
   these once per faulted page, and generic hashing was a measurable share
   of that path. [drop_cache] and [dirty_in_range] now visit pages in
   ascending index order. *)
type t = {
  frames : Frame_alloc.t;
  file_name : string;
  size : int;
  pagecache : int array;  (* page index -> pfn, -1 = not cached *)
  dirty : Bytes.t;  (* 1 byte per page: 0 clean, 1 dirty *)
  mutable n_dirty : int;
}

let create frames ~name ~size_pages =
  if size_pages <= 0 then invalid_arg "File.create: size must be positive";
  {
    frames;
    file_name = name;
    size = size_pages;
    pagecache = Array.make size_pages (-1);
    dirty = Bytes.make size_pages '\000';
    n_dirty = 0;
  }

let name t = t.file_name
let size_pages t = t.size

let check t index =
  if index < 0 || index >= t.size then
    invalid_arg (Printf.sprintf "File %s: page %d out of range [0,%d)" t.file_name index t.size)

let frame_of_page t ~index =
  check t index;
  let pfn = Array.unsafe_get t.pagecache index in
  if pfn >= 0 then pfn
  else begin
    let pfn = Frame_alloc.alloc t.frames in
    Array.unsafe_set t.pagecache index pfn;
    pfn
  end

let cached t ~index =
  check t index;
  t.pagecache.(index) >= 0

let mark_dirty t ~index =
  check t index;
  if Bytes.unsafe_get t.dirty index = '\000' then begin
    Bytes.unsafe_set t.dirty index '\001';
    t.n_dirty <- t.n_dirty + 1
  end

let clear_dirty t ~index =
  check t index;
  if Bytes.unsafe_get t.dirty index = '\001' then begin
    Bytes.unsafe_set t.dirty index '\000';
    t.n_dirty <- t.n_dirty - 1
  end

let is_dirty t ~index =
  check t index;
  Bytes.unsafe_get t.dirty index = '\001'

let dirty_in_range t ~index ~count =
  let lo = Stdlib.max 0 index and hi = Stdlib.min t.size (index + count) in
  let acc = ref [] in
  for i = hi - 1 downto lo do
    if Bytes.unsafe_get t.dirty i = '\001' then acc := i :: !acc
  done;
  !acc

let dirty_count t = t.n_dirty

let drop_cache t =
  for i = 0 to t.size - 1 do
    let pfn = Array.unsafe_get t.pagecache i in
    if pfn >= 0 then begin
      Frame_alloc.free t.frames pfn;
      Array.unsafe_set t.pagecache i (-1)
    end
  done;
  Bytes.fill t.dirty 0 t.size '\000';
  t.n_dirty <- 0
