(* Protocol-independent flush primitives shared by every shootdown backend
   (lib/core/proto_*.ml): the generation-tracked flush function, the local
   full flush, the §3.4 deferred user-PCID machinery and the phase-metering
   helpers. Anything a backend may legitimately differ on is a parameter
   ([~user], [~eager_user]) — the backends themselves carry the policy (see
   protocol.mli). *)

let actor cpu = Printf.sprintf "cpu%d" cpu

(* [actor] formats eagerly, so check enablement before building it. *)
let tracef m ~cpu fmt =
  let trace = m.Machine.trace in
  if Trace.enabled trace then Trace.emitf trace ~actor:(actor cpu) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

(* How the user-PCID half of a flush is handled under PTI. *)
type user_flush = Eager | Defer | Skip

(* --- phase metering helpers (DESIGN.md §10) --- *)

let kind_of_result = function
  | `Ranged -> Machine.flush_kind_invlpg
  | `Full -> Machine.flush_kind_cr3
  | `Skipped -> Machine.flush_kind_skipped

(* Callers gate on [Machine.metering]. *)
let record_flush m ~rank ~kind dt =
  Metrics.record_cycles
    m.Machine.phases.Machine.flush.(Machine.flush_index ~rank ~kind)
    dt

(* Meter initiator prep (selection + enqueue + ICR writes) against the
   farthest target, same attribution rule as the ack wait. Callers gate on
   [Machine.metering]. *)
let record_prep m ~from ~targets dt =
  let far =
    Cpuset.fold (fun acc c -> Stdlib.max acc (Machine.distance_rank m from c)) 0 targets
  in
  Metrics.record_cycles m.Machine.phases.Machine.prep.(far) dt

(* Full local flush of the kernel PCID. The user PCID full flush is deferred
   to the next return-to-user CR3 load (stock Linux behaviour) unless the
   backend never defers anything ([~eager_user:true], the oracle). *)
let local_full_flush m ~cpu ~eager_user pcpu =
  let tlb = Cpu.tlb (Machine.cpu m cpu) in
  Machine.delay m m.Machine.costs.Costs.cr3_write;
  Tlb.cr3_flush tlb ~pcid:(Percpu.kernel_pcid pcpu.Percpu.curr_asid);
  if m.Machine.opts.Opts.safe then begin
    if eager_user then begin
      Machine.delay m m.Machine.costs.Costs.cr3_write;
      Tlb.cr3_flush tlb ~pcid:(Percpu.user_pcid pcpu.Percpu.curr_asid)
    end
    else pcpu.Percpu.pending_user <- Percpu.Full_flush
  end

let flush_tlb_func_impl m ~cpu ~user ~eager_user (info : Flush_info.t) =
  let opts = m.Machine.opts and costs = m.Machine.costs and stats = m.Machine.stats in
  let pcpu = Machine.percpu m cpu in
  let tlb = Cpu.tlb (Machine.cpu m cpu) in
  match pcpu.Percpu.loaded_mm with
  | Some mm when Mm_struct.id mm = info.Flush_info.mm_id ->
      let slot = pcpu.Percpu.asids.(pcpu.Percpu.curr_asid) in
      if slot.Percpu.gen_seen >= info.Flush_info.new_tlb_gen then begin
        stats.Machine.flush_requests_skipped <- stats.Machine.flush_requests_skipped + 1;
        `Skipped
      end
      else begin
        (* Read the mm's current generation (one contended line). *)
        Machine.charge_read m (Mm_struct.line mm) ~by:cpu;
        let latest_gen = Mm_struct.tlb_gen mm in
        if Machine.tracing m then
          Machine.trace_event m ~cpu
            (Trace.Gen_read { mm_id = info.Flush_info.mm_id; gen = latest_gen });
        let behind = info.Flush_info.new_tlb_gen > slot.Percpu.gen_seen + 1 in
        if info.Flush_info.full
           || Flush_info.nr_entries info > opts.Opts.full_flush_threshold
           || behind
        then begin
          (* Full flush; fast-forward to the latest generation so queued
             requests can be skipped (the §5.2 "flush storm" shortcut). *)
          if behind && not info.Flush_info.full then
            stats.Machine.full_flush_fallbacks <- stats.Machine.full_flush_fallbacks + 1;
          local_full_flush m ~cpu ~eager_user pcpu;
          slot.Percpu.gen_seen <- Stdlib.max latest_gen info.Flush_info.new_tlb_gen;
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Tlb_flush
                 {
                   mm_id = info.Flush_info.mm_id;
                   full = true;
                   entries = 0;
                   gen = slot.Percpu.gen_seen;
                 });
          `Full
        end
        else begin
          let vpns = Flush_info.vpns info in
          let kernel_pcid = Percpu.kernel_pcid pcpu.Percpu.curr_asid in
          List.iter
            (fun vpn ->
              Machine.delay m costs.Costs.invlpg;
              Tlb.invlpg tlb ~current_pcid:kernel_pcid ~vpn)
            vpns;
          if opts.Opts.safe then begin
            match user with
            | Eager ->
                let user_pcid = Percpu.user_pcid pcpu.Percpu.curr_asid in
                List.iter
                  (fun vpn ->
                    Machine.delay m costs.Costs.invpcid_single;
                    Tlb.invpcid_addr tlb ~pcid:user_pcid ~vpn)
                  vpns
            | Defer ->
                stats.Machine.in_context_deferrals <- stats.Machine.in_context_deferrals + 1;
                Percpu.defer_user_flush pcpu info ~threshold:opts.Opts.full_flush_threshold
            | Skip -> ()
          end;
          slot.Percpu.gen_seen <- info.Flush_info.new_tlb_gen;
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Tlb_flush
                 {
                   mm_id = info.Flush_info.mm_id;
                   full = false;
                   entries = List.length vpns;
                   gen = slot.Percpu.gen_seen;
                 });
          `Ranged
        end
      end
  | Some _ | None ->
      (* The address space is not loaded here (raced with a context
         switch); the switch-in generation check covers it. *)
      stats.Machine.flush_requests_skipped <- stats.Machine.flush_requests_skipped + 1;
      `Skipped

(* Default user-flush policy for a CPU that is not the initiator (or an
   initiator without the concurrent-flush overlap): defer under §3.4 unless
   page tables are being freed. *)
let default_user_policy m (info : Flush_info.t) =
  if m.Machine.opts.Opts.in_context_flush && not info.Flush_info.freed_tables then Defer
  else Eager

let flush_pending_user m ~cpu ~has_stack =
  let opts = m.Machine.opts and costs = m.Machine.costs in
  if opts.Opts.safe then begin
    let pcpu = Machine.percpu m cpu in
    let tlb = Cpu.tlb (Machine.cpu m cpu) in
    let user_pcid = Percpu.user_pcid pcpu.Percpu.curr_asid in
    let pending = Percpu.take_pending_user pcpu in
    let t0 = Machine.now m in
    (match pending with
    | Percpu.No_flush -> ()
    | (Percpu.Full_flush | Percpu.Ranged _) when opts.Opts.bug_skip_deferred_flush ->
        (* Injected protocol bug for the race detector: the deferred user
           flush is silently dropped, leaving stale user-PCID entries live
           past return-to-user. *)
        tracef m ~cpu "BUG: deferred user flush dropped"
    | Percpu.Full_flush ->
        (* The return-to-user CR3 load simply skips the NOFLUSH bit: the
           whole user PCID is invalidated for free. *)
        Tlb.cr3_flush tlb ~pcid:user_pcid;
        if Machine.tracing m then
          Machine.trace_event m ~cpu
            (Trace.Deferred_flush_exec { full = true; entries = 0 })
    | Percpu.Ranged info ->
        if not has_stack then begin
          (* No stack to run the INVLPG loop on (e.g. IRET return path). *)
          Tlb.cr3_flush tlb ~pcid:user_pcid;
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Deferred_flush_exec { full = true; entries = 0 })
        end
        else begin
          let vpns = Flush_info.vpns info in
          List.iter
            (fun vpn ->
              Machine.delay m costs.Costs.invlpg;
              Tlb.invlpg tlb ~current_pcid:user_pcid ~vpn)
            vpns;
          (* Spectre-v1: the flush loop's bound must not be speculated
             past while stale user PTEs linger. *)
          Machine.delay m costs.Costs.lfence;
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Deferred_flush_exec { full = false; entries = List.length vpns })
        end);
    match pending with
    | Percpu.No_flush -> ()
    | Percpu.Full_flush | Percpu.Ranged _ ->
        (* The §3.4 deferred-to-return execution runs on the deferring CPU
           itself; a near-zero sample (the free CR3 NOFLUSH-bit skip) is
           the optimization's whole point and worth seeing in the p50. *)
        if Machine.metering m then
          record_flush m ~rank:0 ~kind:Machine.flush_kind_deferred (Machine.now m - t0)
  end

let return_to_user m ~cpu ~has_stack =
  let cpu_t = Machine.cpu m cpu in
  Cpu.quiesce_and_mask cpu_t;
  flush_pending_user m ~cpu ~has_stack;
  Machine.trace_event m ~cpu Trace.User_resume;
  Cpu.set_in_user cpu_t true;
  Cpu.irq_enable cpu_t
