(** Protocol-independent flush primitives shared by every shootdown backend:
    the generation-tracked flush function, the local full flush, the §3.4
    deferred user-PCID machinery and the phase-metering helpers. The
    {!Protocol} backends compose these; {!Shootdown} re-exports the
    user-facing entry points. *)

(** Printf-style trace line attributed to [cpu]; formats nothing when
    tracing is off. *)
val tracef :
  Machine.t -> cpu:int -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** How the user-PCID half of a flush is handled under PTI. *)
type user_flush = Eager | Defer | Skip

(** {!Machine.phases}[.flush] kind index for a flush result. *)
val kind_of_result : [ `Skipped | `Full | `Ranged ] -> int

(** Record one flush-execution span; callers gate on {!Machine.metering}. *)
val record_flush : Machine.t -> rank:int -> kind:int -> int -> unit

(** Record one initiator-prep span, attributed to the farthest target;
    callers gate on {!Machine.metering}. *)
val record_prep : Machine.t -> from:int -> targets:Cpuset.t -> int -> unit

(** Full local flush of the kernel PCID. Under PTI the user-PCID full flush
    is deferred to return-to-user ([pending_user <- Full_flush]) unless
    [eager_user] — the oracle's never-defer policy — flushes it on the spot. *)
val local_full_flush : Machine.t -> cpu:int -> eager_user:bool -> Percpu.t -> unit

(** The responder flush function with Linux's generation bookkeeping: skip
    if [cpu]'s generation is current, full-flush (fast-forwarding) when the
    request is full/over-threshold/multiple generations behind, otherwise
    flush the range. [user] picks the §3.4 user-PCID policy for the ranged
    path; [eager_user] the full-flush policy (see {!local_full_flush}). *)
val flush_tlb_func_impl :
  Machine.t ->
  cpu:int ->
  user:user_flush ->
  eager_user:bool ->
  Flush_info.t ->
  [ `Skipped | `Full | `Ranged ]

(** [Defer] under §3.4 (unless page tables are freed), else [Eager]. *)
val default_user_policy : Machine.t -> Flush_info.t -> user_flush

(** Execute the pending deferred user-PCID flush (§3.4); see
    {!Shootdown.flush_pending_user}. *)
val flush_pending_user : Machine.t -> cpu:int -> has_stack:bool -> unit

(** The return-to-user sequence; see {!Shootdown.return_to_user}. *)
val return_to_user : Machine.t -> cpu:int -> has_stack:bool -> unit
