(** flush_tlb_info: the work descriptor a shootdown carries.

    Mirrors Linux's struct: the address range to invalidate, the stride
    (page size), whether page tables are being freed (disables early ack),
    and the target generation of the owning address space. *)

type t = {
  mm_id : int;
  start_vpn : int;  (** first 4 KiB VPN; meaningless when [full] *)
  pages : int;  (** number of stride-sized pages; meaningless when [full] *)
  full : bool;  (** flush everything for this address space *)
  stride : Tlb.page_size;
  freed_tables : bool;
  new_tlb_gen : int;
}

val ranged :
  mm_id:int -> start_vpn:int -> pages:int -> ?stride:Tlb.page_size ->
  ?freed_tables:bool -> new_tlb_gen:int -> unit -> t

val full : mm_id:int -> ?freed_tables:bool -> new_tlb_gen:int -> unit -> t

(** Number of TLB entries a ranged flush touches ([max_int] when full). *)
val nr_entries : t -> int

(** Width of a ranged flush in 4 KiB pages (0 when full). *)
val span_4k : t -> int

(** 4 KiB VPNs covered by a ranged flush, in order. *)
val vpns : t -> int list

(** Does the flush cover 4 KiB page [vpn]? (Full flushes cover all.) *)
val covers : t -> vpn:int -> bool

(** Smallest single info covering both; falls back to [full] when the
    strides differ. Used when merging deferred in-context flushes (§3.4). *)
val merge : t -> t -> t

val pp : Format.formatter -> t -> unit
