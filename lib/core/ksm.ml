let anonymous_4k mm ~vpn =
  match Mm_struct.find_vma mm ~vpn with
  | Some { Vma.backing = Vma.Anonymous; page_size = Tlb.Four_k; _ } -> true
  | Some _ | None -> false

(* Like Migrate: the merge may run on a user thread, and its shootdowns may
   defer user-PCID flushes that must complete before user code resumes. *)
let in_kernel_service m ~cpu f =
  let cpu_t = Machine.cpu m cpu in
  let was_user = Cpu.in_user cpu_t in
  Cpu.set_in_user cpu_t false;
  Fun.protect
    ~finally:(fun () ->
      if was_user then Shootdown.return_to_user m ~cpu ~has_stack:true)
    f

let merge_pages m ~cpu ~mm ~keep ~dup =
  let pt = Mm_struct.page_table mm in
  let frames = Mm_struct.frames mm in
  in_kernel_service m ~cpu @@ fun () ->
  Rwsem.with_write (Mm_struct.mmap_sem mm) (fun () ->
      match (Page_table.walk pt ~vpn:keep, Page_table.walk pt ~vpn:dup) with
      | Some kw, Some dw
        when kw.Page_table.size = Tlb.Four_k
             && dw.Page_table.size = Tlb.Four_k
             && anonymous_4k mm ~vpn:keep && anonymous_4k mm ~vpn:dup
             && kw.Page_table.pte.Pte.pfn <> dw.Page_table.pte.Pte.pfn ->
          let keep_pfn = kw.Page_table.pte.Pte.pfn in
          let dup_pfn = dw.Page_table.pte.Pte.pfn in
          (* Write-protect both pages and make the change globally visible
             before trusting the contents to stay identical. *)
          let wp_info vpn =
            Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:vpn ~pages:1
              ~new_tlb_gen:(Mm_struct.tlb_gen mm) ()
          in
          let freeze vpn =
            let window = Checker.begin_invalidation m.Machine.checker (wp_info vpn) in
            (match Page_table.update pt ~vpn ~f:(fun pte -> Pte.make_cow pte) with
            | Some _ -> Shootdown.flush_tlb_page m ~from:cpu ~mm ~vpn
            | None -> ());
            Checker.end_invalidation m.Machine.checker window
          in
          freeze keep;
          freeze dup;
          (* The scanner would memcmp here. *)
          Machine.delay m m.Machine.costs.Costs.page_copy;
          (* Retarget the duplicate at the survivor's frame. *)
          let window = Checker.begin_invalidation m.Machine.checker (wp_info dup) in
          Frame_alloc.ref_get frames keep_pfn;
          (match
             Page_table.update pt ~vpn:dup ~f:(fun pte ->
                 { pte with Pte.pfn = keep_pfn })
           with
          | Some _ -> Shootdown.flush_tlb_page m ~from:cpu ~mm ~vpn:dup
          | None -> ());
          Checker.end_invalidation m.Machine.checker window;
          Frame_alloc.free frames dup_pfn;
          `Merged
      | _ -> `Skipped)

let dedup_range m ~cpu ~mm ~vpn ~pages =
  let merged = ref 0 in
  let keep = ref None in
  for v = vpn to vpn + pages - 1 do
    match !keep with
    | None ->
        if anonymous_4k mm ~vpn:v
           && Option.is_some (Page_table.walk (Mm_struct.page_table mm) ~vpn:v)
        then keep := Some v
    | Some k -> begin
        match merge_pages m ~cpu ~mm ~keep:k ~dup:v with
        | `Merged -> incr merged
        | `Skipped -> ()
      end
  done;
  !merged
