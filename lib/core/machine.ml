type stats = {
  mutable shootdowns : int;
  mutable local_only_flushes : int;
  mutable ipis_skipped_lazy : int;
  mutable ipis_skipped_batched : int;
  mutable flush_requests_skipped : int;
  mutable full_flush_fallbacks : int;
  mutable batched_deferrals : int;
  mutable cow_flush_avoided : int;
  mutable in_context_deferrals : int;
  mutable faults : int;
  mutable cow_breaks : int;
}

(* --- shootdown phase metrics (DESIGN.md §10) ---

   Handles into the machine's Metrics registry, pre-registered at creation
   in a fixed order so every machine — metered or not — exposes the same
   series shape and sharded aggregation merges identically-shaped
   registries. Per-distance arrays are indexed by Topology.distance_rank;
   [flush] is rank-major over (rank, kind). *)

type phases = {
  prep : Metrics.series array;  (** initiator prep, by farthest-target rank *)
  ipi : Metrics.series array;  (** IPI delivery, by sender->target rank *)
  flush : Metrics.series array;  (** flush execution, (rank, kind) rank-major *)
  ack : Metrics.series array;  (** initiator ack wait, by farthest-target rank *)
  line : Metrics.series array;  (** cacheline access cost, by source rank *)
  tlb_drop_full : Metrics.series;  (** entries dropped per full TLB flush *)
  tlb_drop_pcid : Metrics.series;  (** entries dropped per PCID drop *)
}

let flush_kind_invlpg = 0
let flush_kind_cr3 = 1
let flush_kind_deferred = 2
let flush_kind_skipped = 3
let n_flush_kinds = 4
let flush_kind_labels = [| "invlpg"; "cr3"; "deferred"; "skipped" |]
let flush_index ~rank ~kind = (rank * n_flush_kinds) + kind

type t = {
  engine : Engine.t;
  topo : Topology.t;
  costs : Costs.t;
  opts : Opts.t;
  registry : Cache.registry;
  frames : Frame_alloc.t;
  trace : Trace.t;
  rng : Rng.t;
  cpus : Cpu.t array;
  apic : Apic.t;
  percpu : Percpu.t array;
  mms : (int, Mm_struct.t) Hashtbl.t;
  all_cpus : Cpuset.t;
      (* every cpu id; the oracle's flush-all broadcast snapshots this into
         the initiator's scratch instead of materializing target lists.
         Never mutated after create. *)
  mutable next_mm_id : int;
  mutable next_ipi_seq : int;
  mutable proto_irq_id : int;
      (* Apic registry id for the active protocol backend's long-lived
         shootdown irq record, created by the backend at first use (-1 =
         not yet); per machine so IPI delivery never allocates an irq
         record or closure. One machine runs one backend for its lifetime
         (Opts.protocol is part of the memoization key), so one slot. *)
  line_sync_status : Cache.line;
      (* Sync_broadcast's protocol-wide status table + posted-info line:
         every responder writes its done bit here and the initiator spins
         reading it — the deliberate cronus-style contention point. *)
  mutable sync_info : Flush_info.t option;
      (* the flush currently posted by Sync_broadcast's initiator; None
         outside a broadcast (the global ipi_mutex serializes writers) *)
  mutable sync_from : int;
      (* the posting initiator, for responder-side distance attribution *)
  checker : Checker.t;
  ipi_mutex : Rwsem.t;
  stats : stats;
  metrics : Metrics.t;
  phases : phases;
}

let fresh_stats () =
  {
    shootdowns = 0;
    local_only_flushes = 0;
    ipis_skipped_lazy = 0;
    ipis_skipped_batched = 0;
    flush_requests_skipped = 0;
    full_flush_fallbacks = 0;
    batched_deferrals = 0;
    cow_flush_avoided = 0;
    in_context_deferrals = 0;
    faults = 0;
    cow_breaks = 0;
  }

(* Histogram ranges are sized from Costs.default magnitudes; out-of-range
   samples are counted explicitly by the histograms, so an unusual Costs.t
   degrades to visible overflow counts, never silent corruption. *)
let register_phases metrics =
  let ranks = Topology.n_distance_ranks in
  let dist r = ("distance", Topology.distance_label (Topology.distance_of_rank r)) in
  let by_rank name ~lo ~hi ~buckets =
    Array.init ranks (fun r ->
        Metrics.series metrics ~name ~labels:[ dist r ] ~lo ~hi ~buckets ())
  in
  let prep = by_rank "shootdown_prep_cycles" ~lo:0.0 ~hi:8000.0 ~buckets:20 in
  let ipi = by_rank "ipi_delivery_cycles" ~lo:0.0 ~hi:2000.0 ~buckets:20 in
  let flush =
    Array.init
      (ranks * n_flush_kinds)
      (fun i ->
        let r = i / n_flush_kinds and k = i mod n_flush_kinds in
        Metrics.series metrics ~name:"flush_exec_cycles"
          ~labels:[ dist r; ("kind", flush_kind_labels.(k)) ]
          ~lo:0.0 ~hi:10000.0 ~buckets:20 ())
  in
  let ack = by_rank "ack_wait_cycles" ~lo:0.0 ~hi:20000.0 ~buckets:20 in
  let line = by_rank "cacheline_transfer_cycles" ~lo:0.0 ~hi:800.0 ~buckets:16 in
  let drop kind =
    Metrics.series metrics ~name:"tlb_flush_drop_entries"
      ~labels:[ ("flush", kind) ] ~lo:0.0 ~hi:1600.0 ~buckets:16 ()
  in
  {
    prep;
    ipi;
    flush;
    ack;
    line;
    tlb_drop_full = drop "full";
    tlb_drop_pcid = drop "pcid";
  }

let create ?(topo = Topology.paper_machine) ?(costs = Costs.default)
    ?(frames = 262144) ?(seed = 42L) ?(checker = true) ?tlb_capacity
    ?(metering = false) ~opts () =
  let engine = Engine.create () in
  let n = Topology.n_cpus topo in
  let cpus =
    Array.init n (fun id ->
        Cpu.create engine topo costs ~id ~safe:opts.Opts.safe ?tlb_capacity ())
  in
  let registry = Cache.create_registry topo costs in
  let percpu = Array.map (fun cpu -> Percpu.create cpu registry ~n_cpus:n) cpus in
  let apic = Apic.create engine topo costs ~cpus in
  let metrics = Metrics.create ~enabled:metering () in
  let phases = register_phases metrics in
  (* The hw hooks are installed only on metered machines: an unmetered
     machine's cache/IPI/TLB hot paths keep their None-check fast path. *)
  if metering then begin
    Apic.set_delivery_meter apic (fun rank cycles ->
        Metrics.record_cycles phases.ipi.(rank) cycles);
    Cache.set_transfer_meter registry (fun rank cost ->
        Metrics.record_cycles phases.line.(rank) cost);
    Array.iter
      (fun cpu ->
        Tlb.set_flush_meter (Cpu.tlb cpu) (fun full dropped ->
            Metrics.record_cycles
              (if full then phases.tlb_drop_full else phases.tlb_drop_pcid)
              dropped))
      cpus
  end;
  {
    engine;
    topo;
    costs;
    opts;
    registry;
    frames = Frame_alloc.create ~frames;
    trace = Trace.create engine;
    rng = Rng.create ~seed;
    cpus;
    apic;
    percpu;
    mms = Hashtbl.create 16;
    all_cpus =
      (let s = Cpuset.create ~bits:n in
       for c = 0 to n - 1 do
         Cpuset.set s c
       done;
       s);
    next_mm_id = 1;
    next_ipi_seq = 0;
    proto_irq_id = -1;
    line_sync_status =
      Cache.create_line registry ~name:(lazy "sync_broadcast.status_table");
    sync_info = None;
    sync_from = -1;
    checker = Checker.create ~enabled:checker ();
    ipi_mutex = Rwsem.create engine;
    stats = fresh_stats ();
    metrics;
    phases;
  }

let new_mm t =
  let id = t.next_mm_id in
  t.next_mm_id <- id + 1;
  let mm =
    Mm_struct.create ~engine:t.engine ~registry:t.registry ~frames:t.frames
      ~n_cpus:(Array.length t.cpus) ~id
  in
  Hashtbl.replace t.mms id mm;
  mm

let mm_by_id t id = Hashtbl.find_opt t.mms id
let cpu t i = t.cpus.(i)
let percpu t i = t.percpu.(i)
let n_cpus t = Array.length t.cpus
let now t = Engine.now t.engine
let delay t cycles = Process.delay t.engine cycles
let charge_read t line ~by = delay t (Cache.read line ~by)
let charge_write t line ~by = delay t (Cache.write line ~by)
let charge_atomic t line ~by = delay t (Cache.atomic line ~by)
let run t = Engine.run t.engine
let engine_ops t = Engine.ops t.engine

let next_ipi_seq t =
  t.next_ipi_seq <- t.next_ipi_seq + 1;
  t.next_ipi_seq

(* OCaml evaluates variant arguments eagerly, so hot call sites must guard
   event *construction* — `if Machine.tracing m then Machine.trace_event …` —
   or they allocate the record even when tracing is off. *)
let[@inline] tracing t = Trace.enabled t.trace

(* Same guard discipline as [tracing]: hot call sites check this before
   computing ranks or durations, so an unmetered machine pays one
   load+branch per site and allocates nothing. *)
let[@inline] metering t = Metrics.enabled t.metrics

let[@inline] distance_rank t a b =
  Topology.distance_rank (Topology.distance t.topo a b)

let trace_event t ~cpu ev = if Trace.enabled t.trace then Trace.event t.trace ~cpu ev

(* Checker window plus its trace event, emitted together so the analysis
   layer sees exactly the windows the checker reasons with. *)
let begin_window t ~cpu (info : Flush_info.t) =
  let token = Checker.begin_invalidation t.checker info in
  if tracing t then
    trace_event t ~cpu
      (Trace.Flush_start
         {
           window = Checker.token_id token;
           mm_id = info.Flush_info.mm_id;
           start_vpn = info.Flush_info.start_vpn;
           span = Flush_info.span_4k info;
           full = info.Flush_info.full;
         });
  token

let end_window t ~cpu ~mm_id token =
  Checker.end_invalidation t.checker token;
  if tracing t then
    trace_event t ~cpu (Trace.Flush_done { window = Checker.token_id token; mm_id })

let reset_stats t =
  let s = t.stats in
  s.shootdowns <- 0;
  s.local_only_flushes <- 0;
  s.ipis_skipped_lazy <- 0;
  s.ipis_skipped_batched <- 0;
  s.flush_requests_skipped <- 0;
  s.full_flush_fallbacks <- 0;
  s.batched_deferrals <- 0;
  s.cow_flush_avoided <- 0;
  s.in_context_deferrals <- 0;
  s.faults <- 0;
  s.cow_breaks <- 0

let pp_stats fmt s =
  Format.fprintf fmt
    "shootdowns=%d local-only=%d skip-lazy=%d skip-batched=%d resp-skip=%d \
     full-fallback=%d batched=%d cow-avoided=%d in-context=%d faults=%d cow=%d"
    s.shootdowns s.local_only_flushes s.ipis_skipped_lazy s.ipis_skipped_batched
    s.flush_requests_skipped s.full_flush_fallbacks s.batched_deferrals
    s.cow_flush_avoided s.in_context_deferrals s.faults s.cow_breaks
