(** The simulated machine plus kernel-global state: the root object every
    experiment builds first. *)

type stats = {
  mutable shootdowns : int;  (** flush operations that sent IPIs *)
  mutable local_only_flushes : int;  (** flush operations with no targets *)
  mutable ipis_skipped_lazy : int;  (** targets skipped: lazy-TLB mode *)
  mutable ipis_skipped_batched : int;  (** targets skipped: batched syscall *)
  mutable flush_requests_skipped : int;  (** responder skips: gen already seen *)
  mutable full_flush_fallbacks : int;  (** responder gen fast-forward fulls *)
  mutable batched_deferrals : int;  (** flushes deferred by §4.2 batching *)
  mutable cow_flush_avoided : int;  (** local flushes avoided by §4.1 *)
  mutable in_context_deferrals : int;  (** user flushes deferred by §3.4 *)
  mutable faults : int;
  mutable cow_breaks : int;
}

(** Handles into the machine's {!Sim.Metrics} registry for the shootdown
    phase-latency breakdown (DESIGN.md §10). Per-distance arrays are
    indexed by {!Hw.Topology.distance_rank}; [flush] is rank-major over
    (distance rank, flush kind). Pre-registered on every machine so all
    machines expose the same series shape; recording only happens when
    {!metering} is true. *)
type phases = {
  prep : Metrics.series array;  (** initiator prep, by farthest-target rank *)
  ipi : Metrics.series array;  (** IPI delivery, by sender->target rank *)
  flush : Metrics.series array;  (** flush execution, (rank, kind) rank-major *)
  ack : Metrics.series array;  (** initiator ack wait, by farthest-target rank *)
  line : Metrics.series array;  (** cacheline access cost, by source rank *)
  tlb_drop_full : Metrics.series;  (** entries dropped per full TLB flush *)
  tlb_drop_pcid : Metrics.series;  (** entries dropped per PCID drop *)
}

(** Flush-kind indices for {!phases.flush}: how the responder (or the
    initiator locally) executed the flush. *)
val flush_kind_invlpg : int

val flush_kind_cr3 : int
val flush_kind_deferred : int
val flush_kind_skipped : int

val n_flush_kinds : int
val flush_kind_labels : string array

(** [flush_index ~rank ~kind] is the {!phases.flush} index. *)
val flush_index : rank:int -> kind:int -> int

type t = {
  engine : Engine.t;
  topo : Topology.t;
  costs : Costs.t;
  opts : Opts.t;
  registry : Cache.registry;
  frames : Frame_alloc.t;
  trace : Trace.t;
  rng : Rng.t;
  cpus : Cpu.t array;
  apic : Apic.t;
  percpu : Percpu.t array;
  mms : (int, Mm_struct.t) Hashtbl.t;
  all_cpus : Cpuset.t;
      (** every cpu id, built once at create; broadcast paths snapshot it
          into scratch sets. Treat as read-only. *)
  mutable next_mm_id : int;
  mutable next_ipi_seq : int;
  mutable proto_irq_id : int;
      (** Apic registry id for the active {!Protocol} backend's long-lived
          shootdown irq record, created by the backend at first use ([-1] =
          not yet); per machine so IPI delivery never allocates an irq
          record or closure. A machine runs one backend for its lifetime
          ([Opts.protocol] is part of the memoization key), so one slot. *)
  line_sync_status : Cache.line;
      (** [Sync_broadcast]'s protocol-wide status table + posted-info line:
          responders write their done bits here and the initiator spins
          reading it — the deliberate cronus-style contention point. *)
  mutable sync_info : Flush_info.t option;
      (** the flush currently posted by [Sync_broadcast]'s initiator; [None]
          outside a broadcast (the global [ipi_mutex] serializes writers) *)
  mutable sync_from : int;
      (** the posting initiator, for responder-side distance attribution *)
  checker : Checker.t;
  ipi_mutex : Rwsem.t;
      (** FreeBSD's smp_ipi_mtx: taken (write) around each shootdown when
          [Opts.freebsd_protocol] is set, serializing shootdowns
          machine-wide (§3.3's reason for studying the Linux protocol). *)
  stats : stats;
  metrics : Metrics.t;
      (** Phase-latency metric registry; enabled iff the machine was
          created with [~metering:true]. *)
  phases : phases;
}

(** [create ~opts ()] builds a machine. Defaults: the paper's 2x14x2
    topology, {!Costs.default}, 1 GiB of frames, seed 42, checker on,
    metering off. [~metering:true] enables the phase-latency metrics and
    installs the hw observer hooks (Apic/Cache/Tlb). *)
val create :
  ?topo:Topology.t ->
  ?costs:Costs.t ->
  ?frames:int ->
  ?seed:int64 ->
  ?checker:bool ->
  ?tlb_capacity:int ->
  ?metering:bool ->
  opts:Opts.t ->
  unit ->
  t

val new_mm : t -> Mm_struct.t
val mm_by_id : t -> int -> Mm_struct.t option
val cpu : t -> int -> Cpu.t
val percpu : t -> int -> Percpu.t
val n_cpus : t -> int
val now : t -> int

(** Advance the calling process by [cycles]. *)
val delay : t -> int -> unit

(** Pay for a cacheline access from process context. *)
val charge_read : t -> Cache.line -> by:int -> unit

val charge_write : t -> Cache.line -> by:int -> unit
val charge_atomic : t -> Cache.line -> by:int -> unit

(** Run the engine until idle. *)
val run : t -> unit

(** Engine operations (events + fast-path advances) this machine has
    executed so far. Workload results carry this so harnesses can
    attribute simulation work per run and aggregate at reduce time. *)
val engine_ops : t -> int

(** Fresh machine-wide IPI sequence number (stamped on each CFD so trace
    events can pair sends with acks). *)
val next_ipi_seq : t -> int

(** Is tracing on? Hot call sites must guard event construction with this —
    OCaml builds variant arguments eagerly, so an unguarded
    [trace_event m (Tlb_fill {...})] allocates even when tracing is off. *)
val tracing : t -> bool

(** Append a typed protocol event when tracing is enabled. *)
val trace_event : t -> cpu:int -> Trace.event -> unit

(** Is phase metering on? Guard rank/duration computation with this, same
    discipline as {!tracing}: an unmetered machine pays one load+branch
    per call site and allocates nothing. *)
val metering : t -> bool

(** [distance_rank m a b] = rank of [Topology.distance m.topo a b]. *)
val distance_rank : t -> int -> int -> int

(** Open a checker invalidation window and emit the matching
    {!Sim.Trace.Flush_start} event, so the analyzer sees exactly the
    windows the checker reasons with. *)
val begin_window : t -> cpu:int -> Flush_info.t -> Checker.token

(** Close the window and emit {!Sim.Trace.Flush_done}. *)
val end_window : t -> cpu:int -> mm_id:int -> Checker.token -> unit

val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
