type t = {
  mm_id : int;
  pt : Page_table.t;
  mem : Frame_alloc.t;
  sem : Rwsem.t;
  mm_line : Cache.line;
  mutable gen : int;
  mask : Cpuset.t;
  mutable vma_set : Vma.Set.set;
  mutable next_vpn : int;
}

let create ~engine ~registry ~frames ~n_cpus ~id =
  {
    mm_id = id;
    pt = Page_table.create ();
    mem = frames;
    sem = Rwsem.create engine;
    mm_line = Cache.create_line registry ~name:(lazy (Printf.sprintf "mm%d.gen+cpumask" id));
    gen = 1;
    mask = Cpuset.create ~bits:n_cpus;
    vma_set = Vma.Set.empty;
    (* Start user mappings at 4 GiB to keep VPNs comfortably positive. *)
    next_vpn = 1 lsl 20;
  }

let id t = t.mm_id
let page_table t = t.pt
let frames t = t.mem
let mmap_sem t = t.sem
let line t = t.mm_line
let tlb_gen t = t.gen

let bump_tlb_gen t =
  t.gen <- t.gen + 1;
  t.gen

let cpuset t = t.mask
let cpumask t = Cpuset.to_list t.mask
let cpu_set t ~cpu = Cpuset.set t.mask cpu
let cpu_clear t ~cpu = Cpuset.clear t.mask cpu
let cpu_isset t ~cpu = Cpuset.mem t.mask cpu

let vmas t = t.vma_set
let add_vma t vma = t.vma_set <- Vma.Set.add t.vma_set vma
let find_vma t ~vpn = Vma.Set.find t.vma_set ~vpn

let remove_vma_range t ~vpn ~pages =
  let set, removed = Vma.Set.remove_range t.vma_set ~vpn ~pages in
  t.vma_set <- set;
  removed

let reserve_va t ~min_vpn = t.next_vpn <- Stdlib.max t.next_vpn min_vpn

let alloc_va_range t ?(align = 1) ~pages () =
  if align <= 0 then invalid_arg "Mm_struct.alloc_va_range: align must be positive";
  let base = (t.next_vpn + align - 1) / align * align in
  (* Leave a guard page between mappings so off-by-one bugs fault. *)
  t.next_vpn <- base + pages + 1;
  base
