(** An address space (Linux mm_struct): page table, VMAs, the TLB
    generation counter, and the CPU mask that drives shootdown targeting.

    The generation counter is the heart of Linux's flush-tracking: every PTE
    change bumps [tlb_gen]; each CPU records the generation it has flushed
    up to, so redundant flush requests can be skipped and a CPU several
    generations behind takes one full flush instead of many ranged ones —
    the behaviour that shapes the Sysbench flush storms (§5.2). *)

type t

(** [create ~engine ~registry ~frames ~n_cpus ~id] — [registry] prices the
    mm's shared cacheline (tlb_gen + cpumask live together and bounce). *)
val create :
  engine:Engine.t ->
  registry:Cache.registry ->
  frames:Frame_alloc.t ->
  n_cpus:int ->
  id:int ->
  t

val id : t -> int
val page_table : t -> Page_table.t
val frames : t -> Frame_alloc.t
val mmap_sem : t -> Rwsem.t

(** The contended cacheline holding tlb_gen and the cpumask. *)
val line : t -> Cache.line

(** Current TLB generation. *)
val tlb_gen : t -> int

(** Atomically bump and return the new generation (caller pays the
    cacheline cost separately via {!line}). *)
val bump_tlb_gen : t -> int

(** CPUs on which this address space is (or recently was) active, as the
    live bitset — what the shootdown paths iterate (snapshotting into a
    scratch set first; {!Proto_paper.select_targets} yields between candidate
    reads, and the mask may change under it). Callers must not mutate it
    except through {!cpu_set}/{!cpu_clear}. *)
val cpuset : t -> Cpuset.t

(** {!cpuset} as an ascending list; allocates — tests and debug only. *)
val cpumask : t -> int list

val cpu_set : t -> cpu:int -> unit
val cpu_clear : t -> cpu:int -> unit
val cpu_isset : t -> cpu:int -> bool

(* --- VMA management (callers hold mmap_sem) --- *)

val vmas : t -> Vma.Set.set
val add_vma : t -> Vma.t -> unit
val find_vma : t -> vpn:int -> Vma.t option
val remove_vma_range : t -> vpn:int -> pages:int -> Vma.t list

(** Pick an unused address range of [pages] pages (simple bump allocator).
    [align] (in 4 KiB pages, default 1) aligns the base — hugepage mappings
    pass 512. *)
val alloc_va_range : t -> ?align:int -> pages:int -> unit -> int

(** Ensure future allocations start at or above [min_vpn] (used when a
    forked child inherits the parent's layout). *)
val reserve_va : t -> min_vpn:int -> unit
