(* Which shootdown-protocol backend drives remote invalidation. Each
   constructor maps to one [Core.Protocol] backend (see protocol.mli);
   everything protocol-specific in [Core.Shootdown] dispatches on this
   variant exactly once. *)
type protocol = Paper | Oracle | Sync_broadcast | Queue_spin

let protocol_label = function
  | Paper -> "paper"
  | Oracle -> "oracle"
  | Sync_broadcast -> "sync-broadcast"
  | Queue_spin -> "queue-spin"

let protocol_of_string = function
  | "paper" -> Some Paper
  | "oracle" -> Some Oracle
  | "sync-broadcast" | "sync" -> Some Sync_broadcast
  | "queue-spin" | "queue" -> Some Queue_spin
  | _ -> None

let all_protocols = [ Paper; Oracle; Sync_broadcast; Queue_spin ]

type t = {
  mutable safe : bool;
  mutable concurrent_flush : bool;
  mutable early_ack : bool;
  mutable cacheline_consolidation : bool;
  mutable in_context_flush : bool;
  mutable cow_avoid_flush : bool;
  mutable userspace_batching : bool;
  mutable unsafe_lazy_batching : bool;
  mutable freebsd_protocol : bool;
  mutable bug_skip_deferred_flush : bool;
  mutable protocol : protocol;
  mutable spec_pte_recache_p : float;
  mutable full_flush_threshold : int;
  mutable batch_slots : int;
}

let baseline ~safe =
  {
    safe;
    concurrent_flush = false;
    early_ack = false;
    cacheline_consolidation = false;
    in_context_flush = false;
    cow_avoid_flush = false;
    userspace_batching = false;
    unsafe_lazy_batching = false;
    freebsd_protocol = false;
    bug_skip_deferred_flush = false;
    protocol = Paper;
    spec_pte_recache_p = 0.05;
    full_flush_threshold = 33;
    batch_slots = 4;
  }

(* The conservative reference protocol for differential testing: every PTE
   change becomes one synchronous whole-TLB flush IPI broadcast to every
   other CPU, with no deferral, batching, early acknowledgement or target
   filtering. Trivially correct (no stale translation can survive any
   flush), unusably slow — exactly what an oracle should be. *)
let oracle ~safe =
  let t = baseline ~safe in
  t.protocol <- Oracle;
  t

let with_protocol protocol ~safe =
  let t = baseline ~safe in
  t.protocol <- protocol;
  t

let freebsd ~safe =
  let t = baseline ~safe in
  t.freebsd_protocol <- true;
  t.full_flush_threshold <- 4096;
  t

let all_general ~safe =
  let t = baseline ~safe in
  t.concurrent_flush <- true;
  t.early_ack <- true;
  t.cacheline_consolidation <- true;
  (* In-context flushing only exists under PTI; harmless to leave off when
     unsafe since there is no user PCID to flush. *)
  t.in_context_flush <- safe;
  t

let all ~safe =
  let t = all_general ~safe in
  t.cow_avoid_flush <- true;
  t.userspace_batching <- true;
  t

let copy t =
  {
    safe = t.safe;
    concurrent_flush = t.concurrent_flush;
    early_ack = t.early_ack;
    cacheline_consolidation = t.cacheline_consolidation;
    in_context_flush = t.in_context_flush;
    cow_avoid_flush = t.cow_avoid_flush;
    userspace_batching = t.userspace_batching;
    unsafe_lazy_batching = t.unsafe_lazy_batching;
    freebsd_protocol = t.freebsd_protocol;
    bug_skip_deferred_flush = t.bug_skip_deferred_flush;
    protocol = t.protocol;
    spec_pte_recache_p = t.spec_pte_recache_p;
    full_flush_threshold = t.full_flush_threshold;
    batch_slots = t.batch_slots;
  }

(* Build a cumulative stack: each stage copies the previous one and enables
   one more flag. Sequenced with explicit lets (list-element evaluation
   order is unspecified in OCaml). *)
let cumulative_stack ~safe ~with_base ~with_batching =
  let stack = ref (baseline ~safe) in
  let step label f =
    let t = copy !stack in
    f t;
    stack := t;
    (label, t)
  in
  let base = if with_base then [ ("baseline", copy !stack) ] else [] in
  let s1 =
    step (if with_base then "+concurrent" else "concurrent") (fun t ->
        t.concurrent_flush <- true)
  in
  let s2 = step "+early-ack" (fun t -> t.early_ack <- true) in
  let s3 = step "+cacheline" (fun t -> t.cacheline_consolidation <- true) in
  let s4 =
    if safe then [ step "+in-context" (fun t -> t.in_context_flush <- true) ] else []
  in
  let s5 =
    if with_batching then
      [
        step "+batching" (fun t ->
            t.userspace_batching <- true;
            t.cow_avoid_flush <- true);
      ]
    else []
  in
  base @ [ s1; s2; s3 ] @ s4 @ s5

let cumulative_general ~safe = cumulative_stack ~safe ~with_base:true ~with_batching:false

let cumulative_workload ~safe = cumulative_stack ~safe ~with_base:false ~with_batching:true

(* Canonical value key for the bench harness's cell memoization: every
   field, in declaration order, so two opts with equal keys are
   behaviourally identical. The exhaustive record pattern makes adding a
   field without extending the key a compile error (warning 9), not a
   silent memoization bug. [%h] prints the float exactly. *)
let key
    {
      safe;
      concurrent_flush;
      early_ack;
      cacheline_consolidation;
      in_context_flush;
      cow_avoid_flush;
      userspace_batching;
      unsafe_lazy_batching;
      freebsd_protocol;
      bug_skip_deferred_flush;
      protocol;
      spec_pte_recache_p;
      full_flush_threshold;
      batch_slots;
    } =
  Printf.sprintf
    "safe=%b conc=%b eack=%b cline=%b inctx=%b cow=%b ubatch=%b lazy=%b fbsd=%b \
     bugskip=%b proto=%s specp=%h fft=%d slots=%d"
    safe concurrent_flush early_ack cacheline_consolidation in_context_flush
    cow_avoid_flush userspace_batching unsafe_lazy_batching freebsd_protocol
    bug_skip_deferred_flush (protocol_label protocol) spec_pte_recache_p
    full_flush_threshold batch_slots

let pp fmt t =
  let flag name b = if b then Some name else None in
  let flags =
    List.filter_map Fun.id
      [
        flag "concurrent" t.concurrent_flush;
        flag "early-ack" t.early_ack;
        flag "cacheline" t.cacheline_consolidation;
        flag "in-context" t.in_context_flush;
        flag "cow" t.cow_avoid_flush;
        flag "batching" t.userspace_batching;
        flag "UNSAFE-LAZY" t.unsafe_lazy_batching;
        flag "freebsd" t.freebsd_protocol;
        flag "BUG-SKIP-DEFERRED" t.bug_skip_deferred_flush;
        flag (String.uppercase_ascii (protocol_label t.protocol))
          (t.protocol <> Paper);
      ]
  in
  Format.fprintf fmt "%s mode [%s]"
    (if t.safe then "safe" else "unsafe")
    (String.concat " " flags)
