(** Optimization switches — the paper's Table 1 — plus the mitigation mode.

    Each flag corresponds to one of the six techniques; figures are produced
    by enabling them cumulatively. [safe] selects "safe mode" (PTI +
    Spectre/Meltdown mitigations, Linux's default) versus "unsafe mode"
    (mitigations off); under [safe], every address space has separate kernel
    and user PCIDs and user PTEs must be flushed too. *)

(** Shootdown-protocol backend selector. Each constructor names one
    {!Protocol} backend:
    - [Paper]: the paper's optimized Linux protocol (default) — targeted
      IPIs, generation bookkeeping, and every Table-1 optimization gated by
      the flags below.
    - [Oracle]: the conservative differential-testing reference — every PTE
      change one synchronous whole-TLB broadcast to every other CPU, no
      deferral/batching/early-ack/filtering.
    - [Sync_broadcast]: cronus-style single-global-lock synchronous full
      broadcast — one machine-wide status table, the initiator
      self-invalidates, then spins until every other CPU has flushed.
    - [Queue_spin]: charmos-style per-CPU bounded ring-buffer queue with
      initial-spin/backoff/resend retry and flush-all collapsing when a
      target's ring overflows. *)
type protocol = Paper | Oracle | Sync_broadcast | Queue_spin

(** Stable lowercase label ("paper", "oracle", "sync-broadcast",
    "queue-spin") used in {!key}, CLI flags, metrics rows and reports. *)
val protocol_label : protocol -> string

(** Inverse of {!protocol_label}; also accepts the short forms "sync" and
    "queue". *)
val protocol_of_string : string -> protocol option

(** All backends, in fixed shootout/report order. *)
val all_protocols : protocol list

type t = {
  mutable safe : bool;  (** PTI + mitigations on *)
  mutable concurrent_flush : bool;  (** §3.1 flush local TLB while waiting *)
  mutable early_ack : bool;  (** §3.2 ack on handler entry *)
  mutable cacheline_consolidation : bool;  (** §3.3 merged kernel cachelines *)
  mutable in_context_flush : bool;  (** §3.4 defer user flushes to kernel exit *)
  mutable cow_avoid_flush : bool;  (** §4.1 dummy write instead of INVLPG *)
  mutable userspace_batching : bool;  (** §4.2 batch flushes in msync etc. *)
  mutable unsafe_lazy_batching : bool;
      (** LATR-style strawman: skip shootdown IPIs entirely and flush lazily.
          Deliberately unsafe; exists to let the {!Checker} demonstrate the
          correctness argument of paper §2.3.2. *)
  mutable freebsd_protocol : bool;
      (** FreeBSD-style comparator (paper §2.1/§3.3): every shootdown takes
          the global smp_ipi_mtx, so only one shootdown is in flight
          machine-wide; pair with a 4096-entry full-flush threshold via
          {!freebsd}. Safe but serializing. *)
  mutable bug_skip_deferred_flush : bool;
      (** Injected protocol bug for the race detector: drop deferred user
          flushes (§3.4) at kernel exit instead of executing them. The
          happens-before analyzer must flag the resulting stale user-PCID
          hits as genuine races. *)
  mutable protocol : protocol;
      (** Which shootdown backend performs remote invalidation. All
          protocol-specific behaviour in {!Shootdown} flows through the
          {!Protocol} interface selected by this field. *)
  mutable spec_pte_recache_p : float;
      (** probability that, between a CoW fault and its PTE update, a
          speculative page walk re-caches the stale PTE (paper §4.1's
          motivation for the explicit write) *)
  mutable full_flush_threshold : int;  (** Linux's 33-entry ceiling *)
  mutable batch_slots : int;  (** deferred flush_tlb_info entries, paper: 4 *)
}

(** Everything off: stock Linux 5.2.8 behaviour in the given mode. *)
val baseline : safe:bool -> t

(** The four general techniques of §3 enabled. *)
val all_general : safe:bool -> t

(** All six optimizations. *)
val all : safe:bool -> t

(** FreeBSD-flavoured baseline: serialized shootdowns (smp_ipi_mtx) and the
    4096-entry full-flush ceiling (§2.1). *)
val freebsd : safe:bool -> t

(** Baseline with [protocol = Oracle]: the trivially-correct
    synchronous-broadcast reference the differential fuzzer diffs against. *)
val oracle : safe:bool -> t

(** Baseline with the given backend selected and every optimization off. *)
val with_protocol : protocol -> safe:bool -> t

val copy : t -> t

(** Cumulative stacks in paper order:
    baseline, +concurrent, +early ack, +cacheline, (+in-context when [safe]).
    Each pair is (label, opts). *)
val cumulative_general : safe:bool -> (string * t) list

(** Cumulative stacks for the workload figures (adds batching last):
    concurrent, +early ack, +cacheline, (+in-context when safe), +batching. *)
val cumulative_workload : safe:bool -> (string * t) list

(** Canonical value key over every field: equal keys iff behaviourally
    identical opts. Used by the bench harness to memoize identical
    (config, seed) cells across experiments. *)
val key : t -> string

val pp : Format.formatter -> t -> unit
