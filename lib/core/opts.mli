(** Optimization switches — the paper's Table 1 — plus the mitigation mode.

    Each flag corresponds to one of the six techniques; figures are produced
    by enabling them cumulatively. [safe] selects "safe mode" (PTI +
    Spectre/Meltdown mitigations, Linux's default) versus "unsafe mode"
    (mitigations off); under [safe], every address space has separate kernel
    and user PCIDs and user PTEs must be flushed too. *)

type t = {
  mutable safe : bool;  (** PTI + mitigations on *)
  mutable concurrent_flush : bool;  (** §3.1 flush local TLB while waiting *)
  mutable early_ack : bool;  (** §3.2 ack on handler entry *)
  mutable cacheline_consolidation : bool;  (** §3.3 merged kernel cachelines *)
  mutable in_context_flush : bool;  (** §3.4 defer user flushes to kernel exit *)
  mutable cow_avoid_flush : bool;  (** §4.1 dummy write instead of INVLPG *)
  mutable userspace_batching : bool;  (** §4.2 batch flushes in msync etc. *)
  mutable unsafe_lazy_batching : bool;
      (** LATR-style strawman: skip shootdown IPIs entirely and flush lazily.
          Deliberately unsafe; exists to let the {!Checker} demonstrate the
          correctness argument of paper §2.3.2. *)
  mutable freebsd_protocol : bool;
      (** FreeBSD-style comparator (paper §2.1/§3.3): every shootdown takes
          the global smp_ipi_mtx, so only one shootdown is in flight
          machine-wide; pair with a 4096-entry full-flush threshold via
          {!freebsd}. Safe but serializing. *)
  mutable bug_skip_deferred_flush : bool;
      (** Injected protocol bug for the race detector: drop deferred user
          flushes (§3.4) at kernel exit instead of executing them. The
          happens-before analyzer must flag the resulting stale user-PCID
          hits as genuine races. *)
  mutable oracle_flush : bool;
      (** Conservative reference protocol for differential testing (the
          {!Fuzz} oracle): every flush request becomes one synchronous
          whole-TLB flush IPI broadcast to every other CPU — no deferral,
          no batching, no early ack, no target filtering. Trivially
          correct; meant to be paired with {!oracle}, i.e. every other
          optimization off. *)
  mutable spec_pte_recache_p : float;
      (** probability that, between a CoW fault and its PTE update, a
          speculative page walk re-caches the stale PTE (paper §4.1's
          motivation for the explicit write) *)
  mutable full_flush_threshold : int;  (** Linux's 33-entry ceiling *)
  mutable batch_slots : int;  (** deferred flush_tlb_info entries, paper: 4 *)
}

(** Everything off: stock Linux 5.2.8 behaviour in the given mode. *)
val baseline : safe:bool -> t

(** The four general techniques of §3 enabled. *)
val all_general : safe:bool -> t

(** All six optimizations. *)
val all : safe:bool -> t

(** FreeBSD-flavoured baseline: serialized shootdowns (smp_ipi_mtx) and the
    4096-entry full-flush ceiling (§2.1). *)
val freebsd : safe:bool -> t

(** Baseline with {!field-oracle_flush} set: the trivially-correct
    synchronous-broadcast reference the differential fuzzer diffs against. *)
val oracle : safe:bool -> t

val copy : t -> t

(** Cumulative stacks in paper order:
    baseline, +concurrent, +early ack, +cacheline, (+in-context when [safe]).
    Each pair is (label, opts). *)
val cumulative_general : safe:bool -> (string * t) list

(** Cumulative stacks for the workload figures (adds batching last):
    concurrent, +early ack, +cacheline, (+in-context when safe), +batching. *)
val cumulative_workload : safe:bool -> (string * t) list

(** Canonical value key over every field: equal keys iff behaviourally
    identical opts. Used by the bench harness to memoize identical
    (config, seed) cells across experiments. *)
val key : t -> string

val pp : Format.formatter -> t -> unit
