type asid_slot = {
  mutable slot_mm : int;
  mutable gen_seen : int;
  mutable last_used : int;
}

type cfd = {
  cfd_seq : int;
  cfd_initiator : int;
  cfd_target : int;
  cfd_info : Flush_info.t;
  cfd_early_ack : bool;
  mutable cfd_acked : bool;
  mutable cfd_executed : bool;
  cfd_line : Cache.line;
  cfd_info_line : Cache.line option;
}

type pending_user = No_flush | Ranged of Flush_info.t | Full_flush

(* Monomorphic test used wherever a [pending_user = No_flush] compare would
   drag in the polymorphic-equality runtime (tlblint R1). *)
let no_pending_user = function No_flush -> true | Ranged _ | Full_flush -> false

type t = {
  cpu : Cpu.t;
  registry : Cache.registry; (* for lazily creating CSD lines below *)
  asids : asid_slot array;
  mutable curr_asid : int;
  mutable loaded_mm : Mm_struct.t option;
  mutable lazy_mode : bool;
  mutable pending_user : pending_user;
  mutable inflight_flush : bool;
  mutable batched_mode : bool;
  mutable batch : (Flush_info.t * Checker.token) list;
  mutable batch_overflowed : bool;
  csq : cfd Queue.t;
  line_tlb : Cache.line;
  line_csq : Cache.line;
  csd_lines : Cache.line option array;
      (* created on first shootdown to that destination via [csd_line]: the
         full n_cpus^2 matrix of line records (and their lazy-name thunks)
         was over half of Machine.create's allocation at 56 CPUs and would
         be ~1M records at 1024, while a workload only ever touches the
         (initiator, responder) pairs it actually shoots down. *)
  line_stack_info : Cache.line;
  scratch_targets : Cpuset.t;
      (* per-initiator shootdown target scratch. Safe to reuse per
         shootdown without allocation: a CPU runs one initiator at a time
         (no preemption of a syscall mid-protocol), and nothing that runs
         from this CPU's IRQ handlers selects targets. *)
  scratch_resend : Cpuset.t;
      (* retry-ladder resend scratch (Proto_queue): rebuilt as the un-acked
         subset of scratch_targets at each resend, while scratch_targets
         still holds the full set the ack wait folds over. *)
  (* --- Sync_broadcast backend (cronus-style) --- *)
  mutable sync_done : bool;
      (* this CPU's entry in the protocol-wide status table: set by the
         responder once it has applied the posted flush, cleared by the
         initiator (under the global lock) before broadcasting. *)
  (* --- Queue_spin backend (charmos-style) --- *)
  q_mm : int array;  (* bounded per-CPU ring of posted invalidations *)
  q_vpn : int array;
  q_gen : int array;  (* mm tlb_gen the posted entry proves flushed *)
  q_from : int array;  (* posting initiator, for distance attribution *)
  mutable q_head : int;  (* ring cursors, monotone; slot = cursor mod size *)
  mutable q_tail : int;
  mutable q_flush_all : bool;
      (* overflow collapse: the ring filled, so the next drain does one
         whole-TLB flush instead of replaying entries *)
  mutable q_target_gen : int;  (* newest queue generation posted to us *)
  mutable q_ack_gen : int;  (* queue generation we have drained up to *)
  line_queue : Cache.line;  (* the ring's shared cache line *)
}

let n_asids = 6

(* Queue_spin ring capacity. Charmos-style: small and bounded — overflow is
   expected under bursts and collapses to a flush-all rather than blocking
   the initiator. *)
let queue_slots = 8

let create cpu registry ~n_cpus =
  let id = Cpu.id cpu in
  {
    cpu;
    registry;
    asids = Array.init n_asids (fun _ -> { slot_mm = -1; gen_seen = 0; last_used = 0 });
    curr_asid = 0;
    loaded_mm = None;
    lazy_mode = false;
    pending_user = No_flush;
    inflight_flush = false;
    batched_mode = false;
    batch = [];
    batch_overflowed = false;
    csq = Queue.create ();
    line_tlb = Cache.create_line registry ~name:(lazy (Printf.sprintf "cpu%d.tlb_state" id));
    line_csq = Cache.create_line registry ~name:(lazy (Printf.sprintf "cpu%d.csq" id));
    csd_lines = Array.make n_cpus None;
    line_stack_info =
      Cache.create_line registry ~name:(lazy (Printf.sprintf "cpu%d.stack_flush_info" id));
    scratch_targets = Cpuset.create ~bits:0;
    scratch_resend = Cpuset.create ~bits:0;
    sync_done = true;
    q_mm = Array.make queue_slots (-1);
    q_vpn = Array.make queue_slots 0;
    q_gen = Array.make queue_slots 0;
    q_from = Array.make queue_slots 0;
    q_head = 0;
    q_tail = 0;
    q_flush_all = false;
    q_target_gen = 0;
    q_ack_gen = 0;
    line_queue = Cache.create_line registry ~name:(lazy (Printf.sprintf "cpu%d.tlb_queue" id));
  }

let csd_line t ~target =
  match t.csd_lines.(target) with
  | Some l -> l
  | None ->
      let id = Cpu.id t.cpu in
      let l =
        Cache.create_line t.registry
          ~name:(lazy (Printf.sprintf "cpu%d.csd[%d]" id target))
      in
      t.csd_lines.(target) <- Some l;
      l

let kernel_pcid slot = slot + 1
let user_pcid slot = slot + 1 + 2048

let current_kernel_pcid t = kernel_pcid t.curr_asid
let current_user_pcid t = user_pcid t.curr_asid

let find_slot t ~mm_id =
  let found = ref None in
  Array.iteri
    (fun i slot -> if slot.slot_mm = mm_id && Option.is_none !found then found := Some i)
    t.asids;
  !found

let choose_slot t ~mm_id ~now =
  match find_slot t ~mm_id with
  | Some i ->
      t.asids.(i).last_used <- now;
      (i, false)
  | None ->
      let best = ref 0 in
      Array.iteri
        (fun i slot ->
          if slot.slot_mm = -1 && t.asids.(!best).slot_mm <> -1 then best := i
          else if
            slot.slot_mm <> -1
            && t.asids.(!best).slot_mm <> -1
            && slot.last_used < t.asids.(!best).last_used
          then best := i)
        t.asids;
      let i = !best in
      let needs_flush = t.asids.(i).slot_mm <> -1 in
      t.asids.(i).slot_mm <- mm_id;
      t.asids.(i).gen_seen <- 0;
      t.asids.(i).last_used <- now;
      (i, needs_flush)

let defer_user_flush t info ~threshold =
  match t.pending_user with
  | Full_flush -> ()
  | No_flush ->
      if Flush_info.nr_entries info > threshold then t.pending_user <- Full_flush
      else t.pending_user <- Ranged info
  | Ranged existing ->
      if existing.Flush_info.mm_id <> info.Flush_info.mm_id then
        (* A different address space is pending: punt to a full flush. *)
        t.pending_user <- Full_flush
      else begin
        let merged = Flush_info.merge existing info in
        if Flush_info.nr_entries merged > threshold then t.pending_user <- Full_flush
        else t.pending_user <- Ranged merged
      end

let take_pending_user t =
  let p = t.pending_user in
  t.pending_user <- No_flush;
  p
