(** Per-CPU kernel state: loaded address space, PCID (ASID) slots with
    per-generation flush tracking, lazy-TLB mode, the SMP call queue, the
    deferred-flush records of §3.4 and §4.2 — and the cachelines they live
    on.

    Cacheline layout is explicit because it is what §3.3 optimizes:

    - baseline (Figure 4a): the lazy-mode flag shares [line_tlb] with other
      TLB state; each outbound call-function-data (CSD) occupies its own
      line [csd_lines.(dest)]; the flush_tlb_info lives on the initiator's
      stack line [line_stack_info]; the call queue head is [line_csq].
    - consolidated (Figure 4b): the lazy flag is colocated with the queue
      head (one line answers "lazy? enqueue!") and the flush info is inlined
      into the CSD, eliminating the stack line. *)

(** One of the 6 dynamic ASIDs Linux multiplexes per CPU. *)
type asid_slot = {
  mutable slot_mm : int;  (** mm id, or -1 when free *)
  mutable gen_seen : int;  (** mm generation this CPU has flushed up to *)
  mutable last_used : int;  (** for round-robin eviction *)
}

(** Call-function data: one outbound shootdown request to one CPU. *)
type cfd = {
  cfd_seq : int;  (** machine-wide IPI sequence number, for trace pairing *)
  cfd_initiator : int;
  cfd_target : int;  (** responder CPU this CFD was queued on *)
  cfd_info : Flush_info.t;
  cfd_early_ack : bool;  (** responder may ack on handler entry *)
  mutable cfd_acked : bool;
  mutable cfd_executed : bool;  (** flush function completed *)
  cfd_line : Cache.line;
  cfd_info_line : Cache.line option;  (** baseline layout only *)
}

(** Deferred user-address-space flush state (in-context flushing, §3.4). *)
type pending_user = No_flush | Ranged of Flush_info.t | Full_flush

(** [no_pending_user p] is [p = No_flush] without polymorphic equality. *)
val no_pending_user : pending_user -> bool

type t = {
  cpu : Cpu.t;
  registry : Cache.registry;  (** for lazily creating CSD lines *)
  asids : asid_slot array;
  mutable curr_asid : int;
  mutable loaded_mm : Mm_struct.t option;
  mutable lazy_mode : bool;
  mutable pending_user : pending_user;
  mutable inflight_flush : bool;
      (** a shootdown was acknowledged (early ack) but its flush has not
          completed; NMI handlers must not touch user memory (§3.2) *)
  mutable batched_mode : bool;  (** inside a batching syscall (§4.2) *)
  mutable batch : (Flush_info.t * Checker.token) list;
      (** deferred infos (newest first) with their open checker windows *)
  mutable batch_overflowed : bool;
  csq : cfd Queue.t;
  line_tlb : Cache.line;
  line_csq : Cache.line;
  csd_lines : Cache.line option array;
      (** outbound CSD lines by destination, created on first use by
          {!csd_line}: materializing all n_cpus² of them up front dominated
          machine-setup allocation and is hopeless at 1024 CPUs *)
  line_stack_info : Cache.line;
  scratch_targets : Cpuset.t;
      (** this CPU's shootdown target scratch set, reused across its
          shootdowns (one initiator per CPU at a time, and IRQ handlers
          never select targets) *)
  scratch_resend : Cpuset.t;
      (** [Queue_spin] retry-ladder scratch: the un-acked subset of
          [scratch_targets], rebuilt per resend *)
  mutable sync_done : bool;
      (** [Sync_broadcast] status-table entry: true once this CPU has applied
          the posted flush (initiator clears it before broadcasting) *)
  q_mm : int array;  (** [Queue_spin] ring: posted mm ids *)
  q_vpn : int array;  (** posted vpns *)
  q_gen : int array;  (** mm tlb_gen each posted entry proves flushed *)
  q_from : int array;  (** posting initiator, for distance attribution *)
  mutable q_head : int;  (** consumer cursor (monotone; slot = mod size) *)
  mutable q_tail : int;  (** producer cursor *)
  mutable q_flush_all : bool;  (** ring overflowed; drain as whole-TLB flush *)
  mutable q_target_gen : int;  (** newest queue generation posted to us *)
  mutable q_ack_gen : int;  (** queue generation drained up to *)
  line_queue : Cache.line;  (** the ring's shared cache line *)
}

val create : Cpu.t -> Cache.registry -> n_cpus:int -> t

(** The CSD line this CPU uses to shoot down [target], created in the
    registry on first use. *)
val csd_line : t -> target:int -> Cache.line

val n_asids : int

(** [Queue_spin] ring capacity; pushing past it sets [q_flush_all]. *)
val queue_slots : int

(** Hardware PCID values for a slot (user PCID has bit 11 set, like Linux).
    In unsafe mode (no PTI) only the kernel PCID is used. *)
val kernel_pcid : int -> int

val user_pcid : int -> int

(** Currently loaded kernel/user PCIDs. *)
val current_kernel_pcid : t -> int

val current_user_pcid : t -> int

(** Slot caching [mm_id], if any. *)
val find_slot : t -> mm_id:int -> int option

(** Slot to (re)use for [mm_id]: an existing slot, a free one, or the least
    recently used (in which case its stale contents must be flushed by the
    caller). Returns [(slot, needs_flush)]. *)
val choose_slot : t -> mm_id:int -> now:int -> int * bool

(** Record the merged deferred user flush; collapses to [Full_flush] past
    [threshold] entries. *)
val defer_user_flush : t -> Flush_info.t -> threshold:int -> unit

val take_pending_user : t -> pending_user
