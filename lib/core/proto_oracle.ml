(* The conservative oracle (differential-fuzzing reference): one synchronous
   whole-TLB flush on every CPU per request. No target filtering (lazy and
   batched CPUs are IPI'd too), no early ack, no local/remote overlap, no
   deferral of the user PCID — trivially correct by construction. *)

open Flush_core

(* The oracle responder: ignore generations and ranges, drop the whole TLB
   (every PCID, globals included) for every request. *)
let ipi_handler m ~me (_ : Cpu.t) =
  let pcpu = Machine.percpu m me in
  let tlb = Cpu.tlb (Machine.cpu m me) in
  Smp.drain_queue m ~me ~run:(fun cfd ->
      let info = cfd.Percpu.cfd_info in
      let t0 = Machine.now m in
      Machine.delay m m.Machine.costs.Costs.cr3_write;
      Tlb.flush_all tlb;
      if Machine.metering m then
        record_flush m
          ~rank:(Machine.distance_rank m cfd.Percpu.cfd_initiator me)
          ~kind:Machine.flush_kind_cr3 (Machine.now m - t0);
      (* The flush covered whatever a deferred user flush would have. *)
      pcpu.Percpu.pending_user <- Percpu.No_flush;
      Array.iter
        (fun slot ->
          if slot.Percpu.slot_mm = info.Flush_info.mm_id then
            slot.Percpu.gen_seen <-
              Stdlib.max slot.Percpu.gen_seen info.Flush_info.new_tlb_gen)
        pcpu.Percpu.asids;
      cfd.Percpu.cfd_executed <- true;
      Smp.ack m ~me cfd);
  if Cpu.irq_from_user (Machine.cpu m me) then flush_pending_user m ~cpu:me ~has_stack:true

let irq_id m =
  let id = m.Machine.proto_irq_id in
  if id >= 0 then id
  else begin
    let irq =
      {
        Cpu.vector = Smp.tlb_shootdown_vector;
        maskable = true;
        handler = (fun cpu -> ipi_handler m ~me:(Cpu.id cpu) cpu);
      }
    in
    let id = Apic.register_irq m.Machine.apic irq in
    m.Machine.proto_irq_id <- id;
    id
  end

let perform m ~from ~mm:_ (info : Flush_info.t) token =
  let stats = m.Machine.stats in
  let pcpu = Machine.percpu m from in
  let tlb = Cpu.tlb (Machine.cpu m from) in
  let t0 = Machine.now m in
  Machine.delay m m.Machine.costs.Costs.cr3_write;
  Tlb.flush_all tlb;
  if Machine.metering m then
    record_flush m ~rank:0 ~kind:Machine.flush_kind_cr3 (Machine.now m - t0);
  pcpu.Percpu.pending_user <- Percpu.No_flush;
  Array.iter
    (fun slot ->
      if slot.Percpu.slot_mm = info.Flush_info.mm_id then
        slot.Percpu.gen_seen <-
          Stdlib.max slot.Percpu.gen_seen info.Flush_info.new_tlb_gen)
    pcpu.Percpu.asids;
  (* Flush-all broadcast: snapshot the machine's all-cpus set into the
     initiator's scratch instead of building (and filtering) per-broadcast
     lists — two word-array copies, no allocation. *)
  let targets = pcpu.Percpu.scratch_targets in
  Cpuset.copy_into ~dst:targets ~src:m.Machine.all_cpus;
  Cpuset.clear targets from;
  if Cpuset.is_empty targets then begin
    stats.Machine.local_only_flushes <- stats.Machine.local_only_flushes + 1;
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
  end
  else begin
    stats.Machine.shootdowns <- stats.Machine.shootdowns + 1;
    let prep0 = Machine.now m in
    let cfds = Smp.enqueue_work m ~from ~targets ~info ~early_ack:false in
    Smp.send_ipis m ~from ~targets ~irq_id:(irq_id m);
    if Machine.metering m then record_prep m ~from ~targets (Machine.now m - prep0);
    Smp.wait_for_acks m ~from cfds ();
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
  end

let backend =
  {
    Protocol.name = "oracle";
    full_only = true;
    eager_user_full = true;
    honors_batching = false;
    honors_cow = false;
    irq_id;
    perform;
    responder_pending =
      (fun m ~cpu -> not (Queue.is_empty (Machine.percpu m cpu).Percpu.csq));
    quiescent = (fun _ ~cpu:_ _ -> ());
  }
