(** The conservative oracle backend: every flush request becomes one
    synchronous whole-TLB flush IPI broadcast to every other CPU — no
    deferral, no batching, no early ack, no target filtering. Trivially
    correct by construction; the differential fuzzer's reference. *)

val backend : Protocol.t
