(* The paper's optimized Linux protocol — Figure 1 (baseline) / Figure 3
   (optimized), every Table-1 technique gated by Opts flags. This is the
   protocol the paper studies; the other backends exist to compare against
   it (and to cross-check it in the differential fuzzer). *)

open Flush_core

(* The shootdown IPI handler run by responder CPUs. *)
let ipi_handler m ~me (_ : Cpu.t) =
  let pcpu = Machine.percpu m me in
  Smp.drain_queue m ~me ~run:(fun cfd ->
      let info = cfd.Percpu.cfd_info in
      if Machine.tracing m then
        Machine.trace_event m ~cpu:me
          (Trace.Ipi_begin
             {
               seq = cfd.Percpu.cfd_seq;
               initiator = cfd.Percpu.cfd_initiator;
               early_ack = cfd.Percpu.cfd_early_ack;
             });
      if cfd.Percpu.cfd_early_ack then begin
        (* §3.2: no user mapping can be used from inside this handler, so
           acknowledge before flushing — unless page tables are freed,
           which the initiator already encoded in cfd_early_ack. An NMI
           could still preempt us between the ack and the flush: flag the
           window so nmi_uaccess_okay refuses user accesses. *)
        pcpu.Percpu.inflight_flush <- true;
        Smp.ack m ~me ~early:true cfd
      end;
      let t0 = Machine.now m in
      let result =
        flush_tlb_func_impl m ~cpu:me ~user:(default_user_policy m info)
          ~eager_user:false info
      in
      if Machine.metering m then
        record_flush m
          ~rank:(Machine.distance_rank m cfd.Percpu.cfd_initiator me)
          ~kind:(kind_of_result result) (Machine.now m - t0);
      cfd.Percpu.cfd_executed <- true;
      pcpu.Percpu.inflight_flush <- false;
      if not cfd.Percpu.cfd_early_ack then Smp.ack m ~me cfd);
  (* If we interrupted user mode we are about to return to it: any flush
     deferred by §3.4 must complete first. *)
  if Cpu.irq_from_user (Machine.cpu m me) then flush_pending_user m ~cpu:me ~has_stack:true

(* The irq record is fixed per machine (the handler depends only on [m];
   the responder CPU is recovered from the [Cpu.t] the dispatcher passes
   in), so register it with the APIC once, at the machine's first
   shootdown, and send every IPI by id — the send path then allocates
   neither irq records nor delivery closures. *)
let irq_id m =
  let id = m.Machine.proto_irq_id in
  if id >= 0 then id
  else begin
    let irq =
      {
        Cpu.vector = Smp.tlb_shootdown_vector;
        maskable = true;
        handler = (fun cpu -> ipi_handler m ~me:(Cpu.id cpu) cpu);
      }
    in
    let id = Apic.register_irq m.Machine.apic irq in
    m.Machine.proto_irq_id <- id;
    id
  end

(* Initiator-side local flush. Returns the list of user VPNs left for the
   §3.4/§3.1 interplay to flush during the ack wait (empty otherwise). *)
let initiator_local_flush m ~from ~has_remote_targets (info : Flush_info.t) =
  let opts = m.Machine.opts in
  let hybrid =
    opts.Opts.safe && opts.Opts.in_context_flush && opts.Opts.concurrent_flush
    && has_remote_targets
    && (not info.Flush_info.full)
    && (not info.Flush_info.freed_tables)
    && Flush_info.nr_entries info <= opts.Opts.full_flush_threshold
  in
  let user = if hybrid then Skip else default_user_policy m info in
  let t0 = Machine.now m in
  let result = flush_tlb_func_impl m ~cpu:from ~user ~eager_user:false info in
  if Machine.metering m then
    record_flush m ~rank:0 ~kind:(kind_of_result result) (Machine.now m - t0);
  if hybrid && result = `Ranged then Flush_info.vpns info else []

(* Select remote targets into the initiator's scratch cpuset, paying one
   line read per candidate. The mm's cpumask is snapshotted first (the
   candidate reads yield, and a remote context switch may edit the live
   mask under us — the list-building version had the same snapshot
   semantics), then filtered in place: clearing the current bit during
   [Cpuset.iter] is part of its contract. Returns the scratch set, valid
   until this CPU's next shootdown. *)
let select_targets m ~from ~mm (info : Flush_info.t) =
  let opts = m.Machine.opts and stats = m.Machine.stats in
  let targets = (Machine.percpu m from).Percpu.scratch_targets in
  Cpuset.copy_into ~dst:targets ~src:(Mm_struct.cpuset mm);
  Cpuset.clear targets from;
  Cpuset.iter
    (fun c ->
      Smp.read_remote_tlb_state m ~from ~target:c;
      let p = Machine.percpu m c in
      if p.Percpu.lazy_mode then begin
        (* Lazy-TLB CPU: it will sync generations before resuming user. *)
        stats.Machine.ipis_skipped_lazy <- stats.Machine.ipis_skipped_lazy + 1;
        Cpuset.clear targets c
      end
      else if
        opts.Opts.userspace_batching && p.Percpu.batched_mode
        && not info.Flush_info.freed_tables
      then begin
        (* §4.2: the CPU is inside a batching syscall and will sync at its
           mmap_sem-release barrier; no IPI needed. *)
        stats.Machine.ipis_skipped_batched <- stats.Machine.ipis_skipped_batched + 1;
        Cpuset.clear targets c
      end)
    targets;
  targets

(* One complete shootdown for [info], generation already bumped. *)
let perform m ~from ~mm (info : Flush_info.t) token =
  let opts = m.Machine.opts and costs = m.Machine.costs and stats = m.Machine.stats in
  if opts.Opts.unsafe_lazy_batching then begin
    (* LATR-style strawman: flush locally, never notify remote CPUs, and
       return as if the flush were complete. The Checker flags the stale
       accesses this permits. *)
    ignore
      (flush_tlb_func_impl m ~cpu:from ~user:(default_user_policy m info)
         ~eager_user:false info);
    stats.Machine.local_only_flushes <- stats.Machine.local_only_flushes + 1;
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
  end
  else begin
    let sel0 = Machine.now m in
    let targets = select_targets m ~from ~mm info in
    let sel_dt = Machine.now m - sel0 in
    if Cpuset.is_empty targets then begin
      stats.Machine.local_only_flushes <- stats.Machine.local_only_flushes + 1;
      ignore (initiator_local_flush m ~from ~has_remote_targets:false info);
      Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
    end
    else begin
      stats.Machine.shootdowns <- stats.Machine.shootdowns + 1;
      (* FreeBSD comparator: one machine-wide shootdown at a time. *)
      if opts.Opts.freebsd_protocol then begin
        Machine.delay m m.Machine.costs.Costs.lock_uncontended;
        Rwsem.down_write m.Machine.ipi_mutex
      end;
      let early_ack = opts.Opts.early_ack && not info.Flush_info.freed_tables in
      let run_remote () =
        let t0 = Machine.now m in
        let cfds = Smp.enqueue_work m ~from ~targets ~info ~early_ack in
        Smp.send_ipis m ~from ~targets ~irq_id:(irq_id m);
        (* Prep = target selection + CFD enqueue + ICR writes, i.e. every
           initiator-side cycle before the IPIs are in flight; attributed
           like ack_wait to the farthest target. *)
        if Machine.metering m then
          record_prep m ~from ~targets (sel_dt + (Machine.now m - t0));
        cfds
      in
      if opts.Opts.concurrent_flush then begin
        (* §3.1: send first; the local flush overlaps IPI delivery. *)
        let cfds = run_remote () in
        let leftover = ref (initiator_local_flush m ~from ~has_remote_targets:true info) in
        let pcpu = Machine.percpu m from in
        let tlb = Cpu.tlb (Machine.cpu m from) in
        let user_pcid = Percpu.user_pcid pcpu.Percpu.curr_asid in
        let any_ack () = Array.exists (fun c -> c.Percpu.cfd_acked) cfds in
        let while_waiting () =
          (* §3.4 interplay: burn the wait on user-PTE INVPCIDs until the
             first ack lands, then defer the rest to kernel exit. *)
          match !leftover with
          | [] -> ()
          | vpn :: rest ->
              if not (any_ack ()) then begin
                Machine.delay m costs.Costs.invpcid_single;
                Tlb.invpcid_addr tlb ~pcid:user_pcid ~vpn;
                leftover := rest
              end
        in
        (* Same condition [while_waiting] acts on, minus the action: lets
           the ack wait skip resuming us on poll ticks with nothing to do. *)
        let waiting_work () =
          match !leftover with [] -> false | _ :: _ -> not (any_ack ())
        in
        Smp.wait_for_acks m ~from cfds ~while_waiting ~waiting_work ();
        (match !leftover with
        | [] -> ()
        | vpn :: _ as rest ->
            stats.Machine.in_context_deferrals <- stats.Machine.in_context_deferrals + 1;
            let deferred =
              Flush_info.ranged ~mm_id:info.Flush_info.mm_id ~start_vpn:vpn
                ~pages:(List.length rest) ~stride:info.Flush_info.stride
                ~new_tlb_gen:info.Flush_info.new_tlb_gen ()
            in
            Percpu.defer_user_flush pcpu deferred ~threshold:opts.Opts.full_flush_threshold)
      end
      else begin
        (* Baseline (Figure 1): local flush strictly before the IPIs. *)
        ignore (initiator_local_flush m ~from ~has_remote_targets:false info);
        let cfds = run_remote () in
        Smp.wait_for_acks m ~from cfds ()
      end;
      if opts.Opts.freebsd_protocol then Rwsem.up_write m.Machine.ipi_mutex;
      Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token;
      tracef m ~cpu:from "shootdown complete"
    end
  end

let backend =
  {
    Protocol.name = "paper";
    full_only = false;
    eager_user_full = false;
    honors_batching = true;
    honors_cow = true;
    irq_id;
    perform;
    responder_pending =
      (fun m ~cpu -> not (Queue.is_empty (Machine.percpu m cpu).Percpu.csq));
    quiescent = (fun _ ~cpu:_ _ -> ());
  }
