(** The paper's optimized Linux protocol backend (Figures 1/3): targeted
    IPIs over the mm cpumask with lazy/batched filtering, generation
    bookkeeping, and every Table-1 optimization gated by {!Opts} flags. *)

val backend : Protocol.t

(** Select remote shootdown targets into [from]'s scratch cpuset, skipping
    lazy-TLB CPUs and (under §4.2) CPUs inside batching syscalls; one
    remote line read per candidate. Exposed for the CoW elision path in
    {!Shootdown.flush_tlb_page_cow}, which is paper-protocol machinery. *)
val select_targets :
  Machine.t -> from:int -> mm:Mm_struct.t -> Flush_info.t -> Cpuset.t

(** The backend's registered shootdown irq id (for the CoW path's direct
    IPI send). *)
val irq_id : Machine.t -> int
