(* Charmos-style per-CPU ring-buffer queue (SNIPPETS.md §2-3): the initiator
   posts (mm, vpn) invalidation entries into each target's bounded ring —
   collapsing to a whole-TLB flush-all when a ring overflows — kicks the
   targets, and spins for their ack generations with an initial-spin /
   backoff-multiplier / resend retry ladder. Responders drain their ring
   FIFO and publish the queue generation they have drained up to.

   Correctness stance: responders invalidate posted translations in every
   ASID slot caching the mm but do not advance gen_seen (a ring drain can
   observe a partially posted range, so no generation is provably complete
   from the responder's view); the switch-in check_and_sync_tlb covers the
   bookkeeping gap with a conservative full flush, exactly as it covers
   CPUs the paper protocol never IPIs. The initiator's ack wait ends only
   when every target has drained past this shootdown's queue generation, so
   the checker window still closes with no stale translation machine-wide. *)

open Flush_core

(* Charmos retry ladder constants (scaled to simulator cycles). *)
let initial_spin = 2000
let max_retries = 6
let backoff_mult = 4

let ipi_handler m ~me (_ : Cpu.t) =
  let p = Machine.percpu m me in
  let tlb = Cpu.tlb (Machine.cpu m me) in
  let costs = m.Machine.costs in
  Machine.charge_read m p.Percpu.line_queue ~by:me;
  (* Drain until a check sees the ring empty; the ack store happens in the
     same synchronous stretch as that check, so a producer either lands
     before it (drained now) or after (its IPI re-enters this handler). *)
  let rec drain () =
    if p.Percpu.q_flush_all then begin
      p.Percpu.q_flush_all <- false;
      (* Collapsed entries are covered by the flush-all: discard them. *)
      p.Percpu.q_head <- p.Percpu.q_tail;
      let t0 = Machine.now m in
      Machine.delay m costs.Costs.cr3_write;
      Tlb.flush_all tlb;
      (* The flush covered whatever a deferred user flush would have. *)
      p.Percpu.pending_user <- Percpu.No_flush;
      if Machine.metering m then
        record_flush m ~rank:0 ~kind:Machine.flush_kind_cr3 (Machine.now m - t0);
      drain ()
    end
    else if p.Percpu.q_head < p.Percpu.q_tail then begin
      let s = p.Percpu.q_head mod Percpu.queue_slots in
      let mm_id = p.Percpu.q_mm.(s)
      and vpn = p.Percpu.q_vpn.(s)
      and from = p.Percpu.q_from.(s) in
      p.Percpu.q_head <- p.Percpu.q_head + 1;
      let t0 = Machine.now m in
      (* Invalidate the posted translation in every slot caching the mm,
         kernel and (under PTI) user PCID — eager on both halves, so the
         drain leaves nothing deferred on the responder's behalf. *)
      Array.iteri
        (fun i slot ->
          if slot.Percpu.slot_mm = mm_id then begin
            Machine.delay m costs.Costs.invpcid_single;
            Tlb.invpcid_addr tlb ~pcid:(Percpu.kernel_pcid i) ~vpn;
            if m.Machine.opts.Opts.safe then begin
              Machine.delay m costs.Costs.invpcid_single;
              Tlb.invpcid_addr tlb ~pcid:(Percpu.user_pcid i) ~vpn
            end
          end)
        p.Percpu.asids;
      if Machine.metering m then
        record_flush m
          ~rank:(Machine.distance_rank m from me)
          ~kind:Machine.flush_kind_invlpg (Machine.now m - t0);
      drain ()
    end
    else begin
      p.Percpu.q_ack_gen <- p.Percpu.q_target_gen;
      Machine.charge_atomic m p.Percpu.line_queue ~by:me
    end
  in
  drain ();
  if Cpu.irq_from_user (Machine.cpu m me) then flush_pending_user m ~cpu:me ~has_stack:true

let irq_id m =
  let id = m.Machine.proto_irq_id in
  if id >= 0 then id
  else begin
    let irq =
      {
        Cpu.vector = Smp.tlb_shootdown_vector;
        maskable = true;
        handler = (fun cpu -> ipi_handler m ~me:(Cpu.id cpu) cpu);
      }
    in
    let id = Apic.register_irq m.Machine.apic irq in
    m.Machine.proto_irq_id <- id;
    id
  end

(* Post [info] into [c]'s ring under queue generation [gen]. The ring
   mutations run after the line RMW completes, with no yield in between, so
   concurrent producers serialize at the charge and never interleave
   half-written entries. *)
let post_to m ~from ~gen (info : Flush_info.t) c =
  let p = Machine.percpu m c in
  Machine.charge_atomic m p.Percpu.line_queue ~by:from;
  let n = Flush_info.nr_entries info in
  if
    info.Flush_info.full || p.Percpu.q_flush_all
    || p.Percpu.q_tail - p.Percpu.q_head + n > Percpu.queue_slots
  then p.Percpu.q_flush_all <- true
  else
    List.iter
      (fun vpn ->
        let s = p.Percpu.q_tail mod Percpu.queue_slots in
        p.Percpu.q_mm.(s) <- info.Flush_info.mm_id;
        p.Percpu.q_vpn.(s) <- vpn;
        p.Percpu.q_gen.(s) <- info.Flush_info.new_tlb_gen;
        p.Percpu.q_from.(s) <- from;
        p.Percpu.q_tail <- p.Percpu.q_tail + 1)
      (Flush_info.vpns info);
  if gen > p.Percpu.q_target_gen then p.Percpu.q_target_gen <- gen

let perform m ~from ~mm (info : Flush_info.t) token =
  let stats = m.Machine.stats in
  let pcpu = Machine.percpu m from in
  (* Local flush first (there is no local ring): the shared
     generation-tracked flush function, with the §3.4 deferral policy. *)
  let t0 = Machine.now m in
  let result =
    flush_tlb_func_impl m ~cpu:from ~user:(default_user_policy m info)
      ~eager_user:false info
  in
  if Machine.metering m then
    record_flush m ~rank:0 ~kind:(kind_of_result result) (Machine.now m - t0);
  (* Targets: every CPU the mm's cpumask names, unfiltered — the queue
     protocol has no lazy/batched skip logic; an idle target just drains a
     short ring. *)
  let targets = pcpu.Percpu.scratch_targets in
  Cpuset.copy_into ~dst:targets ~src:(Mm_struct.cpuset mm);
  Cpuset.clear targets from;
  if Cpuset.is_empty targets then begin
    stats.Machine.local_only_flushes <- stats.Machine.local_only_flushes + 1;
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
  end
  else begin
    stats.Machine.shootdowns <- stats.Machine.shootdowns + 1;
    let prep0 = Machine.now m in
    let gen = Machine.next_ipi_seq m in
    Cpuset.iter (fun c -> post_to m ~from ~gen info c) targets;
    Smp.send_ipis m ~from ~targets ~irq_id:(irq_id m);
    if Machine.metering m then
      record_prep m ~from ~targets (Machine.now m - prep0);
    (* Ack wait: all targets must drain past [gen]. Initial spin, then up
       to [max_retries] resends with a backoff-multiplied spin each.
       Resends go only to the still-pending subset: re-IPIing an acked
       responder would be semantically idempotent (it drains an empty
       ring), but it would re-interrupt the responder and count phantom
       deliveries into n_ipis and the per-distance delivery meter —
       Apic.send_ipi_id bills every target it is handed. After the ladder
       is exhausted we spin without resending (simulated IPIs are
       reliable, so the wait terminates). *)
    let ack0 = Machine.now m in
    let all_acked () =
      Cpuset.fold
        (fun acc c -> acc && (Machine.percpu m c).Percpu.q_ack_gen >= gen)
        true targets
    in
    let cpu_t = Machine.cpu m from in
    let spin = ref initial_spin in
    let retries = ref 0 in
    let deadline = ref (Machine.now m + !spin) in
    while not (all_acked ()) do
      if !retries < max_retries then begin
        Cpu.poll_wait cpu_t (fun () -> all_acked () || Machine.now m >= !deadline);
        if (not (all_acked ())) && Machine.now m >= !deadline then begin
          (* [scratch_targets] must keep the full set for the ack fold and
             the post-wait line reads, so the pending subset gets its own
             per-initiator scratch. *)
          let pending = pcpu.Percpu.scratch_resend in
          Cpuset.copy_into ~dst:pending ~src:targets;
          Cpuset.iter
            (fun c ->
              if (Machine.percpu m c).Percpu.q_ack_gen >= gen then
                Cpuset.clear pending c)
            pending;
          if not (Cpuset.is_empty pending) then
            Smp.send_ipis m ~from ~targets:pending ~irq_id:(irq_id m);
          incr retries;
          spin := !spin * backoff_mult;
          deadline := Machine.now m + !spin
        end
      end
      else Cpu.poll_wait cpu_t all_acked
    done;
    (* Observing each ack generation pulls the responder's ring line back. *)
    Cpuset.iter
      (fun c -> Machine.charge_read m (Machine.percpu m c).Percpu.line_queue ~by:from)
      targets;
    if Machine.metering m then begin
      let far =
        Cpuset.fold
          (fun acc c -> Stdlib.max acc (Machine.distance_rank m from c))
          0 targets
      in
      Metrics.record_cycles m.Machine.phases.Machine.ack.(far) (Machine.now m - ack0)
    end;
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token;
    tracef m ~cpu:from "queue-spin shootdown complete (retries %d)" !retries
  end

let backend =
  {
    Protocol.name = "queue-spin";
    full_only = false;
    eager_user_full = false;
    honors_batching = false;
    honors_cow = false;
    irq_id;
    perform;
    responder_pending =
      (fun m ~cpu ->
        let p = Machine.percpu m cpu in
        p.Percpu.q_flush_all
        || p.Percpu.q_head < p.Percpu.q_tail
        || p.Percpu.q_ack_gen < p.Percpu.q_target_gen);
    quiescent =
      (fun m ~cpu fail ->
        let p = Machine.percpu m cpu in
        if p.Percpu.q_flush_all || p.Percpu.q_head < p.Percpu.q_tail then
          fail (Printf.sprintf "cpu%d queue-spin ring not drained at quiescence" cpu);
        if p.Percpu.q_ack_gen < p.Percpu.q_target_gen then
          fail
            (Printf.sprintf "cpu%d queue-spin ack generation behind at quiescence" cpu));
  }
