(** Charmos-style per-CPU ring-buffer queue backend: bounded invalidation
    rings with flush-all collapsing on overflow, and an initial-spin /
    backoff-multiplier / resend ack-wait ladder. See SNIPPETS.md §2-3. *)

val backend : Protocol.t

(** Retry-ladder constants (exposed for tests). *)
val initial_spin : int

val max_retries : int
val backoff_mult : int
