(* Cronus-style single-global-lock synchronous full broadcast (SNIPPETS.md
   §1): the initiator takes the machine-wide ipi_mutex, posts the flush
   descriptor to one protocol-wide status line, clears every target's done
   bit, self-invalidates, kicks every other CPU, and spins until the whole
   status table reads done. No target filtering, no early ack, no overlap —
   the whole machine serializes on one lock and one cache line, which is
   exactly the contention the paper's protocol avoids and the shootout
   report prices.

   Blocked waiters are safe: a CPU parked in Rwsem.down_write still services
   IPIs (Cpu.post_irq dispatches detached handlers), so an initiator-to-be
   can acknowledge the current broadcast while queueing for the lock — the
   same argument that keeps Opts.freebsd_protocol deadlock-free. *)

open Flush_core

(* Responder: read the posted descriptor off the status line, apply it with
   the shared generation-tracked flush function, and set our done bit. The
   global lock serializes broadcasts, so at most one posted descriptor
   exists at a time and the None case is unreachable (kept as a no-op for
   robustness against spurious wakeups). *)
let ipi_handler m ~me (_ : Cpu.t) =
  let pcpu = Machine.percpu m me in
  Machine.charge_read m m.Machine.line_sync_status ~by:me;
  (match m.Machine.sync_info with
  | None -> ()
  | Some info ->
      if not pcpu.Percpu.sync_done then begin
        let t0 = Machine.now m in
        let result =
          flush_tlb_func_impl m ~cpu:me ~user:(default_user_policy m info)
            ~eager_user:false info
        in
        if Machine.metering m then begin
          let rank =
            if m.Machine.sync_from >= 0 then
              Machine.distance_rank m m.Machine.sync_from me
            else 0
          in
          record_flush m ~rank ~kind:(kind_of_result result) (Machine.now m - t0)
        end;
        (* Status-table write: the deliberate all-responders contention
           point of the design. *)
        pcpu.Percpu.sync_done <- true;
        Machine.charge_atomic m m.Machine.line_sync_status ~by:me
      end);
  if Cpu.irq_from_user (Machine.cpu m me) then flush_pending_user m ~cpu:me ~has_stack:true

let irq_id m =
  let id = m.Machine.proto_irq_id in
  if id >= 0 then id
  else begin
    let irq =
      {
        Cpu.vector = Smp.tlb_shootdown_vector;
        maskable = true;
        handler = (fun cpu -> ipi_handler m ~me:(Cpu.id cpu) cpu);
      }
    in
    let id = Apic.register_irq m.Machine.apic irq in
    m.Machine.proto_irq_id <- id;
    id
  end

let perform m ~from ~mm:_ (info : Flush_info.t) token =
  let stats = m.Machine.stats in
  let pcpu = Machine.percpu m from in
  (* One shootdown machine-wide at a time. *)
  Machine.delay m m.Machine.costs.Costs.lock_uncontended;
  Rwsem.down_write m.Machine.ipi_mutex;
  let targets = pcpu.Percpu.scratch_targets in
  Cpuset.copy_into ~dst:targets ~src:m.Machine.all_cpus;
  Cpuset.clear targets from;
  if Cpuset.is_empty targets then begin
    stats.Machine.local_only_flushes <- stats.Machine.local_only_flushes + 1;
    let t0 = Machine.now m in
    let result =
      flush_tlb_func_impl m ~cpu:from ~user:(default_user_policy m info)
        ~eager_user:false info
    in
    if Machine.metering m then
      record_flush m ~rank:0 ~kind:(kind_of_result result) (Machine.now m - t0);
    Rwsem.up_write m.Machine.ipi_mutex;
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
  end
  else begin
    stats.Machine.shootdowns <- stats.Machine.shootdowns + 1;
    let prep0 = Machine.now m in
    (* Post the descriptor and clear the status table, one line write. *)
    Machine.charge_write m m.Machine.line_sync_status ~by:from;
    m.Machine.sync_info <- Some info;
    m.Machine.sync_from <- from;
    Cpuset.iter (fun c -> (Machine.percpu m c).Percpu.sync_done <- false) targets;
    (* Initiator self-invalidates before kicking anyone. *)
    let t0 = Machine.now m in
    let result =
      flush_tlb_func_impl m ~cpu:from ~user:(default_user_policy m info)
        ~eager_user:false info
    in
    if Machine.metering m then
      record_flush m ~rank:0 ~kind:(kind_of_result result) (Machine.now m - t0);
    Smp.send_ipis m ~from ~targets ~irq_id:(irq_id m);
    if Machine.metering m then
      record_prep m ~from ~targets (Machine.now m - prep0);
    (* Spin until the whole status table reads done. [ready] only loads
       responder-written booleans — side-effect-free, as poll_wait
       requires. *)
    let ack0 = Machine.now m in
    let all_done () =
      Cpuset.fold (fun acc c -> acc && (Machine.percpu m c).Percpu.sync_done) true targets
    in
    let cpu_t = Machine.cpu m from in
    while not (all_done ()) do
      Cpu.poll_wait cpu_t all_done
    done;
    (* Observing the table pulls the responder-written line back once. *)
    Machine.charge_read m m.Machine.line_sync_status ~by:from;
    if Machine.metering m then begin
      let far =
        Cpuset.fold
          (fun acc c -> Stdlib.max acc (Machine.distance_rank m from c))
          0 targets
      in
      Metrics.record_cycles m.Machine.phases.Machine.ack.(far) (Machine.now m - ack0)
    end;
    (* Retire the post before releasing the lock: the next initiator's
       clear-and-post must never race a responder reading our descriptor. *)
    m.Machine.sync_info <- None;
    m.Machine.sync_from <- -1;
    Machine.charge_write m m.Machine.line_sync_status ~by:from;
    Rwsem.up_write m.Machine.ipi_mutex;
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token;
    tracef m ~cpu:from "sync-broadcast complete"
  end

let backend =
  {
    Protocol.name = "sync-broadcast";
    full_only = false;
    eager_user_full = false;
    honors_batching = false;
    honors_cow = false;
    irq_id;
    perform;
    responder_pending =
      (fun m ~cpu ->
        (* A posted broadcast this CPU has not applied yet counts as
           outstanding responder work. *)
        Option.is_some m.Machine.sync_info
        && not (Machine.percpu m cpu).Percpu.sync_done);
    quiescent =
      (fun m ~cpu fail ->
        if Option.is_some m.Machine.sync_info then
          fail "sync-broadcast descriptor still posted at quiescence";
        if not (Machine.percpu m cpu).Percpu.sync_done then
          fail
            (Printf.sprintf "cpu%d sync-broadcast done bit clear at quiescence" cpu));
  }
