(** Cronus-style single-global-lock synchronous broadcast backend: one
    machine-wide lock and one protocol-wide status table; the initiator
    posts the flush, self-invalidates, kicks every other CPU and spins
    until the whole table reads done. See SNIPPETS.md §1. *)

val backend : Protocol.t
