(* The shootdown-protocol backend interface. One value of [t] per
   Opts.protocol constructor (proto_paper / proto_oracle / proto_sync /
   proto_queue); Shootdown dispatches on the variant exactly once and
   everything protocol-specific flows through these hooks. *)

type t = {
  name : string;
      (* stable label, = Opts.protocol_label of the matching constructor *)
  full_only : bool;
      (* flush-decision hook: request construction never builds ranged
         infos (the oracle: full, always) *)
  eager_user_full : bool;
      (* flush-decision hook: a local full flush invalidates the user PCID
         on the spot instead of deferring to return-to-user *)
  honors_batching : bool;
      (* the §4.2 userspace-batching deferral applies under this backend *)
  honors_cow : bool;
      (* the §4.1 CoW local-flush elision applies under this backend *)
  irq_id : Machine.t -> int;
      (* ipi-handler hook: the backend's registered shootdown irq, created
         at the machine's first shootdown and cached in
         Machine.proto_irq_id *)
  perform :
    Machine.t -> from:int -> mm:Mm_struct.t -> Flush_info.t -> Checker.token -> unit;
      (* one complete shootdown for an info whose generation is already
         bumped; must close the checker window on every path *)
  responder_pending : Machine.t -> cpu:int -> bool;
      (* ack-tracking hook: does this CPU have outstanding responder work
         (posted but unexecuted flushes)? Feeds nmi_uaccess_okay. *)
  quiescent : Machine.t -> cpu:int -> (string -> unit) -> unit;
      (* invariant hook: report (via the callback) any backend state that
         should not survive quiescence; Explorer.post_invariants drives it *)
}

(* The Opts.protocol -> t dispatch lives in Shootdown (each backend module
   depends on this interface type, so the table cannot live here without a
   cycle). *)
