(** The shootdown-protocol backend interface (DESIGN.md §13).

    One value of {!t} per {!Opts.protocol} constructor — {!Proto_paper},
    {!Proto_oracle}, {!Proto_sync}, {!Proto_queue} — and {!Shootdown}
    dispatches on the variant exactly once per entry point. The hooks fall
    into the four groups the interface exists for:

    - {b perform}: the initiator side of one complete shootdown;
    - {b ipi handler}: [irq_id] names the backend's registered responder
      handler (one long-lived irq record per machine);
    - {b flush decisions}: [full_only], [eager_user_full],
      [honors_batching], [honors_cow] — the request-construction and
      deferral policies that used to be scattered [oracle_flush] branches;
    - {b ack tracking}: [responder_pending] (outstanding responder work,
      for [nmi_uaccess_okay]) and [quiescent] (what must not survive
      quiescence, for the explorer's invariant pass). *)

type t = {
  name : string;
      (** stable label, equal to {!Opts.protocol_label} of the matching
          constructor *)
  full_only : bool;
      (** request construction never builds ranged infos (the oracle:
          full, always) *)
  eager_user_full : bool;
      (** a local full flush invalidates the user PCID on the spot instead
          of deferring to return-to-user *)
  honors_batching : bool;
      (** the §4.2 userspace-batching deferral applies under this backend *)
  honors_cow : bool;
      (** the §4.1 CoW local-flush elision applies under this backend *)
  irq_id : Machine.t -> int;
      (** the backend's registered shootdown irq, created at the machine's
          first shootdown and cached in [Machine.proto_irq_id] *)
  perform :
    Machine.t -> from:int -> mm:Mm_struct.t -> Flush_info.t -> Checker.token -> unit;
      (** one complete shootdown for an info whose generation is already
          bumped; closes the checker window on every path *)
  responder_pending : Machine.t -> cpu:int -> bool;
      (** does this CPU have outstanding responder work (posted but
          unexecuted flushes)? Feeds [nmi_uaccess_okay]. *)
  quiescent : Machine.t -> cpu:int -> (string -> unit) -> unit;
      (** report (via the callback) any backend state that should not
          survive quiescence; [Explorer.post_invariants] drives it *)
}
