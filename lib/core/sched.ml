let switch_mm m ~cpu mm =
  let pcpu = Machine.percpu m cpu in
  let costs = m.Machine.costs in
  let tlb = Cpu.tlb (Machine.cpu m cpu) in
  let same_mm =
    match pcpu.Percpu.loaded_mm with
    | Some old -> Mm_struct.id old = Mm_struct.id mm
    | None -> false
  in
  if not same_mm then begin
    (match pcpu.Percpu.loaded_mm with
    | Some old ->
        (* Leaving an address space: drop out of its shootdown targeting. *)
        Machine.charge_atomic m (Mm_struct.line old) ~by:cpu;
        Mm_struct.cpu_clear old ~cpu
    | None -> ());
    Machine.charge_atomic m (Mm_struct.line mm) ~by:cpu;
    Mm_struct.cpu_set mm ~cpu;
    let slot_idx, recycled =
      Percpu.choose_slot pcpu ~mm_id:(Mm_struct.id mm) ~now:(Machine.now m)
    in
    if recycled then begin
      (* The ASID held another mm's translations: flush both PCIDs. *)
      Machine.delay m costs.Costs.invpcid_full;
      Tlb.flush_pcid tlb ~pcid:(Percpu.kernel_pcid slot_idx);
      if m.Machine.opts.Opts.safe then begin
        Machine.delay m costs.Costs.invpcid_full;
        Tlb.flush_pcid tlb ~pcid:(Percpu.user_pcid slot_idx)
      end
    end;
    pcpu.Percpu.curr_asid <- slot_idx;
    pcpu.Percpu.loaded_mm <- Some mm;
    Machine.delay m costs.Costs.cr3_write;
    Machine.delay m costs.Costs.context_switch;
    (* Catch up with generations this slot missed while inactive. *)
    let slot = pcpu.Percpu.asids.(slot_idx) in
    if recycled || slot.Percpu.gen_seen = 0 then begin
      Machine.charge_read m (Mm_struct.line mm) ~by:cpu;
      if Machine.tracing m then
        Machine.trace_event m ~cpu
          (Trace.Gen_read { mm_id = Mm_struct.id mm; gen = Mm_struct.tlb_gen mm });
      slot.Percpu.gen_seen <- Mm_struct.tlb_gen mm
    end
    else Shootdown.check_and_sync_tlb m ~cpu
  end;
  pcpu.Percpu.lazy_mode <- false

let unload m ~cpu =
  let pcpu = Machine.percpu m cpu in
  match pcpu.Percpu.loaded_mm with
  | None -> ()
  | Some mm ->
      Machine.charge_atomic m (Mm_struct.line mm) ~by:cpu;
      Mm_struct.cpu_clear mm ~cpu;
      pcpu.Percpu.loaded_mm <- None;
      pcpu.Percpu.lazy_mode <- false

let enter_lazy m ~cpu =
  let pcpu = Machine.percpu m cpu in
  (* The lazy flag lives on a contended line (which one depends on the
     §3.3 layout); flipping it is a local write that later forces a
     transfer to any shootdown initiator reading it. *)
  let line =
    if m.Machine.opts.Opts.cacheline_consolidation then pcpu.Percpu.line_csq
    else pcpu.Percpu.line_tlb
  in
  Machine.charge_write m line ~by:cpu;
  pcpu.Percpu.lazy_mode <- true

let exit_lazy m ~cpu =
  let pcpu = Machine.percpu m cpu in
  if pcpu.Percpu.lazy_mode then begin
    let line =
      if m.Machine.opts.Opts.cacheline_consolidation then pcpu.Percpu.line_csq
      else pcpu.Percpu.line_tlb
    in
    Machine.charge_write m line ~by:cpu;
    pcpu.Percpu.lazy_mode <- false;
    (* Shootdowns skipped us while lazy: synchronize before user code.
       Leaving lazy mode resumes the user thread, so the deferred user-PCID
       flush (performed by the return-to-user CR3 load) runs here too. *)
    Shootdown.check_and_sync_tlb m ~cpu;
    Shootdown.flush_pending_user m ~cpu ~has_stack:true
  end
