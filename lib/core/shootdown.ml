(* The TLB shootdown protocol. Figure 1 (baseline) / Figure 3 (optimized).

   Terminology matches the paper: the "initiator" runs flush_tlb_mm_range;
   "responders" run the IPI handler. flush_tlb_func is the shared flush
   logic with Linux's generation bookkeeping. *)

let actor cpu = Printf.sprintf "cpu%d" cpu

(* [actor] formats eagerly, so check enablement before building it. *)
let tracef m ~cpu fmt =
  let trace = m.Machine.trace in
  if Trace.enabled trace then Trace.emitf trace ~actor:(actor cpu) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

(* How the user-PCID half of a flush is handled under PTI. *)
type user_flush = Eager | Defer | Skip

(* --- phase metering helpers (DESIGN.md §10) --- *)

let kind_of_result = function
  | `Ranged -> Machine.flush_kind_invlpg
  | `Full -> Machine.flush_kind_cr3
  | `Skipped -> Machine.flush_kind_skipped

(* Callers gate on [Machine.metering]. *)
let record_flush m ~rank ~kind dt =
  Metrics.record_cycles
    m.Machine.phases.Machine.flush.(Machine.flush_index ~rank ~kind)
    dt

(* Full local flush of the kernel PCID; the user PCID full flush is always
   deferred to the next return-to-user CR3 load (stock Linux behaviour).
   The oracle mode flushes the user PCID eagerly instead — it never defers
   anything. *)
let local_full_flush m ~cpu pcpu =
  let tlb = Cpu.tlb (Machine.cpu m cpu) in
  Machine.delay m m.Machine.costs.Costs.cr3_write;
  Tlb.cr3_flush tlb ~pcid:(Percpu.kernel_pcid pcpu.Percpu.curr_asid);
  if m.Machine.opts.Opts.safe then begin
    if m.Machine.opts.Opts.oracle_flush then begin
      Machine.delay m m.Machine.costs.Costs.cr3_write;
      Tlb.cr3_flush tlb ~pcid:(Percpu.user_pcid pcpu.Percpu.curr_asid)
    end
    else pcpu.Percpu.pending_user <- Percpu.Full_flush
  end

let flush_tlb_func_impl m ~cpu ~user (info : Flush_info.t) =
  let opts = m.Machine.opts and costs = m.Machine.costs and stats = m.Machine.stats in
  let pcpu = Machine.percpu m cpu in
  let tlb = Cpu.tlb (Machine.cpu m cpu) in
  match pcpu.Percpu.loaded_mm with
  | Some mm when Mm_struct.id mm = info.Flush_info.mm_id ->
      let slot = pcpu.Percpu.asids.(pcpu.Percpu.curr_asid) in
      if slot.Percpu.gen_seen >= info.Flush_info.new_tlb_gen then begin
        stats.Machine.flush_requests_skipped <- stats.Machine.flush_requests_skipped + 1;
        `Skipped
      end
      else begin
        (* Read the mm's current generation (one contended line). *)
        Machine.charge_read m (Mm_struct.line mm) ~by:cpu;
        let latest_gen = Mm_struct.tlb_gen mm in
        if Machine.tracing m then
          Machine.trace_event m ~cpu
            (Trace.Gen_read { mm_id = info.Flush_info.mm_id; gen = latest_gen });
        let behind = info.Flush_info.new_tlb_gen > slot.Percpu.gen_seen + 1 in
        if info.Flush_info.full
           || Flush_info.nr_entries info > opts.Opts.full_flush_threshold
           || behind
        then begin
          (* Full flush; fast-forward to the latest generation so queued
             requests can be skipped (the §5.2 "flush storm" shortcut). *)
          if behind && not info.Flush_info.full then
            stats.Machine.full_flush_fallbacks <- stats.Machine.full_flush_fallbacks + 1;
          local_full_flush m ~cpu pcpu;
          slot.Percpu.gen_seen <- Stdlib.max latest_gen info.Flush_info.new_tlb_gen;
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Tlb_flush
                 {
                   mm_id = info.Flush_info.mm_id;
                   full = true;
                   entries = 0;
                   gen = slot.Percpu.gen_seen;
                 });
          `Full
        end
        else begin
          let vpns = Flush_info.vpns info in
          let kernel_pcid = Percpu.kernel_pcid pcpu.Percpu.curr_asid in
          List.iter
            (fun vpn ->
              Machine.delay m costs.Costs.invlpg;
              Tlb.invlpg tlb ~current_pcid:kernel_pcid ~vpn)
            vpns;
          if opts.Opts.safe then begin
            match user with
            | Eager ->
                let user_pcid = Percpu.user_pcid pcpu.Percpu.curr_asid in
                List.iter
                  (fun vpn ->
                    Machine.delay m costs.Costs.invpcid_single;
                    Tlb.invpcid_addr tlb ~pcid:user_pcid ~vpn)
                  vpns
            | Defer ->
                stats.Machine.in_context_deferrals <- stats.Machine.in_context_deferrals + 1;
                Percpu.defer_user_flush pcpu info ~threshold:opts.Opts.full_flush_threshold
            | Skip -> ()
          end;
          slot.Percpu.gen_seen <- info.Flush_info.new_tlb_gen;
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Tlb_flush
                 {
                   mm_id = info.Flush_info.mm_id;
                   full = false;
                   entries = List.length vpns;
                   gen = slot.Percpu.gen_seen;
                 });
          `Ranged
        end
      end
  | Some _ | None ->
      (* The address space is not loaded here (raced with a context
         switch); the switch-in generation check covers it. *)
      stats.Machine.flush_requests_skipped <- stats.Machine.flush_requests_skipped + 1;
      `Skipped

(* Default user-flush policy for a CPU that is not the initiator (or an
   initiator without the concurrent-flush overlap): defer under §3.4 unless
   page tables are being freed. *)
let default_user_policy m (info : Flush_info.t) =
  if m.Machine.opts.Opts.in_context_flush && not info.Flush_info.freed_tables then Defer
  else Eager

let flush_tlb_func m ~cpu info =
  flush_tlb_func_impl m ~cpu ~user:(default_user_policy m info) info

let flush_pending_user m ~cpu ~has_stack =
  let opts = m.Machine.opts and costs = m.Machine.costs in
  if opts.Opts.safe then begin
    let pcpu = Machine.percpu m cpu in
    let tlb = Cpu.tlb (Machine.cpu m cpu) in
    let user_pcid = Percpu.user_pcid pcpu.Percpu.curr_asid in
    let pending = Percpu.take_pending_user pcpu in
    let t0 = Machine.now m in
    (match pending with
    | Percpu.No_flush -> ()
    | (Percpu.Full_flush | Percpu.Ranged _) when opts.Opts.bug_skip_deferred_flush ->
        (* Injected protocol bug for the race detector: the deferred user
           flush is silently dropped, leaving stale user-PCID entries live
           past return-to-user. *)
        tracef m ~cpu "BUG: deferred user flush dropped"
    | Percpu.Full_flush ->
        (* The return-to-user CR3 load simply skips the NOFLUSH bit: the
           whole user PCID is invalidated for free. *)
        Tlb.cr3_flush tlb ~pcid:user_pcid;
        if Machine.tracing m then
          Machine.trace_event m ~cpu
            (Trace.Deferred_flush_exec { full = true; entries = 0 })
    | Percpu.Ranged info ->
        if not has_stack then begin
          (* No stack to run the INVLPG loop on (e.g. IRET return path). *)
          Tlb.cr3_flush tlb ~pcid:user_pcid;
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Deferred_flush_exec { full = true; entries = 0 })
        end
        else begin
          let vpns = Flush_info.vpns info in
          List.iter
            (fun vpn ->
              Machine.delay m costs.Costs.invlpg;
              Tlb.invlpg tlb ~current_pcid:user_pcid ~vpn)
            vpns;
          (* Spectre-v1: the flush loop's bound must not be speculated
             past while stale user PTEs linger. *)
          Machine.delay m costs.Costs.lfence;
          if Machine.tracing m then
            Machine.trace_event m ~cpu
              (Trace.Deferred_flush_exec { full = false; entries = List.length vpns })
        end);
    match pending with
    | Percpu.No_flush -> ()
    | Percpu.Full_flush | Percpu.Ranged _ ->
        (* The §3.4 deferred-to-return execution runs on the deferring CPU
           itself; a near-zero sample (the free CR3 NOFLUSH-bit skip) is
           the optimization's whole point and worth seeing in the p50. *)
        if Machine.metering m then
          record_flush m ~rank:0 ~kind:Machine.flush_kind_deferred (Machine.now m - t0)
  end

let return_to_user m ~cpu ~has_stack =
  let cpu_t = Machine.cpu m cpu in
  Cpu.quiesce_and_mask cpu_t;
  flush_pending_user m ~cpu ~has_stack;
  Machine.trace_event m ~cpu Trace.User_resume;
  Cpu.set_in_user cpu_t true;
  Cpu.irq_enable cpu_t

(* The shootdown IPI handler run by responder CPUs. *)
let ipi_handler m ~me (_ : Cpu.t) =
  let pcpu = Machine.percpu m me in
  Smp.drain_queue m ~me ~run:(fun cfd ->
      let info = cfd.Percpu.cfd_info in
      if Machine.tracing m then
        Machine.trace_event m ~cpu:me
          (Trace.Ipi_begin
             {
               seq = cfd.Percpu.cfd_seq;
               initiator = cfd.Percpu.cfd_initiator;
               early_ack = cfd.Percpu.cfd_early_ack;
             });
      if cfd.Percpu.cfd_early_ack then begin
        (* §3.2: no user mapping can be used from inside this handler, so
           acknowledge before flushing — unless page tables are freed,
           which the initiator already encoded in cfd_early_ack. An NMI
           could still preempt us between the ack and the flush: flag the
           window so nmi_uaccess_okay refuses user accesses. *)
        pcpu.Percpu.inflight_flush <- true;
        Smp.ack m ~me ~early:true cfd
      end;
      let t0 = Machine.now m in
      let result =
        flush_tlb_func_impl m ~cpu:me ~user:(default_user_policy m info) info
      in
      if Machine.metering m then
        record_flush m
          ~rank:(Machine.distance_rank m cfd.Percpu.cfd_initiator me)
          ~kind:(kind_of_result result) (Machine.now m - t0);
      cfd.Percpu.cfd_executed <- true;
      pcpu.Percpu.inflight_flush <- false;
      if not cfd.Percpu.cfd_early_ack then Smp.ack m ~me cfd);
  (* If we interrupted user mode we are about to return to it: any flush
     deferred by §3.4 must complete first. *)
  if Cpu.irq_from_user (Machine.cpu m me) then flush_pending_user m ~cpu:me ~has_stack:true

(* The two shootdown irq records are fixed per machine (the handler depends
   only on [m]; the responder CPU is recovered from the [Cpu.t] the
   dispatcher passes in), so register each with the APIC once, at the
   machine's first shootdown, and send every IPI by id — the send path
   then allocates neither irq records nor delivery closures. *)
let shootdown_irq_id m =
  let id = m.Machine.shootdown_irq_id in
  if id >= 0 then id
  else begin
    let irq =
      {
        Cpu.vector = Smp.tlb_shootdown_vector;
        maskable = true;
        handler = (fun cpu -> ipi_handler m ~me:(Cpu.id cpu) cpu);
      }
    in
    let id = Apic.register_irq m.Machine.apic irq in
    m.Machine.shootdown_irq_id <- id;
    id
  end

(* Initiator-side local flush. Returns the list of user VPNs left for the
   §3.4/§3.1 interplay to flush during the ack wait (empty otherwise). *)
let initiator_local_flush m ~from ~has_remote_targets (info : Flush_info.t) =
  let opts = m.Machine.opts in
  let hybrid =
    opts.Opts.safe && opts.Opts.in_context_flush && opts.Opts.concurrent_flush
    && has_remote_targets
    && (not info.Flush_info.full)
    && (not info.Flush_info.freed_tables)
    && Flush_info.nr_entries info <= opts.Opts.full_flush_threshold
  in
  let user = if hybrid then Skip else default_user_policy m info in
  let t0 = Machine.now m in
  let result = flush_tlb_func_impl m ~cpu:from ~user info in
  if Machine.metering m then
    record_flush m ~rank:0 ~kind:(kind_of_result result) (Machine.now m - t0);
  if hybrid && result = `Ranged then Flush_info.vpns info else []

(* Select remote targets into the initiator's scratch cpuset, paying one
   line read per candidate. The mm's cpumask is snapshotted first (the
   candidate reads yield, and a remote context switch may edit the live
   mask under us — the list-building version had the same snapshot
   semantics), then filtered in place: clearing the current bit during
   [Cpuset.iter] is part of its contract. Returns the scratch set, valid
   until this CPU's next shootdown. *)
let select_targets m ~from ~mm (info : Flush_info.t) =
  let opts = m.Machine.opts and stats = m.Machine.stats in
  let targets = (Machine.percpu m from).Percpu.scratch_targets in
  Cpuset.copy_into ~dst:targets ~src:(Mm_struct.cpuset mm);
  Cpuset.clear targets from;
  Cpuset.iter
    (fun c ->
      Smp.read_remote_tlb_state m ~from ~target:c;
      let p = Machine.percpu m c in
      if p.Percpu.lazy_mode then begin
        (* Lazy-TLB CPU: it will sync generations before resuming user. *)
        stats.Machine.ipis_skipped_lazy <- stats.Machine.ipis_skipped_lazy + 1;
        Cpuset.clear targets c
      end
      else if
        opts.Opts.userspace_batching && p.Percpu.batched_mode
        && not info.Flush_info.freed_tables
      then begin
        (* §4.2: the CPU is inside a batching syscall and will sync at its
           mmap_sem-release barrier; no IPI needed. *)
        stats.Machine.ipis_skipped_batched <- stats.Machine.ipis_skipped_batched + 1;
        Cpuset.clear targets c
      end)
    targets;
  targets

(* The conservative-oracle responder: ignore generations and ranges, drop
   the whole TLB (every PCID, globals included) for every request. *)
let oracle_ipi_handler m ~me (_ : Cpu.t) =
  let pcpu = Machine.percpu m me in
  let tlb = Cpu.tlb (Machine.cpu m me) in
  Smp.drain_queue m ~me ~run:(fun cfd ->
      let info = cfd.Percpu.cfd_info in
      Machine.delay m m.Machine.costs.Costs.cr3_write;
      Tlb.flush_all tlb;
      (* The flush covered whatever a deferred user flush would have. *)
      pcpu.Percpu.pending_user <- Percpu.No_flush;
      Array.iter
        (fun slot ->
          if slot.Percpu.slot_mm = info.Flush_info.mm_id then
            slot.Percpu.gen_seen <-
              Stdlib.max slot.Percpu.gen_seen info.Flush_info.new_tlb_gen)
        pcpu.Percpu.asids;
      cfd.Percpu.cfd_executed <- true;
      Smp.ack m ~me cfd);
  if Cpu.irq_from_user (Machine.cpu m me) then flush_pending_user m ~cpu:me ~has_stack:true

let oracle_irq_id m =
  let id = m.Machine.oracle_irq_id in
  if id >= 0 then id
  else begin
    let irq =
      {
        Cpu.vector = Smp.tlb_shootdown_vector;
        maskable = true;
        handler = (fun cpu -> oracle_ipi_handler m ~me:(Cpu.id cpu) cpu);
      }
    in
    let id = Apic.register_irq m.Machine.apic irq in
    m.Machine.oracle_irq_id <- id;
    id
  end

(* The conservative oracle (differential-fuzzing reference): one synchronous
   whole-TLB flush on every CPU per request. No target filtering (lazy and
   batched CPUs are IPI'd too), no early ack, no local/remote overlap, no
   deferral of the user PCID — trivially correct by construction. *)
let oracle_perform m ~from (info : Flush_info.t) token =
  let stats = m.Machine.stats in
  let pcpu = Machine.percpu m from in
  let tlb = Cpu.tlb (Machine.cpu m from) in
  Machine.delay m m.Machine.costs.Costs.cr3_write;
  Tlb.flush_all tlb;
  pcpu.Percpu.pending_user <- Percpu.No_flush;
  Array.iter
    (fun slot ->
      if slot.Percpu.slot_mm = info.Flush_info.mm_id then
        slot.Percpu.gen_seen <-
          Stdlib.max slot.Percpu.gen_seen info.Flush_info.new_tlb_gen)
    pcpu.Percpu.asids;
  (* Flush-all broadcast: snapshot the machine's all-cpus set into the
     initiator's scratch instead of building (and filtering) per-broadcast
     lists — two word-array copies, no allocation. *)
  let targets = pcpu.Percpu.scratch_targets in
  Cpuset.copy_into ~dst:targets ~src:m.Machine.all_cpus;
  Cpuset.clear targets from;
  if Cpuset.is_empty targets then begin
    stats.Machine.local_only_flushes <- stats.Machine.local_only_flushes + 1;
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
  end
  else begin
    stats.Machine.shootdowns <- stats.Machine.shootdowns + 1;
    let cfds = Smp.enqueue_work m ~from ~targets ~info ~early_ack:false in
    Smp.send_ipis m ~from ~targets ~irq_id:(oracle_irq_id m);
    Smp.wait_for_acks m ~from cfds ();
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
  end

(* One complete shootdown for [info], generation already bumped. *)
let perform m ~from ~mm (info : Flush_info.t) token =
  let opts = m.Machine.opts and costs = m.Machine.costs and stats = m.Machine.stats in
  if opts.Opts.oracle_flush then oracle_perform m ~from info token
  else if opts.Opts.unsafe_lazy_batching then begin
    (* LATR-style strawman: flush locally, never notify remote CPUs, and
       return as if the flush were complete. The Checker flags the stale
       accesses this permits. *)
    ignore (flush_tlb_func_impl m ~cpu:from ~user:(default_user_policy m info) info);
    stats.Machine.local_only_flushes <- stats.Machine.local_only_flushes + 1;
    Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
  end
  else begin
    let sel0 = Machine.now m in
    let targets = select_targets m ~from ~mm info in
    let sel_dt = Machine.now m - sel0 in
    if Cpuset.is_empty targets then begin
      stats.Machine.local_only_flushes <- stats.Machine.local_only_flushes + 1;
      ignore (initiator_local_flush m ~from ~has_remote_targets:false info);
      Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token
    end
    else begin
      stats.Machine.shootdowns <- stats.Machine.shootdowns + 1;
      (* FreeBSD comparator: one machine-wide shootdown at a time. *)
      if opts.Opts.freebsd_protocol then begin
        Machine.delay m m.Machine.costs.Costs.lock_uncontended;
        Rwsem.down_write m.Machine.ipi_mutex
      end;
      let early_ack = opts.Opts.early_ack && not info.Flush_info.freed_tables in
      let run_remote () =
        let t0 = Machine.now m in
        let cfds = Smp.enqueue_work m ~from ~targets ~info ~early_ack in
        Smp.send_ipis m ~from ~targets ~irq_id:(shootdown_irq_id m);
        (* Prep = target selection + CFD enqueue + ICR writes, i.e. every
           initiator-side cycle before the IPIs are in flight; attributed
           like ack_wait to the farthest target. *)
        if Machine.metering m then begin
          let far =
            Cpuset.fold
              (fun acc c -> Stdlib.max acc (Machine.distance_rank m from c))
              0 targets
          in
          Metrics.record_cycles
            m.Machine.phases.Machine.prep.(far)
            (sel_dt + (Machine.now m - t0))
        end;
        cfds
      in
      if opts.Opts.concurrent_flush then begin
        (* §3.1: send first; the local flush overlaps IPI delivery. *)
        let cfds = run_remote () in
        let leftover = ref (initiator_local_flush m ~from ~has_remote_targets:true info) in
        let pcpu = Machine.percpu m from in
        let tlb = Cpu.tlb (Machine.cpu m from) in
        let user_pcid = Percpu.user_pcid pcpu.Percpu.curr_asid in
        let any_ack () = Array.exists (fun c -> c.Percpu.cfd_acked) cfds in
        let while_waiting () =
          (* §3.4 interplay: burn the wait on user-PTE INVPCIDs until the
             first ack lands, then defer the rest to kernel exit. *)
          match !leftover with
          | [] -> ()
          | vpn :: rest ->
              if not (any_ack ()) then begin
                Machine.delay m costs.Costs.invpcid_single;
                Tlb.invpcid_addr tlb ~pcid:user_pcid ~vpn;
                leftover := rest
              end
        in
        (* Same condition [while_waiting] acts on, minus the action: lets
           the ack wait skip resuming us on poll ticks with nothing to do. *)
        let waiting_work () =
          match !leftover with [] -> false | _ :: _ -> not (any_ack ())
        in
        Smp.wait_for_acks m ~from cfds ~while_waiting ~waiting_work ();
        (match !leftover with
        | [] -> ()
        | vpn :: _ as rest ->
            stats.Machine.in_context_deferrals <- stats.Machine.in_context_deferrals + 1;
            let deferred =
              Flush_info.ranged ~mm_id:info.Flush_info.mm_id ~start_vpn:vpn
                ~pages:(List.length rest) ~stride:info.Flush_info.stride
                ~new_tlb_gen:info.Flush_info.new_tlb_gen ()
            in
            Percpu.defer_user_flush pcpu deferred ~threshold:opts.Opts.full_flush_threshold)
      end
      else begin
        (* Baseline (Figure 1): local flush strictly before the IPIs. *)
        ignore (initiator_local_flush m ~from ~has_remote_targets:false info);
        let cfds = run_remote () in
        Smp.wait_for_acks m ~from cfds ()
      end;
      if opts.Opts.freebsd_protocol then Rwsem.up_write m.Machine.ipi_mutex;
      Machine.end_window m ~cpu:from ~mm_id:info.Flush_info.mm_id token;
      tracef m ~cpu:from "shootdown complete"
    end
  end

let make_info m ~mm ~start_vpn ~pages ~stride ~freed_tables ~new_tlb_gen =
  if m.Machine.opts.Opts.oracle_flush then
    (* The oracle never sends ranged flushes: full, always. *)
    Flush_info.full ~mm_id:(Mm_struct.id mm) ~freed_tables ~new_tlb_gen ()
  else if pages > m.Machine.opts.Opts.full_flush_threshold then
    Flush_info.full ~mm_id:(Mm_struct.id mm) ~freed_tables ~new_tlb_gen ()
  else
    Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn ~pages ~stride ~freed_tables
      ~new_tlb_gen ()

let flush_tlb_mm_range m ~from ~mm ~start_vpn ~pages ?(stride = Tlb.Four_k)
    ?(freed_tables = false) () =
  let opts = m.Machine.opts and stats = m.Machine.stats in
  let pcpu = Machine.percpu m from in
  (* Bump the generation: one atomic RMW on the mm's shared line. *)
  Machine.charge_atomic m (Mm_struct.line mm) ~by:from;
  let new_tlb_gen = Mm_struct.bump_tlb_gen mm in
  if Machine.tracing m then
    Machine.trace_event m ~cpu:from
      (Trace.Gen_bump { mm_id = Mm_struct.id mm; gen = new_tlb_gen });
  let info = make_info m ~mm ~start_vpn ~pages ~stride ~freed_tables ~new_tlb_gen in
  let token = Machine.begin_window m ~cpu:from info in
  if
    opts.Opts.userspace_batching && pcpu.Percpu.batched_mode && (not freed_tables)
    && not opts.Opts.oracle_flush
  then begin
    (* §4.2: defer the flush to the mmap_sem-release barrier. Flushes that
       free page tables are never deferred: the tables must be gone from
       every TLB before their pages are recycled. Only batch_slots (4)
       flush_tlb_info records exist; when they are full the accumulated
       batch is flushed eagerly — deferral is bounded, which is why the
       paper sees at most ~1.18x from batching, not a flush amnesty. *)
    stats.Machine.batched_deferrals <- stats.Machine.batched_deferrals + 1;
    if List.length pcpu.Percpu.batch >= opts.Opts.batch_slots then begin
      pcpu.Percpu.batch_overflowed <- true;
      let overflow = List.rev pcpu.Percpu.batch in
      pcpu.Percpu.batch <- [];
      List.iter (fun (i, tok) -> perform m ~from ~mm i tok) overflow
    end;
    pcpu.Percpu.batch <- (info, token) :: pcpu.Percpu.batch
  end
  else perform m ~from ~mm info token

let flush_tlb_page m ~from ~mm ~vpn =
  flush_tlb_mm_range m ~from ~mm ~start_vpn:vpn ~pages:1 ()

let flush_tlb_page_cow m ~from ~mm ~vpn ~executable =
  let opts = m.Machine.opts and costs = m.Machine.costs and stats = m.Machine.stats in
  (* The instruction TLB is not affected by data accesses, so the trick is
     unusable for executable mappings (§4.1). *)
  if not (opts.Opts.cow_avoid_flush && (not executable) && not opts.Opts.oracle_flush)
  then flush_tlb_page m ~from ~mm ~vpn
  else begin
    Machine.charge_atomic m (Mm_struct.line mm) ~by:from;
    let new_tlb_gen = Mm_struct.bump_tlb_gen mm in
    if Machine.tracing m then
      Machine.trace_event m ~cpu:from
        (Trace.Gen_bump { mm_id = Mm_struct.id mm; gen = new_tlb_gen });
    let info =
      Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:vpn ~pages:1 ~new_tlb_gen ()
    in
    let token = Machine.begin_window m ~cpu:from info in
    (* Local "flush": one atomic write to the page. The write-protected old
       PTE cannot be used for a store, so the access walks the tables,
       evicting the stale translation and caching the fresh one — without
       INVLPG's paging-structure-cache invalidation. *)
    let pcpu = Machine.percpu m from in
    let tlb = Cpu.tlb (Machine.cpu m from) in
    Machine.delay m costs.Costs.atomic_op;
    Tlb.drop tlb ~pcid:(Percpu.kernel_pcid pcpu.Percpu.curr_asid) ~vpn;
    if opts.Opts.safe then Tlb.drop tlb ~pcid:(Percpu.user_pcid pcpu.Percpu.curr_asid) ~vpn;
    let slot = pcpu.Percpu.asids.(pcpu.Percpu.curr_asid) in
    if slot.Percpu.slot_mm = Mm_struct.id mm && slot.Percpu.gen_seen = new_tlb_gen - 1 then
      slot.Percpu.gen_seen <- new_tlb_gen;
    stats.Machine.cow_flush_avoided <- stats.Machine.cow_flush_avoided + 1;
    tracef m ~cpu:from "CoW: avoided local flush for vpn %d" vpn;
    (* Remote CPUs sharing the mapping still need the shootdown. *)
    let sel0 = Machine.now m in
    let targets = select_targets m ~from ~mm info in
    if Cpuset.is_empty targets then
      Machine.end_window m ~cpu:from ~mm_id:(Mm_struct.id mm) token
    else begin
      stats.Machine.shootdowns <- stats.Machine.shootdowns + 1;
      let early_ack = opts.Opts.early_ack in
      let cfds = Smp.enqueue_work m ~from ~targets ~info ~early_ack in
      Smp.send_ipis m ~from ~targets ~irq_id:(shootdown_irq_id m);
      if Machine.metering m then begin
        let far =
          Cpuset.fold
            (fun acc c -> Stdlib.max acc (Machine.distance_rank m from c))
            0 targets
        in
        Metrics.record_cycles m.Machine.phases.Machine.prep.(far) (Machine.now m - sel0)
      end;
      Smp.wait_for_acks m ~from cfds ();
      Machine.end_window m ~cpu:from ~mm_id:(Mm_struct.id mm) token
    end
  end

let flush_tlb_mm m ~from ~mm =
  let new_tlb_gen =
    (Machine.charge_atomic m (Mm_struct.line mm) ~by:from;
     Mm_struct.bump_tlb_gen mm)
  in
  if Machine.tracing m then
    Machine.trace_event m ~cpu:from
      (Trace.Gen_bump { mm_id = Mm_struct.id mm; gen = new_tlb_gen });
  let info = Flush_info.full ~mm_id:(Mm_struct.id mm) ~new_tlb_gen () in
  let token = Machine.begin_window m ~cpu:from info in
  perform m ~from ~mm info token

let flush_batched m ~from ~mm =
  let pcpu = Machine.percpu m from in
  let batch = List.rev pcpu.Percpu.batch in
  pcpu.Percpu.batch <- [];
  pcpu.Percpu.batch_overflowed <- false;
  (* Leave batched mode before flushing so nothing re-defers. *)
  pcpu.Percpu.batched_mode <- false;
  List.iter (fun (info, token) -> perform m ~from ~mm info token) batch

let nmi_uaccess_okay m ~cpu =
  let pcpu = Machine.percpu m cpu in
  Option.is_some pcpu.Percpu.loaded_mm
  && (not pcpu.Percpu.lazy_mode)
  (* Lazy mode means current->mm is a borrowed kernel view and shootdowns
     are being skipped for us; batched mode (§4.2) likewise leaves this
     CPU's flushes to the mmap_sem-release barrier. An NMI profiler must
     treat both as off-limits — the interleaving explorer probes this. *)
  && (not pcpu.Percpu.batched_mode)
  && (not pcpu.Percpu.inflight_flush)
  && Queue.is_empty pcpu.Percpu.csq
  && Percpu.no_pending_user pcpu.Percpu.pending_user

let check_and_sync_tlb m ~cpu =
  let pcpu = Machine.percpu m cpu in
  match pcpu.Percpu.loaded_mm with
  | None -> ()
  | Some mm ->
      Machine.charge_read m (Mm_struct.line mm) ~by:cpu;
      if Machine.tracing m then
        Machine.trace_event m ~cpu
          (Trace.Gen_read { mm_id = Mm_struct.id mm; gen = Mm_struct.tlb_gen mm });
      let slot = pcpu.Percpu.asids.(pcpu.Percpu.curr_asid) in
      if slot.Percpu.slot_mm = Mm_struct.id mm
         && slot.Percpu.gen_seen < Mm_struct.tlb_gen mm
      then begin
        local_full_flush m ~cpu pcpu;
        slot.Percpu.gen_seen <- Mm_struct.tlb_gen mm;
        if Machine.tracing m then
          Machine.trace_event m ~cpu
            (Trace.Tlb_flush
               {
                 mm_id = Mm_struct.id mm;
                 full = true;
                 entries = 0;
                 gen = slot.Percpu.gen_seen;
               });
        tracef m ~cpu "sync: full flush to gen %d" slot.Percpu.gen_seen
      end
