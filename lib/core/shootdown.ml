(* The TLB shootdown entry points, dispatching to the protocol backend the
   machine's Opts.protocol selects (DESIGN.md §13). Terminology matches the
   paper: the "initiator" runs flush_tlb_mm_range; "responders" run the
   backend's IPI handler. The shared flush logic with Linux's generation
   bookkeeping lives in Flush_core; protocol-specific behaviour — perform,
   the IPI handler, flush decisions, ack tracking — lives behind the
   Protocol interface, one backend per constructor. *)

open Flush_core

(* The single Opts.protocol dispatch. Every protocol-conditional in this
   module flows through the backend record this returns. *)
let backend m : Protocol.t =
  match m.Machine.opts.Opts.protocol with
  | Opts.Paper -> Proto_paper.backend
  | Opts.Oracle -> Proto_oracle.backend
  | Opts.Sync_broadcast -> Proto_sync.backend
  | Opts.Queue_spin -> Proto_queue.backend

let flush_pending_user = Flush_core.flush_pending_user
let return_to_user = Flush_core.return_to_user

let flush_tlb_func m ~cpu info =
  flush_tlb_func_impl m ~cpu ~user:(default_user_policy m info)
    ~eager_user:(backend m).Protocol.eager_user_full info

(* One complete shootdown for [info], generation already bumped. *)
let perform m ~from ~mm (info : Flush_info.t) token =
  (backend m).Protocol.perform m ~from ~mm info token

let make_info m ~mm ~start_vpn ~pages ~stride ~freed_tables ~new_tlb_gen =
  if (backend m).Protocol.full_only then
    (* The oracle never sends ranged flushes: full, always. *)
    Flush_info.full ~mm_id:(Mm_struct.id mm) ~freed_tables ~new_tlb_gen ()
  else if pages > m.Machine.opts.Opts.full_flush_threshold then
    Flush_info.full ~mm_id:(Mm_struct.id mm) ~freed_tables ~new_tlb_gen ()
  else
    Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn ~pages ~stride ~freed_tables
      ~new_tlb_gen ()

let flush_tlb_mm_range m ~from ~mm ~start_vpn ~pages ?(stride = Tlb.Four_k)
    ?(freed_tables = false) () =
  let opts = m.Machine.opts and stats = m.Machine.stats in
  let pcpu = Machine.percpu m from in
  (* Bump the generation: one atomic RMW on the mm's shared line. *)
  Machine.charge_atomic m (Mm_struct.line mm) ~by:from;
  let new_tlb_gen = Mm_struct.bump_tlb_gen mm in
  if Machine.tracing m then
    Machine.trace_event m ~cpu:from
      (Trace.Gen_bump { mm_id = Mm_struct.id mm; gen = new_tlb_gen });
  let info = make_info m ~mm ~start_vpn ~pages ~stride ~freed_tables ~new_tlb_gen in
  let token = Machine.begin_window m ~cpu:from info in
  if
    opts.Opts.userspace_batching && pcpu.Percpu.batched_mode && (not freed_tables)
    && (backend m).Protocol.honors_batching
  then begin
    (* §4.2: defer the flush to the mmap_sem-release barrier. Flushes that
       free page tables are never deferred: the tables must be gone from
       every TLB before their pages are recycled. Only batch_slots (4)
       flush_tlb_info records exist; when they are full the accumulated
       batch is flushed eagerly — deferral is bounded, which is why the
       paper sees at most ~1.18x from batching, not a flush amnesty. *)
    stats.Machine.batched_deferrals <- stats.Machine.batched_deferrals + 1;
    if List.length pcpu.Percpu.batch >= opts.Opts.batch_slots then begin
      pcpu.Percpu.batch_overflowed <- true;
      let overflow = List.rev pcpu.Percpu.batch in
      pcpu.Percpu.batch <- [];
      List.iter (fun (i, tok) -> perform m ~from ~mm i tok) overflow
    end;
    pcpu.Percpu.batch <- (info, token) :: pcpu.Percpu.batch
  end
  else perform m ~from ~mm info token

let flush_tlb_page m ~from ~mm ~vpn =
  flush_tlb_mm_range m ~from ~mm ~start_vpn:vpn ~pages:1 ()

let flush_tlb_page_cow m ~from ~mm ~vpn ~executable =
  let opts = m.Machine.opts and costs = m.Machine.costs and stats = m.Machine.stats in
  (* The instruction TLB is not affected by data accesses, so the trick is
     unusable for executable mappings (§4.1). The elision composes with the
     paper protocol's targeted remote machinery only; other backends take
     the ordinary flush path. *)
  if not (opts.Opts.cow_avoid_flush && (not executable) && (backend m).Protocol.honors_cow)
  then flush_tlb_page m ~from ~mm ~vpn
  else begin
    Machine.charge_atomic m (Mm_struct.line mm) ~by:from;
    let new_tlb_gen = Mm_struct.bump_tlb_gen mm in
    if Machine.tracing m then
      Machine.trace_event m ~cpu:from
        (Trace.Gen_bump { mm_id = Mm_struct.id mm; gen = new_tlb_gen });
    let info =
      Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:vpn ~pages:1 ~new_tlb_gen ()
    in
    let token = Machine.begin_window m ~cpu:from info in
    (* Local "flush": one atomic write to the page. The write-protected old
       PTE cannot be used for a store, so the access walks the tables,
       evicting the stale translation and caching the fresh one — without
       INVLPG's paging-structure-cache invalidation. *)
    let pcpu = Machine.percpu m from in
    let tlb = Cpu.tlb (Machine.cpu m from) in
    Machine.delay m costs.Costs.atomic_op;
    Tlb.drop tlb ~pcid:(Percpu.kernel_pcid pcpu.Percpu.curr_asid) ~vpn;
    if opts.Opts.safe then Tlb.drop tlb ~pcid:(Percpu.user_pcid pcpu.Percpu.curr_asid) ~vpn;
    let slot = pcpu.Percpu.asids.(pcpu.Percpu.curr_asid) in
    if slot.Percpu.slot_mm = Mm_struct.id mm && slot.Percpu.gen_seen = new_tlb_gen - 1 then
      slot.Percpu.gen_seen <- new_tlb_gen;
    stats.Machine.cow_flush_avoided <- stats.Machine.cow_flush_avoided + 1;
    tracef m ~cpu:from "CoW: avoided local flush for vpn %d" vpn;
    (* Remote CPUs sharing the mapping still need the shootdown. *)
    let sel0 = Machine.now m in
    let targets = Proto_paper.select_targets m ~from ~mm info in
    if Cpuset.is_empty targets then
      Machine.end_window m ~cpu:from ~mm_id:(Mm_struct.id mm) token
    else begin
      stats.Machine.shootdowns <- stats.Machine.shootdowns + 1;
      let early_ack = opts.Opts.early_ack in
      let cfds = Smp.enqueue_work m ~from ~targets ~info ~early_ack in
      Smp.send_ipis m ~from ~targets ~irq_id:(Proto_paper.irq_id m);
      if Machine.metering m then
        record_prep m ~from ~targets (Machine.now m - sel0);
      Smp.wait_for_acks m ~from cfds ();
      Machine.end_window m ~cpu:from ~mm_id:(Mm_struct.id mm) token
    end
  end

let flush_tlb_mm m ~from ~mm =
  let new_tlb_gen =
    (Machine.charge_atomic m (Mm_struct.line mm) ~by:from;
     Mm_struct.bump_tlb_gen mm)
  in
  if Machine.tracing m then
    Machine.trace_event m ~cpu:from
      (Trace.Gen_bump { mm_id = Mm_struct.id mm; gen = new_tlb_gen });
  let info = Flush_info.full ~mm_id:(Mm_struct.id mm) ~new_tlb_gen () in
  let token = Machine.begin_window m ~cpu:from info in
  perform m ~from ~mm info token

let flush_batched m ~from ~mm =
  let pcpu = Machine.percpu m from in
  let batch = List.rev pcpu.Percpu.batch in
  pcpu.Percpu.batch <- [];
  pcpu.Percpu.batch_overflowed <- false;
  (* Leave batched mode before flushing so nothing re-defers. *)
  pcpu.Percpu.batched_mode <- false;
  List.iter (fun (info, token) -> perform m ~from ~mm info token) batch

let nmi_uaccess_okay m ~cpu =
  let pcpu = Machine.percpu m cpu in
  Option.is_some pcpu.Percpu.loaded_mm
  && (not pcpu.Percpu.lazy_mode)
  (* Lazy mode means current->mm is a borrowed kernel view and shootdowns
     are being skipped for us; batched mode (§4.2) likewise leaves this
     CPU's flushes to the mmap_sem-release barrier. An NMI profiler must
     treat both as off-limits — the interleaving explorer probes this. *)
  && (not pcpu.Percpu.batched_mode)
  && (not pcpu.Percpu.inflight_flush)
  && (not ((backend m).Protocol.responder_pending m ~cpu))
  && Percpu.no_pending_user pcpu.Percpu.pending_user

(* Backend-specific quiescence invariants, reported through [fail]; the
   explorer's post-run invariant pass drives this per CPU alongside its
   generic checks (pending_user drained, csq empty, ...). *)
let protocol_quiescent m ~cpu fail = (backend m).Protocol.quiescent m ~cpu fail

(* The active backend's stable label, for reports. *)
let protocol_name m = (backend m).Protocol.name

let check_and_sync_tlb m ~cpu =
  let pcpu = Machine.percpu m cpu in
  match pcpu.Percpu.loaded_mm with
  | None -> ()
  | Some mm ->
      Machine.charge_read m (Mm_struct.line mm) ~by:cpu;
      if Machine.tracing m then
        Machine.trace_event m ~cpu
          (Trace.Gen_read { mm_id = Mm_struct.id mm; gen = Mm_struct.tlb_gen mm });
      let slot = pcpu.Percpu.asids.(pcpu.Percpu.curr_asid) in
      if slot.Percpu.slot_mm = Mm_struct.id mm
         && slot.Percpu.gen_seen < Mm_struct.tlb_gen mm
      then begin
        local_full_flush m ~cpu ~eager_user:(backend m).Protocol.eager_user_full pcpu;
        slot.Percpu.gen_seen <- Mm_struct.tlb_gen mm;
        if Machine.tracing m then
          Machine.trace_event m ~cpu
            (Trace.Tlb_flush
               {
                 mm_id = Mm_struct.id mm;
                 full = true;
                 entries = 0;
                 gen = slot.Percpu.gen_seen;
               });
        tracef m ~cpu "sync: full flush to gen %d" slot.Percpu.gen_seen
      end
