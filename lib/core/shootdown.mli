(** The TLB shootdown entry points, dispatching to the {!Protocol} backend
    selected by {!Opts.protocol}: the paper's optimized Linux protocol
    ([Paper], Figures 1/3, optimizations selected by {!Opts} flags), the
    conservative differential-testing oracle ([Oracle]), the cronus-style
    global-lock synchronous broadcast ([Sync_broadcast]) and the
    charmos-style per-CPU ring queue ([Queue_spin]).

    Paper-protocol outline for [flush_tlb_mm_range]:

    + bump the address space's TLB generation (atomic on the mm line);
    + select targets from the cpumask, skipping lazy-TLB CPUs (and, with
      §4.2, CPUs inside batching syscalls) — one remote line read each;
    + enqueue CFDs and send the multicast IPI;
    + flush the local TLB — {e before} sending under the baseline,
      {e while waiting} with concurrent flushing (§3.1); under PTI the user
      PCID is flushed eagerly with INVPCID, or deferred to kernel exit with
      in-context flushing (§3.4), the initiator burning wait-time INVPCIDs
      until the first ack arrives;
    + spin for acknowledgements — which responders send after their flush
      (baseline) or on handler entry (early ack, §3.2, unless page tables
      were freed).

    Responders run {!flush_tlb_func} logic: skip if their generation is
    already current; take one full flush (fast-forwarding the generation) if
    multiple generations behind; otherwise flush the requested range. *)

(** Flush [pages] 4 KiB pages starting at [start_vpn] of [mm], initiated by
    CPU [from] (which must have [mm] loaded). Blocks (in simulated time)
    until the protocol completes from the initiator's perspective. *)
val flush_tlb_mm_range :
  Machine.t ->
  from:int ->
  mm:Mm_struct.t ->
  start_vpn:int ->
  pages:int ->
  ?stride:Tlb.page_size ->
  ?freed_tables:bool ->
  unit ->
  unit

(** One-page convenience wrapper. *)
val flush_tlb_page : Machine.t -> from:int -> mm:Mm_struct.t -> vpn:int -> unit

(** The copy-on-write variant (§4.1): when [cow_avoid_flush] is on and the
    PTE is not executable, the initiator's local INVLPG is replaced by an
    atomic dummy write to the page (which evicts the stale translation and
    keeps the page-walk cache warm); remote CPUs are still shot down if the
    address space is active elsewhere. Falls back to {!flush_tlb_page}
    otherwise. *)
val flush_tlb_page_cow :
  Machine.t -> from:int -> mm:Mm_struct.t -> vpn:int -> executable:bool -> unit

(** Full flush of [mm] everywhere. *)
val flush_tlb_mm : Machine.t -> from:int -> mm:Mm_struct.t -> unit

(** Execute the pending deferred user-PCID flush (§3.4), i.e. the work done
    right before returning to user mode: INVLPG per merged-range page (plus
    an LFENCE against Spectre-v1 skipping), or a CR3-borne full flush when
    past the threshold or when [has_stack] is false. Called by the syscall
    exit path and by the IPI handler when it interrupted user mode. *)
val flush_pending_user : Machine.t -> cpu:int -> has_stack:bool -> unit

(** The return-to-user sequence: with interrupts disabled (as the real exit
    trampoline runs), execute the pending deferred user flush, switch to
    user mode, and re-enable interrupts — at which point queued IPIs are
    serviced {e before} the first user instruction. Every path that resumes
    user execution must go through this, or an IPI landing between the
    deferred flush and the mode switch could leave a never-executed
    deferral behind. *)
val return_to_user : Machine.t -> cpu:int -> has_stack:bool -> unit

(** Perform the deferred batched shootdowns (§4.2) accumulated while
    [batched_mode]; called before releasing mmap_sem. *)
val flush_batched : Machine.t -> from:int -> mm:Mm_struct.t -> unit

(** The exit-side memory barrier of §4.2 and the lazy-TLB resume check: if
    this CPU's loaded mm has advanced past the generation it has seen, take
    a full local flush. One mm-line read. *)
val check_and_sync_tlb : Machine.t -> cpu:int -> unit

(** The responder flush function (exposed for tests): applies [info] to
    [cpu]'s TLB with generation tracking. Returns [`Skipped], [`Full] or
    [`Ranged]. *)
val flush_tlb_func :
  Machine.t -> cpu:int -> Flush_info.t -> [ `Skipped | `Full | `Ranged ]

(** nmi_uaccess_okay (§3.2): may an NMI handler running on [cpu] touch user
    memory right now? False while a shootdown has been acknowledged but not
    executed (early ack), while shootdown work is still queued, or while a
    deferred user-PCID flush is pending — the situations in which the TLB
    may hold mappings the rest of the kernel already considers dead.
    Linux's NMI/kprobe paths already perform the base check; the paper
    extends it to cover early acknowledgement. The "work still queued"
    condition is the active backend's {!Protocol.t.responder_pending}
    hook — CSQ entries for [Paper]/[Oracle], an unapplied posted broadcast
    for [Sync_broadcast], an undrained ring for [Queue_spin]. *)
val nmi_uaccess_okay : Machine.t -> cpu:int -> bool

(** Backend-specific quiescence invariants: report (through the callback)
    any protocol state on [cpu] that should not survive quiescence — an
    undrained [Queue_spin] ring, a still-posted [Sync_broadcast]
    descriptor. Driven per CPU by [Explorer.post_invariants] alongside its
    generic checks. *)
val protocol_quiescent : Machine.t -> cpu:int -> (string -> unit) -> unit

(** The active backend's stable label ({!Opts.protocol_label}). *)
val protocol_name : Machine.t -> string
