let tlb_shootdown_vector = 0xf6  (* CALL_FUNCTION_SINGLE_VECTOR-ish *)

let read_remote_tlb_state m ~from ~target =
  let pcpu = Machine.percpu m target in
  (* Consolidated layout (§3.3): the lazy/batched flags live on the same
     line as the call-queue head, which the initiator is about to write
     anyway; baseline pulls a separate tlb_state line. *)
  let line =
    if m.Machine.opts.Opts.cacheline_consolidation then pcpu.Percpu.line_csq
    else pcpu.Percpu.line_tlb
  in
  Machine.charge_read m line ~by:from

let enqueue_work m ~from ~targets ~info ~early_ack =
  let me = Machine.percpu m from in
  let consolidated = m.Machine.opts.Opts.cacheline_consolidation in
  (* Baseline keeps flush_tlb_info on the initiator's stack and points every
     CSD at it: one extra shared line written here and read by every
     responder. *)
  if not consolidated then
    Machine.charge_write m me.Percpu.line_stack_info ~by:from;
  (* Walk the target set in ascending cpu order — cfd_seq assignment order
     is part of the deterministic output. The accumulator list is the one
     small allocation left on this path (the cfd records themselves must
     be allocated per target regardless). *)
  let acc = ref [] in
  Cpuset.iter
    (fun target ->
      let pcpu = Machine.percpu m target in
      let cfd =
        {
          Percpu.cfd_seq = Machine.next_ipi_seq m;
          cfd_initiator = from;
          cfd_target = target;
          cfd_info = info;
          cfd_early_ack = early_ack;
          cfd_acked = false;
          cfd_executed = false;
          cfd_line = Percpu.csd_line me ~target;
          cfd_info_line = (if consolidated then None else Some me.Percpu.line_stack_info);
        }
      in
      Machine.charge_write m cfd.Percpu.cfd_line ~by:from;
      Machine.charge_write m pcpu.Percpu.line_csq ~by:from;
      Queue.push cfd pcpu.Percpu.csq;
      if Machine.tracing m then
        Machine.trace_event m ~cpu:from
          (Trace.Ipi_send { seq = cfd.Percpu.cfd_seq; target });
      acc := cfd :: !acc)
    targets;
  Array.of_list (List.rev !acc)

let send_ipis m ~from ~targets ~irq_id =
  let send_cost = Apic.send_ipi_id m.Machine.apic ~from ~targets ~irq_id in
  Machine.delay m send_cost

let drain_queue m ~me ~run =
  let pcpu = Machine.percpu m me in
  Machine.charge_read m pcpu.Percpu.line_csq ~by:me;
  while not (Queue.is_empty pcpu.Percpu.csq) do
    let cfd = Queue.pop pcpu.Percpu.csq in
    Machine.charge_read m cfd.Percpu.cfd_line ~by:me;
    (match cfd.Percpu.cfd_info_line with
    | Some line ->
        Machine.charge_read m line ~by:me;
        (* The baseline keeps flush_tlb_info on the initiator's stack,
           which is 4 KiB-mapped — unlike the 2 MiB-mapped per-cpu/global
           data — so touching it costs a page walk the consolidated layout
           avoids (§3.3 item 2). *)
        Machine.delay m m.Machine.costs.Costs.page_walk
    | None -> ());
    run cfd
  done

let ack m ~me ?(early = false) cfd =
  if not cfd.Percpu.cfd_acked then begin
    cfd.Percpu.cfd_acked <- true;
    Machine.charge_write m cfd.Percpu.cfd_line ~by:me;
    if Machine.tracing m then
      Machine.trace_event m ~cpu:me
        (Trace.Ipi_ack
           { seq = cfd.Percpu.cfd_seq; initiator = cfd.Percpu.cfd_initiator; early })
  end

let wait_for_acks m ~from cfds ?(while_waiting = fun () -> ())
    ?(waiting_work = fun () -> false) () =
  let cpu = Machine.cpu m from in
  let t0 = Machine.now m in
  let n = Array.length cfds in
  (* Acks are monotone while we wait, so once a prefix of [cfds] is acked
     it stays acked: keep a cursor instead of rescanning from the head on
     every poll (this loop runs once per spin_poll window per shootdown). *)
  let next = ref 0 in
  let all_acked () =
    while !next < n && cfds.(!next).Percpu.cfd_acked do
      incr next
    done;
    !next = n
  in
  (* Spin with IRQ servicing; between polls give the §3.4 interplay a
     chance to flush user PTEs in the otherwise-dead time. A poll boundary
     where nothing changed — no ack landed, no IRQ deliverable, and
     [waiting_work] says [while_waiting] would be a no-op — is a pure idle
     tick, so [poll_wait] keeps it inside the engine event instead of
     resuming this process (the cursor bump in [all_acked] is private
     state, which [ready] is allowed to touch). *)
  let ready () = all_acked () || waiting_work () in
  let rec loop () =
    if not (all_acked ()) then begin
      while_waiting ();
      if not (all_acked ()) then begin
        Cpu.poll_wait cpu ready;
        loop ()
      end
    end
  in
  loop ();
  (* Observing each ack pulls the responder-written CSD line back. *)
  Array.iter (fun c -> Machine.charge_read m c.Percpu.cfd_line ~by:from) cfds;
  if n > 0 && Machine.tracing m then
    Machine.trace_event m ~cpu:from
      (Trace.Acks_seen
         { seqs = Array.to_list (Array.map (fun c -> c.Percpu.cfd_seq) cfds) });
  if n > 0 && Machine.metering m then begin
    (* The wait is one span; attribute it to the farthest responder — the
       ack that structurally arrives last and bounds the span. *)
    let far =
      Array.fold_left
        (fun acc c -> Stdlib.max acc (Machine.distance_rank m from c.Percpu.cfd_target))
        0 cfds
    in
    Metrics.record_cycles m.Machine.phases.Machine.ack.(far) (Machine.now m - t0)
  end
