(** The SMP function-call layer: call-single queues, call-function data and
    acknowledgements, with every cacheline access priced.

    This is the mechanism layer of the shootdown ({!Shootdown} is the
    policy): enqueueing work to remote CPUs, sending the multicast IPI,
    draining the queue on the responder, and spinning for acks on the
    initiator. Which lines are touched depends on
    [opts.cacheline_consolidation] (§3.3): the consolidated layout inlines
    the flush info in the CSD and colocates the lazy flag with the queue
    head. *)

(** The shootdown IPI vector (CALL_FUNCTION_SINGLE_VECTOR-ish); the vector
    {!Shootdown} stamps on the irq records it registers with the APIC. *)
val tlb_shootdown_vector : int

(** Read the "is this CPU lazy / in a batched syscall" state of [target]
    from [from]: one cacheline read whose identity depends on the layout. *)
val read_remote_tlb_state : Machine.t -> from:int -> target:int -> unit

(** Build and enqueue one CFD per member of the target set (pays the CSD
    writes, the info write under the baseline layout, and the queue-head
    writes), returning the CFDs in ascending target order. Does not send
    IPIs. [targets] is typically the caller's scratch cpuset; it is read
    before each enqueue and must not change until the matching
    {!send_ipis} — nothing that runs during the charge-yields selects
    targets on this CPU. *)
val enqueue_work :
  Machine.t ->
  from:int ->
  targets:Cpuset.t ->
  info:Flush_info.t ->
  early_ack:bool ->
  Percpu.cfd array

(** Send the shootdown vector to [targets]; the pre-registered irq
    [irq_id] (see {!Apic.register_irq}) runs on each target when it
    services the IPI. Pays the sender's ICR-write cost inline. Taking an
    id instead of a handler keeps the send path allocation-free: the two
    shootdown handlers are fixed per machine, so {!Shootdown} registers
    each once and reuses it for every send. *)
val send_ipis : Machine.t -> from:int -> targets:Cpuset.t -> irq_id:int -> unit

(** Responder: drain this CPU's call queue, paying the queue and CFD/info
    line reads, invoking [run] on each CFD in FIFO order. *)
val drain_queue : Machine.t -> me:int -> run:(Percpu.cfd -> unit) -> unit

(** Responder: flip the CFD's ack flag (one line write). Idempotent.
    [early] only annotates the trace event (§3.2 early ack). *)
val ack : Machine.t -> me:int -> ?early:bool -> Percpu.cfd -> unit

(** Initiator: spin until every CFD is acked, servicing our own IRQs while
    spinning. [while_waiting] is called between polls while at least one ack
    is outstanding (used by the in-context/concurrent interplay of §3.4);
    it must be cheap or advance time itself. [waiting_work] must report —
    without observable side effects — whether [while_waiting] would do
    anything right now: a poll boundary where it is [false], no ack has
    landed and no IRQ is deliverable is an idle tick the initiator sleeps
    through without being resumed (the default [fun () -> false] matches
    the default no-op [while_waiting]). Pays one read per CFD to observe
    the acks. *)
val wait_for_acks :
  Machine.t ->
  from:int ->
  Percpu.cfd array ->
  ?while_waiting:(unit -> unit) ->
  ?waiting_work:(unit -> bool) ->
  unit ->
  unit
