(* PTE changes become visible before the flush API is even called; stale
   hits in that window are legal ("in flight"). Wrap every modify-then-
   flush sequence so the checker knows. The inner windows opened by the
   flush itself (and kept open by batching deferral) take over from here. *)
let with_invalidation_window m ~cpu ~mm ~start_vpn ~pages f =
  let info =
    Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn ~pages
      ~new_tlb_gen:(Mm_struct.tlb_gen mm) ()
  in
  let token = Machine.begin_window m ~cpu info in
  Fun.protect
    ~finally:(fun () -> Machine.end_window m ~cpu ~mm_id:(Mm_struct.id mm) token)
    f

let trace_pte_write m ~cpu ~mm ~vpn ~pages =
  if Machine.tracing m then
    Machine.trace_event m ~cpu (Trace.Pte_write { mm_id = Mm_struct.id mm; vpn; pages })

let current_mm m ~cpu =
  match (Machine.percpu m cpu).Percpu.loaded_mm with
  | Some mm -> mm
  | None -> invalid_arg "Syscall: no address space loaded on this CPU"

(* Kernel entry/exit bracket. The exit path performs the deferred
   user-PCID flush (§3.4) right before the return-to-user CR3 switch. *)
let in_syscall m ~cpu f =
  let costs = m.Machine.costs and safe = m.Machine.opts.Opts.safe in
  Cpu.set_in_user (Machine.cpu m cpu) false;
  Machine.delay m (Costs.syscall_entry costs ~safe);
  Fun.protect
    ~finally:(fun () ->
      Machine.delay m (Costs.syscall_exit costs ~safe);
      Shootdown.return_to_user m ~cpu ~has_stack:true)
    f

(* Every removed PTE drops its frame reference: privately owned frames
   (anonymous, broken-CoW copies, at refcount 1) are released outright;
   shared frames (page cache, COW-shared after fork) survive on their
   remaining references. *)
let private_frames removed ~vma_of =
  List.filter_map
    (fun (vpn, (pte : Pte.t), size) ->
      match vma_of vpn with None -> None | Some _ -> Some (pte.Pte.pfn, size))
    removed

let free_frames mm frames_to_free =
  let frames = Mm_struct.frames mm in
  List.iter
    (fun (pfn, size) ->
      match size with
      | Tlb.Four_k -> Frame_alloc.free frames pfn
      | Tlb.Two_m -> Frame_alloc.free_huge frames pfn)
    frames_to_free

(* Flush geometry for a range: hugepage VMAs flush one entry per 2 MiB
   (the flush_tlb_info "stride shift"), everything else per 4 KiB page. *)
let stride_of mm ~vpn =
  match Mm_struct.find_vma mm ~vpn with
  | Some { Vma.page_size = Tlb.Two_m; _ } -> Tlb.Two_m
  | Some _ | None -> Tlb.Four_k

let flush_entries ~stride ~pages =
  match stride with
  | Tlb.Four_k -> pages
  | Tlb.Two_m -> (pages + Addr.pages_per_huge - 1) / Addr.pages_per_huge

(* Bracket for batching-eligible syscalls: mmap_sem, batched mode, the
   release-time flush of deferred shootdowns, deferred frame frees, and the
   exit-side generation barrier. *)
let in_batched_section m ~cpu ~mm ~write_sem f =
  let pcpu = Machine.percpu m cpu in
  let sem = Mm_struct.mmap_sem mm in
  let lock, unlock =
    if write_sem then (Rwsem.down_write, Rwsem.up_write)
    else (Rwsem.down_read, Rwsem.up_read)
  in
  Machine.delay m m.Machine.costs.Costs.lock_uncontended;
  lock sem;
  if m.Machine.opts.Opts.userspace_batching then pcpu.Percpu.batched_mode <- true;
  let to_free =
    Fun.protect
      ~finally:(fun () ->
        (* Order matters: leave batched mode and flush the deferred
           shootdowns before anyone can observe the released semaphore,
           then free frames only after every TLB has let go of them. *)
        Shootdown.flush_batched m ~from:cpu ~mm;
        pcpu.Percpu.batched_mode <- false;
        unlock sem)
      (fun () ->
        let to_free = f () in
        Shootdown.flush_batched m ~from:cpu ~mm;
        pcpu.Percpu.batched_mode <- false;
        free_frames mm to_free;
        [])
  in
  ignore to_free;
  (* The §4.2 barrier: initiators may have skipped us while batched. *)
  Shootdown.check_and_sync_tlb m ~cpu

let mmap m ~cpu ~pages ?(writable = true) ?(executable = false) ?backing
    ?(page_size = Tlb.Four_k) () =
  in_syscall m ~cpu (fun () ->
      let mm = current_mm m ~cpu in
      Rwsem.with_write (Mm_struct.mmap_sem mm) (fun () ->
          Machine.delay m m.Machine.costs.Costs.vma_op;
          let align = Addr.pages_of_size page_size in
          let start_vpn = Mm_struct.alloc_va_range mm ~align ~pages () in
          let vma =
            match backing with
            | Some backing ->
                Vma.make ~start_vpn ~pages ~writable ~executable ~backing ~page_size ()
            | None -> Vma.make ~start_vpn ~pages ~writable ~executable ~page_size ()
          in
          Mm_struct.add_vma mm vma;
          Addr.addr_of_vpn start_vpn))

let munmap m ~cpu ~addr ~pages =
  in_syscall m ~cpu (fun () ->
      let mm = current_mm m ~cpu in
      let vpn = Addr.vpn_of_addr addr in
      in_batched_section m ~cpu ~mm ~write_sem:true (fun () ->
          with_invalidation_window m ~cpu ~mm ~start_vpn:vpn ~pages (fun () ->
              let stride = stride_of mm ~vpn in
              Machine.delay m m.Machine.costs.Costs.vma_op;
              let removed_vmas = Mm_struct.remove_vma_range mm ~vpn ~pages in
              let r =
                Page_table.unmap_range (Mm_struct.page_table mm) ~vpn ~pages
                  ~free_tables:true ()
              in
              if not (List.is_empty r.Page_table.removed) then trace_pte_write m ~cpu ~mm ~vpn ~pages;
              Machine.delay m
                (m.Machine.costs.Costs.zap_pte * List.length r.Page_table.removed);
              let vma_of v =
                List.find_opt (fun vma -> Vma.contains vma ~vpn:v) removed_vmas
              in
              let to_free = private_frames r.Page_table.removed ~vma_of in
              (* Linux batches the whole munmap range into one flush; freed
                 page tables disable early ack and batching deferral. *)
              if (not (List.is_empty r.Page_table.removed)) || r.Page_table.freed_tables then
                Shootdown.flush_tlb_mm_range m ~from:cpu ~mm ~start_vpn:vpn
                  ~pages:(flush_entries ~stride ~pages)
                  ~stride ~freed_tables:r.Page_table.freed_tables ();
              to_free)))

let madvise_dontneed m ~cpu ~addr ~pages =
  in_syscall m ~cpu (fun () ->
      let mm = current_mm m ~cpu in
      let vpn = Addr.vpn_of_addr addr in
      in_batched_section m ~cpu ~mm ~write_sem:false (fun () ->
          with_invalidation_window m ~cpu ~mm ~start_vpn:vpn ~pages (fun () ->
              let stride = stride_of mm ~vpn in
              let r =
                Page_table.unmap_range (Mm_struct.page_table mm) ~vpn ~pages
                  ~free_tables:false ()
              in
              if not (List.is_empty r.Page_table.removed) then trace_pte_write m ~cpu ~mm ~vpn ~pages;
              Machine.delay m
                (m.Machine.costs.Costs.zap_pte * Stdlib.max 1 (List.length r.Page_table.removed));
              let vma_of v = Mm_struct.find_vma mm ~vpn:v in
              let to_free = private_frames r.Page_table.removed ~vma_of in
              if not (List.is_empty r.Page_table.removed) then
                Shootdown.flush_tlb_mm_range m ~from:cpu ~mm ~start_vpn:vpn
                  ~pages:(flush_entries ~stride ~pages)
                  ~stride ();
              to_free)))

let mprotect m ~cpu ~addr ~pages ~writable =
  in_syscall m ~cpu (fun () ->
      let mm = current_mm m ~cpu in
      let vpn = Addr.vpn_of_addr addr in
      Rwsem.with_write (Mm_struct.mmap_sem mm) (fun () ->
          with_invalidation_window m ~cpu ~mm ~start_vpn:vpn ~pages (fun () ->
              Machine.delay m m.Machine.costs.Costs.vma_op;
              (* Split and re-add the covered VMA pieces with the new mode. *)
              let removed = Mm_struct.remove_vma_range mm ~vpn ~pages in
              List.iter
                (fun vma -> Mm_struct.add_vma mm { vma with Vma.writable })
                removed;
              let pt = Mm_struct.page_table mm in
              let changed = ref 0 in
              for v = vpn to vpn + pages - 1 do
                Machine.delay m m.Machine.costs.Costs.zap_pte;
                match
                  Page_table.update pt ~vpn:v ~f:(fun pte ->
                      if writable then { pte with Pte.writable = not pte.Pte.cow }
                      else Pte.write_protect pte)
                with
                | Some _ -> incr changed
                | None -> ()
              done;
              if !changed > 0 then begin
                trace_pte_write m ~cpu ~mm ~vpn ~pages;
                Shootdown.flush_tlb_mm_range m ~from:cpu ~mm ~start_vpn:vpn ~pages ()
              end)))

let mremap m ~cpu ~addr ~pages =
  in_syscall m ~cpu (fun () ->
      let mm = current_mm m ~cpu in
      let vpn = Addr.vpn_of_addr addr in
      Rwsem.with_write (Mm_struct.mmap_sem mm) (fun () ->
          with_invalidation_window m ~cpu ~mm ~start_vpn:vpn ~pages (fun () ->
              let stride = stride_of mm ~vpn in
              Machine.delay m (2 * m.Machine.costs.Costs.vma_op);
              let removed_vmas = Mm_struct.remove_vma_range mm ~vpn ~pages in
              let align = Addr.pages_of_size stride in
              let new_vpn = Mm_struct.alloc_va_range mm ~align ~pages () in
              let rebase v = new_vpn + (v - vpn) in
              List.iter
                (fun vma ->
                  Mm_struct.add_vma mm
                    { vma with Vma.start_vpn = rebase vma.Vma.start_vpn })
                removed_vmas;
              (* Move live PTEs: the frame references move with them. *)
              let pt = Mm_struct.page_table mm in
              let r = Page_table.unmap_range pt ~vpn ~pages ~free_tables:true () in
              if not (List.is_empty r.Page_table.removed) then trace_pte_write m ~cpu ~mm ~vpn ~pages;
              Machine.delay m
                (m.Machine.costs.Costs.zap_pte * List.length r.Page_table.removed);
              List.iter
                (fun (old_vpn, pte, size) ->
                  Page_table.map pt ~vpn:(rebase old_vpn) ~size pte)
                r.Page_table.removed;
              (* The old translations must die everywhere before anything
                 reuses the old range; tables were freed, so no early ack. *)
              if (not (List.is_empty r.Page_table.removed)) || r.Page_table.freed_tables then
                Shootdown.flush_tlb_mm_range m ~from:cpu ~mm ~start_vpn:vpn
                  ~pages:(flush_entries ~stride ~pages)
                  ~stride ~freed_tables:r.Page_table.freed_tables ();
              Addr.addr_of_vpn new_vpn)))

(* Write back one dirty file page mapped at [vpn]: write-protect + clean
   the PTE, flush (possibly deferred into the §4.2 batch), then do the IO.
   Pages already cleaned — concurrently, by another syncer — are skipped,
   and a flush is only issued when the PTE actually changed, mirroring
   clear_page_dirty_for_io. *)
let writeback_page m ~cpu ~mm ~file ~index ~vpn =
  if File.is_dirty file ~index then begin
    let pt = Mm_struct.page_table mm in
    let owned = ref true in
    with_invalidation_window m ~cpu ~mm ~start_vpn:vpn ~pages:1 (fun () ->
        match
          Page_table.update pt ~vpn ~f:(fun pte -> Pte.clean (Pte.write_protect pte))
        with
        | Some (old, _) when old.Pte.writable || old.Pte.dirty ->
            trace_pte_write m ~cpu ~mm ~vpn ~pages:1;
            Shootdown.flush_tlb_page m ~from:cpu ~mm ~vpn
        | Some _ ->
            (* Clean and protected already: a concurrent writeback owns this
               page and will complete the IO. *)
            owned := false
        | None ->
            (* Dirty data without a live mapping (e.g. unmapped since):
               just write it out. *)
            ());
    if !owned then begin
      Machine.delay m m.Machine.costs.Costs.io_page;
      File.clear_dirty file ~index
    end
  end

let msync m ~cpu ~addr ~pages =
  in_syscall m ~cpu (fun () ->
      let mm = current_mm m ~cpu in
      let vpn = Addr.vpn_of_addr addr in
      in_batched_section m ~cpu ~mm ~write_sem:false (fun () ->
          (match Mm_struct.find_vma mm ~vpn with
          | Some ({ Vma.backing = Vma.File_shared { file; offset }; _ } as vma) ->
              let first = offset + (vpn - vma.Vma.start_vpn) in
              let dirty = File.dirty_in_range file ~index:first ~count:pages in
              List.iter
                (fun index ->
                  let page_vpn = vma.Vma.start_vpn + (index - offset) in
                  writeback_page m ~cpu ~mm ~file ~index ~vpn:page_vpn)
                dirty
          | Some _ | None -> ());
          []))

let fdatasync m ~cpu ~file =
  in_syscall m ~cpu (fun () ->
      let mm = current_mm m ~cpu in
      (* Find a shared mapping of the file in this address space. *)
      let mapping =
        List.find_opt
          (fun vma ->
            match vma.Vma.backing with
            | Vma.File_shared { file = f; _ } -> f == file
            | Vma.File_private _ | Vma.Anonymous -> false)
          (Vma.Set.to_list (Mm_struct.vmas mm))
      in
      match mapping with
      | None -> ()
      | Some ({ Vma.backing = Vma.File_shared { offset; _ }; _ } as vma) ->
          (* Journal commit and writeback-machinery work independent of the
             dirty count. *)
          Machine.delay m m.Machine.costs.Costs.fsync_fixed;
          in_batched_section m ~cpu ~mm ~write_sem:false (fun () ->
              let dirty = File.dirty_in_range file ~index:offset ~count:vma.Vma.pages in
              List.iter
                (fun index ->
                  let page_vpn = vma.Vma.start_vpn + (index - offset) in
                  writeback_page m ~cpu ~mm ~file ~index ~vpn:page_vpn)
                dirty;
              [])
      | Some _ -> ())

let null m ~cpu = in_syscall m ~cpu (fun () -> ())
