type backing =
  | Anonymous
  | File_shared of { file : File.t; offset : int }
  | File_private of { file : File.t; offset : int }

type t = {
  start_vpn : int;
  pages : int;
  writable : bool;
  executable : bool;
  backing : backing;
  page_size : Tlb.page_size;
}

let make ~start_vpn ~pages ?(writable = true) ?(executable = false)
    ?(backing = Anonymous) ?(page_size = Tlb.Four_k) () =
  if pages <= 0 then invalid_arg "Vma.make: pages must be positive";
  (match page_size with
  | Tlb.Two_m ->
      if not (Addr.huge_aligned start_vpn && pages mod Addr.pages_per_huge = 0) then
        invalid_arg "Vma.make: hugepage VMA must be 2MiB-aligned";
      (match backing with
      | Anonymous -> ()
      | File_shared _ | File_private _ ->
          invalid_arg "Vma.make: hugepage VMAs must be anonymous")
  | Tlb.Four_k -> ());
  { start_vpn; pages; writable; executable; backing; page_size }

let end_vpn t = t.start_vpn + t.pages
let contains t ~vpn = vpn >= t.start_vpn && vpn < end_vpn t

let file_page t ~vpn =
  if not (contains t ~vpn) then None
  else begin
    match t.backing with
    | Anonymous -> None
    | File_shared { file; offset } | File_private { file; offset } ->
        Some (file, offset + (vpn - t.start_vpn))
  end

module Set = struct
  module M = Map.Make (Int)

  type set = t M.t  (* keyed by start_vpn *)

  let empty = M.empty
  let cardinal = M.cardinal

  let find set ~vpn =
    match M.find_last_opt (fun start -> start <= vpn) set with
    | Some (_, vma) when contains vma ~vpn -> Some vma
    | Some _ | None -> None

  let overlaps set ~vpn ~pages =
    let stop = vpn + pages in
    (* A VMA overlapping [vpn, stop) either starts inside it or covers vpn. *)
    let starts_inside =
      M.exists (fun start _ -> start >= vpn && start < stop) set
    in
    starts_inside || Option.is_some (find set ~vpn)

  let add set vma =
    if overlaps set ~vpn:vma.start_vpn ~pages:vma.pages then
      invalid_arg "Vma.Set.add: overlapping VMA";
    M.add vma.start_vpn vma set

  (* Clip [vma] to [vpn, stop), adjusting file offsets; assumes overlap. *)
  let clip vma ~vpn ~stop =
    let new_start = Stdlib.max vma.start_vpn vpn in
    let new_end = Stdlib.min (end_vpn vma) stop in
    (match vma.page_size with
    | Tlb.Two_m ->
        if not (Addr.huge_aligned new_start && Addr.huge_aligned new_end) then
          invalid_arg "Vma: hugepage VMAs can only be split at 2MiB boundaries"
    | Tlb.Four_k -> ());
    let shift = new_start - vma.start_vpn in
    let backing =
      match vma.backing with
      | Anonymous -> Anonymous
      | File_shared { file; offset } -> File_shared { file; offset = offset + shift }
      | File_private { file; offset } -> File_private { file; offset = offset + shift }
    in
    { vma with start_vpn = new_start; pages = new_end - new_start; backing }

  let remove_range set ~vpn ~pages =
    let stop = vpn + pages in
    let affected =
      M.fold
        (fun _ vma acc ->
          if vma.start_vpn < stop && end_vpn vma > vpn then vma :: acc else acc)
        set []
    in
    let set =
      List.fold_left
        (fun set vma ->
          let set = M.remove vma.start_vpn set in
          (* Re-insert the pieces outside the removed range. *)
          let set =
            if vma.start_vpn < vpn then
              let left = clip vma ~vpn:vma.start_vpn ~stop:vpn in
              M.add left.start_vpn left set
            else set
          in
          if end_vpn vma > stop then
            let right = clip vma ~vpn:stop ~stop:(end_vpn vma) in
            M.add right.start_vpn right set
          else set)
        set affected
    in
    let removed =
      List.map (fun vma -> clip vma ~vpn ~stop) affected
      |> List.sort (fun a b -> Int.compare a.start_vpn b.start_vpn)
    in
    (set, removed)

  let iter set ~f = M.iter (fun _ vma -> f vma) set
  let to_list set = M.fold (fun _ vma acc -> vma :: acc) set [] |> List.rev
end
