(* Differential fuzzing of the shootdown protocol against a conservative
   oracle (ISSUE 4).

   Each seed deterministically generates a program: a random topology, a
   random Opts combination (all 64 of the paper's optimization subsets are
   reached via [seed mod 64]), a protocol backend (from seed bits 6.., a
   distinct axis so every (combo, backend) pair is reachable without
   aliasing — seeds 0..63 stay on the paper backend), a handful of worker
   threads pinned to distinct CPUs, and a sequence of kernel operations
   over the mm those workers share (plus any address spaces fork creates).
   The program is executed twice on machines that differ only in the flush
   protocol: the backend under test, and [Opts.oracle] — every PTE change
   one synchronous whole-TLB broadcast, nothing deferred, nothing
   skipped.

   Ops execute sequentially (a driver process hands one op at a time to
   the worker that owns it), so every op's functional result — the address
   mmap returns, the pfn an access observes, whether it faults — depends
   only on the op order and on no CPU ever using a stale translation.
   Concurrency still happens inside each op: the other workers spin in
   user mode servicing shootdown IPIs mid-[Cpu.compute], early-acked
   responder flushes outlive the initiator's return, deferred user-PCID
   flushes ride handler exits. A correct protocol therefore produces
   bit-identical observations and final state under both runs; any
   difference — or any Checker violation, or any quiescence-invariant
   failure in the optimized run — is a protocol bug.

   Ops reference regions symbolically (index mod live-region count), so
   any subsequence of a program is still executable: that is what lets
   the ddmin shrinker cut a failing program down to a minimal one. *)

(* ---------- programs ---------- *)

type op =
  | Op_mmap of { worker : int; pages : int; huge : bool }
  | Op_munmap of { worker : int; region : int }
  | Op_mprotect of { worker : int; region : int; writable : bool }
  | Op_mremap of { worker : int; region : int }
  | Op_reclaim of { worker : int; region : int }  (* madvise(DONTNEED) *)
  | Op_touch of { worker : int; region : int; page : int; write : bool }
  | Op_fork of { worker : int }
  | Op_cow_write of { worker : int; region : int; page : int }
  | Op_migrate of { worker : int; region : int }  (* page migration *)
  | Op_ksm of { worker : int; region : int }
  | Op_sched of { worker : int; cpu : int }  (* move worker to another CPU *)

type program = {
  p_seed : int;
  p_sockets : int;
  p_cores : int;
  p_smt : int;
  p_safe : bool;
  p_combo : int;  (* 6-bit optimization mask, see [opts_of_combo] *)
  p_protocol : Opts.protocol;  (* backend under test, from seed bits 6.. *)
  p_inject_bug : bool;
  p_workers : int;
  p_tlb_capacity : int;  (* small TLBs force eviction + recycling paths *)
  p_flush_threshold : int;  (* flips ranged vs full decisions *)
  p_ops : op list;
}

(* Combo bit layout — bit [i] set enables optimization [i]:
   1 concurrent_flush, 2 early_ack, 4 cacheline_consolidation,
   8 in_context_flush, 16 cow_avoid_flush, 32 userspace_batching. *)
let opts_of_combo ?(protocol = Opts.Paper) ~safe ~inject_bug combo =
  let o = Opts.baseline ~safe in
  o.Opts.protocol <- protocol;
  o.Opts.concurrent_flush <- combo land 1 <> 0;
  o.Opts.early_ack <- combo land 2 <> 0;
  o.Opts.cacheline_consolidation <- combo land 4 <> 0;
  o.Opts.in_context_flush <- combo land 8 <> 0;
  o.Opts.cow_avoid_flush <- combo land 16 <> 0;
  o.Opts.userspace_batching <- combo land 32 <> 0;
  o.Opts.bug_skip_deferred_flush <- inject_bug;
  o

let worker_of = function
  | Op_mmap { worker; _ }
  | Op_munmap { worker; _ }
  | Op_mprotect { worker; _ }
  | Op_mremap { worker; _ }
  | Op_reclaim { worker; _ }
  | Op_touch { worker; _ }
  | Op_fork { worker }
  | Op_cow_write { worker; _ }
  | Op_migrate { worker; _ }
  | Op_ksm { worker; _ }
  | Op_sched { worker; _ } ->
      worker

let pp_op fmt op =
  let f fmt' = Format.fprintf fmt fmt' in
  match op with
  | Op_mmap { worker; pages; huge } ->
      f "w%d: mmap %d pages%s" worker pages (if huge then " (huge)" else "")
  | Op_munmap { worker; region } -> f "w%d: munmap r%d" worker region
  | Op_mprotect { worker; region; writable } ->
      f "w%d: mprotect r%d %s" worker region (if writable then "rw" else "ro")
  | Op_mremap { worker; region } -> f "w%d: mremap r%d" worker region
  | Op_reclaim { worker; region } -> f "w%d: reclaim r%d" worker region
  | Op_touch { worker; region; page; write } ->
      f "w%d: %s r%d page %d" worker (if write then "write" else "read") region page
  | Op_fork { worker } -> f "w%d: fork (switch to child)" worker
  | Op_cow_write { worker; region; page } -> f "w%d: cow-write r%d page %d" worker region page
  | Op_migrate { worker; region } -> f "w%d: migrate r%d" worker region
  | Op_ksm { worker; region } -> f "w%d: ksm-merge r%d" worker region
  | Op_sched { worker; cpu } -> f "w%d: sched-migrate toward cpu%d" worker cpu

(* ---------- generation ---------- *)

let gen_program ?(max_ops = 32) ?(inject_bug = false) seed =
  let r = Rng.create ~seed:(Int64.of_int seed) in
  let combo = seed land 63 in
  (* The backend under test comes from disjoint seed bits (6..), so the
     protocol axis never aliases the optimization-combo axis: seeds
     0..63 exercise every combo on the paper backend, 64..127 on
     sync-broadcast, 128..191 on queue-spin, then the cycle repeats.
     The oracle is never the subject — it is always the reference. *)
  let protocols = [| Opts.Paper; Opts.Sync_broadcast; Opts.Queue_spin |] in
  let protocol = protocols.(seed lsr 6 mod Array.length protocols) in
  (* The injected bug drops deferred user flushes, which only exist under
     PTI with §3.4 on — force that combination so --inject-bug always
     demonstrates a divergence for the shrinker to minimize. *)
  let safe = if inject_bug then true else Rng.bool r ~p:0.7 in
  let combo = if inject_bug then combo lor 8 else combo in
  let sockets = 1 + Rng.int r 2 in
  let smt = 1 + Rng.int r 2 in
  let cores = 1 + Rng.int r (max 1 (8 / (sockets * smt))) in
  let sockets, cores, smt =
    if sockets * cores * smt < 2 then (1, 2, 1) else (sockets, cores, smt)
  in
  let n_cpus = sockets * cores * smt in
  let n_workers = min n_cpus (2 + Rng.int r 2) in
  let n_ops = 8 + Rng.int r (max 1 (max_ops - 8)) in
  let forks = ref 0 in
  let gen_op () =
    let worker = Rng.int r n_workers in
    let region = Rng.int r 8 in
    match Rng.int r 100 with
    | n when n < 30 ->
        Op_touch { worker; region; page = Rng.int r 16; write = Rng.bool r ~p:0.5 }
    | n when n < 42 ->
        Op_mmap { worker; pages = 1 + Rng.int r 8; huge = Rng.bool r ~p:0.08 }
    | n when n < 49 -> Op_munmap { worker; region }
    | n when n < 57 -> Op_mprotect { worker; region; writable = Rng.bool r ~p:0.5 }
    | n when n < 63 -> Op_mremap { worker; region }
    | n when n < 71 -> Op_reclaim { worker; region }
    | n when n < 77 && !forks < 3 ->
        incr forks;
        Op_fork { worker }
    | n when n < 85 -> Op_cow_write { worker; region; page = Rng.int r 16 }
    | n when n < 90 -> Op_migrate { worker; region }
    | n when n < 95 -> Op_ksm { worker; region }
    | _ -> Op_sched { worker; cpu = Rng.int r n_cpus }
  in
  let ops =
    (* Lead with one mapping per worker so early ops have something to hit. *)
    List.init n_workers (fun w -> Op_mmap { worker = w; pages = 4; huge = false })
    @ List.init n_ops (fun _ -> gen_op ())
  in
  {
    p_seed = seed;
    p_sockets = sockets;
    p_cores = cores;
    p_smt = smt;
    p_safe = safe;
    p_combo = combo;
    p_protocol = protocol;
    p_inject_bug = inject_bug;
    p_workers = n_workers;
    p_tlb_capacity = Rng.choose r [| 16; 32; 64; 1536 |];
    p_flush_threshold = Rng.choose r [| 1; 4; 33 |];
    p_ops = ops;
  }

(* ---------- execution ---------- *)

type exec_result = {
  xr_obs : string array;  (* one observation per op, "" if never ran *)
  xr_final : string list;  (* page tables + frame census at quiescence *)
  xr_violations : string list;
  xr_invariants : string list;
  xr_crash : string option;
}

type region = { mutable r_addr : int; mutable r_pages : int; r_huge : bool }

(* How long (simulated cycles) the driver waits for one op before declaring
   the run wedged. Generous: oracle broadcasts make everything slow. *)
let op_timeout_cycles = 10_000_000

let execute ~opts program =
  let topo = Topology.create ~sockets:program.p_sockets ~cores_per_socket:program.p_cores
      ~smt:program.p_smt
  in
  opts.Opts.full_flush_threshold <- program.p_flush_threshold;
  let m =
    Machine.create ~topo ~frames:4096 ~seed:(Int64.of_int program.p_seed)
      ~tlb_capacity:program.p_tlb_capacity ~opts ()
  in
  let n_cpus = Machine.n_cpus m in
  let mm0 = Machine.new_mm m in
  let ops = Array.of_list program.p_ops in
  let obs = Array.make (Array.length ops) "" in
  let crash = ref None in
  let nw = program.p_workers in
  let wcpu = Array.init nw (fun w -> w) in
  let wmm = Array.make nw mm0 in
  let occupied = Array.init n_cpus (fun c -> c < nw) in
  let cmd = Array.make nw None in
  let stop = ref false in
  (* Live regions per address space, in creation order (symbolic region
     indices resolve into this, so both runs resolve identically as long
     as their observations agree — and the first disagreement is exactly
     what the diff reports). *)
  let regions : (int, region list ref) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace regions (Mm_struct.id mm0) (ref []);
  let region_list mm_id =
    match Hashtbl.find_opt regions mm_id with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace regions mm_id l;
        l
  in
  let pick_region ~mm_id ~idx ~small_only =
    let rs = !(region_list mm_id) in
    let rs = if small_only then List.filter (fun r -> not r.r_huge) rs else rs in
    match rs with [] -> None | l -> Some (List.nth l (idx mod List.length l))
  in
  let note i s = obs.(i) <- s in
  (* Leave user mode the way the exit trampoline discipline demands, run
     [body] in kernel context, and come back via return_to_user. *)
  let in_kernel w body =
    let cpu_t () = Machine.cpu m wcpu.(w) in
    Cpu.quiesce_and_mask (cpu_t ());
    Cpu.set_in_user (cpu_t ()) false;
    Shootdown.flush_pending_user m ~cpu:wcpu.(w) ~has_stack:true;
    Cpu.irq_enable (cpu_t ());
    body ();
    Shootdown.return_to_user m ~cpu:wcpu.(w) ~has_stack:true
  in
  let run_op w i op =
    let cpu = wcpu.(w) in
    let mm = wmm.(w) in
    let mm_id = Mm_struct.id mm in
    try
      match op with
      | Op_mmap { pages; huge; _ } ->
          let pages = if huge then Addr.pages_per_huge else pages in
          let addr =
            if huge then Syscall.mmap m ~cpu ~pages ~page_size:Tlb.Two_m ()
            else Syscall.mmap m ~cpu ~pages ()
          in
          let l = region_list mm_id in
          l := !l @ [ { r_addr = addr; r_pages = pages; r_huge = huge } ];
          note i (Printf.sprintf "mmap -> 0x%x/%d%s" addr pages (if huge then "H" else ""))
      | Op_munmap { region; _ } -> (
          match pick_region ~mm_id ~idx:region ~small_only:false with
          | None -> note i "munmap: no region"
          | Some r ->
              Syscall.munmap m ~cpu ~addr:r.r_addr ~pages:r.r_pages;
              let l = region_list mm_id in
              l := List.filter (fun r' -> r' != r) !l;
              note i (Printf.sprintf "munmap 0x%x/%d" r.r_addr r.r_pages))
      | Op_mprotect { region; writable; _ } -> (
          match pick_region ~mm_id ~idx:region ~small_only:true with
          | None -> note i "mprotect: no region"
          | Some r ->
              Syscall.mprotect m ~cpu ~addr:r.r_addr ~pages:r.r_pages ~writable;
              note i (Printf.sprintf "mprotect 0x%x/%d %b" r.r_addr r.r_pages writable))
      | Op_mremap { region; _ } -> (
          match pick_region ~mm_id ~idx:region ~small_only:true with
          | None -> note i "mremap: no region"
          | Some r ->
              let naddr = Syscall.mremap m ~cpu ~addr:r.r_addr ~pages:r.r_pages in
              let oaddr = r.r_addr in
              r.r_addr <- naddr;
              note i (Printf.sprintf "mremap 0x%x -> 0x%x/%d" oaddr naddr r.r_pages))
      | Op_reclaim { region; _ } -> (
          match pick_region ~mm_id ~idx:region ~small_only:true with
          | None -> note i "reclaim: no region"
          | Some r ->
              Syscall.madvise_dontneed m ~cpu ~addr:r.r_addr ~pages:r.r_pages;
              note i (Printf.sprintf "reclaim 0x%x/%d" r.r_addr r.r_pages))
      | Op_touch { region; page; _ } | Op_cow_write { region; page; _ } -> (
          let write = match op with Op_touch { write; _ } -> write | _ -> true in
          match pick_region ~mm_id ~idx:region ~small_only:false with
          | None -> note i "touch: no region"
          | Some r -> (
              let vaddr = r.r_addr + (page mod r.r_pages * Addr.page_size) in
              try
                let pfn = Access.translate m ~cpu ~vaddr ~write in
                note i
                  (Printf.sprintf "%s 0x%x -> pfn %d"
                     (if write then "write" else "read")
                     vaddr pfn)
              with Fault.Segfault _ -> note i (Printf.sprintf "touch 0x%x -> SEGV" vaddr)))
      | Op_fork _ ->
          let child = Fork.fork m ~cpu in
          let child_id = Mm_struct.id child in
          let parent_regions = !(region_list mm_id) in
          let l = region_list child_id in
          l :=
            List.map
              (fun r -> { r_addr = r.r_addr; r_pages = r.r_pages; r_huge = r.r_huge })
              parent_regions;
          (* this worker runs the child from here on *)
          in_kernel w (fun () ->
              Sched.switch_mm m ~cpu child;
              wmm.(w) <- child);
          note i (Printf.sprintf "fork -> mm%d" child_id)
      | Op_migrate { region; _ } -> (
          match pick_region ~mm_id ~idx:region ~small_only:true with
          | None -> note i "migrate: no region"
          | Some r ->
              let n =
                Migrate.migrate_range m ~cpu ~mm ~vpn:(Addr.vpn_of_addr r.r_addr)
                  ~pages:r.r_pages
              in
              note i (Printf.sprintf "migrate 0x%x/%d -> %d moved" r.r_addr r.r_pages n))
      | Op_ksm { region; _ } -> (
          match pick_region ~mm_id ~idx:region ~small_only:true with
          | None -> note i "ksm: no region"
          | Some r ->
              let n =
                Ksm.dedup_range m ~cpu ~mm ~vpn:(Addr.vpn_of_addr r.r_addr) ~pages:r.r_pages
              in
              note i (Printf.sprintf "ksm 0x%x/%d -> %d merged" r.r_addr r.r_pages n))
      | Op_sched { cpu = want; _ } ->
          (* First unoccupied CPU scanning from the wanted one: resolution
             is a pure function of worker placement, identical across runs. *)
          let target = ref None in
          for k = 0 to n_cpus - 1 do
            let c = (want + k) mod n_cpus in
            if Option.is_none !target && not occupied.(c) then target := Some c
          done;
          (match !target with
          | None -> note i "sched: no free cpu"
          | Some c ->
              in_kernel w (fun () ->
                  let old = wcpu.(w) in
                  Sched.unload m ~cpu:old;
                  Cpu.vacate (Machine.cpu m old);
                  occupied.(old) <- false;
                  occupied.(c) <- true;
                  wcpu.(w) <- c;
                  Cpu.occupy (Machine.cpu m c);
                  Sched.switch_mm m ~cpu:c wmm.(w));
              note i (Printf.sprintf "sched cpu%d -> cpu%d" cpu c))
    with
    | Fault.Segfault { sf_vaddr; _ } -> note i (Printf.sprintf "op SEGV at 0x%x" sf_vaddr)
    | e -> note i (Printf.sprintf "op EXN %s" (Printexc.to_string e))
  in
  for w = 0 to nw - 1 do
    Process.spawn m.Machine.engine ~name:(Printf.sprintf "fuzz-w%d" w) (fun () ->
        Cpu.occupy (Machine.cpu m wcpu.(w));
        Sched.switch_mm m ~cpu:wcpu.(w) wmm.(w);
        Shootdown.return_to_user m ~cpu:wcpu.(w) ~has_stack:true;
        while not !stop do
          match cmd.(w) with
          | Some (i, op) ->
              run_op w i op;
              cmd.(w) <- None
          | None -> Cpu.compute (Machine.cpu m wcpu.(w)) ~quantum:50 100
        done;
        let c = wcpu.(w) in
        (* Exit through the trampoline so any §3.4 deferral drains. *)
        Shootdown.return_to_user m ~cpu:c ~has_stack:true;
        Cpu.set_in_user (Machine.cpu m c) false;
        Sched.unload m ~cpu:c;
        Cpu.vacate (Machine.cpu m c))
  done;
  Process.spawn m.Machine.engine ~name:"fuzz-driver" (fun () ->
      (try
         Array.iteri
           (fun i op ->
             if Option.is_none !crash then begin
               let w = worker_of op mod nw in
               cmd.(w) <- Some (i, op);
               let t0 = Machine.now m in
               while Option.is_some cmd.(w) && Machine.now m - t0 < op_timeout_cycles do
                 Machine.delay m 200
               done;
               if Option.is_some cmd.(w) then
                 crash := Some (Printf.sprintf "op %d (%s) wedged" i (Format.asprintf "%a" pp_op op))
             end)
           ops
       with e -> crash := Some ("driver EXN " ^ Printexc.to_string e));
      stop := true);
  (try Kernel.run m with e -> if Option.is_none !crash then crash := Some (Printexc.to_string e));
  let final = ref [] in
  let mm_ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) m.Machine.mms [] |> List.sort Int.compare
  in
  List.iter
    (fun id ->
      match Machine.mm_by_id m id with
      | None -> ()
      | Some mm ->
          let pt = Mm_struct.page_table mm in
          let lines = ref [] in
          Page_table.iter pt ~f:(fun vpn pte size ->
              lines :=
                Printf.sprintf "mm%d vpn=%d pfn=%d w=%b %s" id vpn pte.Pte.pfn
                  pte.Pte.writable
                  (match size with Tlb.Four_k -> "4k" | Tlb.Two_m -> "2m")
                :: !lines);
          final := List.sort String.compare !lines @ !final)
    (List.sort Int.compare mm_ids);
  final := Printf.sprintf "frames allocated=%d" (Frame_alloc.allocated m.Machine.frames) :: !final;
  let invariants = ref [] in
  Explorer.post_invariants m (fun s -> invariants := s :: !invariants);
  {
    xr_obs = obs;
    xr_final = List.rev !final;
    xr_violations =
      List.map
        (fun v -> Format.asprintf "%a" Checker.pp_violation v)
        (Checker.violations m.Machine.checker);
    xr_invariants = List.rev !invariants;
    xr_crash = !crash;
  }

(* ---------- differential comparison ---------- *)

let first_obs_mismatch a b =
  let n = min (Array.length a.xr_obs) (Array.length b.xr_obs) in
  let rec go i =
    if i >= n then None
    else if not (String.equal a.xr_obs.(i) b.xr_obs.(i)) then
      Some (i, a.xr_obs.(i), b.xr_obs.(i))
    else go (i + 1)
  in
  go 0

(* All the reasons the optimized run disagrees with the oracle; [] = pass. *)
let compare_runs ~optimized ~oracle =
  let reasons = ref [] in
  let add fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  (match (optimized.xr_crash, oracle.xr_crash) with
  | None, None -> ()
  | Some c, None -> add "optimized run crashed: %s" c
  | None, Some c -> add "oracle run crashed: %s" c
  | Some a, Some b ->
      if not (String.equal a b) then add "both crashed differently: %s / %s" a b);
  List.iter (fun v -> add "checker violation (optimized): %s" v) optimized.xr_violations;
  List.iter (fun v -> add "checker violation (ORACLE -- harness bug?): %s" v) oracle.xr_violations;
  List.iter (fun s -> add "invariant (optimized): %s" s) optimized.xr_invariants;
  (match first_obs_mismatch optimized oracle with
  | Some (i, a, b) -> add "op %d observed %S under optimized but %S under oracle" i a b
  | None -> ());
  if not (List.equal String.equal optimized.xr_final oracle.xr_final) then begin
    let diff =
      List.filter (fun l -> not (List.mem l oracle.xr_final)) optimized.xr_final
      @ List.filter (fun l -> not (List.mem l optimized.xr_final)) oracle.xr_final
    in
    match diff with
    | [] -> add "final state differs (ordering)"
    | l :: _ -> add "final state differs, e.g. %S" l
  end;
  List.rev !reasons

let program_opts program =
  opts_of_combo ~protocol:program.p_protocol ~safe:program.p_safe
    ~inject_bug:program.p_inject_bug program.p_combo

let run_program program =
  let optimized = execute program ~opts:(program_opts program) in
  let oracle = execute program ~opts:(Opts.oracle ~safe:program.p_safe) in
  compare_runs ~optimized ~oracle

(* ---------- shrinking (ddmin) ---------- *)

let shrink_ops ~still_fails ops =
  let rec go ops n =
    let len = List.length ops in
    if len <= 1 || n > len then ops
    else begin
      let chunk = max 1 (len / n) in
      let rec try_remove i =
        if i * chunk >= len then None
        else begin
          let lo = i * chunk and hi = min len ((i + 1) * chunk) in
          let cand = List.filteri (fun j _ -> j < lo || j >= hi) ops in
          if List.length cand < len && still_fails cand then Some cand else try_remove (i + 1)
        end
      in
      match try_remove 0 with
      | Some cand -> go cand (max 2 (n - 1))
      | None -> if chunk = 1 then ops else go ops (min len (2 * n))
    end
  in
  go ops 2

let shrink_program program =
  let still_fails ops = not (List.is_empty (run_program { program with p_ops = ops })) in
  shrink_ops ~still_fails program.p_ops

(* ---------- top-level driving ---------- *)

type failure = {
  f_seed : int;
  f_inject_bug : bool;
  f_reasons : string list;
  f_program : program;
  f_shrunk : op list option;
}

type report = { tested : int; failures : failure list }

let check_seed ?(max_ops = 32) ?(inject_bug = false) ?(shrink = true) seed =
  let program = gen_program ~max_ops ~inject_bug seed in
  match run_program program with
  | [] -> None
  | reasons ->
      let shrunk = if shrink then Some (shrink_program program) else None in
      Some { f_seed = seed; f_inject_bug = inject_bug; f_reasons = reasons;
             f_program = program; f_shrunk = shrunk }

let run_seeds ?(seed_base = 0) ?(count = 500) ?(jobs = 1) ?(max_ops = 32)
    ?(inject_bug = false) ?(shrink = true) () =
  let tasks =
    Array.init count (fun i -> fun () -> check_seed ~max_ops ~inject_bug ~shrink (seed_base + i))
  in
  let results = Domain_pool.run ~jobs tasks in
  { tested = count; failures = Array.to_list results |> List.filter_map Fun.id }

let replay_command f =
  Printf.sprintf "tlbsim fuzz --seed %d --replay%s" f.f_seed
    (if f.f_inject_bug then " --inject-bug" else "")

let pp_program fmt p =
  Format.fprintf fmt
    "seed %d: topo %dx%dx%d, %s mode, proto %s, combo %d [%a], %d workers, tlb %d, \
     threshold %d, %d ops"
    p.p_seed p.p_sockets p.p_cores p.p_smt
    (if p.p_safe then "safe" else "unsafe")
    (Opts.protocol_label p.p_protocol)
    p.p_combo Opts.pp (program_opts p) p.p_workers p.p_tlb_capacity p.p_flush_threshold
    (List.length p.p_ops)

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>FAIL %a@," pp_program f.f_program;
  List.iter (fun r -> Format.fprintf fmt "  %s@," r) f.f_reasons;
  (match f.f_shrunk with
  | None -> ()
  | Some ops ->
      Format.fprintf fmt "  minimal reproducer (%d ops):@," (List.length ops);
      List.iter (fun op -> Format.fprintf fmt "    %a@," pp_op op) ops);
  Format.fprintf fmt "  replay: %s@]" (replay_command f)
