(** Differential fuzzing of the shootdown protocol against the
    conservative oracle ({!Opts.oracle}).

    Each seed deterministically generates a program — random topology,
    random [Opts] combination (all 64 subsets reached via [seed mod 64]),
    a protocol backend from disjoint seed bits ([seed lsr 6 mod 3]: seeds
    0..63 paper, 64..127 sync-broadcast, 128..191 queue-spin, repeating),
    worker threads pinned to distinct CPUs, and a sequence of kernel ops
    over their address spaces — then executes it twice: under the backend
    under test and under the oracle (every PTE change one synchronous
    whole-TLB broadcast). Ops run sequentially but overlap
    with responder-side IPI handling, early-acked flush tails and §3.4
    deferrals, so each op's functional result (addresses, observed pfns,
    faults) is identical across both runs exactly when no CPU ever uses a
    stale translation. Any difference, any Checker violation, or any
    quiescence-invariant failure in the optimized run is a protocol bug;
    failing programs are ddmin-shrunk to a minimal op sequence.

    Ops address regions symbolically (index mod live regions), so every
    subsequence of a program remains executable — the property shrinking
    relies on. *)

type op =
  | Op_mmap of { worker : int; pages : int; huge : bool }
  | Op_munmap of { worker : int; region : int }
  | Op_mprotect of { worker : int; region : int; writable : bool }
  | Op_mremap of { worker : int; region : int }
  | Op_reclaim of { worker : int; region : int }
  | Op_touch of { worker : int; region : int; page : int; write : bool }
  | Op_fork of { worker : int }
  | Op_cow_write of { worker : int; region : int; page : int }
  | Op_migrate of { worker : int; region : int }
  | Op_ksm of { worker : int; region : int }
  | Op_sched of { worker : int; cpu : int }

type program = {
  p_seed : int;
  p_sockets : int;
  p_cores : int;
  p_smt : int;
  p_safe : bool;
  p_combo : int;
  p_protocol : Opts.protocol;
  p_inject_bug : bool;
  p_workers : int;
  p_tlb_capacity : int;
  p_flush_threshold : int;
  p_ops : op list;
}

(** Optimization subset [combo] (6 bits: concurrent, early-ack, cacheline,
    in-context, cow, batching) as an [Opts.t] running [protocol] (default
    [Paper]); [inject_bug] additionally sets
    {!Opts.t.bug_skip_deferred_flush}. *)
val opts_of_combo :
  ?protocol:Opts.protocol -> safe:bool -> inject_bug:bool -> int -> Opts.t

(** The [Opts.t] the program's own combo/protocol/inject-bug fields denote. *)
val program_opts : program -> Opts.t

(** The program seed [seed] denotes, deterministically. [inject_bug]
    forces safe mode + §3.4 so the injected bug is reachable. *)
val gen_program : ?max_ops:int -> ?inject_bug:bool -> int -> program

type exec_result = {
  xr_obs : string array;
  xr_final : string list;
  xr_violations : string list;
  xr_invariants : string list;
  xr_crash : string option;
}

(** One run of [program] on a fresh machine under [opts]. *)
val execute : opts:Opts.t -> program -> exec_result

(** Both runs plus the diff: the list of disagreement reasons, [[]] when
    the optimized protocol matches the oracle (the pass condition). *)
val run_program : program -> string list

(** ddmin the program's op list down to a 1-minimal failing sequence
    (precondition: [run_program program <> []]). *)
val shrink_program : program -> op list

type failure = {
  f_seed : int;
  f_inject_bug : bool;
  f_reasons : string list;
  f_program : program;
  f_shrunk : op list option;
}

type report = { tested : int; failures : failure list }

(** Generate, run and (on failure) shrink one seed. [None] = pass. *)
val check_seed : ?max_ops:int -> ?inject_bug:bool -> ?shrink:bool -> int -> failure option

(** [run_seeds ~seed_base ~count ~jobs ()] shards seeds
    [seed_base .. seed_base+count-1] over a {!Domain_pool}. *)
val run_seeds :
  ?seed_base:int ->
  ?count:int ->
  ?jobs:int ->
  ?max_ops:int ->
  ?inject_bug:bool ->
  ?shrink:bool ->
  unit ->
  report

(** The [tlbsim fuzz --seed N --replay] line reproducing a failure. *)
val replay_command : failure -> string

val pp_op : Format.formatter -> op -> unit
val pp_program : Format.formatter -> program -> unit
val pp_failure : Format.formatter -> failure -> unit
