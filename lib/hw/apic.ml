type t = {
  eng : Engine.t;
  topo : Topology.t;
  cost : Costs.t;
  cpus : Cpu.t array;
  cluster_of : int array; (* cpu -> x2APIC cluster id, precomputed *)
  cluster_members : int array array;
      (* cluster -> member cpus in ascending id order. With [cluster_of]
         this replaces the per-send hashtable-and-sort of
         [Topology.clusters_of_targets] on the pooled send path: marking
         target clusters in [scratch_clusters] and walking each present
         cluster's (≤16-entry) member table visits targets in exactly the
         cluster-major, ascending-cpu order the sorted grouping produced —
         delivery events are inserted in the same order, which same-tick
         tie-breaking makes observable — without allocating. *)
  scratch_clusters : Cpuset.t;
  mutable irqs : Cpu.irq array; (* registry for tagged delivery, see below *)
  mutable n_irqs : int;
  mutable deliver_tag : int;
  mutable n_ipis : int;
  mutable n_icr : int;
  mutable meter : (int -> int -> unit) option;
      (* (distance rank, delivery cycles) per IPI; installed by the metrics
         layer, [None] costs one load+branch per send. *)
}

let create eng topo cost ~cpus =
  if Array.length cpus <> Topology.n_cpus topo then
    invalid_arg "Apic.create: cpu array does not match topology";
  let n = Topology.n_cpus topo in
  let cluster_of = Array.init n (fun cpu -> Topology.cluster_of topo cpu) in
  let n_clusters = 1 + Array.fold_left (fun acc c -> Stdlib.max acc c) 0 cluster_of in
  let counts = Array.make n_clusters 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) cluster_of;
  let cluster_members = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make n_clusters 0 in
  for cpu = 0 to n - 1 do
    let c = cluster_of.(cpu) in
    cluster_members.(c).(fill.(c)) <- cpu;
    fill.(c) <- fill.(c) + 1
  done;
  let t =
    {
      eng;
      topo;
      cost;
      cpus;
      cluster_of;
      cluster_members;
      scratch_clusters = Cpuset.create ~bits:n_clusters;
      irqs = [||];
      n_irqs = 0;
      deliver_tag = -1;
      n_ipis = 0;
      n_icr = 0;
      meter = None;
    }
  in
  (* Delivery events are pooled engine events carrying (target cpu, irq
     registry index) — no per-IPI closure or irq record. *)
  t.deliver_tag <-
    Engine.register_handler eng (fun target idx ->
        Cpu.post_irq t.cpus.(target) t.irqs.(idx));
  t

let set_delivery_meter t f = t.meter <- Some f

(* Register a long-lived irq record for [send_ipi_id]. IRQ records are
   immutable and may be pending on any number of CPUs at once, so one
   record per (machine, vector, handler) is enough for every shootdown. *)
let register_irq t irq =
  let n = t.n_irqs in
  if n = Array.length t.irqs then begin
    let bigger = Array.make (Stdlib.max 4 (2 * n)) irq in
    Array.blit t.irqs 0 bigger 0 n;
    t.irqs <- bigger
  end
  else t.irqs.(n) <- irq;
  t.n_irqs <- n + 1;
  n

let check_targets t ~from targets =
  List.iter
    (fun target ->
      if Int.equal target from then invalid_arg "Apic.send_ipi: self-IPI not supported")
    targets;
  ignore t

(* Hierarchical x2APIC fan-out over a target cpuset: mark the clusters the
   targets span in the scratch cluster set, then walk present clusters in
   ascending id order, pricing one ICR write each, and deliver to that
   cluster's targets (membership test against the target set over the
   precomputed ascending member table). A broadcast to 1024 CPUs is 64
   ICR writes, not 1023 sequential unicasts, and a sparse multicast costs
   O(targets + present clusters * 16) with no per-send allocation. This
   runs entirely between engine events (nothing here yields), so the
   machine-wide scratch cannot be observed mid-update. *)
let send_ipi_id t ~from ~targets ~irq_id =
  if irq_id < 0 || irq_id >= t.n_irqs then
    invalid_arg "Apic.send_ipi_id: unregistered irq";
  if Cpuset.mem targets from then invalid_arg "Apic.send_ipi: self-IPI not supported";
  let sc = t.scratch_clusters in
  Cpuset.clear_all sc;
  let cluster_of = t.cluster_of in
  Cpuset.iter (fun cpu -> Cpuset.set sc cluster_of.(cpu)) targets;
  let send_cost = ref 0 in
  Cpuset.iter
    (fun cluster ->
      (* Each ICR write happens after the previous one; targets of later
         clusters see correspondingly later delivery. *)
      t.n_icr <- t.n_icr + 1;
      send_cost := !send_cost + t.cost.icr_write;
      let offset = !send_cost in
      Array.iter
        (fun target ->
          if Cpuset.mem targets target then begin
            t.n_ipis <- t.n_ipis + 1;
            let d = Topology.distance t.topo from target in
            let latency = Costs.ipi_latency t.cost d in
            (* Delivery = queueing behind earlier ICR writes + flight time;
               this is what the target experiences from the first ICR
               write. *)
            (match t.meter with
            | Some f -> f (Topology.distance_rank d) (offset + latency)
            | None -> ());
            Engine.schedule_tag t.eng ~delay:(offset + latency) ~tag:t.deliver_tag
              ~a:target ~b:irq_id
          end)
        t.cluster_members.(cluster))
    sc;
  !send_cost

(* Closure-per-target variant for callers whose irq payload genuinely
   differs per send; the shootdown paths use [send_ipi_id]. *)
let send_ipi t ~from ~targets ~make_irq =
  check_targets t ~from targets;
  let clusters = Topology.clusters_of_targets t.topo targets in
  t.n_icr <- t.n_icr + List.length clusters;
  let send_cost = ref 0 in
  List.iter
    (fun (_cluster, members) ->
      send_cost := !send_cost + t.cost.icr_write;
      let offset = !send_cost in
      List.iter
        (fun target ->
          t.n_ipis <- t.n_ipis + 1;
          let d = Topology.distance t.topo from target in
          let latency = Costs.ipi_latency t.cost d in
          (match t.meter with
          | Some f -> f (Topology.distance_rank d) (offset + latency)
          | None -> ());
          let irq = make_irq target in
          Engine.schedule t.eng ~delay:(offset + latency) (fun () ->
              Cpu.post_irq t.cpus.(target) irq))
        members)
    clusters;
  !send_cost

let ipis_sent t = t.n_ipis
let icr_writes t = t.n_icr

let reset_stats t =
  t.n_ipis <- 0;
  t.n_icr <- 0
