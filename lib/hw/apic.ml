type t = {
  eng : Engine.t;
  topo : Topology.t;
  cost : Costs.t;
  cpus : Cpu.t array;
  mutable n_ipis : int;
  mutable n_icr : int;
  mutable meter : (int -> int -> unit) option;
      (* (distance rank, delivery cycles) per IPI; installed by the metrics
         layer, [None] costs one load+branch per send. *)
}

let create eng topo cost ~cpus =
  if Array.length cpus <> Topology.n_cpus topo then
    invalid_arg "Apic.create: cpu array does not match topology";
  { eng; topo; cost; cpus; n_ipis = 0; n_icr = 0; meter = None }

let set_delivery_meter t f = t.meter <- Some f

let send_ipi t ~from ~targets ~make_irq =
  List.iter
    (fun target ->
      if target = from then invalid_arg "Apic.send_ipi: self-IPI not supported")
    targets;
  let clusters = Topology.clusters_of_targets t.topo targets in
  t.n_icr <- t.n_icr + List.length clusters;
  let send_cost = ref 0 in
  List.iter
    (fun (_cluster, members) ->
      (* Each ICR write happens after the previous one; targets of later
         clusters see correspondingly later delivery. *)
      send_cost := !send_cost + t.cost.icr_write;
      let offset = !send_cost in
      List.iter
        (fun target ->
          t.n_ipis <- t.n_ipis + 1;
          let d = Topology.distance t.topo from target in
          let latency = Costs.ipi_latency t.cost d in
          (* Delivery = queueing behind earlier ICR writes + flight time;
             this is what the target experiences from the first ICR write. *)
          (match t.meter with
          | Some f -> f (Topology.distance_rank d) (offset + latency)
          | None -> ());
          let irq = make_irq target in
          Engine.schedule t.eng ~delay:(offset + latency) (fun () ->
              Cpu.post_irq t.cpus.(target) irq))
        members)
    clusters;
  !send_cost

let ipis_sent t = t.n_ipis
let icr_writes t = t.n_icr

let reset_stats t =
  t.n_ipis <- 0;
  t.n_icr <- 0
