(** x2APIC in cluster mode: unicast and multicast IPIs.

    Multicast IPIs reach a subset of one 16-CPU cluster per ICR write, so a
    shootdown spanning several clusters pays one ICR write each (paper §2.2).
    Delivery latency is priced by topological distance; handlers start when
    the target CPU next services interrupts. *)

type t

val create : Engine.t -> Topology.t -> Costs.t -> cpus:Cpu.t array -> t

(** [set_delivery_meter t f] installs a per-IPI observer: [f rank cycles]
    is called once per target with the {!Topology.distance_rank} of
    sender→target and the delivery latency (ICR-write queueing + flight
    time) that target experiences. Used by the metrics layer; without a
    meter the send path pays one load+branch. *)
val set_delivery_meter : t -> (int -> int -> unit) -> unit

(** [send_ipi t ~from ~targets ~make_irq] posts [make_irq target] to every
    target CPU after per-target delivery latency, and returns the cycle cost
    the {e sender} pays (one ICR write per cluster touched). The caller — a
    process on CPU [from] — must delay by the returned cost. Self-IPIs are
    rejected. *)
val send_ipi :
  t ->
  from:Topology.cpu_id ->
  targets:Topology.cpu_id list ->
  make_irq:(Topology.cpu_id -> Cpu.irq) ->
  int

(** [register_irq t irq] stores [irq] in the APIC's registry and returns
    its id for {!send_ipi_id}. IRQ records are immutable and may be
    pending on any number of CPUs at once, so a long-lived sender (the
    shootdown protocol) registers one record per machine at first use
    instead of allocating per send. *)
val register_irq : t -> Cpu.irq -> int

(** [send_ipi_id] is {!send_ipi} for a pre-registered irq and a target
    {e cpuset}: delivery events are pooled engine events carrying (target,
    irq id), and the cluster grouping walks precomputed member tables
    against the set — no per-IPI closure, record, list or hashtable
    allocation, and a sparse multicast on a 1024-CPU machine costs
    O(targets + clusters touched). Targets are delivered cluster-major in
    ascending cluster id, ascending cpu id within a cluster — the same
    order the sorted grouping of {!send_ipi} produces. [targets] is read
    synchronously; the caller may reuse its scratch set on return. *)
val send_ipi_id :
  t -> from:Topology.cpu_id -> targets:Cpuset.t -> irq_id:int -> int

(** Total IPIs delivered (one per target). *)
val ipis_sent : t -> int

(** Total ICR writes (multicast efficiency metric). *)
val icr_writes : t -> int

val reset_stats : t -> unit
