(* tlblint: proven-bounds — Bytes.unsafe accesses index the n*n rank matrix
   with cpu ids already range-checked by Topology; loops run a,b,cpu < n.
   The sharer-set walk reads Cpuset.raw_words with indices bounded by the
   word array's own length. *)
type totals = {
  reads : int;
  writes : int;
  local_hits : int;
  smt_transfers : int;
  same_socket_transfers : int;
  cross_socket_transfers : int;
  cycles : int;
}

type registry = {
  topo : Topology.t;
  n_cpus : int;
  ranks : Bytes.t;
      (* [ranks.(a * n_cpus + b)] = distance rank of [Topology.distance a b]
         (0 Self .. 3 Cross_socket), precomputed: the holder scans below run
         it per sharer per access, and the div/mod chain in the live
         computation is measurable there. A flat byte matrix keeps the whole
         table (56x56 = 3 KiB on the paper machine) in L1. *)
  costs : Costs.t;
  mutable t_reads : int;
  mutable t_writes : int;
  mutable t_local : int;
  mutable t_smt : int;
  mutable t_same : int;
  mutable t_cross : int;
  mutable t_cycles : int;
  mutable lines : line list;
  mutable meter : (int -> int -> unit) option;
      (* (distance rank, cycle cost) per access; installed by the metrics
         layer, [None] costs one load+branch in [record]. *)
}

(* The owner is an immediate int (cpu id or -1); sharers are a Cpuset — a
   word-array bitset that starts with no storage and only ever grows to the
   highest sharing cpu's word, so a line touched by two neighbouring CPUs
   on a 1024-CPU machine costs the same as on the 56-CPU paper machine.
   Coherence bookkeeping runs once per shootdown participant per protocol
   line; the single-int mask this replaces capped topologies at
   [Sys.int_size - 2] CPUs. *)
and line = {
  reg : registry;
  line_name : string Lazy.t;
  mutable owner : int; (* last writer's cpu id, -1 = none *)
  sharers : Cpuset.t; (* cpu [c] present iff it holds a shared copy *)
  mutable n_accesses : int;
  mutable n_transfers : int;
}

let distance_rank = Topology.distance_rank

(* Inverse of [distance_rank]; ranks are injective on the constructors, so
   storing ranks and mapping back returns the exact same constructor. *)
let distance_of_rank =
  [| Topology.Self; Topology.Smt_sibling; Topology.Same_socket; Topology.Cross_socket |]

let create_registry topo costs =
  let n = Topology.n_cpus topo in
  let ranks = Bytes.create (n * n) in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      Bytes.unsafe_set ranks
        ((a * n) + b)
        (Char.unsafe_chr (distance_rank (Topology.distance topo a b)))
    done
  done;
  {
    topo;
    n_cpus = n;
    ranks;
    costs;
    t_reads = 0;
    t_writes = 0;
    t_local = 0;
    t_smt = 0;
    t_same = 0;
    t_cross = 0;
    t_cycles = 0;
    lines = [];
    meter = None;
  }

let set_transfer_meter reg f = reg.meter <- Some f

let create_line reg ~name =
  let l =
    {
      reg;
      line_name = name;
      owner = -1;
      sharers = Cpuset.create ~bits:0;
      n_accesses = 0;
      n_transfers = 0;
    }
  in
  reg.lines <- l :: reg.lines;
  l

let name l = Lazy.force l.line_name

let record l (d : Topology.distance) cost =
  let reg = l.reg in
  l.n_accesses <- l.n_accesses + 1;
  reg.t_cycles <- reg.t_cycles + cost;
  (match reg.meter with Some f -> f (distance_rank d) cost | None -> ());
  match d with
  | Self -> reg.t_local <- reg.t_local + 1
  | Smt_sibling ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_smt <- reg.t_smt + 1
  | Same_socket ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_same <- reg.t_same + 1
  | Cross_socket ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_cross <- reg.t_cross + 1

(* Best-rank holder distance from [by] over the holders (the sharer set
   plus the owner, minus [by]), as a rank (-1 = no holders): the minimum
   rank when [want_min] (a read fetches from the closest copy), the
   maximum otherwise (a write is priced by the farthest invalidation).
   Ranks are injective on the distance constructors, so reducing over
   ranks and mapping back through [distance_of_rank] picks exactly the
   constructor the old constructor-fold did. The owner is ranked first
   (min/max is insensitive to it also appearing among the sharers); the
   sharer walk skips zero words, then zero bytes (sparse holder sets), and
   stops as soon as the best achievable rank is reached — [by] itself is
   masked out, so reads stop at [Smt_sibling], writes at [Cross_socket].
   Returning the rank keeps this allocation-free (no [Some] boxing on the
   per-access path). *)
let extreme_rank l ~by ~want_min =
  let reg = l.reg in
  let base = by * reg.n_cpus in
  let ideal = if want_min then 1 else 3 in
  let none = if want_min then 4 else -1 in
  let best = ref none in
  if l.owner >= 0 && l.owner <> by then
    best := Char.code (Bytes.unsafe_get reg.ranks (base + l.owner));
  let words = Cpuset.raw_words l.sharers in
  let nw = Array.length words in
  let by_wi = by lsr 5 in
  let wi = ref 0 in
  while !wi < nw && !best <> ideal do
    let w = Array.unsafe_get words !wi in
    let w = if !wi = by_wi then w land lnot (1 lsl (by land 31)) else w in
    if w <> 0 then begin
      let m = ref w in
      let cpu = ref (!wi lsl 5) in
      while !m <> 0 && !best <> ideal do
        if !m land 0xff = 0 then begin
          m := !m lsr 8;
          cpu := !cpu + 8
        end
        else begin
          if !m land 1 = 1 then begin
            let r = Char.code (Bytes.unsafe_get reg.ranks (base + !cpu)) in
            if if want_min then r < !best else r > !best then best := r
          end;
          m := !m lsr 1;
          incr cpu
        end
      done
    end;
    incr wi
  done;
  if !best = none then -1 else !best

let read l ~by =
  let reg = l.reg in
  reg.t_reads <- reg.t_reads + 1;
  if Cpuset.mem l.sharers by || l.owner = by then begin
    record l Self reg.costs.line_local;
    Cpuset.set l.sharers by;
    reg.costs.line_local
  end
  else begin
    let r = extreme_rank l ~by ~want_min:true in
    let d = if r < 0 then Topology.Self else Array.unsafe_get distance_of_rank r in
    let cost = Costs.line_transfer reg.costs d in
    record l d cost;
    Cpuset.set l.sharers by;
    cost
  end

(* Stores retire through the store buffer: the writer does not stall for
   the ownership transfer (the RFO completes asynchronously), so the
   writer's visible cost is local. The invalidation still moves ownership
   — the *next reader* pays the transfer — and is recorded as coherence
   traffic by distance. Atomics, by contrast, stall for the line. *)
(* No sharer other than (possibly) [by]: the exclusivity half of the
   "already own it" write fast path. A walk over the words, not a popcount
   — almost every word is zero on the fast path. *)
let no_other_sharer l ~by =
  let words = Cpuset.raw_words l.sharers in
  let nw = Array.length words in
  let by_wi = by lsr 5 in
  let ok = ref true in
  let wi = ref 0 in
  while !ok && !wi < nw do
    let w = Array.unsafe_get words !wi in
    let w = if !wi = by_wi then w land lnot (1 lsl (by land 31)) else w in
    if w <> 0 then ok := false;
    incr wi
  done;
  !ok

(* Invalidate every copy and make [by] the sole owner+sharer. *)
let take_exclusive l ~by =
  Cpuset.clear_all l.sharers;
  Cpuset.set l.sharers by;
  l.owner <- by

let write l ~by =
  let reg = l.reg in
  reg.t_writes <- reg.t_writes + 1;
  let d =
    let exclusive = l.owner = by && no_other_sharer l ~by in
    if exclusive then Topology.Self
    else begin
      let r = extreme_rank l ~by ~want_min:false in
      if r < 0 then Topology.Self else Array.unsafe_get distance_of_rank r
    end
  in
  record l d reg.costs.line_local;
  take_exclusive l ~by;
  reg.costs.line_local

let stalling_write l ~by =
  let reg = l.reg in
  reg.t_writes <- reg.t_writes + 1;
  let exclusive = l.owner = by && no_other_sharer l ~by in
  let cost, d =
    if exclusive then (reg.costs.line_local, Topology.Self)
    else begin
      let r = extreme_rank l ~by ~want_min:false in
      if r < 0 then (reg.costs.line_local, Topology.Self)
      else begin
        let d = Array.unsafe_get distance_of_rank r in
        (Costs.line_transfer reg.costs d, d)
      end
    end
  in
  record l d cost;
  take_exclusive l ~by;
  cost

let atomic l ~by = stalling_write l ~by + l.reg.costs.atomic_op

let accesses l = l.n_accesses
let line_transfers l = l.n_transfers

let totals reg =
  {
    reads = reg.t_reads;
    writes = reg.t_writes;
    local_hits = reg.t_local;
    smt_transfers = reg.t_smt;
    same_socket_transfers = reg.t_same;
    cross_socket_transfers = reg.t_cross;
    cycles = reg.t_cycles;
  }

let reset_stats reg =
  reg.t_reads <- 0;
  reg.t_writes <- 0;
  reg.t_local <- 0;
  reg.t_smt <- 0;
  reg.t_same <- 0;
  reg.t_cross <- 0;
  reg.t_cycles <- 0;
  List.iter
    (fun l ->
      l.n_accesses <- 0;
      l.n_transfers <- 0)
    reg.lines

let pp_totals fmt t =
  Format.fprintf fmt
    "reads=%d writes=%d local=%d smt=%d same-socket=%d cross-socket=%d cycles=%d"
    t.reads t.writes t.local_hits t.smt_transfers t.same_socket_transfers
    t.cross_socket_transfers t.cycles
