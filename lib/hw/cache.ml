(* tlblint: proven-bounds — Bytes.unsafe accesses index the n*n rank matrix
   with cpu ids already range-checked by Topology; loops run a,b,cpu < n. *)
type totals = {
  reads : int;
  writes : int;
  local_hits : int;
  smt_transfers : int;
  same_socket_transfers : int;
  cross_socket_transfers : int;
  cycles : int;
}

type registry = {
  topo : Topology.t;
  n_cpus : int;
  ranks : Bytes.t;
      (* [ranks.(a * n_cpus + b)] = distance rank of [Topology.distance a b]
         (0 Self .. 3 Cross_socket), precomputed: the holder scans below run
         it per sharer per access, and the div/mod chain in the live
         computation is measurable there. A flat byte matrix keeps the whole
         table (56x56 = 3 KiB on the paper machine) in L1. *)
  costs : Costs.t;
  mutable t_reads : int;
  mutable t_writes : int;
  mutable t_local : int;
  mutable t_smt : int;
  mutable t_same : int;
  mutable t_cross : int;
  mutable t_cycles : int;
  mutable lines : line list;
  mutable meter : (int -> int -> unit) option;
      (* (distance rank, cycle cost) per access; installed by the metrics
         layer, [None] costs one load+branch in [record]. *)
}

(* Owner and sharers are immediate ints — owner is a cpu id or -1, sharers
   a bit set over cpu ids. Coherence bookkeeping runs once per shootdown
   participant per protocol line, so the persistent-set representation this
   replaces was a measurable share of total bench allocation. *)
and line = {
  reg : registry;
  line_name : string Lazy.t;
  mutable owner : int; (* last writer's cpu id, -1 = none *)
  mutable sharers : int; (* bit [c] set iff cpu [c] holds a shared copy *)
  mutable n_accesses : int;
  mutable n_transfers : int;
}

let distance_rank = Topology.distance_rank

(* Inverse of [distance_rank]; ranks are injective on the constructors, so
   storing ranks and mapping back returns the exact same constructor. *)
let distance_of_rank =
  [| Topology.Self; Topology.Smt_sibling; Topology.Same_socket; Topology.Cross_socket |]

let create_registry topo costs =
  if Topology.n_cpus topo > Sys.int_size - 2 then
    invalid_arg "Cache.create_registry: too many CPUs for the sharer bit set";
  let n = Topology.n_cpus topo in
  let ranks = Bytes.create (n * n) in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      Bytes.unsafe_set ranks
        ((a * n) + b)
        (Char.unsafe_chr (distance_rank (Topology.distance topo a b)))
    done
  done;
  {
    topo;
    n_cpus = n;
    ranks;
    costs;
    t_reads = 0;
    t_writes = 0;
    t_local = 0;
    t_smt = 0;
    t_same = 0;
    t_cross = 0;
    t_cycles = 0;
    lines = [];
    meter = None;
  }

let set_transfer_meter reg f = reg.meter <- Some f

let create_line reg ~name =
  let l =
    { reg; line_name = name; owner = -1; sharers = 0; n_accesses = 0; n_transfers = 0 }
  in
  reg.lines <- l :: reg.lines;
  l

let name l = Lazy.force l.line_name

let record l (d : Topology.distance) cost =
  let reg = l.reg in
  l.n_accesses <- l.n_accesses + 1;
  reg.t_cycles <- reg.t_cycles + cost;
  (match reg.meter with Some f -> f (distance_rank d) cost | None -> ());
  match d with
  | Self -> reg.t_local <- reg.t_local + 1
  | Smt_sibling ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_smt <- reg.t_smt + 1
  | Same_socket ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_same <- reg.t_same + 1
  | Cross_socket ->
      l.n_transfers <- l.n_transfers + 1;
      reg.t_cross <- reg.t_cross + 1

(* Everyone holding a copy, minus [by]: the sharers plus the owner. *)
let holders_mask l ~by =
  let m = if l.owner >= 0 then l.sharers lor (1 lsl l.owner) else l.sharers in
  m land lnot (1 lsl by)

(* Best-rank holder distance from [by] over the holder bit set, as a rank
   (-1 = no holders): the minimum rank when [want_min] (a read fetches
   from the closest copy), the maximum otherwise (a write is priced by the
   farthest invalidation). Ranks are injective on the distance
   constructors, so reducing over ranks and mapping back through
   [distance_of_rank] picks exactly the constructor the old
   constructor-fold did. The walk skips zero bytes of the mask (sparse
   holder sets) and stops as soon as the best achievable rank is reached —
   [by] itself is never a holder here, so reads stop at [Smt_sibling],
   writes at [Cross_socket]. Returning the rank keeps this allocation-free
   (no [Some] boxing on the per-access path). *)
let extreme_rank l ~by ~want_min =
  let mask = holders_mask l ~by in
  if mask = 0 then -1
  else begin
    let reg = l.reg in
    let base = by * reg.n_cpus in
    let ideal = if want_min then 1 else 3 in
    let best = ref (if want_min then 4 else -1) in
    let m = ref mask in
    let cpu = ref 0 in
    while !m <> 0 && !best <> ideal do
      if !m land 0xff = 0 then begin
        m := !m lsr 8;
        cpu := !cpu + 8
      end
      else begin
        if !m land 1 = 1 then begin
          let r = Char.code (Bytes.unsafe_get reg.ranks (base + !cpu)) in
          if if want_min then r < !best else r > !best then best := r
        end;
        m := !m lsr 1;
        incr cpu
      end
    done;
    !best
  end

let read l ~by =
  let reg = l.reg in
  reg.t_reads <- reg.t_reads + 1;
  let bit = 1 lsl by in
  if l.sharers land bit <> 0 || l.owner = by then begin
    record l Self reg.costs.line_local;
    l.sharers <- l.sharers lor bit;
    reg.costs.line_local
  end
  else begin
    let r = extreme_rank l ~by ~want_min:true in
    let d = if r < 0 then Topology.Self else Array.unsafe_get distance_of_rank r in
    let cost = Costs.line_transfer reg.costs d in
    record l d cost;
    l.sharers <- l.sharers lor bit;
    cost
  end

(* Stores retire through the store buffer: the writer does not stall for
   the ownership transfer (the RFO completes asynchronously), so the
   writer's visible cost is local. The invalidation still moves ownership
   — the *next reader* pays the transfer — and is recorded as coherence
   traffic by distance. Atomics, by contrast, stall for the line. *)
let write l ~by =
  let reg = l.reg in
  reg.t_writes <- reg.t_writes + 1;
  let bit = 1 lsl by in
  let d =
    let exclusive = l.owner = by && l.sharers land lnot bit = 0 in
    if exclusive then Topology.Self
    else begin
      let r = extreme_rank l ~by ~want_min:false in
      if r < 0 then Topology.Self else Array.unsafe_get distance_of_rank r
    end
  in
  record l d reg.costs.line_local;
  l.owner <- by;
  l.sharers <- bit;
  reg.costs.line_local

let stalling_write l ~by =
  let reg = l.reg in
  reg.t_writes <- reg.t_writes + 1;
  let bit = 1 lsl by in
  let exclusive = l.owner = by && l.sharers land lnot bit = 0 in
  let cost, d =
    if exclusive then (reg.costs.line_local, Topology.Self)
    else begin
      let r = extreme_rank l ~by ~want_min:false in
      if r < 0 then (reg.costs.line_local, Topology.Self)
      else begin
        let d = Array.unsafe_get distance_of_rank r in
        (Costs.line_transfer reg.costs d, d)
      end
    end
  in
  record l d cost;
  l.owner <- by;
  l.sharers <- bit;
  cost

let atomic l ~by = stalling_write l ~by + l.reg.costs.atomic_op

let accesses l = l.n_accesses
let line_transfers l = l.n_transfers

let totals reg =
  {
    reads = reg.t_reads;
    writes = reg.t_writes;
    local_hits = reg.t_local;
    smt_transfers = reg.t_smt;
    same_socket_transfers = reg.t_same;
    cross_socket_transfers = reg.t_cross;
    cycles = reg.t_cycles;
  }

let reset_stats reg =
  reg.t_reads <- 0;
  reg.t_writes <- 0;
  reg.t_local <- 0;
  reg.t_smt <- 0;
  reg.t_same <- 0;
  reg.t_cross <- 0;
  reg.t_cycles <- 0;
  List.iter
    (fun l ->
      l.n_accesses <- 0;
      l.n_transfers <- 0)
    reg.lines

let pp_totals fmt t =
  Format.fprintf fmt
    "reads=%d writes=%d local=%d smt=%d same-socket=%d cross-socket=%d cycles=%d"
    t.reads t.writes t.local_hits t.smt_transfers t.same_socket_transfers
    t.cross_socket_transfers t.cycles
