(** Cacheline coherence cost model (MESI-flavoured).

    Each kernel cacheline the shootdown protocol touches is registered here.
    Reads and writes return a cycle cost that depends on where the line's
    current owner/sharers sit in the topology, and update ownership. The
    cacheline-consolidation optimization (paper §3.3) manifests as fewer
    registered lines touched per shootdown, which this module prices and
    counts. *)

type registry
type line

(** Totals accumulated across all lines of a registry. *)
type totals = {
  reads : int;
  writes : int;
  local_hits : int;
  smt_transfers : int;
  same_socket_transfers : int;
  cross_socket_transfers : int;
  cycles : int;
}

val create_registry : Topology.t -> Costs.t -> registry

(** [set_transfer_meter reg f] installs a per-access observer: [f rank cost]
    is called for every priced access with the {!Topology.distance_rank} of
    the transfer source (rank 0 = local hit) and its cycle cost. Used by
    the metrics layer; without a meter the access path pays one
    load+branch. *)
val set_transfer_meter : registry -> (int -> int -> unit) -> unit

(** Register a named cacheline; initially unowned (first touch is a cheap
    local fill). *)
val create_line : registry -> name:string Lazy.t -> line

val name : line -> string

(** [read line ~by] returns the cycle cost of loading the line on CPU [by]
    and records [by] as a sharer. A read of a line last written elsewhere
    pays a transfer priced by distance. *)
val read : line -> by:Topology.cpu_id -> int

(** [write line ~by] makes [by] the exclusive owner. The writer's visible
    cost is local (stores retire through the store buffer; the RFO
    completes asynchronously) but the invalidation is recorded as coherence
    traffic and the next remote reader pays the transfer. *)
val write : line -> by:Topology.cpu_id -> int

(** A write that stalls for ownership like an atomic does (without the
    locked-op cost); for code that must observe the store globally ordered
    before proceeding. *)
val stalling_write : line -> by:Topology.cpu_id -> int

(** Atomic read-modify-write: exclusive ownership plus the locked-op cost. *)
val atomic : line -> by:Topology.cpu_id -> int

(** Per-line access count (reads + writes). *)
val accesses : line -> int

(** Per-line transfer count (accesses that were not local hits). *)
val line_transfers : line -> int

val totals : registry -> totals

(** Reset all counters (line ownership is kept). *)
val reset_stats : registry -> unit

val pp_totals : Format.formatter -> totals -> unit
