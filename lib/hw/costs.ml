type t = {
  invlpg : int;
  invpcid_single : int;
  invpcid_full : int;
  cr3_write : int;
  lfence : int;
  page_walk : int;
  page_walk_cold : int;
  nested_walk_factor : int;
  atomic_op : int;
  mem_access : int;
  page_copy : int;
  page_zero : int;
  io_page : int;
  fsync_fixed : int;
  line_local : int;
  line_smt : int;
  line_same_socket : int;
  line_cross_socket : int;
  icr_write : int;
  ipi_fixed : int;
  ipi_smt : int;
  ipi_same_socket : int;
  ipi_cross_socket : int;
  syscall_entry_unsafe : int;
  syscall_exit_unsafe : int;
  syscall_entry_safe : int;
  syscall_exit_safe : int;
  irq_entry_kernel_unsafe : int;
  irq_entry_user_unsafe : int;
  irq_entry_kernel_safe : int;
  irq_entry_user_safe : int;
  irq_exit : int;
  lock_uncontended : int;
  spin_poll : int;
  zap_pte : int;
  fault_fixed : int;
  fault_fixed_safe_extra : int;
  vma_op : int;
  context_switch : int;
}

(* Calibration anchors from the paper itself: a single-PTE flush "can take
   over 100ns" and 33 entries "over 3us" (§3.1) — roughly 250-300 cycles
   per INVLPG at 2 GHz; INVPCID single-address is slower than INVLPG by
   100+ cycles (§3.4, §5.1 measures ~110/PTE); IPI delivery "often takes
   more time (potentially over 1000 cycles) than TLB flushing" (§3.2);
   shootdowns cost "several thousand cycles" end to end (§2.3.2). *)
let default =
  {
    invlpg = 260;
    invpcid_single = 400;
    invpcid_full = 380;
    cr3_write = 250;
    lfence = 40;
    page_walk = 120;
    page_walk_cold = 220;
    nested_walk_factor = 4;
    atomic_op = 30;
    mem_access = 4;
    page_copy = 1100;
    page_zero = 600;
    io_page = 4500;
    fsync_fixed = 40000;
    line_local = 15;
    line_smt = 25;
    line_same_socket = 70;
    line_cross_socket = 150;
    icr_write = 120;
    ipi_fixed = 250;
    ipi_smt = 200;
    ipi_same_socket = 450;
    ipi_cross_socket = 650;
    syscall_entry_unsafe = 70;
    syscall_exit_unsafe = 60;
    syscall_entry_safe = 300;
    syscall_exit_safe = 260;
    irq_entry_kernel_unsafe = 240;
    irq_entry_user_unsafe = 320;
    irq_entry_kernel_safe = 350;
    irq_entry_user_safe = 500;
    irq_exit = 200;
    lock_uncontended = 40;
    spin_poll = 40;
    zap_pte = 100;
    fault_fixed = 900;
    fault_fixed_safe_extra = 700;
    vma_op = 350;
    context_switch = 600;
  }

(* Canonical value key for the bench harness's cell memoization: every
   field, in declaration order. The exhaustive record pattern makes adding
   a field without extending the key a compile error (warning 9), not a
   silent memoization bug. *)
let key
    {
      invlpg;
      invpcid_single;
      invpcid_full;
      cr3_write;
      lfence;
      page_walk;
      page_walk_cold;
      nested_walk_factor;
      atomic_op;
      mem_access;
      page_copy;
      page_zero;
      io_page;
      fsync_fixed;
      line_local;
      line_smt;
      line_same_socket;
      line_cross_socket;
      icr_write;
      ipi_fixed;
      ipi_smt;
      ipi_same_socket;
      ipi_cross_socket;
      syscall_entry_unsafe;
      syscall_exit_unsafe;
      syscall_entry_safe;
      syscall_exit_safe;
      irq_entry_kernel_unsafe;
      irq_entry_user_unsafe;
      irq_entry_kernel_safe;
      irq_entry_user_safe;
      irq_exit;
      lock_uncontended;
      spin_poll;
      zap_pte;
      fault_fixed;
      fault_fixed_safe_extra;
      vma_op;
      context_switch;
    } =
  String.concat ","
    (List.map string_of_int
       [
         invlpg;
         invpcid_single;
         invpcid_full;
         cr3_write;
         lfence;
         page_walk;
         page_walk_cold;
         nested_walk_factor;
         atomic_op;
         mem_access;
         page_copy;
         page_zero;
         io_page;
         fsync_fixed;
         line_local;
         line_smt;
         line_same_socket;
         line_cross_socket;
         icr_write;
         ipi_fixed;
         ipi_smt;
         ipi_same_socket;
         ipi_cross_socket;
         syscall_entry_unsafe;
         syscall_exit_unsafe;
         syscall_entry_safe;
         syscall_exit_safe;
         irq_entry_kernel_unsafe;
         irq_entry_user_unsafe;
         irq_entry_kernel_safe;
         irq_entry_user_safe;
         irq_exit;
         lock_uncontended;
         spin_poll;
         zap_pte;
         fault_fixed;
         fault_fixed_safe_extra;
         vma_op;
         context_switch;
       ])

let ipi_latency t (d : Topology.distance) =
  match d with
  | Self -> t.ipi_fixed
  | Smt_sibling -> t.ipi_fixed + t.ipi_smt
  | Same_socket -> t.ipi_fixed + t.ipi_same_socket
  | Cross_socket -> t.ipi_fixed + t.ipi_cross_socket

let line_transfer t (d : Topology.distance) =
  match d with
  | Self -> t.line_local
  | Smt_sibling -> t.line_smt
  | Same_socket -> t.line_same_socket
  | Cross_socket -> t.line_cross_socket

let syscall_entry t ~safe = if safe then t.syscall_entry_safe else t.syscall_entry_unsafe
let syscall_exit t ~safe = if safe then t.syscall_exit_safe else t.syscall_exit_unsafe

let irq_entry t ~safe ~from_user =
  match (safe, from_user) with
  | true, true -> t.irq_entry_user_safe
  | true, false -> t.irq_entry_kernel_safe
  | false, true -> t.irq_entry_user_unsafe
  | false, false -> t.irq_entry_kernel_unsafe
