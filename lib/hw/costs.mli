(** The cycle-cost model: every latency constant in the simulator.

    This is the single calibration point of the reproduction. Values are
    drawn from figures stated in the paper (INVLPG ~200 cycles/entry, IPI
    delivery often over 1000 cycles, shootdowns costing thousands of cycles,
    INVPCID slower than INVLPG by ~110 cycles/entry on Skylake) and from
    public measurements of Skylake-era syscall/interrupt overheads. Absolute
    numbers are approximate by design; the experiments report relative
    behaviour. *)

type t = {
  (* --- TLB instructions --- *)
  invlpg : int;  (** flush one PTE in the active address space *)
  invpcid_single : int;  (** flush one PTE in another PCID (slower) *)
  invpcid_full : int;  (** flush all entries of one PCID *)
  cr3_write : int;  (** address-space switch / full non-global flush *)
  lfence : int;  (** speculation barrier after deferred-flush loop *)
  (* --- memory & page walks --- *)
  page_walk : int;  (** 4-level walk with warm paging-structure caches *)
  page_walk_cold : int;  (** walk after the paging-structure cache was lost *)
  nested_walk_factor : int;  (** EPT walk multiplier (2D page walk) *)
  atomic_op : int;  (** LOCK-prefixed RMW on a cached line *)
  mem_access : int;  (** one user load/store that hits caches and TLB *)
  page_copy : int;  (** copy one 4 KiB page *)
  page_zero : int;  (** zero one freshly allocated 4 KiB page *)
  io_page : int;  (** write back one 4 KiB page to (persistent-memory) storage *)
  fsync_fixed : int;
      (** per-call filesystem work of fsync/fdatasync (journal commit,
          radix-tree sweeps) independent of the dirty page count *)
  (* --- cacheline transfers, by distance --- *)
  line_local : int;
  line_smt : int;
  line_same_socket : int;
  line_cross_socket : int;
  (* --- APIC --- *)
  icr_write : int;  (** one ICR write (per multicast cluster) *)
  ipi_fixed : int;  (** delivery pipeline minimum *)
  ipi_smt : int;
  ipi_same_socket : int;
  ipi_cross_socket : int;
  (* --- kernel entry/exit (mode-dependent; "safe" = PTI + mitigations) --- *)
  syscall_entry_unsafe : int;
  syscall_exit_unsafe : int;
  syscall_entry_safe : int;  (** incl. trampoline + CR3 switch *)
  syscall_exit_safe : int;
  irq_entry_kernel_unsafe : int;
  irq_entry_user_unsafe : int;
  irq_entry_kernel_safe : int;
  irq_entry_user_safe : int;  (** notably slower: trampoline + CR3 *)
  irq_exit : int;  (** EOI + iret *)
  (* --- kernel software paths --- *)
  lock_uncontended : int;
  spin_poll : int;  (** polling granularity while spin-waiting *)
  zap_pte : int;  (** per-PTE page-table teardown work in madvise/munmap *)
  fault_fixed : int;  (** page-fault entry/exit + VMA lookup, excl. copy *)
  fault_fixed_safe_extra : int;  (** extra PTI cost on the fault path *)
  vma_op : int;  (** mmap/munmap VMA bookkeeping *)
  context_switch : int;  (** scheduler + register state, excl. CR3 *)
}

val default : t

(** Canonical value key over every field: equal keys iff identical cost
    models. Used by the bench harness to memoize identical (config, seed)
    cells across experiments. *)
val key : t -> string

(** IPI delivery latency (send-to-handler-start) for a given distance.
    [Self] never happens (no self-IPI in the shootdown protocol). *)
val ipi_latency : t -> Topology.distance -> int

(** Cost of pulling a cacheline whose current owner is at [distance]. *)
val line_transfer : t -> Topology.distance -> int

(** Syscall entry/exit and IRQ entry given the mitigation mode. *)
val syscall_entry : t -> safe:bool -> int
val syscall_exit : t -> safe:bool -> int
val irq_entry : t -> safe:bool -> from_user:bool -> int
