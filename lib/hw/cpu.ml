type t = {
  cpu_id : Topology.cpu_id;
  eng : Engine.t;
  topo : Topology.t;
  cost : Costs.t;
  safe : bool;
  cpu_tlb : Tlb.t;
  mutable masked : bool;
  pending : irq Queue.t;
  mutable pending_unmaskable : int;
      (* unmaskable entries in [pending]: lets [has_deliverable] answer in
         O(1) — an unmaskable IRQ is deliverable regardless of [masked],
         and with IRQs unmasked any pending IRQ is. *)
  dispatch_name : string; (* precomputed: spawned per detached dispatch *)
  wake : Waitq.t;
  mutable user : bool;
  mutable draining : bool;
  mutable t_interrupted : int;
  mutable t_handled : int;
  mutable t_compute : int;
  mutable from_user_irq : bool;
  mutable service_depth : int;
      (* > 0 while some process is at a service point (compute / spin /
         idle) and will drain the queue itself. *)
  mutable occupancy : int;
      (* processes bound to this CPU. IRQ handlers must never interleave
         with user-mode execution of an occupant, so detached dispatch is
         only legal in kernel context or on an empty CPU. *)
}

and irq = { vector : int; maskable : bool; handler : t -> unit }

let create eng topo cost ~id ~safe ?tlb_capacity () =
  if id < 0 || id >= Topology.n_cpus topo then
    invalid_arg (Printf.sprintf "Cpu.create: id %d out of range" id);
  {
    cpu_id = id;
    eng;
    topo;
    cost;
    safe;
    cpu_tlb = Tlb.create ?capacity:tlb_capacity ();
    masked = false;
    pending = Queue.create ();
    pending_unmaskable = 0;
    dispatch_name = Printf.sprintf "irq-dispatch-cpu%d" id;
    wake = Waitq.create eng;
    user = true;
    draining = false;
    t_interrupted = 0;
    t_handled = 0;
    t_compute = 0;
    from_user_irq = false;
    service_depth = 0;
    occupancy = 0;
  }

let id t = t.cpu_id
let irq_from_user t = t.from_user_irq
let tlb t = t.cpu_tlb
let engine t = t.eng
let costs t = t.cost
let in_user t = t.user
let irqs_masked t = t.masked
let pending_irqs t = Queue.length t.pending
let interrupted_cycles t = t.t_interrupted
let irqs_handled t = t.t_handled
let compute_cycles t = t.t_compute

let reset_accounting t =
  t.t_interrupted <- 0;
  t.t_handled <- 0;
  t.t_compute <- 0

let deliverable t irq = (not irq.maskable) || not t.masked

let has_deliverable t =
  t.pending_unmaskable > 0 || ((not t.masked) && Queue.length t.pending > 0)

(* Run one IRQ: entry cost depends on mitigation mode and on the privilege
   we are interrupting; handler time is charged to interrupted_cycles. *)
let run_irq t irq =
  let started = Engine.now t.eng in
  let was_user = t.user in
  let outer_from_user = t.from_user_irq in
  t.user <- false;
  t.from_user_irq <- was_user;
  Process.delay t.eng (Costs.irq_entry t.cost ~safe:t.safe ~from_user:was_user);
  irq.handler t;
  Process.delay t.eng t.cost.irq_exit;
  t.user <- was_user;
  t.from_user_irq <- outer_from_user;
  t.t_handled <- t.t_handled + 1;
  t.t_interrupted <- t.t_interrupted + (Engine.now t.eng - started)

let service_pending t =
  if not t.draining then begin
    t.draining <- true;
    (* The deferred queue is only materialized when something is actually
       masked: the overwhelmingly common drain delivers everything. An
       unmaskable IRQ is always deliverable, so deferral never has to put
       the counter back. *)
    let deferred = ref None in
    (try
       while not (Queue.is_empty t.pending) do
         let irq = Queue.pop t.pending in
         if not irq.maskable then t.pending_unmaskable <- t.pending_unmaskable - 1;
         if deliverable t irq then run_irq t irq
         else begin
           let q =
             match !deferred with
             | Some q -> q
             | None ->
                 let q = Queue.create () in
                 deferred := Some q;
                 q
           in
           Queue.push irq q
         end
       done;
       match !deferred with Some q -> Queue.transfer q t.pending | None -> ()
     with e ->
       t.draining <- false;
       raise e);
    t.draining <- false
  end

let in_service_window t f =
  t.service_depth <- t.service_depth + 1;
  match f () with
  | v ->
      t.service_depth <- t.service_depth - 1;
      v
  | exception e ->
      t.service_depth <- t.service_depth - 1;
      raise e

(* Detached dispatch: legal only when no service point will drain soon AND
   the CPU is not executing user code (handlers exclude user-mode
   execution; kernel code — running or blocked — may be interleaved). *)
let maybe_dispatch t =
  if
    t.service_depth = 0
    && (t.occupancy = 0 || not t.user)
    && (not t.draining)
    && has_deliverable t
  then Process.spawn t.eng ~name:t.dispatch_name (fun () -> service_pending t)

let post_irq t irq =
  Queue.push irq t.pending;
  if not irq.maskable then t.pending_unmaskable <- t.pending_unmaskable + 1;
  Waitq.signal_all t.wake;
  maybe_dispatch t

let set_in_user t b =
  t.user <- b;
  (* Entering the kernel unblocks detached dispatch of anything pending. *)
  if not b then maybe_dispatch t

let occupy t = t.occupancy <- t.occupancy + 1

let vacate t =
  t.occupancy <- t.occupancy - 1;
  if t.occupancy < 0 then invalid_arg "Cpu.vacate: not occupied";
  maybe_dispatch t

let irq_disable t = t.masked <- true

let quiesce_and_mask t =
  t.masked <- true;
  while t.draining do
    Process.delay t.eng t.cost.spin_poll
  done

let irq_enable t =
  t.masked <- false;
  if has_deliverable t then service_pending t

let compute t ?(quantum = 200) cycles =
  if cycles < 0 then invalid_arg "Cpu.compute: negative cycles";
  in_service_window t (fun () ->
      let remaining = ref cycles in
      while !remaining > 0 do
        if has_deliverable t then service_pending t;
        let chunk = Stdlib.min quantum !remaining in
        Process.delay t.eng chunk;
        t.t_compute <- t.t_compute + chunk;
        remaining := !remaining - chunk
      done;
      if has_deliverable t then service_pending t)

let spin_until t cond =
  in_service_window t (fun () ->
      let rec loop () =
        if not (cond ()) then begin
          if has_deliverable t then service_pending t;
          if not (cond ()) then begin
            Process.delay t.eng t.cost.spin_poll;
            loop ()
          end
        end
      in
      loop ())

(* Spin-wait loops call this once per [spin_poll] window, which makes it
   the single hottest function in the shootdown benches — hence the inlined
   service window (no closure, no Fun.protect). *)
let poll t =
  t.service_depth <- t.service_depth + 1;
  (try
     if has_deliverable t then service_pending t;
     Process.delay t.eng t.cost.spin_poll
   with e ->
     t.service_depth <- t.service_depth - 1;
     raise e);
  t.service_depth <- t.service_depth - 1

let idle_wait t =
  in_service_window t (fun () ->
      if not (has_deliverable t) then Waitq.wait t.wake;
      service_pending t)
