type t = {
  cpu_id : Topology.cpu_id;
  eng : Engine.t;
  topo : Topology.t;
  cost : Costs.t;
  safe : bool;
  cpu_tlb : Tlb.t;
  mutable masked : bool;
  pending : irq Queue.t;
  mutable pending_unmaskable : int;
      (* unmaskable entries in [pending]: lets [has_deliverable] answer in
         O(1) — an unmaskable IRQ is deliverable regardless of [masked],
         and with IRQs unmasked any pending IRQ is. *)
  dispatch_name : string; (* precomputed: spawned per detached dispatch *)
  deferred : irq Queue.t;
      (* scratch for [service_pending]: masked IRQs awaiting re-queue.
         Empty outside a drain; preallocated so drains allocate nothing. *)
  wake : Waitq.t;
  mutable user : bool;
  mutable draining : bool;
  mutable t_interrupted : int;
  mutable t_handled : int;
  mutable t_compute : int;
  mutable from_user_irq : bool;
  mutable service_depth : int;
      (* > 0 while some process is at a service point (compute / spin /
         idle) and will drain the queue itself. *)
  mutable occupancy : int;
      (* processes bound to this CPU. IRQ handlers must never interleave
         with user-mode execution of an occupant, so detached dispatch is
         only legal in kernel context or on an empty CPU. *)
}

and irq = { vector : int; maskable : bool; handler : t -> unit }

(* Dispatch-process names for the common CPU-id range, interned once at
   module init: every Machine.create names every CPU's dispatcher, and the
   string is immutable, so machines (and domains) share one table. *)
let dispatch_names =
  Array.init 64 (fun id -> Printf.sprintf "irq-dispatch-cpu%d" id)

let dispatch_name_of id =
  if id < Array.length dispatch_names then dispatch_names.(id)
  else Printf.sprintf "irq-dispatch-cpu%d" id

let create eng topo cost ~id ~safe ?tlb_capacity () =
  if id < 0 || id >= Topology.n_cpus topo then
    invalid_arg (Printf.sprintf "Cpu.create: id %d out of range" id);
  {
    cpu_id = id;
    eng;
    topo;
    cost;
    safe;
    cpu_tlb = Tlb.create ?capacity:tlb_capacity ();
    masked = false;
    pending = Queue.create ();
    pending_unmaskable = 0;
    dispatch_name = dispatch_name_of id;
    deferred = Queue.create ();
    wake = Waitq.create eng;
    user = true;
    draining = false;
    t_interrupted = 0;
    t_handled = 0;
    t_compute = 0;
    from_user_irq = false;
    service_depth = 0;
    occupancy = 0;
  }

let id t = t.cpu_id
let irq_from_user t = t.from_user_irq
let tlb t = t.cpu_tlb
let engine t = t.eng
let costs t = t.cost
let in_user t = t.user
let irqs_masked t = t.masked
let pending_irqs t = Queue.length t.pending
let interrupted_cycles t = t.t_interrupted
let irqs_handled t = t.t_handled
let compute_cycles t = t.t_compute

let reset_accounting t =
  t.t_interrupted <- 0;
  t.t_handled <- 0;
  t.t_compute <- 0

let deliverable t irq = (not irq.maskable) || not t.masked

let has_deliverable t =
  t.pending_unmaskable > 0 || ((not t.masked) && Queue.length t.pending > 0)

(* Would a [service_pending] call right now actually run handlers? While a
   drain is in progress (e.g. a detached irq-dispatch interleaved on this
   CPU is mid-handler), it would be a guarded no-op — so a poll boundary
   with deliverable IRQs but [draining] set has nothing to do, exactly as
   the pre-fused loops found when they woke, no-opped and re-slept. Resume
   conditions for fused ticks use this so such boundaries stay inside the
   engine handler. *)
let serviceable t = has_deliverable t && not t.draining

(* Run one IRQ: entry cost depends on mitigation mode and on the privilege
   we are interrupting; handler time is charged to interrupted_cycles. *)
let run_irq t irq =
  let started = Engine.now t.eng in
  let was_user = t.user in
  let outer_from_user = t.from_user_irq in
  t.user <- false;
  t.from_user_irq <- was_user;
  Process.delay t.eng (Costs.irq_entry t.cost ~safe:t.safe ~from_user:was_user);
  irq.handler t;
  Process.delay t.eng t.cost.irq_exit;
  t.user <- was_user;
  t.from_user_irq <- outer_from_user;
  t.t_handled <- t.t_handled + 1;
  t.t_interrupted <- t.t_interrupted + (Engine.now t.eng - started)

let service_pending t =
  if not t.draining then begin
    t.draining <- true;
    (* Deferral parks masked IRQs on the preallocated per-CPU [deferred]
       queue (empty outside this drain), so the overwhelmingly common
       deliver-everything drain allocates nothing. An unmaskable IRQ is
       always deliverable, so deferral never has to put the counter back. *)
    (try
       while not (Queue.is_empty t.pending) do
         let irq = Queue.pop t.pending in
         if not irq.maskable then t.pending_unmaskable <- t.pending_unmaskable - 1;
         if deliverable t irq then run_irq t irq else Queue.push irq t.deferred
       done;
       Queue.transfer t.deferred t.pending
     with e ->
       (* Deferred IRQs (all maskable, so no counter adjustment) go back on
          [pending] so the field is empty again for the next drain. *)
       Queue.transfer t.deferred t.pending;
       t.draining <- false;
       raise e);
    t.draining <- false
  end

let in_service_window t f =
  t.service_depth <- t.service_depth + 1;
  match f () with
  | v ->
      t.service_depth <- t.service_depth - 1;
      v
  | exception e ->
      t.service_depth <- t.service_depth - 1;
      raise e

(* Detached dispatch: legal only when no service point will drain soon AND
   the CPU is not executing user code (handlers exclude user-mode
   execution; kernel code — running or blocked — may be interleaved). *)
let maybe_dispatch t =
  if
    t.service_depth = 0
    && (t.occupancy = 0 || not t.user)
    && (not t.draining)
    && has_deliverable t
  then Process.spawn t.eng ~name:t.dispatch_name (fun () -> service_pending t)

let post_irq t irq =
  Queue.push irq t.pending;
  if not irq.maskable then t.pending_unmaskable <- t.pending_unmaskable + 1;
  Waitq.signal_all t.wake;
  maybe_dispatch t

let set_in_user t b =
  t.user <- b;
  (* Entering the kernel unblocks detached dispatch of anything pending. *)
  if not b then maybe_dispatch t

let occupy t = t.occupancy <- t.occupancy + 1

let vacate t =
  t.occupancy <- t.occupancy - 1;
  if t.occupancy < 0 then invalid_arg "Cpu.vacate: not occupied";
  maybe_dispatch t

let irq_disable t = t.masked <- true

let quiesce_and_mask t =
  t.masked <- true;
  while t.draining do
    Process.delay t.eng t.cost.spin_poll
  done

let irq_enable t =
  t.masked <- false;
  if has_deliverable t then service_pending t

let compute t ?(quantum = 200) cycles =
  if cycles < 0 then invalid_arg "Cpu.compute: negative cycles";
  in_service_window t (fun () ->
      let remaining = ref cycles in
      while !remaining > 0 do
        if has_deliverable t then service_pending t;
        (* One suspension spans every consecutive idle quantum: each
           boundary is still its own engine event at the old time, but only
           a boundary with a deliverable IRQ — or the end of the span —
           resumes the process. Accounting accrues at resume, which is
           equivalent: the only mid-span observers are IRQ handlers, and
           those run after resume (at the loop head) here as before. *)
        let chunk0 = Stdlib.min quantum !remaining in
        let left = ref (!remaining - chunk0) in
        Process.tick_sleep t.eng ~first:chunk0 (fun () ->
            if !left = 0 || serviceable t then 0
            else begin
              let c = Stdlib.min quantum !left in
              left := !left - c;
              c
            end);
        let slept = !remaining - !left in
        t.t_compute <- t.t_compute + slept;
        remaining := !left
      done;
      if has_deliverable t then service_pending t)

let spin_until t cond =
  in_service_window t (fun () ->
      let rec loop () =
        if not (cond ()) then begin
          if has_deliverable t then service_pending t;
          if not (cond ()) then begin
            Process.tick_sleep t.eng ~first:t.cost.spin_poll (fun () ->
                if cond () || serviceable t then 0 else t.cost.spin_poll);
            loop ()
          end
        end
      in
      loop ())

(* Spin-wait loops call this once per [spin_poll] window, which makes it
   the single hottest function in the shootdown benches — hence the inlined
   service window (no closure, no Fun.protect). *)
let poll t =
  t.service_depth <- t.service_depth + 1;
  (try
     if has_deliverable t then service_pending t;
     Process.delay t.eng t.cost.spin_poll
   with e ->
     t.service_depth <- t.service_depth - 1;
     raise e);
  t.service_depth <- t.service_depth - 1

(* [poll] fused across idle windows: one service check, then poll-boundary
   ticks until [ready ()] holds or an IRQ becomes deliverable at a
   boundary. Timing-identical to calling [poll] in a loop with the same
   exit condition between calls, but the idle boundaries never resume the
   process. The service window stays open for the whole span, as it is
   across [poll]'s sleep, so IRQs posted mid-span wait for a boundary
   rather than spawning a detached dispatch. *)
let poll_wait t ready =
  t.service_depth <- t.service_depth + 1;
  (try
     if has_deliverable t then service_pending t;
     Process.tick_sleep t.eng ~first:t.cost.spin_poll (fun () ->
         if ready () || serviceable t then 0 else t.cost.spin_poll)
   with e ->
     t.service_depth <- t.service_depth - 1;
     raise e);
  t.service_depth <- t.service_depth - 1

let idle_wait t =
  in_service_window t (fun () ->
      if not (has_deliverable t) then Waitq.wait t.wake;
      service_pending t)
