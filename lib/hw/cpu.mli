(** A logical CPU: executes simulated work, takes interrupts, owns a TLB.

    Interrupts are serviced at explicit points — between compute chunks,
    inside spin-wait polls, and in idle waits — which models real interrupt
    delivery at instruction boundaries plus dispatch latency. Handler
    execution time is attributed to the CPU's [interrupted_cycles], which is
    exactly what the paper's microbenchmark reports for responder cores. *)

type t

(** An interrupt: the [handler] runs in the context of whichever process
    services it and may delay, touch cachelines, flush the TLB, etc.
    Non-[maskable] IRQs (NMIs) are serviced even while interrupts are
    disabled. *)
type irq = { vector : int; maskable : bool; handler : t -> unit }

(** [create engine topo costs ~id ~safe] makes CPU [id]. [safe] selects
    mitigation-mode entry costs. *)
val create :
  Engine.t -> Topology.t -> Costs.t -> id:Topology.cpu_id -> safe:bool ->
  ?tlb_capacity:int -> unit -> t

val id : t -> Topology.cpu_id
val tlb : t -> Tlb.t
val engine : t -> Engine.t
val costs : t -> Costs.t

(** Privilege the CPU would be interrupted from; syscall/fault layers flip
    this. Affects IRQ entry cost in safe mode (paper §5.2). *)
val in_user : t -> bool

val set_in_user : t -> bool -> unit

val irqs_masked : t -> bool
val irq_disable : t -> unit

(** Disable interrupts {e and} wait for any in-flight detached handler to
    finish. After return no handler is running and none can start until
    {!irq_enable} — the state a real CPU is trivially in after CLI, which
    the model must establish explicitly because detached handlers simulate
    asynchronous dispatch. Must run from process context. *)
val quiesce_and_mask : t -> unit

(** Re-enable interrupts; pending maskable IRQs are serviced immediately in
    the calling process's context. *)
val irq_enable : t -> unit

(** Inside an IRQ handler: was the interrupted context user mode? Handlers
    use this to decide whether return-to-user work (e.g. deferred user-PCID
    flushes) must run before the handler completes. Meaningless outside a
    handler. *)
val irq_from_user : t -> bool

(** Mark the CPU as occupied by a (thread) process / released again. While
    an occupying process runs {e user} code, interrupts are only serviced
    at its service points (compute, spin, {!service_pending} calls) —
    handler execution must exclude user-mode execution. In kernel context,
    or with no occupant, delivered IRQs dispatch immediately in a detached
    handler, as hardware would. *)
val occupy : t -> unit

val vacate : t -> unit

(** Deliver an interrupt to this CPU (called by the APIC at arrival time).
    Wakes idle/spinning processes. *)
val post_irq : t -> irq -> unit

(** Service all pending deliverable IRQs now, paying entry/exit costs.
    No-op if masked (except for NMIs) or if a drain is already running. *)
val service_pending : t -> unit

(** Execute [cycles] of work on this CPU, servicing IRQs between chunks of
    [quantum] (default 200) cycles. *)
val compute : t -> ?quantum:int -> int -> unit

(** Spin until [cond ()] holds, servicing IRQs each poll. The condition is
    re-checked every [Costs.spin_poll] cycles. *)
val spin_until : t -> (unit -> bool) -> unit

(** One spin-wait step: service deliverable IRQs, then burn one
    [Costs.spin_poll] interval. Building block for wait loops that
    interleave other work between polls. *)
val poll : t -> unit

(** [poll] fused across idle windows: service deliverable IRQs, then sleep
    in [Costs.spin_poll] ticks until [ready ()] holds — or an IRQ becomes
    deliverable — at a tick boundary. Timing-identical to looping over
    {!poll} with the same exit check between calls, but idle boundaries do
    not resume the process (see {!Process.tick_sleep}); [ready] must be
    observably side-effect-free. *)
val poll_wait : t -> (unit -> bool) -> unit

(** Block until an IRQ is posted (or return immediately if one is pending),
    then service. The idle loop of a core. *)
val idle_wait : t -> unit

(** Pending IRQ count (for tests). *)
val pending_irqs : t -> int

(** Cycles spent in IRQ handlers (entry + handler + exit). *)
val interrupted_cycles : t -> int

(** Number of IRQs fully serviced. *)
val irqs_handled : t -> int

(** Cycles of useful work executed via {!compute}. *)
val compute_cycles : t -> int

val reset_accounting : t -> unit
