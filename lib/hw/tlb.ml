type page_size = Four_k | Two_m

let bytes_of_page_size = function Four_k -> 4096 | Two_m -> 2 * 1024 * 1024

type entry = {
  vpn : int;
  pfn : int;
  pcid : int;
  size : page_size;
  global : bool;
  writable : bool;
  fractured : bool;
  mutable ck_ver : int;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invlpg_ops : int;
  invpcid_ops : int;
  full_flushes : int;
  fracture_full_flushes : int;
}

(* Keys are packed ints: [tag lsl 13 | pcid lsl 1 | size_bit]. PCIDs fit 12
   bits (kernel PCIDs are small slot numbers, user PCIDs are slot + 2048 <
   4096); 2 MiB entries are tagged by [vpn lsr 9] so a 4 KiB lookup can find
   its covering hugepage. Global entries match regardless of PCID, so they
   live in a separate table keyed [tag lsl 1 | size_bit]. Packed keys give
   one-word hashing and comparison where the old (pcid, tag, size) tuples
   paid polymorphic-hash tuple traversal per probe. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  (* Multiplicative (Fibonacci) hash: adjacent tags — the common access
     pattern — spread across buckets. *)
  let hash k = (k * 0x2545f4914f6cdd1d) lsr 17 land max_int
end)

let pcid_bits = 12
let pcid_mask = (1 lsl pcid_bits) - 1
let size_bit = function Four_k -> 0 | Two_m -> 1
let tag_of vpn = function Four_k -> vpn | Two_m -> vpn lsr 9

let key ~pcid ~tag size =
  (tag lsl (pcid_bits + 1)) lor (pcid lsl 1) lor size_bit size

let gkey ~tag size = (tag lsl 1) lor size_bit size
let key_pcid k = (k lsr 1) land pcid_mask

type t = {
  cap : int;
  table : entry Itbl.t;
  globals : entry Itbl.t;
  order : (int * int) Queue.t;
      (* FIFO eviction order for the non-global table: (key, stamp) pairs.
         A key's queue slot is live only while [stamps] still maps it to
         that stamp; invalidation drops the stamp, so a later re-insert of
         the same key gets a fresh stamp and a fresh tail position instead
         of inheriting the dead slot near the head. *)
  stamps : int Itbl.t; (* key -> stamp of its live queue slot *)
  mutable next_stamp : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_insertions : int;
  mutable s_evictions : int;
  mutable s_invlpg : int;
  mutable s_invpcid : int;
  mutable s_full : int;
  mutable s_fracture_full : int;
  mutable pwc : bool;
  mutable fracture : bool;
  mutable flush_meter : (bool -> int -> unit) option;
      (* (is_full_flush, entries dropped) per whole-TLB or whole-PCID
         flush; installed by the metrics layer. *)
}

let create ?(capacity = 1536) () =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  {
    cap = capacity;
    table = Itbl.create 1024;
    globals = Itbl.create 64;
    order = Queue.create ();
    stamps = Itbl.create 1024;
    next_stamp = 0;
    s_hits = 0;
    s_misses = 0;
    s_insertions = 0;
    s_evictions = 0;
    s_invlpg = 0;
    s_invpcid = 0;
    s_full = 0;
    s_fracture_full = 0;
    pwc = false;
    fracture = false;
    flush_meter = None;
  }

let set_flush_meter t f = t.flush_meter <- Some f

let capacity t = t.cap
let occupancy t = Itbl.length t.table + Itbl.length t.globals

let find t ~pcid ~vpn =
  match Itbl.find_opt t.table (key ~pcid ~tag:vpn Four_k) with
  | Some _ as r -> r
  | None -> (
      match Itbl.find_opt t.globals (gkey ~tag:vpn Four_k) with
      | Some _ as r -> r
      | None -> (
          let tag = vpn lsr 9 in
          match Itbl.find_opt t.table (key ~pcid ~tag Two_m) with
          | Some _ as r -> r
          | None -> Itbl.find_opt t.globals (gkey ~tag Two_m)))

let lookup t ~pcid ~vpn =
  match find t ~pcid ~vpn with
  | Some e ->
      t.s_hits <- t.s_hits + 1;
      Some e
  | None ->
      t.s_misses <- t.s_misses + 1;
      None

let mem t ~pcid ~vpn = Option.is_some (find t ~pcid ~vpn)

(* A queue slot is live iff [stamps] still maps its key to its stamp.
   Invalidation paths remove the stamp, so slots left behind by selective
   flushes — and the older slot of a key that was invalidated and then
   re-inserted — are skipped for free instead of evicting the wrong
   (newer) incarnation of the key. *)
let slot_live t key stamp =
  match Itbl.find_opt t.stamps key with
  | Some s -> s = stamp
  | None -> false

(* Evict FIFO until under capacity, skipping dead queue slots. *)
let rec make_room t =
  if Itbl.length t.table >= t.cap then begin
    match Queue.take_opt t.order with
    | None -> ()
    | Some (key, stamp) ->
        if slot_live t key stamp then begin
          Itbl.remove t.table key;
          Itbl.remove t.stamps key;
          t.s_evictions <- t.s_evictions + 1
        end;
        make_room t
  end

(* Selective flushes leave dead slots behind in [order]; under a
   drop-selective-heavy workload the queue would grow without bound. Once
   dead slots dominate, rebuild it keeping only live slots (each key has at
   most one), preserving their relative order — eviction order is
   unchanged. *)
let compact_order t =
  let fresh = Queue.create () in
  Queue.iter
    (fun (k, s) -> if slot_live t k s then Queue.push (k, s) fresh)
    t.order;
  Queue.clear t.order;
  Queue.transfer fresh t.order

let insert t e =
  if e.pcid < 0 || e.pcid > pcid_mask then invalid_arg "Tlb.insert: pcid out of range";
  t.s_insertions <- t.s_insertions + 1;
  if e.fractured then t.fracture <- true;
  if e.global then Itbl.replace t.globals (gkey ~tag:(tag_of e.vpn e.size) e.size) e
  else begin
    let key = key ~pcid:e.pcid ~tag:(tag_of e.vpn e.size) e.size in
    (* Overwriting a resident key keeps its queue slot (FIFO, not LRU) and
       must not evict anything — only a genuinely new key needs room. *)
    if not (Itbl.mem t.table key) then begin
      if Queue.length t.order > (2 * Itbl.length t.table) + 64 then compact_order t;
      make_room t;
      let stamp = t.next_stamp in
      t.next_stamp <- stamp + 1;
      Itbl.replace t.stamps key stamp;
      Queue.push (key, stamp) t.order
    end;
    Itbl.replace t.table key e
  end

let full_flush_internal t =
  (match t.flush_meter with
  | Some f -> f true (Itbl.length t.table + Itbl.length t.globals)
  | None -> ());
  Itbl.reset t.table;
  Itbl.reset t.globals;
  Itbl.reset t.stamps;
  Queue.clear t.order;
  t.pwc <- false;
  t.fracture <- false

let flush_all t =
  t.s_full <- t.s_full + 1;
  full_flush_internal t

(* A selective flush on a fractured TLB is promoted to a full flush. *)
let fracture_promote t =
  t.s_fracture_full <- t.s_fracture_full + 1;
  full_flush_internal t

let remove_key t key =
  Itbl.remove t.table key;
  Itbl.remove t.stamps key

let drop_selective t ~pcid ~vpn ~drop_globals =
  remove_key t (key ~pcid ~tag:vpn Four_k);
  remove_key t (key ~pcid ~tag:(vpn lsr 9) Two_m);
  if drop_globals then begin
    Itbl.remove t.globals (gkey ~tag:vpn Four_k);
    Itbl.remove t.globals (gkey ~tag:(vpn lsr 9) Two_m)
  end

let invlpg t ~current_pcid ~vpn =
  t.s_invlpg <- t.s_invlpg + 1;
  if t.fracture then fracture_promote t
  else begin
    drop_selective t ~pcid:current_pcid ~vpn ~drop_globals:true;
    t.pwc <- false
  end

let drop t ~pcid ~vpn = drop_selective t ~pcid ~vpn ~drop_globals:false

let invpcid_addr t ~pcid ~vpn =
  t.s_invpcid <- t.s_invpcid + 1;
  if t.fracture then fracture_promote t
  else drop_selective t ~pcid ~vpn ~drop_globals:false

let drop_pcid t ~pcid =
  let doomed =
    Itbl.fold (fun key _ acc -> if key_pcid key = pcid then key :: acc else acc) t.table []
  in
  (match t.flush_meter with
  | Some f -> f false (List.length doomed)
  | None -> ());
  List.iter (remove_key t) doomed

let flush_pcid t ~pcid =
  t.s_invpcid <- t.s_invpcid + 1;
  drop_pcid t ~pcid

let cr3_flush t ~pcid = drop_pcid t ~pcid

let pwc_warm t = t.pwc
let warm_pwc t = t.pwc <- true
let fracture_flag t = t.fracture

let stats t =
  {
    hits = t.s_hits;
    misses = t.s_misses;
    insertions = t.s_insertions;
    evictions = t.s_evictions;
    invlpg_ops = t.s_invlpg;
    invpcid_ops = t.s_invpcid;
    full_flushes = t.s_full;
    fracture_full_flushes = t.s_fracture_full;
  }

let reset_stats t =
  t.s_hits <- 0;
  t.s_misses <- 0;
  t.s_insertions <- 0;
  t.s_evictions <- 0;
  t.s_invlpg <- 0;
  t.s_invpcid <- 0;
  t.s_full <- 0;
  t.s_fracture_full <- 0

let entries t =
  let non_global = Itbl.fold (fun _ e acc -> e :: acc) t.table [] in
  Itbl.fold (fun _ e acc -> e :: acc) t.globals non_global

let pp_stats fmt s =
  Format.fprintf fmt
    "hits=%d misses=%d ins=%d evict=%d invlpg=%d invpcid=%d full=%d fracture-full=%d"
    s.hits s.misses s.insertions s.evictions s.invlpg_ops s.invpcid_ops
    s.full_flushes s.fracture_full_flushes
