(** Per-core TLB model: PCID-tagged, capacity-bounded, with a page-walk
    (paging-structure) cache and Intel's page-fracturing full-flush quirk.

    Semantics follow the Intel SDM as described in the paper:
    - INVLPG invalidates one virtual address in the {e current} PCID,
      including global entries, and flushes the entire paging-structure
      cache (§3.4).
    - INVPCID in individual-address mode invalidates one address in {e any}
      PCID and leaves unrelated paging-structure-cache entries alone.
    - A CR3 write flushes the non-global entries of the loaded PCID.
    - Under virtualization, if any cached translation came from a fractured
      guest hugepage (guest 2 MiB backed by host 4 KiB), {e any} selective
      flush degenerates to a full TLB flush (paper §7, Table 4). *)

type page_size = Four_k | Two_m

(** Bytes per page. *)
val bytes_of_page_size : page_size -> int

type entry = {
  vpn : int;  (** virtual page number in 4 KiB units (base of the page) *)
  pfn : int;  (** physical frame number backing [vpn] *)
  pcid : int;  (** must fit 12 bits (0..4095) *)
  size : page_size;
  global : bool;  (** G-bit entries survive CR3 writes *)
  writable : bool;
  fractured : bool;  (** produced by a guest-2M x host-4K nested walk *)
  mutable ck_ver : int;
      (** scratch for {!Core.Checker}: the packed page-table version this
          entry was last validated against, [-1] when never validated. Not
          part of the hardware model. *)
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invlpg_ops : int;
  invpcid_ops : int;
  full_flushes : int;
  fracture_full_flushes : int;  (** selective flushes promoted to full *)
}

type t

(** [create ~capacity ()] with FIFO eviction. Default capacity 1536 (Skylake
    STLB-sized). *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int
val occupancy : t -> int

(** [set_flush_meter t f] installs a flush observer: [f full dropped] is
    called with the number of entries dropped by each whole-TLB flush
    ([full = true]: flush_all and fracture promotions) or whole-PCID drop
    ([full = false]: flush_pcid / cr3_flush). Used by the metrics layer. *)
val set_flush_meter : t -> (bool -> int -> unit) -> unit

(** [lookup t ~pcid ~vpn] checks the 4 KiB mapping, a covering 2 MiB
    mapping, and global entries. Counts a hit or miss. *)
val lookup : t -> pcid:int -> vpn:int -> entry option

(** Is the translation present (no stats recorded)? *)
val mem : t -> pcid:int -> vpn:int -> bool

val insert : t -> entry -> unit

(** INVLPG: selective flush of [vpn] in the current PCID [current_pcid];
    also drops global entries for that address and cools the
    paging-structure cache. Promoted to a full flush when the fracture flag
    is set. *)
val invlpg : t -> current_pcid:int -> vpn:int -> unit

(** INVPCID individual-address mode: selective flush of [vpn] under [pcid];
    paging-structure cache survives. Promoted to a full flush when the
    fracture flag is set. *)
val invpcid_addr : t -> pcid:int -> vpn:int -> unit

(** Drop the translation for [vpn] under [pcid] with no instruction
    side-effects: models the hardware's invalidation of a faulting PTE and
    the invalidation a memory access performs after a PTE change (the CoW
    trick of paper §4.1). Leaves the paging-structure cache warm and never
    promotes to a full flush. *)
val drop : t -> pcid:int -> vpn:int -> unit

(** INVPCID single-context mode: drop every entry of [pcid]. *)
val flush_pcid : t -> pcid:int -> unit

(** CR3 write: drop non-global entries of [pcid]. *)
val cr3_flush : t -> pcid:int -> unit

(** Drop everything, globals included (INVPCID all-contexts). *)
val flush_all : t -> unit

(** Paging-structure cache temperature; cold walks cost more. Walks warm it,
    INVLPG and full flushes cool it. *)
val pwc_warm : t -> bool

val warm_pwc : t -> unit

(** True once a fractured entry was inserted; cleared by full flushes. *)
val fracture_flag : t -> bool

val stats : t -> stats
val reset_stats : t -> unit

(** All current entries (testing/inspection). *)
val entries : t -> entry list

val pp_stats : Format.formatter -> stats -> unit
