type t = { sockets : int; cores_per_socket : int; smt : int }

type cpu_id = int

type distance = Self | Smt_sibling | Same_socket | Cross_socket

let create ~sockets ~cores_per_socket ~smt =
  if sockets <= 0 || cores_per_socket <= 0 || smt <= 0 then
    invalid_arg "Topology.create: all dimensions must be positive";
  { sockets; cores_per_socket; smt }

let paper_machine = create ~sockets:2 ~cores_per_socket:14 ~smt:2
let flat n = create ~sockets:1 ~cores_per_socket:n ~smt:1

let sockets t = t.sockets
let cores_per_socket t = t.cores_per_socket
let smt t = t.smt

let physical_cores t = t.sockets * t.cores_per_socket
let n_cpus t = physical_cores t * t.smt

let check t cpu =
  if cpu < 0 || cpu >= n_cpus t then
    invalid_arg (Printf.sprintf "Topology: cpu %d out of range [0,%d)" cpu (n_cpus t))

let smt_thread_of t cpu =
  check t cpu;
  cpu / physical_cores t

let physical_core_of t cpu =
  check t cpu;
  cpu mod physical_cores t

let socket_of t cpu = physical_core_of t cpu / t.cores_per_socket

let distance t a b =
  check t a;
  check t b;
  if a = b then Self
  else if physical_core_of t a = physical_core_of t b then Smt_sibling
  else if socket_of t a = socket_of t b then Same_socket
  else Cross_socket

let cpus_of_socket t socket =
  if socket < 0 || socket >= t.sockets then
    invalid_arg (Printf.sprintf "Topology: socket %d out of range" socket);
  List.init t.cores_per_socket (fun core -> (socket * t.cores_per_socket) + core)

let smt_sibling_of t cpu =
  check t cpu;
  if t.smt < 2 then None
  else begin
    let pc = physical_core_of t cpu in
    let thread = smt_thread_of t cpu in
    let sibling_thread = if thread = 0 then 1 else 0 in
    Some ((sibling_thread * physical_cores t) + pc)
  end

(* x2APIC id: pack SMT thread in bit 0, so siblings share a cluster. *)
let apic_id t cpu = (physical_core_of t cpu * t.smt) + smt_thread_of t cpu

let cluster_of t cpu =
  check t cpu;
  apic_id t cpu / 16

let clusters_of_targets t cpus =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun cpu ->
      let c = cluster_of t cpu in
      let existing = Option.value (Hashtbl.find_opt tbl c) ~default:[] in
      Hashtbl.replace tbl c (cpu :: existing))
    cpus;
  Hashtbl.fold (fun c members acc -> (c, List.rev members) :: acc) tbl []
  (* Int.compare: cluster ids are ints, and the monomorphic compare skips
     the polymorphic-compare tag dispatch on this per-IPI path. *)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let distance_rank = function
  | Self -> 0
  | Smt_sibling -> 1
  | Same_socket -> 2
  | Cross_socket -> 3

let n_distance_ranks = 4

let distance_of_rank = function
  | 0 -> Self
  | 1 -> Smt_sibling
  | 2 -> Same_socket
  | 3 -> Cross_socket
  | r -> invalid_arg (Printf.sprintf "Topology.distance_of_rank: %d" r)

let distance_label = function
  | Self -> "self"
  | Smt_sibling -> "smt-sibling"
  | Same_socket -> "same-socket"
  | Cross_socket -> "cross-socket"

let pp_distance fmt d = Format.pp_print_string fmt (distance_label d)

let pp fmt t =
  Format.fprintf fmt "%d socket(s) x %d cores x %d SMT = %d logical CPUs"
    t.sockets t.cores_per_socket t.smt (n_cpus t)
