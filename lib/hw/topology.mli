(** Machine topology: sockets, physical cores, SMT threads, x2APIC clusters.

    Logical CPUs are numbered Linux-style: first one thread of every physical
    core across all sockets, then the SMT siblings. The evaluation machine of
    the paper (Dell R630, 2x Xeon E5-2660v4: 2 sockets x 14 cores x 2 SMT)
    is {!paper_machine}. *)

type t

type cpu_id = int

(** Relative placement of two logical CPUs; what prices IPI delivery and
    cacheline transfers. *)
type distance =
  | Self  (** the same logical CPU *)
  | Smt_sibling  (** same physical core, other hyperthread *)
  | Same_socket
  | Cross_socket

val create : sockets:int -> cores_per_socket:int -> smt:int -> t

(** 2 sockets x 14 cores x 2 SMT = 56 logical CPUs. *)
val paper_machine : t

(** Single socket, [n] cores, no SMT: the smallest useful machine. *)
val flat : int -> t

val sockets : t -> int
val cores_per_socket : t -> int
val smt : t -> int

(** Total logical CPUs. *)
val n_cpus : t -> int

val socket_of : t -> cpu_id -> int
val physical_core_of : t -> cpu_id -> int
val smt_thread_of : t -> cpu_id -> int
val distance : t -> cpu_id -> cpu_id -> distance

(** First logical CPU of each physical core on [socket]. *)
val cpus_of_socket : t -> int -> cpu_id list

(** The other hyperthread of [cpu]'s physical core, if SMT > 1. *)
val smt_sibling_of : t -> cpu_id -> cpu_id option

(** x2APIC cluster-mode cluster index (clusters of up to 16 APIC ids). A
    multicast IPI reaches a subset of one cluster per ICR write. *)
val cluster_of : t -> cpu_id -> int

(** Partition [cpus] by cluster: the number of ICR writes a multicast needs. *)
val clusters_of_targets : t -> cpu_id list -> (int * cpu_id list) list

(** Dense rank of a distance: Self 0, Smt_sibling 1, Same_socket 2,
    Cross_socket 3. The metrics layer indexes per-distance series by rank. *)
val distance_rank : distance -> int

(** Number of distance ranks (4). *)
val n_distance_ranks : int

(** Inverse of {!distance_rank}; raises [Invalid_argument] outside 0..3. *)
val distance_of_rank : int -> distance

(** Stable short label ("self" / "smt-sibling" / "same-socket" /
    "cross-socket") used as a metric label value. *)
val distance_label : distance -> string

val pp_distance : Format.formatter -> distance -> unit
val pp : Format.formatter -> t -> unit
