type t = {
  mmu_tlb : Tlb.t;
  guest : Page_table.t;
  ept : Ept.t option;
  pcid : int;
  mutable pv_hint : bool;
}

exception Guest_fault of int

let create ?tlb_capacity ~guest ?ept ~pcid () =
  { mmu_tlb = Tlb.create ?capacity:tlb_capacity (); guest; ept; pcid; pv_hint = false }

let tlb t = t.mmu_tlb

let fill t ~vpn =
  match t.ept with
  | Some ept -> begin
      match Ept.Nested.translate ~guest:t.guest ~ept ~vpn with
      | None -> raise (Guest_fault vpn)
      | Some r ->
          (* The TLB caches the combined GVA->HPA mapping at the effective
             (smaller) page size; align the tag accordingly. *)
          let base =
            match r.Ept.Nested.effective_size with
            | Tlb.Four_k -> vpn
            | Tlb.Two_m -> vpn land lnot 511
          in
          let hfn_base = r.Ept.Nested.hfn - (vpn - base) in
          Tlb.insert t.mmu_tlb
            {
              Tlb.vpn = base;
              pfn = hfn_base;
              pcid = t.pcid;
              size = r.Ept.Nested.effective_size;
              global = false;
              writable = r.Ept.Nested.pte.Pte.writable;
              fractured = r.Ept.Nested.fractured;
              ck_ver = -1;
            }
    end
  | None -> begin
      match Page_table.walk t.guest ~vpn with
      | None -> raise (Guest_fault vpn)
      | Some w ->
          let base =
            match w.Page_table.size with
            | Tlb.Four_k -> vpn
            | Tlb.Two_m -> vpn land lnot 511
          in
          Tlb.insert t.mmu_tlb
            {
              Tlb.vpn = base;
              pfn = w.Page_table.pte.Pte.pfn;
              pcid = t.pcid;
              size = w.Page_table.size;
              global = w.Page_table.pte.Pte.global;
              writable = w.Page_table.pte.Pte.writable;
              fractured = false;
              ck_ver = -1;
            }
    end

let access t ~vpn =
  match Tlb.lookup t.mmu_tlb ~pcid:t.pcid ~vpn with
  | Some _ -> `Hit
  | None ->
      fill t ~vpn;
      `Miss_filled

let touch_range t ~start_vpn ~pages =
  let hits = ref 0 and misses = ref 0 in
  for i = 0 to pages - 1 do
    match access t ~vpn:(start_vpn + i) with
    | `Hit -> incr hits
    | `Miss_filled -> incr misses
  done;
  (!hits, !misses)

let invlpg t ~vpn = Tlb.invlpg t.mmu_tlb ~current_pcid:t.pcid ~vpn

let full_flush t = Tlb.flush_all t.mmu_tlb

let set_paravirt_fracture_hint t b = t.pv_hint <- b
let paravirt_fracture_hint t = t.pv_hint

let flush_pages t ~vpns =
  if t.pv_hint then begin
    (* Fracturing may promote any selective flush to a full flush: issuing
       several INVLPGs would pay their cost for no retained entries. One
       full flush gets the same TLB state at 1/n of the instructions. *)
    full_flush t;
    1
  end
  else begin
    List.iter (fun vpn -> invlpg t ~vpn) vpns;
    List.length vpns
  end
