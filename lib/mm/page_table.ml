(* tlblint: proven-bounds — [index_at] masks to 9 bits (land 511), the only
   index ever fed to Array.unsafe_get on the 512-slot node arrays. *)
(* A node is a real 512-slot table, exactly like the x86-64 structure it
   models: [index_at] produces 9-bit indices, so a flat array replaces the
   hashtable this used — [walk] is the hottest lookup in page-fault-heavy
   workloads and generic hashing of the index was a measurable share of it.
   [live] counts occupied slots so emptiness checks stay O(1). *)
type node = { level : int; mutable live : int; slots : slot array }

and slot = Empty | Table of node | Leaf of Pte.t * Tlb.page_size

type t = {
  root : node;  (* level 4 *)
  mutable n_mapped : int;
  mutable n_tables : int;
  mutable n_tables_freed : int;
  mutable ver : int;
}

type walk = { pte : Pte.t; size : Tlb.page_size; levels : int }

type range_unmap = {
  removed : (int * Pte.t * Tlb.page_size) list;
  freed_tables : bool;
}

let index_at ~level vpn = (vpn lsr ((level - 1) * 9)) land 511

let fresh_node level = { level; live = 0; slots = Array.make 512 Empty }

let create () =
  { root = fresh_node 4; n_mapped = 0; n_tables = 0; ver = 0; n_tables_freed = 0 }

let leaf_level = function Tlb.Four_k -> 1 | Tlb.Two_m -> 2

let set node idx slot =
  (match node.slots.(idx) with Empty -> node.live <- node.live + 1 | _ -> ());
  node.slots.(idx) <- slot

let clear node idx =
  match node.slots.(idx) with
  | Empty -> ()
  | _ ->
      node.slots.(idx) <- Empty;
      node.live <- node.live - 1

(* Descend to the node at [target_level], creating intermediate tables. *)
let rec descend t node vpn ~target_level =
  if node.level = target_level then node
  else begin
    let idx = index_at ~level:node.level vpn in
    match node.slots.(idx) with
    | Table child -> descend t child vpn ~target_level
    | Leaf _ ->
        invalid_arg
          (Printf.sprintf "Page_table: vpn %d already covered by a level-%d leaf" vpn node.level)
    | Empty ->
        let child = fresh_node (node.level - 1) in
        set node idx (Table child);
        t.n_tables <- t.n_tables + 1;
        descend t child vpn ~target_level
  end

let map t ~vpn ~size pte =
  if not pte.Pte.present then invalid_arg "Page_table.map: PTE must be present";
  if size = Tlb.Two_m && not (Addr.huge_aligned vpn) then
    invalid_arg "Page_table.map: hugepage VPN must be 2MiB-aligned";
  let level = leaf_level size in
  let node = descend t t.root vpn ~target_level:level in
  let idx = index_at ~level vpn in
  (match node.slots.(idx) with
  | Table _ -> invalid_arg "Page_table.map: slot holds a page table"
  | Leaf _ -> invalid_arg (Printf.sprintf "Page_table.map: vpn %d already mapped" vpn)
  | Empty -> ());
  set node idx (Leaf (pte, size));
  t.n_mapped <- t.n_mapped + 1;
  t.ver <- t.ver + 1

(* Find the leaf covering vpn along with the path of (node, index) taken. *)
let find_leaf t vpn =
  let rec go node path =
    let idx = index_at ~level:node.level vpn in
    match node.slots.(idx) with
    | Empty -> None
    | Leaf (pte, size) -> Some (node, idx, pte, size, path)
    | Table child -> go child ((node, idx) :: path)
  in
  go t.root []

(* The hot path: descend without materializing the (node, index) path that
   [find_leaf] builds for unmap's pruning — the level count alone gives
   [levels] (root is level 4, so a leaf at level L took 5 - L lookups). *)
let walk t ~vpn =
  let rec go node =
    match Array.unsafe_get node.slots (index_at ~level:node.level vpn) with
    | Empty -> None
    | Leaf (pte, size) ->
        if pte.Pte.present then Some { pte; size; levels = 5 - node.level } else None
    | Table child -> go child
  in
  go t.root

(* Base VPN of the page a leaf at (level, idx along path) covers. *)
let leaf_base vpn = function Tlb.Four_k -> vpn | Tlb.Two_m -> vpn land lnot 511

let prune t path =
  (* Remove now-empty tables bottom-up; report whether any were freed. *)
  let freed = ref false in
  List.iter
    (fun (node, idx) ->
      match node.slots.(idx) with
      | Table child when child.live = 0 ->
          clear node idx;
          t.n_tables <- t.n_tables - 1;
          t.n_tables_freed <- t.n_tables_freed + 1;
          freed := true
      | Table _ | Leaf _ | Empty -> ())
    path;
  !freed

let unmap t ~vpn ?(free_tables = false) () =
  match find_leaf t vpn with
  | None -> { removed = []; freed_tables = false }
  | Some (node, idx, pte, size, path) ->
      clear node idx;
      t.n_mapped <- t.n_mapped - 1;
      t.ver <- t.ver + 1;
      let freed = if free_tables then prune t ((node, idx) :: path) else false in
      { removed = [ (leaf_base vpn size, pte, size) ]; freed_tables = freed }

let unmap_range t ~vpn ~pages ?(free_tables = false) () =
  let removed = ref [] in
  let freed = ref false in
  let cursor = ref vpn in
  let stop = vpn + pages in
  while !cursor < stop do
    let r = unmap t ~vpn:!cursor ~free_tables () in
    (match r.removed with
    | [ (base, pte, size) ] ->
        removed := (base, pte, size) :: !removed;
        (* Skip past the removed page (a hugepage may extend beyond). *)
        cursor := Stdlib.max (!cursor + 1) (base + Addr.pages_of_size size)
    | _ -> incr cursor);
    if r.freed_tables then freed := true
  done;
  { removed = List.rev !removed; freed_tables = !freed }

(* Like [walk], descends without materializing [find_leaf]'s path — update
   never prunes, and the path's cons cells were a measurable share of the
   CoW-break allocation profile (fig9). The slot already holds a leaf, so
   assigning in place keeps [live] correct without going through [set]. *)
let update t ~vpn ~f =
  let rec go node =
    let idx = index_at ~level:node.level vpn in
    match Array.unsafe_get node.slots idx with
    | Empty -> None
    | Leaf (pte, size) ->
        let pte' = f pte in
        node.slots.(idx) <- Leaf (pte', size);
        t.ver <- t.ver + 1;
        Some (pte, pte')
    | Table child -> go child
  in
  go t.root

let mapped_count t = t.n_mapped
let table_pages t = t.n_tables
let tables_freed t = t.n_tables_freed
let version t = t.ver

let iter t ~f =
  (* Reconstruct each leaf's base VPN from the index path. Visits slots in
     ascending index order, i.e. leaves in ascending VPN order. *)
  let rec go node base =
    for idx = 0 to 511 do
      let base' = base lor (idx lsl ((node.level - 1) * 9)) in
      match node.slots.(idx) with
      | Empty -> ()
      | Leaf (pte, size) -> if pte.Pte.present then f base' pte size
      | Table child -> go child base'
    done
  in
  go t.root 0
