type t = {
  pfn : int;
  present : bool;
  writable : bool;
  user : bool;
  global : bool;
  accessed : bool;
  dirty : bool;
  executable : bool;
  cow : bool;
}

let none =
  {
    pfn = 0;
    present = false;
    writable = false;
    user = false;
    global = false;
    accessed = false;
    dirty = false;
    executable = false;
    cow = false;
  }

let user_data ~pfn = { none with pfn; present = true; writable = true; user = true }

let kernel_data ~pfn = { none with pfn; present = true; writable = true; global = true }

let make_cow t = { t with writable = false; cow = true }

let break_cow t ~new_pfn = { t with pfn = new_pfn; writable = true; cow = false; dirty = true }

let mark_accessed t = { t with accessed = true }
let mark_dirty t = { t with dirty = true; accessed = true }
let write_protect t = { t with writable = false }
let clean t = { t with dirty = false }

(* Field-wise: every field is immediate, so this stays allocation-free and
   off the polymorphic-compare runtime (tlblint R1). *)
let equal a b =
  a.pfn = b.pfn && a.present = b.present && a.writable = b.writable
  && a.user = b.user && a.global = b.global && a.accessed = b.accessed
  && a.dirty = b.dirty && a.executable = b.executable && a.cow = b.cow

let pp fmt t =
  let flag c b = if b then c else "-" in
  Format.fprintf fmt "pfn=%d %s%s%s%s%s%s%s%s" t.pfn
    (flag "P" t.present) (flag "W" t.writable) (flag "U" t.user)
    (flag "G" t.global) (flag "A" t.accessed) (flag "D" t.dirty)
    (flag "X" t.executable) (flag "C" t.cow)
