(* tlblint: proven-bounds — every unsafe array access below indexes
   [t.words] with a word index already compared against [Array.length
   t.words] (or produced by a [for] loop bounded by it); bit offsets are
   [land 31] so shifts stay in [0,31]. *)

(* A CPU set as a growable int-array bitset, 32 bits per word.

   32 (not [Sys.int_size]) bits per word so the word/bit split is a shift
   and a mask instead of division by 63 — the split runs on every [mem] on
   the cacheline hot path. Word values stay well inside OCaml's immediate
   int range, so the array is unboxed and reads allocate nothing.

   The array grows on [set] and starts at a shared empty array: a set that
   is never populated (the common case for per-line sharer sets on big
   machines, where most protocol lines are touched by a handful of CPUs)
   costs two words, and a sparse set over a 1024-CPU topology only ever
   allocates up to its highest member's word. All traversals skip zero
   words, then zero bytes within a word, so iteration is O(words +
   set bits) with no closure or list allocation of its own. *)

type t = { mutable words : int array }

let bits_per_word_shift = 5
let bits_per_word = 1 lsl bits_per_word_shift
let bit_mask = bits_per_word - 1
let empty_words : int array = [||]

let create ~bits =
  if bits < 0 then invalid_arg "Cpuset.create: negative capacity";
  if bits = 0 then { words = empty_words }
  else { words = Array.make ((bits + bit_mask) lsr bits_per_word_shift) 0 }

let capacity t = Array.length t.words * bits_per_word

(* Grow to cover word index [wi]; doubling keeps repeated single-bit
   growth amortized O(1). *)
let grow t wi =
  let old = t.words in
  let n = Array.length old in
  let bigger = Array.make (Stdlib.max (wi + 1) (2 * n)) 0 in
  Array.blit old 0 bigger 0 n;
  t.words <- bigger

let set t b =
  if b < 0 then invalid_arg "Cpuset.set: negative element";
  let wi = b lsr bits_per_word_shift in
  if wi >= Array.length t.words then grow t wi;
  Array.unsafe_set t.words wi
    (Array.unsafe_get t.words wi lor (1 lsl (b land bit_mask)))

(* [clear]/[mem] on an element past the capacity are no-ops / [false]:
   absence needs no storage, so they never grow. A negative [b] shifts to a
   huge positive word index ([lsr] is logical) and takes the same path. *)
let clear t b =
  let wi = b lsr bits_per_word_shift in
  if wi < Array.length t.words then
    Array.unsafe_set t.words wi
      (Array.unsafe_get t.words wi land lnot (1 lsl (b land bit_mask)))

let mem t b =
  let wi = b lsr bits_per_word_shift in
  wi < Array.length t.words
  && Array.unsafe_get t.words wi land (1 lsl (b land bit_mask)) <> 0

let is_empty t =
  let words = t.words in
  let n = Array.length words in
  let i = ref 0 in
  while !i < n && Array.unsafe_get words !i = 0 do
    incr i
  done;
  !i = n

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

(* SWAR popcount of a 32-bit word (values never exceed 32 bits, so the
   multiply's high garbage is masked off after the shift). *)
let popcount32 w =
  let w = w - ((w lsr 1) land 0x55555555) in
  let w = (w land 0x33333333) + ((w lsr 2) land 0x33333333) in
  let w = (w + (w lsr 4)) land 0x0f0f0f0f in
  (w * 0x01010101) lsr 24 land 0x3f

let count t =
  let words = t.words in
  let acc = ref 0 in
  for i = 0 to Array.length words - 1 do
    let w = Array.unsafe_get words i in
    if w <> 0 then acc := !acc + popcount32 w
  done;
  !acc

(* Traversals snapshot each word as they reach it: [f] may clear the
   element it was called with (or earlier ones) without disturbing the
   walk — the in-place filtering [Proto_paper.select_targets] relies on —
   but must not set bits, which could be missed or double-visited. *)
let iter f t =
  let words = t.words in
  for wi = 0 to Array.length words - 1 do
    let w = Array.unsafe_get words wi in
    if w <> 0 then begin
      let m = ref w in
      let b = ref (wi lsl bits_per_word_shift) in
      while !m <> 0 do
        if !m land 0xff = 0 then begin
          m := !m lsr 8;
          b := !b + 8
        end
        else begin
          if !m land 1 = 1 then f !b;
          m := !m lsr 1;
          incr b
        end
      done
    end
  done

let fold f init t =
  let words = t.words in
  let acc = ref init in
  for wi = 0 to Array.length words - 1 do
    let w = Array.unsafe_get words wi in
    if w <> 0 then begin
      let m = ref w in
      let b = ref (wi lsl bits_per_word_shift) in
      while !m <> 0 do
        if !m land 0xff = 0 then begin
          m := !m lsr 8;
          b := !b + 8
        end
        else begin
          if !m land 1 = 1 then acc := f !acc !b;
          m := !m lsr 1;
          incr b
        end
      done
    end
  done;
  !acc

let ensure_words t n =
  if Array.length t.words < n then grow t (n - 1)

let union_into ~dst ~src =
  let sw = src.words in
  let n = Array.length sw in
  ensure_words dst n;
  let dw = dst.words in
  for i = 0 to n - 1 do
    let w = Array.unsafe_get sw i in
    if w <> 0 then Array.unsafe_set dw i (Array.unsafe_get dw i lor w)
  done

let copy_into ~dst ~src =
  let sw = src.words in
  let n = Array.length sw in
  ensure_words dst n;
  let dw = dst.words in
  Array.blit sw 0 dw 0 n;
  Array.fill dw n (Array.length dw - n) 0

let to_list t = List.rev (fold (fun acc b -> b :: acc) [] t)

let of_list l =
  let t = create ~bits:0 in
  List.iter (fun b -> set t b) l;
  t

let raw_words t = t.words
