(** Growable int-array bitsets over small non-negative ints (CPU ids).

    The shared CPU-set representation for every hot path that used to keep
    a single-word bitmask (capped at [Sys.int_size - 2] CPUs), a [bool
    array] scanned O(n_cpus), or a freshly allocated [int list]: cacheline
    sharer sets, mm cpumasks, shootdown target sets and APIC cluster sets.

    Traversals visit set bits in ascending order, skip zero words and zero
    bytes, and allocate nothing themselves, so they run in O(words + set
    bits); a set's word array only ever extends to its highest member, so
    sparse sets on 1024-CPU topologies stay a few words long. Sets are
    single-domain mutable scratch state: the shootdown paths reuse
    per-initiator scratch sets instead of allocating per shootdown. *)

type t

(** [create ~bits] makes an empty set pre-sized for elements [0, bits).
    [bits = 0] allocates no word storage at all until the first [set] —
    the right choice for the many per-line sharer sets that stay empty. *)
val create : bits:int -> t

(** Current capacity in bits (a multiple of the word size, so it can
    exceed the [create] hint). [set] grows past it transparently. *)
val capacity : t -> int

(** [set t b] adds [b], growing the word array if needed. Negative [b]
    is an error. *)
val set : t -> int -> unit

(** [clear t b] removes [b]; elements beyond capacity are already absent,
    so this never grows. *)
val clear : t -> int -> unit

val mem : t -> int -> bool
val is_empty : t -> bool

(** Number of set bits (SWAR popcount per nonzero word). *)
val count : t -> int

(** [iter f t] applies [f] to each member in ascending order. [f] may
    [clear] the member it was given (or any earlier one) — the traversal
    snapshots one word at a time, which is what lets
    [Proto_paper.select_targets] filter a scratch set in place — but must
    not [set] bits in [t]. *)
val iter : (int -> unit) -> t -> unit

(** [fold f init t] folds over members in ascending order; same
    reentrancy contract as {!iter}. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** Remove every element; keeps the storage for scratch reuse. *)
val clear_all : t -> unit

(** [union_into ~dst ~src] adds every member of [src] to [dst]. *)
val union_into : dst:t -> src:t -> unit

(** [copy_into ~dst ~src] makes [dst] equal to [src] (clearing any extra
    high words of [dst]); the scratch-snapshot primitive. *)
val copy_into : dst:t -> src:t -> unit

(** Ascending member list; for tests and debug output, not hot paths. *)
val to_list : t -> int list

val of_list : int list -> t

(** The backing word array (32 bits used per word), for proven-bounds
    modules that fuse a bit walk with their own per-member table lookups
    (Cache's holder-rank scan). Callers must treat it as read-only and
    must not hold it across a [set] (growth replaces the array). *)
val raw_words : t -> int array
