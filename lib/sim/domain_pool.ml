(* Fork-join execution of independent tasks over OCaml 5 domains.

   The bench harness uses this to run whole experiments in parallel: each
   experiment builds its own machines and engines, so tasks share no mutable
   state and the only cross-domain traffic is the atomic work-stealing index
   and the per-slot result writes (distinct array cells, published by
   Domain.join before anyone reads them). *)

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let run_parallel ~jobs tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
           (try Some (Value (tasks.(i) ()))
            with e -> Some (Raised (e, Printexc.get_raw_backtrace ()))));
        loop ()
      end
    in
    loop ()
  in
  (* The calling domain is one of the workers; spawn the rest. *)
  let spawned = Stdlib.min (jobs - 1) (n - 1) in
  let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  Array.map
    (function
      | Some (Value v) -> v
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    results

let run ~jobs (tasks : (unit -> 'a) array) : 'a array =
  if jobs <= 1 || Array.length tasks <= 1 then
    (* Inline sequential execution: no domains are spawned, so [jobs = 1]
       behaves exactly like a plain loop (same exception propagation, same
       evaluation order) — the parallel runner's byte-identical baseline. *)
    Array.map (fun f -> f ()) tasks
  else run_parallel ~jobs tasks

let default_jobs () = Domain.recommended_domain_count ()
