(* tlblint: proven-bounds — workers read [order] at k in [base, stop] with
   stop < n = Array.length order, claimed via Atomic.fetch_and_add. *)
(* Fork-join execution of independent tasks over OCaml 5 domains.

   The bench harness uses this to run sim-run tasks in parallel: each task
   builds its own machines and engines, so tasks share no mutable state and
   the only cross-domain traffic is the atomic claim index and the per-slot
   result writes (distinct array cells, published by Domain.join before
   anyone reads them).

   Scheduling is longest-processing-time-first when [weights] are given:
   workers claim tasks in descending estimated-cost order, so the biggest
   runs start immediately and the tail of small tasks back-fills the gaps —
   the classic LPT bound keeps the makespan within 4/3 of optimal for
   independent tasks. Claim order is invisible to results: task [i]'s value
   always lands in slot [i], so any reduce that reads slots in index order
   is deterministic by construction, whatever the schedule. *)

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

type gc_totals = {
  pool_minor_words : float;
  pool_major_words : float;
  pool_promoted_words : float;
  pool_minor_collections : int;
  pool_major_collections : int;
}

let zero_gc_totals =
  {
    pool_minor_words = 0.0;
    pool_major_words = 0.0;
    pool_promoted_words = 0.0;
    pool_minor_collections = 0;
    pool_major_collections = 0;
  }

let add_gc_totals a b =
  {
    pool_minor_words = a.pool_minor_words +. b.pool_minor_words;
    pool_major_words = a.pool_major_words +. b.pool_major_words;
    pool_promoted_words = a.pool_promoted_words +. b.pool_promoted_words;
    pool_minor_collections = a.pool_minor_collections + b.pool_minor_collections;
    pool_major_collections = a.pool_major_collections + b.pool_major_collections;
  }

(* GC deltas are measured per worker domain: in OCaml 5 [Gc.quick_stat]'s
   allocation counters are domain-local while a domain is alive (a child's
   counters fold into its parent only at [Domain.join]), so sampling before
   and after a worker's stint and summing the deltas gives the true
   cross-domain total — and the caller's own sample must be taken *before*
   joining the children or it would double-count them. *)
let gc_delta_around f =
  let s0 = Gc.quick_stat () in
  let finally () = f (Gc.quick_stat ()) s0 in
  finally

let gc_delta s1 (s0 : Gc.stat) =
  {
    pool_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
    pool_major_words = s1.Gc.major_words -. s0.Gc.major_words;
    pool_promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
    pool_minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
    pool_major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
  }

(* fig10-class workloads allocate ~10⁹ minor words per run; the default
   256k-word minor heap turns that into tens of thousands of minor
   collections with heavy promotion. A larger per-domain minor arena and a
   laxer space_overhead trade memory for GC time. GC tuning can never
   change simulated results — the simulator is deterministic — only
   wall-clock. *)
let tuned_gc_params () =
  let g = Gc.get () in
  { g with Gc.minor_heap_size = 4 * 1024 * 1024; space_overhead = 200 }

let tune_current_domain () = Gc.set (tuned_gc_params ())

(* Claim order: indices sorted by descending weight (ties broken by index,
   so equal-weight tasks keep submission order and the order is a pure
   function of the weights). *)
let claim_order ~weights n =
  match weights with
  | None -> Array.init n (fun i -> i)
  | Some w ->
      if Array.length w <> n then
        invalid_arg "Domain_pool.run: weights length must match tasks";
      let order = Array.init n (fun i -> i) in
      Array.sort
        (fun a b ->
          let c = Float.compare w.(b) w.(a) in
          if c <> 0 then c else Int.compare a b)
        order;
      order

let run_parallel ~jobs ~order ~chunk ~tune_gc tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let base = Atomic.fetch_and_add next chunk in
      if base < n then begin
        let stop = Stdlib.min n (base + chunk) - 1 in
        for k = base to stop do
          let i = Array.unsafe_get order k in
          results.(i) <-
            (try Some (Value (tasks.(i) ()))
             with e -> Some (Raised (e, Printexc.get_raw_backtrace ())))
        done;
        loop ()
      end
    in
    loop ()
  in
  let spawned = Stdlib.min (jobs - 1) (n - 1) in
  let worker_gc = Array.make (spawned + 1) zero_gc_totals in
  let spawn k =
    Domain.spawn (fun () ->
        if tune_gc then tune_current_domain ();
        let finish = gc_delta_around (fun s1 s0 -> worker_gc.(k + 1) <- gc_delta s1 s0) in
        worker ();
        finish ())
  in
  (* The calling domain is one of the workers; spawn the rest. *)
  let domains = Array.init spawned spawn in
  let finish = gc_delta_around (fun s1 s0 -> worker_gc.(0) <- gc_delta s1 s0) in
  worker ();
  finish ();
  Array.iter Domain.join domains;
  let gc = Array.fold_left add_gc_totals zero_gc_totals worker_gc in
  ( Array.map
      (function
        | Some (Value v) -> v
        | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results,
    gc )

let run ~jobs ?weights ?(chunk = 1) ?(tune_gc = false) ?gc_totals
    (tasks : (unit -> 'a) array) : 'a array =
  if chunk < 1 then invalid_arg "Domain_pool.run: chunk must be >= 1";
  (match weights with
  | Some w when Array.length w <> Array.length tasks ->
      invalid_arg "Domain_pool.run: weights length must match tasks"
  | _ -> ());
  if jobs <= 1 || Array.length tasks <= 1 then begin
    (* Inline sequential execution: no domains are spawned, so [jobs = 1]
       behaves exactly like a plain loop (same exception propagation, same
       evaluation order) — the parallel runner's byte-identical baseline. *)
    let finish =
      match gc_totals with
      | None -> ignore
      | Some cell -> gc_delta_around (fun s1 s0 -> cell := gc_delta s1 s0)
    in
    let results = Array.map (fun f -> f ()) tasks in
    finish ();
    results
  end
  else begin
    let order = claim_order ~weights (Array.length tasks) in
    let results, gc = run_parallel ~jobs ~order ~chunk ~tune_gc tasks in
    Option.iter (fun cell -> cell := gc) gc_totals;
    results
  end

let default_jobs () = Domain.recommended_domain_count ()
