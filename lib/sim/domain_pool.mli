(** Fork-join execution of independent tasks over OCaml 5 domains.

    Built for the bench harness: sim-run tasks are self-contained (each
    builds its own {!Engine.t} and machines), so running them on separate
    domains is safe as long as they share no mutable state. *)

(** Summed GC activity of every worker domain across one {!run} call.
    Counters are sampled per domain ([Gc.quick_stat] allocation counters
    are domain-local while a domain lives) and added, so the total covers
    all domains — the figure a perf harness should report. *)
type gc_totals = {
  pool_minor_words : float;
  pool_major_words : float;
  pool_promoted_words : float;
  pool_minor_collections : int;
  pool_major_collections : int;
}

val zero_gc_totals : gc_totals
val add_gc_totals : gc_totals -> gc_totals -> gc_totals

(** [run ~jobs tasks] runs every task and returns their results in task
    order. With [jobs <= 1] (or fewer than two tasks) the tasks run inline
    on the calling domain, strictly in order, with no domains spawned — so
    a [jobs:1] run is indistinguishable from a plain sequential loop. With
    [jobs > 1], up to [jobs] domains (including the caller) pull tasks from
    a shared atomic counter; task [i]'s result lands in slot [i] regardless
    of which domain ran it, so index-order reduces are deterministic by
    construction under any schedule.

    [weights], when given (same length as [tasks]), sets the parallel
    claim order to descending weight — longest-processing-time-first list
    scheduling, which bounds the makespan at 4/3 of optimal. Equal weights
    keep submission order. Claim order never affects results, only
    wall-clock.

    [chunk] (default 1) makes each worker claim that many consecutive
    order entries per atomic operation — for fleets of sub-millisecond
    tasks where the shared counter would otherwise bounce between cores.

    [tune_gc] (default false) applies bench-tuned GC parameters (a 4M-word
    minor heap, space_overhead 200) inside each *spawned* worker domain;
    the calling domain's parameters are never touched. GC tuning cannot
    change simulated results, only wall-clock and memory.

    [gc_totals], when given, receives the summed per-domain GC deltas for
    this call (caller's stint included, children sampled before join so
    nothing is double-counted).

    If a task raises, the parallel runner still completes the remaining
    tasks, then re-raises the first (lowest-index) exception with its
    original backtrace. *)
val run :
  jobs:int ->
  ?weights:float array ->
  ?chunk:int ->
  ?tune_gc:bool ->
  ?gc_totals:gc_totals ref ->
  (unit -> 'a) array ->
  'a array

(** What the runtime recommends for [jobs] on this machine
    ({!Domain.recommended_domain_count}). *)
val default_jobs : unit -> int

(** Apply the bench-tuned GC parameters (see [tune_gc]) to the calling
    domain — what the harness does on its main domain so [-j 1] runs get
    the same allocation-storm relief as pool workers. *)
val tune_current_domain : unit -> unit
