(** Fork-join execution of independent tasks over OCaml 5 domains.

    Built for the bench harness: experiments are self-contained (each builds
    its own {!Engine.t} and machines), so running them on separate domains
    is safe as long as they share no mutable state. *)

(** [run ~jobs tasks] runs every task and returns their results in task
    order. With [jobs <= 1] (or fewer than two tasks) the tasks run inline
    on the calling domain, strictly in order, with no domains spawned — so
    a [jobs:1] run is indistinguishable from a plain sequential loop. With
    [jobs > 1], up to [jobs] domains (including the caller) pull tasks from
    a shared atomic counter; task [i]'s result lands in slot [i] regardless
    of which domain ran it.

    If a task raises, the parallel runner still completes the remaining
    tasks, then re-raises the first (lowest-index) exception with its
    original backtrace. *)
val run : jobs:int -> (unit -> 'a) array -> 'a array

(** What the runtime recommends for [jobs] on this machine
    ({!Domain.recommended_domain_count}). *)
val default_jobs : unit -> int
