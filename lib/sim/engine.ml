(* tlblint: proven-bounds — every Array.unsafe_get/set below indexes a
   power-of-two ring (slot = time land (ring_size - 1)) or the heap array
   within [t.size], both established at the masking/allocation site. *)
(* The hot core of the simulator. Two representation choices keep the
   per-event cost down:

   - The priority key is ONE int: [time lsl seq_bits lor seq]. Heap
     ordering is a single native int comparison instead of a polymorphic
     [compare] call on a (time, seq) pair. [seq] preserves FIFO order for
     same-time events; when the 25-bit sequence field would overflow, the
     pending queue is renumbered in place (order-preserving, rare).
   - [try_advance] lets a running process skip the whole
     suspend/schedule/pop round-trip when no pending event could fire
     inside the window it wants to sleep across: the clock simply moves
     forward. This is exact — any event that could observe or perturb the
     sleeping process would have to be in the queue already, and the
     strict [<] cutoff keeps same-instant FIFO semantics (an event at
     exactly the wake-up time has a smaller seq and must run first).
     Disabled while a chooser is installed, so the interleaving explorer
     sees every decision point. *)

type event = { key : int; run : unit -> unit; mutable next : event }
(* [next] threads the intrusive per-slot FIFO of the calendar ring below;
   [nil] (a self-cycle) terminates lists and fills empty slots. *)

let seq_bits = 25
let seq_limit = 1 lsl seq_bits
let seq_mask = seq_limit - 1
let max_time = max_int lsr seq_bits
let key_time k = k lsr seq_bits

(* Near-future events live in a calendar ring: slot [time land (ring_size -
   1)] holds the FIFO of events at that exact time. An event is ring-eligible
   when [time - now < ring_size] (strictly), which guarantees each slot holds
   at most one distinct timestamp at any moment. Everything else — far
   events, and every event while a chooser is installed — goes through the
   binary heap. Ring append and pop are O(1) (amortized: the pop scan only
   ever moves [ring_min] forward between pushes), versus an O(log n) sift
   per event, and the sift was the single largest line in bench profiles. *)
let ring_size = 4096

type t = {
  mutable now : int;
  mutable seq : int;
  mutable events_run : int;
  mutable advances : int; (* fast-path clock advances (skipped suspends) *)
  mutable data : event array; (* binary min-heap on [key], far/chooser events *)
  mutable size : int; (* heap population *)
  ring : event array; (* slot heads, [nil] = empty *)
  ring_tail : event array; (* slot tails, meaningful when head <> nil *)
  mutable ring_count : int; (* ring population *)
  mutable ring_min : int;
      (* lower bound on the earliest ring event's time: no ring event lives
         in [now, ring_min). Pop scans start here instead of [now]. *)
  mutable cur_name : string; (* cooperative-process name, see Process *)
  mutable chooser : (int -> int) option;
  mutable horizon : int;
}

let rec nil = { key = 0; run = ignore; next = nil }
let dummy_event = nil

let create () =
  {
    now = 0;
    seq = 0;
    events_run = 0;
    advances = 0;
    data = [||];
    size = 0;
    ring = Array.make ring_size nil;
    ring_tail = Array.make ring_size nil;
    ring_count = 0;
    ring_min = 0;
    cur_name = "main";
    chooser = None;
    horizon = 0;
  }

let now t = t.now
let events_run t = t.events_run
let advances t = t.advances

(* Engine operations are a per-engine quantity: every engine belongs to
   exactly one simulation run, so a harness that wants "ops spent in this
   run" reads the run's own engine(s) and aggregation across runs (and
   domains) is plain addition at reduce time. There is deliberately no
   process-wide counter: a global meter both serializes perf attribution
   (deltas only mean something when one experiment runs at a time) and
   reports 0 for experiments that reuse memoized results. *)
let ops t = t.events_run + t.advances
let pending t = t.size + t.ring_count
let current_name t = t.cur_name
let set_current_name t name = t.cur_name <- name

(* ----- calendar ring primitives ----- *)

let ring_append t ~time ev =
  let slot = time land (ring_size - 1) in
  let head = Array.unsafe_get t.ring slot in
  if head == nil then Array.unsafe_set t.ring slot ev
  else (Array.unsafe_get t.ring_tail slot).next <- ev;
  Array.unsafe_set t.ring_tail slot ev;
  t.ring_count <- t.ring_count + 1;
  if time < t.ring_min then t.ring_min <- time

(* Earliest ring event's time; requires [ring_count > 0]. The scan starts
   at [ring_min] (clamped to [now]) and leaves it on the found slot, so
   repeated calls without intervening pushes are O(1); total scan work is
   bounded by simulated-time progress plus pushes. Termination: every ring
   event's time is in [now, now + ring_size). *)
let ring_earliest t =
  let pos = ref (if t.ring_min > t.now then t.ring_min else t.now) in
  while Array.unsafe_get t.ring (!pos land (ring_size - 1)) == nil do
    incr pos
  done;
  t.ring_min <- !pos;
  !pos

(* Pop the FIFO head of the slot holding time [pos]. *)
let ring_pop t pos =
  let slot = pos land (ring_size - 1) in
  let ev = Array.unsafe_get t.ring slot in
  let nx = ev.next in
  Array.unsafe_set t.ring slot nx;
  if nx == nil then Array.unsafe_set t.ring_tail slot nil;
  ev.next <- nil;
  t.ring_count <- t.ring_count - 1;
  ev

(* Move every ring event into the heap (any insertion order: the heap
   orders by full key). Used when a chooser is installed and by seq
   renumbering — both want the single-structure view. *)
let drain_ring_to_push t push =
  if t.ring_count > 0 then begin
    for s = 0 to ring_size - 1 do
      let ev = ref (Array.unsafe_get t.ring s) in
      while !ev != nil do
        let e = !ev in
        ev := e.next;
        e.next <- nil;
        push e
      done;
      Array.unsafe_set t.ring s nil;
      Array.unsafe_set t.ring_tail s nil
    done;
    t.ring_count <- 0
  end

(* ----- heap primitives (monomorphic int-key comparisons) ----- *)

let rec sift_up data i (ev : event) =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let p = Array.unsafe_get data parent in
    if ev.key < p.key then begin
      Array.unsafe_set data i p;
      sift_up data parent ev
    end
    else Array.unsafe_set data i ev
  end
  else Array.unsafe_set data i ev

let rec sift_down data size i (ev : event) =
  let left = (2 * i) + 1 in
  if left >= size then Array.unsafe_set data i ev
  else begin
    let right = left + 1 in
    let child =
      if
        right < size
        && (Array.unsafe_get data right).key < (Array.unsafe_get data left).key
      then right
      else left
    in
    let c = Array.unsafe_get data child in
    if c.key < ev.key then begin
      Array.unsafe_set data i c;
      sift_down data size child ev
    end
    else Array.unsafe_set data i ev
  end

let push t ev =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (Stdlib.max 64 (2 * cap)) dummy_event in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.size <- t.size + 1;
  sift_up t.data (t.size - 1) ev

(* Heap-only pop; requires [t.size > 0]. *)
let heap_pop t =
  let top = Array.unsafe_get t.data 0 in
  t.size <- t.size - 1;
  let last = Array.unsafe_get t.data t.size in
  Array.unsafe_set t.data t.size dummy_event;
  if t.size > 0 then sift_down t.data t.size 0 last;
  top

(* Merged pop over heap + ring in (time, seq) order. On an equal-time tie
   the heap event goes first: it was necessarily scheduled at a strictly
   earlier instant (ring-eligibility is [time - now < ring_size], so for
   one target time the far/heap push happened at a smaller [now] than any
   ring push), hence it carries the smaller seq. *)
let pop t =
  if t.ring_count = 0 then begin
    if t.size = 0 then None else Some (heap_pop t)
  end
  else if t.size = 0 then Some (ring_pop t (ring_earliest t))
  else begin
    let rt = ring_earliest t in
    if key_time (Array.unsafe_get t.data 0).key <= rt then Some (heap_pop t)
    else Some (ring_pop t rt)
  end

(* Earliest pending time across heap and ring; [max_int] when empty. *)
let peek_time t =
  let h = if t.size = 0 then max_int else key_time (Array.unsafe_get t.data 0).key in
  if t.ring_count = 0 then h
  else begin
    let rt = ring_earliest t in
    if h < rt then h else rt
  end

let set_chooser t ?(horizon = 0) choose =
  if horizon < 0 then invalid_arg "Engine.set_chooser: negative horizon";
  t.chooser <- Some choose;
  t.horizon <- horizon;
  (* Chooser mode is pure-heap ([pop_chosen] peeks the heap top directly),
     so migrate anything already sitting in the ring. *)
  drain_ring_to_push t (push t)

let clear_chooser t =
  t.chooser <- None;
  t.horizon <- 0

(* ----- sequence renumbering -----

   [seq] identifies insertion order among same-time events. Once the field
   saturates, renumber every pending event (ring included) 0..n-1 in key
   order: relative order (hence behaviour) is unchanged, and a sorted array
   is already a valid min-heap. The ring is left empty — events re-enter it
   as they are scheduled. *)
let renumber t =
  drain_ring_to_push t (push t);
  (* The renumbered seqs are 0..size-1 and the next fresh seq is [size];
     with [size >= seq_mask] those would overflow into the time bits of the
     packed key, silently corrupting heap order. Unreachable below ~33M
     simultaneously-pending events, but fail loudly rather than corrupt. *)
  if t.size >= seq_mask then
    invalid_arg
      (Printf.sprintf
         "Engine: %d pending events exceed the %d-bit sequence field" t.size
         seq_bits);
  let live = Array.sub t.data 0 t.size in
  Array.sort (fun a b -> Int.compare a.key b.key) live;
  Array.iteri
    (fun i ev ->
      live.(i) <- { ev with key = (key_time ev.key lsl seq_bits) lor i })
    live;
  Array.blit live 0 t.data 0 t.size;
  t.seq <- t.size

let schedule_at t ~time run =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time t.now);
  if time > max_time then
    invalid_arg (Printf.sprintf "Engine.schedule_at: time %d overflows the clock" time);
  if t.seq >= seq_mask then renumber t;
  let key = (time lsl seq_bits) lor t.seq in
  t.seq <- t.seq + 1;
  let ev = { key; run; next = nil } in
  match t.chooser with
  | None when time - t.now < ring_size -> ring_append t ~time ev
  | _ -> push t ev

let schedule t ~delay run =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) run

(* Fast path for Process.delay: advance the clock without a suspend when no
   pending event falls inside the window (strictly — an event at exactly
   [now + cycles] predates the would-be resume in seq order). *)
let try_advance t ~cycles =
  match t.chooser with
  | Some _ -> false
  | None ->
      if cycles < 0 then invalid_arg "Engine.try_advance: negative cycles";
      (* [cycles <= max_time - t.now] (overflow-safe: both sides are
         non-negative ints) keeps [now] inside the packed key's time field.
         Past that, decline the fast path so the slow path's [schedule_at]
         reports the clock overflow instead of [now] silently wrapping into
         the seq bits. *)
      if cycles <= max_time - t.now && peek_time t > t.now + cycles then begin
        t.now <- t.now + cycles;
        t.advances <- t.advances + 1;
        true
      end
      else false

(* With a chooser installed, every set of events falling inside the
   concurrency horizon is a scheduling decision point: the chooser picks
   which fires next. Events run in seq order within the chosen one's
   timestamp; the clock is clamped monotone (an event overtaken by a later
   one from the window runs "late" at the current time). Without a chooser
   this is the plain deterministic (time, seq) order. *)
let pop_chosen t choose =
  match pop t with
  | None -> None
  | Some first ->
      let cutoff = key_time first.key + t.horizon in
      let buf = ref [| first |] in
      let n = ref 1 in
      let continue = ref true in
      while !continue do
        if t.size > 0 && key_time t.data.(0).key <= cutoff then begin
          let ev = Option.get (pop t) in
          if !n = Array.length !buf then begin
            let bigger = Array.make (2 * !n) dummy_event in
            Array.blit !buf 0 bigger 0 !n;
            buf := bigger
          end;
          !buf.(!n) <- ev;
          incr n
        end
        else continue := false
      done;
      if !n = 1 then Some first
      else begin
        let i = choose !n in
        let i = if i < 0 || i >= !n then 0 else i in
        for j = 0 to !n - 1 do
          if j <> i then push t !buf.(j)
        done;
        Some !buf.(i)
      end

let step t =
  let next = match t.chooser with None -> pop t | Some choose -> pop_chosen t choose in
  match next with
  | None -> false
  | Some ev ->
      let time = key_time ev.key in
      if time > t.now then t.now <- time;
      t.events_run <- t.events_run + 1;
      ev.run ();
      true

(* The chooser-free branch drains the queues without going through
   [step]/[pop]: those box every event in [Some], which at ~500 events per
   simulated shootdown is a measurable share of minor-GC pressure. The
   chooser is still consulted per event so installing one mid-run behaves
   exactly as it did through [step]. *)
let run t =
  let continue = ref true in
  while !continue do
    match t.chooser with
    | Some _ -> continue := step t
    | None ->
        if t.ring_count = 0 && t.size = 0 then continue := false
        else begin
          let ev =
            if t.ring_count = 0 then heap_pop t
            else if t.size = 0 then ring_pop t (ring_earliest t)
            else begin
              let rt = ring_earliest t in
              if key_time (Array.unsafe_get t.data 0).key <= rt then heap_pop t
              else ring_pop t rt
            end
          in
          let time = key_time ev.key in
          if time > t.now then t.now <- time;
          t.events_run <- t.events_run + 1;
          ev.run ()
        end
  done

let run_until t ~time =
  if time > max_time then
    invalid_arg (Printf.sprintf "Engine.run_until: time %d overflows the clock" time);
  let continue = ref true in
  while !continue do
    if peek_time t > time then continue := false else ignore (step t)
  done;
  if t.now < time && t.ring_count = 0 && t.size = 0 then t.now <- time
