type event = { time : int; seq : int; run : unit -> unit }

type t = {
  mutable now : int;
  mutable seq : int;
  mutable events_run : int;
  queue : event Heap.t;
  mutable chooser : (int -> int) option;
  mutable horizon : int;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    now = 0;
    seq = 0;
    events_run = 0;
    queue = Heap.create ~compare:compare_events;
    chooser = None;
    horizon = 0;
  }

let set_chooser t ?(horizon = 0) choose =
  if horizon < 0 then invalid_arg "Engine.set_chooser: negative horizon";
  t.chooser <- Some choose;
  t.horizon <- horizon

let clear_chooser t =
  t.chooser <- None;
  t.horizon <- 0

let now t = t.now
let events_run t = t.events_run
let pending t = Heap.length t.queue

let schedule_at t ~time run =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time t.now);
  t.seq <- t.seq + 1;
  Heap.push t.queue { time; seq = t.seq; run }

let schedule t ~delay run =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) run

(* With a chooser installed, every set of events falling inside the
   concurrency horizon is a scheduling decision point: the chooser picks
   which fires next. Events run in seq order within the chosen one's
   timestamp; the clock is clamped monotone (an event overtaken by a later
   one from the window runs "late" at the current time). Without a chooser
   this is the plain deterministic (time, seq) order. *)
let pop_chosen t choose =
  match Heap.pop t.queue with
  | None -> None
  | Some first ->
      let cutoff = first.time + t.horizon in
      let rec collect acc =
        match Heap.peek t.queue with
        | Some ev when ev.time <= cutoff ->
            ignore (Heap.pop t.queue);
            collect (ev :: acc)
        | _ -> List.rev acc
      in
      let rest = collect [] in
      if rest = [] then Some first
      else begin
        let all = first :: rest in
        let n = List.length all in
        let i = choose n in
        let i = if i < 0 || i >= n then 0 else i in
        let chosen = List.nth all i in
        List.iteri (fun j ev -> if j <> i then Heap.push t.queue ev) all;
        Some chosen
      end

let step t =
  let next =
    match t.chooser with None -> Heap.pop t.queue | Some choose -> pop_chosen t choose
  in
  match next with
  | None -> false
  | Some ev ->
      t.now <- Stdlib.max t.now ev.time;
      t.events_run <- t.events_run + 1;
      ev.run ();
      true

let run t = while step t do () done

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev when ev.time > time -> continue := false
    | Some _ -> ignore (step t)
  done;
  if t.now < time && Heap.is_empty t.queue then t.now <- time
