(* tlblint: proven-bounds — every Array.unsafe_get/set below indexes one
   of: the event arena at [base + field] with [base] a stride-aligned
   offset handed out by [alloc] (< [t.cap], and the arena never shrinks);
   the power-of-two ring (slot = time land (ring_size - 1)); the heap's
   parallel key/event arrays within [t.size]; the closure registry below
   its length (slots come from [cls_alloc]); the handler table below
   [t.n_handlers] (schedule-time range check, and the table never
   shrinks); or the free-tag stack below [t.n_free_tags]. *)
(* The hot core of the simulator. Three representation choices keep the
   per-event cost down:

   - The priority key is ONE int: [time lsl seq_bits lor seq]. Heap
     ordering is a single native int comparison instead of a polymorphic
     [compare] call on a (time, seq) pair. [seq] preserves FIFO order for
     same-time events; when the 25-bit sequence field would overflow, the
     pending queue is renumbered in place (order-preserving, rare).
   - Events are not records but rows of a flat int arena, linked by index
     and recycled through an index free list. A first cut pooled ordinary
     records, and benchmarked *slower* than allocating fresh ones: a
     pooled record is promoted to the major heap, so every pointer store
     into it (free-list link, ring link, closure field) goes through
     [caml_modify], and at ~9 barriered stores per event the barriers cost
     more than the minor-GC pressure they saved. Int stores into an int
     array have no barrier at all, so the flat arena makes scheduling both
     allocation-free AND barrier-free. Closures (the [schedule] interface)
     live in a side registry indexed by the event row — one barriered
     store per closure event instead of several — and hot callers avoid
     even that with [schedule_tag]: a handler registered once per
     long-lived object (process, APIC, ...) is dispatched by integer tag
     with two unboxed int arguments carried in the row.
   - [try_advance] lets a running process skip the whole
     suspend/schedule/pop round-trip when no pending event could fire
     inside the window it wants to sleep across: the clock simply moves
     forward. This is exact — any event that could observe or perturb the
     sleeping process would have to be in the queue already, and the
     strict [<] cutoff keeps same-instant FIFO semantics (an event at
     exactly the wake-up time has a smaller seq and must run first).
     Disabled while a chooser is installed, so the interleaving explorer
     sees every decision point. *)

let seq_bits = 25
let seq_limit = 1 lsl seq_bits
let seq_mask = seq_limit - 1
let max_time = max_int lsr seq_bits
let key_time k = k lsr seq_bits

(* Event rows: [stride] ints per event, addressed by base offset. *)
let f_key = 0 (* packed (time, seq) priority *)
let f_tag = 1 (* >= 0: handler-table index; -1: closure (f_b = registry slot); -2: cancelled *)
let f_a = 2 (* first unboxed handler argument *)
let f_b = 3 (* second unboxed handler argument, or closure-registry slot *)
let f_gen = 4 (* bumped on release; stamps [handle]s against row reuse *)
let f_next = 5 (* intrusive FIFO / free-list link: base offset, [nil] = end *)
let stride = 6
let nil = -1

type handle = { h_base : int; h_gen : int }

(* Near-future events live in a calendar ring: slot [time land (ring_size -
   1)] holds the FIFO of events at that exact time. An event is ring-eligible
   when [time - now < ring_size] (strictly), which guarantees each slot holds
   at most one distinct timestamp at any moment. Everything else — far
   events, and every event while a chooser is installed — goes through the
   binary heap. Ring append and pop are O(1) (amortized: the pop scan only
   ever moves [ring_min] forward between pushes), versus an O(log n) sift
   per event, and the sift was the single largest line in bench profiles. *)
let ring_size = 4096

let no_closure () = invalid_arg "Engine: closure slot dispatched twice"

let no_handler (_ : int) (_ : int) =
  invalid_arg "Engine: tag dispatched after release_handler"

type t = {
  mutable now : int;
  mutable seq : int;
  mutable events_run : int;
  mutable advances : int; (* fast-path clock advances (skipped suspends) *)
  mutable store : int array; (* the event arena, [stride] ints per row *)
  mutable cap : int; (* ints in [store] handed out so far (arena bump pointer) *)
  mutable free : int; (* head of the row free list, [nil] = empty *)
  mutable hkey : int array; (* binary min-heap keys, far/chooser events *)
  mutable hev : int array; (* heap rows (base offsets), parallel to [hkey] *)
  mutable size : int; (* heap population *)
  ring : int array; (* slot head rows, [nil] = empty *)
  ring_tail : int array; (* slot tail rows, meaningful when head <> nil *)
  mutable ring_count : int; (* ring population *)
  mutable ring_min : int;
      (* lower bound on the earliest ring event's time: no ring event lives
         in [now, ring_min). Pop scans start here instead of [now]. *)
  mutable cls : (unit -> unit) array; (* closure registry for [schedule] *)
  mutable cls_free : int array; (* stack of free registry slots *)
  mutable n_cls_free : int;
  mutable n_cls : int; (* registry slots handed out so far *)
  mutable handlers : (int -> int -> unit) array; (* tag dispatch table *)
  mutable n_handlers : int;
  mutable free_tags : int array; (* stack of released handler slots *)
  mutable n_free_tags : int;
  mutable cur_name : string; (* cooperative-process name, see Process *)
  mutable chooser : (int -> int) option;
  mutable horizon : int;
}

let create () =
  {
    now = 0;
    seq = 0;
    events_run = 0;
    advances = 0;
    store = [||];
    cap = 0;
    free = nil;
    hkey = [||];
    hev = [||];
    size = 0;
    ring = Array.make ring_size nil;
    ring_tail = Array.make ring_size nil;
    ring_count = 0;
    ring_min = 0;
    cls = [||];
    cls_free = [||];
    n_cls_free = 0;
    n_cls = 0;
    handlers = [||];
    n_handlers = 0;
    free_tags = [||];
    n_free_tags = 0;
    cur_name = "main";
    chooser = None;
    horizon = 0;
  }

let now t = t.now
let events_run t = t.events_run
let advances t = t.advances

(* Engine operations are a per-engine quantity: every engine belongs to
   exactly one simulation run, so a harness that wants "ops spent in this
   run" reads the run's own engine(s) and aggregation across runs (and
   domains) is plain addition at reduce time. There is deliberately no
   process-wide counter: a global meter both serializes perf attribution
   (deltas only mean something when one experiment runs at a time) and
   reports 0 for experiments that reuse memoized results. *)
let ops t = t.events_run + t.advances
let pending t = t.size + t.ring_count
let current_name t = t.cur_name
let set_current_name t name = t.cur_name <- name

(* ----- event arena ----- *)

(* Reuse a free-listed row or bump the arena pointer. The arena grows to
   the high-water mark of simultaneously pending events and stays there:
   after warm-up, scheduling neither allocates nor runs a write barrier
   (rows are ints). *)
let alloc t ~key ~tag ~a ~b =
  let base =
    let f = t.free in
    if f >= 0 then begin
      t.free <- Array.unsafe_get t.store (f + f_next);
      f
    end
    else begin
      if t.cap = Array.length t.store then begin
        let bigger = Array.make (Stdlib.max (64 * stride) (2 * t.cap)) 0 in
        Array.blit t.store 0 bigger 0 t.cap;
        t.store <- bigger
      end;
      let base = t.cap in
      t.cap <- t.cap + stride;
      base
    end
  in
  let s = t.store in
  Array.unsafe_set s (base + f_key) key;
  Array.unsafe_set s (base + f_tag) tag;
  Array.unsafe_set s (base + f_a) a;
  Array.unsafe_set s (base + f_b) b;
  Array.unsafe_set s (base + f_next) nil;
  base

(* Return a row to the free list. The [gen] bump invalidates any
   outstanding [handle] to this row. *)
let release t base =
  let s = t.store in
  Array.unsafe_set s (base + f_gen) (Array.unsafe_get s (base + f_gen) + 1);
  Array.unsafe_set s (base + f_next) t.free;
  t.free <- base

(* ----- closure registry -----

   [schedule]'s callbacks are the one pointer payload an event can carry;
   they live in this side table so the queues stay all-int. A slot is
   freed (and pointed back at [no_closure], releasing the callback to the
   GC) before its closure runs, so a callback can recycle its own slot. *)

let cls_alloc t f =
  let slot =
    if t.n_cls_free > 0 then begin
      t.n_cls_free <- t.n_cls_free - 1;
      Array.unsafe_get t.cls_free t.n_cls_free
    end
    else begin
      if t.n_cls = Array.length t.cls then begin
        let bigger = Array.make (Stdlib.max 64 (2 * t.n_cls)) no_closure in
        Array.blit t.cls 0 bigger 0 t.n_cls;
        t.cls <- bigger
      end;
      let slot = t.n_cls in
      t.n_cls <- slot + 1;
      slot
    end
  in
  t.cls.(slot) <- f;
  slot

let cls_take t slot =
  let f = Array.unsafe_get t.cls slot in
  Array.unsafe_set t.cls slot no_closure;
  if t.n_cls_free = Array.length t.cls_free then begin
    let bigger = Array.make (Stdlib.max 64 (2 * t.n_cls_free)) 0 in
    Array.blit t.cls_free 0 bigger 0 t.n_cls_free;
    t.cls_free <- bigger
  end;
  Array.unsafe_set t.cls_free t.n_cls_free slot;
  t.n_cls_free <- t.n_cls_free + 1;
  f

(* ----- tag dispatch table ----- *)

let register_handler t f =
  let tag =
    if t.n_free_tags > 0 then begin
      t.n_free_tags <- t.n_free_tags - 1;
      Array.unsafe_get t.free_tags t.n_free_tags
    end
    else begin
      let n = t.n_handlers in
      if n = Array.length t.handlers then begin
        let bigger = Array.make (Stdlib.max 8 (2 * n)) no_handler in
        Array.blit t.handlers 0 bigger 0 n;
        t.handlers <- bigger
      end;
      t.n_handlers <- n + 1;
      n
    end
  in
  t.handlers.(tag) <- f;
  tag

(* The caller must not release a tag that still has events in flight:
   the slot may be reassigned by the next [register_handler] and a stale
   event would dispatch to the wrong handler. (The in-tree users release
   only from the owning process's own execution — a process cannot be
   sleeping while it runs — so no event can be pending on the tag.) *)
let release_handler t tag =
  if tag < 0 || tag >= t.n_handlers then
    invalid_arg "Engine.release_handler: unknown tag";
  t.handlers.(tag) <- no_handler;
  if t.n_free_tags = Array.length t.free_tags then begin
    let bigger = Array.make (Stdlib.max 8 (2 * t.n_free_tags)) 0 in
    Array.blit t.free_tags 0 bigger 0 t.n_free_tags;
    t.free_tags <- bigger
  end;
  Array.unsafe_set t.free_tags t.n_free_tags tag;
  t.n_free_tags <- t.n_free_tags + 1

(* ----- calendar ring primitives ----- *)

let ring_append t ~time ev =
  let slot = time land (ring_size - 1) in
  let head = Array.unsafe_get t.ring slot in
  if head = nil then Array.unsafe_set t.ring slot ev
  else
    Array.unsafe_set t.store (Array.unsafe_get t.ring_tail slot + f_next) ev;
  Array.unsafe_set t.ring_tail slot ev;
  t.ring_count <- t.ring_count + 1;
  if time < t.ring_min then t.ring_min <- time

(* Earliest ring event's time; requires [ring_count > 0]. The scan starts
   at [ring_min] (clamped to [now]) and leaves it on the found slot, so
   repeated calls without intervening pushes are O(1); total scan work is
   bounded by simulated-time progress plus pushes. Termination: every ring
   event's time is in [now, now + ring_size). *)
let ring_earliest t =
  let pos = ref (if t.ring_min > t.now then t.ring_min else t.now) in
  while Array.unsafe_get t.ring (!pos land (ring_size - 1)) = nil do
    incr pos
  done;
  t.ring_min <- !pos;
  !pos

(* Pop the FIFO head of the slot holding time [pos]. *)
let ring_pop t pos =
  let slot = pos land (ring_size - 1) in
  let ev = Array.unsafe_get t.ring slot in
  let nx = Array.unsafe_get t.store (ev + f_next) in
  Array.unsafe_set t.ring slot nx;
  if nx = nil then Array.unsafe_set t.ring_tail slot nil;
  t.ring_count <- t.ring_count - 1;
  ev

(* Move every ring event into the heap (any insertion order: the heap
   orders by full key). Used when a chooser is installed and by seq
   renumbering — both want the single-structure view. *)
let drain_ring_to_push t push =
  if t.ring_count > 0 then begin
    for s = 0 to ring_size - 1 do
      let ev = ref (Array.unsafe_get t.ring s) in
      while !ev >= 0 do
        let e = !ev in
        ev := Array.unsafe_get t.store (e + f_next);
        push e;
        ()
      done;
      Array.unsafe_set t.ring s nil;
      Array.unsafe_set t.ring_tail s nil
    done;
    t.ring_count <- 0
  end

(* ----- heap primitives (parallel key/row arrays, int comparisons) ----- *)

let rec sift_up hkey hev i key ev =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let pk = Array.unsafe_get hkey parent in
    if key < pk then begin
      Array.unsafe_set hkey i pk;
      Array.unsafe_set hev i (Array.unsafe_get hev parent);
      sift_up hkey hev parent key ev
    end
    else begin
      Array.unsafe_set hkey i key;
      Array.unsafe_set hev i ev
    end
  end
  else begin
    Array.unsafe_set hkey i key;
    Array.unsafe_set hev i ev
  end

let rec sift_down hkey hev size i key ev =
  let left = (2 * i) + 1 in
  if left >= size then begin
    Array.unsafe_set hkey i key;
    Array.unsafe_set hev i ev
  end
  else begin
    let right = left + 1 in
    let child =
      if right < size && Array.unsafe_get hkey right < Array.unsafe_get hkey left
      then right
      else left
    in
    let ck = Array.unsafe_get hkey child in
    if ck < key then begin
      Array.unsafe_set hkey i ck;
      Array.unsafe_set hev i (Array.unsafe_get hev child);
      sift_down hkey hev size child key ev
    end
    else begin
      Array.unsafe_set hkey i key;
      Array.unsafe_set hev i ev
    end
  end

let push t ev =
  let cap = Array.length t.hkey in
  if t.size = cap then begin
    let n = Stdlib.max 64 (2 * cap) in
    let hkey = Array.make n 0 and hev = Array.make n nil in
    Array.blit t.hkey 0 hkey 0 t.size;
    Array.blit t.hev 0 hev 0 t.size;
    t.hkey <- hkey;
    t.hev <- hev
  end;
  t.size <- t.size + 1;
  sift_up t.hkey t.hev (t.size - 1) (Array.unsafe_get t.store (ev + f_key)) ev

(* Heap-only pop; requires [t.size > 0]. *)
let heap_pop t =
  let top = Array.unsafe_get t.hev 0 in
  t.size <- t.size - 1;
  if t.size > 0 then
    sift_down t.hkey t.hev t.size 0
      (Array.unsafe_get t.hkey t.size)
      (Array.unsafe_get t.hev t.size);
  top

(* Merged pop over heap + ring in (time, seq) order; [nil] when empty. On
   an equal-time tie the heap event goes first: it was necessarily
   scheduled at a strictly earlier instant (ring-eligibility is [time -
   now < ring_size], so for one target time the far/heap push happened at
   a smaller [now] than any ring push), hence it carries the smaller seq. *)
let pop t =
  if t.ring_count = 0 then begin
    if t.size = 0 then nil else heap_pop t
  end
  else if t.size = 0 then ring_pop t (ring_earliest t)
  else begin
    let rt = ring_earliest t in
    if key_time (Array.unsafe_get t.hkey 0) <= rt then heap_pop t
    else ring_pop t rt
  end

(* Earliest pending time across heap and ring; [max_int] when empty. *)
let peek_time t =
  let h = if t.size = 0 then max_int else key_time (Array.unsafe_get t.hkey 0) in
  if t.ring_count = 0 then h
  else begin
    let rt = ring_earliest t in
    if h < rt then h else rt
  end

let set_chooser t ?(horizon = 0) choose =
  if horizon < 0 then invalid_arg "Engine.set_chooser: negative horizon";
  t.chooser <- Some choose;
  t.horizon <- horizon;
  (* Chooser mode is pure-heap ([pop_chosen] peeks the heap top directly),
     so migrate anything already sitting in the ring. *)
  drain_ring_to_push t (push t)

let clear_chooser t =
  t.chooser <- None;
  t.horizon <- 0

(* ----- sequence renumbering -----

   [seq] identifies insertion order among same-time events. Once the field
   saturates, renumber every pending event (ring included) 0..n-1 in key
   order: relative order (hence behaviour) is unchanged, and a sorted array
   is already a valid min-heap. The ring is left empty — events re-enter it
   as they are scheduled. Rare (every 33M schedules), so the scratch pair
   array is allocated freely. *)
let renumber t =
  drain_ring_to_push t (push t);
  (* The renumbered seqs are 0..size-1 and the next fresh seq is [size];
     with [size >= seq_mask] those would overflow into the time bits of the
     packed key, silently corrupting heap order. Unreachable below ~33M
     simultaneously-pending events, but fail loudly rather than corrupt. *)
  if t.size >= seq_mask then
    invalid_arg
      (Printf.sprintf
         "Engine: %d pending events exceed the %d-bit sequence field" t.size
         seq_bits);
  let live = Array.init t.size (fun i -> (t.hkey.(i), t.hev.(i))) in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) live;
  Array.iteri
    (fun i (key, ev) ->
      let key = (key_time key lsl seq_bits) lor i in
      t.store.(ev + f_key) <- key;
      t.hkey.(i) <- key;
      t.hev.(i) <- ev)
    live;
  t.seq <- t.size

(* ----- scheduling ----- *)

let fresh_key t ~time =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time t.now);
  if time > max_time then
    invalid_arg (Printf.sprintf "Engine.schedule_at: time %d overflows the clock" time);
  if t.seq >= seq_mask then renumber t;
  let key = (time lsl seq_bits) lor t.seq in
  t.seq <- t.seq + 1;
  key

let enqueue t ~time ev =
  match t.chooser with
  | None when time - t.now < ring_size -> ring_append t ~time ev
  | _ -> push t ev

let schedule_at t ~time run =
  let key = fresh_key t ~time in
  enqueue t ~time (alloc t ~key ~tag:(-1) ~a:0 ~b:(cls_alloc t run))

let schedule t ~delay run =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) run

let schedule_tag_at t ~time ~tag ~a ~b =
  if tag < 0 || tag >= t.n_handlers then
    invalid_arg "Engine.schedule_tag: unregistered tag";
  let key = fresh_key t ~time in
  enqueue t ~time (alloc t ~key ~tag ~a ~b)

let schedule_tag t ~delay ~tag ~a ~b =
  if delay < 0 then invalid_arg "Engine.schedule_tag: negative delay";
  schedule_tag_at t ~time:(t.now + delay) ~tag ~a ~b

let schedule_cancellable t ~delay run =
  if delay < 0 then invalid_arg "Engine.schedule_cancellable: negative delay";
  let time = t.now + delay in
  let key = fresh_key t ~time in
  let ev = alloc t ~key ~tag:(-1) ~a:0 ~b:(cls_alloc t run) in
  enqueue t ~time ev;
  { h_base = ev; h_gen = t.store.(ev + f_gen) }

(* A cancelled event keeps its queue slot (timing of everything else is
   unchanged) but fires as a no-op and is recycled when popped. Stale
   handles — the event already fired, or fired and its row was recycled —
   are detected by the generation stamp and refused. *)
let cancel t h =
  let base = h.h_base in
  if t.store.(base + f_gen) <> h.h_gen || t.store.(base + f_tag) = -2 then false
  else begin
    (match t.store.(base + f_tag) with
    | -1 ->
        let (_ : unit -> unit) = cls_take t t.store.(base + f_b) in
        ()
    | _ -> ());
    t.store.(base + f_tag) <- -2;
    true
  end

(* Fast path for Process.delay: advance the clock without a suspend when no
   pending event falls inside the window (strictly — an event at exactly
   [now + cycles] predates the would-be resume in seq order). *)
let try_advance t ~cycles =
  match t.chooser with
  | Some _ -> false
  | None ->
      if cycles < 0 then invalid_arg "Engine.try_advance: negative cycles";
      (* [cycles <= max_time - t.now] (overflow-safe: both sides are
         non-negative ints) keeps [now] inside the packed key's time field.
         Past that, decline the fast path so the slow path's [schedule_at]
         reports the clock overflow instead of [now] silently wrapping into
         the seq bits. *)
      if cycles <= max_time - t.now && peek_time t > t.now + cycles then begin
        t.now <- t.now + cycles;
        t.advances <- t.advances + 1;
        true
      end
      else false

(* Run one popped event and recycle its row. The release happens before
   the callback runs: the row is already unlinked from every queue, so the
   callback is free to schedule (and immediately reuse the row). A
   cancelled event recycles without running or counting. *)
let dispatch t base =
  let s = t.store in
  let tag = Array.unsafe_get s (base + f_tag) in
  let a = Array.unsafe_get s (base + f_a) in
  let b = Array.unsafe_get s (base + f_b) in
  release t base;
  if tag >= 0 then begin
    t.events_run <- t.events_run + 1;
    (Array.unsafe_get t.handlers tag) a b
  end
  else if tag = -1 then begin
    let f = cls_take t b in
    t.events_run <- t.events_run + 1;
    f ()
  end

(* With a chooser installed, every set of events falling inside the
   concurrency horizon is a scheduling decision point: the chooser picks
   which fires next. Events run in seq order within the chosen one's
   timestamp; the clock is clamped monotone (an event overtaken by a later
   one from the window runs "late" at the current time). Without a chooser
   this is the plain deterministic (time, seq) order. *)
let pop_chosen t choose =
  let first = pop t in
  if first = nil then nil
  else begin
    let cutoff = key_time t.store.(first + f_key) + t.horizon in
    let buf = ref [| first |] in
    let n = ref 1 in
    let continue = ref true in
    while !continue do
      if t.size > 0 && key_time t.hkey.(0) <= cutoff then begin
        let ev = pop t in
        if !n = Array.length !buf then begin
          let bigger = Array.make (2 * !n) nil in
          Array.blit !buf 0 bigger 0 !n;
          buf := bigger
        end;
        !buf.(!n) <- ev;
        incr n
      end
      else continue := false
    done;
    if !n = 1 then first
    else begin
      let i = choose !n in
      let i = if i < 0 || i >= !n then 0 else i in
      for j = 0 to !n - 1 do
        if j <> i then push t !buf.(j)
      done;
      !buf.(i)
    end
  end

let step t =
  let ev = match t.chooser with None -> pop t | Some choose -> pop_chosen t choose in
  if ev = nil then false
  else begin
    let time = key_time (Array.unsafe_get t.store (ev + f_key)) in
    if time > t.now then t.now <- time;
    dispatch t ev;
    true
  end

(* The chooser-free branch drains the queues without going through
   [step]/[pop]'s per-event branching. When the front of the queue is a
   ring slot and the heap cannot interleave (its top is strictly later),
   the whole slot is drained in place — the common "many events this
   cycle" case pays the ring/heap comparison, the [ring_earliest] scan,
   and the outer dispatch branch once per cycle instead of once per
   event. This is order-exact: with no chooser, a schedule issued during
   the drain targets either this same instant — it lands at the tail of
   this very slot with a strictly larger seq and is drained in turn — or
   a strictly later time; and the heap only ever gains later times too (a
   near-future schedule goes to the ring, a far one is ≥ ring_size cycles
   away). The two events that can move ring events into the heap
   mid-drain, [set_chooser] and [renumber], both empty the slot through
   [drain_ring_to_push], which terminates the inner loop with every count
   intact. The [t.now = rt] guard covers the one remaining wrinkle: while
   the slot is non-empty [try_advance] cannot move the clock ([peek_time]
   = rt = now), but once a callback has emptied the slot it may advance
   the clock and then schedule an event exactly [ring_size] cycles past
   [rt] — same slot, later time — which must go back through the outer
   loop's time bookkeeping. The chooser is still consulted per event so
   installing one mid-run behaves exactly as it did through [step]. *)
let run t =
  let continue = ref true in
  while !continue do
    match t.chooser with
    | Some _ -> continue := step t
    | None ->
        if t.ring_count = 0 && t.size = 0 then continue := false
        else begin
          let use_heap =
            t.ring_count = 0
            || t.size > 0
               && key_time (Array.unsafe_get t.hkey 0) <= ring_earliest t
          in
          if use_heap then begin
            let ev = heap_pop t in
            let time = key_time (Array.unsafe_get t.store (ev + f_key)) in
            if time > t.now then t.now <- time;
            dispatch t ev
          end
          else begin
            let rt = ring_earliest t in
            if rt > t.now then t.now <- rt;
            let slot = rt land (ring_size - 1) in
            while
              Array.unsafe_get t.ring slot >= 0
              && t.now = rt
              && match t.chooser with None -> true | Some _ -> false
            do
              dispatch t (ring_pop t rt)
            done
          end
        end
  done

let run_until t ~time =
  if time > max_time then
    invalid_arg (Printf.sprintf "Engine.run_until: time %d overflows the clock" time);
  let continue = ref true in
  while !continue do
    if peek_time t > time then continue := false else ignore (step t)
  done;
  if t.now < time && t.ring_count = 0 && t.size = 0 then t.now <- time
