(** Discrete-event simulation engine.

    Time is a monotonically increasing integer cycle counter. Events
    scheduled for the same instant fire in insertion order, which makes every
    simulation deterministic. *)

type t

val create : unit -> t

(** Current simulated time in cycles. *)
val now : t -> int

(** Number of events executed so far. *)
val events_run : t -> int

(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative. *)
val schedule : t -> delay:int -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute [time]; raises
    [Invalid_argument] if [time] is in the past. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** Execute the earliest pending event. Returns [false] when none remain. *)
val step : t -> bool

(** Run until no events remain. *)
val run : t -> unit

(** Run until the queue is empty or the clock passes [time]. Events at
    exactly [time] are executed. *)
val run_until : t -> time:int -> unit

(** Pending event count. *)
val pending : t -> int

(** Install a scheduling chooser: whenever more than one pending event falls
    within [horizon] cycles of the earliest one, [choose n] is called with
    the candidate count and returns the index (in (time, seq) order) of the
    event to fire next; out-of-range answers fall back to 0. The clock is
    clamped monotone, so choosing a later candidate makes overtaken events
    run "late" at the current time — the interleaving explorer's model of
    timing variance. No chooser (the default) is the strict deterministic
    (time, seq) order with zero overhead. *)
val set_chooser : t -> ?horizon:int -> (int -> int) -> unit

val clear_chooser : t -> unit
