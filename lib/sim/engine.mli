(** Discrete-event simulation engine.

    Time is a monotonically increasing integer cycle counter. Events
    scheduled for the same instant fire in insertion order, which makes every
    simulation deterministic.

    Internally the priority key packs [(time, seq)] into a single int, so
    heap ordering is one native comparison; see the implementation notes.
    Simulated time may not exceed [2^38] cycles (ample: the full paper
    evaluation stays below [2^31]). *)

type t

val create : unit -> t

(** Current simulated time in cycles. *)
val now : t -> int

(** Largest representable simulated time ([2^38 - 1] cycles with the
    current packing). [schedule]/[schedule_at] reject later times, and the
    [try_advance] fast path declines to move [now] past it, so the packed
    key's time field can never wrap into the sequence bits. *)
val max_time : int

(** Number of events executed so far. *)
val events_run : t -> int

(** Number of suspend-free clock advances (the [try_advance] fast path). *)
val advances : t -> int

(** Engine operations so far: [events_run + advances]. Per-engine by
    design — each simulation run owns its engine, so a harness attributes
    ops to a run by reading this after the run and sums across runs at
    reduce time. There is no process-wide counter: a global meter would
    force perf attribution to run one experiment at a time and would
    report 0 for experiments that reuse memoized results. *)
val ops : t -> int

(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative. *)
val schedule : t -> delay:int -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute [time]; raises
    [Invalid_argument] if [time] is in the past. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** {2 Tagged dispatch}

    Event records are pooled and recycled internally, so [schedule] is
    already allocation-free at steady state apart from its closure. Hot
    callers that schedule the same logical callback over and over (a
    process's sleep-resume, APIC IPI delivery, deferred TLB flushes)
    additionally avoid the closure: register a handler once, then schedule
    by integer tag with two unboxed [int] arguments stored in the pooled
    event itself. *)

(** [register_handler t f] installs [f] in the engine's dispatch table and
    returns its tag. Tags are small dense ints (released tags are reused). *)
val register_handler : t -> (int -> int -> unit) -> int

(** Release a tag for reuse. The caller must ensure no event carrying the
    tag is still pending — the slot may be reassigned by the next
    [register_handler], and a stale event would dispatch to the wrong
    handler. (Dispatching a released-but-unreassigned tag raises.) *)
val release_handler : t -> int -> unit

(** [schedule_tag t ~delay ~tag ~a ~b] runs [handler a b] at
    [now t + delay], where [handler] is the function registered under
    [tag]. Raises [Invalid_argument] on a negative delay or a tag that was
    never registered. Allocation-free at steady state. *)
val schedule_tag : t -> delay:int -> tag:int -> a:int -> b:int -> unit

(** [schedule_tag_at] is [schedule_tag] with an absolute time. *)
val schedule_tag_at : t -> time:int -> tag:int -> a:int -> b:int -> unit

(** {2 Cancellation} *)

(** A stamped reference to a scheduled event. Handles are generation
    stamped against the event pool: once the event has fired (or fired and
    its record was recycled into a new event), the handle goes stale and
    [cancel] refuses it. *)
type handle

(** Like [schedule], returning a handle for [cancel]. *)
val schedule_cancellable : t -> delay:int -> (unit -> unit) -> handle

(** [cancel t h] prevents the event behind [h] from running, returning
    [true] if it was still pending. A cancelled event keeps its queue slot
    — no other event's timing changes — but fires as a no-op (not counted
    in [events_run]) and its record is recycled. Returns [false] for a
    stale handle or an already-cancelled event; never fires a callback
    either way. *)
val cancel : t -> handle -> bool

(** [try_advance t ~cycles] advances the clock by [cycles] and returns
    [true] iff no pending event would fire at or before the new time and no
    chooser is installed. Used by [Process.delay] to skip the
    suspend/reschedule round-trip for uncontended sleeps; behaviour is
    identical either way. *)
val try_advance : t -> cycles:int -> bool

(** Execute the earliest pending event. Returns [false] when none remain. *)
val step : t -> bool

(** Run until no events remain. *)
val run : t -> unit

(** Run until the queue is empty or the clock passes [time]. Events at
    exactly [time] are executed. *)
val run_until : t -> time:int -> unit

(** Pending event count. *)
val pending : t -> int

(** Name of the cooperative process currently executing on this engine
    ("main" outside any process). Maintained by {!Process}; lives on the
    engine rather than in a global so independent machines can run on
    separate domains. *)
val current_name : t -> string

val set_current_name : t -> string -> unit

(** Install a scheduling chooser: whenever more than one pending event falls
    within [horizon] cycles of the earliest one, [choose n] is called with
    the candidate count and returns the index (in (time, seq) order) of the
    event to fire next; out-of-range answers fall back to 0. The clock is
    clamped monotone, so choosing a later candidate makes overtaken events
    run "late" at the current time — the interleaving explorer's model of
    timing variance. No chooser (the default) is the strict deterministic
    (time, seq) order with zero overhead. While a chooser is installed the
    {!try_advance} fast path is disabled, so the explorer sees every
    scheduling decision point. *)
val set_chooser : t -> ?horizon:int -> (int -> int) -> unit

val clear_chooser : t -> unit
