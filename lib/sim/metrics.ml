(* Labeled metric series: a registry of (name, labels) -> Stats.t +
   fixed-bucket histogram, with deterministic merge and export.

   Design constraints (DESIGN.md §10):
   - Recording must be free when metering is off: every series shares the
     registry's [on] flag and [record]/[record_cycles] test it before
     touching the accumulators. [record_cycles] takes an [int] so the
     disabled path never boxes a float.
   - Merging must be commutative-enough for the plan-order reduce in
     Workloads.Shard: every shard pre-registers the same series in the
     same order (Machine.create does this), and [merge_into] walks the
     source in registration order, so the merged registry's series order —
     and therefore every export — is a pure function of the plan.
   - Exports sort by (name, labels) so output is independent of
     registration order anyway; registration order only decides merge
     iteration, which is order-insensitive for Stats/Histogram merges up
     to float rounding (and the plan-order reduce fixes even that). *)

type series = {
  name : string;
  labels : (string * string) list; (* sorted by label key *)
  key : string;
  stats : Stats.t;
  hist : Stats.Histogram.h;
  on : bool ref;
}

type t = {
  on : bool ref;
  tbl : (string, series) Hashtbl.t;
  mutable rev_series : series list; (* registration order, reversed *)
}

let create ?(enabled = true) () =
  { on = ref enabled; tbl = Hashtbl.create 64; rev_series = [] }

let set_enabled t v = t.on := v
let enabled t = !(t.on)

let render_key name labels =
  let b = Buffer.create 64 in
  Buffer.add_string b name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\x00';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    labels;
  Buffer.contents b

let series t ~name ?(labels = []) ~lo ~hi ~buckets () =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let key = render_key name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some s ->
      if (not (Float.equal (Stats.Histogram.lo s.hist) lo))
         || (not (Float.equal (Stats.Histogram.hi s.hist) hi))
         || Stats.Histogram.buckets s.hist <> buckets
      then invalid_arg ("Metrics.series: conflicting histogram config for " ^ key);
      s
  | None ->
      let s =
        {
          name;
          labels;
          key;
          stats = Stats.create ();
          hist = Stats.Histogram.create ~lo ~hi ~buckets;
          on = t.on;
        }
      in
      Hashtbl.add t.tbl key s;
      t.rev_series <- s :: t.rev_series;
      s

let[@inline] record (s : series) v =
  if !(s.on) then begin
    Stats.add s.stats v;
    Stats.Histogram.add s.hist v
  end

let[@inline] record_cycles (s : series) c =
  if !(s.on) then record s (float_of_int c)
let stats s = s.stats
let hist s = s.hist
let series_name s = s.name
let series_labels s = s.labels

let all t = List.rev t.rev_series

let sorted_all t =
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> String.compare a.key b.key
      | c -> c)
    (all t)

(* Merge [src] into [dst], registering any series [dst] lacks (with the
   source's histogram config). Walks [src] in registration order so that
   identically-registered registries merge into identical registries. *)
let merge_into dst src =
  List.iter
    (fun s ->
      let d =
        series dst ~name:s.name ~labels:s.labels ~lo:(Stats.Histogram.lo s.hist)
          ~hi:(Stats.Histogram.hi s.hist)
          ~buckets:(Stats.Histogram.buckets s.hist)
          ()
      in
      Stats.merge_into d.stats s.stats;
      Stats.Histogram.merge_into d.hist s.hist)
    (all src)

(* --- exports --- *)

(* Deterministic float rendering: shortest round-trip decimal would be
   ideal but %.17g is noisy; cycle counts and their percentiles fit
   comfortably in %.6g without collisions at the scales we measure. *)
let fstr v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float_opt = function None -> "null" | Some v -> fstr v

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": 1,\n  \"series\": [\n";
  let first = ref true in
  List.iter
    (fun s ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b "    {";
      Buffer.add_string b (Printf.sprintf "\"metric\": \"%s\"" (json_escape s.name));
      Buffer.add_string b ", \"labels\": {";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
        s.labels;
      Buffer.add_string b "}";
      let st = s.stats in
      Buffer.add_string b (Printf.sprintf ", \"count\": %d" (Stats.count st));
      Buffer.add_string b (Printf.sprintf ", \"sum\": %s" (fstr (Stats.total st)));
      Buffer.add_string b (Printf.sprintf ", \"mean\": %s" (fstr (Stats.mean st)));
      Buffer.add_string b (Printf.sprintf ", \"stddev\": %s" (fstr (Stats.stddev st)));
      Buffer.add_string b
        (Printf.sprintf ", \"min\": %s" (json_float_opt (Stats.min_opt st)));
      Buffer.add_string b
        (Printf.sprintf ", \"p50\": %s" (json_float_opt (Stats.percentile_opt st 50.0)));
      Buffer.add_string b
        (Printf.sprintf ", \"p90\": %s" (json_float_opt (Stats.percentile_opt st 90.0)));
      Buffer.add_string b
        (Printf.sprintf ", \"p99\": %s" (json_float_opt (Stats.percentile_opt st 99.0)));
      Buffer.add_string b
        (Printf.sprintf ", \"max\": %s" (json_float_opt (Stats.max_opt st)));
      let h = s.hist in
      Buffer.add_string b
        (Printf.sprintf ", \"histogram\": {\"lo\": %s, \"hi\": %s, \"counts\": ["
           (fstr (Stats.Histogram.lo h))
           (fstr (Stats.Histogram.hi h)));
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (string_of_int c))
        (Stats.Histogram.counts h);
      Buffer.add_string b
        (Printf.sprintf "], \"underflow\": %d, \"overflow\": %d, \"nan\": %d}"
           (Stats.Histogram.underflow h)
           (Stats.Histogram.overflow h)
           (Stats.Histogram.nan_count h));
      Buffer.add_string b "}")
    (sorted_all t);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_label_str labels extra =
  let parts =
    List.map
      (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (prom_name k) (json_escape v))
      labels
    @ extra
  in
  match parts with [] -> "" | _ -> "{" ^ String.concat "," parts ^ "}"

let to_prometheus ?(prefix = "tlbsim_") t =
  let b = Buffer.create 4096 in
  let groups = sorted_all t in
  let seen_type = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let m = prom_name (prefix ^ s.name) in
      if not (Hashtbl.mem seen_type m) then begin
        Hashtbl.add seen_type m ();
        Buffer.add_string b
          (Printf.sprintf "# HELP %s Simulated cycle distribution for %s.\n" m s.name);
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m)
      end;
      let h = s.hist in
      let counts = Stats.Histogram.counts h in
      let lo = Stats.Histogram.lo h and n = Array.length counts in
      let width = (Stats.Histogram.hi h -. lo) /. float_of_int n in
      (* Cumulative buckets: underflow lands in every bucket (every sample
         below [lo] is ≤ each upper edge); overflow and NaN only in +Inf. *)
      let cum = ref (Stats.Histogram.underflow h) in
      for i = 0 to n - 1 do
        cum := !cum + counts.(i);
        let le = lo +. (float_of_int (i + 1) *. width) in
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" m
             (prom_label_str s.labels [ Printf.sprintf "le=\"%s\"" (fstr le) ])
             !cum)
      done;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket%s %d\n" m
           (prom_label_str s.labels [ "le=\"+Inf\"" ])
           (Stats.Histogram.total h));
      Buffer.add_string b
        (Printf.sprintf "%s_sum%s %s\n" m (prom_label_str s.labels [])
           (fstr (Stats.total s.stats)));
      Buffer.add_string b
        (Printf.sprintf "%s_count%s %d\n" m (prom_label_str s.labels [])
           (Stats.count s.stats)))
    groups;
  Buffer.contents b

let pp_table fmt t =
  let label_str s =
    String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) s.labels)
  in
  let rows =
    List.map
      (fun s ->
        let st = s.stats in
        let cell o = match o with None -> "-" | Some v -> fstr v in
        ( s.name,
          label_str s,
          string_of_int (Stats.count st),
          (if Stats.count st = 0 then "-" else fstr (Stats.mean st)),
          cell (Stats.percentile_opt st 50.0),
          cell (Stats.percentile_opt st 99.0),
          cell (Stats.max_opt st),
          let h = s.hist in
          let u = Stats.Histogram.underflow h and o = Stats.Histogram.overflow h in
          if u = 0 && o = 0 then "" else Printf.sprintf "u=%d o=%d" u o ))
      (sorted_all t)
  in
  let headers = ("metric", "labels", "n", "mean", "p50", "p99", "max", "of-range") in
  let w f =
    let h1, h2, h3, h4, h5, h6, h7, h8 = headers in
    List.fold_left
      (fun acc r -> Stdlib.max acc (String.length (f r)))
      (String.length (f (h1, h2, h3, h4, h5, h6, h7, h8)))
      rows
  in
  let g1 (x, _, _, _, _, _, _, _) = x
  and g2 (_, x, _, _, _, _, _, _) = x
  and g3 (_, _, x, _, _, _, _, _) = x
  and g4 (_, _, _, x, _, _, _, _) = x
  and g5 (_, _, _, _, x, _, _, _) = x
  and g6 (_, _, _, _, _, x, _, _) = x
  and g7 (_, _, _, _, _, _, x, _) = x
  and g8 (_, _, _, _, _, _, _, x) = x in
  let w1 = w g1 and w2 = w g2 and w3 = w g3 and w4 = w g4 in
  let w5 = w g5 and w6 = w g6 and w7 = w g7 and w8 = w g8 in
  let line r =
    Format.fprintf fmt "%-*s  %-*s  %*s  %*s  %*s  %*s  %*s  %-*s@." w1 (g1 r) w2
      (g2 r) w3 (g3 r) w4 (g4 r) w5 (g5 r) w6 (g6 r) w7 (g7 r) w8 (g8 r)
  in
  let h1, h2, h3, h4, h5, h6, h7, h8 = headers in
  line (h1, h2, h3, h4, h5, h6, h7, h8);
  List.iter line rows
