(** Labeled metric series with deterministic merge and export.

    A registry maps (metric name, sorted label set) to a {!Stats.t} plus a
    fixed-bucket {!Stats.Histogram.h}. The shootdown phase-latency
    instrumentation (DESIGN.md §10) records cycle costs here, gated on a
    single [enabled] flag shared by every series so that a disabled
    registry costs one load+branch per call site and allocates nothing.

    Merge/export determinism contract: shards that pre-register the same
    series in the same order (Machine.create does) and are merged in plan
    order produce byte-identical exports at any worker count. Exports sort
    series by (name, labels). *)

type t
type series

(** [create ()] starts enabled; pass [~enabled:false] for a registry whose
    [record] calls are no-ops until {!set_enabled}. *)
val create : ?enabled:bool -> unit -> t

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** [series t ~name ?labels ~lo ~hi ~buckets ()] registers (or fetches —
    idempotent) the series for [name] with [labels] (sorted internally)
    and a histogram over [\[lo, hi)]. Raises [Invalid_argument] when an
    existing series has a different histogram configuration. *)
val series :
  t ->
  name:string ->
  ?labels:(string * string) list ->
  lo:float ->
  hi:float ->
  buckets:int ->
  unit ->
  series

(** Record one sample; no-op (and allocation-free) when disabled. *)
val record : series -> float -> unit

(** [record_cycles s c] records an integer cycle count. The int→float
    conversion happens after the enabled check, so a disabled registry
    never boxes. *)
val record_cycles : series -> int -> unit

val stats : series -> Stats.t
val hist : series -> Stats.Histogram.h
val series_name : series -> string
val series_labels : series -> (string * string) list

(** Registration order. *)
val all : t -> series list

(** Merge [src]'s accumulators into [dst], registering any series [dst]
    lacks. Walks [src] in registration order; see the determinism
    contract above. *)
val merge_into : t -> t -> unit

(** JSON document (schema 1): sorted series with count/sum/moments,
    p50/p90/p99 ([null] when empty), and histogram counts with explicit
    underflow/overflow/nan. *)
val to_json : t -> string

(** Prometheus text exposition format, one histogram family per metric
    name. Bucket counts are cumulative; underflow samples are included in
    every bucket (they are ≤ each upper edge) and overflow/NaN only in
    [le="+Inf"]. [prefix] defaults to ["tlbsim_"]. *)
val to_prometheus : ?prefix:string -> t -> string

(** Aligned ASCII table: metric, labels, n, mean, p50, p99, max, and
    out-of-range counts. *)
val pp_table : Format.formatter -> t -> unit
