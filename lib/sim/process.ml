open Effect
open Effect.Deep

exception Process_failure of string * exn

let () =
  Printexc.register_printer (function
    | Process_failure (name, inner) ->
        Some (Printf.sprintf "Process %S failed: %s" name (Printexc.to_string inner))
    | _ -> None)

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Sleep : int -> unit Effect.t
        (* [Sleep cycles] = [Suspend (fun r -> Engine.schedule ~delay:cycles r)]
           minus two allocations: no [register] closure, and no double-resume
           guard — the engine fires a scheduled event exactly once. Delays are
           the dominant suspension in spin-heavy benches, so the slimmer path
           pays for the extra constructor. *)

let self_name engine = Engine.current_name engine

let suspend register = perform (Suspend register)

let spawn engine ~name f =
  let body () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise (Process_failure (name, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let resumed = ref false in
                    let resume () =
                      if !resumed then
                        invalid_arg
                          (Printf.sprintf "Process %s resumed twice" name);
                      resumed := true;
                      let saved = Engine.current_name engine in
                      Engine.set_current_name engine name;
                      (* Restore by hand instead of Fun.protect: this runs
                         once per resumed suspension, squarely on the hot
                         path, and the protect pair is two allocations. *)
                      match continue k () with
                      | () -> Engine.set_current_name engine saved
                      | exception e ->
                          Engine.set_current_name engine saved;
                          raise e
                    in
                    register resume)
            | Sleep cycles ->
                Some
                  (fun (k : (a, _) continuation) ->
                    Engine.schedule engine ~delay:cycles (fun () ->
                        let saved = Engine.current_name engine in
                        Engine.set_current_name engine name;
                        match continue k () with
                        | () -> Engine.set_current_name engine saved
                        | exception e ->
                            Engine.set_current_name engine saved;
                            raise e))
            | _ -> None);
      }
  in
  Engine.schedule engine ~delay:0 (fun () ->
      let saved = Engine.current_name engine in
      Engine.set_current_name engine name;
      match body () with
      | () -> Engine.set_current_name engine saved
      | exception e ->
          Engine.set_current_name engine saved;
          raise e)

let delay engine cycles =
  if cycles < 0 then invalid_arg "Process.delay: negative delay";
  if cycles = 0 || Engine.try_advance engine ~cycles then ()
  else perform (Sleep cycles)

let yield engine =
  if Engine.try_advance engine ~cycles:0 then () else perform (Sleep 0)
