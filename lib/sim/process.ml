open Effect
open Effect.Deep

exception Process_failure of string * exn

let () =
  Printexc.register_printer (function
    | Process_failure (name, inner) ->
        Some (Printf.sprintf "Process %S failed: %s" name (Printexc.to_string inner))
    | _ -> None)

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Sleep : int -> unit Effect.t
        (* [Sleep cycles] = [Suspend (fun r -> Engine.schedule ~delay:cycles r)]
           minus the allocations: no [register] closure, no per-sleep resume
           closure (the process registers one engine handler at spawn and
           sleeps by tag), and no double-resume guard — the engine fires a
           scheduled event exactly once, and a spurious second resume finds
           the continuation slot empty and raises. Delays are the dominant
           suspension in spin-heavy benches, so the slimmer path pays for
           the extra constructor. *)
  | Tick : int * (unit -> int) -> unit Effect.t
        (* [Tick (first, step)]: sleep [first] cycles, then consult [step]
           at that boundary — and at each subsequent one — from inside the
           engine handler. [step () = 0] resumes the process at the current
           boundary; [step () = d] sleeps [d] more cycles without resuming.
           One effect suspension thus spans an arbitrary run of idle poll
           ticks: every boundary is still its own engine event at exactly
           the time a chain of [delay]s would produce (so event counts,
           timestamps and seq order are unchanged), but an idle boundary
           re-arms allocation-free instead of paying a continuation
           resume+capture round trip. Spin-wait loops are mostly idle
           boundaries, which makes this the difference between the
           simulation allocating per poll tick and not allocating at all. *)

let self_name engine = Engine.current_name engine

let suspend register = perform (Suspend register)

let spawn engine ~name f =
  (* One resume handler per process, registered once: a sleep parks the
     continuation in [kslot] and schedules a pooled tag event — nothing is
     allocated per sleep beyond the [Some] box. The tag is released when
     the process completes (it cannot be sleeping while it runs, so no
     event can still carry the tag). *)
  let kslot : (unit, unit) continuation option ref = ref None in
  let stepslot : (unit -> int) option ref = ref None in
  let resume () =
    match !kslot with
    | None -> invalid_arg (Printf.sprintf "Process %s resumed twice" name)
    | Some k ->
        kslot := None;
        let saved = Engine.current_name engine in
        Engine.set_current_name engine name;
        (* Restore by hand instead of Fun.protect: this runs once per
           resumed suspension, squarely on the hot path, and the
           protect pair is two allocations. *)
        (match continue k () with
        | () -> Engine.set_current_name engine saved
        | exception e ->
            Engine.set_current_name engine saved;
            raise e)
  in
  (* Drive one poll boundary of a [Tick] suspension. Mirrors what the
     resumed process itself would do after a plain sleep: consult the
     condition, and either continue (here: [resume]), skip ahead through an
     empty window ([try_advance], exactly like [delay]'s fast path), or
     schedule the next boundary. [tag] rides in the event's [b] argument so
     this function needs no back-reference to it. *)
  let rec tick step b =
    let d = step () in
    if d = 0 then begin
      stepslot := None;
      resume ()
    end
    else if d < 0 then invalid_arg "Process.tick_sleep: negative interval"
    else if Engine.try_advance engine ~cycles:d then tick step b
    else Engine.schedule_tag engine ~delay:d ~tag:b ~a:1 ~b
  in
  let tag =
    Engine.register_handler engine (fun a b ->
        if a = 0 then resume ()
        else
          match !stepslot with
          | None ->
              invalid_arg (Printf.sprintf "Process %s: tick without a step" name)
          | Some step -> tick step b)
  in
  let body () =
    match_with f ()
      {
        retc = (fun () -> Engine.release_handler engine tag);
        exnc =
          (fun e ->
            Engine.release_handler engine tag;
            raise (Process_failure (name, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let resumed = ref false in
                    let resume () =
                      if !resumed then
                        invalid_arg
                          (Printf.sprintf "Process %s resumed twice" name);
                      resumed := true;
                      let saved = Engine.current_name engine in
                      Engine.set_current_name engine name;
                      match continue k () with
                      | () -> Engine.set_current_name engine saved
                      | exception e ->
                          Engine.set_current_name engine saved;
                          raise e
                    in
                    register resume)
            | Sleep cycles ->
                Some
                  (fun (k : (a, _) continuation) ->
                    kslot := Some k;
                    Engine.schedule_tag engine ~delay:cycles ~tag ~a:0 ~b:0)
            | Tick (first, step) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    kslot := Some k;
                    stepslot := Some step;
                    Engine.schedule_tag engine ~delay:first ~tag ~a:1 ~b:tag)
            | _ -> None);
      }
  in
  Engine.schedule engine ~delay:0 (fun () ->
      let saved = Engine.current_name engine in
      Engine.set_current_name engine name;
      match body () with
      | () -> Engine.set_current_name engine saved
      | exception e ->
          Engine.set_current_name engine saved;
          raise e)

let delay engine cycles =
  if cycles < 0 then invalid_arg "Process.delay: negative delay";
  if cycles = 0 || Engine.try_advance engine ~cycles then ()
  else perform (Sleep cycles)

let tick_sleep engine ~first step =
  if first <= 0 then invalid_arg "Process.tick_sleep: nonpositive first interval";
  (* Fast path, identical to [delay]'s: while the window ahead is empty,
     advance the clock synchronously and consult [step] without ever
     suspending. Only when another event interleaves does the span suspend —
     once — and hand the remaining boundaries to the spawn-registered tick
     handler. *)
  let rec fast d =
    if Engine.try_advance engine ~cycles:d then begin
      let d' = step () in
      if d' < 0 then invalid_arg "Process.tick_sleep: negative interval"
      else if d' > 0 then fast d'
    end
    else perform (Tick (d, step))
  in
  fast first

let yield engine =
  if Engine.try_advance engine ~cycles:0 then () else perform (Sleep 0)
