(** Direct-style simulated processes on top of OCaml 5 effect handlers.

    A process is ordinary OCaml code that may perform {!delay} and
    {!suspend}; the handler installed by {!spawn} turns those into engine
    events, so protocol code reads sequentially ("flush, then wait for the
    ack") while the engine interleaves many processes deterministically. *)

exception Process_failure of string * exn

(** A spawned process raised; carries the process name and the exception. *)

(** [spawn engine ~name f] starts [f] as a process at the current time.
    Exceptions escaping [f] are wrapped in {!Process_failure} and re-raised
    out of the engine loop. *)
val spawn : Engine.t -> name:string -> (unit -> unit) -> unit

(** Suspend the current process; [register resume] is called immediately and
    must arrange for [resume] to be invoked exactly once later (e.g. stash it
    in a wait queue or schedule it). Must only be called from process
    context. *)
val suspend : ((unit -> unit) -> unit) -> unit

(** Advance this process's local time by [cycles] (>= 0). When no pending
    event falls inside the window this is a plain clock bump
    ({!Engine.try_advance}) with no suspend; behaviour is identical either
    way. *)
val delay : Engine.t -> int -> unit

(** Re-enter the event queue at the current instant, letting other events at
    this time run first. *)
val yield : Engine.t -> unit

(** [tick_sleep engine ~first step] sleeps [first] cycles (> 0), then calls
    [step ()] at that boundary and at each subsequent one: a return of [0]
    resumes the process at the current boundary, [d > 0] sleeps [d] more
    cycles first. Behaviour — event times, event counts and same-cycle
    ordering — is exactly that of the equivalent chain of {!delay} calls
    re-checking a condition between sleeps, but a run of idle boundaries
    costs one effect suspension total instead of one continuation
    capture/resume (and its allocations) per boundary: idle boundaries are
    handled inside the engine event, allocation-free. [step] must be free
    of observable side effects when it returns nonzero (private cursor
    movement is fine), because the process is not resumed for that
    boundary. Must only be called from process context. *)
val tick_sleep : Engine.t -> first:int -> (unit -> int) -> unit

(** Name of the process currently running on [engine] ("main" outside any
    process). Per-engine rather than global so independent machines can run
    on separate domains. *)
val self_name : Engine.t -> string
