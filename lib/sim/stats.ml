(* Streaming moments are exact for any sample count; percentiles come from
   a retained-sample buffer that is exact up to [cap] samples and then
   degrades to a deterministic systematic subsample: when the buffer
   fills, every other retained sample is dropped and the retention stride
   doubles, so afterwards one of every [stride] incoming samples is kept.
   The subsample is a pure function of the input stream (no RNG), which
   keeps merged reports byte-identical across worker counts. *)

let default_cap = 8192

(* The running moments live in one flat float array rather than mutable
   record fields: this record mixes ints and floats, so its float fields
   would be boxed and every [add] would allocate a fresh box per updated
   field. A [float array] stores them unboxed — [add] is allocation-free. *)
let a_sum = 0
let a_mean = 1 (* Welford running mean *)
let a_m2 = 2 (* Welford sum of squared deviations *)
let a_min = 3
let a_max = 4

type t = {
  cap : int;
  mutable buf : float array; (* retained samples, insertion order *)
  mutable len : int;
  mutable stride : int; (* keep 1 of every [stride] incoming samples *)
  mutable pending : int; (* samples seen since the last retained one *)
  mutable n : int;
  acc : float array; (* unboxed moments, indexed by [a_*] *)
  mutable sorted_cache : float array option;
}

let fresh_acc () =
  let acc = Array.make 5 0.0 in
  acc.(a_min) <- infinity;
  acc.(a_max) <- neg_infinity;
  acc

let create ?(cap = default_cap) () =
  if cap < 2 then invalid_arg "Stats.create: cap must be at least 2";
  {
    cap;
    buf = [||];
    len = 0;
    stride = 1;
    pending = 0;
    n = 0;
    acc = fresh_acc ();
    sorted_cache = None;
  }

(* Halve the retained set in place (keep indices 0, 2, 4, ...) and double
   the stride. Deterministic: no randomness, order preserved. *)
let compact t =
  let kept = ref 0 in
  let i = ref 0 in
  while !i < t.len do
    t.buf.(!kept) <- t.buf.(!i);
    incr kept;
    i := !i + 2
  done;
  t.len <- !kept;
  t.stride <- t.stride * 2;
  t.pending <- 0

let retain t x =
  if t.len = Array.length t.buf then begin
    let grown = Stdlib.min t.cap (Stdlib.max 64 (2 * t.len)) in
    if grown > t.len then begin
      let buf' = Array.make grown 0.0 in
      Array.blit t.buf 0 buf' 0 t.len;
      t.buf <- buf'
    end
  end;
  if t.len = t.cap then compact t;
  t.buf.(t.len) <- x;
  t.len <- t.len + 1

let add t x =
  t.sorted_cache <- None;
  t.n <- t.n + 1;
  let acc = t.acc in
  acc.(a_sum) <- acc.(a_sum) +. x;
  (* Welford's online variance update. *)
  let delta = x -. acc.(a_mean) in
  acc.(a_mean) <- acc.(a_mean) +. (delta /. float_of_int t.n);
  acc.(a_m2) <- acc.(a_m2) +. (delta *. (x -. acc.(a_mean)));
  if x < acc.(a_min) then acc.(a_min) <- x;
  if x > acc.(a_max) then acc.(a_max) <- x;
  t.pending <- t.pending + 1;
  if t.pending >= t.stride then begin
    t.pending <- 0;
    retain t x
  end

let count t = t.n
let retained t = t.len
let exact_percentiles t = t.stride = 1
let total t = t.acc.(a_sum)
let mean t = if t.n = 0 then 0.0 else t.acc.(a_mean)
let stddev t = if t.n < 2 then 0.0 else sqrt (t.acc.(a_m2) /. float_of_int (t.n - 1))
let min_opt t = if t.n = 0 then None else Some t.acc.(a_min)
let max_opt t = if t.n = 0 then None else Some t.acc.(a_max)
let min t = if t.n = 0 then 0.0 else t.acc.(a_min)
let max t = if t.n = 0 then 0.0 else t.acc.(a_max)

let sorted t =
  match t.sorted_cache with
  | Some a -> a
  | None ->
      let a = Array.sub t.buf 0 t.len in
      (* Float.compare, not polymorphic compare: it is monomorphic (no
         per-element tag dispatch) and total on NaN, so a NaN sample can
         never make the sort order — and thus every percentile —
         unspecified. NaN sorts below every number. *)
      Array.sort Float.compare a;
      t.sorted_cache <- Some a;
      a

let percentile_opt t p =
  let a = sorted t in
  let n = Array.length a in
  if n = 0 then None
  else if n = 1 then Some a.(0)
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then Some a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      Some (a.(lo) +. (frac *. (a.(hi) -. a.(lo))))
    end
  end

let percentile t p = Option.value (percentile_opt t p) ~default:0.0
let median_opt t = percentile_opt t 50.0
let median t = percentile t 50.0

(* Chan et al.'s parallel-Welford combination: moments merge exactly (up
   to float rounding) without replaying [other]'s samples — which would be
   impossible anyway once [other] has thinned its retained buffer. The
   retained samples feed the percentile buffer through the normal
   retention path, in [other]'s insertion order, so the merged retained
   set is again a pure function of the inputs. *)
let merge_into t other =
  if other.n > 0 then begin
    t.sorted_cache <- None;
    let acc = t.acc and oacc = other.acc in
    let n1 = float_of_int t.n and n2 = float_of_int other.n in
    let n = n1 +. n2 in
    let delta = oacc.(a_mean) -. acc.(a_mean) in
    acc.(a_mean) <- acc.(a_mean) +. (delta *. n2 /. n);
    acc.(a_m2) <- acc.(a_m2) +. oacc.(a_m2) +. (delta *. delta *. n1 *. n2 /. n);
    t.n <- t.n + other.n;
    acc.(a_sum) <- acc.(a_sum) +. oacc.(a_sum);
    if oacc.(a_min) < acc.(a_min) then acc.(a_min) <- oacc.(a_min);
    if oacc.(a_max) > acc.(a_max) then acc.(a_max) <- oacc.(a_max);
    for i = 0 to other.len - 1 do
      t.pending <- t.pending + 1;
      if t.pending >= t.stride then begin
        t.pending <- 0;
        retain t other.buf.(i)
      end
    done
  end

let pp fmt t =
  if t.n = 0 then Format.pp_print_string fmt "n=0 (no samples)"
  else
    Format.fprintf fmt "n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p99=%.1f max=%.1f%s"
      (count t) (mean t) (stddev t) (min t) (median t) (percentile t 99.0) (max t)
      (if exact_percentiles t then "" else " (percentiles subsampled)")

module Histogram = struct
  type h = {
    lo : float;
    hi : float;
    width : float;
    bins : int array;
    mutable underflow : int;
    mutable overflow : int;
    mutable nans : int;
  }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    {
      lo;
      hi;
      width = (hi -. lo) /. float_of_int buckets;
      bins = Array.make buckets 0;
      underflow = 0;
      overflow = 0;
      nans = 0;
    }

  let bucket_of h x =
    if Float.is_nan x || x < h.lo || x >= h.hi then None
    else
      (* Values a rounding error below [hi] can compute index = buckets;
         clamp those into the last bin (they are in range by the test
         above). *)
      Some (Stdlib.min (Array.length h.bins - 1) (int_of_float ((x -. h.lo) /. h.width)))

  let add h x =
    match bucket_of h x with
    | Some b -> h.bins.(b) <- h.bins.(b) + 1
    | None ->
        (* Out-of-range samples must not be folded into the edge bins:
           that silently corrupts the tail buckets. Account explicitly. *)
        if Float.is_nan x then h.nans <- h.nans + 1
        else if x < h.lo then h.underflow <- h.underflow + 1
        else h.overflow <- h.overflow + 1

  let counts h = Array.copy h.bins
  let underflow h = h.underflow
  let overflow h = h.overflow
  let nan_count h = h.nans
  let lo h = h.lo
  let hi h = h.hi
  let buckets h = Array.length h.bins

  let total h =
    Array.fold_left ( + ) 0 h.bins + h.underflow + h.overflow + h.nans

  let merge_into dst src =
    if
      (not (Float.equal dst.lo src.lo))
      || (not (Float.equal dst.hi src.hi))
      || Array.length dst.bins <> Array.length src.bins
    then invalid_arg "Histogram.merge_into: bucket configurations differ";
    Array.iteri (fun i c -> dst.bins.(i) <- dst.bins.(i) + c) src.bins;
    dst.underflow <- dst.underflow + src.underflow;
    dst.overflow <- dst.overflow + src.overflow;
    dst.nans <- dst.nans + src.nans

  let pp fmt h =
    if h.underflow > 0 then Format.fprintf fmt "(-inf,%.0f): %d@." h.lo h.underflow;
    Array.iteri
      (fun i c ->
        let left = h.lo +. (float_of_int i *. h.width) in
        Format.fprintf fmt "[%.0f,%.0f): %d@." left (left +. h.width) c)
      h.bins;
    if h.overflow > 0 then Format.fprintf fmt "[%.0f,+inf): %d@." h.hi h.overflow;
    if h.nans > 0 then Format.fprintf fmt "NaN: %d@." h.nans
end
