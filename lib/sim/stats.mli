(** Streaming statistics and simple fixed-width histograms.

    Experiment drivers accumulate per-iteration cycle counts here and the
    reporting layer extracts mean / stddev / percentiles, mirroring the
    paper's "average and standard deviation of 5 executions" methodology.

    Moments (count/total/mean/stddev/min/max) are streaming and exact for
    any number of samples. Percentiles come from a bounded retained-sample
    buffer: exact up to [cap] samples (default 8192 — far above every
    existing experiment's iteration count), after which the buffer switches
    to a deterministic systematic subsample (every other retained sample is
    dropped and the retention stride doubles). The subsample is a pure
    function of the input stream, so sharded runs merge to byte-identical
    reports regardless of worker count. *)

type t

(** [create ()] uses the default retention cap (8192 samples);
    [~cap] overrides it (minimum 2). *)
val create : ?cap:int -> unit -> t

(** Record one sample. O(1) amortized; memory bounded by [cap]. *)
val add : t -> float -> unit

val count : t -> int

(** Number of samples currently retained for percentile estimation. *)
val retained : t -> int

(** [true] while no thinning has happened, i.e. percentiles are exact. *)
val exact_percentiles : t -> bool

val total : t -> float
val mean : t -> float

(** Sample standard deviation (Welford); 0 for fewer than two samples. *)
val stddev : t -> float

(** Smallest/largest sample; [None] when no samples were recorded. *)
val min_opt : t -> float option

val max_opt : t -> float option

(** Legacy accessors: return [0.0] for an empty series — indistinguishable
    from a real zero sample. Prefer {!min_opt}/{!max_opt} in new code. *)
val min : t -> float

val max : t -> float

(** [percentile_opt t p] for [p] in [\[0,100\]] (clamped); interpolates
    between retained samples. [None] when the series is empty. Exact while
    {!exact_percentiles} holds, an estimate over the deterministic
    subsample after. *)
val percentile_opt : t -> float -> float option

val median_opt : t -> float option

(** Legacy accessors: [0.0] on an empty series. Prefer the [_opt] forms. *)
val percentile : t -> float -> float

val median : t -> float

(** Merge the second accumulator into the first. Moments combine exactly
    (Chan's parallel variance formula); the second's retained samples feed
    the first's retention buffer in insertion order. Deterministic, and
    associative over a fixed merge order — the plan-order reduce in
    [Workloads.Shard] relies on this for [-j N] byte-identity. *)
val merge_into : t -> t -> unit

(** Renders ["n=0 (no samples)"] for an empty series (never a fake 0.0
    summary) and flags subsampled percentiles. *)
val pp : Format.formatter -> t -> unit

(** Fixed-width histogram over [\[lo, hi)] with [buckets] bins. Samples
    outside the range are NOT clamped into the edge bins — they increment
    explicit underflow/overflow counters (NaN samples get their own
    counter) so the edge buckets always mean what they say. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit

  (** In-range bin counts only; see {!underflow}/{!overflow}/{!nan_count}
      for the rest. *)
  val counts : h -> int array

  val underflow : h -> int
  val overflow : h -> int
  val nan_count : h -> int
  val lo : h -> float
  val hi : h -> float
  val buckets : h -> int

  (** All samples ever added: bins + underflow + overflow + NaN. *)
  val total : h -> int

  (** [bucket_of h x] is the bin index for an in-range [x], [None] for
      underflow/overflow/NaN. *)
  val bucket_of : h -> float -> int option

  (** Add [src]'s counts into [dst]. Raises [Invalid_argument] unless both
      share lo/hi/bucket-count. *)
  val merge_into : h -> h -> unit

  val pp : Format.formatter -> h -> unit
end
