(* Typed protocol events plus a free-form escape hatch. Records live in a
   growable circular buffer: append is O(1), and an optional [max_records]
   cap turns the buffer into a ring that drops the oldest records. *)

type event =
  | Msg of string
  | Gen_bump of { mm_id : int; gen : int }
  | Gen_read of { mm_id : int; gen : int }
  | Pte_write of { mm_id : int; vpn : int; pages : int }
  | Flush_start of { window : int; mm_id : int; start_vpn : int; span : int; full : bool }
  | Flush_done of { window : int; mm_id : int }
  | Ipi_send of { seq : int; target : int }
  | Ipi_begin of { seq : int; initiator : int; early_ack : bool }
  | Ipi_ack of { seq : int; initiator : int; early : bool }
  | Acks_seen of { seqs : int list }
  | Tlb_flush of { mm_id : int; full : bool; entries : int; gen : int }
  | Tlb_fill of { mm_id : int; vpn : int; pcid : int }
  | Stale_hit of { mm_id : int; vpn : int; benign : bool; detail : string }
  | Deferred_flush_exec of { full : bool; entries : int }
  | User_resume

type record = { time : int; cpu : int; actor : string; event : event }

type t = {
  engine : Engine.t;
  mutable is_enabled : bool;
  mutable buf : record array; (* circular: [head..head+len) mod length *)
  mutable head : int;
  mutable len : int;
  mutable cap : int; (* max records kept; max_int = unbounded *)
  mutable n_dropped : int;
}

let dummy = { time = 0; cpu = -1; actor = ""; event = Msg "" }

let create ?(enabled = false) ?max_records engine =
  let cap =
    match max_records with
    | None -> max_int
    | Some n ->
        if n <= 0 then invalid_arg "Trace.create: max_records must be positive";
        n
  in
  { engine; is_enabled = enabled; buf = [||]; head = 0; len = 0; cap; n_dropped = 0 }

let enable t = t.is_enabled <- true
let disable t = t.is_enabled <- false
let enabled t = t.is_enabled

let set_max_records t max_records =
  (match max_records with
  | Some n when n <= 0 -> invalid_arg "Trace.set_max_records: must be positive"
  | _ -> ());
  t.cap <- Option.value max_records ~default:max_int;
  (* Shrink in place if the new cap is below the live count. *)
  while t.len > t.cap do
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    t.n_dropped <- t.n_dropped + 1
  done

let grow t =
  let n = Array.length t.buf in
  let n' = Stdlib.min t.cap (Stdlib.max 64 (2 * n)) in
  let buf' = Array.make n' dummy in
  for i = 0 to t.len - 1 do
    buf'.(i) <- t.buf.((t.head + i) mod n)
  done;
  t.buf <- buf';
  t.head <- 0

let add t r =
  if t.is_enabled then begin
    if t.len = Array.length t.buf && t.len < t.cap then grow t;
    let n = Array.length t.buf in
    if t.len = n then begin
      (* Ring is at the cap: overwrite the oldest record. *)
      t.buf.(t.head) <- r;
      t.head <- (t.head + 1) mod n;
      t.n_dropped <- t.n_dropped + 1
    end
    else begin
      t.buf.((t.head + t.len) mod n) <- r;
      t.len <- t.len + 1
    end
  end

let emit t ~actor event =
  if t.is_enabled then
    add t { time = Engine.now t.engine; cpu = -1; actor; event = Msg event }

(* When disabled, ikfprintf consumes the arguments without formatting —
   emitf call sites pay nothing for an off trace. *)
let emitf t ~actor fmt =
  if t.is_enabled then Format.kasprintf (fun event -> emit t ~actor event) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

let event t ~cpu event =
  if t.is_enabled then
    add t { time = Engine.now t.engine; cpu; actor = Printf.sprintf "cpu%d" cpu; event }

let records t = List.init t.len (fun i -> t.buf.((t.head + i) mod Array.length t.buf))

let iter t f =
  let n = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod n)
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun r -> acc := f !acc r);
  !acc

let length t = t.len
let dropped t = t.n_dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.n_dropped <- 0

let pp_event fmt = function
  | Msg s -> Format.pp_print_string fmt s
  | Gen_bump { mm_id; gen } -> Format.fprintf fmt "gen bump: mm%d -> %d" mm_id gen
  | Gen_read { mm_id; gen } -> Format.fprintf fmt "gen read: mm%d = %d" mm_id gen
  | Pte_write { mm_id; vpn; pages } ->
      Format.fprintf fmt "PTE write: mm%d [%d..%d)" mm_id vpn (vpn + pages)
  | Flush_start { window; mm_id; start_vpn; span; full } ->
      if full then Format.fprintf fmt "flush start: mm%d full (window %d)" mm_id window
      else
        Format.fprintf fmt "flush start: mm%d [%d..%d) (window %d)" mm_id start_vpn
          (start_vpn + span) window
  | Flush_done { window; mm_id } ->
      Format.fprintf fmt "flush done: mm%d (window %d)" mm_id window
  | Ipi_send { seq; target } -> Format.fprintf fmt "IPI -> cpu%d (seq %d)" target seq
  | Ipi_begin { seq; initiator; early_ack } ->
      Format.fprintf fmt "IPI begin from cpu%d (seq %d%s)" initiator seq
        (if early_ack then ", early-ack" else "")
  | Ipi_ack { seq; initiator; early } ->
      Format.fprintf fmt "%sack to cpu%d (seq %d)"
        (if early then "early " else "")
        initiator seq
  | Acks_seen { seqs } ->
      Format.fprintf fmt "all acks seen (seqs %s)"
        (String.concat "," (List.map string_of_int seqs))
  | Tlb_flush { mm_id; full; entries; gen } ->
      if full then Format.fprintf fmt "full flush of mm%d (gen -> %d)" mm_id gen
      else Format.fprintf fmt "ranged flush of %d PTE(s) of mm%d (gen -> %d)" entries mm_id gen
  | Tlb_fill { mm_id; vpn; pcid } ->
      Format.fprintf fmt "TLB fill: mm%d vpn %d (pcid %d)" mm_id vpn pcid
  | Stale_hit { mm_id; vpn; benign; detail } ->
      Format.fprintf fmt "stale hit: mm%d vpn %d (%s; %s)" mm_id vpn
        (if benign then "benign in-flight" else "VIOLATION")
        detail
  | Deferred_flush_exec { full; entries } ->
      if full then Format.fprintf fmt "deferred user flush: full"
      else Format.fprintf fmt "deferred user flush: %d INVLPG + LFENCE" entries
  | User_resume -> Format.pp_print_string fmt "return to user"

let event_text e = Format.asprintf "%a" pp_event e

let pp fmt t =
  let actor_width = fold t ~init:5 (fun w r -> Stdlib.max w (String.length r.actor)) in
  if t.n_dropped > 0 then
    Format.fprintf fmt "... (%d older records dropped)@." t.n_dropped;
  iter t (fun r ->
      Format.fprintf fmt "%8d | %-*s | %a@." r.time actor_width r.actor pp_event r.event)
