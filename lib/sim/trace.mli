(** Typed protocol-event tracing.

    When enabled, simulation components append timestamped records. Records
    carry a {!event} variant: the shootdown protocol emits typed events
    (generation bumps, IPIs, flushes, stale hits) that the analysis layer
    orders with vector clocks; free-form strings remain available through
    {!emit}/{!emitf} for human-oriented annotations. Disabled tracing is a
    no-op so experiment runs pay nothing.

    Storage is a growable circular buffer: append is O(1) and, when a
    [max_records] cap is set, the oldest records are dropped once the cap is
    reached (the drop count is reported by {!dropped}). *)

type event =
  | Msg of string  (** free-form annotation; not part of happens-before *)
  | Gen_bump of { mm_id : int; gen : int }
      (** initiator bumped the mm's TLB generation (atomic RMW) *)
  | Gen_read of { mm_id : int; gen : int }
      (** a CPU read the mm's generation (cacheline transfer from the bumper) *)
  | Pte_write of { mm_id : int; vpn : int; pages : int }
      (** page-table entries changed: translations may now be stale *)
  | Flush_start of { window : int; mm_id : int; start_vpn : int; span : int; full : bool }
      (** an invalidation window opened ([span] in 4 KiB pages) *)
  | Flush_done of { window : int; mm_id : int }
      (** the flush API returned to its caller: the window closed *)
  | Ipi_send of { seq : int; target : int }
  | Ipi_begin of { seq : int; initiator : int; early_ack : bool }
      (** responder started the IPI handler for one CFD *)
  | Ipi_ack of { seq : int; initiator : int; early : bool }
  | Acks_seen of { seqs : int list }  (** initiator observed every ack *)
  | Tlb_flush of { mm_id : int; full : bool; entries : int; gen : int }
      (** a local TLB flush executed (responder or initiator side) *)
  | Tlb_fill of { mm_id : int; vpn : int; pcid : int }
  | Stale_hit of { mm_id : int; vpn : int; benign : bool; detail : string }
      (** the checker observed a hit on a stale entry; [benign] is the
          checker's wall-clock classification *)
  | Deferred_flush_exec of { full : bool; entries : int }
      (** a deferred user-PCID flush (§3.4) executed at kernel exit *)
  | User_resume  (** return-to-user completed (deferred flushes done) *)

type record = { time : int; cpu : int; actor : string; event : event }
(** [cpu] is [-1] for records emitted via {!emit}/{!emitf} with a
    non-CPU actor; typed protocol events always carry their CPU. *)

type t

val create : ?enabled:bool -> ?max_records:int -> Engine.t -> t
val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

(** Cap the number of retained records ([None] = unbounded). Shrinks the
    buffer immediately if it already holds more. *)
val set_max_records : t -> int option -> unit

(** Append a free-form record (no-op when disabled). [actor] is typically
    "cpu3" or a process name. *)
val emit : t -> actor:string -> string -> unit

(** Printf-style convenience wrapper over {!emit}. *)
val emitf : t -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Append a typed protocol event attributed to [cpu]. *)
val event : t -> cpu:int -> event -> unit

(** Records in chronological order (oldest first). O(n) and materializes a
    list — prefer {!iter}/{!fold} in analysis paths. *)
val records : t -> record list

(** Apply [f] to every retained record, oldest first, without building a
    list. *)
val iter : t -> (record -> unit) -> unit

val fold : t -> init:'a -> ('a -> record -> 'a) -> 'a

(** Records currently retained. *)
val length : t -> int

(** Records discarded because of the [max_records] cap. *)
val dropped : t -> int

val clear : t -> unit

(** Render one event as the human-readable timeline text. *)
val pp_event : Format.formatter -> event -> unit

val event_text : event -> string

(** Render as an aligned "time | actor | event" listing. *)
val pp : Format.formatter -> t -> unit
