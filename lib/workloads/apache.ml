type config = {
  opts : Opts.t;
  cores : int;
  requests : int;
  file_pages : int;
  n_files : int;
  request_work : int;
  seed : int64;
}

let default_config ~opts ~cores =
  {
    opts;
    cores;
    requests = 600;
    file_pages = 3;
    n_files = 16;
    request_work = 36_000;
    seed = 31L;
  }

(* Canonical value key over the whole config: equal keys iff the runs are
   identical, so the bench harness may share one cell between experiments. *)
let config_key { opts; cores; requests; file_pages; n_files; request_work; seed } =
  Printf.sprintf "apache|%s|c=%d req=%d pages=%d files=%d work=%d seed=%Ld"
    (Opts.key opts) cores requests file_pages n_files request_work seed

type result = {
  requests_done : int;
  cycles : int;
  throughput : float;
  shootdowns : int;
  engine_ops : int;
}

let run config =
  if config.cores <= 0 then invalid_arg "Apache: cores must be positive";
  let m = Machine.create ~opts:config.opts ~seed:config.seed () in
  let mm = Machine.new_mm m in
  let files =
    Array.init config.n_files (fun i ->
        let f =
          File.create m.Machine.frames
            ~name:(Printf.sprintf "htdocs/page%d.html" i)
            ~size_pages:config.file_pages
        in
        (* Web content is hot in the page cache. *)
        for index = 0 to config.file_pages - 1 do
          ignore (File.frame_of_page f ~index)
        done;
        f)
  in
  let done_count = ref 0 in
  let finish_times = ref [] in
  let per_worker = config.requests / config.cores in
  for w = 0 to config.cores - 1 do
    let cpu = w in
    let rng = Rng.split m.Machine.rng in
    Kernel.spawn_user m ~cpu ~mm ~name:(Printf.sprintf "worker%d" w) (fun () ->
        let cpu_t = Machine.cpu m cpu in
        for _ = 1 to per_worker do
          let file = files.(Rng.int rng config.n_files) in
          let addr =
            Syscall.mmap m ~cpu ~pages:config.file_pages ~writable:false
              ~backing:(Vma.File_shared { file; offset = 0 })
              ()
          in
          Access.touch_range m ~cpu ~addr ~pages:config.file_pages ~write:false;
          (* Parse request, build headers, push bytes into the socket. *)
          Cpu.compute cpu_t config.request_work;
          Syscall.munmap m ~cpu ~addr ~pages:config.file_pages;
          incr done_count
        done;
        finish_times := Machine.now m :: !finish_times)
  done;
  Kernel.run m;
  (match Checker.violations m.Machine.checker with
  | [] -> ()
  | v :: _ ->
      failwith
        (Format.asprintf "Apache: TLB coherence violation: %a" Checker.pp_violation v));
  let cycles =
    match !finish_times with
    | [] -> Machine.now m
    | times -> List.fold_left ( + ) 0 times / List.length times
  in
  {
    requests_done = !done_count;
    cycles;
    throughput =
      (if cycles = 0 then 0.0
       else float_of_int !done_count *. 1_000_000.0 /. float_of_int cycles);
    shootdowns = m.Machine.stats.Machine.shootdowns;
    engine_ops = Machine.engine_ops m;
  }
