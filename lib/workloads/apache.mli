(** Apache mpm_event-style webserver workload (Figure 11).

    Worker threads of one process, pinned to [cores] CPUs, serve requests:
    each request mmaps the served file (≤ 3 pages, as the paper notes its
    pages are smaller than 12 KiB), reads it to send it, then munmaps —
    tearing the mapping down shoots every sibling worker down. The paper
    drives this with wrk at a fixed rate; we issue a fixed request count
    per worker and report throughput. *)

type config = {
  opts : Opts.t;
  cores : int;  (** taskset width, paper sweeps 1..11 *)
  requests : int;  (** total requests across all workers *)
  file_pages : int;  (** pages per served file (3 = ~12 KiB) *)
  n_files : int;  (** distinct files served round-robin *)
  request_work : int;  (** non-mm cycles per request (parse, socket, send) *)
  seed : int64;
}

val default_config : opts:Opts.t -> cores:int -> config

(** Canonical value key over every config field (opts via {!Opts.key}):
    equal keys iff identical runs. Feeds {!Shard.memo_cell}. *)
val config_key : config -> string

type result = {
  requests_done : int;
  cycles : int;
  throughput : float;  (** requests per megacycle *)
  shootdowns : int;
  engine_ops : int;  (** engine events + advances spent by this run *)
}

val run : config -> result
