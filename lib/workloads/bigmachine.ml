(* Big-machine scaling workload (DESIGN.md §12): the same multi-tenant
   sysbench-plus-reclaim churn run at 56, 256, 512 and 1024 logical CPUs.

   Every size runs an IDENTICAL amount of work — the same tenant count,
   threads per tenant, ops per thread and churn cadence — and every tenant
   is confined to one socket pair, so the distance profile of its
   shootdowns does not change with machine size either. The only thing
   that grows is the machine around the work: the cpumasks get wider, the
   cache-line sharer sets get taller, the APIC has more clusters. A
   per-shootdown cost that stays flat across the column is therefore
   direct evidence that the shootdown hot paths are O(active CPUs), not
   O(machine size) — the property the cpuset/hierarchical-IPI layer
   exists to provide, and the property bench/perf_gate.ml gates on the
   schema-5 "bigmachine" rows. *)

type config = {
  opts : Opts.t;
  sockets : int;
  cores_per_socket : int;
  smt : int;
  tenants : int;
  threads_per_tenant : int;
  ops_per_thread : int;
  churn_every : int;  (* madvise_dontneed cadence, in ops *)
  churn_pages : int;  (* private pages unmapped per churn *)
  file_pages : int;
  seed : int64;
}

let sizes = [ 56; 256; 512; 1024 ]

let topo_of_cpus = function
  | 56 -> (2, 14, 2) (* the paper's machine *)
  | 256 -> (4, 32, 2)
  | 512 -> (4, 64, 2)
  | 1024 -> (8, 64, 2)
  | n -> invalid_arg (Printf.sprintf "Bigmachine: no topology for %d CPUs" n)

let default_config ~opts ~n_cpus =
  let sockets, cores_per_socket, smt = topo_of_cpus n_cpus in
  {
    opts;
    sockets;
    cores_per_socket;
    smt;
    tenants = 6;
    threads_per_tenant = 8;
    ops_per_thread = 120;
    churn_every = 12;
    churn_pages = 16;
    file_pages = 512;
    seed = 37L;
  }

(* The one quick-mode shaping every harness must agree on: the bench
   bigmachine column, the shootout --workloads comparison and the tests
   all need value-identical configs for the memo to share their cells. *)
let quick_shape cfg = { cfg with ops_per_thread = 24; churn_every = 8; churn_pages = 8 }

(* Canonical value key over the whole config: equal keys iff the runs are
   identical, so the bench harness may share one cell between experiments. *)
let config_key c =
  Printf.sprintf
    "bigmachine|%s|topo=%dx%dx%d tenants=%d thr=%d ops=%d churn=%d/%d pages=%d \
     seed=%Ld"
    (Opts.key c.opts) c.sockets c.cores_per_socket c.smt c.tenants
    c.threads_per_tenant c.ops_per_thread c.churn_every c.churn_pages c.file_pages
    c.seed

type result = {
  n_cpus : int;
  threads : int;
  ops : int;
  shootdowns : int;
  ipis : int;
  icr_writes : int;
  churn_cycles : int;  (* simulated cycles inside madvise_dontneed calls *)
  churns : int;
  cycles_per_shootdown : float;  (* deterministic: simulated time, not wall *)
  engine_ops : int;
}

(* Pin tenant [t]'s threads to the socket pair ((2t) mod S, (2t+1) mod S),
   filling cores before SMT siblings, with one global per-socket cursor so
   tenants sharing a socket never collide on a CPU. Constant spread: a
   tenant's shootdowns cover the same socket distances at every machine
   size, so scaling rows compare like with like. *)
let assign_cpus topo ~tenants ~threads_per_tenant =
  let sockets = Topology.sockets topo in
  let cores = Topology.cores_per_socket topo in
  let physical = sockets * cores in
  let cursor = Array.make sockets 0 in
  Array.init tenants (fun t ->
      Array.init threads_per_tenant (fun i ->
          let s = ((2 * t) + (i mod 2)) mod sockets in
          let k = cursor.(s) in
          cursor.(s) <- k + 1;
          let core = k mod cores in
          let smt_thread = k / cores in
          if smt_thread >= Topology.smt topo then
            invalid_arg "Bigmachine: socket oversubscribed";
          (smt_thread * physical) + (s * cores) + core))

(* Per-op bookkeeping the modelled client does besides the store itself. *)
let think_cycles = 600

let run config =
  let topo =
    Topology.create ~sockets:config.sockets ~cores_per_socket:config.cores_per_socket
      ~smt:config.smt
  in
  let m = Machine.create ~topo ~opts:config.opts ~seed:config.seed () in
  let placement =
    assign_cpus topo ~tenants:config.tenants
      ~threads_per_tenant:config.threads_per_tenant
  in
  let total_ops = ref 0 in
  let churn_cycles = ref 0 in
  let churns = ref 0 in
  Array.iteri
    (fun t cpus ->
      (* One mm per tenant: its cpumask is the sparse set of this tenant's
         CPUs, never the whole machine. *)
      let mm = Machine.new_mm m in
      let file =
        File.create m.Machine.frames
          ~name:(Printf.sprintf "tenant%d.dat" t)
          ~size_pages:config.file_pages
      in
      let start_vpn = Mm_struct.alloc_va_range mm ~pages:config.file_pages () in
      Mm_struct.add_vma mm
        (Vma.make ~start_vpn ~pages:config.file_pages
           ~backing:(Vma.File_shared { file; offset = 0 })
           ());
      let base_addr = Addr.addr_of_vpn start_vpn in
      Array.iteri
        (fun i cpu ->
          let rng = Rng.split m.Machine.rng in
          Kernel.spawn_user m ~cpu ~mm
            ~name:(Printf.sprintf "tenant%d.%d" t i)
            (fun () ->
              let cpu_t = Machine.cpu m cpu in
              (* Private reclaim arena, remapped after every churn. *)
              let arena =
                ref (Syscall.mmap m ~cpu ~pages:config.churn_pages ())
              in
              Access.touch_range m ~cpu ~addr:!arena ~pages:config.churn_pages
                ~write:true;
              for op = 1 to config.ops_per_thread do
                let page = Rng.int rng config.file_pages in
                Access.write m ~cpu ~vaddr:(base_addr + (page * Addr.page_size));
                Cpu.compute cpu_t (think_cycles + Rng.int rng 100);
                incr total_ops;
                (* Stagger churn by thread index: in-phase madvise storms
                   across tenants would serialize on nothing real. *)
                if (op + i) mod config.churn_every = 0 then begin
                  let t0 = Machine.now m in
                  Syscall.madvise_dontneed m ~cpu ~addr:!arena
                    ~pages:config.churn_pages;
                  churn_cycles := !churn_cycles + (Machine.now m - t0);
                  incr churns;
                  Syscall.munmap m ~cpu ~addr:!arena ~pages:config.churn_pages;
                  arena := Syscall.mmap m ~cpu ~pages:config.churn_pages ();
                  Access.touch_range m ~cpu ~addr:!arena ~pages:config.churn_pages
                    ~write:true
                end
              done))
        cpus)
    placement;
  Kernel.run m;
  (match Checker.violations m.Machine.checker with
  | [] -> ()
  | v :: _ ->
      failwith
        (Format.asprintf "Bigmachine: TLB coherence violation: %a" Checker.pp_violation
           v));
  let shootdowns = m.Machine.stats.Machine.shootdowns in
  {
    n_cpus = Topology.n_cpus topo;
    threads = config.tenants * config.threads_per_tenant;
    ops = !total_ops;
    shootdowns;
    ipis = Apic.ipis_sent m.Machine.apic;
    icr_writes = Apic.icr_writes m.Machine.apic;
    churn_cycles = !churn_cycles;
    churns = !churns;
    cycles_per_shootdown =
      (if shootdowns = 0 then 0.0
       else float_of_int !churn_cycles /. float_of_int shootdowns);
    engine_ops = Machine.engine_ops m;
  }
