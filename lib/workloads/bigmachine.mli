(** Big-machine scaling workload (DESIGN.md §12): identical multi-tenant
    sysbench-plus-reclaim churn run at 56/256/512/1024 logical CPUs, so
    the per-shootdown cost column isolates machine-size overhead from
    workload size. Emitted as the schema-5 ["bigmachine"] rows of
    BENCH_PERF.json and gated by bench/perf_gate.ml. *)

type config = {
  opts : Opts.t;
  sockets : int;
  cores_per_socket : int;
  smt : int;
  tenants : int;
  threads_per_tenant : int;
  ops_per_thread : int;
  churn_every : int;  (** madvise_dontneed cadence, in ops *)
  churn_pages : int;  (** private pages unmapped per churn *)
  file_pages : int;
  seed : int64;
}

(** The scaling column: [56; 256; 512; 1024] logical CPUs. *)
val sizes : int list

(** [(sockets, cores_per_socket, smt)] for each supported size; raises on
    sizes outside {!sizes}. 56 is the paper's 2x14x2 machine. *)
val topo_of_cpus : int -> int * int * int

(** Same work at every size: the config differs only in topology. *)
val default_config : opts:Opts.t -> n_cpus:int -> config

(** The canonical quick-mode reduction (fewer ops, denser churn). Every
    harness that wants memo sharing with the bench column must shape its
    quick configs through this one function. *)
val quick_shape : config -> config

(** Canonical value key for bench-harness cell memoization. *)
val config_key : config -> string

type result = {
  n_cpus : int;
  threads : int;
  ops : int;
  shootdowns : int;
  ipis : int;
  icr_writes : int;
  churn_cycles : int;  (** simulated cycles inside madvise_dontneed calls *)
  churns : int;
  cycles_per_shootdown : float;
      (** [churn_cycles / shootdowns] — simulated time, deterministic
          across hosts and [-j] levels, so the perf gate compares it raw *)
  engine_ops : int;
}

val run : config -> result
