type config = { opts : Opts.t; pages_per_round : int; rounds : int; seed : int64 }

let default_config ~opts = { opts; pages_per_round = 64; rounds = 10; seed = 11L }

(* Canonical value key over the whole config: equal keys iff the runs are
   identical, so the bench harness may share one cell between experiments. *)
let config_key { opts; pages_per_round; rounds; seed } =
  Printf.sprintf "cow|%s|pages=%d rounds=%d seed=%Ld" (Opts.key opts) pages_per_round
    rounds seed

type result = {
  write_mean : float;
  write_sd : float;
  cow_breaks : int;
  flushes_avoided : int;
  engine_ops : int;
}

let run config =
  let m = Machine.create ~opts:config.opts ~seed:config.seed () in
  let mm = Machine.new_mm m in
  let stats = Stats.create () in
  let file =
    File.create m.Machine.frames ~name:"cow.dat"
      ~size_pages:config.pages_per_round
  in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"cow-writer" (fun () ->
      for _ = 1 to config.rounds do
        let addr =
          Syscall.mmap m ~cpu:0 ~pages:config.pages_per_round
            ~backing:(Vma.File_private { file; offset = 0 })
            ()
        in
        (* Read-touch: populate write-protected COW translations. *)
        Access.touch_range m ~cpu:0 ~addr ~pages:config.pages_per_round ~write:false;
        for i = 0 to config.pages_per_round - 1 do
          let vaddr = addr + (i * Addr.page_size) in
          let t0 = Machine.now m in
          Access.write m ~cpu:0 ~vaddr;
          Stats.add stats (float_of_int (Machine.now m - t0))
        done;
        Syscall.munmap m ~cpu:0 ~addr ~pages:config.pages_per_round
      done);
  Kernel.run m;
  (match Checker.violations m.Machine.checker with
  | [] -> ()
  | v :: _ ->
      failwith
        (Format.asprintf "Cow_bench: TLB coherence violation: %a" Checker.pp_violation v));
  {
    write_mean = Stats.mean stats;
    write_sd = Stats.stddev stats;
    cow_breaks = m.Machine.stats.Machine.cow_breaks;
    flushes_avoided = m.Machine.stats.Machine.cow_flush_avoided;
    engine_ops = Machine.engine_ops m;
  }
