(** The §4.1 copy-on-write microbenchmark (Figure 9).

    A single thread maps a file privately, read-touches pages (creating
    write-protected COW translations), then writes each page; the visible
    cost of the write — page fault, copy, PTE update and the stale-entry
    eviction (INVLPG vs the dummy-write trick) — is measured. *)

type config = {
  opts : Opts.t;
  pages_per_round : int;
  rounds : int;
  seed : int64;
}

val default_config : opts:Opts.t -> config

(** Canonical value key over every config field (opts via {!Opts.key}):
    equal keys iff identical runs. Feeds {!Shard.memo_cell}. *)
val config_key : config -> string

type result = {
  write_mean : float;  (** cycles per CoW write, fault included *)
  write_sd : float;
  cow_breaks : int;
  flushes_avoided : int;
  engine_ops : int;  (** engine events + advances spent by this run *)
}

val run : config -> result
