(* Shard plans for the paper's multi-run experiments.

   Each builder flattens an experiment's (config, seed) matrix into
   Shard cells at plan time and returns a reduce that reassembles the
   published tables from the cell slots. Configs are built here — opts
   copied per cell, the seed baked into the config — so every cell is a
   pure function of its own state and per-run RNG streams derive from the
   run's own seed, never from mutable state shared across cells.

   Weights are rough per-run engine-op estimates calibrated from
   BENCH_PERF.json; only their relative order matters (LPT scheduling). *)

(* ~90 ops per iteration at 1 PTE, ~390 at 10 (measured). *)
let micro_weight ~iterations ~pte_count = float_of_int (iterations * (60 + (35 * pte_count)))

(* ~230 engine ops per thread·write (measured: 735k ops for the mean
   fig10 run at 288 writes across 11.2 threads). *)
let sysbench_weight ~threads ~ops_per_thread = float_of_int (threads * ops_per_thread * 230)

(* ~370 ops per request at the sweep's midpoint, growing with cores. *)
let apache_weight ~cores ~requests = float_of_int (requests * (250 + (15 * cores)))

(* ----- Figures 5-8 / Table 3: the madvise microbenchmark matrices ----- *)

type micro_matrix = (Microbench.placement * (string * Microbench.result) list) list

(* All stacks for all placements, as memoized cells; the getter rebuilds
   the (placement, (label, result) list) list shape the table printers
   eat. Figures 5-8 and table 3 request the same matrices, and several
   ablation rows coincide with matrix cells, so the first requester owns
   each job and later ones only read — [reused] counts the latter. *)
let micro_matrix_cells ~memo ~iterations ~warmup ~safe ~pte_count =
  let stacks = Opts.cumulative_general ~safe in
  let jobs = ref [] in
  let reused = ref 0 in
  let rows =
    List.map
      (fun placement ->
        let cells =
          List.map
            (fun (label, opts) ->
              let cfg =
                Microbench.default_config ~opts:(Opts.copy opts) ~placement ~pte_count
              in
              let cfg = { cfg with Microbench.iterations; warmup } in
              let js, get, fresh =
                Shard.memo_cell memo ~key:(Microbench.config_key cfg)
                  ~label:
                    (Printf.sprintf "micro %s %dpte %s %s"
                       (if safe then "safe" else "unsafe")
                       pte_count
                       (Microbench.placement_label placement)
                       label)
                  ~ops:(fun r -> r.Microbench.engine_ops)
                  ~weight:(micro_weight ~iterations ~pte_count)
                  (fun () -> Microbench.run cfg)
              in
              jobs := List.rev_append js !jobs;
              if not fresh then incr reused;
              (label, get))
            stacks
        in
        (placement, cells))
      Microbench.all_placements
  in
  let get () =
    List.map (fun (p, cells) -> (p, List.map (fun (l, g) -> (l, g ())) cells)) rows
  in
  (List.rev !jobs, get, !reused)

(* ----- Figure 10: Sysbench ----- *)

type fig10_scale = {
  sys_threads : int list;
  sys_seeds : int64 list;  (** the paper averages several runs per point *)
  sys_ops_per_thread : int;
  sys_file_pages : int;
}

let fig10_scale ~quick =
  if quick then
    { sys_threads = [ 1; 4; 10; 16 ]; sys_seeds = [ 23L ]; sys_ops_per_thread = 120; sys_file_pages = 1024 }
  else
    {
      sys_threads = [ 1; 2; 3; 4; 6; 8; 10; 12; 16; 20; 24; 28 ];
      sys_seeds = [ 23L; 137L; 911L ];
      sys_ops_per_thread = 288;
      sys_file_pages = 4096;
    }

let fig10_plan ~memo scale =
  let jobs = ref [] in
  let reused = ref 0 in
  (* One memoized cell per (config, seed); the getter averages the seeds. *)
  let avg_cell ~tag ~opts ~n =
    let getters =
      List.map
        (fun seed ->
          let cfg = Sysbench.default_config ~opts:(Opts.copy opts) ~threads:n in
          let cfg =
            {
              cfg with
              Sysbench.ops_per_thread = scale.sys_ops_per_thread;
              file_pages = scale.sys_file_pages;
              seed;
            }
          in
          let js, get, fresh =
            Shard.memo_cell memo ~key:(Sysbench.config_key cfg)
              ~label:(Printf.sprintf "fig10 %s t=%d seed=%Ld" tag n seed)
              ~ops:(fun r -> r.Sysbench.engine_ops)
              ~weight:(sysbench_weight ~threads:n ~ops_per_thread:scale.sys_ops_per_thread)
              (fun () -> Sysbench.run cfg)
          in
          jobs := List.rev_append js !jobs;
          if not fresh then incr reused;
          get)
        scale.sys_seeds
    in
    fun () ->
      List.fold_left (fun acc g -> acc +. (g ()).Sysbench.throughput) 0.0 getters
      /. float_of_int (List.length getters)
  in
  let sides =
    List.map
      (fun safe ->
        let stacks = Opts.cumulative_workload ~safe in
        let tag l = Printf.sprintf "%s %s" (if safe then "safe" else "unsafe") l in
        let rows =
          List.map
            (fun n ->
              let base = avg_cell ~tag:(tag "base") ~opts:(Opts.baseline ~safe) ~n in
              let cells =
                List.map (fun (label, opts) -> avg_cell ~tag:(tag label) ~opts ~n) stacks
              in
              (n, base, cells))
            scale.sys_threads
        in
        (safe, List.map fst stacks, rows))
      [ true; false ]
  in
  let reduce () =
    List.iter
      (fun (safe, stack_labels, rows) ->
        let header = "threads" :: "base ops/kcyc" :: stack_labels in
        let rows =
          List.map
            (fun (n, base, cells) ->
              let base = base () in
              string_of_int n
              :: Printf.sprintf "%.3f" base
              :: List.map (fun cellv -> Report.speedup (cellv () /. base)) cells)
            rows
        in
        Report.table
          ~title:
            (Printf.sprintf
               "Figure 10 — Sysbench rnd-write + fdatasync speedup over baseline (%s \
                mode; paper: up to 1.22x, batching up to 1.18x, gains fade at high \
                thread counts)"
               (if safe then "safe" else "unsafe"))
          ~header rows)
      sides
  in
  { Shard.name = "fig10"; jobs = List.rev !jobs; reused = !reused; reduce }

(* One backend's fig10 column for the cross-backend workload comparison
   (DESIGN.md §13): a memoized cell per (thread count, seed) under [opts],
   reduced per thread count to the seed-averaged throughput plus the
   seed-summed shootdown count. The paper backend's opts
   ([Opts.all ~safe:true]) are value-identical to fig10's final
   "+batching" stack, so when this is planned after {!fig10_plan} on the
   same memo every paper cell is reused, never recomputed. *)
let fig10_backend_cells ~memo ~tag ~opts scale =
  let jobs = ref [] in
  let reused = ref 0 in
  let rows =
    List.map
      (fun n ->
        let getters =
          List.map
            (fun seed ->
              let cfg = Sysbench.default_config ~opts:(Opts.copy opts) ~threads:n in
              let cfg =
                {
                  cfg with
                  Sysbench.ops_per_thread = scale.sys_ops_per_thread;
                  file_pages = scale.sys_file_pages;
                  seed;
                }
              in
              let js, get, fresh =
                Shard.memo_cell memo ~key:(Sysbench.config_key cfg)
                  ~label:(Printf.sprintf "wl-fig10 %s t=%d seed=%Ld" tag n seed)
                  ~ops:(fun r -> r.Sysbench.engine_ops)
                  ~weight:
                    (sysbench_weight ~threads:n ~ops_per_thread:scale.sys_ops_per_thread)
                  (fun () -> Sysbench.run cfg)
              in
              jobs := List.rev_append js !jobs;
              if not fresh then incr reused;
              get)
            scale.sys_seeds
        in
        let nseeds = float_of_int (List.length getters) in
        fun () ->
          let tput =
            List.fold_left (fun acc g -> acc +. (g ()).Sysbench.throughput) 0.0 getters
            /. nseeds
          in
          let sh =
            List.fold_left (fun acc g -> acc + (g ()).Sysbench.shootdowns) 0 getters
          in
          (n, tput, sh))
      scale.sys_threads
  in
  (List.rev !jobs, (fun () -> List.map (fun g -> g ()) rows), !reused)

(* ----- Figure 11: Apache ----- *)

type fig11_scale = {
  ap_cores : int list;
  ap_seeds : int64 list;
  ap_requests : int;
}

let fig11_scale ~quick =
  if quick then { ap_cores = [ 1; 4; 8; 11 ]; ap_seeds = [ 31L ]; ap_requests = 220 }
  else
    {
      ap_cores = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ];
      ap_seeds = [ 31L; 211L; 1013L ];
      ap_requests = 660;
    }

let fig11_plan ~memo scale =
  let jobs = ref [] in
  let reused = ref 0 in
  let avg_cell ~tag ~opts ~n =
    let getters =
      List.map
        (fun seed ->
          let cfg = Apache.default_config ~opts:(Opts.copy opts) ~cores:n in
          let cfg = { cfg with Apache.requests = scale.ap_requests; seed } in
          let js, get, fresh =
            Shard.memo_cell memo ~key:(Apache.config_key cfg)
              ~label:(Printf.sprintf "fig11 %s c=%d seed=%Ld" tag n seed)
              ~ops:(fun r -> r.Apache.engine_ops)
              ~weight:(apache_weight ~cores:n ~requests:scale.ap_requests)
              (fun () -> Apache.run cfg)
          in
          jobs := List.rev_append js !jobs;
          if not fresh then incr reused;
          get)
        scale.ap_seeds
    in
    fun () ->
      List.fold_left (fun acc g -> acc +. (g ()).Apache.throughput) 0.0 getters
      /. float_of_int (List.length getters)
  in
  let sides =
    List.map
      (fun safe ->
        let stacks = Opts.cumulative_workload ~safe in
        let tag l = Printf.sprintf "%s %s" (if safe then "safe" else "unsafe") l in
        let rows =
          List.map
            (fun n ->
              let base = avg_cell ~tag:(tag "base") ~opts:(Opts.baseline ~safe) ~n in
              let cells =
                List.map (fun (label, opts) -> avg_cell ~tag:(tag label) ~opts ~n) stacks
              in
              (n, base, cells))
            scale.ap_cores
        in
        (safe, List.map fst stacks, rows))
      [ true; false ]
  in
  let reduce () =
    List.iter
      (fun (safe, stack_labels, rows) ->
        let header = "cores" :: "base req/Mcyc" :: stack_labels in
        let rows =
          List.map
            (fun (n, base, cells) ->
              let base = base () in
              string_of_int n
              :: Printf.sprintf "%.2f" base
              :: List.map (fun cellv -> Report.speedup (cellv () /. base)) cells)
            rows
        in
        Report.table
          ~title:
            (Printf.sprintf
               "Figure 11 — Apache mpm_event speedup over baseline (%s mode; paper: \
                concurrent up to 1.10x, in-context up to 1.05x)"
               (if safe then "safe" else "unsafe"))
          ~header rows)
      sides
  in
  { Shard.name = "fig11"; jobs = List.rev !jobs; reused = !reused; reduce }

(* One backend's fig11 column, same shape as {!fig10_backend_cells}: a
   memoized cell per (core count, seed), reduced per core count to the
   seed-averaged throughput and seed-summed shootdowns. *)
let fig11_backend_cells ~memo ~tag ~opts scale =
  let jobs = ref [] in
  let reused = ref 0 in
  let rows =
    List.map
      (fun n ->
        let getters =
          List.map
            (fun seed ->
              let cfg = Apache.default_config ~opts:(Opts.copy opts) ~cores:n in
              let cfg = { cfg with Apache.requests = scale.ap_requests; seed } in
              let js, get, fresh =
                Shard.memo_cell memo ~key:(Apache.config_key cfg)
                  ~label:(Printf.sprintf "wl-fig11 %s c=%d seed=%Ld" tag n seed)
                  ~ops:(fun r -> r.Apache.engine_ops)
                  ~weight:(apache_weight ~cores:n ~requests:scale.ap_requests)
                  (fun () -> Apache.run cfg)
              in
              jobs := List.rev_append js !jobs;
              if not fresh then incr reused;
              get)
            scale.ap_seeds
        in
        let nseeds = float_of_int (List.length getters) in
        fun () ->
          let tput =
            List.fold_left (fun acc g -> acc +. (g ()).Apache.throughput) 0.0 getters
            /. nseeds
          in
          let sh =
            List.fold_left (fun acc g -> acc + (g ()).Apache.shootdowns) 0 getters
          in
          (n, tput, sh))
      scale.ap_cores
  in
  (List.rev !jobs, (fun () -> List.map (fun g -> g ()) rows), !reused)
