(** {!Shard} plans for the paper's multi-run experiments.

    Builders flatten an experiment's (config, seed) matrix into cells at
    plan time and return a reduce that reassembles the published tables
    from the cell slots. Every cell copies its opts and bakes its seed
    into the config, so per-run RNG streams derive from the run's own seed
    and never from mutable state shared across cells. *)

(** Per-run cost estimates in engine-op units (drive LPT ordering). *)
val micro_weight : iterations:int -> pte_count:int -> float

val sysbench_weight : threads:int -> ops_per_thread:int -> float
val apache_weight : cores:int -> requests:int -> float

type micro_matrix = (Microbench.placement * (string * Microbench.result) list) list

(** Cells for one Figures-5–8 matrix (all placements × cumulative stacks at
    one (safe, pte_count)); the getter rebuilds the matrix shape the table
    printers consume. Cells are memoized through [memo]: the first
    requester of each (config, seed) owns its job (figs 5–8 normally;
    table 3 when it runs alone), later requesters get only the getter.
    Also returns how many cells were reused rather than owned. *)
val micro_matrix_cells :
  memo:Microbench.result Shard.memo ->
  iterations:int ->
  warmup:int ->
  safe:bool ->
  pte_count:int ->
  Shard.job list * (unit -> micro_matrix) * int

type fig10_scale = {
  sys_threads : int list;
  sys_seeds : int64 list;  (** the paper averages several runs per point *)
  sys_ops_per_thread : int;
  sys_file_pages : int;
}

(** The bench harness's full/quick parameters. *)
val fig10_scale : quick:bool -> fig10_scale

(** Figure 10 as a plan: 2 modes × threads × (baseline + stacks) × seeds
    sim-run cells (memoized through [memo], so ablation rows at the same
    scale reuse them), reduced to the two published speedup tables. *)
val fig10_plan : memo:Sysbench.result Shard.memo -> fig10_scale -> Shard.plan

type fig11_scale = { ap_cores : int list; ap_seeds : int64 list; ap_requests : int }

val fig11_scale : quick:bool -> fig11_scale
val fig11_plan : memo:Apache.result Shard.memo -> fig11_scale -> Shard.plan

(** One backend's fig10 column for the cross-backend workload comparison
    (DESIGN.md §13): a memoized cell per (thread count, seed) under
    [opts]; the getter yields, in thread order, [(threads, seed-averaged
    ops/kcyc, seed-summed shootdowns)]. The paper backend's opts
    ([Opts.all ~safe:true]) are value-identical to fig10's final
    "+batching" stack, so planned after {!fig10_plan} on the same memo
    its cells are all reused — the returned reuse count says how many. *)
val fig10_backend_cells :
  memo:Sysbench.result Shard.memo ->
  tag:string ->
  opts:Opts.t ->
  fig10_scale ->
  Shard.job list * (unit -> (int * float * int) list) * int

(** Same for fig11: [(cores, seed-averaged req/Mcyc, shootdowns)]. *)
val fig11_backend_cells :
  memo:Apache.result Shard.memo ->
  tag:string ->
  opts:Opts.t ->
  fig11_scale ->
  Shard.job list * (unit -> (int * float * int) list) * int
