type placement = Same_core | Same_socket | Cross_socket

type config = {
  opts : Opts.t;
  costs : Costs.t;
  placement : placement;
  pte_count : int;
  iterations : int;
  warmup : int;
  seed : int64;
  metering : bool;
}

let default_config ~opts ~placement ~pte_count =
  {
    opts;
    costs = Costs.default;
    placement;
    pte_count;
    iterations = 200;
    warmup = 20;
    seed = 7L;
    metering = false;
  }

type result = {
  initiator_mean : float;
  initiator_sd : float;
  responder_mean : float;
  responder_sd : float;
  shootdowns : int;
  engine_ops : int;
  metrics : Metrics.t;
}

let placement_label = function
  | Same_core -> "same-core"
  | Same_socket -> "same-socket"
  | Cross_socket -> "cross-socket"

let all_placements = [ Same_core; Same_socket; Cross_socket ]

(* Canonical value key over the whole config (opts and costs included via
   their own exhaustive keys): equal keys iff the runs are identical, so
   the bench harness may share one cell between experiments. *)
let config_key { opts; costs; placement; pte_count; iterations; warmup; seed; metering } =
  Printf.sprintf "micro|%s|%s|%s|pte=%d it=%d wu=%d seed=%Ld meter=%b" (Opts.key opts)
    (Costs.key costs) (placement_label placement) pte_count iterations warmup seed
    metering

let responder_cpu topo = function
  | Same_core -> begin
      match Topology.smt_sibling_of topo 0 with
      | Some sibling -> sibling
      | None -> invalid_arg "Microbench: machine has no SMT siblings"
    end
  | Same_socket -> 1
  | Cross_socket -> Topology.cores_per_socket topo

let run config =
  let m =
    Machine.create ~opts:config.opts ~costs:config.costs ~seed:config.seed
      ~metering:config.metering ()
  in
  let topo = m.Machine.topo in
  let initiator = 0 in
  let responder = responder_cpu topo config.placement in
  let mm = Machine.new_mm m in
  let stop = ref false in
  let stats = Stats.create () in
  (* Responder interruption accounting is sampled around the measured
     phase; dividing by the shootdown count gives per-event interruption,
     the quantity Figures 5b-8b report. *)
  let measured_interrupted = ref 0.0 in
  let measured_shootdowns = ref 0 in
  Kernel.spawn_user m ~cpu:responder ~mm ~name:"responder" (fun () ->
      let cpu_t = Machine.cpu m responder in
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Kernel.spawn_user m ~cpu:initiator ~mm ~name:"initiator" (fun () ->
      (* Give the responder time to load the address space. *)
      Machine.delay m 5_000;
      let pages = config.pte_count in
      let addr = Syscall.mmap m ~cpu:initiator ~pages () in
      let one_iteration record =
        Access.touch_range m ~cpu:initiator ~addr ~pages ~write:true;
        let t0 = Machine.now m in
        Syscall.madvise_dontneed m ~cpu:initiator ~addr ~pages;
        let dt = Machine.now m - t0 in
        if record then Stats.add stats (float_of_int dt)
      in
      for _ = 1 to config.warmup do
        one_iteration false
      done;
      let resp_cpu = Machine.cpu m responder in
      let interrupted0 = Cpu.interrupted_cycles resp_cpu in
      let shootdowns0 = m.Machine.stats.Machine.shootdowns in
      for _ = 1 to config.iterations do
        one_iteration true
      done;
      (* Let in-flight responder work drain before sampling. *)
      Machine.delay m 20_000;
      measured_interrupted :=
        float_of_int (Cpu.interrupted_cycles resp_cpu - interrupted0);
      measured_shootdowns := m.Machine.stats.Machine.shootdowns - shootdowns0;
      stop := true);
  Kernel.run m;
  let responder_mean =
    if !measured_shootdowns = 0 then 0.0
    else !measured_interrupted /. float_of_int !measured_shootdowns
  in
  (match Checker.violations m.Machine.checker with
  | [] -> ()
  | v :: _ ->
      failwith
        (Format.asprintf "Microbench: TLB coherence violation: %a" Checker.pp_violation v));
  {
    initiator_mean = Stats.mean stats;
    initiator_sd = Stats.stddev stats;
    responder_mean;
    responder_sd = 0.0;
    shootdowns = !measured_shootdowns;
    engine_ops = Machine.engine_ops m;
    metrics = m.Machine.metrics;
  }
