(** The paper's §5.1 microbenchmark (Figures 5-8, Table 3).

    An initiator thread mmaps an anonymous region, touches [pte_count]
    pages, and calls madvise(MADV_DONTNEED) on them, which removes the PTEs
    and triggers a TLB flush/shootdown; a responder thread busy-waits on
    another CPU sharing the address space. We report the madvise latency on
    the initiator and the per-shootdown interruption on the responder, for
    each placement of the two threads. *)

type placement = Same_core | Same_socket | Cross_socket

type config = {
  opts : Opts.t;
  costs : Costs.t;  (** cycle model; swap for sensitivity studies *)
  placement : placement;
  pte_count : int;  (** pages flushed per madvise: the paper uses 1 and 10 *)
  iterations : int;
  warmup : int;
  seed : int64;
  metering : bool;  (** enable the phase-latency metrics (DESIGN.md §10) *)
}

val default_config : opts:Opts.t -> placement:placement -> pte_count:int -> config

(** Canonical value key over every config field (opts/costs via their own
    keys): equal keys iff identical runs. Feeds {!Shard.memo_cell}. *)
val config_key : config -> string

type result = {
  initiator_mean : float;  (** madvise cycles, mean over iterations *)
  initiator_sd : float;
  responder_mean : float;  (** responder interruption cycles per shootdown *)
  responder_sd : float;  (** 0 (aggregate accounting); kept for symmetry *)
  shootdowns : int;
  engine_ops : int;  (** engine events + advances spent by this run *)
  metrics : Metrics.t;
      (** the run machine's phase-latency registry; populated only when
          [config.metering] was set (empty-but-shaped otherwise) *)
}

val run : config -> result

val placement_label : placement -> string
val all_placements : placement list

(** Responder CPU for a placement, with the initiator on CPU 0 of the
    paper's 2x14x2 machine: the SMT sibling, a same-socket core, or a
    cross-socket core. *)
val responder_cpu : Topology.t -> placement -> int
