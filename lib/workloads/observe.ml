(* The `tlbsim stats` workload: a metered microbench sweep whose merged
   phase-latency registry is exported as a table, JSON, or Prometheus text.

   Cells are self-contained (config, seed) sim runs — the same contract as
   the bench harness — executed on the shared Domain_pool and merged in
   plan order into a fresh registry, so the report is byte-identical at
   any [-j]. The sweep covers every placement (self/SMT flush-exec rows
   come from the same-core placement, cross-socket rows from the
   cross-socket one) and three flush sizes: 1 and 10 PTEs (the paper's
   ranged flushes) plus 50, which exceeds Linux's 33-entry full-flush
   ceiling and exercises the CR3 path. *)

type format = Table | Json | Prometheus

let format_of_string = function
  | "table" -> Some Table
  | "json" -> Some Json
  | "prom" | "prometheus" -> Some Prometheus
  | _ -> None

let pte_counts = [ 1; 10; 50 ]

let configs ~iterations ~seed =
  List.concat_map
    (fun placement ->
      List.map
        (fun pte_count ->
          let opts = Opts.all ~safe:true in
          let base = Microbench.default_config ~opts ~placement ~pte_count in
          { base with Microbench.iterations; seed; metering = true })
        pte_counts)
    Microbench.all_placements

let collect ?(iterations = 200) ?(seed = 7L) ~jobs () =
  let cells =
    List.map
      (fun config ->
        Shard.cell
          ~label:
            (Printf.sprintf "stats/%s/%d"
               (Microbench.placement_label config.Microbench.placement)
               config.Microbench.pte_count)
          ~ops:(fun r -> r.Microbench.engine_ops)
          ~weight:(float_of_int config.Microbench.pte_count)
          (fun () -> Microbench.run config))
      (configs ~iterations ~seed)
  in
  let plan =
    { Shard.name = "stats"; jobs = List.map fst cells; reused = 0; reduce = (fun () -> ()) }
  in
  let _outcomes, _gc = Shard.execute ~jobs [ plan ] in
  (* Plan-order merge into a fresh registry: every cell pre-registered the
     same series in the same order (Machine.create), so the merged
     registration order — and each accumulator's sample order — is a pure
     function of the plan, independent of worker count. *)
  let merged = Metrics.create ~enabled:false () in
  List.iter (fun (_, get) -> Metrics.merge_into merged (get ()).Microbench.metrics) cells;
  merged

let render format metrics =
  match format with
  | Json -> Metrics.to_json metrics
  | Prometheus -> Metrics.to_prometheus metrics
  | Table -> Format.asprintf "%a" Metrics.pp_table metrics

let run ?iterations ?seed ~jobs format =
  render format (collect ?iterations ?seed ~jobs ())
