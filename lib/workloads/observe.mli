(** The [tlbsim stats] workload: a metered microbench sweep (every
    placement × 1/10/50-PTE flushes, all six optimizations, safe mode)
    whose per-shootdown phase-latency metrics are merged in plan order —
    byte-identical output at any [~jobs] — and rendered as an ASCII table,
    JSON, or Prometheus text exposition. *)

type format = Table | Json | Prometheus

(** ["table"], ["json"], ["prom"]/["prometheus"]. *)
val format_of_string : string -> format option

(** Run the sweep on [jobs] domains and return the merged registry.
    Defaults: 200 iterations per cell, seed 7. *)
val collect : ?iterations:int -> ?seed:int64 -> jobs:int -> unit -> Metrics.t

val render : format -> Metrics.t -> string

(** [collect] + [render]. *)
val run : ?iterations:int -> ?seed:int64 -> jobs:int -> format -> string
