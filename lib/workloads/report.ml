(* Output sink. Tables normally go straight to stdout; a bench task running
   under the parallel runner instead captures its output into a per-domain
   buffer (so concurrent experiments cannot interleave) and the driver
   prints the buffers in experiment order. Domain-local state, not a plain
   ref, because capture must not leak across domains. *)
let sink : Buffer.t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let out_string s =
  match !(Domain.DLS.get sink) with
  | Some buf -> Buffer.add_string buf s
  | None -> print_string s

let out_line s =
  out_string s;
  out_string "\n"

let capture f =
  let cell = Domain.DLS.get sink in
  let saved = !cell in
  let buf = Buffer.create 4096 in
  cell := Some buf;
  Fun.protect ~finally:(fun () -> cell := saved) f;
  Buffer.contents buf

let table ~title ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  let width col =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row col with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let print_row row =
    let cells =
      List.mapi
        (fun i w ->
          let cell = Option.value (List.nth_opt row i) ~default:"" in
          (* Right-align all but the first column (labels left, data right). *)
          if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
        widths
    in
    out_line ("  " ^ String.concat "  " cells)
  in
  out_string "\n";
  out_line ("== " ^ title ^ " ==");
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let cycles c =
  if Float.abs c >= 1_000_000.0 then Printf.sprintf "%.2fM" (c /. 1_000_000.0)
  else if Float.abs c >= 10_000.0 then Printf.sprintf "%.1fk" (c /. 1_000.0)
  else Printf.sprintf "%.0f" c

let speedup r = Printf.sprintf "%.3fx" r

let reduction ~baseline v =
  if Float.equal baseline 0.0 then "n/a"
  else Printf.sprintf "%.0f%%" ((baseline -. v) /. baseline *. 100.0)

let bar_of ~width ~max value =
  if max <= 0.0 || value < 0.0 then ""
  else begin
    let n = int_of_float (Float.round (value /. max *. float_of_int width)) in
    String.concat "" (List.init (Stdlib.min width n) (fun _ -> "\xe2\x96\x88"))
  end

let bars ~title rows =
  out_string "\n";
  out_line ("-- " ^ title ^ " --");
  let label_width =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 rows
  in
  let max_value = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 rows in
  List.iter
    (fun (label, value) ->
      out_string
        (Printf.sprintf "  %-*s %8s |%s\n" label_width label (cycles value)
           (bar_of ~width:40 ~max:max_value value)))
    rows

let count n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
