(** Plain-text table rendering for the benchmark harness. *)

(** [table ~title ~header rows] prints an aligned table to stdout — or, when
    running inside {!capture}, into the capturing buffer. *)
val table : title:string -> header:string list -> string list list -> unit

(** [capture f] runs [f], collecting everything {!table} and {!bars} would
    have printed into a buffer, and returns it as a string. The redirection
    is domain-local, so experiments captured on different domains cannot
    interleave their output. Nests (and restores the previous sink) on the
    same domain. *)
val capture : (unit -> unit) -> string

(** Format a cycle count compactly ("12.3k", "1.20M"). *)
val cycles : float -> string

(** Format a ratio as a speedup ("1.18x"). *)
val speedup : float -> string

(** Format a percentage reduction between a baseline and a value. *)
val reduction : baseline:float -> float -> string

(** Large counts with thousands grouping ("102,400"). *)
val count : int -> string

(** [bars ~title rows] renders labelled horizontal bars scaled to the
    largest value — the textual rendition of the paper's bar figures. *)
val bars : title:string -> (string * float) list -> unit

(** Render one bar of [width] characters for [value] against [max]. *)
val bar_of : width:int -> max:float -> float -> string
