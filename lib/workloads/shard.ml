(* Sub-experiment sharding: the run/reduce split behind `bench -j N`.

   An experiment is flattened at *plan* time into self-contained sim-run
   cells — each cell owns its config (opts copied, seed fixed) and builds
   its machine inside the cell, so cells share no mutable state. Execution
   pushes every plan's cells onto one shared domain pool in
   longest-task-first order; each cell writes its value and measure into
   its own slot. Reduction then walks the plans in submission order,
   reading slots — so the printed output is a pure function of the cell
   values, i.e. byte-identical for every [-j], by construction.

   Measures ride along per cell: wall-clock, engine ops (read from the
   run's own engines via the result extractor — there is no process-wide
   ops counter to misattribute), and GC words. Minor words use
   [Gc.minor_words] (domain-local, exact under any [-j]); major/promoted
   deltas come from the executing domain's [quick_stat], exact because a
   cell runs on exactly one domain and no domain is joined mid-pool. *)

type measure = {
  wall_s : float;  (** summed run wall — CPU-seconds under [-j N] *)
  max_wall_s : float;  (** slowest single run: the shard-level critical path *)
  engine_ops : int option;  (** [None] = no engine-driven run (n/a, not 0) *)
  minor_words : float;
  major_words : float;
  promoted_words : float;
  runs : int;
}

let zero_measure =
  {
    wall_s = 0.0;
    max_wall_s = 0.0;
    engine_ops = None;
    minor_words = 0.0;
    major_words = 0.0;
    promoted_words = 0.0;
    runs = 0;
  }

let add_measure a b =
  {
    wall_s = a.wall_s +. b.wall_s;
    max_wall_s = Float.max a.max_wall_s b.max_wall_s;
    engine_ops =
      (match (a.engine_ops, b.engine_ops) with
      | None, o | o, None -> o
      | Some x, Some y -> Some (x + y));
    minor_words = a.minor_words +. b.minor_words;
    major_words = a.major_words +. b.major_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    runs = a.runs + b.runs;
  }

type job = {
  label : string;
  weight : float;  (** estimated cost in engine-op units; drives LPT order *)
  exec : progress:bool -> unit;
  measure : measure option ref;
}

type plan = {
  name : string;
  jobs : job list;  (** cells this experiment *owns* (pays for, in perf) *)
  reused : int;  (** cells read from the memo, owned by an earlier plan *)
  reduce : unit -> unit;  (** prints tables via {!Report}; reads cells *)
}

let cell ?(label = "") ?ops ~weight f =
  let slot = ref None in
  let measure = ref None in
  let exec ~progress =
    let s0 = Gc.quick_stat () in
    let mw0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let v = f () in
    let wall = Unix.gettimeofday () -. t0 in
    let mw1 = Gc.minor_words () in
    let s1 = Gc.quick_stat () in
    slot := Some v;
    measure :=
      Some
        {
          wall_s = wall;
          max_wall_s = wall;
          engine_ops = Option.map (fun g -> g v) ops;
          minor_words = mw1 -. mw0;
          major_words = s1.Gc.major_words -. s0.Gc.major_words;
          promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
          runs = 1;
        };
    if progress then Printf.eprintf "[bench]   %-32s %6.2fs\n%!" label wall
  in
  let get () =
    match !slot with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Shard: cell %S read before execution (reduce before run?)"
             label)
  in
  ({ label; weight; exec; measure }, get)

(* Cross-experiment cell memoization. Identical (config, seed) cells —
   e.g. an ablation row at the same scale as a fig10 point, or the micro
   matrices figs 5-8 and table 3 both consume — run once: the first plan
   to register a key owns the job (and its measure); later registrations
   get only the getter. Plan construction is sequential and deterministic,
   so ownership is stable run to run, and reading a shared slot is exactly
   reading any other cell's slot — reduced output stays byte-identical for
   every [-j]. Keys come from the workloads' [config_key] serializers,
   which cover every config field. *)
type 'a memo = (string, unit -> 'a) Hashtbl.t

let create_memo () : 'a memo = Hashtbl.create 64

let memo_cell memo ~key ?label ?ops ~weight f =
  match Hashtbl.find_opt memo key with
  | Some get -> ([], get, false)
  | None ->
      let job, get = cell ?label ?ops ~weight f in
      Hashtbl.add memo key get;
      ([ job ], get, true)

type outcome = {
  out_name : string;
  output : string;
  out_measure : measure;
  out_reused : int;
}

let aggregate jobs ~reduce_wall =
  let m =
    List.fold_left
      (fun acc j ->
        match !(j.measure) with
        | Some jm -> add_measure acc jm
        | None -> acc)
      zero_measure jobs
  in
  { m with wall_s = m.wall_s +. reduce_wall }

let execute ?(progress = false) ~jobs plans =
  let all = Array.of_list (List.concat_map (fun p -> p.jobs) plans) in
  let weights = Array.map (fun j -> j.weight) all in
  let thunks = Array.map (fun j () -> j.exec ~progress) all in
  let gc = ref Domain_pool.zero_gc_totals in
  ignore
    (Domain_pool.run ~jobs ~weights ~tune_gc:true ~gc_totals:gc thunks : unit array);
  let outcomes =
    List.map
      (fun p ->
        let t0 = Unix.gettimeofday () in
        let output = Report.capture p.reduce in
        let reduce_wall = Unix.gettimeofday () -. t0 in
        {
          out_name = p.name;
          output;
          out_measure = aggregate p.jobs ~reduce_wall;
          out_reused = p.reused;
        })
      plans
  in
  (outcomes, !gc)
