(** Sub-experiment sharding: plan / execute / reduce for the bench harness.

    An experiment is flattened into self-contained sim-run {e cells} at
    plan time; every plan's cells execute on one shared {!Sim.Domain_pool}
    in longest-task-first order; reduction reads cell slots in plan order.
    Because a cell's value lands in its own slot whatever the schedule,
    reduced output is byte-identical for every [-j] by construction. *)

(** Per-cell (and, aggregated, per-experiment) cost accounting. *)
type measure = {
  wall_s : float;  (** summed run wall — CPU-seconds under [-j N] *)
  max_wall_s : float;  (** slowest single run: the shard-level critical path *)
  engine_ops : int option;
      (** engine events + advances, from the run's own engines via the
          cell's extractor; [None] marks "no engine-driven run" (reported
          as an explicit n/a, never a misleading 0) *)
  minor_words : float;  (** exact: [Gc.minor_words] is domain-local *)
  major_words : float;
  promoted_words : float;
  runs : int;
}

val zero_measure : measure
val add_measure : measure -> measure -> measure

type job

type plan = {
  name : string;
  jobs : job list;
      (** cells this experiment owns — shared cells (e.g. the micro
          matrices figs 5–8 and table 3 both consume) belong to exactly
          one plan, so perf attribution never double-counts *)
  reused : int;
      (** cells this experiment reads from a {!memo} but does not own:
          they were registered first by an earlier plan. Perf mode marks
          such experiments [memoized] so the gate knows their measures
          cover only part of what they print. *)
  reduce : unit -> unit;  (** prints via {!Report}; runs after every cell *)
}

(** [cell ?label ?ops ~weight f] wraps one self-contained sim run.
    Returns the job (to attach to the owning plan) and a getter the
    reduce phase calls; the getter raises if read before execution.
    [ops] extracts the run's engine-op count from its result; omit it for
    runs that drive no engine (the measure reports n/a). [weight] is the
    estimated cost in engine-op units — only the descending order of
    weights matters (LPT scheduling). [f] must not print: tables belong
    in reduce, where output is captured deterministically. *)
val cell :
  ?label:string -> ?ops:('a -> int) -> weight:float -> (unit -> 'a) -> job * (unit -> 'a)

(** Cross-experiment cell memoization: identical (config, seed) cells run
    once, whatever experiments consume them. *)
type 'a memo

val create_memo : unit -> 'a memo

(** [memo_cell memo ~key ...] is {!cell}, deduplicated on [key] (a
    workload [config_key]). The first registration of a key builds the
    cell and returns [([job], get, true)] — the caller owns the job.
    Later registrations return [([], get, false)]: the same getter, no
    job, nothing to pay for. Plan construction is sequential, so
    ownership is deterministic (first builder in plan order). *)
val memo_cell :
  'a memo ->
  key:string ->
  ?label:string ->
  ?ops:('a -> int) ->
  weight:float ->
  (unit -> 'a) ->
  job list * (unit -> 'a) * bool

type outcome = {
  out_name : string;
  output : string;  (** the experiment's captured tables *)
  out_measure : measure;  (** cells summed + reduce wall *)
  out_reused : int;  (** the plan's [reused] count, for perf reporting *)
}

(** [execute ~jobs plans] runs every plan's cells on the shared pool
    ([jobs] domains, LPT order, per-worker GC tuning) and reduces in plan
    order. [progress] prints one per-cell elapsed line to stderr as cells
    finish (unordered across domains; stdout stays schedule-independent).
    Also returns the pool's summed per-domain GC deltas. *)
val execute :
  ?progress:bool -> jobs:int -> plan list -> outcome list * Domain_pool.gc_totals
