(* The `tlbsim shootout` workload: the same metered madvise microbenchmark
   run once per protocol backend, reduced to one comparison row each —
   initiator/responder latency, shootdown count, phase-latency p50s from
   the machine's metric registry (DESIGN.md §10), and cacheline traffic.

   Cells are self-contained (config, seed) sim runs executed on the shared
   Domain_pool and read back in plan order, the same contract as the bench
   harness and `tlbsim stats`, so the report is byte-identical at any
   [-j]. The paper backend appears twice — all optimizations and bare
   baseline — bracketing the protocol's own headroom before the
   alternative backends are compared against it. *)

type format = Table | Json

type row = {
  sh_label : string;
  sh_protocol : Opts.protocol;
  sh_initiator_mean : float;
  sh_initiator_sd : float;
  sh_responder_mean : float;
  sh_shootdowns : int;
  sh_prep_p50 : float option;
  sh_ipi_p50 : float option;
  sh_flush_p50 : float option;
  sh_ack_p50 : float option;
  sh_line_transfers : int;  (* metered cacheline transfers, all ranks *)
  sh_line_cycles : float;  (* total cycles those transfers cost *)
}

(* One entry per backend under comparison; opts built fresh per call (they
   are mutable and each cell's machine owns its copy). *)
let backends () =
  [
    ("paper", Opts.all ~safe:true);
    ("paper-baseline", Opts.baseline ~safe:true);
    ("oracle", Opts.oracle ~safe:true);
    ("sync-broadcast", Opts.with_protocol Opts.Sync_broadcast ~safe:true);
    ("queue-spin", Opts.with_protocol Opts.Queue_spin ~safe:true);
  ]

(* Pool every series of [name]: exact-moment merge of each per-rank
   accumulator into a fresh one (phase series are split by topology
   distance; the comparison wants the phase as a whole). Series carrying
   kind="skipped" are excluded — generation-skip "flushes" are priced at
   ~0 cycles and a broadcast backend IPIs 50+ idle CPUs per shootdown, so
   pooling them in would pin every broadcast flush p50 to 0. *)
let pooled_stats metrics name =
  let acc = Stats.create () in
  List.iter
    (fun s ->
      if
        String.equal (Metrics.series_name s) name
        && not (List.mem ("kind", "skipped") (Metrics.series_labels s))
      then Stats.merge_into acc (Metrics.stats s))
    (Metrics.all metrics);
  acc

let row_of_result label protocol (r : Microbench.result) =
  let p50 name = Stats.percentile_opt (pooled_stats r.Microbench.metrics name) 50.0 in
  let line = pooled_stats r.Microbench.metrics "cacheline_transfer_cycles" in
  {
    sh_label = label;
    sh_protocol = protocol;
    sh_initiator_mean = r.Microbench.initiator_mean;
    sh_initiator_sd = r.Microbench.initiator_sd;
    sh_responder_mean = r.Microbench.responder_mean;
    sh_shootdowns = r.Microbench.shootdowns;
    sh_prep_p50 = p50 "shootdown_prep_cycles";
    sh_ipi_p50 = p50 "ipi_delivery_cycles";
    sh_flush_p50 = p50 "flush_exec_cycles";
    sh_ack_p50 = p50 "ack_wait_cycles";
    sh_line_transfers = Stats.count line;
    sh_line_cycles = Stats.total line;
  }

(* The backend cells as Shard jobs plus a plan-order row reader, for
   embedding in a larger plan set (the bench harness owns its own
   Shard.execute); row order is a pure function of [backends]. *)
let plan_cells ?(pte_count = 10) ?(iterations = 200) ?(seed = 7L) () =
  let cells =
    List.map
      (fun (label, opts) ->
        let base =
          Microbench.default_config ~opts ~placement:Microbench.Cross_socket ~pte_count
        in
        let config = { base with Microbench.iterations; seed; metering = true } in
        let job, get =
          Shard.cell
            ~label:(Printf.sprintf "shootout/%s" label)
            ~ops:(fun r -> r.Microbench.engine_ops)
            ~weight:(float_of_int (iterations * pte_count))
            (fun () -> Microbench.run config)
        in
        (label, opts.Opts.protocol, job, get))
      (backends ())
  in
  ( List.map (fun (_, _, job, _) -> job) cells,
    fun () ->
      List.map (fun (label, protocol, _, get) -> row_of_result label protocol (get ())) cells
  )

let collect ?pte_count ?iterations ?seed ~jobs () =
  let cell_jobs, get_rows = plan_cells ?pte_count ?iterations ?seed () in
  let plan =
    { Shard.name = "shootout"; jobs = cell_jobs; reused = 0; reduce = (fun () -> ()) }
  in
  let _outcomes, _gc = Shard.execute ~jobs [ plan ] in
  get_rows ()

let opt_cell = function None -> "-" | Some v -> Printf.sprintf "%.0f" v

let render_table rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-16s %-14s %14s %12s %10s %9s %8s %9s %8s %10s\n" "backend"
       "protocol" "madvise cyc" "responder" "shootdowns" "prep p50" "ipi p50" "flush p50"
       "ack p50" "line xfers");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-16s %-14s %8.0f +-%4.0f %12.0f %10d %9s %8s %9s %8s %10d\n"
           r.sh_label
           (Opts.protocol_label r.sh_protocol)
           r.sh_initiator_mean r.sh_initiator_sd r.sh_responder_mean r.sh_shootdowns
           (opt_cell r.sh_prep_p50) (opt_cell r.sh_ipi_p50) (opt_cell r.sh_flush_p50)
           (opt_cell r.sh_ack_p50) r.sh_line_transfers))
    rows;
  Buffer.contents b

let json_opt = function None -> "null" | Some v -> Printf.sprintf "%.1f" v

(* One JSON object per row, keyed by "protocol" — deliberately not "name",
   so perf-gate scanners that only understand the workload-row schema walk
   past shootout rows instead of misreading them. *)
let json_of_row r =
  Printf.sprintf
    "{\"protocol\": \"%s\", \"backend\": \"%s\", \"initiator_mean\": %.1f, \
     \"initiator_sd\": %.1f, \"responder_mean\": %.1f, \"shootdowns\": %d, \
     \"prep_p50\": %s, \"ipi_p50\": %s, \"flush_p50\": %s, \"ack_p50\": %s, \
     \"line_transfers\": %d, \"line_cycles\": %.0f}"
    (Opts.protocol_label r.sh_protocol)
    r.sh_label r.sh_initiator_mean r.sh_initiator_sd r.sh_responder_mean r.sh_shootdowns
    (json_opt r.sh_prep_p50) (json_opt r.sh_ipi_p50) (json_opt r.sh_flush_p50)
    (json_opt r.sh_ack_p50) r.sh_line_transfers r.sh_line_cycles

let render_json rows =
  "[\n  " ^ String.concat ",\n  " (List.map json_of_row rows) ^ "\n]\n"

let render format rows =
  match format with Table -> render_table rows | Json -> render_json rows

let run ?pte_count ?iterations ?seed ~jobs format =
  render format (collect ?pte_count ?iterations ?seed ~jobs ())

(* ----- Cross-backend workloads: fig10 / fig11 / bigmachine-56 ----- *)

(* The workload comparison drops paper-baseline (fig10/fig11 already print
   baseline speedup columns) and races the four real backends on the
   paper's workload evaluation. Paper opts are [Opts.all ~safe:true] —
   value-identical to fig10/fig11's final "+batching" stack and the bench
   bigmachine config — so in a bench `all` run planned after those
   experiments every paper cell comes from the memo, not a rerun. *)
let workload_backends () =
  [
    ("paper", Opts.all ~safe:true);
    ("oracle", Opts.oracle ~safe:true);
    ("sync-broadcast", Opts.with_protocol Opts.Sync_broadcast ~safe:true);
    ("queue-spin", Opts.with_protocol Opts.Queue_spin ~safe:true);
  ]

type wl_row = {
  wl_experiment : string;
  wl_protocol : Opts.protocol;
  wl_throughput : float option;
  wl_cycles_per_shootdown : float option;
  wl_shootdowns : int;
  wl_memoized : bool;
}

type wl_report = {
  wl_fig10 : (Opts.protocol * (int * float * int) list) list;
  wl_fig11 : (Opts.protocol * (int * float * int) list) list;
  wl_big : (Opts.protocol * Bigmachine.result) list;
  wl_rows : wl_row list;
}

let workload_cells ~sysbench_memo ~apache_memo ~bigmachine_memo ~fig10 ~fig11 ~quick ()
    =
  let jobs = ref [] in
  let reused_total = ref 0 in
  let add js r =
    jobs := List.rev_append js !jobs;
    reused_total := !reused_total + r
  in
  let f10_cells =
    List.length fig10.Figures.sys_threads * List.length fig10.Figures.sys_seeds
  in
  let f11_cells =
    List.length fig11.Figures.ap_cores * List.length fig11.Figures.ap_seeds
  in
  let f10 =
    List.map
      (fun (label, opts) ->
        let js, get, r =
          Figures.fig10_backend_cells ~memo:sysbench_memo ~tag:label ~opts fig10
        in
        add js r;
        (opts.Opts.protocol, get, r = f10_cells))
      (workload_backends ())
  in
  let f11 =
    List.map
      (fun (label, opts) ->
        let js, get, r =
          Figures.fig11_backend_cells ~memo:apache_memo ~tag:label ~opts fig11
        in
        add js r;
        (opts.Opts.protocol, get, r = f11_cells))
      (workload_backends ())
  in
  let big =
    List.map
      (fun (label, opts) ->
        let cfg = Bigmachine.default_config ~opts ~n_cpus:56 in
        let cfg = if quick then Bigmachine.quick_shape cfg else cfg in
        let js, get, fresh =
          Shard.memo_cell bigmachine_memo ~key:(Bigmachine.config_key cfg)
            ~label:(Printf.sprintf "wl-bigmachine-56 %s" label)
            ~ops:(fun r -> r.Bigmachine.engine_ops)
            ~weight:
              (float_of_int
                 ((cfg.Bigmachine.tenants * cfg.Bigmachine.threads_per_tenant
                  * cfg.Bigmachine.ops_per_thread * 40)
                 + 5600))
            (fun () -> Bigmachine.run cfg)
        in
        add js (if fresh then 0 else 1);
        (opts.Opts.protocol, get, not fresh))
      (workload_backends ())
  in
  let mean_tput cells =
    List.fold_left (fun acc (_, t, _) -> acc +. t) 0.0 cells
    /. float_of_int (List.length cells)
  in
  let sum_sh cells = List.fold_left (fun acc (_, _, s) -> acc + s) 0 cells in
  let get () =
    let fig10_rows = List.map (fun (p, g, _) -> (p, g ())) f10 in
    let fig11_rows = List.map (fun (p, g, _) -> (p, g ())) f11 in
    let big_rows = List.map (fun (p, g, _) -> (p, g ())) big in
    let tput_rows name per_backend =
      List.map
        (fun (p, g, memoized) ->
          let cells = g () in
          {
            wl_experiment = name;
            wl_protocol = p;
            wl_throughput = Some (mean_tput cells);
            wl_cycles_per_shootdown = None;
            wl_shootdowns = sum_sh cells;
            wl_memoized = memoized;
          })
        per_backend
    in
    let big_gate_rows =
      List.map
        (fun (p, g, memoized) ->
          let r = g () in
          {
            wl_experiment = "wl-bigmachine-56";
            wl_protocol = p;
            wl_throughput = None;
            wl_cycles_per_shootdown = Some r.Bigmachine.cycles_per_shootdown;
            wl_shootdowns = r.Bigmachine.shootdowns;
            wl_memoized = memoized;
          })
        big
    in
    {
      wl_fig10 = fig10_rows;
      wl_fig11 = fig11_rows;
      wl_big = big_rows;
      wl_rows = tput_rows "wl-fig10" f10 @ tput_rows "wl-fig11" f11 @ big_gate_rows;
    }
  in
  (List.rev !jobs, get, !reused_total)

(* One JSON object per (experiment, proto) summary row. Keyed
   ["experiment":] with the backend in ["proto":] — deliberately neither
   ["name":], ["scale":], ["phase":] nor ["protocol":], so none of the
   pre-schema-7 perf_gate scanners can misread a workload row, and the
   schema-7 workload scanner sees only these. *)
let json_of_wl_row r =
  let opt fmt = function None -> "null" | Some v -> Printf.sprintf fmt v in
  Printf.sprintf
    "{\"experiment\": \"%s\", \"proto\": \"%s\", \"throughput\": %s, \
     \"cycles_per_shootdown\": %s, \"shootdowns\": %d, \"memoized\": %b}"
    r.wl_experiment
    (Opts.protocol_label r.wl_protocol)
    (opt "%.4f" r.wl_throughput)
    (opt "%.2f" r.wl_cycles_per_shootdown)
    r.wl_shootdowns r.wl_memoized

(* Plain-text rendition for the CLI: one table per workload family,
   backends as columns (fig10/fig11) or rows (bigmachine). *)
let render_workloads report =
  let b = Buffer.create 2048 in
  let backend_header = List.map (fun (l, _) -> l) (workload_backends ()) in
  let tput_table ~title ~axis rows =
    Buffer.add_string b (title ^ "\n");
    Buffer.add_string b (Printf.sprintf "%-8s" axis);
    List.iter (fun l -> Buffer.add_string b (Printf.sprintf " %14s" l)) backend_header;
    Buffer.add_char b '\n';
    (match rows with
    | [] -> ()
    | (_, first) :: _ ->
        List.iteri
          (fun i (n, _, _) ->
            Buffer.add_string b (Printf.sprintf "%-8d" n);
            List.iter
              (fun (_, cells) ->
                let _, t, _ = List.nth cells i in
                Buffer.add_string b (Printf.sprintf " %14.4f" t))
              rows;
            Buffer.add_char b '\n')
          first);
    Buffer.add_char b '\n'
  in
  tput_table ~title:"fig10 — sysbench ops/kcyc per backend" ~axis:"threads"
    report.wl_fig10;
  tput_table ~title:"fig11 — apache req/Mcyc per backend" ~axis:"cores" report.wl_fig11;
  Buffer.add_string b "bigmachine-56 — multi-tenant churn per backend\n";
  Buffer.add_string b
    (Printf.sprintf "%-16s %18s %10s %8s %10s\n" "backend" "cycles/shootdown"
       "shootdowns" "IPIs" "ICR writes");
  List.iter
    (fun (p, r) ->
      Buffer.add_string b
        (Printf.sprintf "%-16s %18.0f %10d %8d %10d\n" (Opts.protocol_label p)
           r.Bigmachine.cycles_per_shootdown r.Bigmachine.shootdowns r.Bigmachine.ipis
           r.Bigmachine.icr_writes))
    report.wl_big;
  Buffer.contents b

let render_wl_json report =
  "[\n  " ^ String.concat ",\n  " (List.map json_of_wl_row report.wl_rows) ^ "\n]\n"

let run_workloads ?(quick = true) ~jobs format =
  let sysbench_memo = Shard.create_memo () in
  let apache_memo = Shard.create_memo () in
  let bigmachine_memo = Shard.create_memo () in
  let cell_jobs, get, _reused =
    workload_cells ~sysbench_memo ~apache_memo ~bigmachine_memo
      ~fig10:(Figures.fig10_scale ~quick) ~fig11:(Figures.fig11_scale ~quick) ~quick ()
  in
  let plan =
    {
      Shard.name = "shootout-workloads";
      jobs = cell_jobs;
      reused = 0;
      reduce = (fun () -> ());
    }
  in
  let _outcomes, _gc = Shard.execute ~jobs [ plan ] in
  let report = get () in
  match format with Table -> render_workloads report | Json -> render_wl_json report
