(* The `tlbsim shootout` workload: the same metered madvise microbenchmark
   run once per protocol backend, reduced to one comparison row each —
   initiator/responder latency, shootdown count, phase-latency p50s from
   the machine's metric registry (DESIGN.md §10), and cacheline traffic.

   Cells are self-contained (config, seed) sim runs executed on the shared
   Domain_pool and read back in plan order, the same contract as the bench
   harness and `tlbsim stats`, so the report is byte-identical at any
   [-j]. The paper backend appears twice — all optimizations and bare
   baseline — bracketing the protocol's own headroom before the
   alternative backends are compared against it. *)

type format = Table | Json

type row = {
  sh_label : string;
  sh_protocol : Opts.protocol;
  sh_initiator_mean : float;
  sh_initiator_sd : float;
  sh_responder_mean : float;
  sh_shootdowns : int;
  sh_prep_p50 : float option;
  sh_ipi_p50 : float option;
  sh_flush_p50 : float option;
  sh_ack_p50 : float option;
  sh_line_transfers : int;  (* metered cacheline transfers, all ranks *)
  sh_line_cycles : float;  (* total cycles those transfers cost *)
}

(* One entry per backend under comparison; opts built fresh per call (they
   are mutable and each cell's machine owns its copy). *)
let backends () =
  [
    ("paper", Opts.all ~safe:true);
    ("paper-baseline", Opts.baseline ~safe:true);
    ("oracle", Opts.oracle ~safe:true);
    ("sync-broadcast", Opts.with_protocol Opts.Sync_broadcast ~safe:true);
    ("queue-spin", Opts.with_protocol Opts.Queue_spin ~safe:true);
  ]

(* Pool every series of [name]: exact-moment merge of each per-rank
   accumulator into a fresh one (phase series are split by topology
   distance; the comparison wants the phase as a whole). Series carrying
   kind="skipped" are excluded — generation-skip "flushes" are priced at
   ~0 cycles and a broadcast backend IPIs 50+ idle CPUs per shootdown, so
   pooling them in would pin every broadcast flush p50 to 0. *)
let pooled_stats metrics name =
  let acc = Stats.create () in
  List.iter
    (fun s ->
      if
        String.equal (Metrics.series_name s) name
        && not (List.mem ("kind", "skipped") (Metrics.series_labels s))
      then Stats.merge_into acc (Metrics.stats s))
    (Metrics.all metrics);
  acc

let row_of_result label protocol (r : Microbench.result) =
  let p50 name = Stats.percentile_opt (pooled_stats r.Microbench.metrics name) 50.0 in
  let line = pooled_stats r.Microbench.metrics "cacheline_transfer_cycles" in
  {
    sh_label = label;
    sh_protocol = protocol;
    sh_initiator_mean = r.Microbench.initiator_mean;
    sh_initiator_sd = r.Microbench.initiator_sd;
    sh_responder_mean = r.Microbench.responder_mean;
    sh_shootdowns = r.Microbench.shootdowns;
    sh_prep_p50 = p50 "shootdown_prep_cycles";
    sh_ipi_p50 = p50 "ipi_delivery_cycles";
    sh_flush_p50 = p50 "flush_exec_cycles";
    sh_ack_p50 = p50 "ack_wait_cycles";
    sh_line_transfers = Stats.count line;
    sh_line_cycles = Stats.total line;
  }

(* The backend cells as Shard jobs plus a plan-order row reader, for
   embedding in a larger plan set (the bench harness owns its own
   Shard.execute); row order is a pure function of [backends]. *)
let plan_cells ?(pte_count = 10) ?(iterations = 200) ?(seed = 7L) () =
  let cells =
    List.map
      (fun (label, opts) ->
        let base =
          Microbench.default_config ~opts ~placement:Microbench.Cross_socket ~pte_count
        in
        let config = { base with Microbench.iterations; seed; metering = true } in
        let job, get =
          Shard.cell
            ~label:(Printf.sprintf "shootout/%s" label)
            ~ops:(fun r -> r.Microbench.engine_ops)
            ~weight:(float_of_int (iterations * pte_count))
            (fun () -> Microbench.run config)
        in
        (label, opts.Opts.protocol, job, get))
      (backends ())
  in
  ( List.map (fun (_, _, job, _) -> job) cells,
    fun () ->
      List.map (fun (label, protocol, _, get) -> row_of_result label protocol (get ())) cells
  )

let collect ?pte_count ?iterations ?seed ~jobs () =
  let cell_jobs, get_rows = plan_cells ?pte_count ?iterations ?seed () in
  let plan =
    { Shard.name = "shootout"; jobs = cell_jobs; reused = 0; reduce = (fun () -> ()) }
  in
  let _outcomes, _gc = Shard.execute ~jobs [ plan ] in
  get_rows ()

let opt_cell = function None -> "-" | Some v -> Printf.sprintf "%.0f" v

let render_table rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-16s %-14s %14s %12s %10s %9s %8s %9s %8s %10s\n" "backend"
       "protocol" "madvise cyc" "responder" "shootdowns" "prep p50" "ipi p50" "flush p50"
       "ack p50" "line xfers");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-16s %-14s %8.0f +-%4.0f %12.0f %10d %9s %8s %9s %8s %10d\n"
           r.sh_label
           (Opts.protocol_label r.sh_protocol)
           r.sh_initiator_mean r.sh_initiator_sd r.sh_responder_mean r.sh_shootdowns
           (opt_cell r.sh_prep_p50) (opt_cell r.sh_ipi_p50) (opt_cell r.sh_flush_p50)
           (opt_cell r.sh_ack_p50) r.sh_line_transfers))
    rows;
  Buffer.contents b

let json_opt = function None -> "null" | Some v -> Printf.sprintf "%.1f" v

(* One JSON object per row, keyed by "protocol" — deliberately not "name",
   so perf-gate scanners that only understand the workload-row schema walk
   past shootout rows instead of misreading them. *)
let json_of_row r =
  Printf.sprintf
    "{\"protocol\": \"%s\", \"backend\": \"%s\", \"initiator_mean\": %.1f, \
     \"initiator_sd\": %.1f, \"responder_mean\": %.1f, \"shootdowns\": %d, \
     \"prep_p50\": %s, \"ipi_p50\": %s, \"flush_p50\": %s, \"ack_p50\": %s, \
     \"line_transfers\": %d, \"line_cycles\": %.0f}"
    (Opts.protocol_label r.sh_protocol)
    r.sh_label r.sh_initiator_mean r.sh_initiator_sd r.sh_responder_mean r.sh_shootdowns
    (json_opt r.sh_prep_p50) (json_opt r.sh_ipi_p50) (json_opt r.sh_flush_p50)
    (json_opt r.sh_ack_p50) r.sh_line_transfers r.sh_line_cycles

let render_json rows =
  "[\n  " ^ String.concat ",\n  " (List.map json_of_row rows) ^ "\n]\n"

let render format rows =
  match format with Table -> render_table rows | Json -> render_json rows

let run ?pte_count ?iterations ?seed ~jobs format =
  render format (collect ?pte_count ?iterations ?seed ~jobs ())
