(** The `tlbsim shootout` report: the metered madvise microbenchmark run
    once per protocol backend ({!Opts.protocol} — the paper protocol with
    all optimizations and bare, the oracle, the cronus-style synchronous
    broadcast and the charmos-style per-CPU queue), reduced to one
    comparison row each: initiator/responder latency, shootdown count,
    phase-latency p50s (DESIGN.md §10) and cacheline traffic.

    Cells run through {!Shard} and are read back in plan order, so the
    rendered report is byte-identical at any [~jobs]. *)

type format = Table | Json

type row = {
  sh_label : string;  (** backend row label, e.g. ["paper-baseline"] *)
  sh_protocol : Opts.protocol;
  sh_initiator_mean : float;  (** madvise cycles, mean over iterations *)
  sh_initiator_sd : float;
  sh_responder_mean : float;  (** responder interruption per shootdown *)
  sh_shootdowns : int;
  sh_prep_p50 : float option;  (** pooled over distance ranks; [None] = no samples *)
  sh_ipi_p50 : float option;
  sh_flush_p50 : float option;
  sh_ack_p50 : float option;
  sh_line_transfers : int;  (** metered cacheline transfers, all ranks *)
  sh_line_cycles : float;  (** total cycles those transfers cost *)
}

(** The backend cells as {!Shard} jobs plus a plan-order row reader (only
    valid after the jobs executed), for embedding in a harness that owns
    its own [Shard.execute]. Defaults: 10 PTEs, 200 iterations, seed 7. *)
val plan_cells :
  ?pte_count:int ->
  ?iterations:int ->
  ?seed:int64 ->
  unit ->
  Shard.job list * (unit -> row list)

(** Run every backend's cell (sharded over [jobs] domains) and return the
    rows in backend order. *)
val collect :
  ?pte_count:int -> ?iterations:int -> ?seed:int64 -> jobs:int -> unit -> row list

(** One JSON object, keyed by ["protocol"] (not ["name"], so workload-row
    scanners skip shootout rows rather than misread them). *)
val json_of_row : row -> string

val render : format -> row list -> string

(** {!collect} + {!render}. *)
val run :
  ?pte_count:int -> ?iterations:int -> ?seed:int64 -> jobs:int -> format -> string
