(** The `tlbsim shootout` report: the metered madvise microbenchmark run
    once per protocol backend ({!Opts.protocol} — the paper protocol with
    all optimizations and bare, the oracle, the cronus-style synchronous
    broadcast and the charmos-style per-CPU queue), reduced to one
    comparison row each: initiator/responder latency, shootdown count,
    phase-latency p50s (DESIGN.md §10) and cacheline traffic.

    Cells run through {!Shard} and are read back in plan order, so the
    rendered report is byte-identical at any [~jobs]. *)

type format = Table | Json

type row = {
  sh_label : string;  (** backend row label, e.g. ["paper-baseline"] *)
  sh_protocol : Opts.protocol;
  sh_initiator_mean : float;  (** madvise cycles, mean over iterations *)
  sh_initiator_sd : float;
  sh_responder_mean : float;  (** responder interruption per shootdown *)
  sh_shootdowns : int;
  sh_prep_p50 : float option;  (** pooled over distance ranks; [None] = no samples *)
  sh_ipi_p50 : float option;
  sh_flush_p50 : float option;
  sh_ack_p50 : float option;
  sh_line_transfers : int;  (** metered cacheline transfers, all ranks *)
  sh_line_cycles : float;  (** total cycles those transfers cost *)
}

(** The backend cells as {!Shard} jobs plus a plan-order row reader (only
    valid after the jobs executed), for embedding in a harness that owns
    its own [Shard.execute]. Defaults: 10 PTEs, 200 iterations, seed 7. *)
val plan_cells :
  ?pte_count:int ->
  ?iterations:int ->
  ?seed:int64 ->
  unit ->
  Shard.job list * (unit -> row list)

(** Run every backend's cell (sharded over [jobs] domains) and return the
    rows in backend order. *)
val collect :
  ?pte_count:int -> ?iterations:int -> ?seed:int64 -> jobs:int -> unit -> row list

(** One JSON object, keyed by ["protocol"] (not ["name"], so workload-row
    scanners skip shootout rows rather than misread them). *)
val json_of_row : row -> string

val render : format -> row list -> string

(** {!collect} + {!render}. *)
val run :
  ?pte_count:int -> ?iterations:int -> ?seed:int64 -> jobs:int -> format -> string

(** {2 Cross-backend workloads}

    The paper's workload evaluation — fig10 sysbench, fig11 apache and the
    bigmachine-56 multi-tenant churn — run once per real backend (paper /
    oracle / sync-broadcast / queue-spin; paper-baseline is omitted since
    the figures already print baseline columns). Paper opts are
    [Opts.all ~safe:true], value-identical to fig10/fig11's final
    "+batching" stack and the bench bigmachine config, so embedded after
    those plans on shared memos every paper cell is reused. *)

(** The compared backends, label + fresh opts per call; labels equal
    {!Opts.protocol_label} of the backend's protocol. *)
val workload_backends : unit -> (string * Opts.t) list

(** One gate/JSON summary row per (experiment, backend). *)
type wl_row = {
  wl_experiment : string;  (** ["wl-fig10"] | ["wl-fig11"] | ["wl-bigmachine-56"] *)
  wl_protocol : Opts.protocol;
  wl_throughput : float option;
      (** fig10 ops/kcyc, fig11 req/Mcyc — mean over the scale's points *)
  wl_cycles_per_shootdown : float option;  (** bigmachine only *)
  wl_shootdowns : int;  (** summed over the family's cells *)
  wl_memoized : bool;  (** every cell reused from an earlier plan *)
}

type wl_report = {
  wl_fig10 : (Opts.protocol * (int * float * int) list) list;
      (** per backend: [(threads, ops/kcyc, shootdowns)] in thread order *)
  wl_fig11 : (Opts.protocol * (int * float * int) list) list;
  wl_big : (Opts.protocol * Bigmachine.result) list;
  wl_rows : wl_row list;  (** flattened summary rows, fixed plan order *)
}

(** The per-backend workload cells as {!Shard} jobs plus a plan-order
    report reader, for embedding in a harness that owns its own memos and
    [Shard.execute]; also returns the total reused-cell count. *)
val workload_cells :
  sysbench_memo:Sysbench.result Shard.memo ->
  apache_memo:Apache.result Shard.memo ->
  bigmachine_memo:Bigmachine.result Shard.memo ->
  fig10:Figures.fig10_scale ->
  fig11:Figures.fig11_scale ->
  quick:bool ->
  unit ->
  Shard.job list * (unit -> wl_report) * int

(** One JSON object, keyed ["experiment":] with the backend under
    ["proto":] — deliberately none of the keys the pre-schema-7 gate
    scanners walk, so they can neither misread nor silently skip-parse a
    workload row as something else. *)
val json_of_wl_row : wl_row -> string

val render_workloads : wl_report -> string

(** Standalone run on fresh memos (the `tlbsim shootout --workloads`
    path), sharded over [jobs] domains; byte-identical at any [~jobs]. *)
val run_workloads : ?quick:bool -> jobs:int -> format -> string
