type config = {
  opts : Opts.t;
  threads : int;
  ops_per_thread : int;
  sync_every : int;
  file_pages : int;
  seed : int64;
}

let default_config ~opts ~threads =
  { opts; threads; ops_per_thread = 400; sync_every = 48; file_pages = 4096; seed = 23L }

(* Canonical value key over the whole config: equal keys iff the runs are
   identical, so the bench harness may share one cell between experiments
   (fig10's points double as ablation C/E rows at the same scale). *)
let config_key { opts; threads; ops_per_thread; sync_every; file_pages; seed } =
  Printf.sprintf "sysbench|%s|t=%d ops=%d sync=%d pages=%d seed=%Ld" (Opts.key opts)
    threads ops_per_thread sync_every file_pages seed

type result = {
  ops : int;
  cycles : int;
  throughput : float;
  shootdowns : int;
  full_flush_fallbacks : int;
  batched_deferrals : int;
  engine_ops : int;
}

let node_cpus topo n =
  let cores = Topology.cpus_of_socket topo 0 in
  let siblings = List.filter_map (fun c -> Topology.smt_sibling_of topo c) cores in
  let pool = cores @ siblings in
  if n > List.length pool then
    invalid_arg
      (Printf.sprintf "Sysbench: %d threads exceed the %d CPUs of one node" n
         (List.length pool));
  List.filteri (fun i _ -> i < n) pool

(* Per-write bookkeeping sysbench does besides the store itself (request
   accounting, RNG, statistics). *)
let think_cycles = 800

let run config =
  let m = Machine.create ~opts:config.opts ~seed:config.seed () in
  let mm = Machine.new_mm m in
  let file =
    File.create m.Machine.frames ~name:"sysbench.dat" ~size_pages:config.file_pages
  in
  (* Warm the page cache (sysbench's prepare phase). *)
  for index = 0 to config.file_pages - 1 do
    ignore (File.frame_of_page file ~index)
  done;
  (* The shared mapping all threads write through. *)
  let start_vpn = Mm_struct.alloc_va_range mm ~pages:config.file_pages () in
  Mm_struct.add_vma mm
    (Vma.make ~start_vpn ~pages:config.file_pages
       ~backing:(Vma.File_shared { file; offset = 0 })
       ());
  let base_addr = Addr.addr_of_vpn start_vpn in
  let cpus = node_cpus m.Machine.topo config.threads in
  let total_ops = ref 0 in
  let finish_times = ref [] in
  List.iteri
    (fun i cpu ->
      let rng = Rng.split m.Machine.rng in
      (* Stagger each thread's sync points; in-phase syncs would create
         artificial convoys the real benchmark does not exhibit. *)
      let sync_offset = i * config.sync_every / Stdlib.max 1 config.threads in
      Kernel.spawn_user m ~cpu ~mm ~name:(Printf.sprintf "sysbench%d" i) (fun () ->
          let cpu_t = Machine.cpu m cpu in
          for op = 1 to config.ops_per_thread do
            let page = Rng.int rng config.file_pages in
            Access.write m ~cpu ~vaddr:(base_addr + (page * Addr.page_size));
            Cpu.compute cpu_t (think_cycles + Rng.int rng 200);
            incr total_ops;
            if (op + sync_offset) mod config.sync_every = 0 then
              Syscall.fdatasync m ~cpu ~file
          done;
          finish_times := Machine.now m :: !finish_times))
    cpus;
  Kernel.run m;
  (match Checker.violations m.Machine.checker with
  | [] -> ()
  | v :: _ ->
      failwith
        (Format.asprintf "Sysbench: TLB coherence violation: %a" Checker.pp_violation v));
  (* Mean thread-completion time: less straggler-sensitive than makespan,
     like reporting sysbench's per-thread event rate. *)
  let cycles =
    match !finish_times with
    | [] -> Machine.now m
    | times -> List.fold_left ( + ) 0 times / List.length times
  in
  {
    ops = !total_ops;
    cycles;
    throughput = (if cycles = 0 then 0.0 else float_of_int !total_ops *. 1000.0 /. float_of_int cycles);
    shootdowns = m.Machine.stats.Machine.shootdowns;
    full_flush_fallbacks = m.Machine.stats.Machine.full_flush_fallbacks;
    batched_deferrals = m.Machine.stats.Machine.batched_deferrals;
    engine_ops = Machine.engine_ops m;
  }
