(** Sysbench-style random writes to a memory-mapped file with periodic
    fdatasync (Figure 10).

    N threads of one process, pinned to one NUMA node, write random pages
    of a shared file mapping; every [sync_every] writes a thread calls
    fdatasync, whose writeback write-protects and cleans the dirty PTEs —
    one TLB flush each, shot down to every sibling thread. At high thread
    counts these flush storms make the generation-tracking full-flush
    shortcut dominate, which is why some optimizations fade (§5.2). *)

type config = {
  opts : Opts.t;
  threads : int;
  ops_per_thread : int;
  sync_every : int;
  file_pages : int;
  seed : int64;
}

val default_config : opts:Opts.t -> threads:int -> config

(** Canonical value key over every config field (opts via {!Opts.key}):
    equal keys iff identical runs. Feeds {!Shard.memo_cell}. *)
val config_key : config -> string

type result = {
  ops : int;  (** total writes completed *)
  cycles : int;  (** simulated makespan *)
  throughput : float;  (** ops per kilocycle *)
  shootdowns : int;
  full_flush_fallbacks : int;
  batched_deferrals : int;
  engine_ops : int;  (** engine events + advances spent by this run *)
}

val run : config -> result

(** CPUs of one NUMA node for [threads] threads: physical cores of socket 0
    first, then their SMT siblings (the paper pins to one node). *)
val node_cpus : Topology.t -> int -> int list
