(* Tests for the analysis layer: the vector-clock happens-before analyzer
   (synthetic traces and real simulator runs) and the systematic
   interleaving explorer, including the ISSUE's exhaustive-small sweep over
   every combination of the paper's general optimizations. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- happens-before on synthetic traces --- *)

let rec_ ~time ~cpu event = { Trace.time; cpu; actor = Printf.sprintf "cpu%d" cpu; event }

let flush_start ~time ~cpu ~window =
  rec_ ~time ~cpu (Trace.Flush_start { window; mm_id = 1; start_vpn = 10; span = 1; full = false })

let stale ~time ~cpu ~benign =
  rec_ ~time ~cpu (Trace.Stale_hit { mm_id = 1; vpn = 10; benign; detail = "test" })

let test_hb_empty () =
  let r = Hb.analyze [] in
  check int_t "events" 0 r.Hb.events;
  check int_t "hits" 0 r.Hb.stale_hits;
  check int_t "genuine" 0 r.Hb.genuine

let test_hb_program_order_is_genuine () =
  (* Same CPU throughout: the window close is program-ordered before the
     hit, so nothing excuses it. *)
  let trace =
    [
      rec_ ~time:0 ~cpu:0 (Trace.Pte_write { mm_id = 1; vpn = 10; pages = 1 });
      flush_start ~time:1 ~cpu:0 ~window:1;
      rec_ ~time:2 ~cpu:0 (Trace.Flush_done { window = 1; mm_id = 1 });
      stale ~time:3 ~cpu:0 ~benign:false;
    ]
  in
  let r = Hb.analyze trace in
  check int_t "one hit" 1 r.Hb.stale_hits;
  check int_t "genuine" 1 r.Hb.genuine;
  match r.Hb.findings with
  | [ f ] ->
      check bool_t "verdict" true (f.Hb.f_verdict = Hb.Genuine);
      check bool_t "chain nonempty" true (f.Hb.f_chain <> []);
      (* The chain ends at the hit and includes the window close that
         proves the ordering. *)
      check bool_t "chain has close" true
        (List.exists
           (fun (_, (r : Trace.record)) ->
             match r.Trace.event with Trace.Flush_done _ -> true | _ -> false)
           f.Hb.f_chain)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_hb_hit_before_close_is_in_flight () =
  (* The hit CPU's later ack feeds the initiator's all-acks-seen, which
     precedes the close: the hit provably landed inside the window. *)
  let trace =
    [
      rec_ ~time:0 ~cpu:0 (Trace.Pte_write { mm_id = 1; vpn = 10; pages = 1 });
      flush_start ~time:1 ~cpu:0 ~window:1;
      rec_ ~time:2 ~cpu:0 (Trace.Ipi_send { seq = 1; target = 1 });
      stale ~time:3 ~cpu:1 ~benign:true;
      rec_ ~time:4 ~cpu:1 (Trace.Ipi_begin { seq = 1; initiator = 0; early_ack = false });
      rec_ ~time:5 ~cpu:1 (Trace.Ipi_ack { seq = 1; initiator = 0; early = false });
      rec_ ~time:6 ~cpu:0 (Trace.Acks_seen { seqs = [ 1 ] });
      rec_ ~time:7 ~cpu:0 (Trace.Flush_done { window = 1; mm_id = 1 });
    ]
  in
  let r = Hb.analyze trace in
  check int_t "proved in-flight" 1 r.Hb.proved_in_flight;
  check int_t "no genuine" 0 r.Hb.genuine;
  check int_t "agrees with checker" 0 r.Hb.checker_disagreements

let test_hb_unsynchronized_close_proves_nothing () =
  (* No synchronization edge ever orders the hit against the close (the
     LATR shape: no IPI, no ack): the window must not excuse the hit. The
     checker's wall-clock flag decides between latent and genuine. *)
  let trace ~benign =
    [
      rec_ ~time:0 ~cpu:0 (Trace.Pte_write { mm_id = 1; vpn = 10; pages = 1 });
      flush_start ~time:1 ~cpu:0 ~window:1;
      stale ~time:2 ~cpu:1 ~benign;
      rec_ ~time:3 ~cpu:0 (Trace.Flush_done { window = 1; mm_id = 1 });
    ]
  in
  let r = Hb.analyze (trace ~benign:true) in
  check int_t "not proved" 0 r.Hb.proved_in_flight;
  check int_t "latent when checker excused it" 1 r.Hb.unordered_latent;
  let r = Hb.analyze (trace ~benign:false) in
  check int_t "genuine when checker flagged it" 1 r.Hb.genuine

let test_hb_unclosed_window_is_in_flight () =
  let trace =
    [ flush_start ~time:0 ~cpu:0 ~window:1; stale ~time:1 ~cpu:1 ~benign:true ]
  in
  let r = Hb.analyze trace in
  check int_t "proved in-flight" 1 r.Hb.proved_in_flight;
  check int_t "no genuine" 0 r.Hb.genuine

let test_hb_return_to_user_expires_excuse () =
  (* §3.4 contract: once the hit CPU handled the window's IPI and then
     completed a return-to-user, every deferred flush must have executed —
     a later stale hit can no longer hide behind that window. *)
  let handled_then_resumed ~resume =
    [
      rec_ ~time:0 ~cpu:0 (Trace.Pte_write { mm_id = 1; vpn = 10; pages = 1 });
      flush_start ~time:1 ~cpu:0 ~window:1;
      rec_ ~time:2 ~cpu:0 (Trace.Ipi_send { seq = 1; target = 1 });
      rec_ ~time:3 ~cpu:1 (Trace.Ipi_begin { seq = 1; initiator = 0; early_ack = true });
      rec_ ~time:4 ~cpu:1 (Trace.Ipi_ack { seq = 1; initiator = 0; early = true });
    ]
    @ (if resume then [ rec_ ~time:5 ~cpu:1 Trace.User_resume ] else [])
    @ [ stale ~time:6 ~cpu:1 ~benign:false ]
  in
  (* Without the return-to-user the window (still open) excuses the hit... *)
  let r = Hb.analyze (handled_then_resumed ~resume:false) in
  check int_t "still excused" 1 r.Hb.proved_in_flight;
  check int_t "not genuine" 0 r.Hb.genuine;
  (* ...after it, the same hit is a genuine protocol race. *)
  let r = Hb.analyze (handled_then_resumed ~resume:true) in
  check int_t "excuse expired" 0 r.Hb.proved_in_flight;
  check int_t "genuine" 1 r.Hb.genuine;
  match r.Hb.findings with
  | [ f ] ->
      check bool_t "chain shows the resume" true
        (List.exists
           (fun (_, (r : Trace.record)) -> r.Trace.event = Trace.User_resume)
           f.Hb.f_chain)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* --- happens-before on real simulator traces --- *)

let run_demo ~opts ~rounds =
  let m = Scenarios.early_ack_demo ~opts ~rounds () in
  Trace.enable m.Machine.trace;
  Kernel.run m;
  (m, Hb.analyze (Trace.records m.Machine.trace))

let test_demo_races_proved_benign () =
  let opts = Opts.all_general ~safe:true in
  let m, r = run_demo ~opts ~rounds:20 in
  check bool_t "stale hits occurred" true (r.Hb.stale_hits > 0);
  check bool_t "some proved in-flight" true (r.Hb.proved_in_flight > 0);
  check int_t "no genuine race" 0 r.Hb.genuine;
  check int_t "hb agrees with checker" 0 r.Hb.checker_disagreements;
  check int_t "checker clean too" 0 (Checker.violation_count m.Machine.checker)

let test_injected_bug_is_flagged_genuine () =
  let opts = Opts.all_general ~safe:true in
  opts.Opts.bug_skip_deferred_flush <- true;
  let m, r = run_demo ~opts ~rounds:20 in
  check bool_t "genuine races found" true (r.Hb.genuine > 0);
  check bool_t "checker caught them too" true (Checker.violation_count m.Machine.checker > 0);
  let genuine_findings =
    List.filter (fun f -> f.Hb.f_verdict = Hb.Genuine) r.Hb.findings
  in
  check bool_t "genuine finding reported" true (genuine_findings <> []);
  List.iter
    (fun f ->
      check bool_t "chain nonempty" true (f.Hb.f_chain <> []);
      (* Every chain ends at the stale hit it explains. *)
      match List.rev f.Hb.f_chain with
      | (_, { Trace.event = Trace.Stale_hit _; _ }) :: _ -> ()
      | _ -> Alcotest.fail "chain does not end at the stale hit")
    genuine_findings;
  (* At least one chain shows the §3.4 violation shape: the responder
     handled the IPI, returned to user, and still hit the stale entry. *)
  check bool_t "a chain shows return-to-user" true
    (List.exists
       (fun f ->
         List.exists
           (fun (_, (r : Trace.record)) -> r.Trace.event = Trace.User_resume)
           f.Hb.f_chain)
       genuine_findings)

let test_latr_strawman_flagged_genuine () =
  (* The paper's §6 claim: LATR-style lazy batching (flush locally, never
     notify remote CPUs) is unsafe. With no IPI there is no happens-before
     edge to any remote CPU, so its post-close stale hits are genuine. *)
  let opts = Opts.baseline ~safe:true in
  opts.Opts.unsafe_lazy_batching <- true;
  let m, r = run_demo ~opts ~rounds:10 in
  check bool_t "stale hits occurred" true (r.Hb.stale_hits > 0);
  check bool_t "flagged genuine" true (r.Hb.genuine > 0);
  check bool_t "checker concurs" true (Checker.violation_count m.Machine.checker > 0)

(* --- scenarios --- *)

let test_scenarios_deterministic () =
  let trace_of () =
    let m = Scenarios.shootdown_2cpu () in
    Trace.enable m.Machine.trace;
    Kernel.run m;
    List.map
      (fun (r : Trace.record) -> (r.Trace.time, r.Trace.cpu, Trace.event_text r.Trace.event))
      (Trace.records m.Machine.trace)
  in
  let a = trace_of () and b = trace_of () in
  check bool_t "nonempty" true (a <> []);
  check bool_t "identical replays" true (a = b)

(* --- interleaving explorer --- *)

let quick_config = { Explorer.default_config with Explorer.max_runs = 32 }

let general_setters =
  [
    (fun o v -> o.Opts.concurrent_flush <- v);
    (fun o v -> o.Opts.early_ack <- v);
    (fun o v -> o.Opts.cacheline_consolidation <- v);
    (fun o v -> o.Opts.in_context_flush <- v);
    (fun o v -> o.Opts.cow_avoid_flush <- v);
    (fun o v -> o.Opts.userspace_batching <- v);
  ]

(* The ISSUE's exhaustive-small gate: a 2-CPU single-page shootdown under
   every combination of the paper's six general optimizations (64 opt
   combinations, interleavings explored for each), asserting that every
   invariant holds and the analyzer proves every stale hit in-flight. *)
let test_explore_all_flag_combos () =
  let n = List.length general_setters in
  let masks = List.init (1 lsl n) Fun.id in
  (* The 64 combos shard across domains via explore_set; results come back
     in mask order, so the assertions below see exactly the sequential
     sweep's view. *)
  let results =
    Explorer.explore_set ~config:quick_config ~jobs:2
      (List.map
         (fun mask ->
           let opts = Opts.baseline ~safe:true in
           List.iteri (fun i set -> set opts (mask land (1 lsl i) <> 0)) general_setters;
           fun () -> Scenarios.shootdown_2cpu ~opts ())
         masks)
  in
  let total_hits = ref 0 and total_proved = ref 0 and total_runs = ref 0 in
  List.iter2
    (fun mask r ->
      let label = Printf.sprintf "mask %d" mask in
      if r.Explorer.failures <> [] then
        Alcotest.failf "%s: %s" label
          (String.concat "; "
             (List.map (fun f -> f.Explorer.fail_what) r.Explorer.failures));
      check int_t (label ^ ": no genuine race") 0 r.Explorer.genuine;
      (* §4.2 batching combos may leave unordered-latent hits: a batched CPU
         is skipped by IPI targeting and synchronizes at the mmap_sem-release
         barrier, which contributes no happens-before edge — the checker's
         wall-clock window excuses those hits, the vector clocks cannot. *)
      if not (mask land 32 <> 0) then
        check int_t (label ^ ": no unordered hit") 0 r.Explorer.unordered_latent;
      total_hits := !total_hits + r.Explorer.stale_hits;
      total_proved := !total_proved + r.Explorer.proved_in_flight + r.Explorer.unordered_latent;
      total_runs := !total_runs + r.Explorer.runs)
    masks results;
  check bool_t "explored many runs" true (!total_runs >= 64);
  check bool_t "races exercised" true (!total_hits > 0);
  check int_t "every hit proved or latent, none genuine" !total_hits !total_proved

(* The cross-backend sweep's testable core: the same 2-CPU shootdown
   explored under each alternative protocol backend must violate no
   invariant and expose no genuine race. Sync-broadcast and queue-spin
   synchronize responders through mechanisms the vector clocks do not
   model as edges (posted descriptors, ring generations), so their stale
   hits may classify unordered-latent — the checker's wall-clock window
   excuses them — but never genuine. *)
let test_explore_alternative_backends () =
  let protocols = [ Opts.Oracle; Opts.Sync_broadcast; Opts.Queue_spin ] in
  let results =
    Explorer.explore_set ~config:quick_config ~jobs:2
      (List.map
         (fun p ->
           let opts = Opts.with_protocol p ~safe:true in
           fun () -> Scenarios.shootdown_2cpu ~opts ())
         protocols)
  in
  List.iter2
    (fun p r ->
      let label = Opts.protocol_label p in
      if r.Explorer.failures <> [] then
        Alcotest.failf "%s: %s" label
          (String.concat "; "
             (List.map (fun f -> f.Explorer.fail_what) r.Explorer.failures));
      check int_t (label ^ ": no genuine race") 0 r.Explorer.genuine;
      check bool_t (label ^ ": explored several runs") true (r.Explorer.runs > 1))
    protocols results

let test_explore_branches_reach_new_interleavings () =
  let r =
    Explorer.explore ~config:{ quick_config with Explorer.max_runs = 8 } (fun () ->
        Scenarios.shootdown_2cpu ())
  in
  check bool_t "several runs" true (r.Explorer.runs > 1);
  check bool_t "found decision points" true (r.Explorer.max_depth > 0);
  check int_t "clean" 0 (List.length r.Explorer.failures)

let test_explore_catches_injected_bug () =
  let opts = Opts.all_general ~safe:true in
  opts.Opts.bug_skip_deferred_flush <- true;
  let r =
    Explorer.explore ~config:{ quick_config with Explorer.max_runs = 4 } (fun () ->
        Scenarios.shootdown_2cpu ~opts ())
  in
  check bool_t "bug detected" true (r.Explorer.failures <> [])

let suite =
  [
    Alcotest.test_case "hb: empty trace" `Quick test_hb_empty;
    Alcotest.test_case "hb: program order is genuine" `Quick test_hb_program_order_is_genuine;
    Alcotest.test_case "hb: hit before close in-flight" `Quick
      test_hb_hit_before_close_is_in_flight;
    Alcotest.test_case "hb: unsynchronized close proves nothing" `Quick
      test_hb_unsynchronized_close_proves_nothing;
    Alcotest.test_case "hb: unclosed window in-flight" `Quick
      test_hb_unclosed_window_is_in_flight;
    Alcotest.test_case "hb: return-to-user expires excuse" `Quick
      test_hb_return_to_user_expires_excuse;
    Alcotest.test_case "hb: demo races proved benign" `Quick test_demo_races_proved_benign;
    Alcotest.test_case "hb: injected bug flagged" `Quick test_injected_bug_is_flagged_genuine;
    Alcotest.test_case "hb: LATR strawman flagged" `Quick test_latr_strawman_flagged_genuine;
    Alcotest.test_case "scenarios: deterministic replay" `Quick test_scenarios_deterministic;
    Alcotest.test_case "explorer: all 64 opt combos" `Slow test_explore_all_flag_combos;
    Alcotest.test_case "explorer: alternative protocol backends" `Quick
      test_explore_alternative_backends;
    Alcotest.test_case "explorer: branching works" `Quick
      test_explore_branches_reach_new_interleavings;
    Alcotest.test_case "explorer: catches injected bug" `Quick test_explore_catches_injected_bug;
  ]
