(* Unit tests for the Checker's classification results, the windows index
   and the violation-recording cap. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let entry ~vpn ~pfn =
  { Tlb.vpn; pfn; pcid = 1; size = Tlb.Four_k; global = false; writable = true;
    fractured = false; ck_ver = -1 }

(* An empty page table: the walk misses, so any hit through it is stale. *)
let stale_hit ?(now = 0) ?(cpu = 0) ?(mm_id = 1) ?(vpn = 10) c =
  Checker.check_hit c ~now ~cpu ~mm_id ~vpn ~write:false
    ~entry:(entry ~vpn ~pfn:5) ~pt:(Page_table.create ())

(* --- classification results --- *)

let test_clean_result () =
  let c = Checker.create () in
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:5);
  let e = entry ~vpn:10 ~pfn:5 in
  let r = Checker.check_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:true ~entry:e ~pt in
  check bool_t "clean" true (r = `Clean);
  check int_t "no benign races" 0 (Checker.benign_races c);
  (* The clean verdict is stamped into the entry; a re-check against the
     unchanged table takes the walk-free path and agrees. *)
  check bool_t "stamped" true (e.Tlb.ck_ver >= 0);
  let r2 = Checker.check_hit c ~now:1 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:true ~entry:e ~pt in
  check bool_t "clean via stamp" true (r2 = `Clean);
  (* Any mutation bumps the version: the stamp stops matching and the next
     check walks again, seeing the remap. *)
  ignore (Page_table.unmap pt ~vpn:10 () : Page_table.range_unmap);
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:99);
  (match Checker.check_hit c ~now:2 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:false ~entry:e ~pt with
  | `Violation reason ->
      check Alcotest.string "restale" "page remapped to a different frame" reason
  | `Clean | `Benign _ -> Alcotest.fail "stamp must not survive a version bump")

let test_violation_result_carries_reason () =
  let c = Checker.create () in
  (match stale_hit c with
  | `Violation reason ->
      check Alcotest.string "reason" "translation removed from page table" reason
  | `Clean | `Benign _ -> Alcotest.fail "expected a violation");
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.user_data ~pfn:99);
  match
    Checker.check_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:false
      ~entry:(entry ~vpn:10 ~pfn:5) ~pt
  with
  | `Violation reason ->
      check Alcotest.string "remap reason" "page remapped to a different frame" reason
  | `Clean | `Benign _ -> Alcotest.fail "expected a remap violation"

(* A writable entry over a write-protected PTE is clean for reads but must
   not be stamped: a later write through it at the same page-table version
   still has to be flagged. *)
let test_write_protected_read_not_stamped () =
  let c = Checker.create () in
  let pt = Page_table.create () in
  Page_table.map pt ~vpn:10 ~size:Tlb.Four_k (Pte.write_protect (Pte.user_data ~pfn:5));
  let e = entry ~vpn:10 ~pfn:5 in
  (match Checker.check_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:false ~entry:e ~pt with
  | `Clean -> ()
  | `Benign _ | `Violation _ -> Alcotest.fail "read through it is clean");
  check bool_t "not stamped" true (e.Tlb.ck_ver = -1);
  match Checker.check_hit c ~now:1 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:true ~entry:e ~pt with
  | `Violation reason ->
      check Alcotest.string "write reason" "write through a since-write-protected mapping"
        reason
  | `Clean | `Benign _ -> Alcotest.fail "write must be flagged"

let test_benign_inside_window () =
  let c = Checker.create () in
  let info = Flush_info.ranged ~mm_id:1 ~start_vpn:10 ~pages:1 ~new_tlb_gen:2 () in
  let token = Checker.begin_invalidation c info in
  (match stale_hit c with
  | `Benign _ -> ()
  | `Clean -> Alcotest.fail "stale hit reported clean"
  | `Violation _ -> Alcotest.fail "in-flight hit must be benign");
  check int_t "benign recorded" 1 (Checker.benign_races c);
  check int_t "no violation" 0 (Checker.violation_count c);
  Checker.end_invalidation c token;
  (match stale_hit c ~now:1 with
  | `Violation _ -> ()
  | `Clean | `Benign _ -> Alcotest.fail "closed window must not excuse");
  check int_t "violation after close" 1 (Checker.violation_count c)

let test_window_must_cover_vpn_and_mm () =
  let c = Checker.create () in
  let info = Flush_info.ranged ~mm_id:1 ~start_vpn:100 ~pages:4 ~new_tlb_gen:2 () in
  let token = Checker.begin_invalidation c info in
  (* Same mm, vpn outside the flushed range: no excuse. *)
  (match stale_hit c ~vpn:10 with
  | `Violation _ -> ()
  | `Clean | `Benign _ -> Alcotest.fail "uncovered vpn must violate");
  (* Covered vpn but a different address space: no excuse. *)
  (match stale_hit c ~mm_id:2 ~vpn:101 with
  | `Violation _ -> ()
  | `Clean | `Benign _ -> Alcotest.fail "other mm must violate");
  (* Covered vpn in the right mm: benign. *)
  (match stale_hit c ~vpn:101 with
  | `Benign _ -> ()
  | `Clean | `Violation _ -> Alcotest.fail "covered vpn must be benign");
  Checker.end_invalidation c token

let test_covered_matches_classification () =
  let c = Checker.create () in
  check bool_t "nothing covered" false (Checker.covered c ~mm_id:1 ~vpn:10);
  let t1 = Checker.begin_invalidation c
      (Flush_info.ranged ~mm_id:1 ~start_vpn:10 ~pages:1 ~new_tlb_gen:2 ()) in
  let t2 = Checker.begin_invalidation c (Flush_info.full ~mm_id:2 ~new_tlb_gen:3 ()) in
  check bool_t "ranged covers" true (Checker.covered c ~mm_id:1 ~vpn:10);
  check bool_t "range bound" false (Checker.covered c ~mm_id:1 ~vpn:11);
  check bool_t "full covers any vpn" true (Checker.covered c ~mm_id:2 ~vpn:123456);
  check bool_t "mm isolation" false (Checker.covered c ~mm_id:3 ~vpn:10);
  Checker.end_invalidation c t1;
  check bool_t "closed window uncovers" false (Checker.covered c ~mm_id:1 ~vpn:10);
  check bool_t "other window survives" true (Checker.covered c ~mm_id:2 ~vpn:0);
  Checker.end_invalidation c t2

(* --- open-windows bookkeeping --- *)

let test_open_windows_bookkeeping () =
  let c = Checker.create () in
  check int_t "none open" 0 (Checker.open_windows c);
  let tokens =
    List.init 3 (fun i ->
        Checker.begin_invalidation c
          (Flush_info.ranged ~mm_id:(i + 1) ~start_vpn:0 ~pages:1 ~new_tlb_gen:2 ()))
  in
  check int_t "three open" 3 (Checker.open_windows c);
  check bool_t "distinct tokens" true
    (List.length (List.sort_uniq compare (List.map Checker.token_id tokens)) = 3);
  List.iter (Checker.end_invalidation c) tokens;
  check int_t "all closed" 0 (Checker.open_windows c);
  (* Double-close is idempotent. *)
  List.iter (Checker.end_invalidation c) tokens;
  check int_t "still closed" 0 (Checker.open_windows c)

let test_disabled_checker_windows_are_noops () =
  let c = Checker.create ~enabled:false () in
  let t = Checker.begin_invalidation c
      (Flush_info.ranged ~mm_id:1 ~start_vpn:10 ~pages:1 ~new_tlb_gen:2 ()) in
  check int_t "no window tracked" 0 (Checker.open_windows c);
  check bool_t "nothing covered" false (Checker.covered c ~mm_id:1 ~vpn:10);
  check bool_t "silent result" true (stale_hit c = `Clean);
  Checker.end_invalidation c t

(* --- recording cap --- *)

let test_max_recorded_cap () =
  let c = Checker.create ~max_recorded:5 () in
  for vpn = 0 to 99 do
    ignore (stale_hit c ~vpn : Checker.result)
  done;
  check int_t "count keeps going" 100 (Checker.violation_count c);
  check int_t "list capped" 5 (List.length (Checker.violations c));
  (* The retained records are the earliest ones. *)
  let vpns = List.map (fun v -> v.Checker.v_vpn) (Checker.violations c) in
  check (Alcotest.list int_t) "earliest retained" [ 0; 1; 2; 3; 4 ]
    (List.sort compare vpns);
  Checker.clear c;
  check int_t "cleared" 0 (Checker.violation_count c);
  ignore (stale_hit c : Checker.result);
  check int_t "records again after clear" 1 (List.length (Checker.violations c))

let test_default_cap_is_large () =
  check bool_t "default cap sane" true (Checker.default_max_recorded_violations >= 100)

(* --- window lifecycle --- *)

(* Closing a window must remove it from both the flat windows table and the
   per-mm index — an entry left behind in either would keep excusing stale
   hits (or leak) long after the flush completed. The per-mm index entry
   count must track the open-window count through any interleaving of
   opens and closes. *)
let test_window_lifecycle_tables_in_sync () =
  let c = Checker.create () in
  let in_sync what =
    check int_t what (Checker.open_windows c) (Checker.by_mm_entries c)
  in
  in_sync "empty";
  (* Several windows on the same mm, plus one on another mm. *)
  let w1 = Checker.begin_invalidation c
      (Flush_info.ranged ~mm_id:1 ~start_vpn:0 ~pages:4 ~new_tlb_gen:2 ()) in
  let w2 = Checker.begin_invalidation c
      (Flush_info.ranged ~mm_id:1 ~start_vpn:100 ~pages:4 ~new_tlb_gen:3 ()) in
  let w3 = Checker.begin_invalidation c (Flush_info.full ~mm_id:2 ~new_tlb_gen:2 ()) in
  in_sync "three open";
  (* Close out of order; coverage must shrink exactly with the closes. *)
  Checker.end_invalidation c w2;
  in_sync "two open";
  check bool_t "w1 range still covered" true (Checker.covered c ~mm_id:1 ~vpn:0);
  check bool_t "w2 range uncovered" false (Checker.covered c ~mm_id:1 ~vpn:100);
  Checker.end_invalidation c w1;
  in_sync "one open";
  check bool_t "mm1 fully uncovered" false (Checker.covered c ~mm_id:1 ~vpn:0);
  check bool_t "mm2 still covered" true (Checker.covered c ~mm_id:2 ~vpn:7);
  Checker.end_invalidation c w3;
  in_sync "all closed";
  (* Double-close must not go negative or resurrect anything. *)
  Checker.end_invalidation c w1;
  Checker.end_invalidation c w3;
  in_sync "idempotent close";
  check int_t "no stray per-mm entries" 0 (Checker.by_mm_entries c)

(* Accounting at the recording cap: the total keeps counting, the recorded
   list stays exactly at the cap, and clear resets both. *)
let test_cap_accounting_consistency () =
  let c = Checker.create ~max_recorded:3 () in
  check int_t "cap accessor" 3 (Checker.max_recorded c);
  for vpn = 0 to 9 do
    ignore (stale_hit c ~vpn : Checker.result)
  done;
  check int_t "all counted" 10 (Checker.violation_count c);
  check int_t "recorded at cap" 3 (Checker.recorded_violation_count c);
  check int_t "list matches recorded count" (Checker.recorded_violation_count c)
    (List.length (Checker.violations c));
  Checker.clear c;
  check int_t "count cleared" 0 (Checker.violation_count c);
  check int_t "recorded cleared" 0 (Checker.recorded_violation_count c);
  ignore (stale_hit c : Checker.result);
  check int_t "counts again" 1 (Checker.violation_count c);
  check int_t "records again" 1 (Checker.recorded_violation_count c)

let suite =
  [
    Alcotest.test_case "result: clean" `Quick test_clean_result;
    Alcotest.test_case "result: violation reasons" `Quick test_violation_result_carries_reason;
    Alcotest.test_case "result: write-protected read not stamped" `Quick
      test_write_protected_read_not_stamped;
    Alcotest.test_case "result: benign inside window" `Quick test_benign_inside_window;
    Alcotest.test_case "windows: cover vpn and mm" `Quick test_window_must_cover_vpn_and_mm;
    Alcotest.test_case "windows: covered query" `Quick test_covered_matches_classification;
    Alcotest.test_case "windows: open count" `Quick test_open_windows_bookkeeping;
    Alcotest.test_case "windows: disabled no-ops" `Quick test_disabled_checker_windows_are_noops;
    Alcotest.test_case "cap: max_recorded" `Quick test_max_recorded_cap;
    Alcotest.test_case "cap: default" `Quick test_default_cap_is_large;
    Alcotest.test_case "lifecycle: windows and by_mm in sync" `Quick
      test_window_lifecycle_tables_in_sync;
    Alcotest.test_case "lifecycle: cap accounting" `Quick
      test_cap_accounting_consistency;
  ]
