(* Unit tests for kernel data structures: Opts, Flush_info, File, Vma,
   Rwsem, Mm_struct, Percpu, Checker. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- Opts --- *)

let test_opts_baseline_everything_off () =
  let o = Opts.baseline ~safe:true in
  check bool_t "safe" true o.Opts.safe;
  check bool_t "concurrent off" false o.Opts.concurrent_flush;
  check bool_t "batching off" false o.Opts.userspace_batching;
  check int_t "threshold 33" 33 o.Opts.full_flush_threshold;
  check int_t "4 slots" 4 o.Opts.batch_slots

let test_opts_cumulative_order () =
  let stack = Opts.cumulative_general ~safe:true in
  check int_t "five stages in safe mode" 5 (List.length stack);
  let labels = List.map fst stack in
  check (Alcotest.list Alcotest.string) "labels"
    [ "baseline"; "+concurrent"; "+early-ack"; "+cacheline"; "+in-context" ]
    labels;
  (* Each stage keeps the previous stage's flags. *)
  let third = List.assoc "+cacheline" stack in
  check bool_t "still concurrent" true third.Opts.concurrent_flush;
  check bool_t "still early-ack" true third.Opts.early_ack;
  check bool_t "in-context not yet" false third.Opts.in_context_flush

let test_opts_cumulative_unsafe_skips_incontext () =
  let stack = Opts.cumulative_general ~safe:false in
  check int_t "four stages in unsafe mode" 4 (List.length stack);
  check bool_t "no in-context stage" true
    (not (List.mem_assoc "+in-context" stack))

let test_opts_copy_is_independent () =
  let a = Opts.all ~safe:true in
  let b = Opts.copy a in
  b.Opts.concurrent_flush <- false;
  check bool_t "original untouched" true a.Opts.concurrent_flush

(* --- Flush_info --- *)

let test_flush_info_ranged () =
  let i = Flush_info.ranged ~mm_id:1 ~start_vpn:100 ~pages:5 ~new_tlb_gen:3 () in
  check int_t "entries" 5 (Flush_info.nr_entries i);
  check (Alcotest.list int_t) "vpns" [ 100; 101; 102; 103; 104 ] (Flush_info.vpns i);
  check bool_t "covers inside" true (Flush_info.covers i ~vpn:104);
  check bool_t "not outside" false (Flush_info.covers i ~vpn:105)

let test_flush_info_full () =
  let i = Flush_info.full ~mm_id:1 ~new_tlb_gen:3 () in
  check bool_t "covers everything" true (Flush_info.covers i ~vpn:123456);
  check int_t "entries" max_int (Flush_info.nr_entries i)

let test_flush_info_merge_ranges () =
  let a = Flush_info.ranged ~mm_id:1 ~start_vpn:100 ~pages:5 ~new_tlb_gen:3 () in
  let b = Flush_info.ranged ~mm_id:1 ~start_vpn:110 ~pages:2 ~new_tlb_gen:5 () in
  let m = Flush_info.merge a b in
  check bool_t "not full" false m.Flush_info.full;
  check int_t "start" 100 m.Flush_info.start_vpn;
  check int_t "spans hole" 12 m.Flush_info.pages;
  check int_t "max gen" 5 m.Flush_info.new_tlb_gen

let test_flush_info_merge_freed_tables_sticky () =
  let a =
    Flush_info.ranged ~mm_id:1 ~start_vpn:0 ~pages:1 ~freed_tables:true ~new_tlb_gen:1 ()
  in
  let b = Flush_info.ranged ~mm_id:1 ~start_vpn:5 ~pages:1 ~new_tlb_gen:2 () in
  check bool_t "freed sticky" true (Flush_info.merge a b).Flush_info.freed_tables

let test_flush_info_merge_stride_mismatch_goes_full () =
  let a = Flush_info.ranged ~mm_id:1 ~start_vpn:0 ~pages:1 ~new_tlb_gen:1 () in
  let b =
    Flush_info.ranged ~mm_id:1 ~start_vpn:512 ~pages:1 ~stride:Tlb.Two_m ~new_tlb_gen:2 ()
  in
  check bool_t "full" true (Flush_info.merge a b).Flush_info.full

let test_flush_info_merge_rejects_cross_mm () =
  let a = Flush_info.ranged ~mm_id:1 ~start_vpn:0 ~pages:1 ~new_tlb_gen:1 () in
  let b = Flush_info.ranged ~mm_id:2 ~start_vpn:0 ~pages:1 ~new_tlb_gen:1 () in
  Alcotest.check_raises "cross-mm merge"
    (Invalid_argument "Flush_info.merge: different address spaces") (fun () ->
      ignore (Flush_info.merge a b))

(* --- File --- *)

let frames () = Frame_alloc.create ~frames:65536

let test_file_pagecache () =
  let f = File.create (frames ()) ~name:"a" ~size_pages:10 in
  check bool_t "not cached" false (File.cached f ~index:3);
  let p1 = File.frame_of_page f ~index:3 in
  check bool_t "cached now" true (File.cached f ~index:3);
  check int_t "stable frame" p1 (File.frame_of_page f ~index:3)

let test_file_dirty_tracking () =
  let f = File.create (frames ()) ~name:"a" ~size_pages:10 in
  File.mark_dirty f ~index:2;
  File.mark_dirty f ~index:7;
  File.mark_dirty f ~index:9;
  check (Alcotest.list int_t) "range query" [ 2; 7 ] (File.dirty_in_range f ~index:0 ~count:8);
  check int_t "count" 3 (File.dirty_count f);
  File.clear_dirty f ~index:7;
  check (Alcotest.list int_t) "after clean" [ 2 ] (File.dirty_in_range f ~index:0 ~count:8)

let test_file_bounds () =
  let f = File.create (frames ()) ~name:"a" ~size_pages:10 in
  Alcotest.check_raises "eof" (Invalid_argument "File a: page 10 out of range [0,10)")
    (fun () -> ignore (File.frame_of_page f ~index:10))

let test_file_drop_cache_frees () =
  let fr = frames () in
  let f = File.create fr ~name:"a" ~size_pages:4 in
  ignore (File.frame_of_page f ~index:0);
  ignore (File.frame_of_page f ~index:1);
  check int_t "two frames" 2 (Frame_alloc.allocated fr);
  File.drop_cache f;
  check int_t "freed" 0 (Frame_alloc.allocated fr)

(* --- Vma --- *)

let test_vma_find () =
  let v1 = Vma.make ~start_vpn:100 ~pages:10 () in
  let v2 = Vma.make ~start_vpn:200 ~pages:5 () in
  let s = Vma.Set.add (Vma.Set.add Vma.Set.empty v1) v2 in
  check bool_t "inside v1" true (Vma.Set.find s ~vpn:109 = Some v1);
  check bool_t "gap" true (Vma.Set.find s ~vpn:110 = None);
  check bool_t "inside v2" true (Vma.Set.find s ~vpn:200 = Some v2)

let test_vma_overlap_rejected () =
  let s = Vma.Set.add Vma.Set.empty (Vma.make ~start_vpn:100 ~pages:10 ()) in
  Alcotest.check_raises "overlap" (Invalid_argument "Vma.Set.add: overlapping VMA")
    (fun () -> ignore (Vma.Set.add s (Vma.make ~start_vpn:105 ~pages:10 ())))

let test_vma_remove_splits () =
  let f = File.create (frames ()) ~name:"f" ~size_pages:100 in
  let v =
    Vma.make ~start_vpn:100 ~pages:10 ~backing:(Vma.File_shared { file = f; offset = 0 }) ()
  in
  let s = Vma.Set.add Vma.Set.empty v in
  let s, removed = Vma.Set.remove_range s ~vpn:103 ~pages:4 in
  (match removed with
  | [ r ] ->
      check int_t "clipped start" 103 r.Vma.start_vpn;
      check int_t "clipped pages" 4 r.Vma.pages;
      (* File offset follows the clip. *)
      (match Vma.file_page r ~vpn:103 with
      | Some (_, idx) -> check int_t "offset shifted" 3 idx
      | None -> Alcotest.fail "file backing lost")
  | _ -> Alcotest.fail "expected one removed piece");
  check bool_t "left piece" true (Vma.Set.find s ~vpn:102 <> None);
  check bool_t "hole" true (Vma.Set.find s ~vpn:105 = None);
  check bool_t "right piece" true (Vma.Set.find s ~vpn:108 <> None);
  (match Vma.Set.find s ~vpn:108 with
  | Some right -> begin
      match Vma.file_page right ~vpn:108 with
      | Some (_, idx) -> check int_t "right offset" 8 idx
      | None -> Alcotest.fail "right backing lost"
    end
  | None -> assert false);
  check int_t "two pieces" 2 (Vma.Set.cardinal s)

let test_vma_remove_across_vmas () =
  let s = Vma.Set.add Vma.Set.empty (Vma.make ~start_vpn:0 ~pages:10 ()) in
  let s = Vma.Set.add s (Vma.make ~start_vpn:20 ~pages:10 ()) in
  let _, removed = Vma.Set.remove_range s ~vpn:5 ~pages:20 in
  check int_t "two clipped pieces" 2 (List.length removed)

(* --- Rwsem --- *)

let test_rwsem_readers_share () =
  let e = Engine.create () in
  let sem = Rwsem.create e in
  let inside = ref 0 and max_inside = ref 0 in
  for i = 1 to 3 do
    Process.spawn e ~name:(Printf.sprintf "r%d" i) (fun () ->
        Rwsem.with_read sem (fun () ->
            incr inside;
            max_inside := Stdlib.max !max_inside !inside;
            Process.delay e 100;
            decr inside))
  done;
  Engine.run e;
  check int_t "readers overlapped" 3 !max_inside

let test_rwsem_writer_excludes () =
  let e = Engine.create () in
  let sem = Rwsem.create e in
  let log = ref [] in
  Process.spawn e ~name:"w1" (fun () ->
      Rwsem.with_write sem (fun () ->
          log := "w1-in" :: !log;
          Process.delay e 100;
          log := "w1-out" :: !log));
  Process.spawn e ~name:"w2" (fun () ->
      Process.delay e 10;
      Rwsem.with_write sem (fun () -> log := "w2-in" :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "serialized"
    [ "w1-in"; "w1-out"; "w2-in" ] (List.rev !log)

let test_rwsem_writer_blocks_new_readers () =
  let e = Engine.create () in
  let sem = Rwsem.create e in
  let log = ref [] in
  Process.spawn e ~name:"r1" (fun () ->
      Rwsem.with_read sem (fun () -> Process.delay e 100));
  Process.spawn e ~name:"w" (fun () ->
      Process.delay e 10;
      Rwsem.with_write sem (fun () -> log := "w" :: !log));
  Process.spawn e ~name:"r2" (fun () ->
      Process.delay e 20;
      (* Arrives while the writer waits: must queue behind it. *)
      Rwsem.with_read sem (fun () -> log := "r2" :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "writer first" [ "w"; "r2" ] (List.rev !log)

let test_rwsem_misuse_rejected () =
  let e = Engine.create () in
  let sem = Rwsem.create e in
  Alcotest.check_raises "up_read unheld" (Invalid_argument "Rwsem.up_read: not held")
    (fun () -> Rwsem.up_read sem);
  Alcotest.check_raises "up_write unheld" (Invalid_argument "Rwsem.up_write: not held")
    (fun () -> Rwsem.up_write sem)

(* --- Mm_struct --- *)

let make_mm () =
  let e = Engine.create () in
  let reg = Cache.create_registry Topology.paper_machine Costs.default in
  let fr = Frame_alloc.create ~frames:1024 in
  Mm_struct.create ~engine:e ~registry:reg ~frames:fr ~n_cpus:56 ~id:1

let test_mm_gen () =
  let mm = make_mm () in
  check int_t "initial gen" 1 (Mm_struct.tlb_gen mm);
  check int_t "bump" 2 (Mm_struct.bump_tlb_gen mm);
  check int_t "reads back" 2 (Mm_struct.tlb_gen mm)

let test_mm_cpumask () =
  let mm = make_mm () in
  check (Alcotest.list int_t) "empty" [] (Mm_struct.cpumask mm);
  Mm_struct.cpu_set mm ~cpu:3;
  Mm_struct.cpu_set mm ~cpu:1;
  check (Alcotest.list int_t) "sorted" [ 1; 3 ] (Mm_struct.cpumask mm);
  check bool_t "isset" true (Mm_struct.cpu_isset mm ~cpu:3);
  Mm_struct.cpu_clear mm ~cpu:3;
  check (Alcotest.list int_t) "after clear" [ 1 ] (Mm_struct.cpumask mm)

let test_mm_va_allocator_guard_gap () =
  let mm = make_mm () in
  let a = Mm_struct.alloc_va_range mm ~pages:10 () in
  let b = Mm_struct.alloc_va_range mm ~pages:10 () in
  check bool_t "non-overlapping with gap" true (b >= a + 11)

(* --- Percpu --- *)

let make_percpu () =
  let e = Engine.create () in
  let reg = Cache.create_registry Topology.paper_machine Costs.default in
  let cpu = Cpu.create e Topology.paper_machine Costs.default ~id:0 ~safe:true () in
  Percpu.create cpu reg ~n_cpus:56

let test_percpu_pcids_distinct () =
  check bool_t "user pcid has high bit" true (Percpu.user_pcid 0 <> Percpu.kernel_pcid 0);
  check bool_t "slots distinct" true (Percpu.kernel_pcid 0 <> Percpu.kernel_pcid 1)

let test_percpu_slot_reuse () =
  let p = make_percpu () in
  let s1, f1 = Percpu.choose_slot p ~mm_id:10 ~now:1 in
  check bool_t "fresh slot no flush" false f1;
  let s2, f2 = Percpu.choose_slot p ~mm_id:10 ~now:2 in
  check int_t "same slot" s1 s2;
  check bool_t "no flush on reuse" false f2

let test_percpu_slot_eviction_lru () =
  let p = make_percpu () in
  (* Fill all six slots. *)
  for mm = 1 to Percpu.n_asids do
    ignore (Percpu.choose_slot p ~mm_id:mm ~now:mm)
  done;
  (* Touch mm 1 so mm 2 is LRU. *)
  ignore (Percpu.choose_slot p ~mm_id:1 ~now:100);
  let slot, needs_flush = Percpu.choose_slot p ~mm_id:99 ~now:101 in
  check bool_t "recycling flushes" true needs_flush;
  check int_t "evicted the LRU (mm 2's slot)" 1 slot

let test_percpu_defer_merging () =
  let p = make_percpu () in
  let info1 = Flush_info.ranged ~mm_id:1 ~start_vpn:10 ~pages:2 ~new_tlb_gen:2 () in
  let info2 = Flush_info.ranged ~mm_id:1 ~start_vpn:14 ~pages:2 ~new_tlb_gen:3 () in
  Percpu.defer_user_flush p info1 ~threshold:33;
  Percpu.defer_user_flush p info2 ~threshold:33;
  (match p.Percpu.pending_user with
  | Percpu.Ranged i ->
      check int_t "merged start" 10 i.Flush_info.start_vpn;
      check int_t "merged pages" 6 i.Flush_info.pages
  | Percpu.No_flush | Percpu.Full_flush -> Alcotest.fail "expected merged range");
  match Percpu.take_pending_user p with
  | Percpu.Ranged _ ->
      check bool_t "taken clears" true (p.Percpu.pending_user = Percpu.No_flush)
  | _ -> Alcotest.fail "expected ranged"

let test_percpu_defer_overflows_to_full () =
  let p = make_percpu () in
  let info = Flush_info.ranged ~mm_id:1 ~start_vpn:0 ~pages:34 ~new_tlb_gen:2 () in
  Percpu.defer_user_flush p info ~threshold:33;
  check bool_t "full" true (p.Percpu.pending_user = Percpu.Full_flush)

let test_percpu_defer_cross_mm_goes_full () =
  let p = make_percpu () in
  Percpu.defer_user_flush p
    (Flush_info.ranged ~mm_id:1 ~start_vpn:0 ~pages:1 ~new_tlb_gen:2 ())
    ~threshold:33;
  Percpu.defer_user_flush p
    (Flush_info.ranged ~mm_id:2 ~start_vpn:0 ~pages:1 ~new_tlb_gen:2 ())
    ~threshold:33;
  check bool_t "full on mm mix" true (p.Percpu.pending_user = Percpu.Full_flush)

(* --- Checker --- *)

let entry ~vpn ~pfn ~writable =
  { Tlb.vpn; pfn; pcid = 1; size = Tlb.Four_k; global = false; writable; fractured = false; ck_ver = -1 }

(* A one-mapping page table; vpn 10 matches the default hit below. *)
let pt_of ?(vpn = 10) ?(size = Tlb.Four_k) pte =
  let pt = Page_table.create () in
  Page_table.map pt ~vpn ~size pte;
  pt

let empty_pt () = Page_table.create ()

(* Run a hit check for its recording side effects only. *)
let run_hit c ~now ~cpu ~mm_id ~vpn ~write ~entry ~pt =
  ignore (Checker.check_hit c ~now ~cpu ~mm_id ~vpn ~write ~entry ~pt : Checker.result)

let test_checker_clean_hit () =
  let c = Checker.create () in
  run_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:true
    ~entry:(entry ~vpn:10 ~pfn:5 ~writable:true)
    ~pt:(pt_of (Pte.user_data ~pfn:5));
  check int_t "no violations" 0 (Checker.violation_count c);
  check int_t "checked" 1 (Checker.checks c)

let test_checker_stale_unmapped_is_violation () =
  let c = Checker.create () in
  run_hit c ~now:5 ~cpu:2 ~mm_id:1 ~vpn:10 ~write:false
    ~entry:(entry ~vpn:10 ~pfn:5 ~writable:true)
    ~pt:(empty_pt ());
  check int_t "violation" 1 (Checker.violation_count c);
  match Checker.violations c with
  | [ v ] ->
      check int_t "cpu" 2 v.Checker.v_cpu;
      check int_t "vpn" 10 v.Checker.v_vpn
  | _ -> Alcotest.fail "expected one violation"

let test_checker_inflight_window_excuses () =
  let c = Checker.create () in
  let info = Flush_info.ranged ~mm_id:1 ~start_vpn:10 ~pages:1 ~new_tlb_gen:2 () in
  let token = Checker.begin_invalidation c info in
  run_hit c ~now:5 ~cpu:2 ~mm_id:1 ~vpn:10 ~write:false
    ~entry:(entry ~vpn:10 ~pfn:5 ~writable:true)
    ~pt:(empty_pt ());
  check int_t "benign while in flight" 0 (Checker.violation_count c);
  check int_t "recorded as race" 1 (Checker.benign_races c);
  Checker.end_invalidation c token;
  run_hit c ~now:6 ~cpu:2 ~mm_id:1 ~vpn:10 ~write:false
    ~entry:(entry ~vpn:10 ~pfn:5 ~writable:true)
    ~pt:(empty_pt ());
  check int_t "violation once window closed" 1 (Checker.violation_count c)

let test_checker_remap_detected () =
  let c = Checker.create () in
  run_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:false
    ~entry:(entry ~vpn:10 ~pfn:5 ~writable:true)
    ~pt:(pt_of (Pte.user_data ~pfn:99));
  check int_t "remap violation" 1 (Checker.violation_count c)

let test_checker_write_protect_detected () =
  let c = Checker.create () in
  let pt = pt_of (Pte.write_protect (Pte.user_data ~pfn:5)) in
  (* Reading through the stale-writable entry is fine... *)
  run_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:false
    ~entry:(entry ~vpn:10 ~pfn:5 ~writable:true)
    ~pt;
  check int_t "read ok" 0 (Checker.violation_count c);
  (* ...writing is not. *)
  run_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:true
    ~entry:(entry ~vpn:10 ~pfn:5 ~writable:true)
    ~pt;
  check int_t "write violation" 1 (Checker.violation_count c)

let test_checker_hugepage_offset_match () =
  let c = Checker.create () in
  (* A 2 MiB walk covering vpn 1034 with pfn base 4096: entry cached at the
     same granularity must agree at the offset. *)
  run_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:1034 ~write:false
    ~entry:{ Tlb.vpn = 1024; pfn = 4096; pcid = 1; size = Tlb.Two_m; global = false;
             writable = true; fractured = false; ck_ver = -1 }
    ~pt:(pt_of ~vpn:1024 ~size:Tlb.Two_m (Pte.user_data ~pfn:4096));
  check int_t "consistent hugepage" 0 (Checker.violation_count c)

let test_checker_disabled_is_silent () =
  let c = Checker.create ~enabled:false () in
  run_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:10 ~write:false
    ~entry:(entry ~vpn:10 ~pfn:5 ~writable:true)
    ~pt:(empty_pt ());
  check int_t "nothing recorded" 0 (Checker.violation_count c);
  check int_t "no checks" 0 (Checker.checks c)

let suite =
  [
    Alcotest.test_case "opts: baseline all off" `Quick test_opts_baseline_everything_off;
    Alcotest.test_case "opts: cumulative order" `Quick test_opts_cumulative_order;
    Alcotest.test_case "opts: unsafe skips in-context" `Quick test_opts_cumulative_unsafe_skips_incontext;
    Alcotest.test_case "opts: copy independence" `Quick test_opts_copy_is_independent;
    Alcotest.test_case "flush_info: ranged" `Quick test_flush_info_ranged;
    Alcotest.test_case "flush_info: full" `Quick test_flush_info_full;
    Alcotest.test_case "flush_info: merge ranges" `Quick test_flush_info_merge_ranges;
    Alcotest.test_case "flush_info: freed_tables sticky" `Quick test_flush_info_merge_freed_tables_sticky;
    Alcotest.test_case "flush_info: stride mismatch goes full" `Quick test_flush_info_merge_stride_mismatch_goes_full;
    Alcotest.test_case "flush_info: cross-mm merge rejected" `Quick test_flush_info_merge_rejects_cross_mm;
    Alcotest.test_case "file: pagecache" `Quick test_file_pagecache;
    Alcotest.test_case "file: dirty tracking" `Quick test_file_dirty_tracking;
    Alcotest.test_case "file: bounds" `Quick test_file_bounds;
    Alcotest.test_case "file: drop cache frees frames" `Quick test_file_drop_cache_frees;
    Alcotest.test_case "vma: find" `Quick test_vma_find;
    Alcotest.test_case "vma: overlap rejected" `Quick test_vma_overlap_rejected;
    Alcotest.test_case "vma: remove splits (file offsets)" `Quick test_vma_remove_splits;
    Alcotest.test_case "vma: remove across vmas" `Quick test_vma_remove_across_vmas;
    Alcotest.test_case "rwsem: readers share" `Quick test_rwsem_readers_share;
    Alcotest.test_case "rwsem: writers exclude" `Quick test_rwsem_writer_excludes;
    Alcotest.test_case "rwsem: writer blocks new readers" `Quick test_rwsem_writer_blocks_new_readers;
    Alcotest.test_case "rwsem: misuse rejected" `Quick test_rwsem_misuse_rejected;
    Alcotest.test_case "mm: generation counter" `Quick test_mm_gen;
    Alcotest.test_case "mm: cpumask" `Quick test_mm_cpumask;
    Alcotest.test_case "mm: va allocator leaves guard gap" `Quick test_mm_va_allocator_guard_gap;
    Alcotest.test_case "percpu: pcids distinct" `Quick test_percpu_pcids_distinct;
    Alcotest.test_case "percpu: slot reuse" `Quick test_percpu_slot_reuse;
    Alcotest.test_case "percpu: LRU eviction" `Quick test_percpu_slot_eviction_lru;
    Alcotest.test_case "percpu: deferred flush merging" `Quick test_percpu_defer_merging;
    Alcotest.test_case "percpu: defer overflows to full" `Quick test_percpu_defer_overflows_to_full;
    Alcotest.test_case "percpu: cross-mm defer goes full" `Quick test_percpu_defer_cross_mm_goes_full;
    Alcotest.test_case "checker: clean hit" `Quick test_checker_clean_hit;
    Alcotest.test_case "checker: unmapped stale hit" `Quick test_checker_stale_unmapped_is_violation;
    Alcotest.test_case "checker: in-flight window excuses" `Quick test_checker_inflight_window_excuses;
    Alcotest.test_case "checker: remap detected" `Quick test_checker_remap_detected;
    Alcotest.test_case "checker: write-protect detected" `Quick test_checker_write_protect_detected;
    Alcotest.test_case "checker: hugepage offsets" `Quick test_checker_hugepage_offset_match;
    Alcotest.test_case "checker: disabled is silent" `Quick test_checker_disabled_is_silent;
  ]
