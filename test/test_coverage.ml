(* Focused coverage for behaviours not exercised elsewhere: stats/counter
   resets, trace content of a real shootdown, Smp mechanism details,
   hugepage/batching interplay, and API misuse errors. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make ?(opts = Opts.baseline ~safe:true) () = Machine.create ~opts ~seed:91L ()

let test_machine_stats_reset () =
  let m = make () in
  m.Machine.stats.Machine.shootdowns <- 5;
  m.Machine.stats.Machine.faults <- 7;
  Machine.reset_stats m;
  check int_t "shootdowns" 0 m.Machine.stats.Machine.shootdowns;
  check int_t "faults" 0 m.Machine.stats.Machine.faults

let test_cpu_accounting_reset () =
  let m = make () in
  let cpu = Machine.cpu m 0 in
  Process.spawn m.Machine.engine ~name:"t" (fun () -> Cpu.compute cpu 500);
  Kernel.run m;
  check int_t "recorded" 500 (Cpu.compute_cycles cpu);
  Cpu.reset_accounting cpu;
  check int_t "reset" 0 (Cpu.compute_cycles cpu);
  check int_t "irqs too" 0 (Cpu.irqs_handled cpu)

let test_apic_and_tlb_stat_resets () =
  let m = make () in
  Process.spawn m.Machine.engine ~name:"t" (fun () ->
      ignore
        (Apic.send_ipi m.Machine.apic ~from:0 ~targets:[ 1 ] ~make_irq:(fun _ ->
             { Cpu.vector = 1; maskable = true; handler = (fun _ -> ()) })));
  Kernel.run m;
  check int_t "sent" 1 (Apic.ipis_sent m.Machine.apic);
  Apic.reset_stats m.Machine.apic;
  check int_t "reset" 0 (Apic.ipis_sent m.Machine.apic);
  let tlb = Cpu.tlb (Machine.cpu m 0) in
  ignore (Tlb.lookup tlb ~pcid:1 ~vpn:1);
  Tlb.reset_stats tlb;
  check int_t "tlb reset" 0 (Tlb.stats tlb).Tlb.misses

let test_checker_clear () =
  let c = Checker.create () in
  ignore
    (Checker.check_hit c ~now:0 ~cpu:0 ~mm_id:1 ~vpn:1 ~write:false
       ~entry:
         { Tlb.vpn = 1; pfn = 1; pcid = 1; size = Tlb.Four_k; global = false;
           writable = true; fractured = false; ck_ver = -1 }
       ~pt:(Page_table.create ())
      : Checker.result);
  check int_t "one violation" 1 (Checker.violation_count c);
  Checker.clear c;
  check int_t "cleared" 0 (Checker.violation_count c);
  check int_t "checks cleared" 0 (Checker.checks c)

let test_opts_pp_lists_enabled () =
  let o = Opts.all ~safe:true in
  let s = Format.asprintf "%a" Opts.pp o in
  check bool_t "mentions mode" true (String.length s > 0 && String.sub s 0 4 = "safe");
  List.iter
    (fun needle ->
      let contains =
        let n = String.length needle and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
        go 0
      in
      check bool_t (needle ^ " listed") true contains)
    [ "concurrent"; "early-ack"; "cacheline"; "in-context"; "cow"; "batching" ]

let test_engine_events_run_counter () =
  let e = Engine.create () in
  for _ = 1 to 5 do
    Engine.schedule e ~delay:1 (fun () -> ())
  done;
  Engine.run e;
  check int_t "five events" 5 (Engine.events_run e)

let test_trace_of_real_shootdown_mentions_protocol () =
  let m = make ~opts:(Opts.all_general ~safe:true) () in
  Trace.enable m.Machine.trace;
  let mm = Machine.new_mm m in
  let stop = ref false in
  Kernel.spawn_user m ~cpu:1 ~mm ~name:"resp" (fun () ->
      let cpu_t = Machine.cpu m 1 in
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"init" (fun () ->
      Machine.delay m 1_000;
      let addr = Syscall.mmap m ~cpu:0 ~pages:2 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:2 ~write:true;
      Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages:2;
      Machine.delay m 10_000;
      stop := true);
  Kernel.run m;
  let events =
    List.map (fun r -> Trace.event_text r.Trace.event) (Trace.records m.Machine.trace)
  in
  let has prefix =
    List.exists
      (fun e ->
        String.length e >= String.length prefix
        && String.sub e 0 (String.length prefix) = prefix)
      events
  in
  check bool_t "IPI traced" true (has "IPI ->");
  check bool_t "early ack traced" true (has "early ack");
  check bool_t "completion traced" true (has "shootdown complete")

let test_smp_ack_idempotent () =
  let m = make () in
  let mm = Machine.new_mm m in
  Process.spawn m.Machine.engine ~name:"t" (fun () ->
      Sched.switch_mm m ~cpu:0 mm;
      Sched.switch_mm m ~cpu:1 mm;
      let info =
        Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:0 ~pages:1 ~new_tlb_gen:2 ()
      in
      match
        Smp.enqueue_work m ~from:0 ~targets:(Cpuset.of_list [ 1 ]) ~info
          ~early_ack:false
      with
      | [| cfd |] ->
          Smp.ack m ~me:1 cfd;
          Smp.ack m ~me:1 cfd;
          (* idempotent *)
          check bool_t "acked" true cfd.Percpu.cfd_acked;
          (* Drain the queued work so the machine quiesces cleanly. *)
          Smp.drain_queue m ~me:1 ~run:(fun _ -> ())
      | _ -> Alcotest.fail "expected one cfd");
  Kernel.run m

let test_microbench_responder_cpus () =
  let topo = Topology.paper_machine in
  check int_t "same core = SMT sibling" 28
    (Microbench.responder_cpu topo Microbench.Same_core);
  check int_t "same socket" 1 (Microbench.responder_cpu topo Microbench.Same_socket);
  check int_t "cross socket" 14 (Microbench.responder_cpu topo Microbench.Cross_socket)

let test_hugepage_with_batching_safe () =
  (* Hugepage madvise inside batched mode: the 2M-stride info defers and
     flushes at the barrier without losing coverage. *)
  let m = make ~opts:(Opts.all ~safe:true) () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:512 ~page_size:Tlb.Two_m () in
      Access.write m ~cpu:0 ~vaddr:addr;
      Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages:512;
      (* Refault proves the old translation cannot linger. *)
      Access.write m ~cpu:0 ~vaddr:(addr + (17 * Addr.page_size)));
  Kernel.run m;
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let test_fork_requires_loaded_mm () =
  let m = make () in
  Process.spawn m.Machine.engine ~name:"t" (fun () ->
      Alcotest.check_raises "no mm" (Invalid_argument "Fork.fork: no address space loaded")
        (fun () -> ignore (Fork.fork m ~cpu:0)));
  Kernel.run m

let test_ksm_merge_same_frame_skipped () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:2 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:2 ~write:true;
      let keep = Addr.vpn_of_addr addr and dup = Addr.vpn_of_addr addr + 1 in
      ignore (Ksm.merge_pages m ~cpu:0 ~mm ~keep ~dup);
      (* Merging again: already sharing one frame. *)
      check bool_t "second merge skipped" true
        (Ksm.merge_pages m ~cpu:0 ~mm ~keep ~dup = `Skipped));
  Kernel.run m

let test_vma_file_page_mapping () =
  let frames = Frame_alloc.create ~frames:1024 in
  let f = File.create frames ~name:"x" ~size_pages:10 in
  let vma =
    Vma.make ~start_vpn:100 ~pages:4 ~backing:(Vma.File_shared { file = f; offset = 3 }) ()
  in
  (match Vma.file_page vma ~vpn:102 with
  | Some (_, idx) -> check int_t "offset applied" 5 idx
  | None -> Alcotest.fail "expected file page");
  check bool_t "outside" true (Vma.file_page vma ~vpn:104 = None)

let test_mremap_empty_range () =
  (* mremap of a never-touched mapping: no PTEs move, VMA still moves. *)
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"t" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:4 () in
      let addr' = Syscall.mremap m ~cpu:0 ~addr ~pages:4 in
      check bool_t "moved" true (addr' <> addr);
      Access.touch_range m ~cpu:0 ~addr:addr' ~pages:4 ~write:true);
  Kernel.run m

let test_migrate_from_kernel_context () =
  (* Kernel-thread migration daemon (no user mode to return to). *)
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"app" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages:2 () in
      Access.touch_range m ~cpu:0 ~addr ~pages:2 ~write:true;
      (* A kernel service migrates on our CPU's behalf from cpu 1; it needs
         the mm loaded there to flush correctly, so load it. *)
      ignore (Migrate.migrate_range m ~cpu:0 ~mm ~vpn:(Addr.vpn_of_addr addr) ~pages:2);
      Access.touch_range m ~cpu:0 ~addr ~pages:2 ~write:true);
  Kernel.run m;
  check int_t "no violations" 0 (Checker.violation_count m.Machine.checker)

let suite =
  [
    Alcotest.test_case "machine stats reset" `Quick test_machine_stats_reset;
    Alcotest.test_case "cpu accounting reset" `Quick test_cpu_accounting_reset;
    Alcotest.test_case "apic/tlb stat resets" `Quick test_apic_and_tlb_stat_resets;
    Alcotest.test_case "checker clear" `Quick test_checker_clear;
    Alcotest.test_case "opts pp lists flags" `Quick test_opts_pp_lists_enabled;
    Alcotest.test_case "engine events_run" `Quick test_engine_events_run_counter;
    Alcotest.test_case "trace shows protocol" `Quick test_trace_of_real_shootdown_mentions_protocol;
    Alcotest.test_case "smp ack idempotent" `Quick test_smp_ack_idempotent;
    Alcotest.test_case "microbench responder cpus" `Quick test_microbench_responder_cpus;
    Alcotest.test_case "hugepage + batching" `Quick test_hugepage_with_batching_safe;
    Alcotest.test_case "fork requires loaded mm" `Quick test_fork_requires_loaded_mm;
    Alcotest.test_case "ksm same-frame skip" `Quick test_ksm_merge_same_frame_skipped;
    Alcotest.test_case "vma file_page offsets" `Quick test_vma_file_page_mapping;
    Alcotest.test_case "mremap empty range" `Quick test_mremap_empty_range;
    Alcotest.test_case "migrate from kernel path" `Quick test_migrate_from_kernel_context;
  ]
