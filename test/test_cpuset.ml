(* Cpuset vs a Set.Make(Int) model: randomized op sequences over universe
   sizes straddling every word boundary the packed representation cares
   about, plus the documented iter/fold reentrancy contract and the
   256-CPU big-machine determinism property the bench harness relies on. *)

module IntSet = Set.Make (Int)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let list_t = Alcotest.(list int)

(* Word width is 32 bits, but exercise the old per-int ceiling (62/63/64/65)
   too: those sizes were exactly where the previous representations broke. *)
let universe_sizes = [ 1; 2; 31; 32; 33; 62; 63; 64; 65; 100; 512; 1023; 1100 ]

let ops_per_size = 400

let test_randomized_against_model () =
  let rng = Rng.create ~seed:0x5e7b175L in
  List.iter
    (fun n ->
      let s = Cpuset.create ~bits:n in
      let model = ref IntSet.empty in
      let ctx = Printf.sprintf "n=%d" n in
      for _ = 1 to ops_per_size do
        let b = Rng.int rng n in
        (match Rng.int rng 4 with
        | 0 | 1 ->
            (* bias toward set so the sets are non-trivially full *)
            Cpuset.set s b;
            model := IntSet.add b !model
        | 2 ->
            Cpuset.clear s b;
            model := IntSet.remove b !model
        | _ ->
            check bool_t
              (Printf.sprintf "%s mem %d" ctx b)
              (IntSet.mem b !model) (Cpuset.mem s b));
        if Rng.int rng 50 = 0 then begin
          Cpuset.clear_all s;
          model := IntSet.empty
        end
      done;
      check int_t (ctx ^ " count") (IntSet.cardinal !model) (Cpuset.count s);
      check bool_t (ctx ^ " is_empty") (IntSet.is_empty !model) (Cpuset.is_empty s);
      check list_t (ctx ^ " to_list ascending") (IntSet.elements !model)
        (Cpuset.to_list s);
      (* fold visits the same elements in the same ascending order *)
      let folded = List.rev (Cpuset.fold (fun acc b -> b :: acc) [] s) in
      check list_t (ctx ^ " fold order") (IntSet.elements !model) folded;
      (* iter agrees with fold *)
      let seen = ref [] in
      Cpuset.iter (fun b -> seen := b :: !seen) s;
      check list_t (ctx ^ " iter order") folded (List.rev !seen);
      (* round-trip through of_list *)
      check list_t (ctx ^ " of_list round-trip")
        (Cpuset.to_list s)
        (Cpuset.to_list (Cpuset.of_list (Cpuset.to_list s)));
      (* mem outside the populated range is false, never an error *)
      check bool_t (ctx ^ " mem past end") false (Cpuset.mem s (n + 1000)))
    universe_sizes

let test_union_and_copy_against_model () =
  let rng = Rng.create ~seed:0xc0feeL in
  List.iter
    (fun n ->
      let a = Cpuset.create ~bits:n and b = Cpuset.create ~bits:0 in
      let ma = ref IntSet.empty and mb = ref IntSet.empty in
      for _ = 1 to ops_per_size / 2 do
        let x = Rng.int rng n in
        if Rng.int rng 2 = 0 then begin
          Cpuset.set a x;
          ma := IntSet.add x !ma
        end
        else begin
          (* b starts at zero capacity: union/copy must grow it *)
          Cpuset.set b x;
          mb := IntSet.add x !mb
        end
      done;
      let ctx = Printf.sprintf "n=%d" n in
      let u = Cpuset.create ~bits:0 in
      Cpuset.copy_into ~dst:u ~src:a;
      check list_t (ctx ^ " copy_into") (IntSet.elements !ma) (Cpuset.to_list u);
      (* copy_into a wider dst must zero the tail *)
      let wide = Cpuset.of_list [ n + 200 ] in
      Cpuset.copy_into ~dst:wide ~src:b;
      check list_t (ctx ^ " copy_into zeroes tail") (IntSet.elements !mb)
        (Cpuset.to_list wide);
      Cpuset.union_into ~dst:u ~src:b;
      check list_t
        (ctx ^ " union_into")
        (IntSet.elements (IntSet.union !ma !mb))
        (Cpuset.to_list u))
    universe_sizes

(* The documented reentrancy contract: the callback may clear the current
   (or any earlier) bit mid-iteration — the filter-in-place pattern
   select_targets uses — without perturbing which bits get visited. *)
let test_iter_filter_in_place () =
  let s = Cpuset.of_list [ 0; 3; 31; 32; 64; 65; 99; 1022 ] in
  let visited = ref [] in
  Cpuset.iter
    (fun b ->
      visited := b :: !visited;
      if b mod 2 = 0 then Cpuset.clear s b)
    s;
  check list_t "all bits visited" [ 0; 3; 31; 32; 64; 65; 99; 1022 ]
    (List.rev !visited);
  check list_t "evens filtered out" [ 3; 31; 65; 99 ] (Cpuset.to_list s)

let test_errors_and_edges () =
  let s = Cpuset.create ~bits:4 in
  Alcotest.check_raises "negative set" (Invalid_argument "Cpuset.set: negative element")
    (fun () -> Cpuset.set s (-1));
  check bool_t "negative mem is false" false (Cpuset.mem s (-1));
  Cpuset.clear s (-1);
  (* no-op, no exception *)
  Cpuset.set s 0;
  Cpuset.set s 2000;
  (* auto-grows *)
  check list_t "growth keeps bits" [ 0; 2000 ] (Cpuset.to_list s);
  check int_t "count across words" 2 (Cpuset.count s)

(* 256-CPU byte-identity: a mini bigmachine scenario reduced through the
   bench harness's own Shard pipeline must print the same bytes at every
   -j — the property CI's bigmachine-smoke step checks at full scale. *)
let sharded_bigmachine_output ~jobs =
  let cfg = Bigmachine.default_config ~opts:(Opts.all ~safe:true) ~n_cpus:256 in
  let cfg =
    { cfg with Bigmachine.tenants = 3; ops_per_thread = 10; churn_every = 5;
      churn_pages = 4; file_pages = 64 }
  in
  let cells =
    List.map
      (fun seed ->
        Shard.cell
          ~label:(Printf.sprintf "bm256 seed=%Ld" seed)
          ~ops:(fun r -> r.Bigmachine.engine_ops)
          ~weight:1000.0
          (fun () -> Bigmachine.run { cfg with Bigmachine.seed }))
      [ 37L; 911L ]
  in
  let reduce () =
    (* Reduce output is captured via Report's sink, so print through it. *)
    Report.table ~title:"bm256" ~header:[ "cpus"; "sd"; "ipis"; "icr"; "churn"; "ops" ]
      (List.map
         (fun (_, get) ->
           let r = get () in
           [
             string_of_int r.Bigmachine.n_cpus;
             string_of_int r.Bigmachine.shootdowns;
             string_of_int r.Bigmachine.ipis;
             string_of_int r.Bigmachine.icr_writes;
             string_of_int r.Bigmachine.churn_cycles;
             string_of_int r.Bigmachine.engine_ops;
           ])
         cells)
  in
  let outcomes, _gc =
    Shard.execute ~jobs
      [ { Shard.name = "bm256"; jobs = List.map fst cells; reused = 0; reduce } ]
  in
  String.concat "" (List.map (fun o -> o.Shard.output) outcomes)

let test_bigmachine_256_identical_across_jobs () =
  let j1 = sharded_bigmachine_output ~jobs:1 in
  check bool_t "produced output" true (String.length j1 > 0);
  check Alcotest.string "-j2 byte-identical to -j1" j1
    (sharded_bigmachine_output ~jobs:2);
  check Alcotest.string "-j4 byte-identical to -j1" j1
    (sharded_bigmachine_output ~jobs:4)

let suite =
  [
    Alcotest.test_case "randomized vs Set model" `Quick test_randomized_against_model;
    Alcotest.test_case "union/copy vs Set model" `Quick test_union_and_copy_against_model;
    Alcotest.test_case "iter filter-in-place contract" `Quick test_iter_filter_in_place;
    Alcotest.test_case "errors and edges" `Quick test_errors_and_edges;
    Alcotest.test_case "bigmachine 256: -j2/-j4 = -j1" `Quick
      test_bigmachine_256_identical_across_jobs;
  ]
