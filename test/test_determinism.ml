(* The simulator is deterministic: a workload config (seeds included) fully
   determines its results. The bench harness's `-j N` mode leans on this —
   experiments run on whatever domain picks them up, and the output must not
   depend on the schedule. These tests pin both properties: same config
   twice gives identical numbers, and the domain pool at `-j 2` returns
   exactly what the inline sequential runner returns. *)

let check = Alcotest.check
let pairf = Alcotest.(pair (float 0.0) (float 0.0))

let micro_cell ?(placement = Microbench.Cross_socket) () =
  let cfg =
    Microbench.default_config ~opts:(Opts.all_general ~safe:true) ~placement ~pte_count:10
  in
  let r = Microbench.run { cfg with Microbench.iterations = 20; warmup = 5 } in
  (r.Microbench.initiator_mean, r.Microbench.responder_mean)

let sys_cell () =
  let cfg = Sysbench.default_config ~opts:(Opts.all ~safe:true) ~threads:4 in
  let r =
    Sysbench.run { cfg with Sysbench.ops_per_thread = 60; file_pages = 256; seed = 23L }
  in
  (r.Sysbench.throughput, float_of_int r.Sysbench.shootdowns)

let test_microbench_repeatable () =
  check pairf "identical back-to-back" (micro_cell ()) (micro_cell ())

let test_sysbench_repeatable () =
  check pairf "identical back-to-back" (sys_cell ()) (sys_cell ())

let test_domain_pool_preserves_order () =
  let tasks = Array.init 32 (fun i () -> i * i) in
  check
    Alcotest.(array int)
    "slot i holds task i" (Array.init 32 (fun i -> i * i))
    (Domain_pool.run ~jobs:4 tasks)

let test_parallel_matches_sequential () =
  let tasks =
    Array.of_list
      (List.map (fun placement () -> micro_cell ~placement ()) Microbench.all_placements
      @ [ sys_cell ])
  in
  let seq = Domain_pool.run ~jobs:1 tasks in
  let par = Domain_pool.run ~jobs:2 tasks in
  check Alcotest.(array pairf) "-j 2 = -j 1" seq par

let suite =
  [
    Alcotest.test_case "microbench repeatable" `Quick test_microbench_repeatable;
    Alcotest.test_case "sysbench repeatable" `Quick test_sysbench_repeatable;
    Alcotest.test_case "domain pool: result order" `Quick test_domain_pool_preserves_order;
    Alcotest.test_case "domain pool: -j2 = -j1" `Quick test_parallel_matches_sequential;
  ]
