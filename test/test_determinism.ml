(* The simulator is deterministic: a workload config (seeds included) fully
   determines its results. The bench harness's `-j N` mode leans on this —
   experiments run on whatever domain picks them up, and the output must not
   depend on the schedule. These tests pin both properties: same config
   twice gives identical numbers, and the domain pool at `-j 2` returns
   exactly what the inline sequential runner returns. *)

let check = Alcotest.check
let pairf = Alcotest.(pair (float 0.0) (float 0.0))

let micro_cell ?(placement = Microbench.Cross_socket) () =
  let cfg =
    Microbench.default_config ~opts:(Opts.all_general ~safe:true) ~placement ~pte_count:10
  in
  let r = Microbench.run { cfg with Microbench.iterations = 20; warmup = 5 } in
  (r.Microbench.initiator_mean, r.Microbench.responder_mean)

let sys_cell () =
  let cfg = Sysbench.default_config ~opts:(Opts.all ~safe:true) ~threads:4 in
  let r =
    Sysbench.run { cfg with Sysbench.ops_per_thread = 60; file_pages = 256; seed = 23L }
  in
  (r.Sysbench.throughput, float_of_int r.Sysbench.shootdowns)

let test_microbench_repeatable () =
  check pairf "identical back-to-back" (micro_cell ()) (micro_cell ())

let test_sysbench_repeatable () =
  check pairf "identical back-to-back" (sys_cell ()) (sys_cell ())

let test_domain_pool_preserves_order () =
  let tasks = Array.init 32 (fun i () -> i * i) in
  check
    Alcotest.(array int)
    "slot i holds task i" (Array.init 32 (fun i -> i * i))
    (Domain_pool.run ~jobs:4 tasks)

let test_parallel_matches_sequential () =
  let tasks =
    Array.of_list
      (List.map (fun placement () -> micro_cell ~placement ()) Microbench.all_placements
      @ [ sys_cell ])
  in
  let seq = Domain_pool.run ~jobs:1 tasks in
  let par = Domain_pool.run ~jobs:2 tasks in
  check Alcotest.(array pairf) "-j 2 = -j 1" seq par

(* LPT ordering and chunked claiming are schedule details: whatever order
   workers claim tasks in, slot i must still hold task i's value. *)
let test_weighted_chunked_pool_slot_order () =
  let n = 37 in
  let tasks = Array.init n (fun i () -> (i * 7) mod 13) in
  let expected = Array.init n (fun i -> (i * 7) mod 13) in
  let weights = Array.init n (fun i -> float_of_int ((i * 31) mod 17)) in
  check
    Alcotest.(array int)
    "weighted, chunk=4, -j4" expected
    (Domain_pool.run ~jobs:4 ~weights ~chunk:4 tasks);
  check
    Alcotest.(array int)
    "weighted, -j1 inline" expected
    (Domain_pool.run ~jobs:1 ~weights tasks)

(* The tentpole property: sharded fig10/fig11 plans reduce to byte-identical
   table output at every -j. Mini scales keep the test quick while still
   putting several (config, seed) cells in flight per table row. *)
let fig10_mini =
  {
    Figures.sys_threads = [ 1; 2 ];
    sys_seeds = [ 23L; 137L ];
    sys_ops_per_thread = 40;
    sys_file_pages = 128;
  }

let fig11_mini = { Figures.ap_cores = [ 1; 2 ]; ap_seeds = [ 31L ]; ap_requests = 40 }

let sharded_output ~jobs =
  (* Fresh memos per call so every jobs level executes its own cells. *)
  let outcomes, _gc =
    Shard.execute ~jobs
      [
        Figures.fig10_plan ~memo:(Shard.create_memo ()) fig10_mini;
        Figures.fig11_plan ~memo:(Shard.create_memo ()) fig11_mini;
      ]
  in
  String.concat "" (List.map (fun o -> o.Shard.output) outcomes)

let test_sharded_figures_identical_across_jobs () =
  let j1 = sharded_output ~jobs:1 in
  check Alcotest.bool "plans produced tables" true (String.length j1 > 0);
  check Alcotest.string "-j2 byte-identical to -j1" j1 (sharded_output ~jobs:2);
  check Alcotest.string "-j4 byte-identical to -j1" j1 (sharded_output ~jobs:4)

(* Per-run RNG isolation: a run's stream derives from its own config seed,
   never from state shared across cells. Two identical-config cells must
   agree even when cells with different seeds execute between and around
   them on other domains. *)
let test_per_run_rng_isolation () =
  let sys ~seed () =
    let cfg = Sysbench.default_config ~opts:(Opts.all ~safe:true) ~threads:2 in
    let r =
      Sysbench.run { cfg with Sysbench.ops_per_thread = 40; file_pages = 128; seed }
    in
    (r.Sysbench.throughput, float_of_int r.Sysbench.shootdowns)
  in
  let solo = sys ~seed:23L () in
  let interleaved =
    Domain_pool.run ~jobs:4
      [| sys ~seed:23L; sys ~seed:911L; sys ~seed:23L; sys ~seed:1013L; sys ~seed:23L |]
  in
  check pairf "slot 0 = solo" solo interleaved.(0);
  check pairf "slot 2 = solo" solo interleaved.(2);
  check pairf "slot 4 = solo" solo interleaved.(4);
  check Alcotest.bool "different seed differs" true (interleaved.(1) <> solo)

(* The `tlbsim stats` report merges per-cell metric registries in plan
   order, so every export format must be byte-identical at any -j. Mini
   iteration count: this runs nine metered sim cells per jobs level. *)
let test_metrics_report_identical_across_jobs () =
  let report ~jobs format = Observe.run ~iterations:20 ~seed:7L ~jobs format in
  List.iter
    (fun (label, format) ->
      let j1 = report ~jobs:1 format in
      check Alcotest.bool (label ^ " non-empty") true (String.length j1 > 0);
      check Alcotest.string (label ^ ": -j2 = -j1") j1 (report ~jobs:2 format))
    [ ("table", Observe.Table); ("json", Observe.Json); ("prom", Observe.Prometheus) ]

let suite =
  [
    Alcotest.test_case "microbench repeatable" `Quick test_microbench_repeatable;
    Alcotest.test_case "sysbench repeatable" `Quick test_sysbench_repeatable;
    Alcotest.test_case "domain pool: result order" `Quick test_domain_pool_preserves_order;
    Alcotest.test_case "domain pool: -j2 = -j1" `Quick test_parallel_matches_sequential;
    Alcotest.test_case "domain pool: weighted/chunked slot order" `Quick
      test_weighted_chunked_pool_slot_order;
    Alcotest.test_case "sharded fig10/fig11: -j2/-j4 = -j1" `Quick
      test_sharded_figures_identical_across_jobs;
    Alcotest.test_case "per-run rng streams isolated" `Quick test_per_run_rng_isolation;
    Alcotest.test_case "metrics report: -j2 = -j1 (all formats)" `Quick
      test_metrics_report_identical_across_jobs;
  ]
