(* Tests for the differential fuzzer: generator determinism, option-combo
   and protocol-backend coverage, oracle equivalence over a fixed seed
   range, the injected-bug end-to-end path (catch, shrink, replay) under
   every backend, and execution determinism. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_gen_deterministic () =
  let a = Fuzz.gen_program 1234 and b = Fuzz.gen_program 1234 in
  check bool_t "same seed, same program" true (a = b);
  let c = Fuzz.gen_program 1235 in
  check bool_t "different seed, different program" true (a <> c)

let test_combo_coverage () =
  (* 64 consecutive seeds must reach all 64 optimization subsets. *)
  let combos = List.init 64 (fun s -> (Fuzz.gen_program s).Fuzz.p_combo) in
  check int_t "all combos reached" 64 (List.length (List.sort_uniq compare combos))

(* The protocol axis uses seed bits disjoint from the 6 combo bits: the
   three non-oracle backends cycle every 64 seeds, and seeds 64 apart
   differ only in backend (same combo — the generator consumes no extra
   RNG draws for the protocol choice). *)
let test_protocol_axis_coverage () =
  let programs = List.init 192 Fuzz.gen_program in
  let count p =
    List.length (List.filter (fun pr -> pr.Fuzz.p_protocol = p) programs)
  in
  check int_t "64 paper seeds" 64 (count Opts.Paper);
  check int_t "64 sync-broadcast seeds" 64 (count Opts.Sync_broadcast);
  check int_t "64 queue-spin seeds" 64 (count Opts.Queue_spin);
  check int_t "oracle is never the subject" 0 (count Opts.Oracle);
  check bool_t "seeds 0..63 run the paper backend" true
    ((Fuzz.gen_program 5).Fuzz.p_protocol = Opts.Paper);
  check bool_t "seeds 64..127 run sync-broadcast" true
    ((Fuzz.gen_program 69).Fuzz.p_protocol = Opts.Sync_broadcast);
  check bool_t "seeds 128..191 run queue-spin" true
    ((Fuzz.gen_program 133).Fuzz.p_protocol = Opts.Queue_spin);
  check int_t "combo bits independent of the protocol bits"
    (Fuzz.gen_program 5).Fuzz.p_combo
    (Fuzz.gen_program 69).Fuzz.p_combo

let test_execute_deterministic () =
  let p = Fuzz.gen_program 7 in
  let opts () = Fuzz.program_opts p in
  let a = Fuzz.execute ~opts:(opts ()) p in
  let b = Fuzz.execute ~opts:(opts ()) p in
  check bool_t "same observations" true (a.Fuzz.xr_obs = b.Fuzz.xr_obs);
  check bool_t "same final state" true (a.Fuzz.xr_final = b.Fuzz.xr_final);
  check bool_t "same crash status" true (a.Fuzz.xr_crash = b.Fuzz.xr_crash)

(* The core differential property on a fixed seed range: the optimized
   protocol must be indistinguishable from the conservative oracle. *)
let test_fixed_seeds_match_oracle () =
  for seed = 0 to 19 do
    match Fuzz.check_seed ~shrink:false seed with
    | None -> ()
    | Some f ->
        Alcotest.failf "seed %d diverged from the oracle: %s" seed
          (String.concat "; " f.Fuzz.f_reasons)
  done

(* End-to-end true-positive check: with the deferred-flush bug injected the
   fuzzer must catch a divergence in a small seed range, ddmin must
   produce a still-failing program no longer than the original, and the
   failure must carry a usable replay command. *)
let test_inject_bug_caught_and_shrunk () =
  let rec find seed =
    if seed >= 64 then Alcotest.fail "injected bug never caught in seeds 0..63"
    else
      match Fuzz.check_seed ~inject_bug:true ~shrink:true seed with
      | Some f -> f
      | None -> find (seed + 1)
  in
  let f = find 0 in
  check bool_t "reasons recorded" true (f.Fuzz.f_reasons <> []);
  (match f.Fuzz.f_shrunk with
  | None -> Alcotest.fail "failure was not shrunk"
  | Some ops ->
      check bool_t "shrunk no longer than original" true
        (List.length ops <= List.length f.Fuzz.f_program.Fuzz.p_ops);
      check bool_t "shrunk program still fails" true
        (Fuzz.run_program { f.Fuzz.f_program with Fuzz.p_ops = ops } <> []));
  let cmd = Fuzz.replay_command f in
  check bool_t "replay names the seed" true
    (contains cmd (Printf.sprintf "--seed %d" f.Fuzz.f_seed));
  check bool_t "replay names the injection" true (contains cmd "--inject-bug")

(* Committed regression seeds: the first injected-bug divergence found in
   each backend's seed window (56 paper, 67 sync-broadcast, 146
   queue-spin), kept as fixed true-positives so oracle, generator or
   backend changes that blind the fuzzer fail loudly. The injected bug
   lives in the shared deferred-flush path, so every backend must expose
   it. *)
let regression_seed label seed () =
  match Fuzz.check_seed ~inject_bug:true ~shrink:false seed with
  | Some f ->
      check bool_t
        (Printf.sprintf "%s: expected backend under test" label)
        true
        (Opts.protocol_label f.Fuzz.f_program.Fuzz.p_protocol = label);
      check bool_t "still caught" true (f.Fuzz.f_reasons <> [])
  | None ->
      Alcotest.failf "seed %d no longer catches the injected bug under %s" seed label

let test_regression_seed_56 = regression_seed "paper" 56
let test_regression_seed_67 = regression_seed "sync-broadcast" 67
let test_regression_seed_146 = regression_seed "queue-spin" 146

let test_run_seeds_report () =
  let r = Fuzz.run_seeds ~seed_base:0 ~count:8 ~jobs:2 ~shrink:false () in
  check int_t "all seeds tested" 8 r.Fuzz.tested;
  check int_t "no failures" 0 (List.length r.Fuzz.failures)

let suite =
  [
    Alcotest.test_case "gen: deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "gen: combo coverage" `Quick test_combo_coverage;
    Alcotest.test_case "gen: protocol axis coverage" `Quick test_protocol_axis_coverage;
    Alcotest.test_case "exec: deterministic" `Quick test_execute_deterministic;
    Alcotest.test_case "diff: fixed seeds match oracle" `Quick
      test_fixed_seeds_match_oracle;
    Alcotest.test_case "inject: caught and shrunk" `Quick
      test_inject_bug_caught_and_shrunk;
    Alcotest.test_case "inject: regression seed 56 (paper)" `Quick
      test_regression_seed_56;
    Alcotest.test_case "inject: regression seed 67 (sync-broadcast)" `Quick
      test_regression_seed_67;
    Alcotest.test_case "inject: regression seed 146 (queue-spin)" `Quick
      test_regression_seed_146;
    Alcotest.test_case "sharded run_seeds" `Quick test_run_seeds_report;
  ]
