(* Unit tests for the hardware model: Topology, Costs, Cache, Tlb, Cpu,
   Apic. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let dist_t =
  Alcotest.testable Topology.pp_distance (fun a b -> a = b)

(* --- Topology --- *)

let test_topology_sizes () =
  let t = Topology.paper_machine in
  check int_t "56 logical CPUs" 56 (Topology.n_cpus t);
  check int_t "sockets" 2 (Topology.sockets t);
  let flat = Topology.flat 4 in
  check int_t "flat n_cpus" 4 (Topology.n_cpus flat)

let test_topology_socket_mapping () =
  let t = Topology.paper_machine in
  check int_t "cpu0 on socket 0" 0 (Topology.socket_of t 0);
  check int_t "cpu13 on socket 0" 0 (Topology.socket_of t 13);
  check int_t "cpu14 on socket 1" 1 (Topology.socket_of t 14);
  check int_t "cpu27 on socket 1" 1 (Topology.socket_of t 27);
  (* SMT siblings (28..55) mirror the first 28. *)
  check int_t "cpu28 on socket 0" 0 (Topology.socket_of t 28);
  check int_t "cpu42 on socket 1" 1 (Topology.socket_of t 42)

let test_topology_smt_sibling () =
  let t = Topology.paper_machine in
  check (Alcotest.option int_t) "sibling of 0" (Some 28) (Topology.smt_sibling_of t 0);
  check (Alcotest.option int_t) "sibling of 28" (Some 0) (Topology.smt_sibling_of t 28);
  check (Alcotest.option int_t) "sibling of 14" (Some 42) (Topology.smt_sibling_of t 14);
  let flat = Topology.flat 4 in
  check (Alcotest.option int_t) "no SMT" None (Topology.smt_sibling_of flat 2)

let test_topology_distance () =
  let t = Topology.paper_machine in
  check dist_t "self" Topology.Self (Topology.distance t 3 3);
  check dist_t "smt" Topology.Smt_sibling (Topology.distance t 0 28);
  check dist_t "same socket" Topology.Same_socket (Topology.distance t 0 1);
  check dist_t "same socket across threads" Topology.Same_socket (Topology.distance t 0 29);
  check dist_t "cross socket" Topology.Cross_socket (Topology.distance t 0 14)

let test_topology_clusters () =
  let t = Topology.paper_machine in
  (* APIC ids pack SMT in bit 0: cpu0 -> 0, cpu28 -> 1 (same cluster). *)
  check int_t "cpu0 cluster" (Topology.cluster_of t 0) (Topology.cluster_of t 28);
  (* 14 cores x 2 threads = 28 APIC ids per socket: crosses the 16 boundary. *)
  check bool_t "socket 0 spans clusters" true
    (Topology.cluster_of t 0 <> Topology.cluster_of t 13);
  let groups = Topology.clusters_of_targets t [ 0; 1; 13; 14 ] in
  let total = List.fold_left (fun acc (_, l) -> acc + List.length l) 0 groups in
  check int_t "all targets grouped" 4 total

let test_topology_cpus_of_socket () =
  let t = Topology.paper_machine in
  check (Alcotest.list int_t) "socket 0 primaries"
    (List.init 14 Fun.id)
    (Topology.cpus_of_socket t 0);
  check (Alcotest.list int_t) "socket 1 primaries"
    (List.init 14 (fun i -> 14 + i))
    (Topology.cpus_of_socket t 1)

let test_topology_bounds () =
  let t = Topology.flat 2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Topology: cpu 2 out of range [0,2)")
    (fun () -> ignore (Topology.socket_of t 2))

(* --- Costs --- *)

let test_costs_monotone_distance () =
  let c = Costs.default in
  check bool_t "ipi grows with distance" true
    (Costs.ipi_latency c Topology.Smt_sibling < Costs.ipi_latency c Topology.Same_socket
    && Costs.ipi_latency c Topology.Same_socket < Costs.ipi_latency c Topology.Cross_socket);
  check bool_t "lines grow with distance" true
    (Costs.line_transfer c Topology.Self < Costs.line_transfer c Topology.Same_socket
    && Costs.line_transfer c Topology.Same_socket < Costs.line_transfer c Topology.Cross_socket)

let test_costs_mode_asymmetry () =
  let c = Costs.default in
  check bool_t "safe entry dearer" true
    (Costs.syscall_entry c ~safe:true > Costs.syscall_entry c ~safe:false);
  check bool_t "user irq entry dearer in safe mode" true
    (Costs.irq_entry c ~safe:true ~from_user:true > Costs.irq_entry c ~safe:true ~from_user:false);
  check bool_t "invpcid slower than invlpg" true (c.Costs.invpcid_single > c.Costs.invlpg)

(* --- Cache --- *)

let make_cache () =
  Cache.create_registry Topology.paper_machine Costs.default

let test_cache_first_touch_local () =
  let reg = make_cache () in
  let l = Cache.create_line reg ~name:(lazy "x") in
  check int_t "first read local" Costs.default.Costs.line_local (Cache.read l ~by:0);
  check int_t "second read local" Costs.default.Costs.line_local (Cache.read l ~by:0)

let test_cache_remote_read_costs_transfer () =
  let reg = make_cache () in
  let l = Cache.create_line reg ~name:(lazy "x") in
  ignore (Cache.write l ~by:0);
  check int_t "cross-socket read" Costs.default.Costs.line_cross_socket (Cache.read l ~by:14);
  (* Now shared: reading again is local. *)
  check int_t "now cached" Costs.default.Costs.line_local (Cache.read l ~by:14)

let test_cache_write_invalidates_sharers () =
  let reg = make_cache () in
  let l = Cache.create_line reg ~name:(lazy "x") in
  ignore (Cache.write l ~by:0);
  ignore (Cache.read l ~by:14);
  (* A plain store retires through the store buffer: local cost for the
     writer, but the cross-socket sharer is invalidated. *)
  check int_t "write is local for the writer" Costs.default.Costs.line_local
    (Cache.write l ~by:1);
  (* A stalling write (or atomic) pays the farthest holder. *)
  ignore (Cache.read l ~by:14);
  check int_t "stalling write pays farthest" Costs.default.Costs.line_cross_socket
    (Cache.stalling_write l ~by:1);
  (* 14 lost the line either way. *)
  check int_t "14 re-reads remotely" Costs.default.Costs.line_cross_socket
    (Cache.read l ~by:14)

let test_cache_exclusive_write_is_local () =
  let reg = make_cache () in
  let l = Cache.create_line reg ~name:(lazy "x") in
  ignore (Cache.write l ~by:5);
  check int_t "exclusive rewrite local" Costs.default.Costs.line_local (Cache.write l ~by:5)

let test_cache_atomic_cost () =
  let reg = make_cache () in
  let l = Cache.create_line reg ~name:(lazy "x") in
  ignore (Cache.write l ~by:0);
  let expected = Costs.default.Costs.line_cross_socket + Costs.default.Costs.atomic_op in
  check int_t "atomic = write + lock" expected (Cache.atomic l ~by:14)

let test_cache_totals () =
  let reg = make_cache () in
  let l = Cache.create_line reg ~name:(lazy "x") in
  ignore (Cache.write l ~by:0);
  ignore (Cache.read l ~by:14);
  ignore (Cache.read l ~by:1);
  let t = Cache.totals reg in
  check int_t "writes" 1 t.Cache.writes;
  check int_t "reads" 2 t.Cache.reads;
  check int_t "cross transfers" 1 t.Cache.cross_socket_transfers;
  check int_t "same-socket transfers" 1 t.Cache.same_socket_transfers;
  Cache.reset_stats reg;
  check int_t "reset" 0 (Cache.totals reg).Cache.reads

(* --- Tlb --- *)

let entry ?(pcid = 1) ?(global = false) ?(size = Tlb.Four_k) ?(fractured = false)
    ?(writable = true) ~vpn ~pfn () =
  { Tlb.vpn; pfn; pcid; size; global; writable; fractured; ck_ver = -1 }

let test_tlb_hit_miss () =
  let t = Tlb.create () in
  check bool_t "miss" true (Tlb.lookup t ~pcid:1 ~vpn:100 = None);
  Tlb.insert t (entry ~vpn:100 ~pfn:5 ());
  (match Tlb.lookup t ~pcid:1 ~vpn:100 with
  | Some e -> check int_t "pfn" 5 e.Tlb.pfn
  | None -> Alcotest.fail "expected hit");
  let s = Tlb.stats t in
  check int_t "one hit" 1 s.Tlb.hits;
  check int_t "one miss" 1 s.Tlb.misses

let test_tlb_pcid_isolation () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~pcid:1 ~vpn:100 ~pfn:5 ());
  check bool_t "other pcid misses" true (Tlb.lookup t ~pcid:2 ~vpn:100 = None)

let test_tlb_global_matches_any_pcid () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~pcid:1 ~global:true ~vpn:200 ~pfn:9 ());
  check bool_t "hit under pcid 7" true (Tlb.lookup t ~pcid:7 ~vpn:200 <> None)

let test_tlb_huge_covers_4k_lookups () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~size:Tlb.Two_m ~vpn:1024 ~pfn:4096 ());
  check bool_t "base hit" true (Tlb.lookup t ~pcid:1 ~vpn:1024 <> None);
  check bool_t "offset hit" true (Tlb.lookup t ~pcid:1 ~vpn:(1024 + 511) <> None);
  check bool_t "outside misses" true (Tlb.lookup t ~pcid:1 ~vpn:(1024 + 512) = None)

let test_tlb_invlpg_selective () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~vpn:1 ~pfn:11 ());
  Tlb.insert t (entry ~vpn:2 ~pfn:12 ());
  Tlb.invlpg t ~current_pcid:1 ~vpn:1;
  check bool_t "vpn1 gone" false (Tlb.mem t ~pcid:1 ~vpn:1);
  check bool_t "vpn2 stays" true (Tlb.mem t ~pcid:1 ~vpn:2)

let test_tlb_invlpg_drops_globals_and_pwc () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~global:true ~vpn:3 ~pfn:13 ());
  Tlb.warm_pwc t;
  Tlb.invlpg t ~current_pcid:1 ~vpn:3;
  check bool_t "global gone" false (Tlb.mem t ~pcid:1 ~vpn:3);
  check bool_t "pwc cooled" false (Tlb.pwc_warm t)

let test_tlb_invpcid_keeps_pwc () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~pcid:4 ~vpn:3 ~pfn:13 ());
  Tlb.warm_pwc t;
  Tlb.invpcid_addr t ~pcid:4 ~vpn:3;
  check bool_t "entry gone" false (Tlb.mem t ~pcid:4 ~vpn:3);
  check bool_t "pwc still warm" true (Tlb.pwc_warm t)

let test_tlb_cr3_flush_spares_globals () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~pcid:1 ~vpn:1 ~pfn:1 ());
  Tlb.insert t (entry ~pcid:1 ~global:true ~vpn:2 ~pfn:2 ());
  Tlb.insert t (entry ~pcid:2 ~vpn:3 ~pfn:3 ());
  Tlb.cr3_flush t ~pcid:1;
  check bool_t "pcid1 non-global gone" false (Tlb.mem t ~pcid:1 ~vpn:1);
  check bool_t "global survives" true (Tlb.mem t ~pcid:1 ~vpn:2);
  check bool_t "pcid2 untouched" true (Tlb.mem t ~pcid:2 ~vpn:3)

let test_tlb_capacity_eviction () =
  let t = Tlb.create ~capacity:4 () in
  for i = 0 to 9 do
    Tlb.insert t (entry ~vpn:i ~pfn:i ())
  done;
  check bool_t "bounded" true (Tlb.occupancy t <= 4);
  check bool_t "newest present" true (Tlb.mem t ~pcid:1 ~vpn:9);
  check bool_t "oldest evicted" false (Tlb.mem t ~pcid:1 ~vpn:0);
  check bool_t "evictions counted" true ((Tlb.stats t).Tlb.evictions >= 6)

let test_tlb_fracture_promotion () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~vpn:1 ~pfn:1 ());
  Tlb.insert t (entry ~fractured:true ~vpn:2 ~pfn:2 ());
  check bool_t "flag set" true (Tlb.fracture_flag t);
  (* Selective flush of an unrelated address nukes everything. *)
  Tlb.invlpg t ~current_pcid:1 ~vpn:999;
  check bool_t "vpn1 gone too" false (Tlb.mem t ~pcid:1 ~vpn:1);
  check bool_t "vpn2 gone" false (Tlb.mem t ~pcid:1 ~vpn:2);
  check bool_t "flag cleared" false (Tlb.fracture_flag t);
  check int_t "promotion counted" 1 (Tlb.stats t).Tlb.fracture_full_flushes

let test_tlb_drop_no_side_effects () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~fractured:true ~vpn:2 ~pfn:2 ());
  Tlb.insert t (entry ~vpn:3 ~pfn:3 ());
  Tlb.warm_pwc t;
  Tlb.drop t ~pcid:1 ~vpn:2;
  check bool_t "dropped" false (Tlb.mem t ~pcid:1 ~vpn:2);
  check bool_t "other survives" true (Tlb.mem t ~pcid:1 ~vpn:3);
  check bool_t "pwc warm" true (Tlb.pwc_warm t);
  check int_t "no promotion" 0 (Tlb.stats t).Tlb.fracture_full_flushes

let test_tlb_flush_all () =
  let t = Tlb.create () in
  Tlb.insert t (entry ~vpn:1 ~pfn:1 ());
  Tlb.insert t (entry ~global:true ~vpn:2 ~pfn:2 ());
  Tlb.flush_all t;
  check int_t "empty" 0 (Tlb.occupancy t);
  check int_t "counted" 1 (Tlb.stats t).Tlb.full_flushes

(* Regression: a key invalidated and later re-inserted used to keep its
   original (now dead) slot near the head of the FIFO queue, so the next
   eviction removed the brand-new entry instead of the oldest live one. *)
let test_tlb_reinsert_after_invalidate_is_youngest () =
  let t = Tlb.create ~capacity:4 () in
  for i = 1 to 4 do
    Tlb.insert t (entry ~vpn:i ~pfn:i ())
  done;
  Tlb.drop t ~pcid:1 ~vpn:1;
  Tlb.insert t (entry ~vpn:1 ~pfn:11 ());
  check int_t "full again" 4 (Tlb.occupancy t);
  (* Inserting a fifth key must evict vpn 2 (the oldest live entry), not
     the just-re-inserted vpn 1. *)
  Tlb.insert t (entry ~vpn:5 ~pfn:5 ());
  check bool_t "re-inserted key survives" true (Tlb.mem t ~pcid:1 ~vpn:1);
  check bool_t "oldest live key evicted" false (Tlb.mem t ~pcid:1 ~vpn:2);
  check bool_t "vpn3 stays" true (Tlb.mem t ~pcid:1 ~vpn:3);
  check bool_t "vpn4 stays" true (Tlb.mem t ~pcid:1 ~vpn:4);
  check bool_t "new key present" true (Tlb.mem t ~pcid:1 ~vpn:5);
  check int_t "exactly one eviction" 1 (Tlb.stats t).Tlb.evictions;
  check int_t "occupancy exact" 4 (Tlb.occupancy t)

(* Random inserts/overwrites/invalidations/flushes against a reference
   FIFO model: membership, occupancy and eviction victim must match the
   model after every operation. *)
let test_tlb_random_vs_fifo_model () =
  let cap = 8 in
  let n_pcids = 2 and n_vpns = 24 in
  let t = Tlb.create ~capacity:cap () in
  (* Reference model: live (pcid, vpn) keys, oldest first. Overwriting a
     live key keeps its position (FIFO, not LRU); inserting a new key at
     capacity evicts the head. *)
  let model = ref [] in
  let r = Rng.create ~seed:0xF1F0L in
  for step = 1 to 4000 do
    let pcid = 1 + Rng.int r n_pcids and vpn = Rng.int r n_vpns in
    (match Rng.int r 12 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
        if not (List.mem (pcid, vpn) !model) then begin
          if List.length !model >= cap then model := List.tl !model;
          model := !model @ [ (pcid, vpn) ]
        end;
        Tlb.insert t (entry ~pcid ~vpn ~pfn:vpn ())
    | 7 | 8 ->
        model := List.filter (fun k -> k <> (pcid, vpn)) !model;
        Tlb.drop t ~pcid ~vpn
    | 9 | 10 ->
        model := List.filter (fun (p, _) -> p <> pcid) !model;
        Tlb.flush_pcid t ~pcid
    | _ ->
        model := [];
        Tlb.flush_all t);
    if Tlb.occupancy t <> List.length !model then
      Alcotest.failf "step %d: occupancy %d, model %d" step (Tlb.occupancy t)
        (List.length !model);
    for p = 1 to n_pcids do
      for v = 0 to n_vpns - 1 do
        let expect = List.mem (p, v) !model in
        if Tlb.mem t ~pcid:p ~vpn:v <> expect then
          Alcotest.failf "step %d: (%d,%d) %s" step p v
            (if expect then "missing" else "present")
      done
    done
  done;
  check bool_t "model agreed for 4000 steps" true true

(* --- Cpu + Apic --- *)

let make_machine_parts () =
  let e = Engine.create () in
  let topo = Topology.paper_machine in
  let c = Costs.default in
  let cpus =
    Array.init (Topology.n_cpus topo) (fun id ->
        Cpu.create e topo c ~id ~safe:false ())
  in
  let apic = Apic.create e topo c ~cpus in
  (e, topo, c, cpus, apic)

let test_cpu_compute_accounting () =
  let e, _, _, cpus, _ = make_machine_parts () in
  Process.spawn e ~name:"worker" (fun () -> Cpu.compute cpus.(0) 1000);
  Engine.run e;
  check int_t "time advanced" 1000 (Engine.now e);
  check int_t "compute recorded" 1000 (Cpu.compute_cycles cpus.(0))

let test_ipi_delivery_and_interruption () =
  let e, _, c, cpus, apic = make_machine_parts () in
  let handled = ref false in
  Process.spawn e ~name:"sender" (fun () ->
      let cost =
        Apic.send_ipi apic ~from:0 ~targets:[ 14 ]
          ~make_irq:(fun _ ->
            {
              Cpu.vector = 1;
              maskable = true;
              handler =
                (fun cpu ->
                  handled := true;
                  Process.delay e 500;
                  ignore cpu);
            })
      in
      Process.delay e cost);
  Process.spawn e ~name:"responder" (fun () -> Cpu.compute cpus.(14) 20_000);
  Engine.run e;
  check bool_t "handled" true !handled;
  check int_t "one irq" 1 (Cpu.irqs_handled cpus.(14));
  let expected_min = 500 + Costs.irq_entry c ~safe:false ~from_user:true + c.Costs.irq_exit in
  check bool_t "interruption includes entry+handler+exit" true
    (Cpu.interrupted_cycles cpus.(14) >= expected_min)

let test_irq_masking_defers () =
  let e, _, _, cpus, apic = make_machine_parts () in
  let handled_at = ref (-1) in
  let target = cpus.(1) in
  Process.spawn e ~name:"receiver" (fun () ->
      Cpu.irq_disable target;
      Cpu.compute target 5_000;
      (* IRQ arrives during this window but must wait. *)
      Cpu.irq_enable target);
  Process.spawn e ~name:"sender" (fun () ->
      Process.delay e 100;
      ignore
        (Apic.send_ipi apic ~from:0 ~targets:[ 1 ]
           ~make_irq:(fun _ ->
             {
               Cpu.vector = 2;
               maskable = true;
               handler = (fun _ -> handled_at := Engine.now e);
             })));
  Engine.run e;
  check bool_t "deferred past mask window" true (!handled_at >= 5_000)

let test_nmi_bypasses_mask () =
  let e, _, _, cpus, _ = make_machine_parts () in
  let handled = ref false in
  let target = cpus.(2) in
  Process.spawn e ~name:"receiver" (fun () ->
      Cpu.irq_disable target;
      Cpu.post_irq target
        { Cpu.vector = 2; maskable = false; handler = (fun _ -> handled := true) };
      Cpu.compute target 1_000;
      check bool_t "NMI ran while masked" true !handled;
      Cpu.irq_enable target);
  Engine.run e

let test_spin_until_services_irqs () =
  let e, _, _, cpus, apic = make_machine_parts () in
  let flag = ref false in
  Process.spawn e ~name:"spinner" (fun () ->
      Cpu.spin_until cpus.(3) (fun () -> !flag));
  Process.spawn e ~name:"sender" (fun () ->
      Process.delay e 1_000;
      ignore
        (Apic.send_ipi apic ~from:0 ~targets:[ 3 ]
           ~make_irq:(fun _ ->
             { Cpu.vector = 3; maskable = true; handler = (fun _ -> flag := true) })));
  Engine.run e;
  check bool_t "spinner released by irq" true !flag

let test_apic_multicast_cluster_cost () =
  let e, topo, c, _, apic = make_machine_parts () in
  (* Targets in different clusters need several ICR writes. *)
  let targets = [ 1; 13; 14; 27 ] in
  let clusters = List.length (Topology.clusters_of_targets topo targets) in
  Process.spawn e ~name:"sender" (fun () ->
      let cost =
        Apic.send_ipi apic ~from:0 ~targets ~make_irq:(fun _ ->
            { Cpu.vector = 9; maskable = true; handler = (fun _ -> ()) })
      in
      check int_t "one ICR write per cluster" (clusters * c.Costs.icr_write) cost);
  Engine.run e;
  check int_t "icr writes counted" clusters (Apic.icr_writes apic);
  check int_t "ipis counted" (List.length targets) (Apic.ipis_sent apic)

let test_apic_rejects_self_ipi () =
  let e, _, _, _, apic = make_machine_parts () in
  Process.spawn e ~name:"sender" (fun () ->
      Alcotest.check_raises "self ipi"
        (Invalid_argument "Apic.send_ipi: self-IPI not supported") (fun () ->
          ignore
            (Apic.send_ipi apic ~from:0 ~targets:[ 0 ] ~make_irq:(fun _ ->
                 { Cpu.vector = 1; maskable = true; handler = (fun _ -> ()) }))));
  Engine.run e

let test_idle_wait_wakes_on_irq () =
  let e, _, _, cpus, apic = make_machine_parts () in
  let woke_at = ref (-1) in
  Process.spawn e ~name:"idler" (fun () ->
      Cpu.idle_wait cpus.(4);
      woke_at := Engine.now e);
  Process.spawn e ~name:"sender" (fun () ->
      Process.delay e 2_000;
      ignore
        (Apic.send_ipi apic ~from:0 ~targets:[ 4 ] ~make_irq:(fun _ ->
             { Cpu.vector = 1; maskable = true; handler = (fun _ -> ()) })));
  Engine.run e;
  check bool_t "woken after delivery" true (!woke_at > 2_000)

let suite =
  [
    Alcotest.test_case "topology: sizes" `Quick test_topology_sizes;
    Alcotest.test_case "topology: socket mapping" `Quick test_topology_socket_mapping;
    Alcotest.test_case "topology: smt siblings" `Quick test_topology_smt_sibling;
    Alcotest.test_case "topology: distance" `Quick test_topology_distance;
    Alcotest.test_case "topology: x2apic clusters" `Quick test_topology_clusters;
    Alcotest.test_case "topology: cpus_of_socket" `Quick test_topology_cpus_of_socket;
    Alcotest.test_case "topology: bounds checking" `Quick test_topology_bounds;
    Alcotest.test_case "costs: monotone in distance" `Quick test_costs_monotone_distance;
    Alcotest.test_case "costs: mode asymmetries" `Quick test_costs_mode_asymmetry;
    Alcotest.test_case "cache: first touch local" `Quick test_cache_first_touch_local;
    Alcotest.test_case "cache: remote read transfer" `Quick test_cache_remote_read_costs_transfer;
    Alcotest.test_case "cache: write invalidates sharers" `Quick test_cache_write_invalidates_sharers;
    Alcotest.test_case "cache: exclusive write local" `Quick test_cache_exclusive_write_is_local;
    Alcotest.test_case "cache: atomic cost" `Quick test_cache_atomic_cost;
    Alcotest.test_case "cache: totals and reset" `Quick test_cache_totals;
    Alcotest.test_case "tlb: hit/miss" `Quick test_tlb_hit_miss;
    Alcotest.test_case "tlb: pcid isolation" `Quick test_tlb_pcid_isolation;
    Alcotest.test_case "tlb: global matches any pcid" `Quick test_tlb_global_matches_any_pcid;
    Alcotest.test_case "tlb: hugepage covers 4K lookups" `Quick test_tlb_huge_covers_4k_lookups;
    Alcotest.test_case "tlb: invlpg selective" `Quick test_tlb_invlpg_selective;
    Alcotest.test_case "tlb: invlpg drops globals+pwc" `Quick test_tlb_invlpg_drops_globals_and_pwc;
    Alcotest.test_case "tlb: invpcid keeps pwc" `Quick test_tlb_invpcid_keeps_pwc;
    Alcotest.test_case "tlb: cr3 flush spares globals" `Quick test_tlb_cr3_flush_spares_globals;
    Alcotest.test_case "tlb: capacity eviction" `Quick test_tlb_capacity_eviction;
    Alcotest.test_case "tlb: fracture promotion" `Quick test_tlb_fracture_promotion;
    Alcotest.test_case "tlb: drop has no side effects" `Quick test_tlb_drop_no_side_effects;
    Alcotest.test_case "tlb: flush_all" `Quick test_tlb_flush_all;
    Alcotest.test_case "tlb: re-insert after invalidate is youngest" `Quick
      test_tlb_reinsert_after_invalidate_is_youngest;
    Alcotest.test_case "tlb: random ops vs FIFO model" `Quick
      test_tlb_random_vs_fifo_model;
    Alcotest.test_case "cpu: compute accounting" `Quick test_cpu_compute_accounting;
    Alcotest.test_case "cpu+apic: delivery and interruption" `Quick test_ipi_delivery_and_interruption;
    Alcotest.test_case "cpu: masking defers irqs" `Quick test_irq_masking_defers;
    Alcotest.test_case "cpu: nmi bypasses mask" `Quick test_nmi_bypasses_mask;
    Alcotest.test_case "cpu: spin_until services irqs" `Quick test_spin_until_services_irqs;
    Alcotest.test_case "apic: multicast cluster cost" `Quick test_apic_multicast_cluster_cost;
    Alcotest.test_case "apic: rejects self-IPI" `Quick test_apic_rejects_self_ipi;
    Alcotest.test_case "cpu: idle_wait wakes on irq" `Quick test_idle_wait_wakes_on_irq;
  ]
