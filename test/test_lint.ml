(* tlblint self-tests (DESIGN.md §11): committed fixture modules per rule —
   the bad twin fires at known lines, the good twin is silent — plus rule
   toggling, allowlist scoping, and the tier-1 guarantee that the real tree
   lints clean under tools/tlblint/allow.sexp. *)

let fixture_cmt name =
  Filename.concat "../tools/tlblint/fixtures/.lint_fixtures.objs/byte" (name ^ ".cmt")

let lines_and_rules findings =
  List.map (fun f -> (f.Lint.f_line, Lint.rule_name f.Lint.f_rule)) findings

let check_findings what expected findings =
  Alcotest.(check (list (pair int string))) what expected (lines_and_rules findings)

let test_pair ~bad ~good ~expected () =
  check_findings (bad ^ " fires") expected (Lint.run [ fixture_cmt bad ]);
  check_findings (good ^ " is silent") [] (Lint.run [ fixture_cmt good ])

let test_r1 =
  test_pair ~bad:"fix_r1_bad" ~good:"fix_r1_good"
    ~expected:[ (3, "R1"); (4, "R1"); (5, "R1"); (6, "R1"); (7, "R1"); (8, "R1") ]

let test_r2 =
  test_pair ~bad:"fix_r2_bad" ~good:"fix_r2_good" ~expected:[ (3, "R2"); (5, "R2") ]

let test_r3 =
  test_pair ~bad:"fix_r3_bad" ~good:"fix_r3_good"
    ~expected:[ (3, "R3"); (5, "R3"); (7, "R3") ]

let test_r4 =
  test_pair ~bad:"fix_r4_bad" ~good:"fix_r4_good"
    ~expected:[ (4, "R4"); (6, "R4"); (8, "R4") ]

(* --rules style toggling: a disabled rule reports nothing. *)
let test_toggle () =
  check_findings "R1 disabled" []
    (Lint.run ~rules:[ Lint.R2; Lint.R3; Lint.R4 ] [ fixture_cmt "fix_r1_bad" ]);
  check_findings "only R4 enabled"
    [ (4, "R4"); (6, "R4"); (8, "R4") ]
    (Lint.run ~rules:[ Lint.R4 ] [ fixture_cmt "fix_r4_bad" ])

(* allow.sexp semantics: module scope kills the whole module's findings for
   that rule, (line n) scope kills exactly one site. *)
let test_allowlist () =
  let path = "tlblint_test_allow.sexp" in
  let oc = open_out path in
  output_string oc
    "(allow R1 (module Fix_r1_bad) \"fixture grant\")\n\
     (allow R2 (file tools/tlblint/fixtures/fix_r2_bad.ml) (line 3) \"fixture grant\")\n";
  close_out oc;
  let allow = Lint.load_allowlist path in
  Sys.remove path;
  check_findings "module-scoped allow" [] (Lint.run ~allow [ fixture_cmt "fix_r1_bad" ]);
  check_findings "line-scoped allow"
    [ (5, "R2") ]
    (Lint.run ~allow [ fixture_cmt "fix_r2_bad" ])

(* Tier-1: the real tree has zero unsuppressed findings under the shipped
   allowlist.  The cmt-count floor guards against silently scanning nothing. *)
let test_tree_clean () =
  let dirs = List.filter Sys.file_exists [ "../lib"; "../bin"; "../bench" ] in
  let cmts = Lint.find_cmts dirs in
  Alcotest.(check bool) "scanned a real module set" true (List.length cmts > 30);
  let allow = Lint.load_allowlist "../tools/tlblint/allow.sexp" in
  let findings = Lint.run ~allow cmts in
  List.iter (fun f -> Format.eprintf "%a@." Lint.pp_finding f) findings;
  Alcotest.(check int) "tree is tlblint-clean" 0 (List.length findings)

let suite =
  [
    Alcotest.test_case "R1 poly-compare fixtures" `Quick test_r1;
    Alcotest.test_case "R2 unordered-iteration fixtures" `Quick test_r2;
    Alcotest.test_case "R3 nondeterminism fixtures" `Quick test_r3;
    Alcotest.test_case "R4 unsafe-array fixtures" `Quick test_r4;
    Alcotest.test_case "rule toggling" `Quick test_toggle;
    Alcotest.test_case "allowlist scoping" `Quick test_allowlist;
    Alcotest.test_case "real tree lints clean" `Quick test_tree_clean;
  ]

let () = Alcotest.run "tlblint" [ ("lint", suite) ]
