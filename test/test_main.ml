let () =
  Alcotest.run "shootdown"
    [
      ("sim", Test_sim.suite);
      ("cpuset", Test_cpuset.suite);
      ("hw", Test_hw.suite);
      ("mm", Test_mm.suite);
      ("core-structs", Test_core_structs.suite);
      ("shootdown", Test_shootdown.suite);
      ("fault-syscall", Test_fault_syscall.suite);
      ("sched", Test_sched.suite);
      ("safety", Test_safety.suite);
      ("workloads", Test_workloads.suite);
      ("extensions", Test_extensions.suite);
      ("huge-migrate", Test_huge_migrate.suite);
      ("fork-mremap", Test_fork_mremap.suite);
      ("ksm", Test_ksm.suite);
      ("stress", Test_stress.suite);
      ("checker", Test_checker.suite);
      ("analysis", Test_analysis.suite);
      ("coverage", Test_coverage.suite);
      ("determinism", Test_determinism.suite);
      ("protocols", Test_protocols.suite);
      ("fuzz", Test_fuzz.suite);
      ("properties", Test_props.suite);
    ]
